module checl

go 1.22
