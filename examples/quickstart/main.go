// Quickstart: the smallest complete CheCL program.
//
// An OpenCL application (vector scaling) runs transparently under CheCL:
// every API call it makes is forwarded to the API proxy process, and the
// handles it holds are CheCL handles. Mid-run the process receives a
// checkpoint signal, is dumped by the BLCR-like backend, killed, and
// restarted from the file — after which the SAME handle variables keep
// working against freshly recreated OpenCL objects.
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"math"

	"checl/internal/core"
	"checl/internal/hw"
	"checl/internal/ocl"
	"checl/internal/proc"
)

const kernelSource = `
__kernel void scale(__global float* data, float factor, uint n) {
    size_t i = get_global_id(0);
    if (i < n) data[i] = data[i] * factor;
}`

func main() {
	// One simulated machine with the NVIDIA-like OpenCL implementation.
	node := proc.NewNode("pc0", hw.TableISpec(), ocl.NVIDIA())
	app := node.Spawn("quickstart")

	// Interpose CheCL: this forks the API proxy; the application process
	// itself never touches the vendor library.
	cl, err := core.Attach(app, core.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// Plain OpenCL host code, written against the same API the vendor
	// runtime implements.
	plats, _ := cl.GetPlatformIDs()
	devs, _ := cl.GetDeviceIDs(plats[0], ocl.DeviceTypeGPU)
	ctx, _ := cl.CreateContext(devs)
	queue, _ := cl.CreateCommandQueue(ctx, devs[0], 0)
	prog, _ := cl.CreateProgramWithSource(ctx, kernelSource)
	if err := cl.BuildProgram(prog, ""); err != nil {
		log.Fatal(err)
	}
	kernel, _ := cl.CreateKernel(prog, "scale")

	const n = 1024
	host := make([]byte, 4*n)
	for i := 0; i < n; i++ {
		binary.LittleEndian.PutUint32(host[4*i:], math.Float32bits(float32(i)))
	}
	buf, _ := cl.CreateBuffer(ctx, ocl.MemReadWrite|ocl.MemCopyHostPtr, 4*n, host)

	setArgs(cl, kernel, buf, 2.0, n)
	if _, err := cl.EnqueueNDRangeKernel(queue, kernel, 1, [3]int{}, [3]int{n}, [3]int{64}, nil); err != nil {
		log.Fatal(err)
	}
	cl.Finish(queue)
	fmt.Println("first kernel done: data[i] = 2*i")

	// Checkpoint to the local disk and simulate a crash.
	stats, err := cl.Checkpoint(node.LocalDisk, "quickstart.ckpt")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checkpointed: %.2f MB in %s (sync %s | stage %s | write %s | post %s)\n",
		float64(stats.FileSize)/1e6, stats.Phases.Total(),
		stats.Phases.Sync, stats.Phases.Preprocess, stats.Phases.Write, stats.Phases.Postprocess)
	cl.Proxy().Kill()
	app.Kill()
	fmt.Println("process crashed (killed)")

	// Restart. The CheCL handles held above are still valid: the real
	// OpenCL objects behind them were recreated and silently rebound.
	cl2, rst, err := core.Restore(node, node.LocalDisk, "quickstart.ckpt", core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer cl2.Detach()
	fmt.Printf("restarted in %s (program recompile %s)\n", rst.Total, rst.Recompile)

	setArgs(cl2, kernel, buf, 0.5, n)
	if _, err := cl2.EnqueueNDRangeKernel(queue, kernel, 1, [3]int{}, [3]int{n}, [3]int{64}, nil); err != nil {
		log.Fatal(err)
	}
	out, _, err := cl2.EnqueueReadBuffer(queue, buf, true, 0, 4*n, nil)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < n; i++ {
		got := math.Float32frombits(binary.LittleEndian.Uint32(out[4*i:]))
		if got != float32(i) { // 2*i then *0.5 across the restart
			log.Fatalf("data[%d] = %v, want %v", i, got, float32(i))
		}
	}
	fmt.Println("verified: buffer contents and handles survived checkpoint/restart")
}

// setArgs binds (buffer, factor, n) to the kernel.
func setArgs(api ocl.API, k ocl.Kernel, buf ocl.Mem, factor float32, n uint32) {
	h := make([]byte, 8)
	binary.LittleEndian.PutUint64(h, uint64(buf))
	must(api.SetKernelArg(k, 0, 8, h))
	f := make([]byte, 4)
	binary.LittleEndian.PutUint32(f, math.Float32bits(factor))
	must(api.SetKernelArg(k, 1, 4, f))
	nn := make([]byte, 4)
	binary.LittleEndian.PutUint32(nn, n)
	must(api.SetKernelArg(k, 2, 4, nn))
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
