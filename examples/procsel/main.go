// Runtime processor selection: switching a live job between CPU and GPU.
//
// With the AMD-like OpenCL implementation both the Radeon HD5870 and the
// Core i7 are OpenCL devices, so a job scheduler can take a running
// OpenCL process off the GPU and resume it on the CPU (and back), using a
// RAM-disk checkpoint to make the switch cheap (§IV-C). This example does
// exactly that with the SGEMM workload and prints the switch costs.
package main

import (
	"fmt"
	"log"

	"checl/internal/apps"
	"checl/internal/core"
	"checl/internal/hw"
	"checl/internal/ocl"
	"checl/internal/proc"
)

func main() {
	node := proc.NewNode("pc0", hw.TableISpec(), ocl.AMD())
	app, _ := apps.ByName("SGEMM")

	p := node.Spawn(app.Name)
	cl, err := core.Attach(p, core.Options{VendorName: "Advanced Micro Devices, Inc."})
	if err != nil {
		log.Fatal(err)
	}

	runOn := func(c *core.CheCL, mask ocl.DeviceTypeMask, label string) {
		env := &apps.Env{API: c, DeviceMask: mask, Verify: true}
		sw := nodeStopwatch(node)
		if _, err := app.Run(env); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s on the %s: %s virtual time\n", app.Name, label, sw())
	}

	runOn(cl, ocl.DeviceTypeGPU, "Radeon HD5870 (GPU)")

	// The scheduler decides the GPU is needed elsewhere: move to the CPU.
	onCPU, msToCPU, err := core.SelectProcessor(cl, hw.DeviceCPU)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("GPU -> CPU switch via %s checkpoint: %s (file %.2f MB)\n",
		msToCPU.Checkpoint.FSName, msToCPU.Total, float64(msToCPU.Checkpoint.FileSize)/1e6)
	runOn(onCPU, ocl.DeviceTypeCPU, "Core i7 (CPU device)")

	// The GPU frees up again: move back.
	onGPU, msToGPU, err := core.SelectProcessor(onCPU, hw.DeviceGPU)
	if err != nil {
		log.Fatal(err)
	}
	defer onGPU.Detach()
	fmt.Printf("CPU -> GPU switch: %s\n", msToGPU.Total)
	runOn(onGPU, ocl.DeviceTypeGPU, "Radeon HD5870 (GPU), round trip")

	// Contrast with what the same checkpoint would cost on the hard disk.
	diskTime := node.Spec.LocalDisk.WriteTime(msToCPU.Checkpoint.FileSize) +
		node.Spec.LocalDisk.ReadTime(msToCPU.Checkpoint.FileSize)
	ramTime := node.Spec.RAMDisk.WriteTime(msToCPU.Checkpoint.FileSize) +
		node.Spec.RAMDisk.ReadTime(msToCPU.Checkpoint.FileSize)
	fmt.Printf("file I/O for the switch: RAM disk %s vs hard disk %s\n", ramTime, diskTime)
}

// nodeStopwatch returns a closure reporting virtual time since creation.
func nodeStopwatch(n *proc.Node) func() string {
	start := n.Clock.Now()
	return func() string { return n.Clock.Now().Sub(start).String() }
}
