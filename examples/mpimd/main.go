// MPI MD: coordinated checkpointing of a distributed GPU application.
//
// Four MPI ranks on four cluster nodes each run the SHOC MD (Lennard-
// Jones) workload on their node's GPU through CheCL. A coordinated
// checkpoint then writes one *local snapshot* per node and aggregates them
// into a *global snapshot* on the shared NFS — the Open MPI + BLCR global
// snapshot scheme the paper relies on for Fig. 6.
package main

import (
	"fmt"
	"log"
	"sync"

	"checl/internal/apps"
	"checl/internal/core"
	"checl/internal/hw"
	"checl/internal/mpi"
	"checl/internal/ocl"
	"checl/internal/proc"
)

func main() {
	const nodes = 4
	cluster := proc.NewCluster("pc", nodes, hw.TableISpec(), func(int) []*ocl.Vendor {
		return []*ocl.Vendor{ocl.NVIDIA()}
	})
	world, err := mpi.NewWorld(cluster, nodes)
	if err != nil {
		log.Fatal(err)
	}
	md, _ := apps.ByName("MD")

	var mu sync.Mutex
	err = world.Run(func(r *mpi.Rank) error {
		cl, err := core.Attach(r.Process(), core.Options{})
		if err != nil {
			return err
		}
		defer cl.Detach()

		// Each rank simulates its share of the system.
		env := &apps.Env{API: cl, DeviceMask: ocl.DeviceTypeGPU, Verify: true}
		if _, err := md.Run(env); err != nil {
			return err
		}
		// Exchange a reduced quantity, as the real MD exchanges forces.
		sum, err := r.AllreduceSum(float64(r.Rank() + 1))
		if err != nil {
			return err
		}

		st, err := r.CoordinatedCheckpoint(cl, "md.global")
		if err != nil {
			return err
		}
		mu.Lock()
		defer mu.Unlock()
		if r.Rank() == 0 {
			fmt.Printf("rank 0: allreduce=%v, local snapshot %.2f MB in %s\n",
				sum, float64(st.LocalSizes[0])/1e6, st.LocalTimes[0])
			fmt.Printf("global snapshot: %.2f MB on NFS, aggregation %s, total %s\n",
				float64(st.GlobalSize)/1e6, st.AggregateTime, st.Total)
		} else {
			fmt.Printf("rank %d: local snapshot %.2f MB in %s\n",
				r.Rank(), float64(st.LocalSizes[0])/1e6, st.LocalTimes[0])
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	sz, _ := cluster.NFS.Size("md.global")
	fmt.Printf("verified: md.global exists on NFS (%.2f MB)\n", float64(sz)/1e6)
}
