// MPI MD: coordinated checkpointing of a distributed GPU application,
// then partial restart of a killed rank.
//
// Part 1 — Four MPI ranks on four cluster nodes each run the SHOC MD
// (Lennard-Jones) workload on their node's GPU through CheCL. A
// coordinated checkpoint then writes one *local snapshot* per node and
// aggregates them into a *global snapshot* on the shared NFS — the Open
// MPI + BLCR global snapshot scheme the paper relies on for Fig. 6.
//
// Part 2 — The same job structured as epochs with sender-side message
// logging and store-backed checkpoints. A fault plan kills one rank
// mid-epoch; the recovery handler restores just that rank from its
// per-rank segment of the last committed generation, replays its logged
// inbound messages, and the job finishes without rolling back the
// survivors.
package main

import (
	"fmt"
	"log"
	"sync"

	"checl/internal/apps"
	"checl/internal/core"
	"checl/internal/hw"
	"checl/internal/mpi"
	"checl/internal/ocl"
	"checl/internal/proc"
	"checl/internal/store"
)

func main() {
	const nodes = 4
	cluster := proc.NewCluster("pc", nodes, hw.TableISpec(), func(int) []*ocl.Vendor {
		return []*ocl.Vendor{ocl.NVIDIA()}
	})
	world, err := mpi.NewWorld(cluster, nodes)
	if err != nil {
		log.Fatal(err)
	}
	md, _ := apps.ByName("MD")

	var mu sync.Mutex
	err = world.Run(func(r *mpi.Rank) error {
		cl, err := core.Attach(r.Process(), core.Options{})
		if err != nil {
			return err
		}
		defer cl.Detach()

		// Each rank simulates its share of the system.
		env := &apps.Env{API: cl, DeviceMask: ocl.DeviceTypeGPU, Verify: true}
		if _, err := md.Run(env); err != nil {
			return err
		}
		// Exchange a reduced quantity, as the real MD exchanges forces.
		sum, err := r.AllreduceSum(float64(r.Rank() + 1))
		if err != nil {
			return err
		}

		st, err := r.CoordinatedCheckpoint(cl, "md.global")
		if err != nil {
			return err
		}
		mu.Lock()
		defer mu.Unlock()
		if r.Rank() == 0 {
			fmt.Printf("rank 0: allreduce=%v, local snapshot %.2f MB in %s\n",
				sum, float64(st.LocalSizes[0])/1e6, st.LocalTimes[0])
			fmt.Printf("global snapshot: %.2f MB on NFS, aggregation %s, total %s\n",
				float64(st.GlobalSize)/1e6, st.AggregateTime, st.Total)
		} else {
			fmt.Printf("rank %d: local snapshot %.2f MB in %s\n",
				r.Rank(), float64(st.LocalSizes[0])/1e6, st.LocalTimes[0])
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	sz, _ := cluster.NFS.Size("md.global")
	fmt.Printf("verified: md.global exists on NFS (%.2f MB)\n", float64(sz)/1e6)

	partialRestartDemo()
}

// partialRestartDemo kills one rank of an epoch-structured job and
// recovers it in place: segment fetch + message replay, no global
// rollback.
func partialRestartDemo() {
	const (
		ranks  = 4
		epochs = 3
		victim = 2
		job    = "mdjob"
	)
	fmt.Println("\npartial restart: kill rank 2 mid-epoch, restore it from its segment")
	cluster := proc.NewCluster("pr", ranks, hw.TableISpec(), func(int) []*ocl.Vendor {
		return []*ocl.Vendor{ocl.NVIDIA()}
	})
	st := store.New(cluster.NFS, store.Config{})
	// Non-root epoch ops: send, recv, allreduce (2), checkpoint (4) —
	// op 10 is inside epoch 1, after generation 1 committed.
	inj := mpi.NewRankFaultInjector(mpi.RankFaultPlan{
		Seed:  42,
		Kills: []mpi.RankKill{{Rank: victim, AtOp: 10}},
	})
	world, err := mpi.NewWorldWithOptions(cluster, ranks, mpi.Options{
		LogMessages: true,
		Fault:       inj,
	})
	if err != nil {
		log.Fatal(err)
	}

	checls := make([]*core.CheCL, ranks)
	body := func(r *mpi.Rank) error {
		rank := r.Rank()
		if checls[rank] == nil {
			cl, err := core.Attach(r.Process(), core.Options{})
			if err != nil {
				return err
			}
			plats, _ := cl.GetPlatformIDs()
			devs, _ := cl.GetDeviceIDs(plats[0], ocl.DeviceTypeGPU)
			ctx, err := cl.CreateContext(devs)
			if err != nil {
				return err
			}
			q, err := cl.CreateCommandQueue(ctx, devs[0], 0)
			if err != nil {
				return err
			}
			buf, err := cl.CreateBuffer(ctx, ocl.MemReadWrite, 1<<20, nil)
			if err != nil {
				return err
			}
			forces := make([]byte, 1<<20)
			for i := range forces {
				forces[i] = byte(rank + i)
			}
			if _, err := cl.EnqueueWriteBuffer(q, buf, true, 0, forces, nil); err != nil {
				return err
			}
			checls[rank] = cl
		}
		size := r.Size()
		// A restored rank resumes at the committed generation; survivors
		// run every epoch exactly once.
		for e := r.World().Generation(); e < epochs; e++ {
			if err := r.Send((rank+1)%size, 1, []byte{byte(e)}); err != nil {
				return err
			}
			if _, err := r.Recv((rank+size-1)%size, 1); err != nil {
				return err
			}
			sum, err := r.AllreduceSum(float64(rank+1) * float64(e+1))
			if err != nil {
				return err
			}
			if rank == 0 {
				fmt.Printf("  epoch %d: allreduce=%v\n", e, sum)
			}
			if _, err := r.CoordinatedCheckpointToStore(checls[rank], st, job); err != nil {
				return err
			}
		}
		return nil
	}

	err = world.RunWithRecovery(body, func(r *mpi.Rank, k *mpi.RankKilled) error {
		fmt.Printf("  rank %d died at op %d; restoring from %s\n",
			k.Rank, k.Op, world.CommittedManifest())
		cl, pr, err := world.RestoreRank(st, job, r.Rank(), core.Options{})
		if err != nil {
			return err
		}
		checls[r.Rank()] = cl
		fmt.Printf("  restored rank %d: %.2f MB segment, %d messages replayed, %s recovery vtime\n",
			pr.Rank, float64(pr.SegmentBytes)/1e6, pr.ReplayedMessages, pr.RecoveryVtime)
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	rec := world.RecoveryStats()
	fmt.Printf("verified: %d epochs, %d committed generations, %d partial restore(s), survivors never rolled back\n",
		epochs, world.Generation(), rec.PartialRestores)
}
