// Scheduler: dynamic job scheduling on a heterogeneous GPU cluster —
// the application the paper positions CheCL as an infrastructure for
// (§IV-C, §VI).
//
// Two long-running jobs start on a CPU-only node. A GPU node with a Tesla
// C1060 and one with a Radeon HD5870 have free slots. The planner uses
// the migration-cost model Tm = α·M + Tr + β (calibrated from one probe
// migration) to decide which job each GPU slot is worth paying the
// migration cost for, and the scheduler then really migrates the chosen
// jobs with CheCL over the shared NFS.
package main

import (
	"fmt"
	"log"

	"checl/internal/apps"
	"checl/internal/core"
	"checl/internal/hw"
	"checl/internal/ocl"
	"checl/internal/proc"
	"checl/internal/sched"
)

func main() {
	// A heterogeneous cluster: one CPU-only node and two GPU nodes.
	cluster := proc.NewCluster("node", 3, hw.TableISpec(), func(i int) []*ocl.Vendor {
		switch i {
		case 0:
			return []*ocl.Vendor{ocl.AMDCPUOnly()}
		case 1:
			return []*ocl.Vendor{ocl.NVIDIA()}
		default:
			return []*ocl.Vendor{ocl.AMD()}
		}
	})
	cpuNode, teslaNode, radeonNode := cluster.Nodes[0], cluster.Nodes[1], cluster.Nodes[2]

	// Two jobs run on the CPU node for lack of anything better.
	type runningJob struct {
		name  string
		app   apps.App
		checl *core.CheCL
		state sched.JobState
	}
	startJob := func(name, appName string, remaining float64, memBytes int64) *runningJob {
		app, _ := apps.ByName(appName)
		p := cpuNode.Spawn(name)
		c, err := core.Attach(p, core.Options{})
		if err != nil {
			log.Fatal(err)
		}
		env := &apps.Env{API: c, DeviceMask: ocl.DeviceTypeCPU, Scale: 0.5}
		if _, err := app.Run(env); err != nil {
			log.Fatal(err)
		}
		return &runningJob{
			name: name, app: app, checl: c,
			state: sched.JobState{
				Name: name, RemainingFlops: remaining, MemBytes: memBytes,
				Device: hw.CoreI7920(), NodeName: cpuNode.Name,
			},
		}
	}
	jobs := []*runningJob{
		startJob("md-sim", "MD", 5e13, 96<<20),         // a week of CPU time left
		startJob("sgemm-batch", "SGEMM", 8e11, 32<<20), // a modest batch
	}
	fmt.Printf("jobs started on %s (CPU only)\n", cpuNode.Name)

	// Calibrate the cost model with one probe migration (CPU node -> CPU
	// node over NFS) at two sizes, as a production scheduler would from
	// its migration history.
	model := calibrate(cluster)
	fmt.Printf("calibrated cost model: %s\n", model)

	planner := &sched.Planner{Model: model}
	slots := []sched.Slot{
		{NodeName: teslaNode.Name, Device: hw.TeslaC1060()},
		{NodeName: radeonNode.Name, Device: hw.RadeonHD5870()},
	}
	states := make([]sched.JobState, len(jobs))
	for i, j := range jobs {
		states[i] = j.state
	}
	plan := planner.Plan(states, slots)
	fmt.Println("plan:")
	for _, m := range plan {
		fmt.Printf("  %s\n", m)
	}

	// Execute the plan with real CheCL migrations.
	nodeByName := map[string]*proc.Node{
		teslaNode.Name: teslaNode, radeonNode.Name: radeonNode,
	}
	for _, move := range plan {
		for _, j := range jobs {
			if j.name != move.Job {
				continue
			}
			target := nodeByName[move.ToNode]
			rc, ms, err := core.Migrate(j.checl, cluster.NFS, j.name+".ckpt", target,
				core.Options{PreferDeviceType: hw.DeviceGPU})
			if err != nil {
				log.Fatal(err)
			}
			j.checl = rc
			fmt.Printf("migrated %s to %s: actual Tm %s (model predicted %s for the declared %d MiB working set; the demo job's real footprint is far smaller)\n",
				j.name, move.ToNode, ms.Total, move.MigrationCost, j.state.MemBytes>>20)
			// The job keeps running on its new device.
			env := &apps.Env{API: rc, DeviceMask: ocl.DeviceTypeGPU, Verify: true, Scale: 0.5}
			if _, err := j.app.Run(env); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%s verified on %s\n", j.name, move.ToDevice)
		}
	}
	for _, j := range jobs {
		j.checl.Detach()
	}
}

// calibrate fits Eq. 1 from two probe migrations of different sizes.
func calibrate(cluster *proc.Cluster) core.CostModel {
	var samples []core.CostSample
	for _, mb := range []int64{8, 32} {
		src := cluster.Nodes[0]
		p := src.Spawn("probe")
		c, err := core.Attach(p, core.Options{})
		if err != nil {
			log.Fatal(err)
		}
		plats, _ := c.GetPlatformIDs()
		devs, _ := c.GetDeviceIDs(plats[0], ocl.DeviceTypeAll)
		ctx, _ := c.CreateContext(devs[:1])
		if _, err := c.CreateCommandQueue(ctx, devs[0], 0); err != nil {
			log.Fatal(err)
		}
		if _, err := c.CreateBuffer(ctx, ocl.MemReadWrite, mb<<20, nil); err != nil {
			log.Fatal(err)
		}
		rc, ms, err := core.Migrate(c, cluster.NFS, "probe.ckpt", cluster.Nodes[0], core.Options{})
		if err != nil {
			log.Fatal(err)
		}
		rc.Detach()
		samples = append(samples, core.CostSample{
			FileSize:  ms.Checkpoint.FileSize,
			Recompile: ms.Restart.Recompile,
			Measured:  ms.Total,
		})
	}
	model, err := core.FitCostModel(samples)
	if err != nil {
		log.Fatal(err)
	}
	return model
}
