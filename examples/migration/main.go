// Migration: moving a running OpenCL process between heterogeneous nodes.
//
// A Black-Scholes pricing job starts on a node with the NVIDIA-like OpenCL
// implementation (Tesla C1060) and is live-migrated — checkpoint on the
// shared NFS, restart — to a node that only has the AMD-like
// implementation (Radeon HD5870 + CPU). Because the application only ever
// held CheCL handles, it resumes under the other vendor's OpenCL without
// noticing (§IV-C of the paper).
package main

import (
	"fmt"
	"log"

	"checl/internal/apps"
	"checl/internal/core"
	"checl/internal/hw"
	"checl/internal/ocl"
	"checl/internal/proc"
)

func main() {
	cluster := proc.NewCluster("pc", 2, hw.TableISpec(), func(i int) []*ocl.Vendor {
		if i == 0 {
			return []*ocl.Vendor{ocl.NVIDIA()}
		}
		return []*ocl.Vendor{ocl.AMD()}
	})
	src, dst := cluster.Nodes[0], cluster.Nodes[1]

	app, _ := apps.ByName("oclBlackScholes")
	p := src.Spawn(app.Name)
	cl, err := core.Attach(p, core.Options{VendorName: "NVIDIA Corporation"})
	if err != nil {
		log.Fatal(err)
	}

	env := &apps.Env{API: cl, DeviceMask: ocl.DeviceTypeGPU, Verify: true}
	if _, err := app.Run(env); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s priced its portfolio on %s (Tesla C1060)\n", app.Name, src.Name)

	// Migrate: checkpoint on NFS, kill the source incarnation, restore on
	// the AMD node. The cost model inputs (file size M, recompile Tr) are
	// reported alongside the measured Tm.
	rc, ms, err := core.Migrate(cl, cluster.NFS, "bs.ckpt", dst,
		core.Options{VendorName: "Advanced Micro Devices, Inc."})
	if err != nil {
		log.Fatal(err)
	}
	defer rc.Detach()

	fmt.Printf("migrated to %s under AMD OpenCL:\n", dst.Name)
	fmt.Printf("  checkpoint %s  (file %.2f MB)\n", ms.Checkpoint.Phases.Total(), float64(ms.Checkpoint.FileSize)/1e6)
	fmt.Printf("  restart    %s  (recompile %s)\n", ms.Restart.Total, ms.Restart.Recompile)
	fmt.Printf("  Tm         %s\n", ms.Total)

	// Predict the same migration with the Eq. 1 cost model fitted from
	// two calibration points, and compare.
	samples := []core.CostSample{
		{FileSize: ms.Checkpoint.FileSize, Recompile: ms.Restart.Recompile, Measured: ms.Total},
		{FileSize: ms.Checkpoint.FileSize * 2, Recompile: ms.Restart.Recompile,
			Measured: ms.Total + ms.Checkpoint.Phases.Write},
	}
	model, err := core.FitCostModel(samples)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  fitted model: %s\n", model)
	fmt.Printf("  predicted Tm: %s\n", model.Predict(ms.Checkpoint.FileSize, ms.Restart.Recompile))

	// The migrated process keeps computing, now on AMD hardware.
	env2 := &apps.Env{API: rc, DeviceMask: ocl.DeviceTypeGPU, Verify: true}
	if _, err := app.Run(env2); err != nil {
		log.Fatal(err)
	}
	fmt.Println("verified: the job re-priced correctly on the destination GPU")
}
