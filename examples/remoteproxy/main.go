// Remote proxy: a GPU-less workstation uses the GPU of a server over TCP.
//
// This is the §V extension the paper sketches ("allowing CheCL wrapper
// functions to communicate with a remote API proxy via TCP/IP sockets",
// in the spirit of rCUDA): the API proxy process runs on a *different*
// node than the application, so the forwarding cost is paid at NIC — not
// host-memcpy — bandwidth. The example measures the price of remoteness
// for a transfer-bound and a compute-bound workload.
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"math"

	"checl/internal/hw"
	"checl/internal/ocl"
	"checl/internal/proc"
	"checl/internal/proxy"
	"checl/internal/vtime"
)

const kernelSrc = `
__kernel void iterate(__global float* x, int iters, uint n) {
    size_t i = get_global_id(0);
    if (i >= n) return;
    float v = x[i];
    for (int k = 0; k < iters; k++) {
        v = mad(v, 0.999f, 0.001f);
    }
    x[i] = v;
}`

func main() {
	workstation := proc.NewNode("workstation", hw.TableISpec()) // no GPU!
	gpuServer := proc.NewNode("gpu-server", hw.TableISpec(), ocl.NVIDIA())

	app := workstation.Spawn("thin-client-app")
	px, err := proxy.SpawnRemote(app, gpuServer, gpuServer.Vendors[0])
	if err != nil {
		log.Fatal(err)
	}
	defer px.Kill()
	api := px.Client

	plats, _ := api.GetPlatformIDs()
	devs, _ := api.GetDeviceIDs(plats[0], ocl.DeviceTypeGPU)
	info, _ := api.GetDeviceInfo(devs[0])
	fmt.Printf("%s is using a remote %s on %s over TCP\n",
		workstation.Name, info.Name, gpuServer.Name)

	ctx, _ := api.CreateContext(devs)
	q, _ := api.CreateCommandQueue(ctx, devs[0], 0)
	prog, _ := api.CreateProgramWithSource(ctx, kernelSrc)
	if err := api.BuildProgram(prog, ""); err != nil {
		log.Fatal(err)
	}
	k, _ := api.CreateKernel(prog, "iterate")

	const n = 1 << 14
	host := make([]byte, 4*n)
	for i := 0; i < n; i++ {
		binary.LittleEndian.PutUint32(host[4*i:], math.Float32bits(1))
	}
	buf, _ := api.CreateBuffer(ctx, ocl.MemReadWrite, 4*n, nil)

	// Transfer-bound phase: ship the working set to the server.
	sw := vtime.NewStopwatch(workstation.Clock)
	if _, err := api.EnqueueWriteBuffer(q, buf, true, 0, host, nil); err != nil {
		log.Fatal(err)
	}
	upload := sw.Reset()

	// Compute-bound phase: iterate on the server's GPU without moving data.
	h := make([]byte, 8)
	binary.LittleEndian.PutUint64(h, uint64(buf))
	api.SetKernelArg(k, 0, 8, h)
	iters := make([]byte, 4)
	binary.LittleEndian.PutUint32(iters, 64)
	api.SetKernelArg(k, 1, 4, iters)
	nn := make([]byte, 4)
	binary.LittleEndian.PutUint32(nn, n)
	api.SetKernelArg(k, 2, 4, nn)
	if _, err := api.EnqueueNDRangeKernel(q, k, 1, [3]int{}, [3]int{n}, [3]int{64}, nil); err != nil {
		log.Fatal(err)
	}
	if err := api.Finish(q); err != nil {
		log.Fatal(err)
	}
	compute := sw.Reset()

	out, _, err := api.EnqueueReadBuffer(q, buf, true, 0, 4*n, nil)
	if err != nil {
		log.Fatal(err)
	}
	download := sw.Reset()

	v := math.Float32frombits(binary.LittleEndian.Uint32(out))
	fmt.Printf("result[0] = %.6f after 64 damped iterations (verified finite)\n", v)
	fmt.Printf("upload   %12s  (%d KB over the 1 GbE NIC)\n", upload, len(host)>>10)
	fmt.Printf("compute  %12s  (runs at full GPU speed — data stays remote)\n", compute)
	fmt.Printf("download %12s\n", download)
	st := api.Stats()
	fmt.Printf("forwarded %d API calls, %.2f MB over the wire\n",
		st.Calls, float64(st.Bytes)/1e6)
	fmt.Println("moral: keep data resident on the server; remote transfers cost NIC bandwidth")
}
