package proc

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"checl/internal/hw"
	"checl/internal/vtime"
)

func faultFS(plan DiskFaultPlan) (*FS, *FaultInjector, *vtime.Clock) {
	inj := NewFaultInjector(plan)
	fs := NewFS("faulty", hw.StorageModel{Name: "faulty", Write: 100 * hw.MBps, Read: 100 * hw.MBps}, WithFault(inj))
	return fs, inj, vtime.NewClock()
}

func TestDiskFaultTornWrite(t *testing.T) {
	fs, inj, clock := faultFS(DiskFaultPlan{Seed: 1, EveryN: 1, Max: 1, Kinds: []DiskFaultKind{DiskFaultTornWrite}})
	data := bytes.Repeat([]byte{0xab}, 1000)
	err := fs.WriteFile(clock, "f", data)
	var eio *ErrIO
	if !errors.As(err, &eio) {
		t.Fatalf("torn write returned %v, want *ErrIO", err)
	}
	got, err := fs.ReadFile(clock, "f")
	if err != nil {
		t.Fatalf("reading torn file: %v", err)
	}
	if len(got) != 500 || !bytes.Equal(got, data[:500]) {
		t.Fatalf("torn write persisted %d bytes, want the 500-byte prefix", len(got))
	}
	if inj.Injected() != 1 {
		t.Fatalf("Injected() = %d, want 1", inj.Injected())
	}
	// The plan is exhausted; a rewrite goes through and replaces the tear.
	if err := fs.WriteFile(clock, "f", data); err != nil {
		t.Fatalf("rewrite after torn write: %v", err)
	}
	if got, _ := fs.ReadFile(clock, "f"); !bytes.Equal(got, data) {
		t.Fatalf("rewrite did not replace torn content")
	}
}

func TestDiskFaultLostWrite(t *testing.T) {
	fs, _, clock := faultFS(DiskFaultPlan{Seed: 2, EveryN: 2, Max: 1, Kinds: []DiskFaultKind{DiskFaultLostWrite}})
	if err := fs.WriteFile(clock, "f", []byte("old")); err != nil {
		t.Fatalf("first write: %v", err)
	}
	// Second write is the faulted one: acknowledged, nothing persisted.
	if err := fs.WriteFile(clock, "f", []byte("new content")); err != nil {
		t.Fatalf("lost write must be acknowledged, got %v", err)
	}
	got, err := fs.ReadFile(clock, "f")
	if err != nil || string(got) != "old" {
		t.Fatalf("after lost write file holds %q (err %v), want the old content", got, err)
	}
}

func TestDiskFaultBitRotPersists(t *testing.T) {
	fs, _, clock := faultFS(DiskFaultPlan{Seed: 3, EveryN: 2, Max: 1, Kinds: []DiskFaultKind{DiskFaultBitRot}})
	data := bytes.Repeat([]byte{0x55}, 256)
	if err := fs.WriteFile(clock, "f", data); err != nil {
		t.Fatalf("write: %v", err)
	}
	rotten, err := fs.ReadFile(clock, "f")
	if err != nil {
		t.Fatalf("rotten read errored: %v", err)
	}
	if bytes.Equal(rotten, data) {
		t.Fatalf("bit rot did not corrupt the returned data")
	}
	diff := 0
	for i := range data {
		for b := 0; b < 8; b++ {
			if (rotten[i]^data[i])&(1<<b) != 0 {
				diff++
			}
		}
	}
	if diff != 1 {
		t.Fatalf("bit rot flipped %d bits, want exactly 1", diff)
	}
	// The flip persists: the next (unfaulted) read sees the same rot.
	again, err := fs.ReadFile(clock, "f")
	if err != nil || !bytes.Equal(again, rotten) {
		t.Fatalf("bit rot did not persist (err %v)", err)
	}
}

func TestDiskFaultEIOAndNoSpaceLeaveDataIntact(t *testing.T) {
	fs, _, clock := faultFS(DiskFaultPlan{Seed: 4, EveryN: 2, Kinds: []DiskFaultKind{DiskFaultEIO, DiskFaultNoSpace}})
	if err := fs.WriteFile(clock, "f", []byte("stable")); err != nil {
		t.Fatalf("first write: %v", err)
	}
	sawEIO, sawNoSpace := false, false
	for i := 0; i < 64; i++ {
		err := fs.WriteFile(clock, "f", []byte("clobber"))
		if err != nil {
			var eio *ErrIO
			var nospace *ErrNoSpace
			switch {
			case errors.As(err, &eio):
				sawEIO = true
			case errors.As(err, &nospace):
				sawNoSpace = true
			default:
				t.Fatalf("unexpected error kind: %v", err)
			}
			// The failed write must not have touched the file.
			got, rerr := fs.ReadFile(clock, "f")
			for rerr != nil { // reads can draw a transient EIO too
				got, rerr = fs.ReadFile(clock, "f")
			}
			if string(got) == "clobber" {
				t.Fatalf("a failed write clobbered the file")
			}
		}
		// Restore the baseline for the next round.
		for fs.WriteFile(clock, "f", []byte("stable")) != nil {
		}
	}
	if !sawEIO || !sawNoSpace {
		t.Fatalf("plan with both kinds injected eio=%v nospace=%v, want both", sawEIO, sawNoSpace)
	}
}

func TestDiskFaultRenameAtomicUnderFaults(t *testing.T) {
	fs, inj, clock := faultFS(DiskFaultPlan{Seed: 5, EveryN: 2, Kinds: []DiskFaultKind{DiskFaultTornWrite, DiskFaultBitRot}})
	if err := fs.WriteFile(clock, "src", []byte("payload")); err != nil {
		t.Fatalf("write: %v", err)
	}
	// Write kinds degrade to EIO on renames; the namespace never tears.
	var renamed bool
	for i := 0; i < 8 && !renamed; i++ {
		err := fs.Rename("src", "dst")
		switch {
		case err == nil:
			renamed = true
		default:
			var eio *ErrIO
			if !errors.As(err, &eio) {
				t.Fatalf("rename fault was %v, want *ErrIO", err)
			}
			if !fs.Exists("src") || fs.Exists("dst") {
				t.Fatalf("failed rename moved files: src=%v dst=%v", fs.Exists("src"), fs.Exists("dst"))
			}
		}
	}
	if !renamed {
		t.Fatalf("rename never succeeded under EveryN=2 plan")
	}
	if fs.Exists("src") || !fs.Exists("dst") {
		t.Fatalf("successful rename left src=%v dst=%v", fs.Exists("src"), fs.Exists("dst"))
	}
	inj.Suspend() // keep the verification read itself unfaulted
	if got, err := fs.ReadFile(clock, "dst"); err != nil || string(got) != "payload" {
		t.Fatalf("renamed file holds %q (err %v)", got, err)
	}
}

func TestDiskFaultPlanDeterministic(t *testing.T) {
	run := func() []DiskFaultEvent {
		fs, inj, clock := faultFS(DiskFaultPlan{Seed: 42, EveryN: 3})
		for i := 0; i < 30; i++ {
			path := fmt.Sprintf("f%d", i%5)
			_ = fs.WriteFile(clock, path, bytes.Repeat([]byte{byte(i)}, 64))
			_, _ = fs.ReadFile(clock, path)
		}
		return inj.Events()
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatalf("plan injected nothing")
	}
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("same seed produced different fault sequences:\n%v\n%v", a, b)
	}
}

func TestDiskFaultSuspendResumeAndCounts(t *testing.T) {
	fs, inj, clock := faultFS(DiskFaultPlan{Seed: 6, EveryN: 1, Kinds: []DiskFaultKind{DiskFaultEIO}})
	inj.Suspend()
	for i := 0; i < 5; i++ {
		if err := fs.WriteFile(clock, "f", []byte("x")); err != nil {
			t.Fatalf("suspended injector faulted: %v", err)
		}
	}
	inj.Resume()
	if err := fs.WriteFile(clock, "f", []byte("x")); err == nil {
		t.Fatalf("resumed injector did not fault")
	}
	if inj.Ops() != 6 {
		t.Fatalf("Ops() = %d, want 6", inj.Ops())
	}
	if inj.Injected() != 1 {
		t.Fatalf("Injected() = %d, want 1", inj.Injected())
	}
}

func TestDiskFaultSkipFirstAndMax(t *testing.T) {
	fs, inj, clock := faultFS(DiskFaultPlan{Seed: 7, EveryN: 1, SkipFirst: 3, Max: 2, Kinds: []DiskFaultKind{DiskFaultEIO}})
	var failures []int
	for i := 1; i <= 8; i++ {
		if err := fs.WriteFile(clock, "f", []byte("x")); err != nil {
			failures = append(failures, i)
		}
	}
	if fmt.Sprint(failures) != "[4 5]" {
		t.Fatalf("faults landed on ops %v, want [4 5]", failures)
	}
	if inj.Injected() != 2 {
		t.Fatalf("Injected() = %d, want 2", inj.Injected())
	}
}
