// Package proc is the operating-system substrate of the simulation: nodes
// (machines with a clock, a hardware specification, installed OpenCL
// vendors, and filesystems), clusters sharing an NFS, and processes with
// registered memory regions, device mappings, fork, and signals.
//
// The substrate enforces the failure mode that motivates CheCL: a process
// whose address space has GPU device mappings cannot be checkpointed by a
// conventional CPR system (see internal/cpr). The API proxy exists so that
// the *application* process never acquires such mappings.
package proc

import (
	"fmt"
	"sort"
	"sync"

	"checl/internal/hw"
	"checl/internal/ocl"
	"checl/internal/vtime"
)

// Signal is a POSIX-style signal number.
type Signal int

// Signals used by the repository.
const (
	SIGUSR1 Signal = 10
	SIGTERM Signal = 15
)

// Node is one simulated machine.
type Node struct {
	Name    string
	Spec    hw.SystemSpec
	Clock   *vtime.Clock
	Vendors []*ocl.Vendor

	LocalDisk *FS
	RAMDisk   *FS
	NFS       *FS // shared with the cluster; nil for a standalone node

	mu      sync.Mutex
	nextPID int
	procs   map[int]*Process
}

// NewNode constructs a node with the given spec and installed vendors.
// Each node gets its own local disk and RAM disk.
func NewNode(name string, spec hw.SystemSpec, vendors ...*ocl.Vendor) *Node {
	return &Node{
		Name:      name,
		Spec:      spec,
		Clock:     vtime.NewClock(),
		Vendors:   vendors,
		LocalDisk: NewFS("local", spec.LocalDisk),
		RAMDisk:   NewFS("ramdisk", spec.RAMDisk),
		nextPID:   100,
		procs:     map[int]*Process{},
	}
}

// Vendor returns the installed vendor whose platform vendor string matches,
// or nil.
func (n *Node) Vendor(platformVendor string) *ocl.Vendor {
	for _, v := range n.Vendors {
		if v.PlatformVendor == platformVendor {
			return v
		}
	}
	return nil
}

// Spawn starts a fresh top-level process on the node.
func (n *Node) Spawn(name string) *Process {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.nextPID++
	p := &Process{
		PID:     n.nextPID,
		Name:    name,
		node:    n,
		alive:   true,
		regions: map[string][]byte{},
	}
	n.procs[p.PID] = p
	return p
}

// Processes returns the node's live processes sorted by PID.
func (n *Node) Processes() []*Process {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]*Process, 0, len(n.procs))
	for _, p := range n.procs {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].PID < out[j].PID })
	return out
}

// Cluster is a set of nodes sharing one NFS filesystem.
type Cluster struct {
	NFS   *FS
	Nodes []*Node
}

// NewCluster builds count nodes named base-0..count-1 with identical specs
// and vendor sets, all mounting a shared NFS whose model comes from spec.
func NewCluster(base string, count int, spec hw.SystemSpec, vendors func(i int) []*ocl.Vendor) *Cluster {
	c := &Cluster{NFS: NewFS("nfs", spec.NFS)}
	for i := 0; i < count; i++ {
		n := NewNode(fmt.Sprintf("%s-%d", base, i), spec, vendors(i)...)
		n.NFS = c.NFS
		c.Nodes = append(c.Nodes, n)
	}
	return c
}

// Process is one simulated OS process.
type Process struct {
	PID  int
	Name string

	mu           sync.Mutex
	node         *Node
	parent       *Process
	children     []*Process
	alive        bool
	deviceMapped bool
	regions      map[string][]byte
	pending      []Signal
	onExit       []func()
}

// OnExit registers fn to run when the process dies. Hooks fire after the
// process is marked dead and removed from its node, outside every process
// and node lock, in registration order — so a hook may safely take its own
// locks or call back into proc. Hooks registered on an already-dead
// process never run. The MPI layer uses this as its rank-death hook.
func (p *Process) OnExit(fn func()) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.alive {
		return
	}
	p.onExit = append(p.onExit, fn)
}

// Node returns the node the process currently runs on.
func (p *Process) Node() *Node {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.node
}

// Clock returns the clock of the process's node.
func (p *Process) Clock() *vtime.Clock { return p.Node().Clock }

// Alive reports whether the process is running.
func (p *Process) Alive() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.alive
}

// Fork creates a child process on the same node (used to launch the API
// proxy). Fork charges the node's modelled proxy-fork cost only when the
// caller asks for it via the cost parameter; plain forks are free.
func (p *Process) Fork(name string) *Process {
	n := p.Node()
	n.mu.Lock()
	n.nextPID++
	child := &Process{
		PID:     n.nextPID,
		Name:    name,
		node:    n,
		parent:  p,
		alive:   true,
		regions: map[string][]byte{},
	}
	n.procs[child.PID] = child
	n.mu.Unlock()

	p.mu.Lock()
	p.children = append(p.children, child)
	p.mu.Unlock()
	return child
}

// Children returns the live children of the process.
func (p *Process) Children() []*Process {
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []*Process
	for _, c := range p.children {
		if c.Alive2() {
			out = append(out, c)
		}
	}
	return out
}

// Alive2 is Alive without re-entering p.mu (children hold their own lock).
func (p *Process) Alive2() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.alive
}

// Kill terminates the process and (transitively) its children.
func (p *Process) Kill() {
	p.mu.Lock()
	if !p.alive {
		p.mu.Unlock()
		return
	}
	p.alive = false
	children := append([]*Process(nil), p.children...)
	node := p.node
	pid := p.PID
	hooks := p.onExit
	p.onExit = nil
	p.mu.Unlock()

	for _, c := range children {
		c.Kill()
	}
	node.mu.Lock()
	delete(node.procs, pid)
	node.mu.Unlock()
	for _, fn := range hooks {
		fn()
	}
}

// MapDevice marks the process address space as containing GPU device
// mappings (what loading a vendor OpenCL implementation does). From this
// point a conventional CPR system cannot checkpoint the process.
func (p *Process) MapDevice() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.deviceMapped = true
}

// DeviceMapped reports whether the address space has device mappings.
func (p *Process) DeviceMapped() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.deviceMapped
}

// SetRegion registers (or replaces) a named memory region of the process.
// Regions are what a CPR system dumps and restores.
func (p *Process) SetRegion(name string, data []byte) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.regions[name] = data
}

// Region returns the named region, or nil.
func (p *Process) Region(name string) []byte {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.regions[name]
}

// RemoveRegion drops a named region (e.g. freeing staged buffer copies in
// CheCL's postprocessing phase).
func (p *Process) RemoveRegion(name string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.regions, name)
}

// RegionNames lists registered regions in sorted order.
func (p *Process) RegionNames() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]string, 0, len(p.regions))
	for n := range p.regions {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// MemoryUsage reports the total bytes of registered regions — the host
// memory image size a CPR dump would write.
func (p *Process) MemoryUsage() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	var n int64
	for _, r := range p.regions {
		n += int64(len(r))
	}
	return n
}

// snapshotRegions deep-copies the region map (for checkpointing).
func (p *Process) snapshotRegions() map[string][]byte {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[string][]byte, len(p.regions))
	for k, v := range p.regions {
		out[k] = append([]byte(nil), v...)
	}
	return out
}

// SnapshotRegions exposes a deep copy of the process's memory regions.
func (p *Process) SnapshotRegions() map[string][]byte { return p.snapshotRegions() }

// RestoreRegions replaces the process's memory image (restart path).
func (p *Process) RestoreRegions(regions map[string][]byte) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.regions = make(map[string][]byte, len(regions))
	for k, v := range regions {
		p.regions[k] = append([]byte(nil), v...)
	}
}

// Signal queues a signal for the process. Delivery is cooperative: the
// process observes it at its next PollSignal (CheCL polls on every
// intercepted API call, mirroring signal-handler + flag designs).
func (p *Process) Signal(sig Signal) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.alive {
		return
	}
	p.pending = append(p.pending, sig)
}

// PollSignal dequeues the oldest pending signal; ok is false when none is
// pending.
func (p *Process) PollSignal() (Signal, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.pending) == 0 {
		return 0, false
	}
	s := p.pending[0]
	p.pending = p.pending[1:]
	return s, true
}

// PendingSignals reports the number of queued signals.
func (p *Process) PendingSignals() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.pending)
}

// MigrateTo moves a (restored) process object to a different node. Only
// the CPR restart path uses this: the process must be re-created from a
// checkpoint file, not moved live.
func (p *Process) MigrateTo(n *Node) {
	old := p.Node()
	old.mu.Lock()
	delete(old.procs, p.PID)
	old.mu.Unlock()

	n.mu.Lock()
	n.nextPID++
	newPID := n.nextPID
	p.mu.Lock()
	p.node = n
	p.PID = newPID
	p.mu.Unlock()
	n.procs[newPID] = p
	n.mu.Unlock()
}
