package proc

// Disk fault injection for the simulated filesystem. A FaultInjector
// attaches to an FS and, driven by a deterministic seeded plan, makes
// individual operations fail the way real disks fail: torn writes (only a
// prefix persists), lost writes (acknowledged but never persisted),
// at-rest bit rot surfaced by a read, and transient EIO / ENOSPC errors.
// It mirrors ipc.FaultInjector — same plan shape, same splitmix64 kind
// sequence — so store tests can run the same kill-every-K soak style the
// transport tests established.

import (
	"fmt"
	"sync"
)

// DiskFaultKind selects how an injected disk fault manifests.
type DiskFaultKind int

const (
	// DiskFaultNone leaves the operation alone.
	DiskFaultNone DiskFaultKind = iota
	// DiskFaultTornWrite persists only a prefix of the written data and
	// fails the write with *ErrIO — the classic torn page.
	DiskFaultTornWrite
	// DiskFaultLostWrite acknowledges the write as successful while
	// persisting nothing (a lost acknowledged write: the drive cached it
	// and lost power). The previous file content, if any, survives.
	DiskFaultLostWrite
	// DiskFaultBitRot flips one bit of the stored copy of the file being
	// read and returns the corrupted data. The flip persists: later reads
	// of the same file see the same rot until something rewrites it.
	DiskFaultBitRot
	// DiskFaultEIO fails the operation with *ErrIO without touching any
	// stored data — a transient I/O error a retry can get past.
	DiskFaultEIO
	// DiskFaultNoSpace fails a write with *ErrNoSpace without touching
	// stored data. Unlike a transient EIO, callers should treat it as
	// persistent and abort rather than retry.
	DiskFaultNoSpace
)

func (k DiskFaultKind) String() string {
	switch k {
	case DiskFaultNone:
		return "none"
	case DiskFaultTornWrite:
		return "torn-write"
	case DiskFaultLostWrite:
		return "lost-write"
	case DiskFaultBitRot:
		return "bit-rot"
	case DiskFaultEIO:
		return "eio"
	case DiskFaultNoSpace:
		return "no-space"
	default:
		return fmt.Sprintf("disk-fault(%d)", int(k))
	}
}

// diskKillKinds is the default fault mix: every data-destroying failure a
// retry-plus-replica recovery stack must absorb. DiskFaultNoSpace is not
// in the default mix because it models a full disk, not a flaky one;
// plans that want it list it explicitly.
var diskKillKinds = []DiskFaultKind{
	DiskFaultTornWrite,
	DiskFaultLostWrite,
	DiskFaultBitRot,
	DiskFaultEIO,
}

// DiskFaultPlan is a deterministic schedule of injected disk faults.
type DiskFaultPlan struct {
	Seed      uint64          // drives the kind choice; same seed, same faults
	EveryN    int             // inject on every Nth operation; <= 0 disables
	SkipFirst int             // leave the first SkipFirst operations alone
	Max       int             // stop injecting after Max faults; 0 = unlimited
	Kinds     []DiskFaultKind // candidate kinds; nil means diskKillKinds
}

// DiskFaultEvent records one injected fault for reporting.
type DiskFaultEvent struct {
	Op   int // 1-based index of the faulted operation
	Kind DiskFaultKind
	Path string // the file the fault landed on
}

// ErrIO reports an injected I/O error. Detect it with errors.As; unlike
// *ErrNoSpace it is transient, so retrying the operation is reasonable.
type ErrIO struct {
	FS   string
	Op   string // "read", "write", "remove", "rename"
	Path string
}

func (e *ErrIO) Error() string {
	return fmt.Sprintf("fs %s: input/output error (%s %s)", e.FS, e.Op, e.Path)
}

// opClass tells the injector which fault kinds can land on an operation.
// Kinds that make no sense for the class degrade to DiskFaultEIO, so a
// plan mixing read and write kinds still faults every Nth operation.
type opClass int

const (
	opRead opClass = iota
	opWrite
	opMeta // remove, rename: always atomic, so only EIO can land
)

// FaultInjector owns a disk fault plan's mutable state. One injector may
// be shared by several FS instances (e.g. a node's local disk and the
// cluster NFS) while the operation count and seeded RNG run on across
// them.
type FaultInjector struct {
	mu        sync.Mutex
	plan      DiskFaultPlan
	rng       uint64
	ops       int
	injected  int
	suspended int
	events    []DiskFaultEvent
}

// NewFaultInjector builds an injector for plan.
func NewFaultInjector(plan DiskFaultPlan) *FaultInjector {
	return &FaultInjector{plan: plan, rng: plan.Seed*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d}
}

// Suspend pauses injection (nestable). Recovery sweeps suspend the
// injector so repairing the disk cannot itself be faulted into a
// livelock.
func (f *FaultInjector) Suspend() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.suspended++
}

// Resume undoes one Suspend.
func (f *FaultInjector) Resume() {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.suspended > 0 {
		f.suspended--
	}
}

// Ops reports how many filesystem operations the injector has seen.
func (f *FaultInjector) Ops() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ops
}

// Injected reports how many faults have fired.
func (f *FaultInjector) Injected() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.injected
}

// Events returns the injected faults in order.
func (f *FaultInjector) Events() []DiskFaultEvent {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]DiskFaultEvent, len(f.events))
	copy(out, f.events)
	return out
}

// next counts one operation and decides its fault, if any. The returned
// bits value is the raw RNG draw; BitRot uses it to pick which bit flips.
func (f *FaultInjector) next(class opClass, path string) (kind DiskFaultKind, bits uint64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.ops++
	switch {
	case f.plan.EveryN <= 0,
		f.suspended > 0,
		f.ops <= f.plan.SkipFirst,
		f.plan.Max > 0 && f.injected >= f.plan.Max,
		f.ops%f.plan.EveryN != 0:
		return DiskFaultNone, 0
	}
	kinds := f.plan.Kinds
	if len(kinds) == 0 {
		kinds = diskKillKinds
	}
	// splitmix64 keeps the kind sequence deterministic per seed.
	f.rng += 0x9e3779b97f4a7c15
	z := f.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	k := kinds[z%uint64(len(kinds))]
	// Degrade kinds that cannot land on this operation class: a write
	// kind drawn for a read (or vice versa, or anything on a metadata
	// operation) becomes a transient EIO so the plan's cadence holds.
	switch class {
	case opRead:
		if k != DiskFaultBitRot && k != DiskFaultEIO {
			k = DiskFaultEIO
		}
	case opWrite:
		if k == DiskFaultBitRot {
			k = DiskFaultEIO
		}
	case opMeta:
		k = DiskFaultEIO
	}
	f.injected++
	f.events = append(f.events, DiskFaultEvent{Op: f.ops, Kind: k, Path: path})
	return k, z
}
