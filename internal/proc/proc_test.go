package proc

import (
	"errors"
	"testing"

	"checl/internal/hw"
	"checl/internal/ocl"
	"checl/internal/vtime"
)

func testNode() *Node {
	return NewNode("pc0", hw.TableISpec(), ocl.NVIDIA())
}

func TestSpawnForkKill(t *testing.T) {
	n := testNode()
	app := n.Spawn("app")
	if !app.Alive() || app.Node() != n {
		t.Fatal("spawned process wrong")
	}
	proxy := app.Fork("proxy")
	if proxy.PID == app.PID {
		t.Error("child shares PID with parent")
	}
	if got := app.Children(); len(got) != 1 || got[0] != proxy {
		t.Errorf("children = %v", got)
	}
	if len(n.Processes()) != 2 {
		t.Errorf("node processes = %d, want 2", len(n.Processes()))
	}
	// Killing the parent kills the tree.
	app.Kill()
	if app.Alive() || proxy.Alive() {
		t.Error("kill did not terminate the tree")
	}
	if len(n.Processes()) != 0 {
		t.Errorf("node processes after kill = %d, want 0", len(n.Processes()))
	}
	app.Kill() // idempotent
}

func TestRegions(t *testing.T) {
	n := testNode()
	p := n.Spawn("app")
	p.SetRegion("heap", make([]byte, 1024))
	p.SetRegion("stack", make([]byte, 256))
	if p.MemoryUsage() != 1280 {
		t.Errorf("memory usage = %d", p.MemoryUsage())
	}
	if got := p.RegionNames(); len(got) != 2 || got[0] != "heap" || got[1] != "stack" {
		t.Errorf("region names = %v", got)
	}
	snap := p.SnapshotRegions()
	// The snapshot must be a deep copy.
	p.Region("heap")[0] = 42
	if snap["heap"][0] == 42 {
		t.Error("snapshot aliases live region")
	}
	p.RemoveRegion("stack")
	if p.MemoryUsage() != 1024 {
		t.Errorf("after remove: %d", p.MemoryUsage())
	}
	// Restore replaces the image.
	q := n.Spawn("restored")
	q.RestoreRegions(snap)
	if q.MemoryUsage() != 1280 || q.Region("heap")[0] == 42 {
		t.Error("restore wrong")
	}
}

func TestSignalsCooperativeDelivery(t *testing.T) {
	n := testNode()
	p := n.Spawn("app")
	if _, ok := p.PollSignal(); ok {
		t.Error("no signal should be pending")
	}
	p.Signal(SIGUSR1)
	p.Signal(SIGTERM)
	if p.PendingSignals() != 2 {
		t.Errorf("pending = %d", p.PendingSignals())
	}
	s1, ok1 := p.PollSignal()
	s2, ok2 := p.PollSignal()
	if !ok1 || !ok2 || s1 != SIGUSR1 || s2 != SIGTERM {
		t.Errorf("signals = %v %v", s1, s2)
	}
	p.Kill()
	p.Signal(SIGUSR1)
	if p.PendingSignals() != 0 {
		t.Error("dead process accepted a signal")
	}
}

func TestDeviceMapping(t *testing.T) {
	n := testNode()
	p := n.Spawn("app")
	if p.DeviceMapped() {
		t.Error("fresh process has device mappings")
	}
	p.MapDevice()
	if !p.DeviceMapped() {
		t.Error("MapDevice not recorded")
	}
}

func TestClusterSharedNFS(t *testing.T) {
	c := NewCluster("pc", 3, hw.TableISpec(), func(int) []*ocl.Vendor { return []*ocl.Vendor{ocl.AMD()} })
	if len(c.Nodes) != 3 {
		t.Fatalf("nodes = %d", len(c.Nodes))
	}
	n0, n1 := c.Nodes[0], c.Nodes[1]
	if n0.NFS != n1.NFS {
		t.Fatal("NFS not shared")
	}
	if err := n0.NFS.WriteFile(n0.Clock, "snap.ckpt", make([]byte, 1<<20)); err != nil {
		t.Fatal(err)
	}
	got, err := n1.NFS.ReadFile(n1.Clock, "snap.ckpt")
	if err != nil || len(got) != 1<<20 {
		t.Fatalf("read from another node: %d bytes, %v", len(got), err)
	}
	// NFS read (21.2 MB/s) of 1 MiB should cost roughly 49 ms on n1's clock.
	if n1.Clock.Now() < vtime.Time(40*vtime.Millisecond) {
		t.Errorf("NFS read cost not charged: clock at %v", n1.Clock.Now())
	}
	if n0.Vendor("Advanced Micro Devices, Inc.") == nil {
		t.Error("vendor lookup failed")
	}
	if n0.Vendor("NVIDIA Corporation") != nil {
		t.Error("vendor lookup returned uninstalled vendor")
	}
}

func TestFSOperations(t *testing.T) {
	fs := NewFS("test", hw.StorageModel{Name: "x", Write: 100 * hw.MBps, Read: 100 * hw.MBps})
	clock := vtime.NewClock()
	if fs.Exists("a") {
		t.Error("empty fs has file")
	}
	if _, err := fs.ReadFile(clock, "a"); err == nil {
		t.Error("reading missing file should fail")
	}
	if err := fs.WriteFile(clock, "", nil); err == nil {
		t.Error("empty path should fail")
	}
	if err := fs.WriteFile(clock, "a", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile(clock, "b", make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	if sz, _ := fs.Size("a"); sz != 5 {
		t.Errorf("size = %d", sz)
	}
	if got := fs.List(); len(got) != 2 || got[0] != "a" {
		t.Errorf("list = %v", got)
	}
	if fs.TotalBytes() != 105 {
		t.Errorf("total = %d", fs.TotalBytes())
	}
	if err := fs.Remove("a"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove("a"); err == nil {
		t.Error("double remove should fail")
	}
	// Written data is copied, not aliased.
	buf := []byte{1, 2, 3}
	fs.WriteFile(clock, "c", buf)
	buf[0] = 99
	got, _ := fs.ReadFile(clock, "c")
	if got[0] != 1 {
		t.Error("WriteFile aliased caller buffer")
	}
}

func TestRAMDiskFasterThanLocalDisk(t *testing.T) {
	n := testNode()
	payload := make([]byte, 8<<20)
	c1 := vtime.NewClock()
	n.LocalDisk.WriteFile(c1, "x", payload)
	c2 := vtime.NewClock()
	n.RAMDisk.WriteFile(c2, "x", payload)
	if !(c2.Now() < c1.Now()/10) {
		t.Errorf("RAM disk (%v) should be far faster than local disk (%v)", c2.Now(), c1.Now())
	}
}

func TestMigrateTo(t *testing.T) {
	c := NewCluster("pc", 2, hw.TableISpec(), func(int) []*ocl.Vendor { return nil })
	c.Nodes[1].Spawn("other") // skew destination PID counter
	p := c.Nodes[0].Spawn("app")
	oldPID := p.PID
	p.MigrateTo(c.Nodes[1])
	if p.Node() != c.Nodes[1] {
		t.Error("node not updated")
	}
	if p.PID == oldPID {
		t.Error("destination node assigned the same PID despite skewed counter")
	}
	if len(c.Nodes[0].Processes()) != 0 || len(c.Nodes[1].Processes()) != 2 {
		t.Error("process tables not updated")
	}
}

func TestFSCapacity(t *testing.T) {
	fs := NewFS("tiny", hw.TableISpec().LocalDisk, WithCapacity(1024))
	clock := vtime.NewClock()
	if fs.Capacity() != 1024 {
		t.Fatalf("capacity = %d", fs.Capacity())
	}

	// Writes under the limit succeed.
	if err := fs.WriteFile(clock, "a", make([]byte, 600)); err != nil {
		t.Fatal(err)
	}

	// A write that would exceed it fails with the typed error, before any
	// time is charged, leaving the filesystem untouched.
	before := clock.Now()
	err := fs.WriteFile(clock, "b", make([]byte, 600))
	var nospace *ErrNoSpace
	if !errors.As(err, &nospace) {
		t.Fatalf("err = %v, want *ErrNoSpace", err)
	}
	if nospace.FS != "tiny" || nospace.Capacity != 1024 || nospace.Used != 600 || nospace.Need != 600 {
		t.Errorf("ErrNoSpace = %+v", nospace)
	}
	if clock.Now() != before {
		t.Error("refused write charged time")
	}
	if fs.Exists("b") {
		t.Error("refused write left a file behind")
	}

	// Overwrites account for the bytes they release.
	if err := fs.WriteFile(clock, "a", make([]byte, 1024)); err != nil {
		t.Errorf("overwrite within capacity failed: %v", err)
	}
	if err := fs.WriteFile(clock, "a", make([]byte, 1025)); !errors.As(err, &nospace) {
		t.Errorf("oversized overwrite: err = %v, want *ErrNoSpace", err)
	}

	// An unbounded filesystem never refuses.
	unbounded := NewFS("big", hw.TableISpec().LocalDisk)
	if err := unbounded.WriteFile(clock, "x", make([]byte, 1<<20)); err != nil {
		t.Errorf("unbounded fs refused a write: %v", err)
	}
}

func TestOnExitHooks(t *testing.T) {
	n := testNode()
	app := n.Spawn("app")
	child := app.Fork("proxy")
	var order []string
	app.OnExit(func() {
		// Hooks fire after the whole tree is dead and the node is cleaned
		// up, so a death watcher sees the final state.
		if child.Alive() {
			t.Error("hook ran before children were killed")
		}
		if len(n.Processes()) != 0 {
			t.Error("hook ran before node cleanup")
		}
		order = append(order, "a")
	})
	app.OnExit(func() { order = append(order, "b") })
	app.Kill()
	if len(order) != 2 || order[0] != "a" || order[1] != "b" {
		t.Errorf("hooks ran %v, want [a b] in registration order", order)
	}
	app.Kill() // idempotent: hooks must not re-fire
	if len(order) != 2 {
		t.Errorf("hooks re-fired on second kill: %v", order)
	}

	// Hooks registered on an already-dead process never run.
	ran := false
	app.OnExit(func() { ran = true })
	app.Kill()
	if ran {
		t.Error("hook registered after death ran")
	}
}
