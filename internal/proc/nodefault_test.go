package proc

import (
	"errors"
	"testing"

	"checl/internal/hw"
	"checl/internal/vtime"
)

func nodeTestFS(name string) *FS {
	return NewFS(name, hw.StorageModel{Write: 100 * hw.MBps, Read: 200 * hw.MBps})
}

func TestNodeStateDownGatesEveryOp(t *testing.T) {
	fs := nodeTestFS("store-0")
	clock := vtime.NewClock()
	if err := fs.WriteFile(clock, "a", []byte("hello")); err != nil {
		t.Fatalf("write: %v", err)
	}
	ns := NewNodeState("store-0")
	fs.SetNodeState(ns)
	ns.SetDown(true)

	var down *ErrNodeDown
	if err := fs.WriteFile(clock, "b", []byte("x")); !errors.As(err, &down) {
		t.Fatalf("write on down node: got %v, want *ErrNodeDown", err)
	}
	if _, err := fs.ReadFile(clock, "a"); !errors.As(err, &down) {
		t.Fatalf("read on down node: got %v, want *ErrNodeDown", err)
	}
	if err := fs.Remove("a"); !errors.As(err, &down) {
		t.Fatalf("remove on down node: got %v, want *ErrNodeDown", err)
	}
	if err := fs.Rename("a", "c"); !errors.As(err, &down) {
		t.Fatalf("rename on down node: got %v, want *ErrNodeDown", err)
	}
	if down.Node != "store-0" {
		t.Fatalf("ErrNodeDown.Node = %q, want store-0", down.Node)
	}

	// Revival restores service and the data survived the outage.
	ns.SetDown(false)
	got, err := fs.ReadFile(clock, "a")
	if err != nil || string(got) != "hello" {
		t.Fatalf("read after revival: %q, %v", got, err)
	}
}

func TestNodeStateSlowScalesChargedTime(t *testing.T) {
	fs := nodeTestFS("store-0")
	ns := NewNodeState("store-0")
	fs.SetNodeState(ns)
	data := make([]byte, 1<<20)

	base := vtime.NewClock()
	if err := fs.WriteFile(base, "a", data); err != nil {
		t.Fatalf("write: %v", err)
	}

	ns.Slow(8, 1)
	slow := vtime.NewClock()
	if err := fs.WriteFile(slow, "b", data); err != nil {
		t.Fatalf("slow write: %v", err)
	}
	if want := 8 * base.Now(); slow.Now() != want {
		t.Fatalf("slow write charged %v, want %v", slow.Now(), want)
	}

	// The slow window was one op wide: the next write runs at full speed.
	after := vtime.NewClock()
	if err := fs.WriteFile(after, "c", data); err != nil {
		t.Fatalf("write after slow window: %v", err)
	}
	if after.Now() != base.Now() {
		t.Fatalf("post-window write charged %v, want %v", after.Now(), base.Now())
	}
}

func TestNodeStateTornWriteOneShot(t *testing.T) {
	fs := nodeTestFS("store-0")
	ns := NewNodeState("store-0")
	fs.SetNodeState(ns)
	clock := vtime.NewClock()
	data := []byte("0123456789")

	ns.ArmTornWrite()
	var eio *ErrIO
	if err := fs.WriteFile(clock, "a", data); !errors.As(err, &eio) {
		t.Fatalf("armed write: got %v, want *ErrIO", err)
	}
	if n, _ := fs.Size("a"); n != int64(len(data)/2) {
		t.Fatalf("torn write persisted %d bytes, want %d", n, len(data)/2)
	}

	// One-shot: the retry goes through whole.
	if err := fs.WriteFile(clock, "a", data); err != nil {
		t.Fatalf("retry: %v", err)
	}
	got, err := fs.ReadFile(clock, "a")
	if err != nil || string(got) != string(data) {
		t.Fatalf("read after retry: %q, %v", got, err)
	}
}

func TestFlipBitCorruptsInPlace(t *testing.T) {
	fs := nodeTestFS("store-0")
	clock := vtime.NewClock()
	data := []byte("checkpoint shard payload")
	if err := fs.WriteFile(clock, "shards/x/0", data); err != nil {
		t.Fatalf("write: %v", err)
	}
	if fs.FlipBit("missing", 3) {
		t.Fatal("FlipBit on a missing file reported success")
	}
	if !fs.FlipBit("shards/x/0", 12345) {
		t.Fatal("FlipBit reported failure on a stored file")
	}
	got, err := fs.ReadFile(clock, "shards/x/0")
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	diff := 0
	for i := range got {
		if got[i] != data[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("FlipBit changed %d bytes, want exactly 1", diff)
	}
}

func TestNodeFaultInjectorDeterministicPerSeed(t *testing.T) {
	run := func(seed uint64) []NodeFaultEvent {
		inj := NewNodeFaultInjector(NodeFaultPlan{Seed: seed, EveryN: 3})
		clock := vtime.NewClock()
		for i := 0; i < 4; i++ {
			fs := nodeTestFS("store")
			fs.WriteFile(clock, "shards/seed/0", []byte("payload"))
			inj.Register(string(rune('a'+i)), fs)
		}
		for i := 0; i < 60; i++ {
			inj.Tick()
		}
		return inj.Events()
	}
	a, b := run(7), run(7)
	if len(a) == 0 {
		t.Fatal("no faults injected")
	}
	if len(a) != len(b) {
		t.Fatalf("same seed diverged: %d vs %d events", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d diverged: %+v vs %+v", i, a[i], b[i])
		}
	}
	c := run(8)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical fault schedules")
	}
}

func TestNodeFaultInjectorNeverKillsLastNode(t *testing.T) {
	inj := NewNodeFaultInjector(NodeFaultPlan{
		Seed:   3,
		EveryN: 1,
		Kinds:  []NodeFaultKind{NodeFaultCrash},
	})
	for i := 0; i < 3; i++ {
		inj.Register(string(rune('a'+i)), nodeTestFS("store"))
	}
	for i := 0; i < 200; i++ {
		inj.Tick()
	}
	if got := len(inj.Down()); got != 2 {
		t.Fatalf("%d nodes down, want 2 (one must always survive)", got)
	}
}

func TestNodeFaultInjectorReviveAndSuspend(t *testing.T) {
	inj := NewNodeFaultInjector(NodeFaultPlan{
		Seed:        5,
		EveryN:      1,
		Max:         1,
		ReviveAfter: 10,
		Kinds:       []NodeFaultKind{NodeFaultCrash},
	})
	inj.Register("a", nodeTestFS("store"))
	inj.Register("b", nodeTestFS("store"))

	inj.Suspend()
	inj.Tick()
	if inj.Injected() != 0 {
		t.Fatal("suspended injector fired")
	}
	inj.Resume()

	inj.Tick()
	if inj.Injected() != 1 || len(inj.Down()) != 1 {
		t.Fatalf("injected=%d down=%v, want one crash", inj.Injected(), inj.Down())
	}
	for i := 0; i < 10; i++ {
		inj.Tick()
	}
	if len(inj.Down()) != 0 {
		t.Fatalf("node still down after ReviveAfter: %v", inj.Down())
	}
}
