package proc

// Node-level fault injection for store fleets. Where DiskFaultPlan makes
// individual filesystem operations fail the way disks fail, NodeFaultPlan
// makes whole storage nodes fail the way cluster nodes fail: a node
// crashes (every operation on its filesystem errors until it revives or
// is replaced), a node goes slow (every operation charges a multiple of
// its modelled time for a while), a shard at rest rots (one bit of one
// stored file flips in place, silently), or a shard write tears. The two
// injectors compose: an FS may carry a per-operation FaultInjector and a
// NodeState from a NodeFaultInjector at the same time.

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// NodeFaultKind selects how an injected node fault manifests.
type NodeFaultKind int

const (
	// NodeFaultNone leaves the fleet alone.
	NodeFaultNone NodeFaultKind = iota
	// NodeFaultCrash takes one node down: every subsequent operation on
	// its filesystem fails with *ErrNodeDown until the plan's
	// ReviveAfter elapses (0 = the node stays down until replaced).
	NodeFaultCrash
	// NodeFaultSlow makes one node slow: its next SlowFor operations
	// charge SlowFactor times their modelled duration.
	NodeFaultSlow
	// NodeFaultShardRot flips one bit of one stored file on the victim
	// node, in place and silently — at-rest decay a later read observes.
	NodeFaultShardRot
	// NodeFaultTornWrite arms the victim so its next write persists only
	// a prefix and fails with *ErrIO.
	NodeFaultTornWrite
)

func (k NodeFaultKind) String() string {
	switch k {
	case NodeFaultNone:
		return "none"
	case NodeFaultCrash:
		return "node-crash"
	case NodeFaultSlow:
		return "slow-node"
	case NodeFaultShardRot:
		return "shard-rot"
	case NodeFaultTornWrite:
		return "torn-shard-write"
	default:
		return fmt.Sprintf("node-fault(%d)", int(k))
	}
}

// nodeKillKinds is the default mix: every failure mode a k+m erasure
// fleet must absorb without losing a byte.
var nodeKillKinds = []NodeFaultKind{
	NodeFaultCrash,
	NodeFaultSlow,
	NodeFaultShardRot,
	NodeFaultTornWrite,
}

// ErrNodeDown reports an operation against a crashed store node. It is
// not transient: retrying against the same node cannot succeed — the
// caller must read elsewhere (degraded read) or wait for a rebuild.
type ErrNodeDown struct {
	Node string
	Op   string
	Path string
}

func (e *ErrNodeDown) Error() string {
	return fmt.Sprintf("node %s: down (%s %s)", e.Node, e.Op, e.Path)
}

// NodeFaultPlan is a deterministic schedule of injected node faults.
type NodeFaultPlan struct {
	Seed      uint64          // drives victim and kind choice; same seed, same faults
	EveryN    int             // inject on every Nth fleet operation; <= 0 disables
	SkipFirst int             // leave the first SkipFirst operations alone
	Max       int             // stop injecting after Max faults; 0 = unlimited
	Kinds     []NodeFaultKind // candidate kinds; nil means nodeKillKinds

	// ReviveAfter brings a crashed node back after that many further
	// fleet operations; 0 keeps it down until SetDown(false) or a
	// replacement. Rebuild-style tests keep it 0.
	ReviveAfter int
	// MaxDown caps how many registered nodes may be crashed at once; a
	// crash drawn beyond the cap is dropped. 0 keeps one node alive
	// (never crash the last registered node); an erasure-fleet soak sets
	// it to the parity count m so the plan stays within what the coding
	// tolerates.
	MaxDown int
	// SlowFor / SlowFactor parameterise NodeFaultSlow: the victim's next
	// SlowFor filesystem operations charge SlowFactor times their
	// modelled duration. Defaults 64 ops at 8x.
	SlowFor    int
	SlowFactor float64
}

// NodeFaultEvent records one injected node fault for reporting.
type NodeFaultEvent struct {
	Op   int // 1-based index of the faulted fleet operation
	Kind NodeFaultKind
	Node string
	Path string // the file a shard-rot landed on, if any
}

// NodeState is the injectable node-level condition of one filesystem:
// down, slow, or armed for a torn write. An FS consults its NodeState
// (WithNodeState/SetNodeState) on every operation. Safe for concurrent
// use.
type NodeState struct {
	mu       sync.Mutex
	node     string
	down     bool
	slowFor  int
	slowBy   float64
	tornNext int
}

// NewNodeState builds a standalone healthy state (tests; the usual path
// is NodeFaultInjector.Register).
func NewNodeState(node string) *NodeState { return &NodeState{node: node} }

// Node reports the node name the state belongs to.
func (ns *NodeState) Node() string { return ns.node }

// SetDown crashes (true) or revives (false) the node.
func (ns *NodeState) SetDown(down bool) {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	ns.down = down
}

// Down reports whether the node is currently crashed. A nil state is a
// healthy node, so callers can ask an FS with no node state attached.
func (ns *NodeState) Down() bool {
	if ns == nil {
		return false
	}
	ns.mu.Lock()
	defer ns.mu.Unlock()
	return ns.down
}

// Slow makes the node's next forOps operations charge factor times their
// modelled duration.
func (ns *NodeState) Slow(factor float64, forOps int) {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	ns.slowBy, ns.slowFor = factor, forOps
}

// ArmTornWrite makes the node's next write tear (persist a prefix, fail
// with *ErrIO).
func (ns *NodeState) ArmTornWrite() {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	ns.tornNext++
}

// gate is consulted by the FS at the top of every operation: reports
// whether the node is down and the time-scale factor for this operation.
func (ns *NodeState) gate() (down bool, scale float64) {
	if ns == nil {
		return false, 1
	}
	ns.mu.Lock()
	defer ns.mu.Unlock()
	if ns.down {
		return true, 1
	}
	scale = 1
	if ns.slowFor > 0 {
		ns.slowFor--
		scale = ns.slowBy
	}
	return false, scale
}

// takeTorn consumes one armed torn write, if any.
func (ns *NodeState) takeTorn() bool {
	if ns == nil {
		return false
	}
	ns.mu.Lock()
	defer ns.mu.Unlock()
	if ns.tornNext > 0 {
		ns.tornNext--
		return true
	}
	return false
}

// NodeFaultInjector owns a node fault plan's mutable state across a set
// of registered store nodes. The fleet ticks it once per shard-level
// operation; when the plan fires, a seeded RNG picks the victim node and
// the fault kind. Deterministic per seed: same registrations in the same
// order, same tick sequence, same faults.
type NodeFaultInjector struct {
	mu        sync.Mutex
	plan      NodeFaultPlan
	rng       uint64
	ops       int
	injected  int
	suspended int
	targets   []*nodeTarget
	events    []NodeFaultEvent
	revive    map[*nodeTarget]int // target -> op count at which it comes back
}

type nodeTarget struct {
	name  string
	fs    *FS
	state *NodeState
}

// NewNodeFaultInjector builds an injector for plan.
func NewNodeFaultInjector(plan NodeFaultPlan) *NodeFaultInjector {
	if plan.SlowFor <= 0 {
		plan.SlowFor = 64
	}
	if plan.SlowFactor <= 1 {
		plan.SlowFactor = 8
	}
	return &NodeFaultInjector{
		plan:   plan,
		rng:    plan.Seed*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d,
		revive: map[*nodeTarget]int{},
	}
}

// Register adds one store node to the victim pool, attaches a fresh
// NodeState to its filesystem, and returns the state (so callers can
// also crash or revive the node by hand).
func (f *NodeFaultInjector) Register(name string, fs *FS) *NodeState {
	f.mu.Lock()
	defer f.mu.Unlock()
	st := &NodeState{node: name}
	fs.SetNodeState(st)
	f.targets = append(f.targets, &nodeTarget{name: name, fs: fs, state: st})
	return st
}

// Suspend pauses injection (nestable); Resume undoes one Suspend.
// Rebuild and scrub sweeps suspend the injector so repairing the fleet
// cannot itself be faulted into a livelock.
func (f *NodeFaultInjector) Suspend() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.suspended++
}

// Resume undoes one Suspend.
func (f *NodeFaultInjector) Resume() {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.suspended > 0 {
		f.suspended--
	}
}

// Ops reports how many fleet operations the injector has seen.
func (f *NodeFaultInjector) Ops() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ops
}

// Injected reports how many node faults have fired.
func (f *NodeFaultInjector) Injected() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.injected
}

// Events returns the injected faults in order.
func (f *NodeFaultInjector) Events() []NodeFaultEvent {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]NodeFaultEvent, len(f.events))
	copy(out, f.events)
	return out
}

// Down lists the names of currently crashed nodes, sorted.
func (f *NodeFaultInjector) Down() []string {
	f.mu.Lock()
	targets := append([]*nodeTarget(nil), f.targets...)
	f.mu.Unlock()
	var out []string
	for _, t := range targets {
		if t.state.Down() {
			out = append(out, t.name)
		}
	}
	sort.Strings(out)
	return out
}

// next draws one splitmix64 value.
func (f *NodeFaultInjector) next() uint64 {
	f.rng += 0x9e3779b97f4a7c15
	z := f.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Tick counts one fleet-level operation, revives crashed nodes whose
// time has come, and — when the plan fires — picks a victim and injects
// one fault. Crashes respect the plan's MaxDown cap (by default the last
// registered node is never taken down: an erasure fleet with every node
// dead is not a robustness scenario, it is a power cut).
func (f *NodeFaultInjector) Tick() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.ops++
	for t, at := range f.revive {
		if f.ops >= at {
			t.state.SetDown(false)
			delete(f.revive, t)
		}
	}
	switch {
	case f.plan.EveryN <= 0,
		f.suspended > 0,
		len(f.targets) == 0,
		f.ops <= f.plan.SkipFirst,
		f.plan.Max > 0 && f.injected >= f.plan.Max,
		f.ops%f.plan.EveryN != 0:
		return
	}
	kinds := f.plan.Kinds
	if len(kinds) == 0 {
		kinds = nodeKillKinds
	}
	z := f.next()
	kind := kinds[z%uint64(len(kinds))]
	victim := f.targets[(z>>16)%uint64(len(f.targets))]
	ev := NodeFaultEvent{Op: f.ops, Kind: kind, Node: victim.name}
	switch kind {
	case NodeFaultCrash:
		down := 0
		for _, t := range f.targets {
			if t.state.Down() {
				down++
			}
		}
		cap := f.plan.MaxDown
		if cap <= 0 {
			cap = len(f.targets) - 1
		}
		if down >= cap || victim.state.Down() {
			return // cap reached; a dead victim is a no-op
		}
		victim.state.SetDown(true)
		if f.plan.ReviveAfter > 0 {
			f.revive[victim] = f.ops + f.plan.ReviveAfter
		}
	case NodeFaultSlow:
		victim.state.Slow(f.plan.SlowFactor, f.plan.SlowFor)
	case NodeFaultShardRot:
		path, ok := pickRotTarget(victim.fs, f.next())
		if !ok {
			return // empty node: nothing at rest to rot
		}
		victim.fs.FlipBit(path, f.next())
		ev.Path = path
	case NodeFaultTornWrite:
		victim.state.ArmTornWrite()
	}
	f.injected++
	f.events = append(f.events, ev)
}

// pickRotTarget chooses the file a shard-rot lands on: a seeded pick
// among the node's shard files (any file when it has no shards yet).
func pickRotTarget(fs *FS, bits uint64) (string, bool) {
	paths := fs.List()
	if len(paths) == 0 {
		return "", false
	}
	var shards []string
	for _, p := range paths {
		if strings.Contains(p, "/shards/") {
			shards = append(shards, p)
		}
	}
	if len(shards) > 0 {
		paths = shards
	}
	return paths[bits%uint64(len(paths))], true
}
