package proc

import (
	"fmt"
	"sort"
	"sync"

	"checl/internal/hw"
	"checl/internal/vtime"
)

// FS is a simulated filesystem with a bandwidth/latency model. A node has
// a local-disk FS and a RAM-disk FS of its own; a cluster additionally
// shares one NFS FS across nodes. Operations charge their modelled cost to
// the caller's clock, so the same NFS is slower than the same node's RAM
// disk by exactly the Table I ratios.
type FS struct {
	name     string
	model    hw.StorageModel
	capacity int64 // 0 = unbounded
	fault    *FaultInjector
	node     *NodeState

	mu    sync.Mutex
	files map[string][]byte
}

// FSOption configures a filesystem at construction time.
type FSOption func(*FS)

// WithCapacity bounds the filesystem at the given total byte count. Writes
// that would exceed it fail with *ErrNoSpace. A non-positive capacity
// leaves the filesystem unbounded.
func WithCapacity(bytes int64) FSOption {
	return func(fs *FS) { fs.capacity = bytes }
}

// WithFault attaches a disk fault injector: every WriteFile, ReadFile,
// Remove and Rename consults it and fails (or corrupts) per the plan.
func WithFault(inj *FaultInjector) FSOption {
	return func(fs *FS) { fs.fault = inj }
}

// WithNodeState attaches a node-level state: while the node is down every
// operation fails with *ErrNodeDown, and while it is slow every operation
// charges a multiple of its modelled time. Composes with WithFault — a
// store node can be both flaky at the disk level and crashed as a whole.
func WithNodeState(ns *NodeState) FSOption {
	return func(fs *FS) { fs.node = ns }
}

// NewFS constructs an empty filesystem with the given storage model.
func NewFS(name string, model hw.StorageModel, opts ...FSOption) *FS {
	fs := &FS{name: name, model: model, files: map[string][]byte{}}
	for _, o := range opts {
		o(fs)
	}
	return fs
}

// ErrNoSpace reports a write refused because it would exceed a
// capacity-limited filesystem. Detect it with errors.As.
type ErrNoSpace struct {
	FS       string
	Capacity int64
	Used     int64
	Need     int64 // bytes the refused write required
}

func (e *ErrNoSpace) Error() string {
	return fmt.Sprintf("fs %s: no space left on device (capacity %d B, used %d B, write needs %d B)",
		e.FS, e.Capacity, e.Used, e.Need)
}

// Capacity reports the configured byte limit; 0 means unbounded.
func (fs *FS) Capacity() int64 { return fs.capacity }

// SetFault attaches (or, with nil, detaches) a disk fault injector after
// construction. Not safe to race with in-flight operations.
func (fs *FS) SetFault(inj *FaultInjector) { fs.fault = inj }

// SetNodeState attaches (or, with nil, detaches) a node-level state after
// construction. Not safe to race with in-flight operations.
func (fs *FS) SetNodeState(ns *NodeState) { fs.node = ns }

// Node exposes the attached node state, if any.
func (fs *FS) Node() *NodeState { return fs.node }

// scaled applies the node's slow factor to a modelled duration.
func scaled(d vtime.Duration, factor float64) vtime.Duration {
	if factor == 1 || d <= 0 {
		return d
	}
	return vtime.Duration(float64(d) * factor)
}

// Name identifies the filesystem ("local", "ramdisk", "nfs").
func (fs *FS) Name() string { return fs.name }

// Model exposes the storage model (used by migration-cost prediction).
func (fs *FS) Model() hw.StorageModel { return fs.model }

// WriteFile stores data at path, charging the write time to clock. On a
// capacity-limited filesystem a write that would exceed the limit fails
// with *ErrNoSpace before any time is charged.
func (fs *FS) WriteFile(clock *vtime.Clock, path string, data []byte) error {
	if path == "" {
		return fmt.Errorf("fs %s: empty path", fs.name)
	}
	down, scale := fs.node.gate()
	if down {
		return &ErrNodeDown{Node: fs.node.Node(), Op: "write", Path: path}
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.node.takeTorn() {
		n := len(data) / 2
		clock.Advance(scaled(fs.model.WriteTime(int64(n)), scale))
		fs.files[path] = append([]byte(nil), data[:n]...)
		return &ErrIO{FS: fs.name, Op: "write", Path: path}
	}
	if fs.capacity > 0 {
		used := fs.usedLocked()
		after := used - int64(len(fs.files[path])) + int64(len(data))
		if after > fs.capacity {
			return &ErrNoSpace{FS: fs.name, Capacity: fs.capacity, Used: used, Need: int64(len(data))}
		}
	}
	if fs.fault != nil {
		switch kind, _ := fs.fault.next(opWrite, path); kind {
		case DiskFaultTornWrite:
			// Only a prefix reaches the disk, replacing any previous
			// content, and the writer learns about it through an error.
			n := len(data) / 2
			clock.Advance(scaled(fs.model.WriteTime(int64(n)), scale))
			fs.files[path] = append([]byte(nil), data[:n]...)
			return &ErrIO{FS: fs.name, Op: "write", Path: path}
		case DiskFaultLostWrite:
			// The write is acknowledged but nothing persists; previous
			// content, if any, survives untouched.
			clock.Advance(scaled(fs.model.WriteTime(int64(len(data))), scale))
			return nil
		case DiskFaultEIO:
			return &ErrIO{FS: fs.name, Op: "write", Path: path}
		case DiskFaultNoSpace:
			return &ErrNoSpace{FS: fs.name, Capacity: fs.capacity, Used: fs.usedLocked(), Need: int64(len(data))}
		}
	}
	clock.Advance(scaled(fs.model.WriteTime(int64(len(data))), scale))
	fs.files[path] = append([]byte(nil), data...)
	return nil
}

// usedLocked sums stored bytes; callers hold fs.mu.
func (fs *FS) usedLocked() int64 {
	var n int64
	for _, d := range fs.files {
		n += int64(len(d))
	}
	return n
}

// ReadFile loads the file at path, charging the read time to clock.
func (fs *FS) ReadFile(clock *vtime.Clock, path string) ([]byte, error) {
	down, scale := fs.node.gate()
	if down {
		return nil, &ErrNodeDown{Node: fs.node.Node(), Op: "read", Path: path}
	}
	fs.mu.Lock()
	data, ok := fs.files[path]
	if fs.fault != nil {
		switch kind, bits := fs.fault.next(opRead, path); kind {
		case DiskFaultBitRot:
			// Flip one bit of the stored copy: at-rest decay this read is
			// the first to observe. The corruption persists until a later
			// write (or a heal) replaces the file.
			if ok && len(data) > 0 {
				rotten := append([]byte(nil), data...)
				bit := (bits >> 8) % uint64(len(rotten)*8)
				rotten[bit/8] ^= 1 << (bit % 8)
				fs.files[path] = rotten
				data = rotten
			}
		case DiskFaultEIO:
			fs.mu.Unlock()
			return nil, &ErrIO{FS: fs.name, Op: "read", Path: path}
		}
	}
	fs.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("fs %s: no such file %q", fs.name, path)
	}
	clock.Advance(scaled(fs.model.ReadTime(int64(len(data))), scale))
	return append([]byte(nil), data...), nil
}

// Remove deletes the file at path. Removing a missing file is an error.
func (fs *FS) Remove(path string) error {
	if down, _ := fs.node.gate(); down {
		return &ErrNodeDown{Node: fs.node.Node(), Op: "remove", Path: path}
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.fault != nil {
		if kind, _ := fs.fault.next(opMeta, path); kind != DiskFaultNone {
			return &ErrIO{FS: fs.name, Op: "remove", Path: path}
		}
	}
	if _, ok := fs.files[path]; !ok {
		return fmt.Errorf("fs %s: no such file %q", fs.name, path)
	}
	delete(fs.files, path)
	return nil
}

// Rename atomically moves oldPath to newPath, replacing any existing file
// there — the publish primitive crash-consistent commits hang off. It is
// a metadata operation: no transfer time is charged, and an injected
// fault (always a transient EIO; renames never tear) leaves both paths
// untouched. Renaming a missing file is an error.
func (fs *FS) Rename(oldPath, newPath string) error {
	if newPath == "" {
		return fmt.Errorf("fs %s: empty path", fs.name)
	}
	if down, _ := fs.node.gate(); down {
		return &ErrNodeDown{Node: fs.node.Node(), Op: "rename", Path: oldPath}
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.fault != nil {
		if kind, _ := fs.fault.next(opMeta, oldPath); kind != DiskFaultNone {
			return &ErrIO{FS: fs.name, Op: "rename", Path: oldPath}
		}
	}
	data, ok := fs.files[oldPath]
	if !ok {
		return fmt.Errorf("fs %s: no such file %q", fs.name, oldPath)
	}
	fs.files[newPath] = data
	delete(fs.files, oldPath)
	return nil
}

// Size reports the size of the file at path, or an error if absent.
func (fs *FS) Size(path string) (int64, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	data, ok := fs.files[path]
	if !ok {
		return 0, fmt.Errorf("fs %s: no such file %q", fs.name, path)
	}
	return int64(len(data)), nil
}

// Exists reports whether path holds a file.
func (fs *FS) Exists(path string) bool {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	_, ok := fs.files[path]
	return ok
}

// List returns all stored paths in sorted order.
func (fs *FS) List() []string {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	out := make([]string, 0, len(fs.files))
	for p := range fs.files {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// FlipBit corrupts the stored copy of path in place: bit (bits mod the
// file's bit count) flips, silently — no time is charged and no error is
// returned, exactly like decay at rest. Reports whether a bit flipped
// (false for a missing or empty file). The node fault injector uses this
// for at-rest shard rot; a later read observes the corruption.
func (fs *FS) FlipBit(path string, bits uint64) bool {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	data, ok := fs.files[path]
	if !ok || len(data) == 0 {
		return false
	}
	rotten := append([]byte(nil), data...)
	bit := bits % uint64(len(rotten)*8)
	rotten[bit/8] ^= 1 << (bit % 8)
	fs.files[path] = rotten
	return true
}

// TotalBytes reports the sum of all file sizes.
func (fs *FS) TotalBytes() int64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	var n int64
	for _, d := range fs.files {
		n += int64(len(d))
	}
	return n
}
