package apps

import (
	"fmt"
	"sort"

	"checl/internal/ocl"
)

// NVIDIA GPU Computing SDK 3.0 style samples (2/2).

func init() {
	register(App{Name: "oclMersenneTwister", Suite: "nvsdk", HasKernel: true, WorkGroupX: 64, Run: runOclMersenneTwister})
	register(App{Name: "oclQuasirandomGenerator", Suite: "nvsdk", HasKernel: true, WorkGroupX: 64, Run: runOclQuasirandom})
	register(App{Name: "oclRadixSort", Suite: "nvsdk", HasKernel: true, WorkGroupX: 64, Run: runOclRadixSort})
	register(App{Name: "oclReduction", Suite: "nvsdk", HasKernel: true, WorkGroupX: 128, Run: runOclReduction})
	register(App{Name: "oclScan", Suite: "nvsdk", HasKernel: true, WorkGroupX: 128, Run: runOclScan})
	register(App{Name: "oclSimpleMultiGPU", Suite: "nvsdk", HasKernel: true, WorkGroupX: 64, Run: runOclSimpleMultiGPU})
	register(App{Name: "oclSortingNetworks", Suite: "nvsdk", HasKernel: true, WorkGroupX: 512, Run: runOclSortingNetworks})
	register(App{Name: "oclTranspose", Suite: "nvsdk", HasKernel: true, WorkGroupX: 16, Run: runOclTranspose})
	register(App{Name: "oclVectorAdd", Suite: "nvsdk", HasKernel: true, WorkGroupX: 64, Run: runOclVectorAdd})
}

const mersenneSrc = `
__kernel void mtGenerate(__global const uint* seeds, __global float* out,
                         int perThread, uint nThreads) {
    size_t tid = get_global_id(0);
    if (tid >= nThreads) return;
    uint state = seeds[tid];
    for (int i = 0; i < perThread; i++) {
        state = state * 1664525u + 1013904223u;
        uint bits = (state >> 9) | 0x3f800000u;
        out[tid * (uint)perThread + (uint)i] = as_float(bits) - 1.0f;
    }
}`

// oclMersenneTwister: per-thread PRNG stream generation (the original uses
// the MT19937 recurrence; the structure — seeds in, per-thread streams
// out — is preserved with an LCG tempered into [0,1)).
func runOclMersenneTwister(env *Env) (Result, error) {
	s, err := begin(env, mersenneSrc)
	if err != nil {
		return Result{}, err
	}
	threads := env.scale(4096)
	perThread := 16
	rng := newLCG(41)
	seeds := make([]uint32, threads)
	for i := range seeds {
		seeds[i] = rng.uint32n()
	}
	bs, err := s.buffer(ocl.MemReadOnly, int64(4*threads), u32sToBytes(seeds))
	if err != nil {
		return s.res, err
	}
	bo, err := s.buffer(ocl.MemWriteOnly, int64(4*threads*perThread), nil)
	if err != nil {
		return s.res, err
	}
	k, err := s.kernel("mtGenerate")
	if err != nil {
		return s.res, err
	}
	if err := s.args(k, bs, bo, int32(perThread), uint32(threads)); err != nil {
		return s.res, err
	}
	if err := s.launch(k, (threads+63)/64*64, 64); err != nil {
		return s.res, err
	}
	outBytes, err := s.read(bo, int64(4*threads*perThread))
	if err != nil {
		return s.res, err
	}
	if env.Verify {
		out := bytesToF32s(outBytes)
		// Mirror the kernel for thread 0 and the last thread.
		for _, tid := range []int{0, threads - 1} {
			state := seeds[tid]
			for i := 0; i < perThread; i++ {
				state = state*1664525 + 1013904223
				bits := (state >> 9) | 0x3f800000
				want := f32FromBits(bits) - 1
				if out[tid*perThread+i] != want {
					return s.res, fmt.Errorf("oclMersenneTwister: stream %d[%d] = %v, want %v",
						tid, i, out[tid*perThread+i], want)
				}
			}
			// All outputs must lie in [0, 1).
			for i := 0; i < perThread; i++ {
				v := out[tid*perThread+i]
				if v < 0 || v >= 1 {
					return s.res, fmt.Errorf("oclMersenneTwister: out of range value %v", v)
				}
			}
		}
		s.res.Verified = true
	}
	return s.res, s.finish()
}

const quasirandomSrc = `
__kernel void quasirandom(__global float* out, uint n) {
    size_t i = get_global_id(0);
    if (i >= n) return;
    uint v = (uint)i;
    uint r = 0u;
    for (int b = 0; b < 24; b++) {
        r = (r << 1) | (v & 1u);
        v = v >> 1;
    }
    out[i] = (float)r / 16777216.0f;
}`

// oclQuasirandomGenerator: van der Corput radical-inverse sequence (the
// structure of the SDK's Sobol/Niederreiter generator: integer bit
// manipulation producing a low-discrepancy [0,1) sequence).
func runOclQuasirandom(env *Env) (Result, error) {
	s, err := begin(env, quasirandomSrc)
	if err != nil {
		return Result{}, err
	}
	n := env.scale(32768)
	bo, err := s.buffer(ocl.MemWriteOnly, int64(4*n), nil)
	if err != nil {
		return s.res, err
	}
	k, err := s.kernel("quasirandom")
	if err != nil {
		return s.res, err
	}
	if err := s.args(k, bo, uint32(n)); err != nil {
		return s.res, err
	}
	if err := s.launch(k, (n+63)/64*64, 64); err != nil {
		return s.res, err
	}
	outBytes, err := s.read(bo, int64(4*n))
	if err != nil {
		return s.res, err
	}
	if env.Verify {
		out := bytesToF32s(outBytes)
		for _, i := range []int{0, 1, 2, 3, n - 1} {
			var r uint32
			v := uint32(i)
			for b := 0; b < 24; b++ {
				r = r<<1 | v&1
				v >>= 1
			}
			want := float32(r) / 16777216.0
			if out[i] != want {
				return s.res, fmt.Errorf("oclQuasirandomGenerator: out[%d] = %v, want %v", i, out[i], want)
			}
		}
		// Low-discrepancy property: the mean of the sequence approaches 0.5.
		var mean float64
		for _, v := range out {
			mean += float64(v)
		}
		mean /= float64(n)
		if mean < 0.45 || mean > 0.55 {
			return s.res, fmt.Errorf("oclQuasirandomGenerator: mean %v, want ~0.5", mean)
		}
		s.res.Verified = true
	}
	return s.res, s.finish()
}

const radixSortSrc = `
__kernel void digitCount(__global const uint* keys, __global uint* counts,
                         int blockSize, uint shift, uint n, uint nBlocks) {
    size_t block = get_global_id(0);
    if (block >= nBlocks) return;
    uint base = (uint)block * (uint)blockSize;
    uint c0 = 0u;
    uint c1 = 0u;
    uint c2 = 0u;
    uint c3 = 0u;
    for (int i = 0; i < blockSize; i++) {
        uint idx = base + (uint)i;
        if (idx >= n) break;
        switch ((int)((keys[idx] >> shift) & 3u)) {
        case 0:
            c0 = c0 + 1u;
            break;
        case 1:
            c1 = c1 + 1u;
            break;
        case 2:
            c2 = c2 + 1u;
            break;
        default:
            c3 = c3 + 1u;
        }
    }
    counts[block * 4u + 0u] = c0;
    counts[block * 4u + 1u] = c1;
    counts[block * 4u + 2u] = c2;
    counts[block * 4u + 3u] = c3;
}
__kernel void scatter(__global const uint* keys, __global uint* out,
                      __global const uint* offsets,
                      int blockSize, uint shift, uint n, uint nBlocks) {
    size_t block = get_global_id(0);
    if (block >= nBlocks) return;
    uint base = (uint)block * (uint)blockSize;
    uint o0 = offsets[block * 4u + 0u];
    uint o1 = offsets[block * 4u + 1u];
    uint o2 = offsets[block * 4u + 2u];
    uint o3 = offsets[block * 4u + 3u];
    for (int i = 0; i < blockSize; i++) {
        uint idx = base + (uint)i;
        if (idx >= n) break;
        uint key = keys[idx];
        switch ((int)((key >> shift) & 3u)) {
        case 0:
            out[o0] = key;
            o0 = o0 + 1u;
            break;
        case 1:
            out[o1] = key;
            o1 = o1 + 1u;
            break;
        case 2:
            out[o2] = key;
            o2 = o2 + 1u;
            break;
        default:
            out[o3] = key;
            o3 = o3 + 1u;
        }
    }
}`

// runRadixSortCommon implements the block-count/host-scan/scatter LSD
// radix sort shared by oclRadixSort and the SHOC Sort benchmark.
func runRadixSortCommon(env *Env, n, bits int) (Result, error) {
	s, err := begin(env, radixSortSrc)
	if err != nil {
		return Result{}, err
	}
	blockSize := 64
	blocks := (n + blockSize - 1) / blockSize
	rng := newLCG(43)
	keys := make([]uint32, n)
	mask := uint32(1)<<uint(bits) - 1
	for i := range keys {
		keys[i] = rng.uint32n() & mask
	}
	bufA, err := s.buffer(ocl.MemReadWrite, int64(4*n), u32sToBytes(keys))
	if err != nil {
		return s.res, err
	}
	bufB, err := s.buffer(ocl.MemReadWrite, int64(4*n), nil)
	if err != nil {
		return s.res, err
	}
	bCounts, err := s.buffer(ocl.MemReadWrite, int64(4*4*blocks), nil)
	if err != nil {
		return s.res, err
	}
	bOffsets, err := s.buffer(ocl.MemReadWrite, int64(4*4*blocks), nil)
	if err != nil {
		return s.res, err
	}
	kCount, err := s.kernel("digitCount")
	if err != nil {
		return s.res, err
	}
	kScatter, err := s.kernel("scatter")
	if err != nil {
		return s.res, err
	}
	src, dst := bufA, bufB
	for shift := 0; shift < bits; shift += 2 {
		if err := s.args(kCount, src, bCounts, int32(blockSize), uint32(shift), uint32(n), uint32(blocks)); err != nil {
			return s.res, err
		}
		if err := s.launch(kCount, roundUp(blocks, 64), 64); err != nil {
			return s.res, err
		}
		countBytes, err := s.read(bCounts, int64(4*4*blocks))
		if err != nil {
			return s.res, err
		}
		counts := bytesToU32s(countBytes)
		// Host-side exclusive scan in digit-major order for a stable sort.
		offsets := make([]uint32, 4*blocks)
		var running uint32
		for d := 0; d < 4; d++ {
			for b := 0; b < blocks; b++ {
				offsets[b*4+d] = running
				running += counts[b*4+d]
			}
		}
		if err := s.write(bOffsets, u32sToBytes(offsets)); err != nil {
			return s.res, err
		}
		if err := s.args(kScatter, src, dst, bOffsets, int32(blockSize), uint32(shift), uint32(n), uint32(blocks)); err != nil {
			return s.res, err
		}
		if err := s.launch(kScatter, roundUp(blocks, 64), 64); err != nil {
			return s.res, err
		}
		src, dst = dst, src
	}
	outBytes, err := s.read(src, int64(4*n))
	if err != nil {
		return s.res, err
	}
	if env.Verify {
		got := bytesToU32s(outBytes)
		want := append([]uint32(nil), keys...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range got {
			if got[i] != want[i] {
				return s.res, fmt.Errorf("radix sort: out[%d] = %d, want %d", i, got[i], want[i])
			}
		}
		s.res.Verified = true
	}
	return s.res, s.finish()
}

// oclRadixSort: LSD radix sort over 16-bit keys. Invokes many small
// kernels with host work between them — the call-heavy pattern that
// exposes API-forwarding overheads (§IV-A).
func runOclRadixSort(env *Env) (Result, error) {
	return runRadixSortCommon(env, env.scale(8192), 16)
}

const reductionSrc = `
__kernel void reduceSum(__global const float* in, __global float* out,
                        __local float* scratch, uint n) {
    size_t gid = get_global_id(0);
    size_t lid = get_local_id(0);
    float acc = 0.0f;
    size_t stride = get_global_size(0);
    for (size_t i = gid; i < n; i += stride) {
        acc = acc + in[i];
    }
    scratch[lid] = acc;
    barrier(CLK_LOCAL_MEM_FENCE);
    for (uint s = get_local_size(0) / 2; s > 0u; s >>= 1) {
        if (lid < s) scratch[lid] = scratch[lid] + scratch[lid + s];
        barrier(CLK_LOCAL_MEM_FENCE);
    }
    if (lid == 0u) out[get_group_id(0)] = scratch[0];
}`

// runReductionCommon: grid-stride tree reduction (two kernel passes),
// shared by oclReduction and the SHOC Reduction benchmark.
func runReductionCommon(env *Env, n int, local int) (Result, error) {
	s, err := begin(env, reductionSrc)
	if err != nil {
		return Result{}, err
	}
	rng := newLCG(47)
	in := make([]float32, n)
	var want float64
	for i := range in {
		in[i] = rng.float32n()
		want += float64(in[i])
	}
	groups := 16
	bi, err := s.buffer(ocl.MemReadOnly, int64(4*n), f32sToBytes(in))
	if err != nil {
		return s.res, err
	}
	bp, err := s.buffer(ocl.MemReadWrite, int64(4*groups), nil)
	if err != nil {
		return s.res, err
	}
	bf, err := s.buffer(ocl.MemWriteOnly, 4, nil)
	if err != nil {
		return s.res, err
	}
	k, err := s.kernel("reduceSum")
	if err != nil {
		return s.res, err
	}
	if err := s.args(k, bi, bp, localArg(4*local), uint32(n)); err != nil {
		return s.res, err
	}
	if err := s.launch(k, groups*local, local); err != nil {
		return s.res, err
	}
	// Second pass: one group reduces the partials.
	if err := s.args(k, bp, bf, localArg(4*local), uint32(groups)); err != nil {
		return s.res, err
	}
	if err := s.launch(k, local, local); err != nil {
		return s.res, err
	}
	outBytes, err := s.read(bf, 4)
	if err != nil {
		return s.res, err
	}
	if env.Verify {
		got := float64(bytesToF32s(outBytes)[0])
		if !approxEqual(got, want, 1e-3) {
			return s.res, fmt.Errorf("reduction: %v, want %v", got, want)
		}
		s.res.Verified = true
	}
	return s.res, s.finish()
}

// oclReduction: parallel sum reduction.
func runOclReduction(env *Env) (Result, error) {
	return runReductionCommon(env, env.scale(131072), 128)
}

const scanSrc = `
__kernel void scanBlock(__global const float* in, __global float* out,
                        __global float* blockSums,
                        __local float* a, __local float* b, uint n) {
    size_t gid = get_global_id(0);
    size_t lid = get_local_id(0);
    size_t lsz = get_local_size(0);
    float v = 0.0f;
    if (gid < n) v = in[gid];
    a[lid] = v;
    barrier(CLK_LOCAL_MEM_FENCE);
    for (uint off = 1u; off < lsz; off <<= 1) {
        if (lid >= off) {
            b[lid] = a[lid] + a[lid - off];
        } else {
            b[lid] = a[lid];
        }
        barrier(CLK_LOCAL_MEM_FENCE);
        a[lid] = b[lid];
        barrier(CLK_LOCAL_MEM_FENCE);
    }
    if (gid < n) out[gid] = a[lid];
    if (lid == lsz - 1u) blockSums[get_group_id(0)] = a[lid];
}
__kernel void addOffsets(__global float* data, __global const float* offsets, uint n) {
    size_t gid = get_global_id(0);
    if (gid >= n) return;
    data[gid] = data[gid] + offsets[get_group_id(0)];
}`

// runScanCommon: Hillis–Steele inclusive scan per block, host scan of the
// block sums, then an offset-add pass. oclScan and SHOC Scan share it.
func runScanCommon(env *Env, n, local int) (Result, error) {
	s, err := begin(env, scanSrc)
	if err != nil {
		return Result{}, err
	}
	global := (n + local - 1) / local * local
	groups := global / local
	rng := newLCG(53)
	in := make([]float32, n)
	for i := range in {
		in[i] = rng.float32n()
	}
	bi, err := s.buffer(ocl.MemReadOnly, int64(4*n), f32sToBytes(in))
	if err != nil {
		return s.res, err
	}
	bo, err := s.buffer(ocl.MemReadWrite, int64(4*n), nil)
	if err != nil {
		return s.res, err
	}
	bsums, err := s.buffer(ocl.MemReadWrite, int64(4*groups), nil)
	if err != nil {
		return s.res, err
	}
	boff, err := s.buffer(ocl.MemReadOnly, int64(4*groups), nil)
	if err != nil {
		return s.res, err
	}
	k1, err := s.kernel("scanBlock")
	if err != nil {
		return s.res, err
	}
	k2, err := s.kernel("addOffsets")
	if err != nil {
		return s.res, err
	}
	if err := s.args(k1, bi, bo, bsums, localArg(4*local), localArg(4*local), uint32(n)); err != nil {
		return s.res, err
	}
	if err := s.launch(k1, global, local); err != nil {
		return s.res, err
	}
	sumBytes, err := s.read(bsums, int64(4*groups))
	if err != nil {
		return s.res, err
	}
	sums := bytesToF32s(sumBytes)
	offsets := make([]float32, groups)
	var running float32
	for i := 0; i < groups; i++ {
		offsets[i] = running
		running += sums[i]
	}
	if err := s.write(boff, f32sToBytes(offsets)); err != nil {
		return s.res, err
	}
	if err := s.args(k2, bo, boff, uint32(n)); err != nil {
		return s.res, err
	}
	if err := s.launch(k2, global, local); err != nil {
		return s.res, err
	}
	outBytes, err := s.read(bo, int64(4*n))
	if err != nil {
		return s.res, err
	}
	if env.Verify {
		out := bytesToF32s(outBytes)
		var acc float64
		for _, i := range []int{0, n / 3, n - 1} {
			acc = 0
			for j := 0; j <= i; j++ {
				acc += float64(in[j])
			}
			if !approxEqual(float64(out[i]), acc, 1e-3) {
				return s.res, fmt.Errorf("scan: out[%d] = %v, want %v", i, out[i], acc)
			}
		}
		s.res.Verified = true
	}
	return s.res, s.finish()
}

// oclScan: inclusive prefix sum.
func runOclScan(env *Env) (Result, error) {
	return runScanCommon(env, env.scale(32768), 128)
}

const multiGPUSrc = `
__kernel void reduceChunk(__global const float* in, __global float* partial,
                          __local float* scratch, uint n) {
    size_t gid = get_global_id(0);
    size_t lid = get_local_id(0);
    float acc = 0.0f;
    size_t stride = get_global_size(0);
    for (size_t i = gid; i < n; i += stride) {
        acc = acc + in[i];
    }
    scratch[lid] = acc;
    barrier(CLK_LOCAL_MEM_FENCE);
    for (uint s = get_local_size(0) / 2; s > 0u; s >>= 1) {
        if (lid < s) scratch[lid] = scratch[lid] + scratch[lid + s];
        barrier(CLK_LOCAL_MEM_FENCE);
    }
    if (lid == 0u) partial[get_group_id(0)] = scratch[0];
}`

// oclSimpleMultiGPU: splits a reduction across every device the platform
// exposes, one command queue per device. On NVIDIA OpenCL this is the one
// GPU; on AMD OpenCL the work spans the Radeon and the CPU device.
func runOclSimpleMultiGPU(env *Env) (Result, error) {
	api := env.API
	res := Result{}
	plats, err := api.GetPlatformIDs()
	if err != nil {
		return res, err
	}
	devs, err := api.GetDeviceIDs(plats[0], ocl.DeviceTypeAll)
	if err != nil {
		return res, err
	}
	ctx, err := api.CreateContext(devs)
	if err != nil {
		return res, err
	}
	prog, err := api.CreateProgramWithSource(ctx, multiGPUSrc)
	if err != nil {
		return res, err
	}
	if err := api.BuildProgram(prog, ""); err != nil {
		return res, err
	}
	n := env.scale(65536)
	rng := newLCG(59)
	data := make([]float32, n)
	var want float64
	for i := range data {
		data[i] = rng.float32n()
		want += float64(data[i])
	}
	per := n / len(devs)
	var got float64
	const local, groups = 64, 8
	for di, dev := range devs {
		q, err := api.CreateCommandQueue(ctx, dev, 0)
		if err != nil {
			return res, err
		}
		lo := di * per
		hi := lo + per
		if di == len(devs)-1 {
			hi = n
		}
		chunk := data[lo:hi]
		bm, err := api.CreateBuffer(ctx, ocl.MemReadOnly|ocl.MemCopyHostPtr, int64(4*len(chunk)), f32sToBytes(chunk))
		if err != nil {
			return res, err
		}
		bp, err := api.CreateBuffer(ctx, ocl.MemWriteOnly, 4*groups, nil)
		if err != nil {
			return res, err
		}
		k, err := api.CreateKernel(prog, "reduceChunk")
		if err != nil {
			return res, err
		}
		sess := &session{env: env, api: api, q: q, res: res}
		if err := sess.args(k, bm, bp, localArg(4*local), uint32(len(chunk))); err != nil {
			return res, err
		}
		if err := sess.launch(k, groups*local, local); err != nil {
			return sess.res, err
		}
		partBytes, _, err := api.EnqueueReadBuffer(q, bp, true, 0, 4*groups, nil)
		if err != nil {
			return sess.res, err
		}
		for _, p := range bytesToF32s(partBytes) {
			got += float64(p)
		}
		res = sess.res
	}
	if env.Verify {
		if !approxEqual(got, want, 1e-3) {
			return res, fmt.Errorf("oclSimpleMultiGPU: sum %v, want %v", got, want)
		}
		res.Verified = true
	}
	return res, nil
}

const sortingNetworksSrc = `
__kernel void bitonicSortLocal(__global uint* keys, __local uint* tile, uint n) {
    size_t lid = get_local_id(0);
    size_t lsz = get_local_size(0);
    tile[lid] = keys[lid];
    tile[lid + lsz] = keys[lid + lsz];
    barrier(CLK_LOCAL_MEM_FENCE);
    for (uint size = 2u; size <= n; size <<= 1) {
        for (uint stride = size / 2u; stride > 0u; stride >>= 1) {
            barrier(CLK_LOCAL_MEM_FENCE);
            uint pos = 2u * (uint)lid - ((uint)lid & (stride - 1u));
            uint other = pos + stride;
            uint dir = ((uint)pos & size) == 0u ? 0u : 1u;
            uint x = tile[pos];
            uint y = tile[other];
            uint doSwap = 0u;
            if (dir == 0u && x > y) doSwap = 1u;
            if (dir == 1u && x < y) doSwap = 1u;
            if (doSwap == 1u) {
                tile[pos] = y;
                tile[other] = x;
            }
        }
    }
    barrier(CLK_LOCAL_MEM_FENCE);
    keys[lid] = tile[lid];
    keys[lid + lsz] = tile[lid + lsz];
}`

// oclSortingNetworks: bitonic sort of 1024 keys by one 512-wide work-group
// — the geometry that does not fit the AMD GPU's 256 work-item x-limit
// (the non-portable sample of §IV-A).
func runOclSortingNetworks(env *Env) (Result, error) {
	s, err := begin(env, sortingNetworksSrc)
	if err != nil {
		return Result{}, err
	}
	const n, local = 1024, 512
	rng := newLCG(61)
	keys := make([]uint32, n)
	for i := range keys {
		keys[i] = rng.uint32n()
	}
	bk, err := s.buffer(ocl.MemReadWrite, 4*n, u32sToBytes(keys))
	if err != nil {
		return s.res, err
	}
	k, err := s.kernel("bitonicSortLocal")
	if err != nil {
		return s.res, err
	}
	if err := s.args(k, bk, localArg(4*n), uint32(n)); err != nil {
		return s.res, err
	}
	if err := s.launch(k, local, local); err != nil {
		return s.res, err
	}
	outBytes, err := s.read(bk, 4*n)
	if err != nil {
		return s.res, err
	}
	if env.Verify {
		got := bytesToU32s(outBytes)
		for i := 1; i < n; i++ {
			if got[i-1] > got[i] {
				return s.res, fmt.Errorf("oclSortingNetworks: not sorted at %d", i)
			}
		}
		s.res.Verified = true
	}
	return s.res, s.finish()
}

const transposeSrc = `
__kernel void transpose(__global const float* in, __global float* out,
                        __local float* tile, int w, int h) {
    int x = (int)get_global_id(0);
    int y = (int)get_global_id(1);
    int lx = (int)get_local_id(0);
    int ly = (int)get_local_id(1);
    int lw = (int)get_local_size(0);
    if (x < w && y < h) tile[ly * lw + lx] = in[y * w + x];
    barrier(CLK_LOCAL_MEM_FENCE);
    int ox = (int)get_group_id(1) * (int)get_local_size(1) + lx;
    int oy = (int)get_group_id(0) * lw + ly;
    if (ox < h && oy < w) out[oy * h + ox] = tile[lx * lw + ly];
}`

// oclTranspose: tiled matrix transpose through local memory.
func runOclTranspose(env *Env) (Result, error) {
	s, err := begin(env, transposeSrc)
	if err != nil {
		return Result{}, err
	}
	w, h := env.scale(128), 64
	w = (w / 16) * 16
	rng := newLCG(67)
	in := make([]float32, w*h)
	for i := range in {
		in[i] = rng.float32n()
	}
	bi, err := s.buffer(ocl.MemReadOnly, int64(4*w*h), f32sToBytes(in))
	if err != nil {
		return s.res, err
	}
	bo, err := s.buffer(ocl.MemWriteOnly, int64(4*w*h), nil)
	if err != nil {
		return s.res, err
	}
	k, err := s.kernel("transpose")
	if err != nil {
		return s.res, err
	}
	if err := s.args(k, bi, bo, localArg(4*16*16), int32(w), int32(h)); err != nil {
		return s.res, err
	}
	if err := s.launchND(k, 2, [3]int{w, h}, [3]int{16, 16}); err != nil {
		return s.res, err
	}
	outBytes, err := s.read(bo, int64(4*w*h))
	if err != nil {
		return s.res, err
	}
	if env.Verify {
		out := bytesToF32s(outBytes)
		for y := 0; y < h; y += 7 {
			for x := 0; x < w; x += 13 {
				if out[x*h+y] != in[y*w+x] {
					return s.res, fmt.Errorf("oclTranspose: [%d,%d] = %v, want %v", x, y, out[x*h+y], in[y*w+x])
				}
			}
		}
		s.res.Verified = true
	}
	return s.res, s.finish()
}

const vectorAddSrc = `
__kernel void vectorAdd(__global const float* a, __global const float* b,
                        __global float* c, uint n) {
    size_t i = get_global_id(0);
    if (i < n) c[i] = a[i] + b[i];
}`

// oclVectorAdd: the canonical first OpenCL program.
func runOclVectorAdd(env *Env) (Result, error) {
	s, err := begin(env, vectorAddSrc)
	if err != nil {
		return Result{}, err
	}
	n := env.scale(131072)
	rng := newLCG(71)
	a := make([]float32, n)
	b := make([]float32, n)
	for i := 0; i < n; i++ {
		a[i] = rng.float32n()
		b[i] = rng.float32n()
	}
	ba, err := s.buffer(ocl.MemReadOnly, int64(4*n), f32sToBytes(a))
	if err != nil {
		return s.res, err
	}
	bb, err := s.buffer(ocl.MemReadOnly, int64(4*n), f32sToBytes(b))
	if err != nil {
		return s.res, err
	}
	bc, err := s.buffer(ocl.MemWriteOnly, int64(4*n), nil)
	if err != nil {
		return s.res, err
	}
	k, err := s.kernel("vectorAdd")
	if err != nil {
		return s.res, err
	}
	if err := s.args(k, ba, bb, bc, uint32(n)); err != nil {
		return s.res, err
	}
	if err := s.launch(k, (n+63)/64*64, 64); err != nil {
		return s.res, err
	}
	outBytes, err := s.read(bc, int64(4*n))
	if err != nil {
		return s.res, err
	}
	if env.Verify {
		out := bytesToF32s(outBytes)
		for i := 0; i < n; i += 997 {
			if out[i] != a[i]+b[i] {
				return s.res, fmt.Errorf("oclVectorAdd: c[%d] = %v, want %v", i, out[i], a[i]+b[i])
			}
		}
		s.res.Verified = true
	}
	return s.res, s.finish()
}

func f32FromBits(bits uint32) float32 {
	return bytesToF32s([]byte{byte(bits), byte(bits >> 8), byte(bits >> 16), byte(bits >> 24)})[0]
}
