// Package apps re-implements the benchmark programs of the paper's
// evaluation against the public ocl.API surface: 19 NVIDIA-SDK-style
// samples, the SHOC suite, and the three Parboil ports (cp, mri-fhd,
// mri-q, with the paper's size variants). Every program carries real
// OpenCL C kernel source (compiled and interpreted by the simulated
// devices), a host driver, and an optional self-verification against a Go
// reference.
//
// Each app runs against ANY ocl.API implementation — the vendor runtime
// directly (the paper's "native OpenCL" baseline) or a CheCL instance —
// which is exactly how Fig. 4 compares the two.
package apps

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"checl/internal/ocl"
)

// Env is the execution environment handed to an app.
type Env struct {
	// API is the OpenCL implementation (native runtime or CheCL).
	API ocl.API
	// DeviceMask selects the compute device (GPU for the two GPU
	// configurations, CPU for AMD-on-CPU). Zero selects any device.
	DeviceMask ocl.DeviceTypeMask
	// Scale multiplies default problem sizes (Fig. 6 sweeps it).
	Scale float64
	// Verify enables self-checking against the Go reference.
	Verify bool
	// AfterLaunch, when set, runs after every kernel enqueue — the hook
	// the Fig. 5 harness uses to checkpoint "once after every kernel
	// execution" with at least one uncompleted command in the queue.
	AfterLaunch func(q ocl.CommandQueue) error
}

func (e *Env) scale(n int) int {
	if e.Scale <= 0 {
		return n
	}
	v := int(float64(n) * e.Scale)
	if v < 1 {
		return 1
	}
	return v
}

// Result summarises one app run.
type Result struct {
	Launches  int   // kernel launches performed
	HostBytes int64 // bytes explicitly transferred host<->device
	Verified  bool
}

// App is one benchmark program.
type App struct {
	Name  string
	Suite string // "nvsdk", "shoc", "parboil"
	// HasKernel is false for pure-transfer/compile benchmarks, which the
	// paper excludes from the checkpoint experiments (Fig. 5).
	HasKernel bool
	// WorkGroupX is the widest x-dimension work-group the app launches;
	// devices with a smaller limit cannot run it (oclSortingNetworks on
	// the AMD GPU, §IV-A).
	WorkGroupX int
	Run        func(env *Env) (Result, error)
}

// registry is populated by the per-suite files' init functions.
var registry []App

func register(a App) { registry = append(registry, a) }

// All returns every app, NVIDIA SDK first, then SHOC, then Parboil, each
// suite in registration order — the x-axis order of Figs. 4, 5, 7, 8.
func All() []App {
	out := append([]App(nil), registry...)
	rank := map[string]int{"nvsdk": 0, "shoc": 1, "parboil": 2}
	sort.SliceStable(out, func(i, j int) bool { return rank[out[i].Suite] < rank[out[j].Suite] })
	return out
}

// ByName returns the named app.
func ByName(name string) (App, bool) {
	for _, a := range registry {
		if a.Name == name {
			return a, true
		}
	}
	return App{}, false
}

// BySuite returns the apps of one suite in registration order.
func BySuite(suite string) []App {
	var out []App
	for _, a := range registry {
		if a.Suite == suite {
			out = append(out, a)
		}
	}
	return out
}

// ---- shared driver helpers ----

// session wraps the boilerplate every app shares: platform, device,
// context, queue, program, kernels.
type session struct {
	env     *Env
	api     ocl.API
	dev     ocl.DeviceID
	info    ocl.DeviceInfo
	ctx     ocl.Context
	q       ocl.CommandQueue
	prog    ocl.Program
	kernels map[string]ocl.Kernel
	res     Result
}

// begin sets up a session and builds source (when non-empty).
func begin(env *Env, source string) (*session, error) {
	s := &session{env: env, api: env.API, kernels: map[string]ocl.Kernel{}}
	plats, err := s.api.GetPlatformIDs()
	if err != nil {
		return nil, err
	}
	mask := env.DeviceMask
	if mask == 0 {
		mask = ocl.DeviceTypeAll
	}
	devs, err := s.api.GetDeviceIDs(plats[0], mask)
	if err != nil {
		return nil, err
	}
	s.dev = devs[0]
	if s.info, err = s.api.GetDeviceInfo(s.dev); err != nil {
		return nil, err
	}
	if s.ctx, err = s.api.CreateContext(devs[:1]); err != nil {
		return nil, err
	}
	if s.q, err = s.api.CreateCommandQueue(s.ctx, s.dev, ocl.QueueProfilingEnable); err != nil {
		return nil, err
	}
	if source != "" {
		if err := s.buildProgram(source); err != nil {
			return nil, err
		}
	}
	return s, nil
}

func (s *session) buildProgram(source string) error {
	p, err := s.api.CreateProgramWithSource(s.ctx, source)
	if err != nil {
		return err
	}
	if err := s.api.BuildProgram(p, ""); err != nil {
		return err
	}
	s.prog = p
	return nil
}

// kernel creates (and caches) a kernel from the session program.
func (s *session) kernel(name string) (ocl.Kernel, error) {
	if k, ok := s.kernels[name]; ok {
		return k, nil
	}
	k, err := s.api.CreateKernel(s.prog, name)
	if err != nil {
		return 0, err
	}
	s.kernels[name] = k
	return k, nil
}

// buffer allocates a device buffer, optionally initialised from host data.
func (s *session) buffer(flags ocl.MemFlags, size int64, host []byte) (ocl.Mem, error) {
	if host != nil {
		flags |= ocl.MemCopyHostPtr
	}
	return s.api.CreateBuffer(s.ctx, flags, size, host)
}

// write transfers host data to a buffer (blocking).
func (s *session) write(m ocl.Mem, data []byte) error {
	_, err := s.api.EnqueueWriteBuffer(s.q, m, true, 0, data, nil)
	s.res.HostBytes += int64(len(data))
	return err
}

// read transfers a buffer back to the host (blocking).
func (s *session) read(m ocl.Mem, size int64) ([]byte, error) {
	data, _, err := s.api.EnqueueReadBuffer(s.q, m, true, 0, size, nil)
	s.res.HostBytes += size
	return data, err
}

// args binds kernel arguments: ocl.Mem values become 8-byte handles,
// uint32/int32/float32 become 4-byte scalars, nil+size pairs are not
// supported here (use argLocal).
func (s *session) args(k ocl.Kernel, vals ...any) error {
	for i, v := range vals {
		var (
			size int64
			raw  []byte
		)
		switch x := v.(type) {
		case ocl.Mem:
			raw = make([]byte, 8)
			binary.LittleEndian.PutUint64(raw, uint64(x))
			size = 8
		case ocl.Sampler:
			raw = make([]byte, 8)
			binary.LittleEndian.PutUint64(raw, uint64(x))
			size = 8
		case uint32:
			raw = make([]byte, 4)
			binary.LittleEndian.PutUint32(raw, x)
			size = 4
		case int32:
			raw = make([]byte, 4)
			binary.LittleEndian.PutUint32(raw, uint32(x))
			size = 4
		case int:
			raw = make([]byte, 4)
			binary.LittleEndian.PutUint32(raw, uint32(int32(x)))
			size = 4
		case float32:
			raw = make([]byte, 4)
			binary.LittleEndian.PutUint32(raw, math.Float32bits(x))
			size = 4
		case localArg:
			if err := s.api.SetKernelArg(k, i, int64(x), nil); err != nil {
				return fmt.Errorf("arg %d (__local %d bytes): %w", i, int64(x), err)
			}
			continue
		default:
			return fmt.Errorf("arg %d: unsupported argument type %T", i, v)
		}
		if err := s.api.SetKernelArg(k, i, size, raw); err != nil {
			return fmt.Errorf("arg %d: %w", i, err)
		}
	}
	return nil
}

// localArg marks a __local allocation size in session.args.
type localArg int64

// launch enqueues a 1D kernel and fires the harness hook.
func (s *session) launch(k ocl.Kernel, global, local int) error {
	return s.launchND(k, 1, [3]int{global}, [3]int{local})
}

// launchND enqueues an N-D kernel and fires the harness hook.
func (s *session) launchND(k ocl.Kernel, dims int, global, local [3]int) error {
	if _, err := s.api.EnqueueNDRangeKernel(s.q, k, dims, [3]int{}, global, local, nil); err != nil {
		return err
	}
	s.res.Launches++
	if s.env.AfterLaunch != nil {
		if err := s.env.AfterLaunch(s.q); err != nil {
			return err
		}
	}
	return nil
}

// finish drains the queue.
func (s *session) finish() error { return s.api.Finish(s.q) }

// ---- float32 byte helpers ----

func f32sToBytes(vals []float32) []byte {
	b := make([]byte, 4*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint32(b[4*i:], math.Float32bits(v))
	}
	return b
}

func bytesToF32s(b []byte) []float32 {
	out := make([]float32, len(b)/4)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return out
}

func u32sToBytes(vals []uint32) []byte {
	b := make([]byte, 4*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint32(b[4*i:], v)
	}
	return b
}

func bytesToU32s(b []byte) []uint32 {
	out := make([]uint32, len(b)/4)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(b[4*i:])
	}
	return out
}

// roundUp rounds n up to the next multiple of m (for padding NDRange
// global sizes to the work-group size; kernels guard the excess items).
func roundUp(n, m int) int { return (n + m - 1) / m * m }

// approxEqual compares float32 results with a relative tolerance.
func approxEqual(got, want, tol float64) bool {
	d := got - want
	if d < 0 {
		d = -d
	}
	m := math.Abs(want)
	if m < 1 {
		m = 1
	}
	return d <= tol*m
}

// lcg is a deterministic pseudo-random stream for input generation (the
// stdlib's math/rand would also do; a local LCG keeps inputs stable across
// Go releases).
type lcg struct{ state uint64 }

func newLCG(seed uint64) *lcg { return &lcg{state: seed*2862933555777941757 + 3037000493} }

func (l *lcg) next() uint64 {
	l.state = l.state*6364136223846793005 + 1442695040888963407
	return l.state
}

// float32n returns a float32 in [0, 1).
func (l *lcg) float32n() float32 {
	return float32(l.next()>>40) / float32(1<<24)
}

// uint32n returns a uint32.
func (l *lcg) uint32n() uint32 { return uint32(l.next() >> 32) }
