package apps

import (
	"fmt"
	"math"

	"checl/internal/ocl"
)

// Parboil benchmark ports (cp, mri-fhd, mri-q), translated from CUDA to
// OpenCL as the paper did for its evaluation, with the paper's small/large
// dataset variants.

func init() {
	register(App{Name: "cp_default", Suite: "parboil", HasKernel: true, WorkGroupX: 64,
		Run: func(e *Env) (Result, error) { return runCP(e, 64, 128) }})
	register(App{Name: "mri-fhd_small", Suite: "parboil", HasKernel: true, WorkGroupX: 64,
		Run: func(e *Env) (Result, error) { return runMRIFHD(e, 256, 512) }})
	register(App{Name: "mri-fhd_large", Suite: "parboil", HasKernel: true, WorkGroupX: 64,
		Run: func(e *Env) (Result, error) { return runMRIFHD(e, 512, 1024) }})
	register(App{Name: "mri-q_small", Suite: "parboil", HasKernel: true, WorkGroupX: 64,
		Run: func(e *Env) (Result, error) { return runMRIQ(e, 256, 512) }})
	register(App{Name: "mri-q_large", Suite: "parboil", HasKernel: true, WorkGroupX: 64,
		Run: func(e *Env) (Result, error) { return runMRIQ(e, 512, 1024) }})
}

const cpSrc = `
__kernel void cenergy(__global const float* atomX, __global const float* atomY,
                      __global const float* atomQ,
                      __global float* grid,
                      int gridW, int nAtoms, float spacing) {
    int gx = (int)get_global_id(0);
    int gy = (int)get_global_id(1);
    if (gx >= gridW || gy >= gridW) return;
    float x = (float)gx * spacing;
    float y = (float)gy * spacing;
    float energy = 0.0f;
    for (int a = 0; a < nAtoms; a++) {
        float dx = x - atomX[a];
        float dy = y - atomY[a];
        float r2 = dx * dx + dy * dy + 0.01f;
        energy = energy + atomQ[a] * rsqrt(r2);
    }
    grid[gy * gridW + gx] = energy;
}`

// runCP: Coulombic potential over a 2D grid slice (Parboil cp).
func runCP(env *Env, gridW, nAtoms int) (Result, error) {
	s, err := begin(env, cpSrc)
	if err != nil {
		return Result{}, err
	}
	gridW = env.scale(gridW)
	const spacing = float32(0.1)
	rng := newLCG(107)
	ax := make([]float32, nAtoms)
	ay := make([]float32, nAtoms)
	aq := make([]float32, nAtoms)
	for i := 0; i < nAtoms; i++ {
		ax[i] = float32(gridW) * spacing * rng.float32n()
		ay[i] = float32(gridW) * spacing * rng.float32n()
		aq[i] = 2*rng.float32n() - 1
	}
	bx, err := s.buffer(ocl.MemReadOnly, int64(4*nAtoms), f32sToBytes(ax))
	if err != nil {
		return s.res, err
	}
	by, err := s.buffer(ocl.MemReadOnly, int64(4*nAtoms), f32sToBytes(ay))
	if err != nil {
		return s.res, err
	}
	bq, err := s.buffer(ocl.MemReadOnly, int64(4*nAtoms), f32sToBytes(aq))
	if err != nil {
		return s.res, err
	}
	bg, err := s.buffer(ocl.MemWriteOnly, int64(4*gridW*gridW), nil)
	if err != nil {
		return s.res, err
	}
	k, err := s.kernel("cenergy")
	if err != nil {
		return s.res, err
	}
	if err := s.args(k, bx, by, bq, bg, int32(gridW), int32(nAtoms), spacing); err != nil {
		return s.res, err
	}
	if err := s.launchND(k, 2, [3]int{roundUp(gridW, 64), gridW}, [3]int{64, 1}); err != nil {
		return s.res, err
	}
	gridBytes, err := s.read(bg, int64(4*gridW*gridW))
	if err != nil {
		return s.res, err
	}
	if env.Verify {
		grid := bytesToF32s(gridBytes)
		for _, idx := range []int{0, gridW*gridW/2 + 3, gridW*gridW - 1} {
			gx, gy := idx%gridW, idx/gridW
			x := float64(gx) * float64(spacing)
			y := float64(gy) * float64(spacing)
			var want float64
			for a := 0; a < nAtoms; a++ {
				dx := x - float64(ax[a])
				dy := y - float64(ay[a])
				want += float64(aq[a]) / math.Sqrt(dx*dx+dy*dy+0.01)
			}
			if !approxEqual(float64(grid[idx]), want, 1e-2) {
				return s.res, fmt.Errorf("cp: grid[%d] = %v, want %v", idx, grid[idx], want)
			}
		}
		s.res.Verified = true
	}
	return s.res, s.finish()
}

const mriFhdSrc = `
__kernel void computeFHD(__global const float* rPhi, __global const float* iPhi,
                         __global const float* kx, __global const float* ky,
                         __global const float* x, __global const float* y,
                         __global float* rFHD, __global float* iFHD,
                         int numK, uint numX) {
    size_t i = get_global_id(0);
    if (i >= numX) return;
    float xi = x[i];
    float yi = y[i];
    float rAcc = 0.0f;
    float iAcc = 0.0f;
    for (int k = 0; k < numK; k++) {
        float arg = 6.2831853f * (kx[k] * xi + ky[k] * yi);
        float c = cos(arg);
        float s = sin(arg);
        rAcc = rAcc + rPhi[k] * c - iPhi[k] * s;
        iAcc = iAcc + iPhi[k] * c + rPhi[k] * s;
    }
    rFHD[i] = rAcc;
    iFHD[i] = iAcc;
}`

// runMRIFHD: Parboil mri-fhd — F^H·d computation for non-Cartesian MRI
// reconstruction.
func runMRIFHD(env *Env, numK, numX int) (Result, error) {
	s, err := begin(env, mriFhdSrc)
	if err != nil {
		return Result{}, err
	}
	numX = env.scale(numX)
	rng := newLCG(109)
	rPhi := make([]float32, numK)
	iPhi := make([]float32, numK)
	kx := make([]float32, numK)
	ky := make([]float32, numK)
	for i := 0; i < numK; i++ {
		rPhi[i] = rng.float32n() - 0.5
		iPhi[i] = rng.float32n() - 0.5
		kx[i] = rng.float32n() - 0.5
		ky[i] = rng.float32n() - 0.5
	}
	x := make([]float32, numX)
	y := make([]float32, numX)
	for i := 0; i < numX; i++ {
		x[i] = rng.float32n()
		y[i] = rng.float32n()
	}
	mk := func(d []float32, ro bool) (ocl.Mem, error) {
		fl := ocl.MemReadOnly
		if !ro {
			fl = ocl.MemWriteOnly
		}
		if d == nil {
			return s.buffer(fl, int64(4*numX), nil)
		}
		return s.buffer(fl, int64(4*len(d)), f32sToBytes(d))
	}
	brp, err := mk(rPhi, true)
	if err != nil {
		return s.res, err
	}
	bip, err := mk(iPhi, true)
	if err != nil {
		return s.res, err
	}
	bkx, err := mk(kx, true)
	if err != nil {
		return s.res, err
	}
	bky, err := mk(ky, true)
	if err != nil {
		return s.res, err
	}
	bx, err := mk(x, true)
	if err != nil {
		return s.res, err
	}
	bby, err := mk(y, true)
	if err != nil {
		return s.res, err
	}
	brf, err := mk(nil, false)
	if err != nil {
		return s.res, err
	}
	bif, err := mk(nil, false)
	if err != nil {
		return s.res, err
	}
	k, err := s.kernel("computeFHD")
	if err != nil {
		return s.res, err
	}
	if err := s.args(k, brp, bip, bkx, bky, bx, bby, brf, bif, int32(numK), uint32(numX)); err != nil {
		return s.res, err
	}
	if err := s.launch(k, (numX+63)/64*64, 64); err != nil {
		return s.res, err
	}
	rBytes, err := s.read(brf, int64(4*numX))
	if err != nil {
		return s.res, err
	}
	if env.Verify {
		rOut := bytesToF32s(rBytes)
		for _, i := range []int{0, numX - 1} {
			var want float64
			for kk := 0; kk < numK; kk++ {
				arg := 2 * math.Pi * (float64(kx[kk])*float64(x[i]) + float64(ky[kk])*float64(y[i]))
				want += float64(rPhi[kk])*math.Cos(arg) - float64(iPhi[kk])*math.Sin(arg)
			}
			if !approxEqual(float64(rOut[i]), want, 2e-2) {
				return s.res, fmt.Errorf("mri-fhd: rFHD[%d] = %v, want %v", i, rOut[i], want)
			}
		}
		s.res.Verified = true
	}
	return s.res, s.finish()
}

const mriQSrc = `
__kernel void computeQ(__global const float* phiMag,
                       __global const float* kx, __global const float* ky,
                       __global const float* x, __global const float* y,
                       __global float* rQ, __global float* iQ,
                       int numK, uint numX) {
    size_t i = get_global_id(0);
    if (i >= numX) return;
    float xi = x[i];
    float yi = y[i];
    float rAcc = 0.0f;
    float iAcc = 0.0f;
    for (int k = 0; k < numK; k++) {
        float arg = 6.2831853f * (kx[k] * xi + ky[k] * yi);
        rAcc = mad(phiMag[k], cos(arg), rAcc);
        iAcc = mad(phiMag[k], sin(arg), iAcc);
    }
    rQ[i] = rAcc;
    iQ[i] = iAcc;
}`

// runMRIQ: Parboil mri-q — the Q matrix computation.
func runMRIQ(env *Env, numK, numX int) (Result, error) {
	s, err := begin(env, mriQSrc)
	if err != nil {
		return Result{}, err
	}
	numX = env.scale(numX)
	rng := newLCG(113)
	phi := make([]float32, numK)
	kx := make([]float32, numK)
	ky := make([]float32, numK)
	for i := 0; i < numK; i++ {
		phi[i] = rng.float32n()
		kx[i] = rng.float32n() - 0.5
		ky[i] = rng.float32n() - 0.5
	}
	x := make([]float32, numX)
	y := make([]float32, numX)
	for i := 0; i < numX; i++ {
		x[i] = rng.float32n()
		y[i] = rng.float32n()
	}
	ro := func(d []float32) (ocl.Mem, error) {
		return s.buffer(ocl.MemReadOnly, int64(4*len(d)), f32sToBytes(d))
	}
	bphi, err := ro(phi)
	if err != nil {
		return s.res, err
	}
	bkx, err := ro(kx)
	if err != nil {
		return s.res, err
	}
	bky, err := ro(ky)
	if err != nil {
		return s.res, err
	}
	bx, err := ro(x)
	if err != nil {
		return s.res, err
	}
	bby, err := ro(y)
	if err != nil {
		return s.res, err
	}
	brq, err := s.buffer(ocl.MemWriteOnly, int64(4*numX), nil)
	if err != nil {
		return s.res, err
	}
	biq, err := s.buffer(ocl.MemWriteOnly, int64(4*numX), nil)
	if err != nil {
		return s.res, err
	}
	k, err := s.kernel("computeQ")
	if err != nil {
		return s.res, err
	}
	if err := s.args(k, bphi, bkx, bky, bx, bby, brq, biq, int32(numK), uint32(numX)); err != nil {
		return s.res, err
	}
	if err := s.launch(k, (numX+63)/64*64, 64); err != nil {
		return s.res, err
	}
	rBytes, err := s.read(brq, int64(4*numX))
	if err != nil {
		return s.res, err
	}
	if env.Verify {
		rOut := bytesToF32s(rBytes)
		for _, i := range []int{0, numX / 2, numX - 1} {
			var want float64
			for kk := 0; kk < numK; kk++ {
				arg := 2 * math.Pi * (float64(kx[kk])*float64(x[i]) + float64(ky[kk])*float64(y[i]))
				want += float64(phi[kk]) * math.Cos(arg)
			}
			if !approxEqual(float64(rOut[i]), want, 2e-2) {
				return s.res, fmt.Errorf("mri-q: rQ[%d] = %v, want %v", i, rOut[i], want)
			}
		}
		s.res.Verified = true
	}
	return s.res, s.finish()
}
