package apps

import (
	"testing"

	"checl/internal/hw"
	"checl/internal/ocl"
	"checl/internal/vtime"
)

// config mirrors the paper's three evaluation configurations.
type config struct {
	name   string
	vendor func() *ocl.Vendor
	mask   ocl.DeviceTypeMask
}

func configs() []config {
	return []config{
		{"nvidia-gpu", ocl.NVIDIA, ocl.DeviceTypeGPU},
		{"amd-gpu", ocl.AMD, ocl.DeviceTypeGPU},
		{"amd-cpu", ocl.AMD, ocl.DeviceTypeCPU},
	}
}

func nativeEnv(cfg config) *Env {
	clock := vtime.NewClock()
	rt := ocl.NewRuntime(cfg.vendor(), hw.TableISpec(), clock)
	return &Env{API: rt, DeviceMask: cfg.mask, Verify: true}
}

func TestRegistryComplete(t *testing.T) {
	all := All()
	if len(all) < 34 {
		t.Fatalf("registered apps = %d, want >= 34 (19 SDK + 12+ SHOC + Parboil)", len(all))
	}
	if n := len(BySuite("nvsdk")); n != 19 {
		t.Errorf("nvsdk apps = %d, want 19", n)
	}
	if n := len(BySuite("shoc")); n < 12 {
		t.Errorf("shoc apps = %d, want >= 12", n)
	}
	if n := len(BySuite("parboil")); n != 5 {
		t.Errorf("parboil apps = %d, want 5 (cp + 2x mri-fhd + 2x mri-q)", n)
	}
	// Ordering: nvsdk first, parboil last (the figures' x-axis layout).
	if all[0].Suite != "nvsdk" || all[len(all)-1].Suite != "parboil" {
		t.Errorf("suite ordering wrong: first %s last %s", all[0].Suite, all[len(all)-1].Suite)
	}
	seen := map[string]bool{}
	for _, a := range all {
		if seen[a.Name] {
			t.Errorf("duplicate app name %q", a.Name)
		}
		seen[a.Name] = true
	}
	if _, ok := ByName("oclVectorAdd"); !ok {
		t.Error("ByName lookup failed")
	}
	if _, ok := ByName("no-such-app"); ok {
		t.Error("ByName should miss unknown names")
	}
}

// TestAllAppsVerifyOnAllConfigs runs every benchmark with verification on
// the three paper configurations against the native runtimes. The one
// expected failure is oclSortingNetworks on the AMD GPU (work-group limit,
// §IV-A).
func TestAllAppsVerifyOnAllConfigs(t *testing.T) {
	for _, cfg := range configs() {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			for _, app := range All() {
				app := app
				t.Run(app.Name, func(t *testing.T) {
					env := nativeEnv(cfg)
					info := deviceInfoFor(t, env)
					res, err := app.Run(env)
					if app.WorkGroupX > info.MaxWorkItemSizes[0] {
						// Non-portable geometry: must fail with the
						// work-group error, exactly like the paper's AMD
						// GPU runs of oclSortingNetworks.
						if ocl.StatusOf(err) != ocl.InvalidWorkGroupSize {
							t.Fatalf("expected CL_INVALID_WORK_GROUP_SIZE on %s, got %v", cfg.name, err)
						}
						return
					}
					if err != nil {
						t.Fatalf("%s failed: %v", app.Name, err)
					}
					if !res.Verified {
						t.Fatalf("%s did not verify", app.Name)
					}
					if app.HasKernel && res.Launches == 0 {
						t.Fatalf("%s declared HasKernel but launched nothing", app.Name)
					}
					if !app.HasKernel && res.Launches != 0 {
						t.Fatalf("%s declared !HasKernel but launched %d kernels", app.Name, res.Launches)
					}
				})
			}
		})
	}
}

func deviceInfoFor(t *testing.T, env *Env) ocl.DeviceInfo {
	t.Helper()
	plats, err := env.API.GetPlatformIDs()
	if err != nil {
		t.Fatal(err)
	}
	mask := env.DeviceMask
	if mask == 0 {
		mask = ocl.DeviceTypeAll
	}
	devs, err := env.API.GetDeviceIDs(plats[0], mask)
	if err != nil {
		t.Fatal(err)
	}
	info, err := env.API.GetDeviceInfo(devs[0])
	if err != nil {
		t.Fatal(err)
	}
	return info
}

func TestAfterLaunchHookFires(t *testing.T) {
	env := nativeEnv(configs()[0])
	hooks := 0
	env.AfterLaunch = func(q ocl.CommandQueue) error {
		hooks++
		return nil
	}
	app, _ := ByName("oclVectorAdd")
	res, err := app.Run(env)
	if err != nil {
		t.Fatal(err)
	}
	if hooks != res.Launches || hooks == 0 {
		t.Errorf("hook fired %d times for %d launches", hooks, res.Launches)
	}
}

func TestScaleChangesProblemSize(t *testing.T) {
	run := func(scale float64) int64 {
		env := nativeEnv(configs()[0])
		env.Scale = scale
		env.Verify = false
		app, _ := ByName("oclVectorAdd")
		res, err := app.Run(env)
		if err != nil {
			t.Fatal(err)
		}
		return res.HostBytes
	}
	small := run(0.25)
	big := run(1)
	if !(big > 2*small) {
		t.Errorf("Scale had no effect: %d vs %d bytes", small, big)
	}
}

func TestMatVecMulSizesFromDeviceMemory(t *testing.T) {
	// The paper: oclMatVecMul picks its problem from device memory, so
	// the 1 GB HD5870 runs a smaller problem than the 4 GB Tesla.
	bytesOn := func(cfg config) int64 {
		env := nativeEnv(cfg)
		env.Verify = false
		app, _ := ByName("oclMatVecMul")
		res, err := app.Run(env)
		if err != nil {
			t.Fatal(err)
		}
		return res.HostBytes
	}
	tesla := bytesOn(configs()[0])
	radeon := bytesOn(configs()[1])
	if !(radeon < tesla) {
		t.Errorf("HD5870 problem (%d B) should be smaller than Tesla's (%d B)", radeon, tesla)
	}
}

func TestTransferBoundAppsMoveData(t *testing.T) {
	for _, name := range []string{"oclBandwidthTest", "BusSpeedDownload", "BusSpeedReadback", "Triad"} {
		app, ok := ByName(name)
		if !ok {
			t.Fatalf("missing app %s", name)
		}
		env := nativeEnv(configs()[0])
		res, err := app.Run(env)
		if err != nil {
			t.Fatal(err)
		}
		if res.HostBytes < 1<<20 {
			t.Errorf("%s moved only %d bytes", name, res.HostBytes)
		}
	}
}

func TestCallHeavyAppsLaunchMany(t *testing.T) {
	for _, name := range []string{"QueueDelay", "oclRadixSort", "Stencil2D"} {
		app, _ := ByName(name)
		env := nativeEnv(configs()[0])
		res, err := app.Run(env)
		if err != nil {
			t.Fatal(err)
		}
		if res.Launches < 8 {
			t.Errorf("%s launched only %d kernels", name, res.Launches)
		}
	}
}
