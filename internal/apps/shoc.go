package apps

import (
	"fmt"
	"math"
	"math/cmplx"

	"checl/internal/ocl"
)

// SHOC benchmark suite (version 0.9.1 style). Spmv is omitted exactly as
// in the paper (it misbehaved even under native OpenCL, §IV fn. 1).

func init() {
	register(App{Name: "BusSpeedDownload", Suite: "shoc", HasKernel: false, Run: runBusSpeedDownload})
	register(App{Name: "BusSpeedReadback", Suite: "shoc", HasKernel: false, Run: runBusSpeedReadback})
	register(App{Name: "DeviceMemory", Suite: "shoc", HasKernel: true, WorkGroupX: 64, Run: runDeviceMemory})
	register(App{Name: "FFT", Suite: "shoc", HasKernel: true, WorkGroupX: 64, Run: runFFT})
	register(App{Name: "KernelCompile", Suite: "shoc", HasKernel: false, Run: runKernelCompile})
	register(App{Name: "MaxFlops", Suite: "shoc", HasKernel: true, WorkGroupX: 128, Run: runMaxFlops})
	register(App{Name: "MD", Suite: "shoc", HasKernel: true, WorkGroupX: 64, Run: runMD})
	register(App{Name: "QueueDelay", Suite: "shoc", HasKernel: true, WorkGroupX: 32, Run: runQueueDelay})
	register(App{Name: "Reduction", Suite: "shoc", HasKernel: true, WorkGroupX: 64, Run: runShocReduction})
	register(App{Name: "S3D", Suite: "shoc", HasKernel: true, WorkGroupX: 64, Run: runS3D})
	register(App{Name: "SGEMM", Suite: "shoc", HasKernel: true, WorkGroupX: 16, Run: runSGEMM})
	register(App{Name: "Scan", Suite: "shoc", HasKernel: true, WorkGroupX: 64, Run: runShocScan})
	register(App{Name: "Sort", Suite: "shoc", HasKernel: true, WorkGroupX: 64, Run: runShocSort})
	register(App{Name: "Stencil2D", Suite: "shoc", HasKernel: true, WorkGroupX: 32, Run: runStencil2D})
	register(App{Name: "Triad", Suite: "shoc", HasKernel: true, WorkGroupX: 64, Run: runTriad})
}

// BusSpeedDownload: host-to-device bandwidth sweep; no kernel.
func runBusSpeedDownload(env *Env) (Result, error) {
	s, err := begin(env, "")
	if err != nil {
		return Result{}, err
	}
	for _, mb := range []int{1, 4, 16} {
		size := int64(env.scale(mb << 20))
		m, err := s.buffer(ocl.MemReadWrite, size, nil)
		if err != nil {
			return s.res, err
		}
		if err := s.write(m, make([]byte, size)); err != nil {
			return s.res, err
		}
		if err := s.api.ReleaseMemObject(m); err != nil {
			return s.res, err
		}
	}
	s.res.Verified = env.Verify
	return s.res, s.finish()
}

// BusSpeedReadback: device-to-host bandwidth sweep; no kernel.
func runBusSpeedReadback(env *Env) (Result, error) {
	s, err := begin(env, "")
	if err != nil {
		return Result{}, err
	}
	for _, mb := range []int{1, 4, 16} {
		size := int64(env.scale(mb << 20))
		m, err := s.buffer(ocl.MemReadWrite, size, make([]byte, size))
		if err != nil {
			return s.res, err
		}
		if _, err := s.read(m, size); err != nil {
			return s.res, err
		}
		if err := s.api.ReleaseMemObject(m); err != nil {
			return s.res, err
		}
	}
	s.res.Verified = env.Verify
	return s.res, s.finish()
}

const deviceMemorySrc = `
__kernel void readGlobal(__global const float* data, __global float* out, int repeats, uint n) {
    size_t gid = get_global_id(0);
    if (gid >= n) return;
    float acc = 0.0f;
    for (int r = 0; r < repeats; r++) {
        size_t idx = (gid + (size_t)r * 1024u) % n;
        acc = acc + data[idx];
    }
    out[gid] = acc;
}
__kernel void writeGlobal(__global float* data, int repeats, uint n) {
    size_t gid = get_global_id(0);
    if (gid >= n) return;
    for (int r = 0; r < repeats; r++) {
        size_t idx = (gid + (size_t)r * 1024u) % n;
        data[idx] = (float)gid;
    }
}`

// DeviceMemory: global-memory read and write bandwidth kernels.
func runDeviceMemory(env *Env) (Result, error) {
	s, err := begin(env, deviceMemorySrc)
	if err != nil {
		return Result{}, err
	}
	n := env.scale(65536)
	rng := newLCG(73)
	data := make([]float32, n)
	for i := range data {
		data[i] = rng.float32n()
	}
	bd, err := s.buffer(ocl.MemReadWrite, int64(4*n), f32sToBytes(data))
	if err != nil {
		return s.res, err
	}
	bo, err := s.buffer(ocl.MemWriteOnly, int64(4*n), nil)
	if err != nil {
		return s.res, err
	}
	kr, err := s.kernel("readGlobal")
	if err != nil {
		return s.res, err
	}
	kw, err := s.kernel("writeGlobal")
	if err != nil {
		return s.res, err
	}
	if err := s.args(kr, bd, bo, int32(8), uint32(n)); err != nil {
		return s.res, err
	}
	if err := s.launch(kr, roundUp(n, 64), 64); err != nil {
		return s.res, err
	}
	if err := s.args(kw, bd, int32(8), uint32(n)); err != nil {
		return s.res, err
	}
	if err := s.launch(kw, roundUp(n, 64), 64); err != nil {
		return s.res, err
	}
	if env.Verify {
		outBytes, err := s.read(bd, 16)
		if err != nil {
			return s.res, err
		}
		_ = outBytes
		s.res.Verified = true
	}
	return s.res, s.finish()
}

const fftSrc = `
__kernel void fftStage(__global float* re, __global float* im, int halfSize, uint n) {
    size_t tid = get_global_id(0);
    if (tid >= n / 2u) return;
    int group = (int)tid / halfSize;
    int pos = (int)tid % halfSize;
    int i = group * halfSize * 2 + pos;
    int j = i + halfSize;
    float angle = -3.14159265f * (float)pos / (float)halfSize;
    float wr = cos(angle);
    float wi = sin(angle);
    float tr = re[j] * wr - im[j] * wi;
    float ti = re[j] * wi + im[j] * wr;
    float ur = re[i];
    float ui = im[i];
    re[i] = ur + tr;
    im[i] = ui + ti;
    re[j] = ur - tr;
    im[j] = ui - ti;
}`

// FFT: iterative radix-2 Cooley–Tukey, one kernel launch per stage (the
// host performs the bit-reversal permutation before upload).
func runFFT(env *Env) (Result, error) {
	s, err := begin(env, fftSrc)
	if err != nil {
		return Result{}, err
	}
	logN := 10
	n := 1 << logN
	rng := newLCG(79)
	re := make([]float32, n)
	im := make([]float32, n)
	for i := range re {
		re[i] = rng.float32n() - 0.5
		im[i] = rng.float32n() - 0.5
	}
	// Bit-reverse permutation on the host.
	rre := make([]float32, n)
	rim := make([]float32, n)
	for i := 0; i < n; i++ {
		j := 0
		for b := 0; b < logN; b++ {
			j = j<<1 | (i>>b)&1
		}
		rre[j] = re[i]
		rim[j] = im[i]
	}
	br, err := s.buffer(ocl.MemReadWrite, int64(4*n), f32sToBytes(rre))
	if err != nil {
		return s.res, err
	}
	bi, err := s.buffer(ocl.MemReadWrite, int64(4*n), f32sToBytes(rim))
	if err != nil {
		return s.res, err
	}
	k, err := s.kernel("fftStage")
	if err != nil {
		return s.res, err
	}
	for half := 1; half < n; half *= 2 {
		if err := s.args(k, br, bi, int32(half), uint32(n)); err != nil {
			return s.res, err
		}
		if err := s.launch(k, n/2, 64); err != nil {
			return s.res, err
		}
	}
	reOut, err := s.read(br, int64(4*n))
	if err != nil {
		return s.res, err
	}
	imOut, err := s.read(bi, int64(4*n))
	if err != nil {
		return s.res, err
	}
	if env.Verify {
		gotRe := bytesToF32s(reOut)
		gotIm := bytesToF32s(imOut)
		want := make([]complex128, n)
		for i := range want {
			want[i] = complex(float64(re[i]), float64(im[i]))
		}
		want = fftRef(want)
		for _, i := range []int{0, 1, n / 3, n - 1} {
			got := complex(float64(gotRe[i]), float64(gotIm[i]))
			if cmplx.Abs(got-want[i]) > 1e-2*math.Max(1, cmplx.Abs(want[i])) {
				return s.res, fmt.Errorf("FFT: X[%d] = %v, want %v", i, got, want[i])
			}
		}
		s.res.Verified = true
	}
	return s.res, s.finish()
}

func fftRef(x []complex128) []complex128 {
	n := len(x)
	if n == 1 {
		return x
	}
	even := make([]complex128, n/2)
	odd := make([]complex128, n/2)
	for i := 0; i < n/2; i++ {
		even[i] = x[2*i]
		odd[i] = x[2*i+1]
	}
	even = fftRef(even)
	odd = fftRef(odd)
	out := make([]complex128, n)
	for k := 0; k < n/2; k++ {
		w := cmplx.Exp(complex(0, -2*math.Pi*float64(k)/float64(n)))
		out[k] = even[k] + w*odd[k]
		out[k+n/2] = even[k] - w*odd[k]
	}
	return out
}

// KernelCompile: builds several program variants; measures nothing but
// the compiler. No kernel is executed (excluded from Fig. 5, §IV-B).
func runKernelCompile(env *Env) (Result, error) {
	s, err := begin(env, "")
	if err != nil {
		return Result{}, err
	}
	for i := 0; i < 5; i++ {
		src := fmt.Sprintf(`
__kernel void variant%d(__global float* x, uint n) {
    size_t i = get_global_id(0);
    if (i < n) x[i] = x[i] * %d.0f + %d.0f;
}`, i, i+1, i)
		p, err := s.api.CreateProgramWithSource(s.ctx, src)
		if err != nil {
			return s.res, err
		}
		if err := s.api.BuildProgram(p, ""); err != nil {
			return s.res, err
		}
	}
	s.res.Verified = env.Verify
	return s.res, s.finish()
}

const maxFlopsSrc = `
__kernel void maxFlops(__global float* out, int iters, uint n) {
    size_t gid = get_global_id(0);
    if (gid >= n) return;
    float a = 1.00001f;
    float b = 0.99999f;
    float c = (float)gid * 0.000001f + 1.0f;
    for (int i = 0; i < iters; i++) {
        a = mad(a, b, c) * 0.25f;
        b = mad(b, c, a) * 0.25f;
        c = mad(c, a, b) * 0.25f;
        a = a + 0.125f;
        b = b + 0.125f;
        c = c + 0.125f;
    }
    out[gid] = a + b + c;
}`

// MaxFlops: register-resident compute kernel; several launches are left
// in-flight, making the checkpoint synchronisation phase dominant (§IV-B).
func runMaxFlops(env *Env) (Result, error) {
	s, err := begin(env, maxFlopsSrc)
	if err != nil {
		return Result{}, err
	}
	n := env.scale(4096)
	bo, err := s.buffer(ocl.MemWriteOnly, int64(4*n), nil)
	if err != nil {
		return s.res, err
	}
	k, err := s.kernel("maxFlops")
	if err != nil {
		return s.res, err
	}
	if err := s.args(k, bo, int32(64), uint32(n)); err != nil {
		return s.res, err
	}
	for rep := 0; rep < 4; rep++ {
		if err := s.launch(k, roundUp(n, 128), 128); err != nil {
			return s.res, err
		}
	}
	outBytes, err := s.read(bo, 16)
	if err != nil {
		return s.res, err
	}
	if env.Verify {
		v := bytesToF32s(outBytes)[0]
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			return s.res, fmt.Errorf("MaxFlops: non-finite result %v", v)
		}
		s.res.Verified = true
	}
	return s.res, s.finish()
}

const mdSrc = `
__kernel void ljForce(__global const float* posX, __global const float* posY,
                      __global const float* posZ,
                      __global const int* neighbors,
                      __global float* forceX, __global float* forceY,
                      __global float* forceZ,
                      int maxNeighbors, uint nAtoms) {
    size_t i = get_global_id(0);
    if (i >= nAtoms) return;
    float xi = posX[i];
    float yi = posY[i];
    float zi = posZ[i];
    float fx = 0.0f;
    float fy = 0.0f;
    float fz = 0.0f;
    for (int jj = 0; jj < maxNeighbors; jj++) {
        int j = neighbors[i * (size_t)maxNeighbors + (size_t)jj];
        float dx = posX[j] - xi;
        float dy = posY[j] - yi;
        float dz = posZ[j] - zi;
        float r2 = dx * dx + dy * dy + dz * dz + 0.01f;
        float inv2 = 1.0f / r2;
        float inv6 = inv2 * inv2 * inv2;
        float s = inv6 * (inv6 - 0.5f) * inv2;
        fx = mad(s, dx, fx);
        fy = mad(s, dy, fy);
        fz = mad(s, dz, fz);
    }
    forceX[i] = fx;
    forceY[i] = fy;
    forceZ[i] = fz;
}`

// MD: Lennard-Jones force evaluation over a fixed neighbour list — the
// program the paper's MPI checkpoint experiment (Fig. 6) runs per rank.
func runMD(env *Env) (Result, error) {
	s, err := begin(env, mdSrc)
	if err != nil {
		return Result{}, err
	}
	nAtoms := env.scale(1024)
	maxNeighbors := 16
	rng := newLCG(83)
	px := make([]float32, nAtoms)
	py := make([]float32, nAtoms)
	pz := make([]float32, nAtoms)
	for i := 0; i < nAtoms; i++ {
		px[i] = 10 * rng.float32n()
		py[i] = 10 * rng.float32n()
		pz[i] = 10 * rng.float32n()
	}
	neigh := make([]uint32, nAtoms*maxNeighbors)
	for i := range neigh {
		neigh[i] = rng.uint32n() % uint32(nAtoms)
	}
	mk := func(data []float32) (ocl.Mem, error) {
		return s.buffer(ocl.MemReadOnly, int64(4*len(data)), f32sToBytes(data))
	}
	bx, err := mk(px)
	if err != nil {
		return s.res, err
	}
	by, err := mk(py)
	if err != nil {
		return s.res, err
	}
	bz, err := mk(pz)
	if err != nil {
		return s.res, err
	}
	bn, err := s.buffer(ocl.MemReadOnly, int64(4*len(neigh)), u32sToBytes(neigh))
	if err != nil {
		return s.res, err
	}
	bfx, err := s.buffer(ocl.MemWriteOnly, int64(4*nAtoms), nil)
	if err != nil {
		return s.res, err
	}
	bfy, err := s.buffer(ocl.MemWriteOnly, int64(4*nAtoms), nil)
	if err != nil {
		return s.res, err
	}
	bfz, err := s.buffer(ocl.MemWriteOnly, int64(4*nAtoms), nil)
	if err != nil {
		return s.res, err
	}
	k, err := s.kernel("ljForce")
	if err != nil {
		return s.res, err
	}
	if err := s.args(k, bx, by, bz, bn, bfx, bfy, bfz, int32(maxNeighbors), uint32(nAtoms)); err != nil {
		return s.res, err
	}
	if err := s.launch(k, (nAtoms+63)/64*64, 64); err != nil {
		return s.res, err
	}
	fxBytes, err := s.read(bfx, int64(4*nAtoms))
	if err != nil {
		return s.res, err
	}
	if env.Verify {
		fx := bytesToF32s(fxBytes)
		for _, i := range []int{0, nAtoms / 2, nAtoms - 1} {
			var want float64
			for jj := 0; jj < maxNeighbors; jj++ {
				j := neigh[i*maxNeighbors+jj]
				dx := float64(px[j]) - float64(px[i])
				dy := float64(py[j]) - float64(py[i])
				dz := float64(pz[j]) - float64(pz[i])
				r2 := dx*dx + dy*dy + dz*dz + 0.01
				inv2 := 1 / r2
				inv6 := inv2 * inv2 * inv2
				want += inv6 * (inv6 - 0.5) * inv2 * dx
			}
			if !approxEqual(float64(fx[i]), want, 5e-2) {
				return s.res, fmt.Errorf("MD: fx[%d] = %v, want %v", i, fx[i], want)
			}
		}
		s.res.Verified = true
	}
	return s.res, s.finish()
}

const queueDelaySrc = `
__kernel void nop(__global int* out) {
    if (get_global_id(0) == 0u) out[0] = out[0] + 1;
}`

// QueueDelay: many tiny kernel launches back to back — pure API-call
// overhead, the worst case for the forwarding proxy (§IV-A).
func runQueueDelay(env *Env) (Result, error) {
	s, err := begin(env, queueDelaySrc)
	if err != nil {
		return Result{}, err
	}
	launches := env.scale(100)
	bo, err := s.buffer(ocl.MemReadWrite, 4, make([]byte, 4))
	if err != nil {
		return s.res, err
	}
	k, err := s.kernel("nop")
	if err != nil {
		return s.res, err
	}
	if err := s.args(k, bo); err != nil {
		return s.res, err
	}
	for i := 0; i < launches; i++ {
		if err := s.launch(k, 32, 32); err != nil {
			return s.res, err
		}
	}
	outBytes, err := s.read(bo, 4)
	if err != nil {
		return s.res, err
	}
	if env.Verify {
		got := int32(bytesToU32s(outBytes)[0])
		if got != int32(launches) {
			return s.res, fmt.Errorf("QueueDelay: counter = %d, want %d", got, launches)
		}
		s.res.Verified = true
	}
	return s.res, s.finish()
}

// Reduction (SHOC flavour): same tree reduction at SHOC's sizes.
func runShocReduction(env *Env) (Result, error) {
	return runReductionCommon(env, env.scale(65536), 64)
}

// s3dProgramCount is the paper's S3D program-object count: its restart
// time is dominated by recompiling all of them (Fig. 7).
const s3dProgramCount = 27

// S3D: combustion chemistry rate kernels, one cl_program per reaction
// group — 27 program objects as the paper reports.
func runS3D(env *Env) (Result, error) {
	s, err := begin(env, "")
	if err != nil {
		return Result{}, err
	}
	n := env.scale(2048)
	rng := newLCG(89)
	temp := make([]float32, n)
	for i := range temp {
		temp[i] = 800 + 1200*rng.float32n()
	}
	bt, err := s.buffer(ocl.MemReadOnly, int64(4*n), f32sToBytes(temp))
	if err != nil {
		return s.res, err
	}
	bo, err := s.buffer(ocl.MemReadWrite, int64(4*n), nil)
	if err != nil {
		return s.res, err
	}
	for p := 0; p < s3dProgramCount; p++ {
		src := fmt.Sprintf(`
__kernel void rates%d(__global const float* temp, __global float* out, uint n) {
    size_t i = get_global_id(0);
    if (i >= n) return;
    float t = temp[i];
    float invT = 1.0f / t;
    float logT = log(t);
    float k0 = exp(%d.%02df - 2000.0f * invT + 0.%02df * logT);
    out[i] = out[i] + k0;
}`, p, 10+p%7, p, p)
		prog, err := s.api.CreateProgramWithSource(s.ctx, src)
		if err != nil {
			return s.res, err
		}
		if err := s.api.BuildProgram(prog, ""); err != nil {
			return s.res, err
		}
		k, err := s.api.CreateKernel(prog, fmt.Sprintf("rates%d", p))
		if err != nil {
			return s.res, err
		}
		sess := session{env: env, api: s.api, q: s.q, res: s.res}
		if err := sess.args(k, bt, bo, uint32(n)); err != nil {
			return s.res, err
		}
		if err := sess.launch(k, (n+63)/64*64, 64); err != nil {
			return sess.res, err
		}
		s.res = sess.res
	}
	outBytes, err := s.read(bo, 16)
	if err != nil {
		return s.res, err
	}
	if env.Verify {
		v := bytesToF32s(outBytes)[0]
		if math.IsNaN(float64(v)) || v <= 0 {
			return s.res, fmt.Errorf("S3D: suspicious rate sum %v", v)
		}
		s.res.Verified = true
	}
	return s.res, s.finish()
}

const sgemmSrc = `
__kernel void sgemm(__global const float* A, __global const float* B,
                    __global float* C, int n, float alpha, float beta) {
    int col = (int)get_global_id(0);
    int row = (int)get_global_id(1);
    if (col >= n || row >= n) return;
    float acc = 0.0f;
    for (int k = 0; k < n; k++) {
        acc = mad(A[row * n + k], B[k * n + col], acc);
    }
    C[row * n + col] = alpha * acc + beta * C[row * n + col];
}`

// SGEMM: single-precision general matrix multiply.
func runSGEMM(env *Env) (Result, error) {
	s, err := begin(env, sgemmSrc)
	if err != nil {
		return Result{}, err
	}
	n := env.scale(64)
	const alpha, beta = float32(1.5), float32(0.5)
	rng := newLCG(97)
	A := make([]float32, n*n)
	B := make([]float32, n*n)
	C := make([]float32, n*n)
	for i := range A {
		A[i] = rng.float32n()
		B[i] = rng.float32n()
		C[i] = rng.float32n()
	}
	ba, err := s.buffer(ocl.MemReadOnly, int64(4*n*n), f32sToBytes(A))
	if err != nil {
		return s.res, err
	}
	bb, err := s.buffer(ocl.MemReadOnly, int64(4*n*n), f32sToBytes(B))
	if err != nil {
		return s.res, err
	}
	bc, err := s.buffer(ocl.MemReadWrite, int64(4*n*n), f32sToBytes(C))
	if err != nil {
		return s.res, err
	}
	k, err := s.kernel("sgemm")
	if err != nil {
		return s.res, err
	}
	if err := s.args(k, ba, bb, bc, int32(n), alpha, beta); err != nil {
		return s.res, err
	}
	if err := s.launchND(k, 2, [3]int{roundUp(n, 16), roundUp(n, 4)}, [3]int{16, 4}); err != nil {
		return s.res, err
	}
	outBytes, err := s.read(bc, int64(4*n*n))
	if err != nil {
		return s.res, err
	}
	if env.Verify {
		got := bytesToF32s(outBytes)
		for _, idx := range []int{0, n*n/2 + 1, n*n - 1} {
			r, col := idx/n, idx%n
			var acc float64
			for kk := 0; kk < n; kk++ {
				acc += float64(A[r*n+kk]) * float64(B[kk*n+col])
			}
			want := float64(alpha)*acc + float64(beta)*float64(C[idx])
			if !approxEqual(float64(got[idx]), want, 1e-3) {
				return s.res, fmt.Errorf("SGEMM: C[%d] = %v, want %v", idx, got[idx], want)
			}
		}
		s.res.Verified = true
	}
	return s.res, s.finish()
}

// Scan (SHOC flavour).
func runShocScan(env *Env) (Result, error) {
	return runScanCommon(env, env.scale(16384), 64)
}

// Sort (SHOC flavour): radix sort over full 16-bit keys, larger n.
func runShocSort(env *Env) (Result, error) {
	return runRadixSortCommon(env, env.scale(16384), 16)
}

const stencil2DSrc = `
__kernel void stencil9(__global const float* in, __global float* out,
                       int w, int h, float cc, float cn, float cd) {
    int x = (int)get_global_id(0);
    int y = (int)get_global_id(1);
    if (x >= w || y >= h) return;
    int i = y * w + x;
    if (x == 0 || y == 0 || x == w - 1 || y == h - 1) {
        out[i] = in[i];
        return;
    }
    float acc = cc * in[i];
    acc = acc + cn * (in[i - 1] + in[i + 1] + in[i - w] + in[i + w]);
    acc = acc + cd * (in[i - w - 1] + in[i - w + 1] + in[i + w - 1] + in[i + w + 1]);
    out[i] = acc;
}`

// Stencil2D: 9-point stencil iterated over ping-pong buffers — many
// launches with little per-launch work (§IV-A notes it exposes the
// per-call overhead).
func runStencil2D(env *Env) (Result, error) {
	s, err := begin(env, stencil2DSrc)
	if err != nil {
		return Result{}, err
	}
	w, h, iters := env.scale(128), 64, 8
	const cc, cn, cd = float32(0.5), float32(0.1), float32(0.025)
	rng := newLCG(101)
	grid := make([]float32, w*h)
	for i := range grid {
		grid[i] = rng.float32n()
	}
	bufs := [2]ocl.Mem{}
	if bufs[0], err = s.buffer(ocl.MemReadWrite, int64(4*w*h), f32sToBytes(grid)); err != nil {
		return s.res, err
	}
	if bufs[1], err = s.buffer(ocl.MemReadWrite, int64(4*w*h), nil); err != nil {
		return s.res, err
	}
	k, err := s.kernel("stencil9")
	if err != nil {
		return s.res, err
	}
	for it := 0; it < iters; it++ {
		if err := s.args(k, bufs[it%2], bufs[(it+1)%2], int32(w), int32(h), cc, cn, cd); err != nil {
			return s.res, err
		}
		if err := s.launchND(k, 2, [3]int{roundUp(w, 32), h}, [3]int{32, 1}); err != nil {
			return s.res, err
		}
	}
	outBytes, err := s.read(bufs[iters%2], int64(4*w*h))
	if err != nil {
		return s.res, err
	}
	if env.Verify {
		got := bytesToF32s(outBytes)
		ref := stencilRef(grid, w, h, iters, cc, cn, cd)
		for _, idx := range []int{w + 1, w*h/2 + 5, w*h - w - 2} {
			if !approxEqual(float64(got[idx]), float64(ref[idx]), 1e-3) {
				return s.res, fmt.Errorf("Stencil2D: out[%d] = %v, want %v", idx, got[idx], ref[idx])
			}
		}
		s.res.Verified = true
	}
	return s.res, s.finish()
}

func stencilRef(grid []float32, w, h, iters int, cc, cn, cd float32) []float32 {
	cur := append([]float32(nil), grid...)
	next := make([]float32, len(grid))
	for it := 0; it < iters; it++ {
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				i := y*w + x
				if x == 0 || y == 0 || x == w-1 || y == h-1 {
					next[i] = cur[i]
					continue
				}
				acc := cc * cur[i]
				acc += cn * (cur[i-1] + cur[i+1] + cur[i-w] + cur[i+w])
				acc += cd * (cur[i-w-1] + cur[i-w+1] + cur[i+w-1] + cur[i+w+1])
				next[i] = acc
			}
		}
		cur, next = next, cur
	}
	return cur
}

const triadSrc = `
__kernel void triad(__global const float* b, __global const float* c,
                    __global float* a, float scalar, uint n) {
    size_t i = get_global_id(0);
    if (i < n) a[i] = b[i] + scalar * c[i];
}`

// Triad: STREAM triad with fresh transfers every iteration —
// transfer-dominated, the worst case for the proxy's extra copy (§IV-A).
func runTriad(env *Env) (Result, error) {
	s, err := begin(env, triadSrc)
	if err != nil {
		return Result{}, err
	}
	n := env.scale(65536)
	const scalar = float32(1.75)
	rng := newLCG(103)
	b := make([]float32, n)
	c := make([]float32, n)
	for i := 0; i < n; i++ {
		b[i] = rng.float32n()
		c[i] = rng.float32n()
	}
	ba, err := s.buffer(ocl.MemWriteOnly, int64(4*n), nil)
	if err != nil {
		return s.res, err
	}
	bb, err := s.buffer(ocl.MemReadOnly, int64(4*n), nil)
	if err != nil {
		return s.res, err
	}
	bc, err := s.buffer(ocl.MemReadOnly, int64(4*n), nil)
	if err != nil {
		return s.res, err
	}
	k, err := s.kernel("triad")
	if err != nil {
		return s.res, err
	}
	var lastOut []float32
	for it := 0; it < 4; it++ {
		if err := s.write(bb, f32sToBytes(b)); err != nil {
			return s.res, err
		}
		if err := s.write(bc, f32sToBytes(c)); err != nil {
			return s.res, err
		}
		if err := s.args(k, bb, bc, ba, scalar, uint32(n)); err != nil {
			return s.res, err
		}
		if err := s.launch(k, (n+63)/64*64, 64); err != nil {
			return s.res, err
		}
		outBytes, err := s.read(ba, int64(4*n))
		if err != nil {
			return s.res, err
		}
		lastOut = bytesToF32s(outBytes)
	}
	if env.Verify {
		for i := 0; i < n; i += 499 {
			want := b[i] + scalar*c[i]
			if lastOut[i] != want {
				return s.res, fmt.Errorf("Triad: a[%d] = %v, want %v", i, lastOut[i], want)
			}
		}
		s.res.Verified = true
	}
	return s.res, s.finish()
}
