package apps

import (
	"fmt"
	"math"

	"checl/internal/ocl"
)

// NVIDIA GPU Computing SDK 3.0 style samples (1/2). As in the paper's
// methodology (§IV), the CPU golden-computation parts of the original
// samples are only executed when Verify is set, so the measured section
// is the GPU part.

func init() {
	register(App{Name: "oclBandwidthTest", Suite: "nvsdk", HasKernel: false, Run: runOclBandwidthTest})
	register(App{Name: "oclBlackScholes", Suite: "nvsdk", HasKernel: true, WorkGroupX: 128, Run: runOclBlackScholes})
	register(App{Name: "oclConvolutionSeparable", Suite: "nvsdk", HasKernel: true, WorkGroupX: 64, Run: runOclConvolutionSeparable})
	register(App{Name: "oclDCT8x8", Suite: "nvsdk", HasKernel: true, WorkGroupX: 64, Run: runOclDCT8x8})
	register(App{Name: "oclDXTCompression", Suite: "nvsdk", HasKernel: true, WorkGroupX: 64, Run: runOclDXTCompression})
	register(App{Name: "oclDotProduct", Suite: "nvsdk", HasKernel: true, WorkGroupX: 64, Run: runOclDotProduct})
	register(App{Name: "oclFDTD3d", Suite: "nvsdk", HasKernel: true, WorkGroupX: 32, Run: runOclFDTD3d})
	register(App{Name: "oclHistogram", Suite: "nvsdk", HasKernel: true, WorkGroupX: 64, Run: runOclHistogram})
	register(App{Name: "oclMatVecMul", Suite: "nvsdk", HasKernel: true, WorkGroupX: 64, Run: runOclMatVecMul})
	register(App{Name: "oclMatrixMul", Suite: "nvsdk", HasKernel: true, WorkGroupX: 16, Run: runOclMatrixMul})
}

// oclBandwidthTest: pure host<->device transfer benchmark; no kernel.
func runOclBandwidthTest(env *Env) (Result, error) {
	s, err := begin(env, "")
	if err != nil {
		return Result{}, err
	}
	size := int64(env.scale(16 << 20))
	m, err := s.buffer(ocl.MemReadWrite, size, nil)
	if err != nil {
		return s.res, err
	}
	payload := make([]byte, size)
	for i := range payload {
		payload[i] = byte(i)
	}
	for rep := 0; rep < 3; rep++ {
		if err := s.write(m, payload); err != nil {
			return s.res, err
		}
		back, err := s.read(m, size)
		if err != nil {
			return s.res, err
		}
		if env.Verify && (back[0] != payload[0] || back[size-1] != payload[size-1]) {
			return s.res, fmt.Errorf("oclBandwidthTest: data corrupted in transfer")
		}
	}
	s.res.Verified = env.Verify
	return s.res, s.finish()
}

const blackScholesSrc = `
float cnd(float d) {
    float K = 1.0f / (1.0f + 0.2316419f * fabs(d));
    float v = 0.3989422804f * exp(-0.5f * d * d) *
        (K * (0.31938153f + K * (-0.356563782f + K * (1.781477937f +
         K * (-1.821255978f + K * 1.330274429f)))));
    if (d > 0.0f) v = 1.0f - v;
    return v;
}
__kernel void blackScholes(__global const float* price,
                           __global const float* strike,
                           __global const float* years,
                           __global float* callOut,
                           __global float* putOut,
                           float riskfree, float volatility, uint n) {
    size_t i = get_global_id(0);
    if (i >= n) return;
    float S = price[i];
    float X = strike[i];
    float T = years[i];
    float sqrtT = sqrt(T);
    float d1 = (log(S / X) + (riskfree + 0.5f * volatility * volatility) * T) /
               (volatility * sqrtT);
    float d2 = d1 - volatility * sqrtT;
    float cndD1 = cnd(d1);
    float cndD2 = cnd(d2);
    float expRT = exp(-riskfree * T);
    callOut[i] = S * cndD1 - X * expRT * cndD2;
    putOut[i] = X * expRT * (1.0f - cndD2) - S * (1.0f - cndD1);
}`

// oclBlackScholes: European option pricing.
func runOclBlackScholes(env *Env) (Result, error) {
	s, err := begin(env, blackScholesSrc)
	if err != nil {
		return Result{}, err
	}
	n := env.scale(8192)
	rng := newLCG(7)
	price := make([]float32, n)
	strike := make([]float32, n)
	years := make([]float32, n)
	for i := 0; i < n; i++ {
		price[i] = 5 + 25*rng.float32n()
		strike[i] = 1 + 99*rng.float32n()
		years[i] = 0.25 + 9.75*rng.float32n()
	}
	const riskfree, volatility = float32(0.02), float32(0.30)
	bp, err := s.buffer(ocl.MemReadOnly, int64(4*n), f32sToBytes(price))
	if err != nil {
		return s.res, err
	}
	bx, err := s.buffer(ocl.MemReadOnly, int64(4*n), f32sToBytes(strike))
	if err != nil {
		return s.res, err
	}
	bt, err := s.buffer(ocl.MemReadOnly, int64(4*n), f32sToBytes(years))
	if err != nil {
		return s.res, err
	}
	bc, err := s.buffer(ocl.MemWriteOnly, int64(4*n), nil)
	if err != nil {
		return s.res, err
	}
	bpu, err := s.buffer(ocl.MemWriteOnly, int64(4*n), nil)
	if err != nil {
		return s.res, err
	}
	k, err := s.kernel("blackScholes")
	if err != nil {
		return s.res, err
	}
	if err := s.args(k, bp, bx, bt, bc, bpu, riskfree, volatility, uint32(n)); err != nil {
		return s.res, err
	}
	global := (n + 127) / 128 * 128
	if err := s.launch(k, global, 128); err != nil {
		return s.res, err
	}
	callBytes, err := s.read(bc, int64(4*n))
	if err != nil {
		return s.res, err
	}
	if env.Verify {
		call := bytesToF32s(callBytes)
		for i := 0; i < n; i += 97 {
			want := blackScholesRef(float64(price[i]), float64(strike[i]), float64(years[i]),
				float64(riskfree), float64(volatility))
			if !approxEqual(float64(call[i]), want, 1e-3) {
				return s.res, fmt.Errorf("oclBlackScholes: call[%d] = %v, want %v", i, call[i], want)
			}
		}
		s.res.Verified = true
	}
	return s.res, s.finish()
}

func blackScholesRef(S, X, T, r, v float64) float64 {
	cnd := func(d float64) float64 {
		K := 1 / (1 + 0.2316419*math.Abs(d))
		c := 0.3989422804 * math.Exp(-0.5*d*d) *
			(K * (0.31938153 + K*(-0.356563782+K*(1.781477937+K*(-1.821255978+K*1.330274429)))))
		if d > 0 {
			return 1 - c
		}
		return c
	}
	sqrtT := math.Sqrt(T)
	d1 := (math.Log(S/X) + (r+0.5*v*v)*T) / (v * sqrtT)
	d2 := d1 - v*sqrtT
	return S*cnd(d1) - X*math.Exp(-r*T)*cnd(d2)
}

const convolutionSrc = `
__kernel void convRows(__global const float* in, __global float* out,
                       __global const float* filter,
                       int w, int h, int radius) {
    int x = (int)get_global_id(0);
    int y = (int)get_global_id(1);
    if (x >= w || y >= h) return;
    float sum = 0.0f;
    for (int k = -radius; k <= radius; k++) {
        int xx = x + k;
        if (xx < 0) xx = 0;
        if (xx >= w) xx = w - 1;
        sum = sum + in[y * w + xx] * filter[k + radius];
    }
    out[y * w + x] = sum;
}
__kernel void convCols(__global const float* in, __global float* out,
                       __global const float* filter,
                       int w, int h, int radius) {
    int x = (int)get_global_id(0);
    int y = (int)get_global_id(1);
    if (x >= w || y >= h) return;
    float sum = 0.0f;
    for (int k = -radius; k <= radius; k++) {
        int yy = y + k;
        if (yy < 0) yy = 0;
        if (yy >= h) yy = h - 1;
        sum = sum + in[yy * w + x] * filter[k + radius];
    }
    out[y * w + x] = sum;
}`

// oclConvolutionSeparable: separable 2D convolution (rows then columns).
func runOclConvolutionSeparable(env *Env) (Result, error) {
	s, err := begin(env, convolutionSrc)
	if err != nil {
		return Result{}, err
	}
	w, h, radius := env.scale(192), 96, 4
	rng := newLCG(11)
	img := make([]float32, w*h)
	for i := range img {
		img[i] = rng.float32n()
	}
	filter := make([]float32, 2*radius+1)
	var fsum float32
	for i := range filter {
		filter[i] = rng.float32n()
		fsum += filter[i]
	}
	for i := range filter {
		filter[i] /= fsum
	}
	bin, err := s.buffer(ocl.MemReadOnly, int64(4*w*h), f32sToBytes(img))
	if err != nil {
		return s.res, err
	}
	btmp, err := s.buffer(ocl.MemReadWrite, int64(4*w*h), nil)
	if err != nil {
		return s.res, err
	}
	bout, err := s.buffer(ocl.MemWriteOnly, int64(4*w*h), nil)
	if err != nil {
		return s.res, err
	}
	bf, err := s.buffer(ocl.MemReadOnly, int64(4*len(filter)), f32sToBytes(filter))
	if err != nil {
		return s.res, err
	}
	kr, err := s.kernel("convRows")
	if err != nil {
		return s.res, err
	}
	kc, err := s.kernel("convCols")
	if err != nil {
		return s.res, err
	}
	if err := s.args(kr, bin, btmp, bf, int32(w), int32(h), int32(radius)); err != nil {
		return s.res, err
	}
	if err := s.launchND(kr, 2, [3]int{roundUp(w, 64), h}, [3]int{64, 1}); err != nil {
		return s.res, err
	}
	if err := s.args(kc, btmp, bout, bf, int32(w), int32(h), int32(radius)); err != nil {
		return s.res, err
	}
	if err := s.launchND(kc, 2, [3]int{roundUp(w, 64), h}, [3]int{64, 1}); err != nil {
		return s.res, err
	}
	outBytes, err := s.read(bout, int64(4*w*h))
	if err != nil {
		return s.res, err
	}
	if env.Verify {
		out := bytesToF32s(outBytes)
		ref := convRef(img, filter, w, h, radius)
		for i := 0; i < w*h; i += 31 {
			if !approxEqual(float64(out[i]), float64(ref[i]), 1e-3) {
				return s.res, fmt.Errorf("oclConvolutionSeparable: out[%d] = %v, want %v", i, out[i], ref[i])
			}
		}
		s.res.Verified = true
	}
	return s.res, s.finish()
}

func convRef(img, filter []float32, w, h, radius int) []float32 {
	clamp := func(v, lo, hi int) int {
		if v < lo {
			return lo
		}
		if v > hi {
			return hi
		}
		return v
	}
	tmp := make([]float32, w*h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			var sum float32
			for k := -radius; k <= radius; k++ {
				sum += img[y*w+clamp(x+k, 0, w-1)] * filter[k+radius]
			}
			tmp[y*w+x] = sum
		}
	}
	out := make([]float32, w*h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			var sum float32
			for k := -radius; k <= radius; k++ {
				sum += tmp[clamp(y+k, 0, h-1)*w+x] * filter[k+radius]
			}
			out[y*w+x] = sum
		}
	}
	return out
}

const dct8x8Src = `
__kernel void dct8x8(__global const float* in, __global float* out, int w, int h) {
    int u = (int)get_global_id(0);
    int v = (int)get_global_id(1);
    if (u >= w || v >= h) return;
    int bx = (u / 8) * 8;
    int by = (v / 8) * 8;
    int fu = u % 8;
    int fv = v % 8;
    float cu = 0.353553391f;
    float cv = 0.353553391f;
    if (fu > 0) cu = 0.5f;
    if (fv > 0) cv = 0.5f;
    float sum = 0.0f;
    for (int y = 0; y < 8; y++) {
        for (int x = 0; x < 8; x++) {
            float pix = in[(by + y) * w + bx + x];
            float bu = cos((2.0f * (float)x + 1.0f) * (float)fu * 0.196349541f);
            float bv = cos((2.0f * (float)y + 1.0f) * (float)fv * 0.196349541f);
            sum = sum + pix * bu * bv;
        }
    }
    out[v * w + u] = 0.25f * cu * cv * sum;
}`

// oclDCT8x8: blockwise 8x8 discrete cosine transform.
func runOclDCT8x8(env *Env) (Result, error) {
	s, err := begin(env, dct8x8Src)
	if err != nil {
		return Result{}, err
	}
	w, h := env.scale(96), 64
	w = (w / 8) * 8
	rng := newLCG(13)
	img := make([]float32, w*h)
	for i := range img {
		img[i] = 255 * rng.float32n()
	}
	bin, err := s.buffer(ocl.MemReadOnly, int64(4*w*h), f32sToBytes(img))
	if err != nil {
		return s.res, err
	}
	bout, err := s.buffer(ocl.MemWriteOnly, int64(4*w*h), nil)
	if err != nil {
		return s.res, err
	}
	k, err := s.kernel("dct8x8")
	if err != nil {
		return s.res, err
	}
	if err := s.args(k, bin, bout, int32(w), int32(h)); err != nil {
		return s.res, err
	}
	if err := s.launchND(k, 2, [3]int{w, h}, [3]int{8, 8}); err != nil {
		return s.res, err
	}
	outBytes, err := s.read(bout, int64(4*w*h))
	if err != nil {
		return s.res, err
	}
	if env.Verify {
		out := bytesToF32s(outBytes)
		for _, idx := range []int{0, w*h/2 + 3, w*h - 1} {
			u, v := idx%w, idx/w
			want := dctRef(img, w, u, v)
			if !approxEqual(float64(out[idx]), want, 2e-3) {
				return s.res, fmt.Errorf("oclDCT8x8: out[%d] = %v, want %v", idx, out[idx], want)
			}
		}
		s.res.Verified = true
	}
	return s.res, s.finish()
}

func dctRef(img []float32, w, u, v int) float64 {
	bx, by := (u/8)*8, (v/8)*8
	fu, fv := u%8, v%8
	cu, cv := 0.353553391, 0.353553391
	if fu > 0 {
		cu = 0.5
	}
	if fv > 0 {
		cv = 0.5
	}
	var sum float64
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			pix := float64(img[(by+y)*w+bx+x])
			bu := math.Cos((2*float64(x) + 1) * float64(fu) * 0.196349541)
			bv := math.Cos((2*float64(y) + 1) * float64(fv) * 0.196349541)
			sum += pix * bu * bv
		}
	}
	return 0.25 * cu * cv * sum
}

const dxtSrc = `
__kernel void dxtCompress(__global const float* img, __global uint* out, int w, int blocksPerRow, int nBlocks) {
    int block = (int)get_global_id(0);
    if (block >= nBlocks) return;
    int bx = (block % blocksPerRow) * 4;
    int by = (block / blocksPerRow) * 4;
    float lo = 1000000.0f;
    float hi = -1000000.0f;
    for (int y = 0; y < 4; y++) {
        for (int x = 0; x < 4; x++) {
            float p = img[(by + y) * w + bx + x];
            lo = fmin(lo, p);
            hi = fmax(hi, p);
        }
    }
    uint bits = 0u;
    float range = hi - lo;
    if (range < 0.000001f) range = 1.0f;
    for (int y = 0; y < 4; y++) {
        for (int x = 0; x < 4; x++) {
            float p = img[(by + y) * w + bx + x];
            uint q = (uint)((p - lo) / range * 3.0f + 0.5f);
            if (q > 3u) q = 3u;
            bits = bits | (q << (uint)(2 * (y * 4 + x)));
        }
    }
    out[block * 3 + 0] = as_uint(lo);
    out[block * 3 + 1] = as_uint(hi);
    out[block * 3 + 2] = bits;
}`

// oclDXTCompression: simplified DXT1-style 4x4 block compression.
func runOclDXTCompression(env *Env) (Result, error) {
	s, err := begin(env, dxtSrc)
	if err != nil {
		return Result{}, err
	}
	w, h := env.scale(128), 64
	w = (w / 4) * 4
	rng := newLCG(17)
	img := make([]float32, w*h)
	for i := range img {
		img[i] = rng.float32n()
	}
	blocksPerRow := w / 4
	blocks := blocksPerRow * (h / 4)
	bin, err := s.buffer(ocl.MemReadOnly, int64(4*w*h), f32sToBytes(img))
	if err != nil {
		return s.res, err
	}
	bout, err := s.buffer(ocl.MemWriteOnly, int64(4*3*blocks), nil)
	if err != nil {
		return s.res, err
	}
	k, err := s.kernel("dxtCompress")
	if err != nil {
		return s.res, err
	}
	if err := s.args(k, bin, bout, int32(w), int32(blocksPerRow), int32(blocks)); err != nil {
		return s.res, err
	}
	if err := s.launch(k, roundUp(blocks, 64), 64); err != nil {
		return s.res, err
	}
	outBytes, err := s.read(bout, int64(4*3*blocks))
	if err != nil {
		return s.res, err
	}
	if env.Verify {
		out := bytesToU32s(outBytes)
		// Check block 0's range bounds.
		lo := math.Float32frombits(out[0])
		hi := math.Float32frombits(out[1])
		var wantLo, wantHi float32 = 2, -2
		for y := 0; y < 4; y++ {
			for x := 0; x < 4; x++ {
				p := img[y*w+x]
				if p < wantLo {
					wantLo = p
				}
				if p > wantHi {
					wantHi = p
				}
			}
		}
		if lo != wantLo || hi != wantHi {
			return s.res, fmt.Errorf("oclDXTCompression: block 0 range [%v,%v], want [%v,%v]", lo, hi, wantLo, wantHi)
		}
		s.res.Verified = true
	}
	return s.res, s.finish()
}

const dotProductSrc = `
__kernel void dotProduct(__global const float* a, __global const float* b,
                         __global float* partial, __local float* scratch, uint n) {
    size_t gid = get_global_id(0);
    size_t lid = get_local_id(0);
    float v = 0.0f;
    if (gid < n) v = a[gid] * b[gid];
    scratch[lid] = v;
    barrier(CLK_LOCAL_MEM_FENCE);
    for (uint s = get_local_size(0) / 2; s > 0u; s >>= 1) {
        if (lid < s) scratch[lid] = scratch[lid] + scratch[lid + s];
        barrier(CLK_LOCAL_MEM_FENCE);
    }
    if (lid == 0u) partial[get_group_id(0)] = scratch[0];
}`

// oclDotProduct: elementwise product with in-group tree reduction.
func runOclDotProduct(env *Env) (Result, error) {
	s, err := begin(env, dotProductSrc)
	if err != nil {
		return Result{}, err
	}
	n := env.scale(32768)
	local := 64
	global := (n + local - 1) / local * local
	groups := global / local
	rng := newLCG(19)
	a := make([]float32, n)
	b := make([]float32, n)
	var want float64
	for i := 0; i < n; i++ {
		a[i] = rng.float32n()
		b[i] = rng.float32n()
		want += float64(a[i]) * float64(b[i])
	}
	ba, err := s.buffer(ocl.MemReadOnly, int64(4*n), f32sToBytes(a))
	if err != nil {
		return s.res, err
	}
	bb, err := s.buffer(ocl.MemReadOnly, int64(4*n), f32sToBytes(b))
	if err != nil {
		return s.res, err
	}
	bp, err := s.buffer(ocl.MemWriteOnly, int64(4*groups), nil)
	if err != nil {
		return s.res, err
	}
	k, err := s.kernel("dotProduct")
	if err != nil {
		return s.res, err
	}
	if err := s.args(k, ba, bb, bp, localArg(4*local), uint32(n)); err != nil {
		return s.res, err
	}
	if err := s.launch(k, global, local); err != nil {
		return s.res, err
	}
	partBytes, err := s.read(bp, int64(4*groups))
	if err != nil {
		return s.res, err
	}
	var got float64
	for _, p := range bytesToF32s(partBytes) {
		got += float64(p)
	}
	if env.Verify {
		if !approxEqual(got, want, 1e-3) {
			return s.res, fmt.Errorf("oclDotProduct: %v, want %v", got, want)
		}
		s.res.Verified = true
	}
	return s.res, s.finish()
}

const fdtd3dSrc = `
__kernel void stencil3d(__global const float* in, __global float* out,
                        int dim, float c0, float c1) {
    int x = (int)get_global_id(0);
    int y = (int)get_global_id(1);
    int z = (int)get_global_id(2);
    if (x >= dim || y >= dim || z >= dim) return;
    int i = (z * dim + y) * dim + x;
    if (x == 0 || y == 0 || z == 0 || x == dim - 1 || y == dim - 1 || z == dim - 1) {
        out[i] = in[i];
        return;
    }
    float acc = c0 * in[i];
    acc = acc + c1 * in[i - 1];
    acc = acc + c1 * in[i + 1];
    acc = acc + c1 * in[i - dim];
    acc = acc + c1 * in[i + dim];
    acc = acc + c1 * in[i - dim * dim];
    acc = acc + c1 * in[i + dim * dim];
    out[i] = acc;
}`

// oclFDTD3d: 3D finite-difference time stepping. As in the paper, the
// problem size is determined at runtime from the device memory size, so
// the AMD GPU (1 GB) runs a smaller grid than the Tesla (4 GB).
func runOclFDTD3d(env *Env) (Result, error) {
	s, err := begin(env, fdtd3dSrc)
	if err != nil {
		return Result{}, err
	}
	dim := 16
	for int64(dim*2)*int64(dim*2)*int64(dim*2)*4*2 < s.info.GlobalMemSize/(64<<10) {
		dim *= 2
		if dim >= 64 {
			break
		}
	}
	dim = env.scale(dim)
	steps := 4
	n := dim * dim * dim
	rng := newLCG(23)
	grid := make([]float32, n)
	for i := range grid {
		grid[i] = rng.float32n()
	}
	const c0, c1 = float32(0.4), float32(0.1)
	bufs := [2]ocl.Mem{}
	if bufs[0], err = s.buffer(ocl.MemReadWrite, int64(4*n), f32sToBytes(grid)); err != nil {
		return s.res, err
	}
	if bufs[1], err = s.buffer(ocl.MemReadWrite, int64(4*n), nil); err != nil {
		return s.res, err
	}
	k, err := s.kernel("stencil3d")
	if err != nil {
		return s.res, err
	}
	for step := 0; step < steps; step++ {
		src, dst := bufs[step%2], bufs[(step+1)%2]
		if err := s.args(k, src, dst, int32(dim), c0, c1); err != nil {
			return s.res, err
		}
		if err := s.launchND(k, 3, [3]int{roundUp(dim, 8), roundUp(dim, 4), dim}, [3]int{8, 4, 1}); err != nil {
			return s.res, err
		}
	}
	outBytes, err := s.read(bufs[steps%2], int64(4*n))
	if err != nil {
		return s.res, err
	}
	if env.Verify {
		out := bytesToF32s(outBytes)
		ref := fdtdRef(grid, dim, steps, c0, c1)
		center := (dim/2*dim+dim/2)*dim + dim/2
		for _, idx := range []int{0, center, n - 1} {
			if !approxEqual(float64(out[idx]), float64(ref[idx]), 1e-3) {
				return s.res, fmt.Errorf("oclFDTD3d: out[%d] = %v, want %v", idx, out[idx], ref[idx])
			}
		}
		s.res.Verified = true
	}
	return s.res, s.finish()
}

func fdtdRef(grid []float32, dim, steps int, c0, c1 float32) []float32 {
	cur := append([]float32(nil), grid...)
	next := make([]float32, len(grid))
	for step := 0; step < steps; step++ {
		for z := 0; z < dim; z++ {
			for y := 0; y < dim; y++ {
				for x := 0; x < dim; x++ {
					i := (z*dim+y)*dim + x
					if x == 0 || y == 0 || z == 0 || x == dim-1 || y == dim-1 || z == dim-1 {
						next[i] = cur[i]
						continue
					}
					acc := c0 * cur[i]
					acc += c1 * cur[i-1]
					acc += c1 * cur[i+1]
					acc += c1 * cur[i-dim]
					acc += c1 * cur[i+dim]
					acc += c1 * cur[i-dim*dim]
					acc += c1 * cur[i+dim*dim]
					next[i] = acc
				}
			}
		}
		cur, next = next, cur
	}
	return cur
}

const histogramSrc = `
__kernel void histogram(__global const uint* data, __global int* bins, uint n) {
    size_t i = get_global_id(0);
    if (i >= n) return;
    uint v = data[i] & 63u;
    atomic_inc(&bins[v]);
}`

// oclHistogram: 64-bin histogram using global atomics.
func runOclHistogram(env *Env) (Result, error) {
	s, err := begin(env, histogramSrc)
	if err != nil {
		return Result{}, err
	}
	n := env.scale(65536)
	rng := newLCG(29)
	data := make([]uint32, n)
	want := make([]int32, 64)
	for i := range data {
		data[i] = rng.uint32n()
		want[data[i]&63]++
	}
	bd, err := s.buffer(ocl.MemReadOnly, int64(4*n), u32sToBytes(data))
	if err != nil {
		return s.res, err
	}
	bb, err := s.buffer(ocl.MemReadWrite, 4*64, make([]byte, 4*64))
	if err != nil {
		return s.res, err
	}
	k, err := s.kernel("histogram")
	if err != nil {
		return s.res, err
	}
	if err := s.args(k, bd, bb, uint32(n)); err != nil {
		return s.res, err
	}
	if err := s.launch(k, (n+63)/64*64, 64); err != nil {
		return s.res, err
	}
	binBytes, err := s.read(bb, 4*64)
	if err != nil {
		return s.res, err
	}
	if env.Verify {
		got := bytesToU32s(binBytes)
		for i := 0; i < 64; i++ {
			if int32(got[i]) != want[i] {
				return s.res, fmt.Errorf("oclHistogram: bin %d = %d, want %d", i, got[i], want[i])
			}
		}
		s.res.Verified = true
	}
	return s.res, s.finish()
}

const matVecMulSrc = `
__kernel void matVecMul(__global const float* mat, __global const float* vec,
                        __global float* out, int rows, int cols) {
    int r = (int)get_global_id(0);
    if (r >= rows) return;
    float sum = 0.0f;
    for (int c = 0; c < cols; c++) {
        sum = mad(mat[r * cols + c], vec[c], sum);
    }
    out[r] = sum;
}`

// oclMatVecMul: matrix-vector product; like oclFDTD3d, the row count is
// derived from the device memory size (§IV-B).
func runOclMatVecMul(env *Env) (Result, error) {
	s, err := begin(env, matVecMulSrc)
	if err != nil {
		return Result{}, err
	}
	cols := 512
	rows := int(s.info.GlobalMemSize / (4 << 30) * 768)
	if rows < 192 {
		rows = 192
	}
	if rows > 768 {
		rows = 768
	}
	rows = env.scale(rows)
	rng := newLCG(31)
	mat := make([]float32, rows*cols)
	vec := make([]float32, cols)
	for i := range mat {
		mat[i] = rng.float32n()
	}
	for i := range vec {
		vec[i] = rng.float32n()
	}
	bm, err := s.buffer(ocl.MemReadOnly, int64(4*rows*cols), f32sToBytes(mat))
	if err != nil {
		return s.res, err
	}
	bv, err := s.buffer(ocl.MemReadOnly, int64(4*cols), f32sToBytes(vec))
	if err != nil {
		return s.res, err
	}
	bo, err := s.buffer(ocl.MemWriteOnly, int64(4*rows), nil)
	if err != nil {
		return s.res, err
	}
	k, err := s.kernel("matVecMul")
	if err != nil {
		return s.res, err
	}
	if err := s.args(k, bm, bv, bo, int32(rows), int32(cols)); err != nil {
		return s.res, err
	}
	if err := s.launch(k, (rows+63)/64*64, 64); err != nil {
		return s.res, err
	}
	outBytes, err := s.read(bo, int64(4*rows))
	if err != nil {
		return s.res, err
	}
	if env.Verify {
		out := bytesToF32s(outBytes)
		for _, r := range []int{0, rows / 2, rows - 1} {
			var want float64
			for c := 0; c < cols; c++ {
				want += float64(mat[r*cols+c]) * float64(vec[c])
			}
			if !approxEqual(float64(out[r]), want, 1e-3) {
				return s.res, fmt.Errorf("oclMatVecMul: out[%d] = %v, want %v", r, out[r], want)
			}
		}
		s.res.Verified = true
	}
	return s.res, s.finish()
}

const matrixMulSrc = `
__kernel void matrixMul(__global const float* A, __global const float* B,
                        __global float* C, int n) {
    __local float tileA[256];
    __local float tileB[256];
    int tx = (int)get_local_id(0);
    int ty = (int)get_local_id(1);
    int col = (int)get_global_id(0);
    int row = (int)get_global_id(1);
    float acc = 0.0f;
    for (int t = 0; t < n; t += 16) {
        tileA[ty * 16 + tx] = A[row * n + t + tx];
        tileB[ty * 16 + tx] = B[(t + ty) * n + col];
        barrier(CLK_LOCAL_MEM_FENCE);
        for (int k = 0; k < 16; k++) {
            acc = mad(tileA[ty * 16 + k], tileB[k * 16 + tx], acc);
        }
        barrier(CLK_LOCAL_MEM_FENCE);
    }
    C[row * n + col] = acc;
}`

// oclMatrixMul: tiled dense matrix multiplication with local-memory
// staging and barriers.
func runOclMatrixMul(env *Env) (Result, error) {
	s, err := begin(env, matrixMulSrc)
	if err != nil {
		return Result{}, err
	}
	n := env.scale(64)
	n = (n + 15) / 16 * 16
	rng := newLCG(37)
	A := make([]float32, n*n)
	B := make([]float32, n*n)
	for i := range A {
		A[i] = rng.float32n()
		B[i] = rng.float32n()
	}
	ba, err := s.buffer(ocl.MemReadOnly, int64(4*n*n), f32sToBytes(A))
	if err != nil {
		return s.res, err
	}
	bb, err := s.buffer(ocl.MemReadOnly, int64(4*n*n), f32sToBytes(B))
	if err != nil {
		return s.res, err
	}
	bc, err := s.buffer(ocl.MemWriteOnly, int64(4*n*n), nil)
	if err != nil {
		return s.res, err
	}
	k, err := s.kernel("matrixMul")
	if err != nil {
		return s.res, err
	}
	if err := s.args(k, ba, bb, bc, int32(n)); err != nil {
		return s.res, err
	}
	if err := s.launchND(k, 2, [3]int{n, n}, [3]int{16, 16}); err != nil {
		return s.res, err
	}
	outBytes, err := s.read(bc, int64(4*n*n))
	if err != nil {
		return s.res, err
	}
	if env.Verify {
		C := bytesToF32s(outBytes)
		for _, idx := range []int{0, n*n/2 + n/3, n*n - 1} {
			r, col := idx/n, idx%n
			var want float64
			for kk := 0; kk < n; kk++ {
				want += float64(A[r*n+kk]) * float64(B[kk*n+col])
			}
			if !approxEqual(float64(C[idx]), want, 1e-3) {
				return s.res, fmt.Errorf("oclMatrixMul: C[%d] = %v, want %v", idx, C[idx], want)
			}
		}
		s.res.Verified = true
	}
	return s.res, s.finish()
}
