// Package vtime provides the virtual (simulated) time base used by every
// timing model in the repository.
//
// All costs in the simulation — PCIe transfers, kernel executions, disk
// writes, IPC round trips — are expressed as vtime.Duration and accumulate
// on per-node vtime.Clock instances. Wall-clock time never enters any
// reported result, which keeps every experiment deterministic and fast
// regardless of the machine running the reproduction.
package vtime

import (
	"fmt"
	"sync"
)

// Duration is a span of virtual time in nanoseconds.
type Duration int64

// Time is an instant on a virtual timeline, in nanoseconds since the
// simulation epoch (construction of the owning Clock).
type Time int64

// Common durations.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
	Minute               = 60 * Second
)

// Infinity is the explicit "never completes" duration: the runtime a
// scheduler predicts for work placed on a degenerate device (zero compute
// rate), or the gain of a move away from one. It is a typed rejection, not
// a large number — arithmetic on it must go through SatAdd/SatSub so it
// stays absorbing instead of overflowing.
const Infinity Duration = 1<<63 - 1

// IsInf reports whether the duration is the Infinity sentinel.
func (d Duration) IsInf() bool { return d == Infinity }

// SatAdd adds two durations, saturating at Infinity: adding anything to an
// infinite duration (or overflowing) stays infinite.
func (d Duration) SatAdd(e Duration) Duration {
	if d.IsInf() || e.IsInf() {
		return Infinity
	}
	s := d + e
	if d > 0 && e > 0 && s < 0 { // overflow
		return Infinity
	}
	return s
}

// SatSub subtracts e from d with Infinity absorbing: an infinite d minus
// any finite e stays infinite, and subtracting an infinite e from a finite
// d yields the most negative duration (an unpayable cost).
func (d Duration) SatSub(e Duration) Duration {
	if d.IsInf() {
		return Infinity
	}
	if e.IsInf() {
		return -Infinity
	}
	return d - e
}

// FromSeconds converts a floating-point number of seconds to a Duration.
func FromSeconds(s float64) Duration { return Duration(s * float64(Second)) }

// Seconds reports the duration as floating-point seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Millis reports the duration as floating-point milliseconds.
func (d Duration) Millis() float64 { return float64(d) / float64(Millisecond) }

// String formats the duration with a unit chosen by magnitude.
func (d Duration) String() string {
	if d.IsInf() {
		return "+inf"
	}
	if d == -Infinity {
		return "-inf"
	}
	abs := d
	if abs < 0 {
		abs = -abs
	}
	switch {
	case abs >= Second:
		return fmt.Sprintf("%.3fs", d.Seconds())
	case abs >= Millisecond:
		return fmt.Sprintf("%.3fms", d.Millis())
	case abs >= Microsecond:
		return fmt.Sprintf("%.3fµs", float64(d)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(d))
	}
}

// Seconds reports the instant as floating-point seconds since the epoch.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Add offsets an instant by a duration.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub reports the duration between two instants.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// String formats the instant as seconds since the epoch.
func (t Time) String() string { return fmt.Sprintf("t+%.6fs", t.Seconds()) }

// Max returns the later of two instants.
func Max(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

// Clock is a monotone virtual clock. A Clock is shared by every process on
// a simulated node: blocking operations advance it, and asynchronous device
// work is modelled as timeline arithmetic against it (see internal/ocl).
//
// Clock is safe for concurrent use.
type Clock struct {
	mu  sync.Mutex
	now Time
}

// NewClock returns a clock positioned at the epoch.
func NewClock() *Clock { return &Clock{} }

// Now reports the current virtual instant.
func (c *Clock) Now() Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the clock forward by d and returns the new instant.
// Negative durations are ignored: virtual time is monotone.
func (c *Clock) Advance(d Duration) Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	if d > 0 {
		c.now = c.now.Add(d)
	}
	return c.now
}

// AdvanceTo moves the clock forward to instant t if t is in the future,
// and returns the (possibly unchanged) current instant. It models a
// blocking wait until t.
func (c *Clock) AdvanceTo(t Time) Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t > c.now {
		c.now = t
	}
	return c.now
}

// StallTracker accumulates labelled stall time: virtual time a caller
// spent parked waiting on something other than its own work — an MPI
// survivor waiting out another rank's restore, a queue waiting on a
// recovering peer. Labels keep independent totals so one tracker can
// account for several stall sources. Safe for concurrent use.
type StallTracker struct {
	mu     sync.Mutex
	total  Duration
	events int
	byLbl  map[string]Duration
}

// Add charges d of stall time under label. Non-positive durations are
// ignored (a waiter released at its own arrival time did not stall).
func (t *StallTracker) Add(label string, d Duration) {
	if d <= 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.byLbl == nil {
		t.byLbl = map[string]Duration{}
	}
	t.total += d
	t.events++
	t.byLbl[label] += d
}

// Total reports the accumulated stall time across all labels.
func (t *StallTracker) Total() Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Events reports how many stalls were recorded.
func (t *StallTracker) Events() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.events
}

// ByLabel returns a copy of the per-label stall totals.
func (t *StallTracker) ByLabel() map[string]Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]Duration, len(t.byLbl))
	for k, v := range t.byLbl {
		out[k] = v
	}
	return out
}

// Stopwatch measures spans of virtual time against a Clock.
type Stopwatch struct {
	clock *Clock
	start Time
}

// NewStopwatch starts a stopwatch at the clock's current instant.
func NewStopwatch(c *Clock) *Stopwatch { return &Stopwatch{clock: c, start: c.Now()} }

// Elapsed reports virtual time elapsed since construction or the last Reset.
func (s *Stopwatch) Elapsed() Duration { return s.clock.Now().Sub(s.start) }

// Reset restarts the stopwatch at the clock's current instant and returns
// the span that had elapsed before the reset.
func (s *Stopwatch) Reset() Duration {
	e := s.Elapsed()
	s.start = s.clock.Now()
	return e
}
