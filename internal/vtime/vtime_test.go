package vtime

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestDurationConversions(t *testing.T) {
	if got := FromSeconds(1.5); got != 1500*Millisecond {
		t.Errorf("FromSeconds(1.5) = %v, want 1.5s", got)
	}
	if got := (2500 * Millisecond).Seconds(); got != 2.5 {
		t.Errorf("Seconds = %v, want 2.5", got)
	}
	if got := (3 * Millisecond).Millis(); got != 3 {
		t.Errorf("Millis = %v, want 3", got)
	}
}

func TestDurationString(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{2 * Second, "2.000s"},
		{1500 * Microsecond, "1.500ms"},
		{12 * Microsecond, "12.000µs"},
		{999, "999ns"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.d), got, c.want)
		}
	}
}

func TestInfinity(t *testing.T) {
	if !Infinity.IsInf() {
		t.Error("Infinity.IsInf() = false")
	}
	if (2 * Second).IsInf() {
		t.Error("a finite duration reports IsInf")
	}
	if got := Infinity.String(); got != "+inf" {
		t.Errorf("Infinity.String() = %q, want \"+inf\"", got)
	}
	if got := (-Infinity).String(); got != "-inf" {
		t.Errorf("(-Infinity).String() = %q, want \"-inf\"", got)
	}
}

func TestSaturatingArithmetic(t *testing.T) {
	cases := []struct {
		a, b, add, sub Duration
	}{
		{2 * Second, 3 * Second, 5 * Second, -Second},
		{Infinity, Second, Infinity, Infinity},
		{Second, Infinity, Infinity, -Infinity},
		{Infinity, Infinity, Infinity, Infinity},
		// Plain addition of two huge finite durations would wrap negative.
		{Infinity - 1, Infinity - 1, Infinity, 0},
	}
	for _, c := range cases {
		if got := c.a.SatAdd(c.b); got != c.add {
			t.Errorf("%v.SatAdd(%v) = %v, want %v", c.a, c.b, got, c.add)
		}
		if got := c.a.SatSub(c.b); got != c.sub {
			t.Errorf("%v.SatSub(%v) = %v, want %v", c.a, c.b, got, c.sub)
		}
	}
}

func TestTimeArithmetic(t *testing.T) {
	a := Time(0).Add(2 * Second)
	b := a.Add(500 * Millisecond)
	if d := b.Sub(a); d != 500*Millisecond {
		t.Errorf("Sub = %v, want 500ms", d)
	}
	if Max(a, b) != b || Max(b, a) != b {
		t.Errorf("Max(%v,%v) wrong", a, b)
	}
}

func TestClockMonotone(t *testing.T) {
	c := NewClock()
	if c.Now() != 0 {
		t.Fatalf("new clock at %v, want 0", c.Now())
	}
	c.Advance(1 * Second)
	c.Advance(-5 * Second) // ignored
	if got := c.Now(); got != Time(1*Second) {
		t.Errorf("after negative Advance: %v, want t+1s", got)
	}
	c.AdvanceTo(Time(500 * Millisecond)) // in the past; ignored
	if got := c.Now(); got != Time(1*Second) {
		t.Errorf("after past AdvanceTo: %v, want t+1s", got)
	}
	c.AdvanceTo(Time(3 * Second))
	if got := c.Now(); got != Time(3*Second) {
		t.Errorf("after future AdvanceTo: %v, want t+3s", got)
	}
}

func TestClockMonotoneProperty(t *testing.T) {
	c := NewClock()
	f := func(deltas []int32) bool {
		prev := c.Now()
		for _, d := range deltas {
			c.Advance(Duration(d))
			now := c.Now()
			if now < prev {
				return false
			}
			prev = now
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClockConcurrent(t *testing.T) {
	c := NewClock()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Advance(Microsecond)
			}
		}()
	}
	wg.Wait()
	if got := c.Now(); got != Time(8000*Microsecond) {
		t.Errorf("concurrent advance lost updates: %v, want t+8ms", got)
	}
}

func TestStopwatch(t *testing.T) {
	c := NewClock()
	sw := NewStopwatch(c)
	c.Advance(2 * Second)
	if e := sw.Elapsed(); e != 2*Second {
		t.Errorf("Elapsed = %v, want 2s", e)
	}
	if e := sw.Reset(); e != 2*Second {
		t.Errorf("Reset returned %v, want 2s", e)
	}
	c.Advance(1 * Second)
	if e := sw.Elapsed(); e != 1*Second {
		t.Errorf("Elapsed after reset = %v, want 1s", e)
	}
}

func TestStallTracker(t *testing.T) {
	var st StallTracker
	st.Add("barrier", 2*Second)
	st.Add("recv", Second)
	st.Add("barrier", Second)
	st.Add("recv", 0)       // ignored
	st.Add("recv", -Second) // ignored
	if st.Total() != 4*Second {
		t.Errorf("Total = %v, want 4s", st.Total())
	}
	if st.Events() != 3 {
		t.Errorf("Events = %d, want 3", st.Events())
	}
	by := st.ByLabel()
	if by["barrier"] != 3*Second || by["recv"] != Second {
		t.Errorf("ByLabel = %v", by)
	}
	// The returned map is a copy.
	by["barrier"] = 0
	if st.ByLabel()["barrier"] != 3*Second {
		t.Error("ByLabel exposed internal state")
	}
}

func TestStallTrackerConcurrent(t *testing.T) {
	var st StallTracker
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				st.Add("x", Microsecond)
			}
		}()
	}
	wg.Wait()
	if st.Total() != 800*Microsecond || st.Events() != 800 {
		t.Errorf("concurrent adds lost updates: %v / %d", st.Total(), st.Events())
	}
}
