package store

import (
	"fmt"

	"checl/internal/hw"
	"checl/internal/vtime"
)

// ReplicateStats reports what one replication moved.
type ReplicateStats struct {
	ChunksCopied  int
	ChunksSkipped int // already present at the destination
	BytesCopied   int64
	Time          vtime.Duration
}

// Replicate copies one checkpoint — its manifest and every chunk the
// destination is missing — into dst, which is typically a store on
// another node's filesystem. Chunks already present at the destination
// (from earlier replications or the destination's own checkpoints) are
// skipped, so replicating successive checkpoints of a job moves only the
// delta. Source reads and destination writes charge their filesystem
// models to clock; nic, when positive, additionally charges the
// node-to-node transfer for every copied byte.
//
// After replication the checkpoint restores from dst with no reference
// to the source filesystem, which is what lets core.Migrate-style flows
// pull from the nearest replica instead of NFS.
func (s *Store) Replicate(clock *vtime.Clock, ref string, dst *Store, nic hw.Bandwidth) (Manifest, ReplicateStats, error) {
	var st ReplicateStats
	if dst == nil {
		return Manifest{}, st, fmt.Errorf("store: replicate: nil destination")
	}
	man, err := s.Resolve(ref)
	if err != nil {
		return Manifest{}, st, err
	}
	sw := vtime.NewStopwatch(clock)
	for _, c := range man.Chunks {
		if dst.fs.Exists(dst.chunkPath(c.Sum)) {
			st.ChunksSkipped++
			continue
		}
		// Move the stored (compressed) representation verbatim; content
		// addresses stay valid and no recompression is needed.
		blob, err := s.fs.ReadFile(clock, s.chunkPath(c.Sum))
		if err != nil {
			return man, st, fmt.Errorf("store: replicate %s: %w", man.ID(), err)
		}
		if nic > 0 {
			clock.Advance(nic.Transfer(int64(len(blob))))
		}
		if err := dst.fs.WriteFile(clock, dst.chunkPath(c.Sum), blob); err != nil {
			return man, st, fmt.Errorf("store: replicate %s: %w", man.ID(), err)
		}
		st.ChunksCopied++
		st.BytesCopied += int64(len(blob))
	}
	frame, err := encodeManifest(man)
	if err != nil {
		return man, st, err
	}
	if nic > 0 {
		clock.Advance(nic.Transfer(int64(len(frame))))
	}
	if err := dst.fs.WriteFile(clock, dst.manifestPath(man.Job, man.Seq), frame); err != nil {
		return man, st, fmt.Errorf("store: replicate %s: %w", man.ID(), err)
	}
	st.Time = sw.Elapsed()
	return man, st, nil
}
