package store

import (
	"fmt"

	"checl/internal/hw"
	"checl/internal/vtime"
)

// ReplicateStats reports what one replication moved. The byte counters
// live in the embedded HealStats (ChunksCopied/BytesCopied), the shared
// ledger fleet-wide reports aggregate.
type ReplicateStats struct {
	HealStats
	ChunksSkipped int // already present at the destination
	Time          vtime.Duration
}

// Replicate copies one checkpoint — its manifest and every chunk the
// destination is missing — into dst, which is typically a store on
// another node's filesystem. Chunks already present at the destination
// (from earlier replications or the destination's own checkpoints) are
// skipped, so replicating successive checkpoints of a job moves only the
// delta. Every source chunk is verified end to end before it moves (a
// corrupt primary copy heals from the source's own replicas rather than
// propagating), and the destination side is crash-consistent: chunks and
// manifest are staged with verified writes and published by rename,
// manifest last, so an interrupted replication leaves dst unchanged apart
// from staged files its Recover reclaims — and re-running the same
// Replicate is idempotent. Source reads and destination writes charge
// their filesystem models to clock; nic, when positive, additionally
// charges the node-to-node transfer for every copied byte.
//
// After replication the checkpoint restores from dst with no reference
// to the source filesystem, which is what lets core.Migrate-style flows
// pull from the nearest replica instead of NFS.
func (s *Store) Replicate(clock *vtime.Clock, ref string, dst *Store, nic hw.Bandwidth) (Manifest, ReplicateStats, error) {
	if dst == nil {
		return Manifest{}, ReplicateStats{}, fmt.Errorf("store: replicate: nil destination")
	}
	man, err := s.Resolve(ref)
	if err != nil {
		return Manifest{}, ReplicateStats{}, err
	}
	st, err := s.copyManifestTo(clock, man, dst, nic, nil)
	return man, st, err
}

// copyManifestTo moves one manifest and its missing chunks into dst with
// a crash-consistent staged commit. chunkData, when non-nil, maps chunk
// sums to their uncompressed content; it is Put's write-through escape
// hatch — if the freshly committed primary copy of a chunk already rotted
// by the time we read it back for replication, the chunk is recompressed
// from memory instead of failing the replication.
func (s *Store) copyManifestTo(clock *vtime.Clock, man Manifest, dst *Store, nic hw.Bandwidth, chunkData map[string][]byte) (ReplicateStats, error) {
	var st ReplicateStats
	sw := vtime.NewStopwatch(clock)
	txdir := fmt.Sprintf("%srepl-%s-%08d-%d", dst.stagingPrefix(), man.Job, man.Seq, dst.nextTxn())

	type stagedFile struct{ tmp, final string }
	var staged []stagedFile
	stagedSums := map[string]bool{} // a manifest can reference one sum many times
	for _, c := range man.Chunks {
		if stagedSums[c.Sum] || dst.fs.Exists(dst.chunkPath(c.Sum)) {
			st.ChunksSkipped++
			continue
		}
		// The stored (compressed) representation moves verbatim; content
		// addresses stay valid and no recompression is needed.
		blob, _, err := s.fetchBlob(clock, c, true)
		if err != nil {
			chunk, ok := chunkData[c.Sum]
			if !ok {
				return st, fmt.Errorf("store: replicate %s: %w", man.ID(), err)
			}
			if blob, err = s.cfg.Compression.compress(clock, chunk); err != nil {
				return st, err
			}
			// Repair the primary copy too, best effort.
			_ = s.writeVerified(clock, s.chunkPath(c.Sum), blob)
		}
		if nic > 0 {
			clock.Advance(nic.Transfer(int64(len(blob))))
		}
		tmp := txdir + "/" + c.Sum
		if err := dst.writeVerified(clock, tmp, blob); err != nil {
			return st, fmt.Errorf("store: replicate %s: %w", man.ID(), err)
		}
		staged = append(staged, stagedFile{tmp: tmp, final: dst.chunkPath(c.Sum)})
		stagedSums[c.Sum] = true
		st.ChunksCopied++
		st.BytesCopied += int64(len(blob))
	}

	frame, err := encodeManifest(man)
	if err != nil {
		return st, err
	}
	if nic > 0 {
		clock.Advance(nic.Transfer(int64(len(frame))))
	}
	if err := dst.writeVerifiedMeta(clock, txdir+"/manifest", frame); err != nil {
		return st, fmt.Errorf("store: replicate %s: %w", man.ID(), err)
	}
	for _, sf := range staged {
		if err := dst.renameRetry(sf.tmp, sf.final); err != nil {
			return st, fmt.Errorf("store: replicate %s: %w", man.ID(), err)
		}
	}
	if err := dst.renameRetry(txdir+"/manifest", dst.manifestPath(man.Job, man.Seq)); err != nil {
		return st, fmt.Errorf("store: replicate %s: %w", man.ID(), err)
	}
	st.Time = sw.Elapsed()
	return st, nil
}
