package store

import (
	"bytes"
	"fmt"
	"testing"
)

// combinations enumerates all size-r subsets of [0, n).
func combinations(n, r int) [][]int {
	var out [][]int
	idx := make([]int, r)
	var rec func(start, depth int)
	rec = func(start, depth int) {
		if depth == r {
			out = append(out, append([]int(nil), idx...))
			return
		}
		for i := start; i < n; i++ {
			idx[depth] = i
			rec(i+1, depth+1)
		}
	}
	rec(0, 0)
	return out
}

func TestCoderRoundTripAllLossPatterns(t *testing.T) {
	for _, geo := range []struct{ k, m int }{{2, 1}, {4, 2}, {3, 3}, {8, 2}} {
		c, err := NewCoder(geo.k, geo.m)
		if err != nil {
			t.Fatalf("NewCoder(%d,%d): %v", geo.k, geo.m, err)
		}
		data := make([]byte, 1000+geo.k) // deliberately not a multiple of k
		for i := range data {
			data[i] = byte(i*31 + 7)
		}
		shards := c.Encode(data)
		if len(shards) != geo.k+geo.m {
			t.Fatalf("k=%d m=%d: %d shards", geo.k, geo.m, len(shards))
		}
		// Systematic: the data shards concatenated ARE the data.
		if got := c.Join(shards, len(data)); !bytes.Equal(got, data) {
			t.Fatalf("k=%d m=%d: data shards do not join to the input", geo.k, geo.m)
		}
		// Every loss pattern up to m erasures reconstructs bit-identical.
		for lost := 1; lost <= geo.m; lost++ {
			for _, gone := range combinations(geo.k+geo.m, lost) {
				have := map[int][]byte{}
				for i, s := range shards {
					have[i] = s
				}
				for _, g := range gone {
					delete(have, g)
				}
				rec, err := c.Reconstruct(have)
				if err != nil {
					t.Fatalf("k=%d m=%d lost=%v: %v", geo.k, geo.m, gone, err)
				}
				for i := range shards {
					if !bytes.Equal(rec[i], shards[i]) {
						t.Fatalf("k=%d m=%d lost=%v: shard %d differs after reconstruction", geo.k, geo.m, gone, i)
					}
				}
				if got := c.Join(rec, len(data)); !bytes.Equal(got, data) {
					t.Fatalf("k=%d m=%d lost=%v: payload differs after reconstruction", geo.k, geo.m, gone)
				}
			}
		}
		// m+1 erasures must fail, not fabricate data.
		have := map[int][]byte{}
		for i := geo.m + 1; i < geo.k+geo.m; i++ {
			have[i] = shards[i]
		}
		if len(have) < geo.k {
			if _, err := c.Reconstruct(have); err == nil {
				t.Fatalf("k=%d m=%d: reconstruction from %d shards succeeded, need %d", geo.k, geo.m, len(have), geo.k)
			}
		}
	}
}

func TestCoderRejectsBadGeometry(t *testing.T) {
	for _, geo := range []struct{ k, m int }{{0, 1}, {1, 0}, {-1, 2}, {200, 100}} {
		if _, err := NewCoder(geo.k, geo.m); err == nil {
			t.Errorf("NewCoder(%d,%d) succeeded", geo.k, geo.m)
		}
	}
}

func TestShardFrameRoundTripAndTamperDetection(t *testing.T) {
	payload := []byte("shard payload bytes")
	frame := encodeShard(3, 4, 2, 77, payload)
	idx, k, m, orig, got, err := decodeShard(frame)
	if err != nil || idx != 3 || k != 4 || m != 2 || orig != 77 || !bytes.Equal(got, payload) {
		t.Fatalf("round trip: idx=%d k=%d m=%d orig=%d payload=%q err=%v", idx, k, m, orig, got, err)
	}
	// Every single flipped bit — magic, geometry, lengths, digest or
	// payload — must turn the shard into a detected erasure.
	for bit := 0; bit < len(frame)*8; bit++ {
		tampered := append([]byte(nil), frame...)
		tampered[bit/8] ^= 1 << (bit % 8)
		if _, _, _, _, _, err := decodeShard(tampered); err == nil {
			t.Fatalf("flipped bit %d (byte %d) went undetected", bit, bit/8)
		}
	}
	if _, _, _, _, _, err := decodeShard(frame[:10]); err == nil {
		t.Fatal("truncated frame decoded")
	}
}

func TestShardMapDeterministicAcrossInputOrders(t *testing.T) {
	names := []string{"store-3", "store-1", "store-4", "store-0", "store-2", "store-5"}
	perms := [][]string{
		names,
		{"store-0", "store-1", "store-2", "store-3", "store-4", "store-5"},
		{"store-5", "store-4", "store-3", "store-2", "store-1", "store-0"},
		{"store-2", "store-5", "store-0", "store-4", "store-1", "store-3"},
	}
	var ref *ShardMap
	for pi, perm := range perms {
		m, err := newShardMap(perm)
		if err != nil {
			t.Fatalf("perm %d: %v", pi, err)
		}
		if ref == nil {
			ref = m
			continue
		}
		for c := 0; c < 200; c++ {
			sum := fmt.Sprintf("%064x", c*2654435761)
			want := ref.Place(sum, 6)
			got := m.Place(sum, 6)
			if fmt.Sprint(want) != fmt.Sprint(got) {
				t.Fatalf("perm %d chunk %d: placement %v, want %v", pi, c, got, want)
			}
		}
	}
}

func TestShardMapPlacementProperties(t *testing.T) {
	names := []string{"a", "b", "c", "d", "e", "f"}
	m, err := newShardMap(names)
	if err != nil {
		t.Fatal(err)
	}
	load := map[string]int{}
	for c := 0; c < 2000; c++ {
		sum := fmt.Sprintf("%064x", c*40503+1)
		p := m.Place(sum, 6)
		if len(p) != 6 {
			t.Fatalf("chunk %d: %d nodes placed, want 6", c, len(p))
		}
		seen := map[string]bool{}
		for _, n := range p {
			if seen[n] {
				t.Fatalf("chunk %d: node %s placed twice", c, n)
			}
			seen[n] = true
		}
		load[p[0]]++ // primary (shard 0) load
	}
	// Primary placement should be roughly uniform: no node under 1/3 or
	// over 3x its fair share of 2000/6.
	fair := 2000 / 6
	for n, l := range load {
		if l < fair/3 || l > fair*3 {
			t.Fatalf("node %s holds %d primaries, fair share %d — ring badly skewed", n, l, fair)
		}
	}
	if _, err := newShardMap([]string{"x", "x"}); err == nil {
		t.Fatal("duplicate node names accepted")
	}
	if _, err := newShardMap(nil); err == nil {
		t.Fatal("empty node set accepted")
	}
}
