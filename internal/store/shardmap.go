package store

// Consistent-hash shard placement for the store fleet. Each store node
// projects a fixed number of virtual points onto a hash ring keyed on the
// node NAME, so placement is a pure function of (chunk address, node-name
// set): the same chunks land on the same nodes no matter what order nodes
// were added in, and replacing a dead node under the same name inherits
// its placement exactly — which is what lets Rebuild re-code lost shards
// onto the replacement without moving anything else.

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
)

// shardVnodes is the virtual-point count per node: enough to keep the
// per-node load within a few percent of uniform at fleet sizes the tests
// use, small enough that rebuilding the ring on membership change is
// free.
const shardVnodes = 64

// ShardMap places the k+m shards of a chunk onto distinct nodes via a
// consistent-hash ring. Immutable once built; rebuild on membership
// change with newShardMap.
type ShardMap struct {
	names  []string // sorted node names
	points []ringPoint
}

type ringPoint struct {
	hash uint64
	node int // index into names
}

// newShardMap builds the ring over the given node names. Names must be
// unique; order is irrelevant.
func newShardMap(names []string) (*ShardMap, error) {
	if len(names) == 0 {
		return nil, fmt.Errorf("shard map: no nodes")
	}
	sorted := append([]string(nil), names...)
	sort.Strings(sorted)
	for i := 1; i < len(sorted); i++ {
		if sorted[i] == sorted[i-1] {
			return nil, fmt.Errorf("shard map: duplicate node name %q", sorted[i])
		}
	}
	m := &ShardMap{names: sorted}
	for ni, name := range sorted {
		for v := 0; v < shardVnodes; v++ {
			h := sha256.Sum256([]byte(fmt.Sprintf("%s#%d", name, v)))
			m.points = append(m.points, ringPoint{
				hash: binary.BigEndian.Uint64(h[:8]),
				node: ni,
			})
		}
	}
	sort.Slice(m.points, func(i, j int) bool {
		if m.points[i].hash != m.points[j].hash {
			return m.points[i].hash < m.points[j].hash
		}
		return m.points[i].node < m.points[j].node
	})
	return m, nil
}

// Nodes reports the node names, sorted.
func (m *ShardMap) Nodes() []string {
	return append([]string(nil), m.names...)
}

// Place returns the names of the count distinct nodes holding shards
// 0..count-1 of the chunk at address sum: walk the ring clockwise from
// the chunk's hash, taking each node the first time it appears. count
// must not exceed the node count — the caller (the fleet) enforces
// k+m <= len(nodes) at construction.
func (m *ShardMap) Place(sum string, count int) []string {
	if count > len(m.names) {
		count = len(m.names)
	}
	h := sha256.Sum256([]byte(sum))
	start := binary.BigEndian.Uint64(h[:8])
	i := sort.Search(len(m.points), func(i int) bool { return m.points[i].hash >= start })
	out := make([]string, 0, count)
	seen := make([]bool, len(m.names))
	for n := 0; n < len(m.points) && len(out) < count; n++ {
		p := m.points[(i+n)%len(m.points)]
		if seen[p.node] {
			continue
		}
		seen[p.node] = true
		out = append(out, m.names[p.node])
	}
	return out
}
