// Package store is a content-addressed checkpoint store layered on the
// simulated filesystem (proc.FS). Checkpoint images are split into
// content-defined chunks keyed by their SHA-256, deduplicated across
// successive checkpoints of the same job and across jobs, written through
// a modelled compression stage whose CPU cost is charged to the virtual
// clock, and tracked by manifests (version, chunk list, integrity digest,
// parent-checkpoint link). The store supports replication of
// manifests+chunks to other nodes' filesystems, reference-counted garbage
// collection with a keep-last-N retention policy, and verification (Fsck)
// that detects corrupt or missing chunks.
//
// The paper's checkpoint pipeline writes each dump as one monolithic file
// whose cost is linear in size (Fig. 5, corr ≈ 0.99); its future-work
// section calls for incremental checkpointing. The store is the storage
// half of that feature: with content-defined chunking, the second
// checkpoint of a mostly-unchanged application re-writes only the chunks
// that actually changed, independent of where in the image they fall.
package store

// Content-defined chunking with a buzhash rolling hash over a fixed
// window: a chunk boundary is declared wherever the window hash matches a
// mask-selected pattern, so boundaries move with the *content* rather than
// with absolute offsets. An insertion or shift early in the image
// therefore disturbs only the chunks around the edit, and every later
// chunk still deduplicates.

const chunkWindow = 64 // rolling-hash window, bytes

// buzTable maps each byte value to a fixed 64-bit random value
// (splitmix64 from a constant seed, so chunk boundaries are deterministic
// across runs and across nodes).
var buzTable = func() [256]uint64 {
	var t [256]uint64
	s := uint64(0x9E3779B97F4A7C15)
	for i := range t {
		s += 0x9E3779B97F4A7C15
		z := s
		z ^= z >> 30
		z *= 0xBF58476D1CE4E5B9
		z ^= z >> 27
		z *= 0x94D049BB133111EB
		z ^= z >> 31
		t[i] = z
	}
	return t
}()

func rotl1(x uint64) uint64 { return x<<1 | x>>63 }

// chunker carries the chunk-size policy.
type chunker struct {
	min, avg, max int
}

// split cuts data into content-defined chunks. Every chunk is at least
// min and at most max bytes (except the final remainder), averaging
// roughly avg bytes; avg must be a power of two. The returned slices
// alias data.
func (c chunker) split(data []byte) [][]byte {
	if len(data) == 0 {
		return nil
	}
	mask := uint64(c.avg - 1)
	var out [][]byte
	start := 0
	var h uint64
	for i := 0; i < len(data); i++ {
		n := i - start // bytes already in the current chunk
		h = rotl1(h) ^ buzTable[data[i]]
		if n >= chunkWindow {
			// Remove the byte leaving the window. With a 64-byte window
			// its table value has been rotated a full word and is back in
			// place, so a plain XOR cancels it.
			h ^= buzTable[data[i-chunkWindow]]
		}
		if n+1 >= c.min && (h&mask) == mask || n+1 >= c.max {
			out = append(out, data[start:i+1])
			start = i + 1
			h = 0
		}
	}
	if start < len(data) {
		out = append(out, data[start:])
	}
	return out
}
