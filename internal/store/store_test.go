package store

import (
	"bytes"
	"errors"
	"math/rand"
	"strings"
	"testing"

	"checl/internal/hw"
	"checl/internal/proc"
	"checl/internal/vtime"
)

func testFS(opts ...proc.FSOption) *proc.FS {
	return proc.NewFS("local", hw.TableISpec().LocalDisk, opts...)
}

// payload builds pseudo-random (incompressible-ish) data from a seed so
// tests control exactly which regions change between checkpoints.
func payload(seed int64, n int) []byte {
	r := rand.New(rand.NewSource(seed))
	b := make([]byte, n)
	r.Read(b)
	return b
}

func TestChunkerBounds(t *testing.T) {
	ck := chunker{min: 4 << 10, avg: 16 << 10, max: 64 << 10}
	data := payload(1, 1<<20)
	chunks := ck.split(data)
	if len(chunks) < 8 {
		t.Fatalf("1 MiB split into only %d chunks", len(chunks))
	}
	var reassembled []byte
	for i, c := range chunks {
		if i < len(chunks)-1 { // the final remainder may be short
			if len(c) < ck.min || len(c) > ck.max {
				t.Errorf("chunk %d size %d outside [%d, %d]", i, len(c), ck.min, ck.max)
			}
		}
		reassembled = append(reassembled, c...)
	}
	if !bytes.Equal(reassembled, data) {
		t.Fatal("chunks do not reassemble the payload")
	}
}

func TestChunkingSurvivesShift(t *testing.T) {
	// Content-defined boundaries: inserting bytes near the front must not
	// re-chunk the whole payload.
	ck := chunker{min: 2 << 10, avg: 8 << 10, max: 32 << 10}
	base := payload(2, 512<<10)
	shifted := append(append([]byte(nil), payload(3, 100)...), base...)

	sums := func(chunks [][]byte) map[string]bool {
		out := map[string]bool{}
		for _, c := range chunks {
			out[string(c)] = true
		}
		return out
	}
	a, b := sums(ck.split(base)), sums(ck.split(shifted))
	common := 0
	for c := range b {
		if a[c] {
			common++
		}
	}
	if common < len(a)/2 {
		t.Errorf("only %d/%d chunks shared after a 100-byte prefix insertion", common, len(a))
	}
}

func TestPutGetRoundtrip(t *testing.T) {
	s := New(testFS(), Config{})
	clock := vtime.NewClock()
	data := payload(4, 300<<10)

	man, st, err := s.Put(clock, "jobA", data)
	if err != nil {
		t.Fatal(err)
	}
	if man.Seq != 1 || man.Parent != "" || man.ID() != "jobA@1" {
		t.Errorf("manifest = %+v", man)
	}
	if st.NewBytes != st.TotalBytes || st.NewChunks != st.TotalChunks {
		t.Errorf("first put should be all-new: %+v", st)
	}
	if st.Time <= 0 {
		t.Error("put charged no virtual time")
	}

	got, man2, err := s.Get(clock, "jobA")
	if err != nil {
		t.Fatal(err)
	}
	if man2.ID() != man.ID() || !bytes.Equal(got, data) {
		t.Fatal("get did not return the stored payload")
	}
	if _, _, err := s.Get(clock, "jobA@1"); err != nil {
		t.Fatalf("get by explicit id: %v", err)
	}
	if _, _, err := s.Get(clock, "nosuch"); err == nil {
		t.Error("get of unknown job must fail")
	}
}

func TestDedupAcrossCheckpoints(t *testing.T) {
	s := New(testFS(), Config{})
	clock := vtime.NewClock()
	base := payload(5, 1<<20)

	_, st1, err := s.Put(clock, "job", base)
	if err != nil {
		t.Fatal(err)
	}
	// Unmodified second checkpoint: everything deduplicates.
	man2, st2, err := s.Put(clock, "job", base)
	if err != nil {
		t.Fatal(err)
	}
	if man2.Seq != 2 || man2.Parent != "job@1" {
		t.Errorf("lineage wrong: %+v", man2)
	}
	if st2.NewBytes != 0 || st2.DedupRatio() != 1 {
		t.Errorf("identical payload should fully dedup: %+v", st2)
	}
	if st2.NewBytes > st1.NewBytes/2 {
		t.Errorf("2nd checkpoint wrote %d new bytes, 1st wrote %d", st2.NewBytes, st1.NewBytes)
	}

	// A localised edit re-uploads only the chunks around it.
	edited := append([]byte(nil), base...)
	copy(edited[512<<10:], payload(6, 4<<10))
	_, st3, err := s.Put(clock, "job", edited)
	if err != nil {
		t.Fatal(err)
	}
	if st3.NewBytes == 0 {
		t.Error("edit produced no new chunks")
	}
	if st3.NewBytes > st1.NewBytes/4 {
		t.Errorf("4 KiB edit re-uploaded %d of %d bytes", st3.NewBytes, st1.NewBytes)
	}
}

func TestDedupAcrossJobs(t *testing.T) {
	s := New(testFS(), Config{})
	clock := vtime.NewClock()
	base := payload(7, 256<<10)
	if _, _, err := s.Put(clock, "job1", base); err != nil {
		t.Fatal(err)
	}
	_, st, err := s.Put(clock, "job2", base)
	if err != nil {
		t.Fatal(err)
	}
	if st.NewBytes != 0 {
		t.Errorf("identical payload under another job should fully dedup: %+v", st)
	}
	if jobs := s.Jobs(); len(jobs) != 2 || jobs[0] != "job1" || jobs[1] != "job2" {
		t.Errorf("jobs = %v", jobs)
	}
}

func TestCompressionShrinksStoredBytes(t *testing.T) {
	s := New(testFS(), Config{})
	clock := vtime.NewClock()
	zeros := make([]byte, 256<<10) // maximally compressible
	_, st, err := s.Put(clock, "z", zeros)
	if err != nil {
		t.Fatal(err)
	}
	if st.StoredBytes >= st.NewBytes/10 {
		t.Errorf("zero payload stored %d of %d bytes; compression not effective", st.StoredBytes, st.NewBytes)
	}
	got, _, err := s.Get(clock, "z")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, zeros) {
		t.Fatal("compressed payload did not round-trip")
	}
}

func TestGCRetention(t *testing.T) {
	s := New(testFS(), Config{})
	clock := vtime.NewClock()
	versions := make([][]byte, 4)
	for i := range versions {
		// Each version shares most content with the previous one but adds
		// a unique tail so dropped manifests own unique chunks.
		v := append([]byte(nil), payload(8, 512<<10)...)
		v = append(v, payload(int64(100+i), 128<<10)...)
		versions[i] = v
		if _, _, err := s.Put(clock, "job", v); err != nil {
			t.Fatal(err)
		}
	}
	before := s.TotalStoredBytes()

	st, err := s.GC(2)
	if err != nil {
		t.Fatal(err)
	}
	if st.ManifestsDropped != 2 || st.ManifestsKept != 2 {
		t.Fatalf("gc stats = %+v", st)
	}
	if st.ChunksDropped == 0 || st.BytesReclaimed <= 0 {
		t.Fatalf("gc reclaimed nothing: %+v", st)
	}
	if after := s.TotalStoredBytes(); after >= before {
		t.Errorf("stored bytes %d -> %d after GC", before, after)
	}

	// The kept checkpoints still verify and reconstruct bit-for-bit.
	rep, err := s.Fsck(clock)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("fsck after GC: %v", rep.Errors)
	}
	if rep.Manifests != 2 {
		t.Errorf("fsck saw %d manifests, want 2", rep.Manifests)
	}
	for seq := 3; seq <= 4; seq++ {
		got, _, err := s.Get(clock, manifestID("job", uint64(seq)))
		if err != nil {
			t.Fatalf("get kept checkpoint %d: %v", seq, err)
		}
		if !bytes.Equal(got, versions[seq-1]) {
			t.Fatalf("kept checkpoint %d corrupted by GC", seq)
		}
	}
	// The dropped ones are gone.
	if _, _, err := s.Get(clock, "job@1"); err == nil {
		t.Error("dropped checkpoint still readable")
	}
}

func TestFsckDetectsCorruptionAndLoss(t *testing.T) {
	fs := testFS()
	s := New(fs, Config{})
	clock := vtime.NewClock()
	if _, _, err := s.Put(clock, "job", payload(9, 256<<10)); err != nil {
		t.Fatal(err)
	}
	man, err := s.Resolve("job")
	if err != nil {
		t.Fatal(err)
	}

	// Corrupt one chunk in place.
	victim := s.chunkPath(man.Chunks[0].Sum)
	blob, err := fs.ReadFile(clock, victim)
	if err != nil {
		t.Fatal(err)
	}
	good := append([]byte(nil), blob...)
	blob[len(blob)/2] ^= 0xFF
	if err := fs.WriteFile(clock, victim, blob); err != nil {
		t.Fatal(err)
	}
	rep, err := s.Fsck(clock)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("fsck missed a corrupt chunk")
	}
	if err := fs.WriteFile(clock, victim, good); err != nil {
		t.Fatal(err)
	}

	// Remove another chunk entirely.
	if err := fs.Remove(s.chunkPath(man.Chunks[1].Sum)); err != nil {
		t.Fatal(err)
	}
	rep, err = s.Fsck(clock)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, e := range rep.Errors {
		if strings.Contains(e, "missing") {
			found = true
		}
	}
	if !found {
		t.Errorf("fsck did not report the missing chunk: %v", rep.Errors)
	}
	if _, _, err := s.Get(clock, "job"); err == nil {
		t.Error("get of a damaged checkpoint must fail")
	}
}

func TestReplicate(t *testing.T) {
	srcFS, dstFS := testFS(), testFS()
	src, dst := New(srcFS, Config{}), New(dstFS, Config{})
	clock := vtime.NewClock()
	data := payload(10, 512<<10)
	if _, _, err := src.Put(clock, "job", data); err != nil {
		t.Fatal(err)
	}

	man, st, err := src.Replicate(clock, "job", dst, hw.GigE)
	if err != nil {
		t.Fatal(err)
	}
	if st.ChunksCopied == 0 || st.BytesCopied == 0 || st.Time <= 0 {
		t.Fatalf("replication stats = %+v", st)
	}
	got, _, err := dst.Get(clock, man.ID())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("replica does not reconstruct the payload")
	}
	rep, err := dst.Fsck(clock)
	if err != nil || !rep.OK() {
		t.Fatalf("replica fsck: %v %v", err, rep.Errors)
	}

	// Re-replicating moves nothing.
	_, st2, err := src.Replicate(clock, "job", dst, hw.GigE)
	if err != nil {
		t.Fatal(err)
	}
	if st2.ChunksCopied != 0 || st2.ChunksSkipped == 0 {
		t.Errorf("second replication should skip everything: %+v", st2)
	}
}

func TestPutSurfacesNoSpace(t *testing.T) {
	s := New(testFS(proc.WithCapacity(64<<10)), Config{})
	clock := vtime.NewClock()
	_, _, err := s.Put(clock, "job", payload(11, 1<<20))
	var nospace *proc.ErrNoSpace
	if !errors.As(err, &nospace) {
		t.Fatalf("err = %v, want *proc.ErrNoSpace", err)
	}
	if nospace.Capacity != 64<<10 {
		t.Errorf("ErrNoSpace = %+v", nospace)
	}
}

func TestPutRejectsBadJobNames(t *testing.T) {
	s := New(testFS(), Config{})
	clock := vtime.NewClock()
	for _, job := range []string{"", "a/b", "a@1"} {
		if _, _, err := s.Put(clock, job, []byte("x")); err == nil {
			t.Errorf("job %q accepted", job)
		}
	}
}

func TestStorageModelCharged(t *testing.T) {
	// The store charges the same storage model as flat files: writing to
	// a RAM-disk-backed store must be far cheaper than to a disk-backed
	// one.
	spec := hw.TableISpec()
	disk := New(proc.NewFS("local", spec.LocalDisk), Config{})
	ram := New(proc.NewFS("ramdisk", spec.RAMDisk), Config{})
	data := payload(12, 4<<20)

	diskClock, ramClock := vtime.NewClock(), vtime.NewClock()
	if _, _, err := disk.Put(diskClock, "j", data); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ram.Put(ramClock, "j", data); err != nil {
		t.Fatal(err)
	}
	if !(ramClock.Now() < diskClock.Now()) {
		t.Errorf("ram-disk store put (%v) not cheaper than disk (%v)", ramClock.Now(), diskClock.Now())
	}
}

// TestGetSegment: a single rank's bytes come back from a segmented
// checkpoint without assembling the rest of the payload, bit-exact.
func TestGetSegment(t *testing.T) {
	st := New(testFS(), Config{})
	clock := vtime.NewClock()
	a, b, c := payload(10, 300<<10), payload(11, 5<<10), payload(12, 90<<10)
	full := append(append(append([]byte{}, a...), b...), c...)
	segs := []Segment{
		{Name: "rank/00000", Off: 0, Len: int64(len(a))},
		{Name: "rank/00001", Off: int64(len(a)), Len: int64(len(b))},
		{Name: "rank/00002", Off: int64(len(a) + len(b)), Len: int64(len(c))},
	}
	man, _, err := st.PutSegmented(clock, "segjob", full, segs)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range [][]byte{a, b, c} {
		name := segs[i].Name
		got, gman, err := st.GetSegment(clock, "segjob", name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if gman.ID() != man.ID() {
			t.Errorf("%s resolved %s, want %s", name, gman.ID(), man.ID())
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s: payload diverged (%d bytes, want %d)", name, len(got), len(want))
		}
	}
	// Reading one segment must charge less than reading the whole payload.
	before := clock.Now()
	if _, _, err := st.GetSegment(clock, "segjob", "rank/00001"); err != nil {
		t.Fatal(err)
	}
	segCost := clock.Now().Sub(before)
	before = clock.Now()
	if _, _, err := st.Get(clock, "segjob"); err != nil {
		t.Fatal(err)
	}
	fullCost := clock.Now().Sub(before)
	if !(segCost < fullCost) {
		t.Errorf("segment read (%v) should be cheaper than full read (%v)", segCost, fullCost)
	}

	if _, _, err := st.GetSegment(clock, "segjob", "rank/99999"); err == nil {
		t.Error("unknown segment name should fail")
	}
	if _, _, err := st.GetSegment(clock, "nosuchjob", "rank/00000"); err == nil {
		t.Error("unknown job should fail")
	}
	man2, _, err := st.Put(clock, "flatjob", payload(13, 64<<10))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.GetSegment(clock, man2.ID(), "rank/00000"); err == nil {
		t.Error("segment read of an unsegmented checkpoint should fail")
	}
}
