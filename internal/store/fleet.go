package store

// Fleet is the erasure-coded, sharded successor to AttachReplica's
// full-copy replication: N store nodes, each chunk split into k data +
// m parity shards placed on k+m distinct nodes by a consistent-hash map
// over the chunk's content address. Any checkpoint restores bit-identical
// with any m nodes down — a degraded Get gathers any k surviving shards
// and reconstructs — at (k+m)/k storage overhead instead of replication's
// 2x. Manifests are small, so they are mirrored to every node rather than
// sharded; one surviving copy resolves any ref.
//
// Commit protocol: shards are content-addressed and written verified at
// their final paths (writing the same chunk twice is idempotent, so no
// staging dance is needed), then the manifest is published on every alive
// node — the per-node commit point, same manifest-last rule as Store.
// A crash mid-Put leaves orphan shards that GC reclaims.

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"checl/internal/hw"
	"checl/internal/proc"
	"checl/internal/vtime"
)

// FleetNode names one store node and its backing filesystem.
type FleetNode struct {
	Name string
	FS   *proc.FS
}

// FleetConfig parameterises a Fleet. The zero value selects 4+2 coding
// over a GigE link with default per-node store settings.
type FleetConfig struct {
	// DataShards (k) and ParityShards (m): each chunk becomes k+m shards
	// on distinct nodes and survives any m losses. Defaults 4 and 2.
	DataShards, ParityShards int
	// Link models the node-to-node network; shard transfers charge it.
	// Default hw.GigE.
	Link hw.Bandwidth
	// Coding charges the CPU time of parity generation and reconstruction.
	// The zero value selects hw.DefaultCoding.
	Coding hw.CodingModel
	// Store configures the per-node stores (chunking bounds, compression,
	// write retries). The zero value selects Store's defaults.
	Store Config
	// RebuildBatch/RebuildPause pace Rebuild: after each batch of
	// RebuildBatch chunks the rebuilder idles for RebuildPause, so a
	// node replacement does not flatten the surviving nodes with a
	// thundering herd of reconstruction reads. Defaults 32 chunks, 2 ms.
	RebuildBatch int
	RebuildPause vtime.Duration
}

func (c FleetConfig) withDefaults() FleetConfig {
	if c.DataShards == 0 {
		c.DataShards = 4
	}
	if c.ParityShards == 0 {
		c.ParityShards = 2
	}
	if c.Link == 0 {
		c.Link = hw.GigE
	}
	if c.Coding == (hw.CodingModel{}) {
		c.Coding = hw.DefaultCoding()
	}
	if c.RebuildBatch == 0 {
		c.RebuildBatch = 32
	}
	if c.RebuildPause == 0 {
		c.RebuildPause = 2 * vtime.Millisecond
	}
	c.Store = c.Store.withDefaults()
	return c
}

// fleetNode is one member: a Store over the node's filesystem (reusing
// its verified writes, manifest framing and path layout).
type fleetNode struct {
	name string
	st   *Store
}

// Fleet is an erasure-coded checkpoint store over N nodes. It implements
// Backend, so core, cpr and mpi checkpoint into it exactly as into a
// single Store.
type Fleet struct {
	cfg   FleetConfig
	coder *Coder
	smap  *ShardMap

	mu    sync.Mutex // serialises Put/GC/Rebuild/Scrub sequencing
	nodes map[string]*fleetNode
	names []string // sorted

	inj *proc.NodeFaultInjector

	healMu sync.Mutex
	heals  HealStats
}

// NewFleet builds a fleet over the given nodes. Node names must be
// unique and there must be at least k+m of them; input order is
// irrelevant — placement depends only on the name set.
func NewFleet(nodes []FleetNode, cfg FleetConfig) (*Fleet, error) {
	cfg = cfg.withDefaults()
	coder, err := NewCoder(cfg.DataShards, cfg.ParityShards)
	if err != nil {
		return nil, err
	}
	if len(nodes) < cfg.DataShards+cfg.ParityShards {
		return nil, fmt.Errorf("store: fleet: %d nodes cannot hold %d+%d shards on distinct nodes",
			len(nodes), cfg.DataShards, cfg.ParityShards)
	}
	f := &Fleet{cfg: cfg, coder: coder, nodes: map[string]*fleetNode{}}
	for _, n := range nodes {
		if n.Name == "" || strings.ContainsAny(n.Name, "/@") {
			return nil, fmt.Errorf("store: fleet: invalid node name %q", n.Name)
		}
		if _, dup := f.nodes[n.Name]; dup {
			return nil, fmt.Errorf("store: fleet: duplicate node name %q", n.Name)
		}
		f.nodes[n.Name] = &fleetNode{name: n.Name, st: New(n.FS, cfg.Store)}
		f.names = append(f.names, n.Name)
	}
	sort.Strings(f.names)
	if f.smap, err = newShardMap(f.names); err != nil {
		return nil, err
	}
	return f, nil
}

// Name identifies the backend in checkpoint records and tooling.
func (f *Fleet) Name() string {
	return fmt.Sprintf("fleet(%d nodes, %d+%d)", len(f.names), f.cfg.DataShards, f.cfg.ParityShards)
}

// Config exposes the resolved configuration.
func (f *Fleet) Config() FleetConfig { return f.cfg }

// Nodes lists the node names, sorted.
func (f *Fleet) Nodes() []string { return append([]string(nil), f.names...) }

// NodeStore exposes one member's Store (tooling, tests).
func (f *Fleet) NodeStore(name string) (*Store, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	n, ok := f.nodes[name]
	if !ok {
		return nil, false
	}
	return n.st, true
}

// AttachFaults registers every node with the injector (in sorted name
// order, so fault schedules are deterministic) and ticks it on every
// subsequent shard-level operation.
func (f *Fleet) AttachFaults(inj *proc.NodeFaultInjector) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, name := range f.names {
		inj.Register(name, f.nodes[name].st.fs)
	}
	f.inj = inj
}

// SetFaultInjector installs (or with nil removes) an injector to tick
// without registering nodes — for tests that register a hand-picked
// victim subset themselves. AttachFaults is the usual entry point.
func (f *Fleet) SetFaultInjector(inj *proc.NodeFaultInjector) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.inj = inj
}

// Heals reports the fleet's cumulative self-repair counters (degraded
// reads that wrote shards back, scrub and rebuild repairs).
func (f *Fleet) Heals() HealStats {
	f.healMu.Lock()
	defer f.healMu.Unlock()
	return f.heals
}

func (f *Fleet) recordShardHeal(n int, bytes int64) {
	f.healMu.Lock()
	defer f.healMu.Unlock()
	f.heals.ShardsHealed += n
	f.heals.ShardBytesHealed += bytes
}

func (f *Fleet) recordManifestHeal(n int) {
	f.healMu.Lock()
	defer f.healMu.Unlock()
	f.heals.ManifestsHealed += n
}

// tick advances the node fault plan by one fleet-level shard operation.
func (f *Fleet) tick() {
	if f.inj != nil {
		f.inj.Tick()
	}
}

// alive reports whether the node is serving (no node state = healthy).
func (n *fleetNode) alive() bool { return !n.st.fs.Node().Down() }

// shardPath is where node n keeps shard idx of the chunk at sum.
func (f *Fleet) shardPath(n *fleetNode, sum string, idx int) string {
	return fmt.Sprintf("%s/shards/%s/%d", n.st.cfg.Prefix, sum, idx)
}

// placement returns the k+m nodes holding the chunk's shards, in shard
// index order.
func (f *Fleet) placement(sum string) []*fleetNode {
	names := f.smap.Place(sum, f.cfg.DataShards+f.cfg.ParityShards)
	out := make([]*fleetNode, len(names))
	for i, name := range names {
		out[i] = f.nodes[name]
	}
	return out
}

// chunkPresent probes whether the chunk is already durably stored: at
// least k of its shards exist. Like Store's fs.Size dedup probe this is a
// metadata operation and charges no time. When present it also reports
// the original blob length read from one shard frame.
func (f *Fleet) chunkPresent(sum string) (int64, bool) {
	nodes := f.placement(sum)
	present := 0
	first := -1
	for i, n := range nodes {
		if n.st.fs.Exists(f.shardPath(n, sum, i)) {
			present++
			if first < 0 {
				first = i
			}
		}
	}
	if present < f.cfg.DataShards {
		return 0, false
	}
	blob, err := readRetry(vtime.NewClock(), nodes[first].st.fs, f.shardPath(nodes[first], sum, first), f.cfg.Store.WriteRetries)
	if err != nil {
		return 0, false
	}
	if _, _, _, origLen, _, derr := decodeShard(blob); derr == nil {
		return int64(origLen), true
	}
	return 0, false
}

// writeChunkShards encodes blob into k+m shards and writes them to their
// placement nodes. Disk writes to distinct nodes overlap (the caller is
// charged the slowest one); the shard frames all leave through the
// writer's single link, so link time is charged for the total bytes.
// Down nodes are skipped; fewer than k successful writes is an error.
// Returns the physical bytes written.
func (f *Fleet) writeChunkShards(clock *vtime.Clock, sum string, blob []byte) (int64, error) {
	clock.Advance(f.cfg.Coding.EncodeTime(int64(len(blob)), f.cfg.DataShards, f.cfg.ParityShards))
	shards := f.coder.Encode(blob)
	nodes := f.placement(sum)
	var written, linkBytes int64
	var diskMax vtime.Duration
	ok := 0
	var firstErr error
	for i, shard := range shards {
		f.tick()
		n := nodes[i]
		frame := encodeShard(i, f.cfg.DataShards, f.cfg.ParityShards, len(blob), shard)
		if !n.alive() {
			if firstErr == nil {
				firstErr = &proc.ErrNodeDown{Node: n.name, Op: "write", Path: f.shardPath(n, sum, i)}
			}
			continue
		}
		sc := vtime.NewClock()
		if err := n.st.writeVerified(sc, f.shardPath(n, sum, i), frame); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if d := sc.Now().Sub(0); d > diskMax {
			diskMax = d
		}
		linkBytes += int64(len(frame))
		written += int64(len(frame))
		ok++
	}
	clock.Advance(f.cfg.Link.Transfer(linkBytes) + diskMax)
	if ok < f.cfg.DataShards {
		return written, fmt.Errorf("store: fleet: chunk %s: only %d of %d shards written (need %d): %v",
			sum[:12], ok, len(shards), f.cfg.DataShards, firstErr)
	}
	return written, nil
}

// shardStates reads every shard of a chunk: verified payloads keyed by
// index, the original blob length, and the indices that are missing,
// corrupt or on a down node. rot rotates the read order so bulk
// operations (Rebuild) spread their source reads across the survivors
// instead of hammering the ring-order nodes. Disk reads overlap across
// nodes (max charged); link time covers the bytes actually pulled.
func (f *Fleet) shardStates(clock *vtime.Clock, sum string, rot int, stopAtK bool) (have map[int][]byte, origLen int, bad []int) {
	total := f.cfg.DataShards + f.cfg.ParityShards
	nodes := f.placement(sum)
	have = map[int][]byte{}
	origLen = -1
	var linkBytes int64
	var diskMax vtime.Duration
	for off := 0; off < total; off++ {
		if stopAtK && len(have) >= f.cfg.DataShards {
			break
		}
		i := (off + rot) % total
		f.tick()
		n := nodes[i]
		if !n.alive() {
			bad = append(bad, i)
			continue
		}
		sc := vtime.NewClock()
		frame, err := readRetry(sc, n.st.fs, f.shardPath(n, sum, i), f.cfg.Store.WriteRetries)
		if d := sc.Now().Sub(0); d > diskMax {
			diskMax = d
		}
		if err != nil {
			bad = append(bad, i)
			continue
		}
		linkBytes += int64(len(frame))
		idx, _, _, orig, payload, derr := decodeShard(frame)
		if derr != nil || idx != i {
			bad = append(bad, i)
			continue
		}
		have[i] = payload
		origLen = orig
	}
	clock.Advance(f.cfg.Link.Transfer(linkBytes) + diskMax)
	sort.Ints(bad)
	return have, origLen, bad
}

// fetchChunk reads and verifies one chunk. The healthy path reads the k
// data shards and concatenates — no GF(256) work at all. When any data
// shard is an erasure (down node, missing file, failed digest) the
// parity shards join the gather and the chunk reconstructs from any k
// survivors, charging the coding model; the reconstructed shards are
// written back to their alive home nodes best-effort, so a degraded read
// heals the fleet as a side effect.
func (f *Fleet) fetchChunk(clock *vtime.Clock, ref ChunkRef) ([]byte, error) {
	k := f.cfg.DataShards
	have, origLen, bad := f.shardStates(clock, ref.Sum, 0, true)
	if len(have) < k {
		return nil, fmt.Errorf("store: fleet: chunk %s lost: %d of %d shards survive, need %d",
			ref.Sum[:12], len(have), k+f.cfg.ParityShards, k)
	}
	var blob []byte
	dataIntact := true
	for i := 0; i < k; i++ {
		if _, ok := have[i]; !ok {
			dataIntact = false
			break
		}
	}
	if dataIntact {
		blob = make([]byte, 0, origLen)
		for i := 0; i < k && len(blob) < origLen; i++ {
			blob = append(blob, have[i]...)
		}
		blob = blob[:origLen]
	} else {
		lost := 0
		for i := 0; i < k; i++ {
			if _, ok := have[i]; !ok {
				lost++
			}
		}
		clock.Advance(f.cfg.Coding.ReconstructTime(int64(origLen), k, lost))
		shards, err := f.coder.Reconstruct(have)
		if err != nil {
			return nil, fmt.Errorf("store: fleet: chunk %s: %w", ref.Sum[:12], err)
		}
		blob = f.coder.Join(shards, origLen)
		f.healShards(ref.Sum, origLen, shards, bad)
	}
	chunk, err := f.cfg.Store.Compression.decompress(clock, blob)
	if err != nil {
		return nil, fmt.Errorf("store: fleet: chunk %s: %w", ref.Sum[:12], err)
	}
	sum := sha256.Sum256(chunk)
	if got := hex.EncodeToString(sum[:]); got != ref.Sum {
		return nil, fmt.Errorf("store: fleet: chunk %s corrupt (content hashes to %s)", ref.Sum[:12], got[:12])
	}
	return chunk, nil
}

// healShards writes the given shard indices back to their alive home
// nodes, best effort on a scratch clock (repair is background work a
// degraded read should not also pay for). Counted in HealStats.
func (f *Fleet) healShards(sum string, origLen int, shards [][]byte, idxs []int) {
	nodes := f.placement(sum)
	healed, bytes := 0, int64(0)
	for _, i := range idxs {
		n := nodes[i]
		if !n.alive() {
			continue
		}
		frame := encodeShard(i, f.cfg.DataShards, f.cfg.ParityShards, origLen, shards[i])
		if err := n.st.writeVerified(vtime.NewClock(), f.shardPath(n, sum, i), frame); err == nil {
			healed++
			bytes += int64(len(frame))
		}
	}
	if healed > 0 {
		f.recordShardHeal(healed, bytes)
	}
}

// assemble reads and verifies every chunk of man and checks the payload
// digest — Store.assemble over shards.
func (f *Fleet) assemble(clock *vtime.Clock, man Manifest) ([]byte, error) {
	payload := make([]byte, 0, man.Size)
	for _, cref := range man.Chunks {
		chunk, err := f.fetchChunk(clock, cref)
		if err != nil {
			return nil, err
		}
		payload = append(payload, chunk...)
	}
	digest := sha256.Sum256(payload)
	if got := hex.EncodeToString(digest[:]); got != man.Digest {
		return nil, fmt.Errorf("store: fleet: %s: payload digest mismatch (manifest %s, assembled %s)",
			man.ID(), man.Digest[:12], got[:12])
	}
	return payload, nil
}

// Put stores one checkpoint payload for job — Store.Put over the fleet.
func (f *Fleet) Put(clock *vtime.Clock, job string, payload []byte) (Manifest, PutStats, error) {
	return f.PutSegmented(clock, job, payload, nil)
}

// PutSegmented is Store.PutSegmented over the fleet: the payload chunks
// identically (same content-defined chunker, so cross-job dedup carries
// over), each new chunk compresses once and fans out as k+m shards, and
// the manifest publishes to every alive node. The commit tolerates up to
// m down nodes: a chunk commits with >= k shards written and the
// manifest with at most m copies missing; anything less fails the Put.
func (f *Fleet) PutSegmented(clock *vtime.Clock, job string, payload []byte, segs []Segment) (Manifest, PutStats, error) {
	if job == "" || strings.ContainsAny(job, "/@") {
		return Manifest{}, PutStats{}, fmt.Errorf("store: invalid job name %q", job)
	}
	if segs != nil {
		if err := validSegments(segs, int64(len(payload))); err != nil {
			return Manifest{}, PutStats{}, err
		}
	}
	f.mu.Lock()
	defer f.mu.Unlock()

	seq := uint64(1)
	if seqs := f.jobSeqs(job); len(seqs) > 0 {
		seq = seqs[len(seqs)-1] + 1
	}
	parent := ""
	var parentMan Manifest
	haveParent := false
	if last, ok, err := f.latest(job); err != nil {
		return Manifest{}, PutStats{}, err
	} else if ok {
		parent = last.ID()
		parentMan, haveParent = last, true
	}

	sw := vtime.NewStopwatch(clock)
	ck := chunker{min: f.cfg.Store.MinChunk, avg: f.cfg.Store.AvgChunk, max: f.cfg.Store.MaxChunk}
	man := Manifest{
		Version: manifestVersion, Job: job, Seq: seq, Parent: parent,
		Size: int64(len(payload)), CreatedAt: clock.Now(),
	}
	stats := PutStats{Manifest: man.ID(), TotalBytes: int64(len(payload))}
	written := map[string]int64{} // blob length of chunks this Put wrote

	parentSeg := map[string]SegmentRef{}
	parentSegChunks := map[string][]ChunkRef{}
	if haveParent && len(parentMan.Segments) > 0 {
		at := 0
		for _, ps := range parentMan.Segments {
			if at+ps.Chunks > len(parentMan.Chunks) {
				parentSeg, parentSegChunks = map[string]SegmentRef{}, nil
				break
			}
			parentSeg[ps.Name] = ps
			parentSegChunks[ps.Name] = parentMan.Chunks[at : at+ps.Chunks]
			at += ps.Chunks
		}
	}

	stageRange := func(data []byte) (int, error) {
		n := 0
		for _, chunk := range ck.split(data) {
			sum256 := sha256.Sum256(chunk)
			sum := hex.EncodeToString(sum256[:])
			ref := ChunkRef{Sum: sum, Size: int64(len(chunk))}
			if stored, ok := written[sum]; ok {
				ref.Stored = stored
			} else if stored, ok := f.chunkPresent(sum); ok {
				ref.Stored = stored
			} else {
				csw := vtime.NewStopwatch(clock)
				blob, cerr := f.cfg.Store.Compression.compress(clock, chunk)
				if cerr != nil {
					return n, cerr
				}
				stats.CompressTime += csw.Elapsed()
				wsw := vtime.NewStopwatch(clock)
				phys, werr := f.writeChunkShards(clock, sum, blob)
				stats.StoredBytes += phys
				if werr != nil {
					return n, werr
				}
				stats.WriteTime += wsw.Elapsed()
				written[sum] = int64(len(blob))
				ref.Stored = int64(len(blob))
				stats.NewChunks++
				stats.NewBytes += int64(len(chunk))
			}
			man.Chunks = append(man.Chunks, ref)
			stats.TotalChunks++
			n++
		}
		return n, nil
	}

	if segs == nil {
		if _, err := stageRange(payload); err != nil {
			return Manifest{}, stats, err
		}
	} else {
		for _, sg := range segs {
			if sg.Clean {
				if ps, ok := parentSeg[sg.Name]; ok && ps.Size == sg.Len {
					refs := parentSegChunks[sg.Name]
					man.Chunks = append(man.Chunks, refs...)
					man.Segments = append(man.Segments, SegmentRef{
						Name: sg.Name, Size: sg.Len, Chunks: len(refs), Clean: true,
					})
					stats.TotalChunks += len(refs)
					stats.ReusedChunks += len(refs)
					stats.ReusedBytes += sg.Len
					continue
				}
			}
			n, err := stageRange(payload[sg.Off : sg.Off+sg.Len])
			if err != nil {
				return Manifest{}, stats, err
			}
			man.Segments = append(man.Segments, SegmentRef{Name: sg.Name, Size: sg.Len, Chunks: n})
		}
	}

	digest := sha256.Sum256(payload)
	man.Digest = hex.EncodeToString(digest[:])
	frame, err := encodeManifest(man)
	if err != nil {
		return Manifest{}, stats, err
	}
	published, err := f.publishManifest(clock, man.Job, man.Seq, frame)
	if err != nil {
		return Manifest{}, stats, err
	}
	stats.StoredBytes += int64(published) * int64(len(frame))
	stats.Time = sw.Elapsed()
	return man, stats, nil
}

// publishManifest writes the manifest frame to every alive node and
// reports how many copies landed. At most m copies may be missing — that
// keeps at least one copy alive through any later m-node loss (n-2m >= 1
// whenever m < k) — otherwise the commit fails.
func (f *Fleet) publishManifest(clock *vtime.Clock, job string, seq uint64, frame []byte) (int, error) {
	published := 0
	var firstErr error
	var diskMax vtime.Duration
	var linkBytes int64
	for _, name := range f.names {
		f.tick()
		n := f.nodes[name]
		if !n.alive() {
			if firstErr == nil {
				firstErr = &proc.ErrNodeDown{Node: name, Op: "write", Path: n.st.manifestPath(job, seq)}
			}
			continue
		}
		sc := vtime.NewClock()
		if err := n.st.writeVerifiedMeta(sc, n.st.manifestPath(job, seq), frame); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if d := sc.Now().Sub(0); d > diskMax {
			diskMax = d
		}
		linkBytes += int64(len(frame))
		published++
	}
	clock.Advance(f.cfg.Link.Transfer(linkBytes) + diskMax)
	if published < len(f.names)-f.cfg.ParityShards {
		return published, fmt.Errorf("store: fleet: manifest %s published to only %d of %d nodes (tolerate at most %d missing): %v",
			manifestID(job, seq), published, len(f.names), f.cfg.ParityShards, firstErr)
	}
	return published, nil
}

// readManifestFleet resolves one manifest from the first node holding a
// decodable copy, walking sorted names. When an earlier node failed
// (down, lost or corrupt frame) and a later one served, the good frame
// is re-published to the failed alive nodes best effort — manifest reads
// self-heal exactly like Store's replica fallback.
func (f *Fleet) readManifestFleet(job string, seq uint64) (Manifest, error) {
	var failed []*fleetNode
	var lastErr error
	for _, name := range f.names {
		n := f.nodes[name]
		if !n.alive() {
			continue
		}
		if !n.st.fs.Exists(n.st.manifestPath(job, seq)) {
			failed = append(failed, n)
			continue
		}
		m, err := n.st.readManifest(job, seq)
		if err != nil {
			lastErr = err
			failed = append(failed, n)
			continue
		}
		if len(failed) > 0 {
			if frame, ferr := encodeManifest(m); ferr == nil {
				healed := 0
				for _, fn := range failed {
					if werr := fn.st.writeVerifiedMeta(vtime.NewClock(), fn.st.manifestPath(job, seq), frame); werr == nil {
						healed++
					}
				}
				f.recordManifestHeal(healed)
			}
		}
		return m, nil
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("store: manifest %s: no copy on any alive node", manifestID(job, seq))
	}
	return Manifest{}, lastErr
}

// jobSeqs unions the job's sequence numbers across alive nodes.
func (f *Fleet) jobSeqs(job string) []uint64 {
	seen := map[uint64]bool{}
	for _, name := range f.names {
		n := f.nodes[name]
		if !n.alive() {
			continue
		}
		for _, seq := range n.st.jobSeqs(job) {
			seen[seq] = true
		}
	}
	seqs := make([]uint64, 0, len(seen))
	for s := range seen {
		seqs = append(seqs, s)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs
}

// latest mirrors Store.latest over the fleet's manifest union.
func (f *Fleet) latest(job string) (Manifest, bool, error) {
	seqs := f.jobSeqs(job)
	for i := len(seqs) - 1; i >= 0; i-- {
		m, err := f.readManifestFleet(job, seqs[i])
		if err == nil {
			return m, true, nil
		}
	}
	return Manifest{}, false, nil
}

// Latest reports the newest resolvable manifest of a job, if any.
func (f *Fleet) Latest(job string) (Manifest, bool, error) {
	return f.latest(job)
}

// Resolve looks a ref up without reading chunk data — Store.Resolve over
// the fleet.
func (f *Fleet) Resolve(ref string) (Manifest, error) {
	if job, seqStr, ok := strings.Cut(ref, "@"); ok {
		seq, err := parseSeq(ref, seqStr)
		if err != nil {
			return Manifest{}, err
		}
		return f.readManifestFleet(job, seq)
	}
	man, ok, err := f.latest(ref)
	if err != nil {
		return Manifest{}, err
	}
	if !ok {
		return Manifest{}, fmt.Errorf("store: job %q has no checkpoints", ref)
	}
	return man, nil
}

// Get reconstructs a checkpoint payload — Store.Get over the fleet, with
// degraded reads in place of replica healing.
func (f *Fleet) Get(clock *vtime.Clock, ref string) ([]byte, Manifest, error) {
	man, err := f.Resolve(ref)
	if err != nil {
		return nil, Manifest{}, err
	}
	payload, err := f.assemble(clock, man)
	return payload, man, err
}

// GetSegment reconstructs one named segment without assembling the rest
// — Store.GetSegment over the fleet (MPI partial restart's read path).
func (f *Fleet) GetSegment(clock *vtime.Clock, ref, name string) ([]byte, Manifest, error) {
	man, err := f.Resolve(ref)
	if err != nil {
		return nil, Manifest{}, err
	}
	if len(man.Segments) == 0 {
		return nil, man, fmt.Errorf("store: %s: no segment map (whole-payload checkpoint)", man.ID())
	}
	first := 0
	for _, seg := range man.Segments {
		if seg.Name != name {
			first += seg.Chunks
			continue
		}
		if first+seg.Chunks > len(man.Chunks) {
			return nil, man, fmt.Errorf("store: %s: segment %q claims chunks beyond manifest", man.ID(), name)
		}
		payload := make([]byte, 0, seg.Size)
		for _, cref := range man.Chunks[first : first+seg.Chunks] {
			chunk, err := f.fetchChunk(clock, cref)
			if err != nil {
				return nil, man, err
			}
			payload = append(payload, chunk...)
		}
		if int64(len(payload)) != seg.Size {
			return nil, man, fmt.Errorf("store: %s: segment %q assembled to %d bytes, manifest says %d",
				man.ID(), name, len(payload), seg.Size)
		}
		return payload, man, nil
	}
	return nil, man, fmt.Errorf("store: %s: no segment named %q", man.ID(), name)
}

// Generations lists the restore fallback chain for ref — Store.Generations
// over the fleet's manifest union.
func (f *Fleet) Generations(ref string) ([]Manifest, []SkippedCheckpoint, error) {
	job, ceiling := ref, uint64(1<<63)
	if j, seqStr, ok := strings.Cut(ref, "@"); ok {
		seq, err := parseSeq(ref, seqStr)
		if err != nil {
			return nil, nil, err
		}
		job, ceiling = j, seq
	}
	seqs := f.jobSeqs(job)
	var mans []Manifest
	var skipped []SkippedCheckpoint
	for i := len(seqs) - 1; i >= 0; i-- {
		if seqs[i] > ceiling {
			continue
		}
		m, err := f.readManifestFleet(job, seqs[i])
		if err != nil {
			skipped = append(skipped, SkippedCheckpoint{ID: manifestID(job, seqs[i]), Seq: seqs[i], Reason: err.Error()})
			continue
		}
		mans = append(mans, m)
	}
	if len(mans) == 0 && len(skipped) == 0 {
		return nil, nil, fmt.Errorf("store: job %q has no checkpoints", job)
	}
	return mans, skipped, nil
}

// GetNewestRestorable walks ref's generation chain newest-first — the
// same typed degraded-restore contract as Store.GetNewestRestorable, so
// core and mpi restores are backend-agnostic.
func (f *Fleet) GetNewestRestorable(clock *vtime.Clock, ref string, validate func(payload []byte, man Manifest) error) ([]byte, Manifest, *DegradedRestore, error) {
	mans, skipped, err := f.Generations(ref)
	if err != nil {
		return nil, Manifest{}, nil, err
	}
	tried := append([]SkippedCheckpoint(nil), skipped...)
	for _, m := range mans {
		payload, gerr := f.assemble(clock, m)
		if gerr != nil {
			tried = append(tried, SkippedCheckpoint{ID: m.ID(), Seq: m.Seq, Reason: gerr.Error()})
			continue
		}
		if validate != nil {
			if verr := validate(payload, m); verr != nil {
				tried = append(tried, SkippedCheckpoint{ID: m.ID(), Seq: m.Seq, Reason: "validate: " + verr.Error()})
				continue
			}
		}
		var newer []SkippedCheckpoint
		for _, t := range tried {
			if t.Seq > m.Seq {
				newer = append(newer, t)
			}
		}
		sort.Slice(newer, func(i, j int) bool { return newer[i].Seq > newer[j].Seq })
		if len(newer) == 0 {
			return payload, m, nil, nil
		}
		return payload, m, &DegradedRestore{Requested: ref, Restored: m.ID(), Skipped: newer}, nil
	}
	sort.Slice(tried, func(i, j int) bool { return tried[i].Seq > tried[j].Seq })
	deg := &DegradedRestore{Requested: ref, Skipped: tried}
	return nil, Manifest{}, deg, deg
}

// Manifests lists every resolvable manifest across the fleet, ordered by
// job then seq, plus one issue per manifest no alive node can decode.
func (f *Fleet) Manifests() ([]Manifest, []ManifestIssue) {
	type key struct {
		Job string
		Seq uint64
	}
	seen := map[key]bool{}
	var keys []key
	for _, name := range f.names {
		n := f.nodes[name]
		if !n.alive() {
			continue
		}
		for _, mf := range n.st.listManifestFiles() {
			k := key{mf.Job, mf.Seq}
			if !seen[k] {
				seen[k] = true
				keys = append(keys, k)
			}
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Job != keys[j].Job {
			return keys[i].Job < keys[j].Job
		}
		return keys[i].Seq < keys[j].Seq
	})
	var out []Manifest
	var issues []ManifestIssue
	for _, k := range keys {
		m, err := f.readManifestFleet(k.Job, k.Seq)
		if err != nil {
			issues = append(issues, ManifestIssue{Job: k.Job, Seq: k.Seq, Err: err})
			continue
		}
		out = append(out, m)
	}
	return out, issues
}

// Jobs lists the jobs with at least one checkpoint anywhere in the fleet.
func (f *Fleet) Jobs() []string {
	seen := map[string]bool{}
	for _, name := range f.names {
		n := f.nodes[name]
		if !n.alive() {
			continue
		}
		for _, j := range n.st.Jobs() {
			seen[j] = true
		}
	}
	out := make([]string, 0, len(seen))
	for j := range seen {
		out = append(out, j)
	}
	sort.Strings(out)
	return out
}

// TotalStoredBytes sums the physical occupancy of every node — shards,
// parity, mirrored manifests, quarantine. This is the number the
// durability-per-byte comparison against replication uses.
func (f *Fleet) TotalStoredBytes() int64 {
	var n int64
	for _, name := range f.names {
		n += f.nodes[name].st.TotalStoredBytes()
	}
	return n
}

// parseSeq parses the sequence half of a "job@seq" ref.
func parseSeq(ref, seqStr string) (uint64, error) {
	seq, err := strconv.ParseUint(seqStr, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("store: bad manifest ref %q: %w", ref, err)
	}
	return seq, nil
}
