package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/gob"
	"encoding/hex"
	"fmt"

	"checl/internal/vtime"
)

// manifestVersion is the on-disk manifest format version.
const manifestVersion = 1

// manifestMagic frames every stored manifest so corruption is detected at
// decode time rather than surfacing as a gob error.
var manifestMagic = []byte("CHECLMAN")

// ChunkRef names one chunk of a checkpoint payload.
type ChunkRef struct {
	Sum    string // SHA-256 of the uncompressed chunk, hex
	Size   int64  // uncompressed length
	Stored int64  // stored (possibly compressed) length, including codec tag
}

// Manifest describes one checkpoint in the store: which chunks
// reconstruct it, in order, plus integrity and lineage metadata.
type Manifest struct {
	Version   int
	Job       string // job identity; dedup keys chunks globally, retention groups by job
	Seq       uint64 // 1-based checkpoint number within the job
	Parent    string // ID of the previous checkpoint of this job, "" for the first
	Chunks    []ChunkRef
	Size      int64  // total payload bytes
	Digest    string // SHA-256 of the whole payload, hex
	CreatedAt vtime.Time
}

// ID names the manifest within the store ("job@seq").
func (m Manifest) ID() string { return manifestID(m.Job, m.Seq) }

func manifestID(job string, seq uint64) string { return fmt.Sprintf("%s@%d", job, seq) }

// encodeManifest frames a gob-encoded manifest with magic + checksum.
func encodeManifest(m Manifest) ([]byte, error) {
	var body bytes.Buffer
	if err := gob.NewEncoder(&body).Encode(m); err != nil {
		return nil, fmt.Errorf("store: encoding manifest %s: %w", m.ID(), err)
	}
	sum := sha256.Sum256(body.Bytes())
	out := make([]byte, 0, len(manifestMagic)+len(sum)+body.Len())
	out = append(out, manifestMagic...)
	out = append(out, sum[:]...)
	out = append(out, body.Bytes()...)
	return out, nil
}

// decodeManifest validates the frame and parses the manifest.
func decodeManifest(data []byte) (Manifest, error) {
	if len(data) < len(manifestMagic)+sha256.Size {
		return Manifest{}, fmt.Errorf("store: manifest truncated (%d bytes)", len(data))
	}
	if !bytes.Equal(data[:len(manifestMagic)], manifestMagic) {
		return Manifest{}, fmt.Errorf("store: not a manifest (bad magic)")
	}
	want := data[len(manifestMagic) : len(manifestMagic)+sha256.Size]
	body := data[len(manifestMagic)+sha256.Size:]
	got := sha256.Sum256(body)
	if !bytes.Equal(want, got[:]) {
		return Manifest{}, fmt.Errorf("store: manifest checksum mismatch (want %s, got %s)",
			hex.EncodeToString(want), hex.EncodeToString(got[:]))
	}
	var m Manifest
	if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&m); err != nil {
		return Manifest{}, fmt.Errorf("store: decoding manifest: %w", err)
	}
	if m.Version != manifestVersion {
		return Manifest{}, fmt.Errorf("store: unsupported manifest version %d (have %d)", m.Version, manifestVersion)
	}
	return m, nil
}
