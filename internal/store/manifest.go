package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/gob"
	"encoding/hex"
	"fmt"

	"checl/internal/vtime"
)

// manifestVersion is the on-disk manifest format version.
const manifestVersion = 1

// manifestMagic frames every stored manifest so corruption is detected at
// decode time rather than surfacing as a gob error.
var manifestMagic = []byte("CHECLMAN")

// ChunkRef names one chunk of a checkpoint payload.
type ChunkRef struct {
	Sum    string // SHA-256 of the uncompressed chunk, hex
	Size   int64  // uncompressed length
	Stored int64  // stored (possibly compressed) length, including codec tag
}

// SegmentRef records how a named region of the payload maps onto the
// manifest's chunk list. Segments partition Chunks in order: the first
// segment owns the first Chunks entries, and so on. Clean segments were
// not re-chunked; their refs were copied from the parent manifest.
// Legacy manifests have no segments (nil Segments gob-encodes exactly as
// before), in which case the whole payload is one anonymous dirty region.
type SegmentRef struct {
	Name   string
	Size   int64 // payload bytes covered by this segment
	Chunks int   // number of consecutive ChunkRefs belonging to it
	Clean  bool  // chunk refs inherited from the parent, payload unchanged
}

// Manifest describes one checkpoint in the store: which chunks
// reconstruct it, in order, plus integrity and lineage metadata.
type Manifest struct {
	Version   int
	Job       string // job identity; dedup keys chunks globally, retention groups by job
	Seq       uint64 // 1-based checkpoint number within the job
	Parent    string // ID of the previous checkpoint of this job, "" for the first
	Chunks    []ChunkRef
	Segments  []SegmentRef // optional named-region map over Chunks; nil for legacy images
	Size      int64        // total payload bytes
	Digest    string       // SHA-256 of the whole payload, hex
	CreatedAt vtime.Time
}

// DeltaSize reports how many payload bytes of the manifest are new
// relative to its parent: the total size of dirty segments. For legacy
// manifests without segment info it falls back to comparing chunk sets —
// the bytes of chunks not present in parent. A nil/zero parent makes the
// whole payload the delta.
func (m Manifest) DeltaSize(parent *Manifest) int64 {
	if parent == nil || parent.Job == "" {
		return m.Size
	}
	if len(m.Segments) > 0 {
		var dirty int64
		for _, s := range m.Segments {
			if !s.Clean {
				dirty += s.Size
			}
		}
		return dirty
	}
	inParent := make(map[string]bool, len(parent.Chunks))
	for _, c := range parent.Chunks {
		inParent[c.Sum] = true
	}
	var delta int64
	for _, c := range m.Chunks {
		if !inParent[c.Sum] {
			delta += c.Size
		}
	}
	return delta
}

// ID names the manifest within the store ("job@seq").
func (m Manifest) ID() string { return manifestID(m.Job, m.Seq) }

func manifestID(job string, seq uint64) string { return fmt.Sprintf("%s@%d", job, seq) }

// encodeManifest frames a gob-encoded manifest with magic + checksum.
func encodeManifest(m Manifest) ([]byte, error) {
	var body bytes.Buffer
	if err := gob.NewEncoder(&body).Encode(m); err != nil {
		return nil, fmt.Errorf("store: encoding manifest %s: %w", m.ID(), err)
	}
	sum := sha256.Sum256(body.Bytes())
	out := make([]byte, 0, len(manifestMagic)+len(sum)+body.Len())
	out = append(out, manifestMagic...)
	out = append(out, sum[:]...)
	out = append(out, body.Bytes()...)
	return out, nil
}

// decodeManifest validates the frame and parses the manifest.
func decodeManifest(data []byte) (Manifest, error) {
	if len(data) < len(manifestMagic)+sha256.Size {
		return Manifest{}, fmt.Errorf("store: manifest truncated (%d bytes)", len(data))
	}
	if !bytes.Equal(data[:len(manifestMagic)], manifestMagic) {
		return Manifest{}, fmt.Errorf("store: not a manifest (bad magic)")
	}
	want := data[len(manifestMagic) : len(manifestMagic)+sha256.Size]
	body := data[len(manifestMagic)+sha256.Size:]
	got := sha256.Sum256(body)
	if !bytes.Equal(want, got[:]) {
		return Manifest{}, fmt.Errorf("store: manifest checksum mismatch (want %s, got %s)",
			hex.EncodeToString(want), hex.EncodeToString(got[:]))
	}
	var m Manifest
	if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&m); err != nil {
		return Manifest{}, fmt.Errorf("store: decoding manifest: %w", err)
	}
	if m.Version != manifestVersion {
		return Manifest{}, fmt.Errorf("store: unsupported manifest version %d (have %d)", m.Version, manifestVersion)
	}
	return m, nil
}
