package store

// Systematic Reed-Solomon erasure coding over GF(256) for the store
// fleet. The codec is real — parity shards are genuine GF(256) linear
// combinations of the data bytes, so any k of the k+m shards reconstruct
// the chunk bit-for-bit — while its CPU time is charged through
// hw.CodingModel like every other modelled cost.
//
// The generator matrix is a (k+m)×k Vandermonde matrix put in systematic
// form: multiply by the inverse of its top k×k block so the top k rows
// become the identity (data shards are plain slices of the chunk, no
// decode on the healthy path) and the bottom m rows become the parity
// rows. Any k rows of the result are invertible — any k rows of a
// Vandermonde matrix over distinct points are, and right-multiplying by
// one fixed invertible matrix preserves that — which is exactly the
// "any m losses survivable" property the fleet sells.

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
)

// GF(256) with the AES polynomial x^8+x^4+x^3+x+1 (0x11d reduced),
// table-driven: exp is doubled so mul can skip the mod-255 fold.
var (
	gfExp [512]byte
	gfLog [256]int
)

func init() {
	x := 1
	for i := 0; i < 255; i++ {
		gfExp[i] = byte(x)
		gfLog[x] = i
		x <<= 1
		if x&0x100 != 0 {
			x ^= 0x11d
		}
	}
	for i := 255; i < 512; i++ {
		gfExp[i] = gfExp[i-255]
	}
}

func gfMul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return gfExp[gfLog[a]+gfLog[b]]
}

func gfInv(a byte) byte {
	return gfExp[255-gfLog[a]]
}

// Coder encodes chunks into k data + m parity shards and reconstructs
// them from any k survivors. Stateless beyond the precomputed generator
// matrix; safe for concurrent use.
type Coder struct {
	k, m int
	// gen is the systematic (k+m)×k generator: rows 0..k-1 identity,
	// rows k..k+m-1 parity coefficients.
	gen [][]byte
}

// NewCoder builds a coder for k data and m parity shards. k+m is capped
// at 256 by the field size.
func NewCoder(k, m int) (*Coder, error) {
	if k < 1 || m < 1 {
		return nil, fmt.Errorf("coder: need k >= 1 and m >= 1, got k=%d m=%d", k, m)
	}
	if k+m > 256 {
		return nil, fmt.Errorf("coder: k+m = %d exceeds GF(256) limit of 256 shards", k+m)
	}
	// Vandermonde rows over the distinct points 0..k+m-1: row i is
	// [i^0, i^1, ..., i^(k-1)].
	v := make([][]byte, k+m)
	for i := range v {
		v[i] = make([]byte, k)
		acc := byte(1)
		for j := 0; j < k; j++ {
			v[i][j] = acc
			acc = gfMul(acc, byte(i))
		}
	}
	top := make([][]byte, k)
	for i := range top {
		top[i] = append([]byte(nil), v[i]...)
	}
	inv, err := matInvert(top)
	if err != nil {
		return nil, fmt.Errorf("coder: vandermonde top block not invertible: %w", err)
	}
	gen := matMul(v, inv)
	return &Coder{k: k, m: m, gen: gen}, nil
}

// K reports the data-shard count.
func (c *Coder) K() int { return c.k }

// M reports the parity-shard count.
func (c *Coder) M() int { return c.m }

// ShardSize reports the per-shard byte count for a chunk of n bytes: the
// chunk is zero-padded up to a multiple of k before slicing.
func (c *Coder) ShardSize(n int) int {
	return (n + c.k - 1) / c.k
}

// Encode splits data into k data shards (zero-padded) and computes m
// parity shards. The returned slice has k+m entries of equal length;
// index order matches the generator rows, so shards[0..k-1] concatenated
// and trimmed to len(data) are the original bytes.
func (c *Coder) Encode(data []byte) [][]byte {
	size := c.ShardSize(len(data))
	shards := make([][]byte, c.k+c.m)
	for i := 0; i < c.k; i++ {
		shard := make([]byte, size)
		copy(shard, data[min(i*size, len(data)):min((i+1)*size, len(data))])
		shards[i] = shard
	}
	for p := 0; p < c.m; p++ {
		row := c.gen[c.k+p]
		shard := make([]byte, size)
		for j := 0; j < c.k; j++ {
			coef := row[j]
			if coef == 0 {
				continue
			}
			src := shards[j]
			for b := range shard {
				shard[b] ^= gfMul(coef, src[b])
			}
		}
		shards[c.k+p] = shard
	}
	return shards
}

// Reconstruct rebuilds the full k+m shard set from any k survivors.
// have maps shard index -> shard bytes (all the same length); it must
// hold at least k entries. The survivors are used as-is — callers verify
// per-shard checksums first so a rotten shard is treated as missing, not
// trusted into the solve.
func (c *Coder) Reconstruct(have map[int][]byte) ([][]byte, error) {
	if len(have) < c.k {
		return nil, fmt.Errorf("coder: %d shards survive, need %d of %d", len(have), c.k, c.k+c.m)
	}
	// Pick the k lowest surviving indices: deterministic, and it favours
	// data shards so the solve degenerates to identity when none are lost.
	rows := make([]int, 0, c.k)
	for i := 0; i < c.k+c.m && len(rows) < c.k; i++ {
		if _, ok := have[i]; ok {
			rows = append(rows, i)
		}
	}
	size := len(have[rows[0]])
	sub := make([][]byte, c.k)
	for i, r := range rows {
		if len(have[r]) != size {
			return nil, fmt.Errorf("coder: shard %d length %d, want %d", r, len(have[r]), size)
		}
		sub[i] = append([]byte(nil), c.gen[r]...)
	}
	inv, err := matInvert(sub)
	if err != nil {
		return nil, fmt.Errorf("coder: surviving rows not invertible: %w", err)
	}
	// data = inv · survivors, then re-encode the parity rows.
	out := make([][]byte, c.k+c.m)
	for i := 0; i < c.k; i++ {
		if shard, ok := have[i]; ok {
			out[i] = append([]byte(nil), shard...)
			continue
		}
		shard := make([]byte, size)
		for j, r := range rows {
			coef := inv[i][j]
			if coef == 0 {
				continue
			}
			src := have[r]
			for b := range shard {
				shard[b] ^= gfMul(coef, src[b])
			}
		}
		out[i] = shard
	}
	for p := 0; p < c.m; p++ {
		if shard, ok := have[c.k+p]; ok {
			out[c.k+p] = append([]byte(nil), shard...)
			continue
		}
		row := c.gen[c.k+p]
		shard := make([]byte, size)
		for j := 0; j < c.k; j++ {
			coef := row[j]
			if coef == 0 {
				continue
			}
			src := out[j]
			for b := range shard {
				shard[b] ^= gfMul(coef, src[b])
			}
		}
		out[c.k+p] = shard
	}
	return out, nil
}

// Join concatenates the k data shards and trims to n bytes — the inverse
// of Encode's split for a chunk of original length n.
func (c *Coder) Join(shards [][]byte, n int) []byte {
	out := make([]byte, 0, n)
	for i := 0; i < c.k && len(out) < n; i++ {
		out = append(out, shards[i]...)
	}
	return out[:n]
}

// matMul multiplies a (r×n) by b (n×c) over GF(256).
func matMul(a, b [][]byte) [][]byte {
	rows, n, cols := len(a), len(b), len(b[0])
	out := make([][]byte, rows)
	for i := range out {
		out[i] = make([]byte, cols)
		for j := 0; j < cols; j++ {
			var s byte
			for t := 0; t < n; t++ {
				s ^= gfMul(a[i][t], b[t][j])
			}
			out[i][j] = s
		}
	}
	return out
}

// matInvert inverts a square matrix over GF(256) by Gauss-Jordan
// elimination. The input rows are consumed.
func matInvert(m [][]byte) ([][]byte, error) {
	n := len(m)
	inv := make([][]byte, n)
	for i := range inv {
		inv[i] = make([]byte, n)
		inv[i][i] = 1
	}
	for col := 0; col < n; col++ {
		pivot := -1
		for r := col; r < n; r++ {
			if m[r][col] != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			return nil, fmt.Errorf("singular at column %d", col)
		}
		m[col], m[pivot] = m[pivot], m[col]
		inv[col], inv[pivot] = inv[pivot], inv[col]
		if d := m[col][col]; d != 1 {
			di := gfInv(d)
			for j := 0; j < n; j++ {
				m[col][j] = gfMul(m[col][j], di)
				inv[col][j] = gfMul(inv[col][j], di)
			}
		}
		for r := 0; r < n; r++ {
			if r == col || m[r][col] == 0 {
				continue
			}
			coef := m[r][col]
			for j := 0; j < n; j++ {
				m[r][j] ^= gfMul(coef, m[col][j])
				inv[r][j] ^= gfMul(coef, inv[col][j])
			}
		}
	}
	return inv, nil
}

// Shard framing: every shard is persisted wrapped in a small header so a
// read can tell a healthy shard from a rotten or torn one and — crucially
// — WHICH shard it holds. Reed-Solomon alone detects that something is
// wrong; the per-shard digest localises it, turning silent corruption
// into a known erasure the solve can route around.

const (
	shardMagic   = "CHECLSHD"
	shardVersion = 1
	// shardHeaderSize: magic(8) + version(1) + idx(1) + k(1) + m(1) +
	// payload length(4) + original blob length(4) + sha256(32).
	shardHeaderSize = 8 + 4 + 4 + 4 + sha256.Size
)

// encodeShard frames one shard payload for persistence. origLen is the
// pre-split (compressed chunk blob) length: every shard records it so a
// read can trim the k joined data shards back to the original bytes
// without consulting anything but the shards themselves. The digest
// covers the header fields too — a flipped bit anywhere in the frame
// (geometry, lengths, payload) reads as an erasure, never as a
// plausible shard with a wrong trim length.
func encodeShard(idx, k, m, origLen int, payload []byte) []byte {
	out := make([]byte, shardHeaderSize+len(payload))
	copy(out, shardMagic)
	out[8] = shardVersion
	out[9] = byte(idx)
	out[10] = byte(k)
	out[11] = byte(m)
	binary.BigEndian.PutUint32(out[12:], uint32(len(payload)))
	binary.BigEndian.PutUint32(out[16:], uint32(origLen))
	copy(out[shardHeaderSize:], payload)
	sum := shardDigest(out)
	copy(out[20:], sum[:])
	return out
}

// shardDigest hashes the covered portion of a frame: the header fields
// after the magic (version, geometry, lengths) plus the payload, with
// the digest field itself excluded.
func shardDigest(frame []byte) [sha256.Size]byte {
	h := sha256.New()
	h.Write(frame[8:20])
	h.Write(frame[shardHeaderSize:])
	var out [sha256.Size]byte
	h.Sum(out[:0])
	return out
}

// decodeShard verifies a framed shard and returns its payload and
// geometry. Any mismatch — magic, version, truncation, digest — is an
// error: the shard is an erasure.
func decodeShard(blob []byte) (idx, k, m, origLen int, payload []byte, err error) {
	if len(blob) < shardHeaderSize {
		return 0, 0, 0, 0, nil, fmt.Errorf("shard: %d bytes, shorter than header", len(blob))
	}
	if string(blob[:8]) != shardMagic {
		return 0, 0, 0, 0, nil, fmt.Errorf("shard: bad magic")
	}
	if blob[8] != shardVersion {
		return 0, 0, 0, 0, nil, fmt.Errorf("shard: unsupported version %d", blob[8])
	}
	idx, k, m = int(blob[9]), int(blob[10]), int(blob[11])
	n := binary.BigEndian.Uint32(blob[12:])
	origLen = int(binary.BigEndian.Uint32(blob[16:]))
	if int(n) != len(blob)-shardHeaderSize {
		return 0, 0, 0, 0, nil, fmt.Errorf("shard: payload length %d, frame holds %d", n, len(blob)-shardHeaderSize)
	}
	payload = blob[shardHeaderSize:]
	sum := shardDigest(blob)
	if string(sum[:]) != string(blob[20:20+sha256.Size]) {
		return 0, 0, 0, 0, nil, fmt.Errorf("shard: digest mismatch")
	}
	return idx, k, m, origLen, payload, nil
}
