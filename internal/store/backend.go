package store

// Backend is the checkpoint-store surface core, cpr and mpi program
// against: everything a checkpoint writer and a restore walk need,
// implemented by both the single-filesystem *Store and the
// erasure-coded *Fleet. Durability machinery stays on the concrete
// types — replication, scrub, rebuild and GC differ too much between
// one disk and a shard fleet to share a signature.

import "checl/internal/vtime"

// Backend is implemented by *Store and *Fleet.
type Backend interface {
	// Name identifies the backend in checkpoint records and tooling
	// (a Store reports its backing filesystem's name).
	Name() string
	Put(clock *vtime.Clock, job string, payload []byte) (Manifest, PutStats, error)
	PutSegmented(clock *vtime.Clock, job string, payload []byte, segs []Segment) (Manifest, PutStats, error)
	Get(clock *vtime.Clock, ref string) ([]byte, Manifest, error)
	GetSegment(clock *vtime.Clock, ref, name string) ([]byte, Manifest, error)
	GetNewestRestorable(clock *vtime.Clock, ref string, validate func(payload []byte, man Manifest) error) ([]byte, Manifest, *DegradedRestore, error)
	Resolve(ref string) (Manifest, error)
	Latest(job string) (Manifest, bool, error)
	Generations(ref string) ([]Manifest, []SkippedCheckpoint, error)
	Jobs() []string
	TotalStoredBytes() int64
}

var (
	_ Backend = (*Store)(nil)
	_ Backend = (*Fleet)(nil)
)
