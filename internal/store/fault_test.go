package store

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"checl/internal/hw"
	"checl/internal/proc"
	"checl/internal/vtime"
)

// faultStore builds a store whose backing FS runs under inj.
func faultStore(inj *proc.FaultInjector) *Store {
	fs := proc.NewFS("primary", hw.TableISpec().LocalDisk, proc.WithFault(inj))
	return New(fs, Config{})
}

// corruptFile flips one byte of path in place, bypassing any injector.
func corruptFile(t *testing.T, fs *proc.FS, path string) {
	t.Helper()
	clock := vtime.NewClock()
	data, err := fs.ReadFile(clock, path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := fs.WriteFile(clock, path, data); err != nil {
		t.Fatal(err)
	}
}

// uniqueVersions builds checkpoint payloads that share a common base but
// each own a unique tail, so every generation references at least one
// chunk no other generation does.
func uniqueVersions(n int, base, tail int) [][]byte {
	out := make([][]byte, n)
	common := payload(40, base)
	for i := range out {
		v := append([]byte(nil), common...)
		out[i] = append(v, payload(int64(1000+i), tail)...)
	}
	return out
}

func TestDurablePutUnderTransientFaults(t *testing.T) {
	// A fault on every 5th disk operation — torn, lost, rot, EIO — must be
	// absorbed by verified writes and retries: Put succeeds and the stored
	// checkpoint is bit-identical.
	inj := proc.NewFaultInjector(proc.DiskFaultPlan{Seed: 1, EveryN: 5})
	s := faultStore(inj)
	clock := vtime.NewClock()
	data := payload(20, 512<<10)

	man, _, err := s.Put(clock, "job", data)
	if err != nil {
		t.Fatalf("put under faults: %v (after %d ops, %d injected)", err, inj.Ops(), inj.Injected())
	}
	if inj.Injected() == 0 {
		t.Fatal("no faults were injected; the test exercised nothing")
	}

	inj.Suspend()
	got, _, err := s.Get(clock, man.ID())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("checkpoint written under faults is not bit-identical")
	}
	rep, err := s.Fsck(clock)
	if err != nil || !rep.OK() {
		t.Fatalf("fsck after faulty put: %v %v", err, rep.Errors)
	}
}

func TestFailedPutRecoverReclaimsCapacity(t *testing.T) {
	// Regression: a Put that dies after staging some chunks must not leak
	// their capacity forever. Recover deletes the staged orphans and
	// returns the filesystem to its pre-Put usage.
	inj := proc.NewFaultInjector(proc.DiskFaultPlan{
		Seed: 2, EveryN: 1, SkipFirst: 4, Kinds: []proc.DiskFaultKind{proc.DiskFaultEIO},
	})
	s := faultStore(inj)
	clock := vtime.NewClock()

	_, _, err := s.Put(clock, "job", payload(21, 256<<10))
	if err == nil {
		t.Fatal("put should have failed under an unlimited EIO storm")
	}
	inj.Suspend()
	leaked := s.fs.TotalBytes()
	if leaked == 0 {
		t.Fatal("the failed put staged nothing; the leak scenario did not occur")
	}

	rst, err := s.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rst.StagedFiles == 0 || rst.StagedBytes == 0 {
		t.Fatalf("recover reclaimed nothing: %+v", rst)
	}
	if after := s.fs.TotalBytes(); after != 0 {
		t.Errorf("capacity leak: %d bytes still used after Recover (was %d)", after, leaked)
	}
	rep, err := s.Fsck(clock)
	if err != nil || !rep.OK() {
		t.Fatalf("fsck after recover: %v %v", err, rep.Errors)
	}

	// The store is fully usable again.
	data := payload(22, 256<<10)
	man, _, err := s.Put(clock, "job", data)
	if err != nil {
		t.Fatal(err)
	}
	if man.Seq != 1 {
		t.Errorf("failed put consumed a sequence number: next put got seq %d", man.Seq)
	}
	got, _, err := s.Get(clock, man.ID())
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("roundtrip after recover: %v", err)
	}
}

func TestRecoverQuarantinesTornManifest(t *testing.T) {
	s := New(testFS(), Config{})
	clock := vtime.NewClock()
	if _, _, err := s.Put(clock, "job", payload(23, 128<<10)); err != nil {
		t.Fatal(err)
	}
	corruptFile(t, s.fs, s.manifestPath("job", 1))

	mans, issues := s.Manifests()
	if len(mans) != 0 || len(issues) != 1 || issues[0].ID() != "job@1" {
		t.Fatalf("manifests = %d good, issues = %v", len(mans), issues)
	}

	rst, err := s.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rst.ManifestsQuarantined != 1 {
		t.Fatalf("recover stats = %+v", rst)
	}
	// The torn frame is out of the way: no issues remain, the orphaned
	// chunks were reclaimed, and fsck is clean.
	if _, issues := s.Manifests(); len(issues) != 0 {
		t.Errorf("issues after recover: %v", issues)
	}
	if rst.OrphanChunks == 0 {
		t.Error("the quarantined manifest's chunks were not reclaimed")
	}
	rep, err := s.Fsck(clock)
	if err != nil || !rep.OK() {
		t.Fatalf("fsck after recover: %v %v", err, rep.Errors)
	}
	if !s.fs.Exists(s.quarantinePrefix() + "job-00000001") {
		t.Error("quarantined frame not preserved for post-mortem")
	}
}

func TestGCRefusesUnreadableManifests(t *testing.T) {
	s := New(testFS(), Config{})
	clock := vtime.NewClock()
	for _, v := range uniqueVersions(3, 256<<10, 32<<10) {
		if _, _, err := s.Put(clock, "job", v); err != nil {
			t.Fatal(err)
		}
	}
	corruptFile(t, s.fs, s.manifestPath("job", 1))

	_, err := s.GC(1)
	if err == nil {
		t.Fatal("gc ran with an unreadable manifest in the store")
	}
	if !strings.Contains(err.Error(), "Recover or Scrub") {
		t.Errorf("gc error does not point at the fix: %v", err)
	}

	// After Recover the torn frame is quarantined and GC proceeds.
	if _, err := s.Recover(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.GC(1); err != nil {
		t.Fatalf("gc after recover: %v", err)
	}
}

func TestInterruptedGCIdempotentRerun(t *testing.T) {
	inj := proc.NewFaultInjector(proc.DiskFaultPlan{
		Seed: 3, EveryN: 1, Max: 3, Kinds: []proc.DiskFaultKind{proc.DiskFaultEIO},
	})
	fs := proc.NewFS("primary", hw.TableISpec().LocalDisk)
	s := New(fs, Config{})
	clock := vtime.NewClock()
	versions := uniqueVersions(4, 512<<10, 64<<10)
	for _, v := range versions {
		if _, _, err := s.Put(clock, "job", v); err != nil {
			t.Fatal(err)
		}
	}

	// Three consecutive EIOs defeat the retry budget: the first remove GC
	// attempts fails hard and GC aborts partway.
	fs.SetFault(inj)
	if _, err := s.GC(2); err == nil {
		t.Fatal("gc should have failed under a 3-deep EIO burst")
	}

	// The injector is exhausted (Max=3); re-running the same GC finishes
	// the job, and a third run is a no-op.
	st, err := s.GC(2)
	if err != nil {
		t.Fatalf("gc rerun: %v", err)
	}
	if st.ManifestsKept != 2 {
		t.Fatalf("gc rerun stats = %+v", st)
	}
	st2, err := s.GC(2)
	if err != nil {
		t.Fatal(err)
	}
	if st2.ManifestsDropped != 0 || st2.ChunksDropped != 0 {
		t.Errorf("third gc was not a no-op: %+v", st2)
	}

	rep, err := s.Fsck(clock)
	if err != nil || !rep.OK() {
		t.Fatalf("fsck after interrupted gc: %v %v", err, rep.Errors)
	}
	for seq := 3; seq <= 4; seq++ {
		got, _, err := s.Get(clock, manifestID("job", uint64(seq)))
		if err != nil || !bytes.Equal(got, versions[seq-1]) {
			t.Fatalf("kept generation %d damaged by interrupted gc: %v", seq, err)
		}
	}
}

func TestInterruptedReplicateIdempotentRerun(t *testing.T) {
	src := New(testFS(), Config{})
	inj := proc.NewFaultInjector(proc.DiskFaultPlan{
		Seed: 4, EveryN: 1, SkipFirst: 6, Max: 3, Kinds: []proc.DiskFaultKind{proc.DiskFaultEIO},
	})
	dstFS := proc.NewFS("replica", hw.TableISpec().LocalDisk, proc.WithFault(inj))
	dst := New(dstFS, Config{})
	clock := vtime.NewClock()
	data := payload(24, 512<<10)
	if _, _, err := src.Put(clock, "job", data); err != nil {
		t.Fatal(err)
	}

	if _, _, err := src.Replicate(clock, "job", dst, hw.GigE); err == nil {
		t.Fatal("replicate should have failed under a 3-deep EIO burst")
	}
	// The destination has only staged leftovers: no manifest published.
	if _, ok, _ := dst.Latest("job"); ok {
		t.Fatal("interrupted replication published a manifest")
	}

	// Injector exhausted; the rerun completes and is idempotent after.
	man, _, err := src.Replicate(clock, "job", dst, hw.GigE)
	if err != nil {
		t.Fatalf("replicate rerun: %v", err)
	}
	if _, err := dst.Recover(); err != nil {
		t.Fatal(err)
	}
	got, _, err := dst.Get(clock, man.ID())
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("replica roundtrip after rerun: %v", err)
	}
	rep, err := dst.Fsck(clock)
	if err != nil || !rep.OK() {
		t.Fatalf("replica fsck: %v %v", err, rep.Errors)
	}
	_, st, err := src.Replicate(clock, "job", dst, hw.GigE)
	if err != nil || st.ChunksCopied != 0 {
		t.Errorf("third replicate not a no-op: %+v %v", st, err)
	}
}

func TestGetHealsFromReplica(t *testing.T) {
	s := New(testFS(), Config{})
	replica := New(proc.NewFS("replica", hw.TableISpec().LocalDisk), Config{})
	s.AttachReplica(replica, hw.GigE)
	clock := vtime.NewClock()
	data := payload(25, 512<<10)
	man, _, err := s.Put(clock, "job", data)
	if err != nil {
		t.Fatal(err)
	}

	// Damage the primary: one chunk corrupted at rest, another lost.
	corruptFile(t, s.fs, s.chunkPath(man.Chunks[0].Sum))
	victim := man.Chunks[len(man.Chunks)-1].Sum
	if victim == man.Chunks[0].Sum {
		t.Fatal("test needs two distinct chunks")
	}
	if err := s.fs.Remove(s.chunkPath(victim)); err != nil {
		t.Fatal(err)
	}

	got, _, err := s.Get(clock, man.ID())
	if err != nil {
		t.Fatalf("healing get: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("healed payload is not bit-identical")
	}
	h := s.Heals()
	if h.ChunksHealed < 2 || h.BytesHealed == 0 {
		t.Errorf("heal stats = %+v, want >= 2 chunks healed", h)
	}
	// Healing wrote the good copies back: the primary is whole again.
	rep, err := s.Fsck(clock)
	if err != nil || !rep.OK() {
		t.Fatalf("fsck after healing get: %v %v", err, rep.Errors)
	}
}

func TestGetWithoutReplicasFailsLoud(t *testing.T) {
	s := New(testFS(), Config{})
	clock := vtime.NewClock()
	man, _, err := s.Put(clock, "job", payload(26, 256<<10))
	if err != nil {
		t.Fatal(err)
	}
	corruptFile(t, s.fs, s.chunkPath(man.Chunks[0].Sum))

	_, _, err = s.Get(clock, man.ID())
	if err == nil {
		t.Fatal("get of a corrupt checkpoint with no replicas must fail, not return a wrong payload")
	}
	if !strings.Contains(err.Error(), "no replica could supply a good copy") {
		t.Errorf("error does not explain the failed heal: %v", err)
	}
}

func TestScrubHealsDamagedStore(t *testing.T) {
	s := New(testFS(), Config{})
	replica := New(proc.NewFS("replica", hw.TableISpec().LocalDisk), Config{})
	s.AttachReplica(replica, hw.GigE)
	clock := vtime.NewClock()
	versions := uniqueVersions(2, 256<<10, 64<<10)
	var mans []Manifest
	for _, v := range versions {
		m, _, err := s.Put(clock, "job", v)
		if err != nil {
			t.Fatal(err)
		}
		mans = append(mans, m)
	}

	// Damage every failure class at once: a chunk corrupted at rest, a
	// chunk lost, a manifest frame torn, a manifest file lost entirely.
	corruptFile(t, s.fs, s.chunkPath(mans[0].Chunks[0].Sum))
	if err := s.fs.Remove(s.chunkPath(mans[1].Chunks[len(mans[1].Chunks)-1].Sum)); err != nil {
		t.Fatal(err)
	}
	corruptFile(t, s.fs, s.manifestPath("job", 1))
	if err := s.fs.Remove(s.manifestPath("job", 2)); err != nil {
		t.Fatal(err)
	}

	rep, err := s.Scrub(clock)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("scrub left findings: %v", rep.Findings)
	}
	if rep.Healed.ChunksHealed == 0 || rep.Healed.ManifestsHealed < 2 {
		t.Errorf("scrub healed %+v, want chunks and both manifests", rep.Healed)
	}
	for i, m := range mans {
		got, _, err := s.Get(clock, m.ID())
		if err != nil || !bytes.Equal(got, versions[i]) {
			t.Fatalf("generation %s after scrub: %v", m.ID(), err)
		}
	}
	frep, err := s.Fsck(clock)
	if err != nil || !frep.OK() {
		t.Fatalf("fsck after scrub: %v %v", err, frep.Errors)
	}
}

func TestScrubDoesNotResurrectGCdGenerations(t *testing.T) {
	// Replicas may hold generations the primary deliberately retired. A
	// scrub must pull back what the primary *lost*, never what it *dropped*.
	s := New(testFS(), Config{})
	replica := New(proc.NewFS("replica", hw.TableISpec().LocalDisk), Config{})
	s.AttachReplica(replica, hw.GigE)
	clock := vtime.NewClock()
	for _, v := range uniqueVersions(3, 256<<10, 32<<10) {
		if _, _, err := s.Put(clock, "job", v); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.GC(1); err != nil {
		t.Fatal(err)
	}

	rep, err := s.Scrub(clock)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("scrub findings: %v", rep.Findings)
	}
	if mans, _ := s.Manifests(); len(mans) != 1 || mans[0].Seq != 3 {
		t.Fatalf("scrub resurrected retired generations: %d manifests", len(mans))
	}
}

func TestScrubQuarantinesUnhealable(t *testing.T) {
	s := New(testFS(), Config{})
	clock := vtime.NewClock()
	versions := uniqueVersions(3, 256<<10, 64<<10)
	var mans []Manifest
	for _, v := range versions {
		m, _, err := s.Put(clock, "job", v)
		if err != nil {
			t.Fatal(err)
		}
		mans = append(mans, m)
	}

	// No replicas: a torn newest manifest and a rotted unique chunk of the
	// middle generation are unhealable.
	corruptFile(t, s.fs, s.manifestPath("job", 3))
	unique := uniqueChunkOf(t, mans[1], mans[0], mans[2])
	corruptFile(t, s.fs, s.chunkPath(unique))

	rep, err := s.Scrub(clock)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() || len(rep.Quarantined) != 2 {
		t.Fatalf("scrub report = %+v", rep)
	}
	// The surviving generation restores; the quarantined ones are gone
	// loudly, not wrong silently.
	got, _, err := s.Get(clock, "job@1")
	if err != nil || !bytes.Equal(got, versions[0]) {
		t.Fatalf("surviving generation: %v", err)
	}
	if _, _, err := s.Get(clock, "job@2"); err == nil {
		t.Error("quarantined generation still resolvable")
	}
	frep, err := s.Fsck(clock)
	if err != nil || !frep.OK() {
		t.Fatalf("fsck after quarantine: %v %v", err, frep.Errors)
	}
}

// uniqueChunkOf returns a chunk sum m references that none of the others do.
func uniqueChunkOf(t *testing.T, m Manifest, others ...Manifest) string {
	t.Helper()
	shared := map[string]bool{}
	for _, o := range others {
		for _, c := range o.Chunks {
			shared[c.Sum] = true
		}
	}
	for _, c := range m.Chunks {
		if !shared[c.Sum] {
			return c.Sum
		}
	}
	t.Fatal("no unique chunk; enlarge the unique tail")
	return ""
}

func TestGetNewestRestorableWalksParents(t *testing.T) {
	s := New(testFS(), Config{})
	clock := vtime.NewClock()
	versions := uniqueVersions(3, 256<<10, 64<<10)
	var mans []Manifest
	for _, v := range versions {
		m, _, err := s.Put(clock, "job", v)
		if err != nil {
			t.Fatal(err)
		}
		mans = append(mans, m)
	}

	// Newest generation loses a unique chunk; no replicas to heal from.
	unique := uniqueChunkOf(t, mans[2], mans[0], mans[1])
	if err := s.fs.Remove(s.chunkPath(unique)); err != nil {
		t.Fatal(err)
	}

	got, man, deg, err := s.GetNewestRestorable(clock, "job", nil)
	if err != nil {
		t.Fatal(err)
	}
	if man.ID() != "job@2" || !bytes.Equal(got, versions[1]) {
		t.Fatalf("restored %s, want job@2 bit-identical", man.ID())
	}
	if deg == nil || deg.Restored != "job@2" || len(deg.Skipped) != 1 || deg.Skipped[0].ID != "job@3" {
		t.Fatalf("degradation report = %+v", deg)
	}

	// A validate hook that rejects job@2 pushes the walk one generation
	// further back.
	reject := func(data []byte, m Manifest) error {
		if m.Seq == 2 {
			return errors.New("payload fails application validation")
		}
		return nil
	}
	_, man, deg, err = s.GetNewestRestorable(clock, "job", reject)
	if err != nil {
		t.Fatal(err)
	}
	if man.ID() != "job@1" || deg == nil || len(deg.Skipped) != 2 {
		t.Fatalf("restored %s, deg = %+v", man.ID(), deg)
	}

	// Nothing restorable: the typed report IS the error.
	rejectAll := func([]byte, Manifest) error { return errors.New("no") }
	_, _, deg, err = s.GetNewestRestorable(clock, "job", rejectAll)
	if err == nil {
		t.Fatal("total restore failure must be an error")
	}
	var dr *DegradedRestore
	if !errors.As(err, &dr) || dr.Restored != "" || len(dr.Skipped) != 3 {
		t.Fatalf("err = %v (%T), want *DegradedRestore with 3 skips", err, err)
	}
	if deg != dr {
		t.Error("returned report and error disagree")
	}
}

func TestPutWritesThroughToReplicas(t *testing.T) {
	s := New(testFS(), Config{})
	r1 := New(proc.NewFS("replica1", hw.TableISpec().LocalDisk), Config{})
	r2 := New(proc.NewFS("replica2", hw.TableISpec().LocalDisk), Config{})
	s.AttachReplica(r1, hw.GigE)
	s.AttachReplica(r2, hw.GigE)
	clock := vtime.NewClock()
	versions := uniqueVersions(2, 256<<10, 32<<10)

	for _, v := range versions {
		if _, _, err := s.Put(clock, "job", v); err != nil {
			t.Fatal(err)
		}
	}
	// The instant Put returns, every replica serves every generation.
	for _, r := range []*Store{r1, r2} {
		for i, v := range versions {
			got, _, err := r.Get(clock, manifestID("job", uint64(i+1)))
			if err != nil || !bytes.Equal(got, v) {
				t.Fatalf("replica %s generation %d: %v", r.fs.Name(), i+1, err)
			}
		}
		rep, err := r.Fsck(clock)
		if err != nil || !rep.OK() {
			t.Fatalf("replica fsck: %v %v", err, rep.Errors)
		}
	}
}

func TestPutFaultPositionSweep(t *testing.T) {
	// Crash-consistency sweep: aim a burst of three consecutive faults
	// (deep enough to defeat the retry budget) at every operation position
	// of a Put in turn. Whatever the outcome, the store must end in a
	// trustworthy state: either the Put succeeded and the checkpoint is
	// bit-identical, or it failed and Recover returns the store to empty.
	data := payload(27, 128<<10)
	for pos := 0; pos < 500; pos++ {
		inj := proc.NewFaultInjector(proc.DiskFaultPlan{
			Seed: uint64(pos), EveryN: 1, SkipFirst: pos, Max: 3,
		})
		s := faultStore(inj)
		clock := vtime.NewClock()

		man, _, err := s.Put(clock, "job", data)
		if inj.Injected() == 0 {
			break // the sweep ran past the last operation of a clean Put
		}
		inj.Suspend()
		if err == nil {
			got, _, gerr := s.Get(clock, man.ID())
			if gerr != nil || !bytes.Equal(got, data) {
				t.Fatalf("pos %d (%v): put succeeded but payload wrong: %v", pos, inj.Events(), gerr)
			}
			rep, ferr := s.Fsck(clock)
			if ferr != nil || !rep.OK() {
				t.Fatalf("pos %d: fsck after successful put: %v %v", pos, ferr, rep.Errors)
			}
		} else {
			if _, rerr := s.Recover(); rerr != nil {
				t.Fatalf("pos %d: recover: %v", pos, rerr)
			}
			if used := s.fs.TotalBytes(); used != 0 {
				t.Fatalf("pos %d (%v): failed put leaked %d bytes past Recover", pos, inj.Events(), used)
			}
		}
	}
}

func TestDurableFaultSoakKillEveryK(t *testing.T) {
	// The long soak: a primary under a continuous fault plan (every 7th
	// operation fails as a torn write, lost write, bit rot or EIO) with two
	// clean replicas, checkpointing an evolving payload. Every committed
	// generation must come back bit-identical, and the final restore walk
	// must report no degradation.
	inj := proc.NewFaultInjector(proc.DiskFaultPlan{Seed: 2026, EveryN: 7})
	s := faultStore(inj)
	r1 := New(proc.NewFS("replica1", hw.TableISpec().LocalDisk), Config{})
	r2 := New(proc.NewFS("replica2", hw.TableISpec().LocalDisk), Config{})
	s.AttachReplica(r1, hw.GigE)
	s.AttachReplica(r2, hw.GigE)
	clock := vtime.NewClock()

	base := payload(28, 512<<10)
	committed := map[string][]byte{} // manifest ID -> expected payload
	for gen := 0; gen < 8; gen++ {
		v := append([]byte(nil), base...)
		copy(v[(gen*64)<<10:], payload(int64(300+gen), 16<<10))
		var lastErr error
		ok := false
		for attempt := 0; attempt < 5 && !ok; attempt++ {
			man, _, err := s.Put(clock, "soak", v)
			if err == nil {
				committed[man.ID()] = append([]byte(nil), v...)
				ok = true
				break
			}
			lastErr = err
			if _, rerr := s.Recover(); rerr != nil {
				t.Fatalf("gen %d: recover between attempts: %v", gen, rerr)
			}
		}
		if !ok {
			t.Fatalf("gen %d: put failed 5 attempts: %v", gen, lastErr)
		}
	}
	if inj.Injected() == 0 {
		t.Fatal("the soak injected no faults")
	}

	// Scrub with faults still flowing: retries and replicas absorb them.
	rep, err := s.Scrub(clock)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("scrub findings with 2 replicas attached: %v", rep.Findings)
	}

	// Every committed generation restores bit-identical — reads heal
	// through the ongoing fault plan.
	for id, want := range committed {
		got, _, err := s.Get(clock, id)
		if err != nil {
			t.Fatalf("get %s under faults: %v", id, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("generation %s not bit-identical after soak", id)
		}
	}
	_, man, deg, err := s.GetNewestRestorable(clock, "soak", nil)
	if err != nil {
		t.Fatal(err)
	}
	if deg != nil {
		t.Fatalf("restore walk degraded (restored %s): %+v", man.ID(), deg)
	}
}
