package store

import (
	"bytes"
	"compress/flate"
	"fmt"
	"io"

	"checl/internal/hw"
	"checl/internal/vtime"
)

// CompressModel parameterises the store's compression stage. The codec is
// real (stdlib flate, so stored bytes genuinely shrink and round-trip),
// while its CPU cost is *modelled*: compressing or decompressing n bytes
// charges n/throughput to the virtual clock, exactly like every other I/O
// stage in the simulation.
type CompressModel struct {
	Level         int          // flate level; 0 disables compression
	CompressBps   hw.Bandwidth // modelled compression throughput
	DecompressBps hw.Bandwidth // modelled decompression throughput
}

// defaultCompression roughly matches a single core running a fast
// dictionary coder (lz4/flate-1 class).
func defaultCompression() CompressModel {
	return CompressModel{
		Level:         flate.BestSpeed,
		CompressBps:   400 * hw.MBps,
		DecompressBps: 1200 * hw.MBps,
	}
}

// Chunk files carry a one-byte codec tag so raw storage remains available
// when compression is disabled or unprofitable.
const (
	codecRaw   = 0x00
	codecFlate = 0x01
)

// compress encodes one chunk for storage, charging the modelled
// compression time to clock. Incompressible chunks are stored raw (the
// tag byte is the only overhead).
func (m CompressModel) compress(clock *vtime.Clock, data []byte) ([]byte, error) {
	if m.Level == 0 {
		return append([]byte{codecRaw}, data...), nil
	}
	clock.Advance(m.CompressBps.Transfer(int64(len(data))))
	var buf bytes.Buffer
	buf.WriteByte(codecFlate)
	w, err := flate.NewWriter(&buf, m.Level)
	if err != nil {
		return nil, fmt.Errorf("store: compress: %w", err)
	}
	if _, err := w.Write(data); err != nil {
		return nil, fmt.Errorf("store: compress: %w", err)
	}
	if err := w.Close(); err != nil {
		return nil, fmt.Errorf("store: compress: %w", err)
	}
	if buf.Len() >= len(data)+1 {
		return append([]byte{codecRaw}, data...), nil
	}
	return buf.Bytes(), nil
}

// decompress decodes one stored chunk, charging the modelled
// decompression time to clock.
func (m CompressModel) decompress(clock *vtime.Clock, blob []byte) ([]byte, error) {
	if len(blob) == 0 {
		return nil, fmt.Errorf("store: empty chunk blob")
	}
	switch blob[0] {
	case codecRaw:
		return append([]byte(nil), blob[1:]...), nil
	case codecFlate:
		r := flate.NewReader(bytes.NewReader(blob[1:]))
		data, err := io.ReadAll(r)
		if err != nil {
			return nil, fmt.Errorf("store: decompress: %w", err)
		}
		if err := r.Close(); err != nil {
			return nil, fmt.Errorf("store: decompress: %w", err)
		}
		clock.Advance(m.DecompressBps.Transfer(int64(len(data))))
		return data, nil
	default:
		return nil, fmt.Errorf("store: unknown chunk codec 0x%02x", blob[0])
	}
}
