package store

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"checl/internal/hw"
	"checl/internal/proc"
	"checl/internal/vtime"
)

// testFleet builds an n-node fleet with per-node NodeStates already
// attached (so tests can take nodes down directly) and fine chunking so
// modest payloads still spread over many chunks.
func testFleet(t *testing.T, n int, cfg FleetConfig) (*Fleet, map[string]*proc.NodeState) {
	t.Helper()
	if cfg.Store.MinChunk == 0 {
		cfg.Store = Config{MinChunk: 1 << 10, AvgChunk: 4 << 10, MaxChunk: 16 << 10}
	}
	nodes := make([]FleetNode, n)
	states := map[string]*proc.NodeState{}
	for i := range nodes {
		name := fmt.Sprintf("fn-%02d", i)
		fs := proc.NewFS(name, hw.TableISpec().LocalDisk)
		ns := proc.NewNodeState(name)
		fs.SetNodeState(ns)
		nodes[i] = FleetNode{Name: name, FS: fs}
		states[name] = ns
	}
	f, err := NewFleet(nodes, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return f, states
}

func allUp(states map[string]*proc.NodeState) {
	for _, ns := range states {
		ns.SetDown(false)
	}
}

func TestFleetPutGetRoundTrip(t *testing.T) {
	f, _ := testFleet(t, 6, FleetConfig{})
	clock := vtime.NewClock()
	data := payload(10, 256<<10)

	man, put, err := f.Put(clock, "job", data)
	if err != nil {
		t.Fatal(err)
	}
	if put.NewChunks == 0 || put.StoredBytes == 0 {
		t.Fatalf("degenerate put stats: %+v", put)
	}
	got, gman, err := f.Get(clock, "job")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round trip is not bit-identical")
	}
	if gman.ID() != man.ID() {
		t.Fatalf("resolved %s, want %s", gman.ID(), man.ID())
	}

	// A second put of the same payload dedups every chunk.
	_, put2, err := f.Put(clock, "job", data)
	if err != nil {
		t.Fatal(err)
	}
	if put2.NewChunks != 0 {
		t.Fatalf("identical re-put wrote %d new chunks", put2.NewChunks)
	}

	// Physical occupancy is erasure-coded, not replicated: the shard
	// payloads cost (k+m)/k = 1.5x; frames and mirrored manifests add a
	// little. Well under replication's 2x.
	if total := f.TotalStoredBytes(); total > int64(float64(len(data))*1.9) {
		t.Fatalf("stored %d bytes for a %d-byte payload — no erasure saving", total, len(data))
	}
}

// TestFleetDegradedGetEveryLossPattern takes every subset of up to m
// nodes down and requires a bit-identical restore each time; one node
// beyond m must fail loudly, never fabricate.
func TestFleetDegradedGetEveryLossPattern(t *testing.T) {
	f, states := testFleet(t, 6, FleetConfig{})
	clock := vtime.NewClock()
	data := payload(11, 256<<10)
	if _, _, err := f.Put(clock, "job", data); err != nil {
		t.Fatal(err)
	}
	names := f.Nodes()
	m := f.Config().ParityShards

	for lost := 1; lost <= m; lost++ {
		for _, downSet := range combinations(len(names), lost) {
			allUp(states)
			for _, di := range downSet {
				states[names[di]].SetDown(true)
			}
			got, _, err := f.Get(clock, "job")
			if err != nil {
				t.Fatalf("down=%v: %v", downSet, err)
			}
			if !bytes.Equal(got, data) {
				t.Fatalf("down=%v: degraded restore differs", downSet)
			}
		}
	}

	// m+1 nodes down: with 6 nodes and 4+2 coding every chunk has a shard
	// on every node, so every chunk is 3 shards short and must fail.
	allUp(states)
	for _, name := range names[:m+1] {
		states[name].SetDown(true)
	}
	if _, _, err := f.Get(clock, "job"); err == nil {
		t.Fatalf("%d nodes down but Get succeeded", m+1)
	}
	allUp(states)
}

// TestNodeKillPositionSweep kills every node (and every node pair, up to
// m=2) at every shard-operation position of a degraded read and requires
// the restore to stay bit-identical regardless of when the loss lands.
func TestNodeKillPositionSweep(t *testing.T) {
	f, states := testFleet(t, 6, FleetConfig{})
	clock := vtime.NewClock()
	data := payload(12, 128<<10)
	if _, _, err := f.Put(clock, "job", data); err != nil {
		t.Fatal(err)
	}
	names := f.Nodes()

	// Calibrate: how many injector ticks does one healthy Get take?
	probe := proc.NewNodeFaultInjector(proc.NodeFaultPlan{})
	f.SetFaultInjector(probe)
	if _, _, err := f.Get(clock, "job"); err != nil {
		t.Fatal(err)
	}
	ops := probe.Ops()
	if ops == 0 {
		t.Fatal("Get ticked the injector zero times")
	}

	pairs := combinations(len(names), 1)
	pairs = append(pairs, combinations(len(names), 2)...)
	for _, victims := range pairs {
		for p := 0; p < ops; p++ {
			allUp(states)
			inj := proc.NewNodeFaultInjector(proc.NodeFaultPlan{
				Seed: uint64(p), EveryN: 1, SkipFirst: p, Max: len(victims),
				Kinds:   []proc.NodeFaultKind{proc.NodeFaultCrash},
				MaxDown: len(victims),
			})
			// Only the victims register, so the sweep controls exactly
			// which nodes the crashes land on.
			for _, vi := range victims {
				st, ok := f.NodeStore(names[vi])
				if !ok {
					t.Fatalf("no node %s", names[vi])
				}
				states[names[vi]] = inj.Register(names[vi], st.FS())
			}
			f.SetFaultInjector(inj)
			got, _, err := f.Get(clock, "job")
			if err != nil {
				t.Fatalf("victims=%v pos=%d: %v", victims, p, err)
			}
			if !bytes.Equal(got, data) {
				t.Fatalf("victims=%v pos=%d: restore differs", victims, p)
			}
		}
	}
	f.SetFaultInjector(nil)
	allUp(states)
}

func TestFleetRebuildRestoresRedundancy(t *testing.T) {
	f, states := testFleet(t, 6, FleetConfig{})
	clock := vtime.NewClock()
	data := payload(13, 512<<10)
	if _, _, err := f.Put(clock, "alpha", data); err != nil {
		t.Fatal(err)
	}
	data2 := payload(14, 256<<10)
	if _, _, err := f.Put(clock, "beta", data2); err != nil {
		t.Fatal(err)
	}
	names := f.Nodes()

	// Node 0 dies for good and is replaced by an empty filesystem.
	victim := names[0]
	freshFS := proc.NewFS(victim, hw.TableISpec().LocalDisk)
	freshNS := proc.NewNodeState(victim)
	freshFS.SetNodeState(freshNS)
	if err := f.ReplaceNode(victim, freshFS); err != nil {
		t.Fatal(err)
	}
	states[victim] = freshNS

	st, err := f.Rebuild(clock)
	if err != nil {
		t.Fatal(err)
	}
	if st.ShardsRebuilt == 0 || st.BytesRebuilt == 0 {
		t.Fatalf("replacement node got no shards: %+v", st)
	}
	// Manifest copies reach the replacement either through Rebuild's sync
	// or through the read path's self-heal when Rebuild listed manifests.
	if st.ManifestsRepaired == 0 && f.Heals().ManifestsHealed == 0 {
		t.Fatalf("replacement node got no manifest copies: %+v", st)
	}
	for _, job := range []string{"alpha", "beta"} {
		rst, _ := f.NodeStore(victim)
		if len(rst.jobSeqs(job)) == 0 {
			t.Fatalf("replacement node holds no %s manifests after rebuild", job)
		}
	}
	if st.Batches == 0 || st.Time <= 0 {
		t.Fatalf("rebuild pacing did not engage: %+v", st)
	}

	// Full redundancy is back: the replacement node plus any other node
	// can now drop simultaneously and everything still restores.
	states[victim].SetDown(true)
	states[names[3]].SetDown(true)
	for job, want := range map[string][]byte{"alpha": data, "beta": data2} {
		got, _, gerr := f.Get(clock, job)
		if gerr != nil {
			t.Fatalf("%s after rebuild with 2 nodes down: %v", job, gerr)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%s differs after rebuild", job)
		}
	}
	allUp(states)

	// A second Rebuild is a no-op: redundancy is already full.
	st2, err := f.Rebuild(clock)
	if err != nil {
		t.Fatal(err)
	}
	if st2.ShardsRebuilt != 0 {
		t.Fatalf("idle rebuild wrote %d shards", st2.ShardsRebuilt)
	}
}

func TestFleetScrubHealsRotAndSweepsOrphans(t *testing.T) {
	f, states := testFleet(t, 6, FleetConfig{})
	clock := vtime.NewClock()
	data := payload(15, 256<<10)
	if _, _, err := f.Put(clock, "job", data); err != nil {
		t.Fatal(err)
	}

	// Rot shards at rest on two nodes and drop an orphan on a third.
	names := f.Nodes()
	rotted := 0
	for _, name := range names[:2] {
		st, _ := f.NodeStore(name)
		for _, p := range st.FS().List() {
			if strings.Contains(p, "/shards/") && rotted < 3 {
				if st.FS().FlipBit(p, uint64(rotted)*131) {
					rotted++
				}
			}
		}
	}
	if rotted == 0 {
		t.Fatal("found no shard files to rot")
	}
	orphanSum := strings.Repeat("ab", 32)
	ost, _ := f.NodeStore(names[3])
	if err := ost.FS().WriteFile(vtime.NewClock(), ost.cfg.Prefix+"/shards/"+orphanSum+"/0", []byte("junk")); err != nil {
		t.Fatal(err)
	}

	rep, err := f.Scrub(clock)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("scrub findings: %v", rep.Findings)
	}
	bad := 0
	for _, prog := range rep.PerNode {
		bad += prog.ShardsBad
	}
	if bad < rotted+1 {
		t.Fatalf("scrub flagged %d bad shards, want >= %d (rot) + 1 (orphan)", bad, rotted+1)
	}
	if rep.ShardsRebuilt < rotted {
		t.Fatalf("scrub rebuilt %d shards, rotted %d", rep.ShardsRebuilt, rotted)
	}
	if ost.FS().Exists(ost.cfg.Prefix + "/shards/" + orphanSum + "/0") {
		t.Fatal("orphan shard survived the scrub")
	}
	if f.Heals().ShardsHealed == 0 {
		t.Fatal("heal ledger recorded nothing")
	}

	// Post-scrub the fleet is back at full redundancy.
	states[names[0]].SetDown(true)
	states[names[1]].SetDown(true)
	got, _, err := f.Get(clock, "job")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("restore after scrub with rotted nodes down: %v", err)
	}
	allUp(states)
}

func TestFleetScrubQuarantinesUnrepairable(t *testing.T) {
	f, _ := testFleet(t, 6, FleetConfig{})
	clock := vtime.NewClock()
	if _, _, err := f.Put(clock, "doomed", payload(16, 64<<10)); err != nil {
		t.Fatal(err)
	}
	// Destroy one chunk beyond repair: remove m+1 of its shards.
	var sum string
	man, err := f.Resolve("doomed")
	if err != nil {
		t.Fatal(err)
	}
	sum = man.Chunks[0].Sum
	killed := 0
	for _, name := range f.Nodes() {
		st, _ := f.NodeStore(name)
		for _, p := range st.FS().List() {
			if strings.Contains(p, "/shards/"+sum+"/") && killed < 3 {
				if err := st.FS().Remove(p); err != nil {
					t.Fatal(err)
				}
				killed++
			}
		}
	}
	if killed != 3 {
		t.Fatalf("killed %d shard copies, want 3", killed)
	}

	rep, err := f.Scrub(clock)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("scrub reported OK with an unrepairable chunk")
	}
	if len(rep.Quarantined) != 1 || rep.Quarantined[0] != man.ID() {
		t.Fatalf("quarantined %v, want [%s]", rep.Quarantined, man.ID())
	}
	if _, err := f.Resolve("doomed"); err == nil {
		t.Fatal("quarantined manifest still resolves")
	}
}

func TestFleetGC(t *testing.T) {
	f, _ := testFleet(t, 6, FleetConfig{})
	clock := vtime.NewClock()
	var last []byte
	for g := 0; g < 4; g++ {
		last = payload(int64(20+g), 128<<10)
		if _, _, err := f.Put(clock, "job", last); err != nil {
			t.Fatal(err)
		}
	}
	before := f.TotalStoredBytes()
	st, err := f.GC(1)
	if err != nil {
		t.Fatal(err)
	}
	if st.ManifestsDropped != 3 || st.ManifestsKept != 1 {
		t.Fatalf("gc manifests: %+v", st)
	}
	if st.ChunksDropped == 0 || st.BytesReclaimed == 0 {
		t.Fatalf("gc reclaimed nothing: %+v", st)
	}
	if after := f.TotalStoredBytes(); after >= before {
		t.Fatalf("occupancy did not shrink: %d -> %d", before, after)
	}
	got, man, err := f.Get(clock, "job")
	if err != nil || !bytes.Equal(got, last) {
		t.Fatalf("latest generation broken after GC: %v", err)
	}
	if man.Seq != 4 {
		t.Fatalf("kept seq %d, want 4", man.Seq)
	}
}

// TestFleetCrossJobDedup stores hundreds of jobs sharing a common base
// image; content addressing must store the base chunks once, fleet-wide.
func TestFleetCrossJobDedup(t *testing.T) {
	f, _ := testFleet(t, 8, FleetConfig{})
	clock := vtime.NewClock()
	base := payload(30, 192<<10)
	const jobs = 200

	var logical int64
	for j := 0; j < jobs; j++ {
		p := append(append([]byte(nil), base...), payload(int64(1000+j), 4<<10)...)
		logical += int64(len(p))
		if _, _, err := f.Put(clock, fmt.Sprintf("job-%03d", j), p); err != nil {
			t.Fatalf("job %d: %v", j, err)
		}
	}
	phys := f.TotalStoredBytes()
	ratio := float64(logical) / float64(phys)
	// 200 jobs x ~196 KiB logical vs one shared base (+1.5x parity,
	// manifests, unique tails): anything under ~3x dedup means the base
	// was stored repeatedly.
	if ratio < 3 {
		t.Fatalf("dedup ratio %.1fx (logical %d, physical %d) — base image not shared", ratio, logical, phys)
	}

	// Spot-check restores across the job population.
	for _, j := range []int{0, 97, 199} {
		want := append(append([]byte(nil), base...), payload(int64(1000+j), 4<<10)...)
		got, _, err := f.Get(clock, fmt.Sprintf("job-%03d", j))
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("job %d after dedup: %v", j, err)
		}
	}
}

func TestFleetTornShardWriteAbsorbed(t *testing.T) {
	f, states := testFleet(t, 6, FleetConfig{})
	clock := vtime.NewClock()
	for _, name := range f.Nodes()[:2] {
		states[name].ArmTornWrite()
	}
	data := payload(31, 128<<10)
	if _, _, err := f.Put(clock, "job", data); err != nil {
		t.Fatalf("put with torn shard writes: %v", err)
	}
	got, _, err := f.Get(clock, "job")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("restore after torn shard writes: %v", err)
	}
}

func TestFleetPutTolERatesDownNodesUpToM(t *testing.T) {
	f, states := testFleet(t, 6, FleetConfig{})
	clock := vtime.NewClock()
	names := f.Nodes()
	states[names[1]].SetDown(true)
	states[names[4]].SetDown(true)

	data := payload(32, 128<<10)
	if _, _, err := f.Put(clock, "job", data); err != nil {
		t.Fatalf("put with m nodes down: %v", err)
	}
	allUp(states)
	got, _, err := f.Get(clock, "job")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("restore of degraded-commit checkpoint: %v", err)
	}
	// Rebuild tops the under-replicated chunks back up.
	st, err := f.Rebuild(clock)
	if err != nil {
		t.Fatal(err)
	}
	if st.ShardsRebuilt == 0 {
		t.Fatal("rebuild found nothing to top up after a degraded commit")
	}

	// One node too many refuses the commit.
	states[names[0]].SetDown(true)
	states[names[2]].SetDown(true)
	states[names[3]].SetDown(true)
	if _, _, err := f.Put(clock, "job2", data); err == nil {
		t.Fatal("put committed with m+1 nodes down")
	}
	allUp(states)
}

func TestFleetRejectsBadGeometry(t *testing.T) {
	mk := func(n int) []FleetNode {
		out := make([]FleetNode, n)
		for i := range out {
			name := fmt.Sprintf("x-%d", i)
			out[i] = FleetNode{Name: name, FS: proc.NewFS(name, hw.TableISpec().LocalDisk)}
		}
		return out
	}
	if _, err := NewFleet(mk(5), FleetConfig{}); err == nil {
		t.Fatal("5 nodes accepted for 4+2 coding")
	}
	nodes := mk(6)
	nodes[3].Name = nodes[2].Name
	if _, err := NewFleet(nodes, FleetConfig{}); err == nil {
		t.Fatal("duplicate node name accepted")
	}
	nodes = mk(6)
	nodes[0].Name = "bad/name"
	if _, err := NewFleet(nodes, FleetConfig{}); err == nil {
		t.Fatal("slash in node name accepted")
	}
}

// TestFleetSoakSeededFaults drives many generations of puts and gets
// through a full fault mix — crashes (with revival), slow nodes, at-rest
// rot, torn writes — and requires every read to come back bit-identical
// and the ledger to show actual self-healing.
func TestFleetSoakSeededFaults(t *testing.T) {
	f, _ := testFleet(t, 8, FleetConfig{})
	clock := vtime.NewClock()
	inj := proc.NewNodeFaultInjector(proc.NodeFaultPlan{
		Seed: 7, EveryN: 13, ReviveAfter: 40, MaxDown: 1,
	})
	f.AttachFaults(inj)

	gens := map[string][]byte{}
	for g := 0; g < 12; g++ {
		job := fmt.Sprintf("soak-%d", g%3)
		data := payload(int64(100+g), 96<<10)
		if _, _, err := f.Put(clock, job, data); err != nil {
			t.Fatalf("gen %d: put: %v", g, err)
		}
		gens[job] = data
		// The repair daemon runs between checkpoints: it tops degraded
		// commits back up to k+m and re-codes rotted shards, so the fault
		// mix never accumulates past the coding's tolerance.
		if _, err := f.Rebuild(clock); err != nil {
			t.Fatalf("gen %d: rebuild: %v", g, err)
		}
		for job, want := range gens {
			got, _, err := f.Get(clock, job)
			if err != nil {
				t.Fatalf("gen %d: get %s: %v", g, job, err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("gen %d: %s differs", g, job)
			}
		}
	}
	if inj.Injected() == 0 {
		t.Fatal("soak injected no faults")
	}
	if f.Heals() == (HealStats{}) {
		t.Log("soak healed nothing (plan may have missed the read paths)")
	}
}
