package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"checl/internal/hw"
	"checl/internal/proc"
	"checl/internal/vtime"
)

// Config parameterises a Store. The zero value selects sane defaults.
type Config struct {
	// Prefix is the directory-like path prefix inside the backing FS;
	// default "ckptstore".
	Prefix string
	// MinChunk/AvgChunk/MaxChunk are the content-defined chunking bounds
	// in bytes; AvgChunk must be a power of two. Defaults 4 KiB / 16 KiB /
	// 64 KiB.
	MinChunk, AvgChunk, MaxChunk int
	// Compression is the modelled compression stage; the zero value
	// selects flate.BestSpeed at 400 MB/s compress, 1.2 GB/s decompress.
	Compression CompressModel
	// WriteRetries is how many times verified writes, renames, removes and
	// plain reads are retried past transient *proc.ErrIO (and, for writes,
	// torn/lost outcomes caught by read-back). Default 2; *proc.ErrNoSpace
	// is never retried.
	WriteRetries int
	// PipelineWorkers bounds the modelled compression workers feeding
	// Put's single staging writer. Values <= 1 keep the fully serial
	// charging (each chunk compresses, then writes, in turn); higher
	// values overlap compression of later chunks with the write of
	// earlier ones and charge the pipeline's makespan instead. The
	// filesystem operation order is identical either way — workers stage,
	// one committer renames manifest-last — so seeded fault plans hit the
	// same operations in the same sequence.
	PipelineWorkers int
}

func (c Config) withDefaults() Config {
	if c.Prefix == "" {
		c.Prefix = "ckptstore"
	}
	if c.MinChunk == 0 {
		c.MinChunk = 4 << 10
	}
	if c.AvgChunk == 0 {
		c.AvgChunk = 16 << 10
	}
	if c.MaxChunk == 0 {
		c.MaxChunk = 64 << 10
	}
	if c.Compression == (CompressModel{}) {
		c.Compression = defaultCompression()
	}
	if c.WriteRetries == 0 {
		c.WriteRetries = 2
	}
	return c
}

// Store is a content-addressed checkpoint store on one backing
// filesystem. Chunks live under <prefix>/chunks/<sha256>, shared by every
// job; manifests live under <prefix>/manifests/<job>/<seq>. Mutating
// operations stage their files under <prefix>/staging/ and publish them
// with atomic renames, manifest last, so a crash mid-operation never
// corrupts Latest; Recover sweeps the staging area and quarantines torn
// manifests into <prefix>/quarantine/.
type Store struct {
	fs  *proc.FS
	cfg Config

	mu  sync.Mutex // serialises Put/GC/Replicate/Recover/Scrub sequencing
	txn uint64     // staging-directory counter, monotone under mu

	healMu   sync.Mutex
	replicas []replicaRef
	heals    HealStats
}

// replicaRef is one attached replica and the modelled link to it.
type replicaRef struct {
	st  *Store
	nic hw.Bandwidth
}

// New opens (or creates — the store is its own directory layout) a store
// on fs. Callers opening a store that may have crashed mid-operation
// should run Recover before trusting capacity or Latest.
func New(fs *proc.FS, cfg Config) *Store {
	return &Store{fs: fs, cfg: cfg.withDefaults()}
}

// FS exposes the backing filesystem (tooling, tests).
func (s *Store) FS() *proc.FS { return s.fs }

// Name identifies the store by its backing filesystem (Backend).
func (s *Store) Name() string { return s.fs.Name() }

func (s *Store) chunkPath(sum string) string {
	return s.cfg.Prefix + "/chunks/" + sum
}

func (s *Store) manifestPath(job string, seq uint64) string {
	return fmt.Sprintf("%s/manifests/%s/%08d", s.cfg.Prefix, job, seq)
}

func (s *Store) stagingPrefix() string    { return s.cfg.Prefix + "/staging/" }
func (s *Store) quarantinePrefix() string { return s.cfg.Prefix + "/quarantine/" }

// nextTxn hands out a fresh staging-directory suffix.
func (s *Store) nextTxn() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.txn++
	return s.txn
}

// errCorruptManifest marks a manifest frame that is present but does not
// decode (torn write, bit rot) — an integrity failure, as opposed to an
// infrastructure failure like a persistent EIO.
var errCorruptManifest = errors.New("corrupt manifest frame")

// isTransientIO reports whether err is an injected transient I/O error
// worth retrying. *proc.ErrNoSpace deliberately is not: retrying cannot
// create capacity.
func isTransientIO(err error) bool {
	var eio *proc.ErrIO
	return errors.As(err, &eio)
}

// readRetry reads path from fs, retrying transient EIO up to retries
// times. Bit rot is not an error at this layer — it surfaces as corrupt
// data to the caller's checksum.
func readRetry(clock *vtime.Clock, fs *proc.FS, path string, retries int) ([]byte, error) {
	var lastErr error
	for attempt := 0; attempt <= retries; attempt++ {
		data, err := fs.ReadFile(clock, path)
		if err == nil {
			return data, nil
		}
		if !isTransientIO(err) {
			return nil, err
		}
		lastErr = err
	}
	return nil, lastErr
}

// writeVerified writes path and reads it back, retrying until the stored
// bytes equal data or the retry budget runs out. This is what turns torn
// writes, lost writes and transient EIO into at-worst a latency cost:
// a Put that returns success has proven its bytes are on disk.
// *proc.ErrNoSpace aborts immediately.
func (s *Store) writeVerified(clock *vtime.Clock, path string, data []byte) error {
	var lastErr error
	for attempt := 0; attempt <= s.cfg.WriteRetries; attempt++ {
		if err := s.fs.WriteFile(clock, path, data); err != nil {
			var nospace *proc.ErrNoSpace
			if errors.As(err, &nospace) {
				return err
			}
			lastErr = err
			continue
		}
		back, err := s.fs.ReadFile(clock, path)
		if err == nil && bytes.Equal(back, data) {
			return nil
		}
		if err != nil {
			lastErr = fmt.Errorf("store: verifying %s: %w", path, err)
		} else {
			lastErr = fmt.Errorf("store: %s corrupt immediately after write", path)
		}
	}
	return lastErr
}

// writeVerifiedMeta is writeVerified for manifest-sized metadata: the
// write itself charges normally, but the read-back verification runs
// against a throwaway clock, matching readManifest's convention that
// manifest frames are a few KB of metadata whose transfer time vanishes
// next to the chunk I/O.
func (s *Store) writeVerifiedMeta(clock *vtime.Clock, path string, data []byte) error {
	var lastErr error
	for attempt := 0; attempt <= s.cfg.WriteRetries; attempt++ {
		if err := s.fs.WriteFile(clock, path, data); err != nil {
			var nospace *proc.ErrNoSpace
			if errors.As(err, &nospace) {
				return err
			}
			lastErr = err
			continue
		}
		back, err := s.fs.ReadFile(vtime.NewClock(), path)
		if err == nil && bytes.Equal(back, data) {
			return nil
		}
		if err != nil {
			lastErr = fmt.Errorf("store: verifying %s: %w", path, err)
		} else {
			lastErr = fmt.Errorf("store: %s corrupt immediately after write", path)
		}
	}
	return lastErr
}

// renameRetry publishes old at new, retrying transient EIO. Renames are
// atomic in FS, so a failed attempt leaves both paths untouched.
func (s *Store) renameRetry(old, new string) error {
	var lastErr error
	for attempt := 0; attempt <= s.cfg.WriteRetries; attempt++ {
		if err := s.fs.Rename(old, new); err == nil {
			return nil
		} else {
			lastErr = err
			if !isTransientIO(err) {
				return err
			}
		}
	}
	return lastErr
}

// removeRetry deletes path, retrying transient EIO.
func (s *Store) removeRetry(path string) error {
	var lastErr error
	for attempt := 0; attempt <= s.cfg.WriteRetries; attempt++ {
		if err := s.fs.Remove(path); err == nil {
			return nil
		} else {
			lastErr = err
			if !isTransientIO(err) {
				return err
			}
		}
	}
	return lastErr
}

// PutStats reports what one Put cost and how well it deduplicated.
type PutStats struct {
	Manifest    string // manifest ID ("job@seq")
	TotalBytes  int64  // payload size
	TotalChunks int
	NewChunks   int            // chunks not already present in the store
	NewBytes    int64          // uncompressed bytes of those new chunks
	StoredBytes int64          // bytes actually written for them (post-compression)
	Time        vtime.Duration // compress + write + verify time charged to the clock

	// Clean-segment reuse (PutSegmented): chunk refs copied verbatim from
	// the parent manifest without re-reading, hashing or probing the
	// covered payload bytes.
	ReusedChunks int
	ReusedBytes  int64
	// Stage times for the chunk pipeline: total compression time and
	// total write+verify time over the new chunks. With PipelineWorkers
	// <= 1 these add up (with the dedup probes) to Time; in pipelined
	// mode they overlap and Time reflects the makespan.
	CompressTime vtime.Duration
	WriteTime    vtime.Duration
}

// DedupRatio is the fraction of the payload satisfied by chunks already
// in the store (1 = everything deduplicated, 0 = everything new).
func (p PutStats) DedupRatio() float64 {
	if p.TotalBytes == 0 {
		return 0
	}
	return 1 - float64(p.NewBytes)/float64(p.TotalBytes)
}

// Put stores one checkpoint payload for job: the payload is chunked,
// chunks already present (from any job) are skipped, new chunks are
// compressed and written, and a manifest linking to the job's previous
// checkpoint is recorded. Compression, write and read-back-verify time
// are charged to clock. A full filesystem surfaces as *proc.ErrNoSpace.
//
// The commit is crash-consistent: everything is staged under
// <prefix>/staging/ with verified writes, then published by renaming the
// chunks and finally the manifest — the atomic commit point. A Put cut
// short at any earlier operation leaves only staged files no manifest
// references; Recover reclaims them. If the store has attached replicas
// (AttachReplica), the committed checkpoint is then written through to
// each of them before Put returns, so the moment a Put succeeds every
// replica can serve it; a write-through failure is returned as an error
// even though the primary commit stands.
func (s *Store) Put(clock *vtime.Clock, job string, payload []byte) (Manifest, PutStats, error) {
	return s.PutSegmented(clock, job, payload, nil)
}

// Segment names one contiguous region of a PutSegmented payload. Segments
// must tile the payload exactly (ascending contiguous offsets covering
// every byte) and carry unique non-empty names. A segment marked Clean
// asserts its bytes are identical to the same-named segment of the job's
// previous checkpoint; when the parent manifest confirms the name and size,
// the parent's chunk refs are copied verbatim — no chunking, hashing,
// probing or compression for those bytes. A Clean segment with no matching
// parent segment is silently treated as dirty. The manifest digest always
// covers the full payload, so a wrongly-Clean segment (bytes changed but
// flagged clean) fails loudly at Get time rather than restoring stale data.
type Segment struct {
	Name     string
	Off, Len int64
	Clean    bool
}

// validSegments checks that segs tile a payload of the given size.
func validSegments(segs []Segment, size int64) error {
	var off int64
	seen := make(map[string]bool, len(segs))
	for i, sg := range segs {
		if sg.Name == "" {
			return fmt.Errorf("store: segment %d has no name", i)
		}
		if seen[sg.Name] {
			return fmt.Errorf("store: duplicate segment name %q", sg.Name)
		}
		seen[sg.Name] = true
		if sg.Len < 0 || sg.Off != off {
			return fmt.Errorf("store: segment %q does not tile the payload (off %d len %d, want off %d)",
				sg.Name, sg.Off, sg.Len, off)
		}
		off += sg.Len
	}
	if off != size {
		return fmt.Errorf("store: segments cover %d bytes, payload has %d", off, size)
	}
	return nil
}

// pipelineMakespan models Put's bounded-stage pipeline over the new
// chunks: `workers` compression workers feed the single staging writer,
// which writes chunks in staging order (the crash-consistent commit wants
// one committer renaming manifest-last). Chunk i starts compressing on the
// earliest-free worker; the writer picks it up once both the writer is
// free and the compression is done.
func pipelineMakespan(workers int, compDur, writeDur []vtime.Duration) vtime.Duration {
	free := make([]vtime.Duration, workers)
	var wEnd vtime.Duration
	for i := range compDur {
		w := 0
		for j := 1; j < workers; j++ {
			if free[j] < free[w] {
				w = j
			}
		}
		free[w] += compDur[i]
		if free[w] > wEnd {
			wEnd = free[w]
		}
		wEnd += writeDur[i]
	}
	return wEnd
}

// PutSegmented is Put with a caller-supplied segment map over the payload:
// each segment becomes an independently chunked region recorded in the
// manifest, and segments marked Clean reuse the parent manifest's chunk
// refs instead of being re-chunked (see Segment). nil segs is exactly the
// legacy Put — one anonymous dirty region, no segment map in the manifest.
func (s *Store) PutSegmented(clock *vtime.Clock, job string, payload []byte, segs []Segment) (Manifest, PutStats, error) {
	if job == "" || strings.ContainsAny(job, "/@") {
		return Manifest{}, PutStats{}, fmt.Errorf("store: invalid job name %q", job)
	}
	if segs != nil {
		if err := validSegments(segs, int64(len(payload))); err != nil {
			return Manifest{}, PutStats{}, err
		}
	}
	s.mu.Lock()

	// Sequence numbers come from the listing, not from the newest decodable
	// manifest, so a torn newest manifest is never silently overwritten —
	// it stays in place for Recover/Scrub and the new checkpoint gets the
	// next number. The parent link does come from the newest decodable one.
	seq := uint64(1)
	if seqs := s.jobSeqs(job); len(seqs) > 0 {
		seq = seqs[len(seqs)-1] + 1
	}
	parent := ""
	var parentMan Manifest
	haveParent := false
	if last, ok, err := s.latest(job); err != nil {
		s.mu.Unlock()
		return Manifest{}, PutStats{}, err
	} else if ok {
		parent = last.ID()
		parentMan, haveParent = last, true
	}

	s.txn++
	txdir := fmt.Sprintf("%sput-%s-%08d-%d", s.stagingPrefix(), job, seq, s.txn)

	sw := vtime.NewStopwatch(clock)
	ck := chunker{min: s.cfg.MinChunk, avg: s.cfg.AvgChunk, max: s.cfg.MaxChunk}
	man := Manifest{
		Version: manifestVersion, Job: job, Seq: seq, Parent: parent,
		Size: int64(len(payload)), CreatedAt: clock.Now(),
	}
	stats := PutStats{Manifest: man.ID(), TotalBytes: int64(len(payload))}

	type stagedChunk struct{ tmp, final string }
	var staged []stagedChunk
	stagedSize := map[string]int64{} // stored size of chunks staged by this Put
	chunkData := map[string][]byte{} // uncompressed chunks, for write-through repair
	fail := func(err error) (Manifest, PutStats, error) {
		// Leave the staged files where they are: an error return is
		// equivalent to a crash at this point, and Recover is the one
		// janitor for both.
		s.mu.Unlock()
		return Manifest{}, stats, err
	}

	// In pipelined mode every chunk still compresses and writes in staging
	// order in real execution — identical FS operation sequence — but each
	// stage is timed on a scratch clock and the makespan of the modelled
	// worker pipeline is charged once at the end.
	pipelined := s.cfg.PipelineWorkers > 1
	var compDur, writeDur []vtime.Duration

	// Parent chunk refs sliced per segment name, for clean-segment reuse.
	parentSeg := map[string]SegmentRef{}
	parentSegChunks := map[string][]ChunkRef{}
	if haveParent && len(parentMan.Segments) > 0 {
		at := 0
		for _, ps := range parentMan.Segments {
			if at+ps.Chunks > len(parentMan.Chunks) {
				// Defensive: a segment map that does not cover the chunk
				// list exactly grants no reuse.
				parentSeg, parentSegChunks = map[string]SegmentRef{}, nil
				break
			}
			parentSeg[ps.Name] = ps
			parentSegChunks[ps.Name] = parentMan.Chunks[at : at+ps.Chunks]
			at += ps.Chunks
		}
	}

	// stageRange chunks one dirty byte range and stages its new chunks,
	// returning how many ChunkRefs it appended.
	stageRange := func(data []byte) (int, error) {
		n := 0
		for _, chunk := range ck.split(data) {
			sum256 := sha256.Sum256(chunk)
			sum := hex.EncodeToString(sum256[:])
			ref := ChunkRef{Sum: sum, Size: int64(len(chunk))}
			chunkData[sum] = chunk
			if stored, ok := stagedSize[sum]; ok {
				ref.Stored = stored
			} else if stored, err := s.fs.Size(s.chunkPath(sum)); err == nil {
				ref.Stored = stored
			} else {
				cclock, wclock := clock, clock
				if pipelined {
					cclock, wclock = vtime.NewClock(), vtime.NewClock()
				}
				csw := vtime.NewStopwatch(cclock)
				blob, cerr := s.cfg.Compression.compress(cclock, chunk)
				if cerr != nil {
					return n, cerr
				}
				cd := csw.Elapsed()
				wsw := vtime.NewStopwatch(wclock)
				if werr := s.writeVerified(wclock, txdir+"/"+sum, blob); werr != nil {
					return n, fmt.Errorf("store: writing chunk %s: %w", sum[:12], werr)
				}
				wd := wsw.Elapsed()
				stats.CompressTime += cd
				stats.WriteTime += wd
				if pipelined {
					compDur = append(compDur, cd)
					writeDur = append(writeDur, wd)
				}
				staged = append(staged, stagedChunk{tmp: txdir + "/" + sum, final: s.chunkPath(sum)})
				stagedSize[sum] = int64(len(blob))
				ref.Stored = int64(len(blob))
				stats.NewChunks++
				stats.NewBytes += int64(len(chunk))
				stats.StoredBytes += int64(len(blob))
			}
			man.Chunks = append(man.Chunks, ref)
			stats.TotalChunks++
			n++
		}
		return n, nil
	}

	if segs == nil {
		if _, err := stageRange(payload); err != nil {
			return fail(err)
		}
	} else {
		for _, sg := range segs {
			if sg.Clean {
				if ps, ok := parentSeg[sg.Name]; ok && ps.Size == sg.Len {
					refs := parentSegChunks[sg.Name]
					man.Chunks = append(man.Chunks, refs...)
					man.Segments = append(man.Segments, SegmentRef{
						Name: sg.Name, Size: sg.Len, Chunks: len(refs), Clean: true,
					})
					stats.TotalChunks += len(refs)
					stats.ReusedChunks += len(refs)
					stats.ReusedBytes += sg.Len
					continue
				}
				// No matching parent segment: chunk it like a dirty one.
			}
			n, err := stageRange(payload[sg.Off : sg.Off+sg.Len])
			if err != nil {
				return fail(err)
			}
			man.Segments = append(man.Segments, SegmentRef{Name: sg.Name, Size: sg.Len, Chunks: n})
		}
	}

	if pipelined && len(compDur) > 0 {
		clock.Advance(pipelineMakespan(s.cfg.PipelineWorkers, compDur, writeDur))
	}

	digest := sha256.Sum256(payload)
	man.Digest = hex.EncodeToString(digest[:])
	frame, err := encodeManifest(man)
	if err != nil {
		return fail(err)
	}
	if err := s.writeVerifiedMeta(clock, txdir+"/manifest", frame); err != nil {
		return fail(fmt.Errorf("store: writing manifest %s: %w", man.ID(), err))
	}

	// Publish: chunks first, then the manifest — the atomic commit point.
	for _, sc := range staged {
		if err := s.renameRetry(sc.tmp, sc.final); err != nil {
			return fail(fmt.Errorf("store: committing chunk for %s: %w", man.ID(), err))
		}
	}
	if err := s.renameRetry(txdir+"/manifest", s.manifestPath(job, seq)); err != nil {
		return fail(fmt.Errorf("store: committing manifest %s: %w", man.ID(), err))
	}
	s.mu.Unlock()

	// Write-through: the checkpoint is durable on the primary; now make it
	// durable on every attached replica before reporting success.
	for _, r := range s.replicaList() {
		if _, err := s.copyManifestTo(clock, man, r.st, r.nic, chunkData); err != nil {
			stats.Time = sw.Elapsed()
			return man, stats, fmt.Errorf("store: %s committed but replication to %s failed: %w",
				man.ID(), r.st.fs.Name(), err)
		}
	}
	stats.Time = sw.Elapsed()
	return man, stats, nil
}

// Get reconstructs a checkpoint payload. ref is either a manifest ID
// ("job@seq") or a bare job name, which selects the job's latest
// checkpoint. Every chunk is verified against its content address and the
// assembled payload against the manifest digest; a chunk that is missing
// or corrupt on the primary is transparently healed from the attached
// replicas (see AttachReplica and HealStats).
func (s *Store) Get(clock *vtime.Clock, ref string) ([]byte, Manifest, error) {
	man, err := s.Resolve(ref)
	if err != nil {
		return nil, Manifest{}, err
	}
	payload, err := s.assemble(clock, man, true)
	return payload, man, err
}

// GetSegment reconstructs one named segment of a checkpoint payload
// without assembling the rest: only the chunks the segment owns are read
// (healed from replicas as needed) and each is verified against its
// content address. The full-payload digest cannot be checked from a
// partial read — per-chunk SHA-256 verification stands in for it. This is
// what makes MPI partial restart read O(one rank) instead of O(world):
// segments partition the manifest's chunk list in order, so a rank's
// bytes are a consecutive chunk run.
func (s *Store) GetSegment(clock *vtime.Clock, ref, name string) ([]byte, Manifest, error) {
	man, err := s.Resolve(ref)
	if err != nil {
		return nil, Manifest{}, err
	}
	if len(man.Segments) == 0 {
		return nil, man, fmt.Errorf("store: %s: no segment map (whole-payload checkpoint)", man.ID())
	}
	first := 0
	for _, seg := range man.Segments {
		if seg.Name != name {
			first += seg.Chunks
			continue
		}
		if first+seg.Chunks > len(man.Chunks) {
			return nil, man, fmt.Errorf("store: %s: segment %q claims chunks beyond manifest", man.ID(), name)
		}
		payload := make([]byte, 0, seg.Size)
		for _, cref := range man.Chunks[first : first+seg.Chunks] {
			_, chunk, err := s.fetchBlob(clock, cref, true)
			if err != nil {
				return nil, man, err
			}
			payload = append(payload, chunk...)
		}
		if int64(len(payload)) != seg.Size {
			return nil, man, fmt.Errorf("store: %s: segment %q assembled to %d bytes, manifest says %d",
				man.ID(), name, len(payload), seg.Size)
		}
		return payload, man, nil
	}
	return nil, man, fmt.Errorf("store: %s: no segment named %q", man.ID(), name)
}

// assemble reads and verifies every chunk of man and checks the payload
// digest. With heal set, failed chunks fall back to the replicas.
func (s *Store) assemble(clock *vtime.Clock, man Manifest, heal bool) ([]byte, error) {
	payload := make([]byte, 0, man.Size)
	for _, cref := range man.Chunks {
		_, chunk, err := s.fetchBlob(clock, cref, heal)
		if err != nil {
			return nil, err
		}
		payload = append(payload, chunk...)
	}
	digest := sha256.Sum256(payload)
	if got := hex.EncodeToString(digest[:]); got != man.Digest {
		return nil, fmt.Errorf("store: %s: payload digest mismatch (manifest %s, assembled %s)",
			man.ID(), man.Digest[:12], got[:12])
	}
	return payload, nil
}

// verifyChunkAt loads one chunk's stored representation from fs and
// verifies it end to end: read (with EIO retries), decompress, content
// hash. It returns both the stored blob (for replication) and the
// uncompressed chunk.
func verifyChunkAt(clock *vtime.Clock, fs *proc.FS, path string, comp CompressModel, wantSum string, retries int) (blob, chunk []byte, err error) {
	blob, err = readRetry(clock, fs, path, retries)
	if err != nil {
		return nil, nil, fmt.Errorf("store: chunk %s missing: %w", wantSum[:12], err)
	}
	chunk, err = comp.decompress(clock, blob)
	if err != nil {
		return nil, nil, fmt.Errorf("store: chunk %s: %w", wantSum[:12], err)
	}
	sum := sha256.Sum256(chunk)
	if got := hex.EncodeToString(sum[:]); got != wantSum {
		return nil, nil, fmt.Errorf("store: chunk %s corrupt (content hashes to %s)", wantSum[:12], got[:12])
	}
	return blob, chunk, nil
}

// Resolve looks a ref up without reading chunk data. ref is "job@seq" or
// a bare job name (latest checkpoint of that job).
func (s *Store) Resolve(ref string) (Manifest, error) {
	if job, seqStr, ok := strings.Cut(ref, "@"); ok {
		seq, err := strconv.ParseUint(seqStr, 10, 64)
		if err != nil {
			return Manifest{}, fmt.Errorf("store: bad manifest ref %q: %w", ref, err)
		}
		return s.readManifestHealed(job, seq)
	}
	man, ok, err := s.latest(ref)
	if err != nil {
		return Manifest{}, err
	}
	if !ok {
		return Manifest{}, fmt.Errorf("store: job %q has no checkpoints", ref)
	}
	return man, nil
}

// Latest reports the newest decodable manifest of a job, if any. Torn or
// rotten manifest frames are skipped — an interrupted Put can never make
// a job unrestorable, only push Latest back one generation until Recover
// or Scrub deals with the bad frame.
func (s *Store) Latest(job string) (Manifest, bool, error) {
	return s.latest(job)
}

func (s *Store) latest(job string) (Manifest, bool, error) {
	seqs := s.jobSeqs(job)
	for i := len(seqs) - 1; i >= 0; i-- {
		m, err := s.readManifestHealed(job, seqs[i])
		if err == nil {
			return m, true, nil
		}
		if errors.Is(err, errCorruptManifest) {
			continue
		}
		return Manifest{}, false, err
	}
	return Manifest{}, false, nil
}

// jobSeqs lists the sequence numbers present (decodable or not) for job,
// ascending.
func (s *Store) jobSeqs(job string) []uint64 {
	prefix := fmt.Sprintf("%s/manifests/%s/", s.cfg.Prefix, job)
	var seqs []uint64
	for _, p := range s.fs.List() {
		if !strings.HasPrefix(p, prefix) {
			continue
		}
		if seq, err := strconv.ParseUint(strings.TrimPrefix(p, prefix), 10, 64); err == nil {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs
}

// listManifestFiles scans the manifest namespace and returns every
// (job, seq) with a file present, ordered by job then seq.
func (s *Store) listManifestFiles() []struct {
	Job string
	Seq uint64
} {
	prefix := s.cfg.Prefix + "/manifests/"
	var out []struct {
		Job string
		Seq uint64
	}
	for _, p := range s.fs.List() {
		if !strings.HasPrefix(p, prefix) {
			continue
		}
		rest := strings.TrimPrefix(p, prefix)
		job, seqStr, ok := strings.Cut(rest, "/")
		if !ok {
			continue
		}
		seq, err := strconv.ParseUint(seqStr, 10, 64)
		if err != nil {
			continue
		}
		out = append(out, struct {
			Job string
			Seq uint64
		}{job, seq})
	}
	return out
}

// readManifest loads and validates one manifest frame. Manifest reads are
// metadata operations and charge no virtual time (they are a few KB
// against multi-MB images; the latency is inside the chunk reads). A
// frame that fails to decode wraps errCorruptManifest so callers can tell
// integrity failures from infrastructure ones.
func (s *Store) readManifest(job string, seq uint64) (Manifest, error) {
	data, err := readRetry(vtime.NewClock(), s.fs, s.manifestPath(job, seq), s.cfg.WriteRetries)
	if err != nil {
		return Manifest{}, fmt.Errorf("store: manifest %s: %w", manifestID(job, seq), err)
	}
	m, err := decodeManifest(data)
	if err != nil {
		return Manifest{}, fmt.Errorf("store: manifest %s: %w: %v", manifestID(job, seq), errCorruptManifest, err)
	}
	return m, nil
}

// ManifestIssue reports one manifest file that could not be loaded.
type ManifestIssue struct {
	Job string
	Seq uint64
	Err error
}

// ID formats the issue's manifest reference ("job@seq").
func (i ManifestIssue) ID() string { return manifestID(i.Job, i.Seq) }

// Manifests lists every decodable manifest in the store, ordered by job
// then seq, plus one issue per manifest file that failed to load — a
// single torn frame is a finding for that manifest only, it cannot mask
// the rest of the store. Corrupt frames heal transparently from attached
// replicas; an issue is reported only when no good copy exists anywhere.
func (s *Store) Manifests() ([]Manifest, []ManifestIssue) {
	var out []Manifest
	var issues []ManifestIssue
	for _, mf := range s.listManifestFiles() {
		m, err := s.readManifestHealed(mf.Job, mf.Seq)
		if err != nil {
			issues = append(issues, ManifestIssue{Job: mf.Job, Seq: mf.Seq, Err: err})
			continue
		}
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Job != out[j].Job {
			return out[i].Job < out[j].Job
		}
		return out[i].Seq < out[j].Seq
	})
	return out, issues
}

// Jobs lists the jobs with at least one checkpoint, sorted.
func (s *Store) Jobs() []string {
	prefix := s.cfg.Prefix + "/manifests/"
	seen := map[string]bool{}
	for _, p := range s.fs.List() {
		if !strings.HasPrefix(p, prefix) {
			continue
		}
		if job, _, ok := strings.Cut(strings.TrimPrefix(p, prefix), "/"); ok {
			seen[job] = true
		}
	}
	out := make([]string, 0, len(seen))
	for j := range seen {
		out = append(out, j)
	}
	sort.Strings(out)
	return out
}

// chunkSums lists every chunk file present, keyed by content address.
func (s *Store) chunkSums() map[string]int64 {
	prefix := s.cfg.Prefix + "/chunks/"
	out := map[string]int64{}
	for _, p := range s.fs.List() {
		if !strings.HasPrefix(p, prefix) {
			continue
		}
		if n, err := s.fs.Size(p); err == nil {
			out[strings.TrimPrefix(p, prefix)] = n
		}
	}
	return out
}

// TotalStoredBytes reports the bytes the store occupies on its backing
// filesystem (chunks + manifests + any staged or quarantined leftovers).
func (s *Store) TotalStoredBytes() int64 {
	var n int64
	for _, p := range s.fs.List() {
		if strings.HasPrefix(p, s.cfg.Prefix+"/") {
			if sz, err := s.fs.Size(p); err == nil {
				n += sz
			}
		}
	}
	return n
}
