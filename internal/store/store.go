package store

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"checl/internal/proc"
	"checl/internal/vtime"
)

// Config parameterises a Store. The zero value selects sane defaults.
type Config struct {
	// Prefix is the directory-like path prefix inside the backing FS;
	// default "ckptstore".
	Prefix string
	// MinChunk/AvgChunk/MaxChunk are the content-defined chunking bounds
	// in bytes; AvgChunk must be a power of two. Defaults 4 KiB / 16 KiB /
	// 64 KiB.
	MinChunk, AvgChunk, MaxChunk int
	// Compression is the modelled compression stage; the zero value
	// selects flate.BestSpeed at 400 MB/s compress, 1.2 GB/s decompress.
	Compression CompressModel
}

func (c Config) withDefaults() Config {
	if c.Prefix == "" {
		c.Prefix = "ckptstore"
	}
	if c.MinChunk == 0 {
		c.MinChunk = 4 << 10
	}
	if c.AvgChunk == 0 {
		c.AvgChunk = 16 << 10
	}
	if c.MaxChunk == 0 {
		c.MaxChunk = 64 << 10
	}
	if c.Compression == (CompressModel{}) {
		c.Compression = defaultCompression()
	}
	return c
}

// Store is a content-addressed checkpoint store on one backing
// filesystem. Chunks live under <prefix>/chunks/<sha256>, shared by every
// job; manifests live under <prefix>/manifests/<job>/<seq>.
type Store struct {
	fs  *proc.FS
	cfg Config

	mu sync.Mutex // serialises Put/GC/Replicate sequencing
}

// New opens (or creates — the store is its own directory layout) a store
// on fs.
func New(fs *proc.FS, cfg Config) *Store {
	return &Store{fs: fs, cfg: cfg.withDefaults()}
}

// FS exposes the backing filesystem (tooling, tests).
func (s *Store) FS() *proc.FS { return s.fs }

func (s *Store) chunkPath(sum string) string {
	return s.cfg.Prefix + "/chunks/" + sum
}

func (s *Store) manifestPath(job string, seq uint64) string {
	return fmt.Sprintf("%s/manifests/%s/%08d", s.cfg.Prefix, job, seq)
}

// PutStats reports what one Put cost and how well it deduplicated.
type PutStats struct {
	Manifest    string // manifest ID ("job@seq")
	TotalBytes  int64  // payload size
	TotalChunks int
	NewChunks   int            // chunks not already present in the store
	NewBytes    int64          // uncompressed bytes of those new chunks
	StoredBytes int64          // bytes actually written for them (post-compression)
	Time        vtime.Duration // compress + write time charged to the clock
}

// DedupRatio is the fraction of the payload satisfied by chunks already
// in the store (1 = everything deduplicated, 0 = everything new).
func (p PutStats) DedupRatio() float64 {
	if p.TotalBytes == 0 {
		return 0
	}
	return 1 - float64(p.NewBytes)/float64(p.TotalBytes)
}

// Put stores one checkpoint payload for job: the payload is chunked,
// chunks already present (from any job) are skipped, new chunks are
// compressed and written, and a manifest linking to the job's previous
// checkpoint is recorded. Compression and write time are charged to
// clock. A full filesystem surfaces as *proc.ErrNoSpace.
func (s *Store) Put(clock *vtime.Clock, job string, payload []byte) (Manifest, PutStats, error) {
	if job == "" || strings.ContainsAny(job, "/@") {
		return Manifest{}, PutStats{}, fmt.Errorf("store: invalid job name %q", job)
	}
	s.mu.Lock()
	defer s.mu.Unlock()

	parent := ""
	seq := uint64(1)
	if last, ok, err := s.latest(job); err != nil {
		return Manifest{}, PutStats{}, err
	} else if ok {
		parent = last.ID()
		seq = last.Seq + 1
	}

	sw := vtime.NewStopwatch(clock)
	ck := chunker{min: s.cfg.MinChunk, avg: s.cfg.AvgChunk, max: s.cfg.MaxChunk}
	man := Manifest{
		Version: manifestVersion, Job: job, Seq: seq, Parent: parent,
		Size: int64(len(payload)), CreatedAt: clock.Now(),
	}
	stats := PutStats{Manifest: man.ID(), TotalBytes: int64(len(payload))}

	for _, chunk := range ck.split(payload) {
		sum256 := sha256.Sum256(chunk)
		sum := hex.EncodeToString(sum256[:])
		ref := ChunkRef{Sum: sum, Size: int64(len(chunk))}
		path := s.chunkPath(sum)
		if stored, err := s.fs.Size(path); err == nil {
			ref.Stored = stored
		} else {
			blob, cerr := s.cfg.Compression.compress(clock, chunk)
			if cerr != nil {
				return Manifest{}, stats, cerr
			}
			if werr := s.fs.WriteFile(clock, path, blob); werr != nil {
				return Manifest{}, stats, fmt.Errorf("store: writing chunk %s: %w", sum[:12], werr)
			}
			ref.Stored = int64(len(blob))
			stats.NewChunks++
			stats.NewBytes += int64(len(chunk))
			stats.StoredBytes += int64(len(blob))
		}
		man.Chunks = append(man.Chunks, ref)
		stats.TotalChunks++
	}

	digest := sha256.Sum256(payload)
	man.Digest = hex.EncodeToString(digest[:])
	frame, err := encodeManifest(man)
	if err != nil {
		return Manifest{}, stats, err
	}
	if err := s.fs.WriteFile(clock, s.manifestPath(job, seq), frame); err != nil {
		return Manifest{}, stats, fmt.Errorf("store: writing manifest %s: %w", man.ID(), err)
	}
	stats.Time = sw.Elapsed()
	return man, stats, nil
}

// Get reconstructs a checkpoint payload. ref is either a manifest ID
// ("job@seq") or a bare job name, which selects the job's latest
// checkpoint. Every chunk is verified against its content address and the
// assembled payload against the manifest digest.
func (s *Store) Get(clock *vtime.Clock, ref string) ([]byte, Manifest, error) {
	man, err := s.Resolve(ref)
	if err != nil {
		return nil, Manifest{}, err
	}
	payload := make([]byte, 0, man.Size)
	for _, cref := range man.Chunks {
		chunk, err := s.readChunk(clock, cref)
		if err != nil {
			return nil, man, err
		}
		payload = append(payload, chunk...)
	}
	digest := sha256.Sum256(payload)
	if got := hex.EncodeToString(digest[:]); got != man.Digest {
		return nil, man, fmt.Errorf("store: %s: payload digest mismatch (manifest %s, assembled %s)",
			man.ID(), man.Digest[:12], got[:12])
	}
	return payload, man, nil
}

// readChunk loads, decompresses and verifies one chunk.
func (s *Store) readChunk(clock *vtime.Clock, ref ChunkRef) ([]byte, error) {
	blob, err := s.fs.ReadFile(clock, s.chunkPath(ref.Sum))
	if err != nil {
		return nil, fmt.Errorf("store: chunk %s missing: %w", ref.Sum[:12], err)
	}
	chunk, err := s.cfg.Compression.decompress(clock, blob)
	if err != nil {
		return nil, fmt.Errorf("store: chunk %s: %w", ref.Sum[:12], err)
	}
	sum := sha256.Sum256(chunk)
	if got := hex.EncodeToString(sum[:]); got != ref.Sum {
		return nil, fmt.Errorf("store: chunk %s corrupt (content hashes to %s)", ref.Sum[:12], got[:12])
	}
	return chunk, nil
}

// Resolve looks a ref up without reading chunk data. ref is "job@seq" or
// a bare job name (latest checkpoint of that job).
func (s *Store) Resolve(ref string) (Manifest, error) {
	if job, seqStr, ok := strings.Cut(ref, "@"); ok {
		seq, err := strconv.ParseUint(seqStr, 10, 64)
		if err != nil {
			return Manifest{}, fmt.Errorf("store: bad manifest ref %q: %w", ref, err)
		}
		return s.readManifest(job, seq)
	}
	man, ok, err := s.latest(ref)
	if err != nil {
		return Manifest{}, err
	}
	if !ok {
		return Manifest{}, fmt.Errorf("store: job %q has no checkpoints", ref)
	}
	return man, nil
}

// Latest reports the newest manifest of a job, if any.
func (s *Store) Latest(job string) (Manifest, bool, error) {
	return s.latest(job)
}

func (s *Store) latest(job string) (Manifest, bool, error) {
	var best Manifest
	found := false
	prefix := fmt.Sprintf("%s/manifests/%s/", s.cfg.Prefix, job)
	for _, p := range s.fs.List() {
		if !strings.HasPrefix(p, prefix) {
			continue
		}
		seq, err := strconv.ParseUint(strings.TrimPrefix(p, prefix), 10, 64)
		if err != nil {
			continue
		}
		if !found || seq > best.Seq {
			m, err := s.readManifest(job, seq)
			if err != nil {
				return Manifest{}, false, err
			}
			best, found = m, true
		}
	}
	return best, found, nil
}

// readManifest loads and validates one manifest frame. Manifest reads are
// metadata operations and charge no virtual time (they are a few KB
// against multi-MB images; the latency is inside the chunk reads).
func (s *Store) readManifest(job string, seq uint64) (Manifest, error) {
	data, err := s.fs.ReadFile(vtime.NewClock(), s.manifestPath(job, seq))
	if err != nil {
		return Manifest{}, fmt.Errorf("store: manifest %s: %w", manifestID(job, seq), err)
	}
	m, err := decodeManifest(data)
	if err != nil {
		return Manifest{}, fmt.Errorf("store: manifest %s: %w", manifestID(job, seq), err)
	}
	return m, nil
}

// Manifests lists every manifest in the store, ordered by job then seq.
func (s *Store) Manifests() ([]Manifest, error) {
	prefix := s.cfg.Prefix + "/manifests/"
	var out []Manifest
	for _, p := range s.fs.List() {
		if !strings.HasPrefix(p, prefix) {
			continue
		}
		rest := strings.TrimPrefix(p, prefix)
		job, seqStr, ok := strings.Cut(rest, "/")
		if !ok {
			continue
		}
		seq, err := strconv.ParseUint(seqStr, 10, 64)
		if err != nil {
			continue
		}
		m, err := s.readManifest(job, seq)
		if err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Job != out[j].Job {
			return out[i].Job < out[j].Job
		}
		return out[i].Seq < out[j].Seq
	})
	return out, nil
}

// Jobs lists the jobs with at least one checkpoint, sorted.
func (s *Store) Jobs() []string {
	prefix := s.cfg.Prefix + "/manifests/"
	seen := map[string]bool{}
	for _, p := range s.fs.List() {
		if !strings.HasPrefix(p, prefix) {
			continue
		}
		if job, _, ok := strings.Cut(strings.TrimPrefix(p, prefix), "/"); ok {
			seen[job] = true
		}
	}
	out := make([]string, 0, len(seen))
	for j := range seen {
		out = append(out, j)
	}
	sort.Strings(out)
	return out
}

// chunkSums lists every chunk file present, keyed by content address.
func (s *Store) chunkSums() map[string]int64 {
	prefix := s.cfg.Prefix + "/chunks/"
	out := map[string]int64{}
	for _, p := range s.fs.List() {
		if !strings.HasPrefix(p, prefix) {
			continue
		}
		if n, err := s.fs.Size(p); err == nil {
			out[strings.TrimPrefix(p, prefix)] = n
		}
	}
	return out
}

// TotalStoredBytes reports the bytes the store occupies on its backing
// filesystem (chunks + manifests).
func (s *Store) TotalStoredBytes() int64 {
	var n int64
	for _, p := range s.fs.List() {
		if strings.HasPrefix(p, s.cfg.Prefix+"/") {
			if sz, err := s.fs.Size(p); err == nil {
				n += sz
			}
		}
	}
	return n
}
