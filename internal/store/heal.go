package store

// Self-healing and crash recovery. A store may have replica stores
// attached (AttachReplica): reads then fall back per chunk to the
// replicas on checksum mismatch or loss, re-writing the healed chunk to
// the primary, and Scrub repairs the whole store in one pass. Recover is
// the complementary crash-recovery sweep: it reclaims the staging area an
// interrupted Put/Replicate left behind, quarantines manifest frames that
// no longer decode, and removes unreferenced chunks, restoring the
// invariant that every byte of capacity is referenced by a good manifest.

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"checl/internal/hw"
	"checl/internal/vtime"
)

// HealStats is the shared per-store byte ledger every repair and copy
// path reports through — healing reads, Scrub passes, write-through
// repair, Replicate, and the fleet's shard reconstruction — so
// fleet-wide reports aggregate one shape instead of per-feature fields.
type HealStats struct {
	ChunksHealed      int   // chunks re-fetched from a replica
	BytesHealed       int64 // stored bytes of those chunks
	ManifestsHealed   int   // manifest frames restored from a replica or peer node
	WritebackFailures int   // healed reads whose primary re-write failed

	ChunksCopied int   // chunks moved to another store (Replicate)
	BytesCopied  int64 // stored bytes of those chunks

	ShardsHealed     int   // erasure shards reconstructed onto their home nodes
	ShardBytesHealed int64 // physical bytes of those shards
}

// Sub returns the difference h - prev (for per-pass deltas).
func (h HealStats) Sub(prev HealStats) HealStats {
	return HealStats{
		ChunksHealed:      h.ChunksHealed - prev.ChunksHealed,
		BytesHealed:       h.BytesHealed - prev.BytesHealed,
		ManifestsHealed:   h.ManifestsHealed - prev.ManifestsHealed,
		WritebackFailures: h.WritebackFailures - prev.WritebackFailures,
		ChunksCopied:      h.ChunksCopied - prev.ChunksCopied,
		BytesCopied:       h.BytesCopied - prev.BytesCopied,
		ShardsHealed:      h.ShardsHealed - prev.ShardsHealed,
		ShardBytesHealed:  h.ShardBytesHealed - prev.ShardBytesHealed,
	}
}

// Add returns the sum h + o (for fleet-wide aggregation across nodes).
func (h HealStats) Add(o HealStats) HealStats {
	return HealStats{
		ChunksHealed:      h.ChunksHealed + o.ChunksHealed,
		BytesHealed:       h.BytesHealed + o.BytesHealed,
		ManifestsHealed:   h.ManifestsHealed + o.ManifestsHealed,
		WritebackFailures: h.WritebackFailures + o.WritebackFailures,
		ChunksCopied:      h.ChunksCopied + o.ChunksCopied,
		BytesCopied:       h.BytesCopied + o.BytesCopied,
		ShardsHealed:      h.ShardsHealed + o.ShardsHealed,
		ShardBytesHealed:  h.ShardBytesHealed + o.ShardBytesHealed,
	}
}

// AttachReplica registers a replica store. Put writes committed
// checkpoints through to every attached replica, and reads/Scrub heal
// from them. nic, when positive, models the link to the replica and is
// charged per healed or written-through byte.
func (s *Store) AttachReplica(r *Store, nic hw.Bandwidth) {
	s.healMu.Lock()
	defer s.healMu.Unlock()
	s.replicas = append(s.replicas, replicaRef{st: r, nic: nic})
}

// Replicas reports how many replica stores are attached.
func (s *Store) Replicas() int {
	s.healMu.Lock()
	defer s.healMu.Unlock()
	return len(s.replicas)
}

// Heals reports the cumulative self-repair counters.
func (s *Store) Heals() HealStats {
	s.healMu.Lock()
	defer s.healMu.Unlock()
	return s.heals
}

func (s *Store) replicaList() []replicaRef {
	s.healMu.Lock()
	defer s.healMu.Unlock()
	out := make([]replicaRef, len(s.replicas))
	copy(out, s.replicas)
	return out
}

func (s *Store) recordChunkHeal(stored int64, writebackFailed bool) {
	s.healMu.Lock()
	defer s.healMu.Unlock()
	s.heals.ChunksHealed++
	s.heals.BytesHealed += stored
	if writebackFailed {
		s.heals.WritebackFailures++
	}
}

func (s *Store) recordManifestHeal() {
	s.healMu.Lock()
	defer s.healMu.Unlock()
	s.heals.ManifestsHealed++
}

// fetchBlob loads one chunk, verified end to end. When the primary copy
// is missing or corrupt and heal is set, each attached replica is tried
// in order; the first verified copy is charged across the replica link,
// re-written to the primary (best effort — a failed write-back degrades
// the next read, not this one) and counted in HealStats.
func (s *Store) fetchBlob(clock *vtime.Clock, ref ChunkRef, heal bool) (blob, chunk []byte, err error) {
	blob, chunk, err = verifyChunkAt(clock, s.fs, s.chunkPath(ref.Sum), s.cfg.Compression, ref.Sum, s.cfg.WriteRetries)
	if err == nil || !heal {
		return blob, chunk, err
	}
	primaryErr := err
	for _, r := range s.replicaList() {
		rblob, rchunk, rerr := verifyChunkAt(clock, r.st.fs, r.st.chunkPath(ref.Sum), r.st.cfg.Compression, ref.Sum, r.st.cfg.WriteRetries)
		if rerr != nil {
			continue
		}
		if r.nic > 0 {
			clock.Advance(r.nic.Transfer(int64(len(rblob))))
		}
		wbErr := s.writeVerified(clock, s.chunkPath(ref.Sum), rblob)
		s.recordChunkHeal(int64(len(rblob)), wbErr != nil)
		return rblob, rchunk, nil
	}
	return nil, nil, fmt.Errorf("%w (no replica could supply a good copy)", primaryErr)
}

// readManifestHealed is readManifest with the same replica fallback the
// chunk path has: a frame that is present but corrupt (torn write, bit
// rot) is re-read from the first replica holding a good copy, re-written
// to the primary best effort, and returned — so a rotted manifest frame
// costs a restore nothing when a replica is attached, instead of pushing
// the whole generation onto the skip list until the next Scrub.
func (s *Store) readManifestHealed(job string, seq uint64) (Manifest, error) {
	m, err := s.readManifest(job, seq)
	if err == nil || !errors.Is(err, errCorruptManifest) {
		return m, err
	}
	for _, r := range s.replicaList() {
		rm, rerr := r.st.readManifest(job, seq)
		if rerr != nil {
			continue
		}
		frame, ferr := encodeManifest(rm)
		if ferr != nil {
			continue
		}
		if werr := s.writeVerifiedMeta(vtime.NewClock(), s.manifestPath(job, seq), frame); werr == nil {
			s.recordManifestHeal()
		}
		return rm, nil
	}
	return m, err
}

// RecoverStats reports what one crash-recovery sweep reclaimed.
type RecoverStats struct {
	StagedFiles          int   // staged leftovers of interrupted operations
	StagedBytes          int64 // capacity those occupied
	OrphanChunks         int   // published chunks no manifest references
	OrphanBytes          int64
	ManifestsQuarantined int // undecodable frames moved to quarantine/
}

// Recover is the crash-recovery sweep a store should run at open (and may
// run any time — it is idempotent and cheap). It deletes everything under
// staging/ (an interrupted Put or Replicate never published those files),
// moves manifest frames that no longer decode into quarantine/ so Latest,
// GC and the restore walk only ever see good generations, and removes
// chunks no remaining manifest references — the capacity a failed Put
// would otherwise leak forever. After Recover the store is fsck-clean by
// construction, possibly minus quarantined generations.
func (s *Store) Recover() (RecoverStats, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var st RecoverStats

	for _, p := range s.fs.List() {
		if !strings.HasPrefix(p, s.stagingPrefix()) {
			continue
		}
		sz, _ := s.fs.Size(p)
		if err := s.removeRetry(p); err != nil {
			return st, fmt.Errorf("store: recover: %w", err)
		}
		st.StagedFiles++
		st.StagedBytes += sz
	}

	_, issues := s.Manifests()
	for _, iss := range issues {
		from := s.manifestPath(iss.Job, iss.Seq)
		to := fmt.Sprintf("%s%s-%08d", s.quarantinePrefix(), iss.Job, iss.Seq)
		if err := s.renameRetry(from, to); err != nil {
			return st, fmt.Errorf("store: recover: quarantining %s: %w", iss.ID(), err)
		}
		st.ManifestsQuarantined++
	}

	mans, _ := s.Manifests()
	referenced := map[string]bool{}
	for _, m := range mans {
		for _, c := range m.Chunks {
			referenced[c.Sum] = true
		}
	}
	for sum, size := range s.chunkSums() {
		if referenced[sum] {
			continue
		}
		if err := s.removeRetry(s.chunkPath(sum)); err != nil {
			return st, fmt.Errorf("store: recover: %w", err)
		}
		st.OrphanChunks++
		st.OrphanBytes += size
	}
	return st, nil
}

// ScrubReport is the result of one repair pass.
type ScrubReport struct {
	Manifests     int       // decodable manifests verified
	ChunksChecked int       // distinct chunks verified
	Healed        HealStats // what this pass repaired from replicas
	Quarantined   []string  // manifest IDs quarantined as unhealable
	Findings      []string  // remaining problems (every quarantine is one)
}

// OK reports whether the store is fully intact after the pass.
func (r ScrubReport) OK() bool { return len(r.Findings) == 0 }

// Scrub supersedes the detect-only Fsck with a repair pass: it heals
// undecodable manifest frames from the replicas, pulls back manifests the
// primary lost entirely (only within a job's surviving sequence range, so
// generations GC retired stay retired), verifies every chunk of every
// manifest healing corrupt or missing ones, and quarantines what it
// cannot heal so the store it leaves behind is trustworthy: after a Scrub
// with OK()==true, every manifest restores bit-identical.
func (s *Store) Scrub(clock *vtime.Clock) (ScrubReport, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var rep ScrubReport
	before := s.Heals()

	// Pass 1: manifest frames that are present but do not decode — heal
	// from the first replica that still has a good copy, else quarantine.
	_, issues := s.Manifests()
	for _, iss := range issues {
		healed := false
		for _, r := range s.replicaList() {
			m, err := r.st.readManifest(iss.Job, iss.Seq)
			if err != nil {
				continue
			}
			frame, err := encodeManifest(m)
			if err != nil {
				continue
			}
			if r.nic > 0 {
				clock.Advance(r.nic.Transfer(int64(len(frame))))
			}
			if err := s.writeVerifiedMeta(clock, s.manifestPath(iss.Job, iss.Seq), frame); err != nil {
				continue
			}
			s.recordManifestHeal()
			healed = true
			break
		}
		if !healed {
			to := fmt.Sprintf("%s%s-%08d", s.quarantinePrefix(), iss.Job, iss.Seq)
			if err := s.renameRetry(s.manifestPath(iss.Job, iss.Seq), to); err != nil {
				return rep, fmt.Errorf("store: scrub: quarantining %s: %w", iss.ID(), err)
			}
			rep.Quarantined = append(rep.Quarantined, iss.ID())
			rep.Findings = append(rep.Findings, fmt.Sprintf("%s: quarantined: %v", iss.ID(), iss.Err))
		}
	}

	// Pass 2: manifests the primary lost entirely but a replica kept.
	s.pullLostManifests(clock, &rep)

	// Pass 3: verify every chunk of every manifest, healing as we read.
	mans, _ := s.Manifests()
	chunkState := map[string]error{} // sum -> verification outcome
	for _, m := range mans {
		rep.Manifests++
		var bad []string
		for _, c := range m.Chunks {
			verr, seen := chunkState[c.Sum]
			if !seen {
				_, _, verr = s.fetchBlob(clock, c, true)
				chunkState[c.Sum] = verr
				rep.ChunksChecked++
			}
			if verr != nil {
				bad = append(bad, verr.Error())
			}
		}
		if len(bad) > 0 {
			to := fmt.Sprintf("%s%s-%08d", s.quarantinePrefix(), m.Job, m.Seq)
			if err := s.renameRetry(s.manifestPath(m.Job, m.Seq), to); err != nil {
				return rep, fmt.Errorf("store: scrub: quarantining %s: %w", m.ID(), err)
			}
			rep.Quarantined = append(rep.Quarantined, m.ID())
			rep.Findings = append(rep.Findings, fmt.Sprintf("%s: quarantined: %s", m.ID(), strings.Join(bad, "; ")))
		}
	}

	rep.Healed = s.Heals().Sub(before)
	return rep, nil
}

// pullLostManifests restores manifests a replica holds that the primary
// has no file for. Only sequence numbers inside or above the primary's
// surviving range for a job it already knows are pulled: a generation
// both GC'd away (below the range) or a whole job the primary never had
// stays gone, so Scrub can never undo retention policy.
func (s *Store) pullLostManifests(clock *vtime.Clock, rep *ScrubReport) {
	replicas := s.replicaList()
	if len(replicas) == 0 {
		return
	}
	primaryHas := map[string]map[uint64]bool{}
	minSeq := map[string]uint64{}
	for _, mf := range s.listManifestFiles() {
		if primaryHas[mf.Job] == nil {
			primaryHas[mf.Job] = map[uint64]bool{}
		}
		primaryHas[mf.Job][mf.Seq] = true
		if lo, ok := minSeq[mf.Job]; !ok || mf.Seq < lo {
			minSeq[mf.Job] = mf.Seq
		}
	}
	for _, r := range replicas {
		rmans, _ := r.st.Manifests()
		for _, m := range rmans {
			seqs, known := primaryHas[m.Job]
			if !known || seqs[m.Seq] || m.Seq < minSeq[m.Job] {
				continue
			}
			ok := true
			for _, c := range m.Chunks {
				if s.fs.Exists(s.chunkPath(c.Sum)) {
					continue
				}
				blob, _, err := verifyChunkAt(clock, r.st.fs, r.st.chunkPath(c.Sum), r.st.cfg.Compression, c.Sum, r.st.cfg.WriteRetries)
				if err != nil {
					rep.Findings = append(rep.Findings, fmt.Sprintf("%s: not pulled from replica: %v", m.ID(), err))
					ok = false
					break
				}
				if r.nic > 0 {
					clock.Advance(r.nic.Transfer(int64(len(blob))))
				}
				if err := s.writeVerified(clock, s.chunkPath(c.Sum), blob); err != nil {
					rep.Findings = append(rep.Findings, fmt.Sprintf("%s: not pulled from replica: %v", m.ID(), err))
					ok = false
					break
				}
				s.recordChunkHeal(int64(len(blob)), false)
			}
			if !ok {
				continue
			}
			frame, err := encodeManifest(m)
			if err != nil {
				continue
			}
			if r.nic > 0 {
				clock.Advance(r.nic.Transfer(int64(len(frame))))
			}
			if err := s.writeVerifiedMeta(clock, s.manifestPath(m.Job, m.Seq), frame); err != nil {
				rep.Findings = append(rep.Findings, fmt.Sprintf("%s: not pulled from replica: %v", m.ID(), err))
				continue
			}
			s.recordManifestHeal()
			seqs[m.Seq] = true
		}
	}
}

// SkippedCheckpoint records one generation a restore walk had to pass
// over and why.
type SkippedCheckpoint struct {
	ID     string
	Seq    uint64
	Reason string
}

// DegradedRestore is the typed report of a restore that could not use the
// requested (or newest) generation. It is an error when no generation
// restored at all (Restored == ""); when attached to a successful restore
// it documents which newer generations were skipped.
type DegradedRestore struct {
	Requested string              // the ref the caller asked for
	Restored  string              // the manifest that actually restored; "" if none
	Skipped   []SkippedCheckpoint // newer generations that could not restore
}

func (d *DegradedRestore) Error() string {
	if d.Restored == "" {
		return fmt.Sprintf("store: %s: no restorable generation (%d candidates failed)", d.Requested, len(d.Skipped))
	}
	return fmt.Sprintf("store: %s degraded to %s (%d newer generations unrestorable)",
		d.Requested, d.Restored, len(d.Skipped))
}

// Generations lists the restore fallback chain for ref: every decodable
// manifest of the job at or below the requested sequence, newest first,
// plus one SkippedCheckpoint per undecodable frame in that range.
func (s *Store) Generations(ref string) ([]Manifest, []SkippedCheckpoint, error) {
	job, ceiling := ref, uint64(1<<63)
	if j, seqStr, ok := strings.Cut(ref, "@"); ok {
		seq, err := strconv.ParseUint(seqStr, 10, 64)
		if err != nil {
			return nil, nil, fmt.Errorf("store: bad manifest ref %q: %w", ref, err)
		}
		job, ceiling = j, seq
	}
	seqs := s.jobSeqs(job)
	var mans []Manifest
	var skipped []SkippedCheckpoint
	for i := len(seqs) - 1; i >= 0; i-- {
		if seqs[i] > ceiling {
			continue
		}
		m, err := s.readManifestHealed(job, seqs[i])
		if err != nil {
			skipped = append(skipped, SkippedCheckpoint{ID: manifestID(job, seqs[i]), Seq: seqs[i], Reason: err.Error()})
			continue
		}
		mans = append(mans, m)
	}
	if len(mans) == 0 && len(skipped) == 0 {
		return nil, nil, fmt.Errorf("store: job %q has no checkpoints", job)
	}
	return mans, skipped, nil
}

// GetNewestRestorable walks ref's generation chain newest-first and
// returns the payload of the first generation that both assembles
// bit-identical (healing from replicas where it can) and passes the
// caller's validate hook — e.g. "does this payload decode as a process
// image". The returned *DegradedRestore is nil when the newest generation
// restored cleanly; otherwise it lists every newer generation that was
// skipped and why. When nothing restores, the DegradedRestore itself is
// returned as the error, so callers always get a typed outcome instead of
// a silent wrong payload.
func (s *Store) GetNewestRestorable(clock *vtime.Clock, ref string, validate func(payload []byte, man Manifest) error) ([]byte, Manifest, *DegradedRestore, error) {
	mans, skipped, err := s.Generations(ref)
	if err != nil {
		return nil, Manifest{}, nil, err
	}
	tried := append([]SkippedCheckpoint(nil), skipped...)
	for _, m := range mans {
		payload, gerr := s.assemble(clock, m, true)
		if gerr != nil {
			tried = append(tried, SkippedCheckpoint{ID: m.ID(), Seq: m.Seq, Reason: gerr.Error()})
			continue
		}
		if validate != nil {
			if verr := validate(payload, m); verr != nil {
				tried = append(tried, SkippedCheckpoint{ID: m.ID(), Seq: m.Seq, Reason: "validate: " + verr.Error()})
				continue
			}
		}
		var newer []SkippedCheckpoint
		for _, t := range tried {
			if t.Seq > m.Seq {
				newer = append(newer, t)
			}
		}
		sort.Slice(newer, func(i, j int) bool { return newer[i].Seq > newer[j].Seq })
		if len(newer) == 0 {
			return payload, m, nil, nil
		}
		return payload, m, &DegradedRestore{Requested: ref, Restored: m.ID(), Skipped: newer}, nil
	}
	sort.Slice(tried, func(i, j int) bool { return tried[i].Seq > tried[j].Seq })
	deg := &DegradedRestore{Requested: ref, Skipped: tried}
	return nil, Manifest{}, deg, deg
}
