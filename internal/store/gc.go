package store

import (
	"fmt"

	"checl/internal/vtime"
)

// GCStats reports what one garbage-collection pass removed.
type GCStats struct {
	ManifestsKept    int
	ManifestsDropped int
	ChunksKept       int
	ChunksDropped    int
	BytesReclaimed   int64 // stored bytes freed on the backing FS
}

// GC applies the retention policy — keep the last retain checkpoints of
// every job — then removes every chunk no kept manifest references.
// Chunks are reference-counted by the sweep itself, so a chunk shared by
// a dropped and a kept checkpoint survives.
func (s *Store) GC(retain int) (GCStats, error) {
	if retain < 1 {
		return GCStats{}, fmt.Errorf("store: GC retention must be >= 1 (got %d)", retain)
	}
	s.mu.Lock()
	defer s.mu.Unlock()

	mans, err := s.Manifests()
	if err != nil {
		return GCStats{}, err
	}
	// Manifests() orders by job then seq, so the last `retain` entries of
	// each job group are the newest.
	perJob := map[string][]Manifest{}
	for _, m := range mans {
		perJob[m.Job] = append(perJob[m.Job], m)
	}

	var st GCStats
	referenced := map[string]bool{}
	for _, group := range perJob {
		cut := len(group) - retain
		if cut < 0 {
			cut = 0
		}
		for _, m := range group[cut:] {
			st.ManifestsKept++
			for _, c := range m.Chunks {
				referenced[c.Sum] = true
			}
		}
		for _, m := range group[:cut] {
			if err := s.fs.Remove(s.manifestPath(m.Job, m.Seq)); err != nil {
				return st, fmt.Errorf("store: gc: %w", err)
			}
			st.ManifestsDropped++
		}
	}

	for sum, size := range s.chunkSums() {
		if referenced[sum] {
			st.ChunksKept++
			continue
		}
		if err := s.fs.Remove(s.chunkPath(sum)); err != nil {
			return st, fmt.Errorf("store: gc: %w", err)
		}
		st.ChunksDropped++
		st.BytesReclaimed += size
	}
	return st, nil
}

// FsckReport is the result of a store verification pass.
type FsckReport struct {
	Manifests     int
	ChunksChecked int // chunk references verified (shared chunks count once)
	Errors        []string
}

// OK reports whether the store verified clean.
func (r FsckReport) OK() bool { return len(r.Errors) == 0 }

// Fsck verifies the whole store: every manifest frame parses, every
// referenced chunk exists, decompresses, and hashes to its content
// address, and every manifest's assembled payload matches its digest.
// Read and decompression time is charged to clock. Fsck returns an error
// only for infrastructure failures; integrity findings land in the
// report.
func (s *Store) Fsck(clock *vtime.Clock) (FsckReport, error) {
	var rep FsckReport
	mans, err := s.Manifests()
	if err != nil {
		// A manifest that fails to decode is a finding, not an abort; but
		// Manifests() stops at the first bad frame, so report it.
		rep.Errors = append(rep.Errors, err.Error())
		return rep, nil
	}
	verified := map[string]bool{}
	for _, m := range mans {
		rep.Manifests++
		payload, _, err := s.Get(clock, m.ID())
		if err != nil {
			rep.Errors = append(rep.Errors, fmt.Sprintf("%s: %v", m.ID(), err))
			continue
		}
		if int64(len(payload)) != m.Size {
			rep.Errors = append(rep.Errors, fmt.Sprintf("%s: size %d, manifest says %d", m.ID(), len(payload), m.Size))
		}
		for _, c := range m.Chunks {
			if !verified[c.Sum] {
				verified[c.Sum] = true
				rep.ChunksChecked++
			}
		}
	}
	return rep, nil
}
