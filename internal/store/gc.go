package store

import (
	"fmt"

	"checl/internal/vtime"
)

// GCStats reports what one garbage-collection pass removed.
type GCStats struct {
	ManifestsKept    int
	ManifestsDropped int
	ChunksKept       int
	ChunksDropped    int
	BytesReclaimed   int64 // stored bytes freed on the backing FS
}

// GC applies the retention policy — keep the last retain checkpoints of
// every job — then removes every chunk no kept manifest references.
// Chunks are reference-counted by the sweep itself, so a chunk shared by
// a dropped and a kept checkpoint survives.
//
// GC refuses to run while any manifest file is unreadable: a torn frame
// hides which chunks its checkpoint references, and sweeping "unused"
// chunks in that state would destroy data a Scrub could still heal. Run
// Recover (quarantine) or Scrub (repair) first. The removal order is
// crash-consistent on its own — manifests drop before the chunk sweep,
// so an interrupted GC leaves at worst unreferenced chunks, which the
// next GC or Recover reclaims, never a manifest missing chunks.
func (s *Store) GC(retain int) (GCStats, error) {
	if retain < 1 {
		return GCStats{}, fmt.Errorf("store: GC retention must be >= 1 (got %d)", retain)
	}
	s.mu.Lock()
	defer s.mu.Unlock()

	mans, issues := s.Manifests()
	if len(issues) > 0 {
		return GCStats{}, fmt.Errorf("store: gc: %d unreadable manifest(s), run Recover or Scrub first; first: %s: %v",
			len(issues), issues[0].ID(), issues[0].Err)
	}
	// Manifests() orders by job then seq, so the last `retain` entries of
	// each job group are the newest.
	perJob := map[string][]Manifest{}
	for _, m := range mans {
		perJob[m.Job] = append(perJob[m.Job], m)
	}

	var st GCStats
	referenced := map[string]bool{}
	for _, group := range perJob {
		cut := len(group) - retain
		if cut < 0 {
			cut = 0
		}
		for _, m := range group[cut:] {
			st.ManifestsKept++
			for _, c := range m.Chunks {
				referenced[c.Sum] = true
			}
		}
		for _, m := range group[:cut] {
			if err := s.removeRetry(s.manifestPath(m.Job, m.Seq)); err != nil {
				return st, fmt.Errorf("store: gc: %w", err)
			}
			st.ManifestsDropped++
		}
	}

	for sum, size := range s.chunkSums() {
		if referenced[sum] {
			st.ChunksKept++
			continue
		}
		if err := s.removeRetry(s.chunkPath(sum)); err != nil {
			return st, fmt.Errorf("store: gc: %w", err)
		}
		st.ChunksDropped++
		st.BytesReclaimed += size
	}
	return st, nil
}

// FsckReport is the result of a store verification pass.
type FsckReport struct {
	Manifests     int
	ChunksChecked int // chunk references verified (shared chunks count once)
	Errors        []string
}

// OK reports whether the store verified clean.
func (r FsckReport) OK() bool { return len(r.Errors) == 0 }

// Fsck verifies the whole store without modifying it: every manifest
// frame parses (an undecodable frame is a finding for that manifest only,
// never an abort that masks the rest), every referenced chunk exists,
// decompresses, and hashes to its content address, and every manifest's
// assembled payload matches its digest. Unlike Get, Fsck never heals from
// replicas — it reports what the primary actually holds; Scrub is the
// repairing counterpart. Read and decompression time is charged to clock.
// Fsck returns an error only for infrastructure failures; integrity
// findings land in the report.
func (s *Store) Fsck(clock *vtime.Clock) (FsckReport, error) {
	var rep FsckReport
	mans, issues := s.Manifests()
	for _, iss := range issues {
		rep.Errors = append(rep.Errors, fmt.Sprintf("%s: %v", iss.ID(), iss.Err))
	}
	verified := map[string]bool{}
	for _, m := range mans {
		rep.Manifests++
		payload, err := s.assemble(clock, m, false)
		if err != nil {
			rep.Errors = append(rep.Errors, fmt.Sprintf("%s: %v", m.ID(), err))
			continue
		}
		if int64(len(payload)) != m.Size {
			rep.Errors = append(rep.Errors, fmt.Sprintf("%s: size %d, manifest says %d", m.ID(), len(payload), m.Size))
		}
		for _, c := range m.Chunks {
			if !verified[c.Sum] {
				verified[c.Sum] = true
				rep.ChunksChecked++
			}
		}
	}
	return rep, nil
}
