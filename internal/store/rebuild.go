package store

// Online repair for the fleet: ReplaceNode swaps a dead member for a
// fresh one under the same name (consistent hashing keeps every other
// placement untouched), Rebuild re-codes missing shards onto their home
// nodes with anti-thundering-herd pacing, Scrub verifies every node's
// shards in parallel and repairs what it finds, and GC applies the
// keep-last-N retention fleet-wide.

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"checl/internal/proc"
	"checl/internal/vtime"
)

// ReplaceNode swaps the named member's backing filesystem for a fresh
// one — the operational move after a node dies for good. The name stays,
// so the shard map is unchanged: every shard the dead node held is
// simply missing from the new one until Rebuild re-codes it. The new
// filesystem carries no node state; re-register it with the fault
// injector to keep it in the victim pool.
func (f *Fleet) ReplaceNode(name string, fs *proc.FS) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	n, ok := f.nodes[name]
	if !ok {
		return fmt.Errorf("store: fleet: no node named %q", name)
	}
	n.st = New(fs, f.cfg.Store)
	return nil
}

// RebuildStats reports what one Rebuild pass repaired.
type RebuildStats struct {
	ChunksScanned     int   // distinct chunks referenced by any manifest
	ShardsRebuilt     int   // shards re-coded onto their home nodes
	BytesRebuilt      int64 // physical bytes those shards occupy
	ManifestsRepaired int   // manifest copies re-published to nodes missing them
	ChunksUnrepaired  int   // chunks with fewer than k surviving shards
	Batches           int   // pacing batches the pass split into
	Time              vtime.Duration
}

// Rebuild restores full redundancy: every chunk referenced by any
// manifest gets its missing or corrupt shards reconstructed from the
// survivors and written back to their (alive) home nodes, and every
// alive node missing a manifest copy gets one. Run it after ReplaceNode
// or after an outage ends.
//
// Two anti-thundering-herd measures keep a rebuild from flattening the
// survivors: source reads rotate their starting shard per chunk, so the
// reconstruction load spreads across all k+m-1 remaining nodes instead
// of always draining the ring-order first k; and after every
// RebuildBatch chunks the rebuilder idles for RebuildPause, leaving the
// disks and links headroom for foreground checkpoint traffic. Fault
// injection is suspended for the duration — repair must converge, not
// chase its own tail.
func (f *Fleet) Rebuild(clock *vtime.Clock) (RebuildStats, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.inj != nil {
		f.inj.Suspend()
		defer f.inj.Resume()
	}
	var st RebuildStats
	sw := vtime.NewStopwatch(clock)

	mans, _ := f.Manifests()
	st.ManifestsRepaired = f.syncManifests(clock, mans)

	seen := map[string]bool{}
	var refs []ChunkRef
	for _, m := range mans {
		for _, c := range m.Chunks {
			if !seen[c.Sum] {
				seen[c.Sum] = true
				refs = append(refs, c)
			}
		}
	}
	st.ChunksScanned = len(refs)

	inBatch := 0
	for i, ref := range refs {
		rebuilt, bytes, err := f.healChunk(clock, ref.Sum, i)
		if err != nil {
			st.ChunksUnrepaired++
			continue
		}
		st.ShardsRebuilt += rebuilt
		st.BytesRebuilt += bytes
		if rebuilt > 0 {
			inBatch++
			if inBatch >= f.cfg.RebuildBatch {
				clock.Advance(f.cfg.RebuildPause)
				st.Batches++
				inBatch = 0
			}
		}
	}
	if inBatch > 0 {
		st.Batches++
	}
	st.Time = sw.Elapsed()
	if st.ChunksUnrepaired > 0 {
		return st, fmt.Errorf("store: fleet: rebuild left %d of %d chunks unrepaired (fewer than %d shards survive)",
			st.ChunksUnrepaired, st.ChunksScanned, f.cfg.DataShards)
	}
	return st, nil
}

// healChunk brings one chunk back to full redundancy: read every shard
// (rotating the read order by rot), reconstruct the missing or corrupt
// ones, and write them to their alive home nodes. Reports how many
// shards were written and their physical bytes. An error means the chunk
// is beyond repair (fewer than k shards survive).
func (f *Fleet) healChunk(clock *vtime.Clock, sum string, rot int) (int, int64, error) {
	k, m := f.cfg.DataShards, f.cfg.ParityShards
	have, origLen, bad := f.shardStates(clock, sum, rot, false)
	if len(bad) == 0 {
		return 0, 0, nil
	}
	if len(have) < k {
		return 0, 0, fmt.Errorf("store: fleet: chunk %s lost: %d of %d shards survive", sum[:12], len(have), k+m)
	}
	lost := 0
	for i := 0; i < k; i++ {
		if _, ok := have[i]; !ok {
			lost++
		}
	}
	if lost > 0 {
		clock.Advance(f.cfg.Coding.ReconstructTime(int64(origLen), k, lost))
	}
	shards, err := f.coder.Reconstruct(have)
	if err != nil {
		return 0, 0, fmt.Errorf("store: fleet: chunk %s: %w", sum[:12], err)
	}
	nodes := f.placement(sum)
	rebuilt, bytes := 0, int64(0)
	var diskMax vtime.Duration
	var linkBytes int64
	for _, i := range bad {
		n := nodes[i]
		if !n.alive() {
			continue
		}
		frame := encodeShard(i, k, m, origLen, shards[i])
		sc := vtime.NewClock()
		if werr := n.st.writeVerified(sc, f.shardPath(n, sum, i), frame); werr != nil {
			continue
		}
		if d := sc.Now().Sub(0); d > diskMax {
			diskMax = d
		}
		linkBytes += int64(len(frame))
		rebuilt++
		bytes += int64(len(frame))
	}
	clock.Advance(f.cfg.Link.Transfer(linkBytes) + diskMax)
	if rebuilt > 0 {
		f.recordShardHeal(rebuilt, bytes)
	}
	return rebuilt, bytes, nil
}

// syncManifests re-publishes every manifest to alive nodes missing a
// decodable copy. Returns how many copies were written.
func (f *Fleet) syncManifests(clock *vtime.Clock, mans []Manifest) int {
	repaired := 0
	for _, m := range mans {
		frame, err := encodeManifest(m)
		if err != nil {
			continue
		}
		for _, name := range f.names {
			n := f.nodes[name]
			if !n.alive() {
				continue
			}
			if _, rerr := n.st.readManifest(m.Job, m.Seq); rerr == nil {
				continue
			}
			if werr := n.st.writeVerifiedMeta(clock, n.st.manifestPath(m.Job, m.Seq), frame); werr == nil {
				repaired++
			}
		}
	}
	if repaired > 0 {
		f.recordManifestHeal(repaired)
	}
	return repaired
}

// NodeScrubProgress is one node's share of a fleet scrub.
type NodeScrubProgress struct {
	ShardsChecked int
	ShardsBad     int // failed the frame digest or did not belong
	Down          bool
	Elapsed       vtime.Duration
}

// FleetScrubReport is the result of one fleet-wide repair pass.
type FleetScrubReport struct {
	Manifests       int // distinct manifests verified
	ChunksChecked   int // distinct referenced chunks verified
	ShardsRebuilt   int
	ManifestsHealed int
	PerNode         map[string]NodeScrubProgress
	Quarantined     []string // manifest IDs quarantined as unrestorable
	Findings        []string
}

// OK reports whether the fleet is fully intact after the pass.
func (r FleetScrubReport) OK() bool { return len(r.Findings) == 0 }

// Scrub is the fleet-wide repair pass. Every alive node verifies its own
// shard files in parallel — each worker runs on a scratch clock and the
// caller is charged the makespan, which is what a fleet of independent
// nodes actually costs — deleting frames that fail their digest so the
// repair pass sees them as plain erasures. Then every referenced chunk
// is brought back to full redundancy and every manifest re-published to
// nodes missing it. Chunks beyond repair quarantine the manifests that
// reference them, same contract as Store.Scrub: after an OK() pass,
// everything still listed restores bit-identical.
func (f *Fleet) Scrub(clock *vtime.Clock) (FleetScrubReport, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.inj != nil {
		f.inj.Suspend()
		defer f.inj.Resume()
	}
	rep := FleetScrubReport{PerNode: map[string]NodeScrubProgress{}}

	mans, issues := f.Manifests()
	for _, iss := range issues {
		rep.Findings = append(rep.Findings, fmt.Sprintf("%s: no decodable copy: %v", iss.ID(), iss.Err))
	}
	rep.Manifests = len(mans)
	referenced := map[string]bool{}
	for _, m := range mans {
		for _, c := range m.Chunks {
			referenced[c.Sum] = true
		}
	}

	// Pass 1: per-node shard verification, all nodes in parallel.
	var wg sync.WaitGroup
	var repMu sync.Mutex
	var makespan vtime.Duration
	for _, name := range f.names {
		n := f.nodes[name]
		if !n.alive() {
			rep.PerNode[name] = NodeScrubProgress{Down: true}
			continue
		}
		wg.Add(1)
		go func(name string, n *fleetNode) {
			defer wg.Done()
			sc := vtime.NewClock()
			var prog NodeScrubProgress
			prefix := n.st.cfg.Prefix + "/shards/"
			for _, p := range n.st.fs.List() {
				if !strings.HasPrefix(p, prefix) {
					continue
				}
				sum, idxStr, ok := strings.Cut(strings.TrimPrefix(p, prefix), "/")
				if !ok {
					continue
				}
				idx, perr := strconv.Atoi(idxStr)
				if perr != nil {
					continue
				}
				prog.ShardsChecked++
				frame, rerr := readRetry(sc, n.st.fs, p, f.cfg.Store.WriteRetries)
				if rerr == nil {
					gotIdx, _, _, _, _, derr := decodeShard(frame)
					if derr == nil && gotIdx == idx && referenced[sum] {
						continue
					}
				}
				// Rotten, torn, mislabelled or unreferenced: delete. The
				// repair pass reconstructs referenced ones; unreferenced
				// ones are orphans an interrupted Put left behind.
				prog.ShardsBad++
				_ = n.st.removeRetry(p)
			}
			prog.Elapsed = sc.Now().Sub(0)
			repMu.Lock()
			rep.PerNode[name] = prog
			if prog.Elapsed > makespan {
				makespan = prog.Elapsed
			}
			repMu.Unlock()
		}(name, n)
	}
	wg.Wait()
	clock.Advance(makespan)

	// Pass 2: bring every referenced chunk back to full redundancy.
	unrepairable := map[string]bool{}
	sums := make([]string, 0, len(referenced))
	for sum := range referenced {
		sums = append(sums, sum)
	}
	sort.Strings(sums)
	for i, sum := range sums {
		rep.ChunksChecked++
		rebuilt, _, err := f.healChunk(clock, sum, i)
		if err != nil {
			unrepairable[sum] = true
			continue
		}
		rep.ShardsRebuilt += rebuilt
	}

	// Pass 3: manifests referencing unrepairable chunks are quarantined on
	// every alive node; the rest re-publish to nodes missing them.
	var goodMans []Manifest
	for _, m := range mans {
		lost := ""
		for _, c := range m.Chunks {
			if unrepairable[c.Sum] {
				lost = c.Sum
				break
			}
		}
		if lost == "" {
			goodMans = append(goodMans, m)
			continue
		}
		for _, name := range f.names {
			n := f.nodes[name]
			if !n.alive() || !n.st.fs.Exists(n.st.manifestPath(m.Job, m.Seq)) {
				continue
			}
			to := fmt.Sprintf("%s%s-%08d", n.st.quarantinePrefix(), m.Job, m.Seq)
			if err := n.st.renameRetry(n.st.manifestPath(m.Job, m.Seq), to); err != nil {
				return rep, fmt.Errorf("store: fleet: scrub: quarantining %s on %s: %w", m.ID(), name, err)
			}
		}
		rep.Quarantined = append(rep.Quarantined, m.ID())
		rep.Findings = append(rep.Findings, fmt.Sprintf("%s: quarantined: chunk %s beyond repair", m.ID(), lost[:12]))
	}
	rep.ManifestsHealed = f.syncManifests(clock, goodMans)
	return rep, nil
}

// GC applies keep-last-N retention fleet-wide: manifests beyond the
// retention drop from every node, then every node sweeps shards of
// chunks no kept manifest references — including orphans an interrupted
// Put left at their content-addressed paths. Same refusal rule as
// Store.GC: unresolvable manifests block the sweep, because their chunk
// references are unknown.
func (f *Fleet) GC(retain int) (GCStats, error) {
	if retain < 1 {
		return GCStats{}, fmt.Errorf("store: GC retention must be >= 1 (got %d)", retain)
	}
	f.mu.Lock()
	defer f.mu.Unlock()

	mans, issues := f.Manifests()
	if len(issues) > 0 {
		return GCStats{}, fmt.Errorf("store: gc: %d unresolvable manifest(s), run Scrub first; first: %s: %v",
			len(issues), issues[0].ID(), issues[0].Err)
	}
	perJob := map[string][]Manifest{}
	for _, m := range mans {
		perJob[m.Job] = append(perJob[m.Job], m)
	}

	var st GCStats
	referenced := map[string]bool{}
	for _, group := range perJob {
		cut := len(group) - retain
		if cut < 0 {
			cut = 0
		}
		for _, m := range group[cut:] {
			st.ManifestsKept++
			for _, c := range m.Chunks {
				referenced[c.Sum] = true
			}
		}
		for _, m := range group[:cut] {
			for _, name := range f.names {
				n := f.nodes[name]
				if !n.alive() || !n.st.fs.Exists(n.st.manifestPath(m.Job, m.Seq)) {
					continue
				}
				if err := n.st.removeRetry(n.st.manifestPath(m.Job, m.Seq)); err != nil {
					return st, fmt.Errorf("store: gc: %w", err)
				}
			}
			st.ManifestsDropped++
		}
	}

	keptSums := map[string]bool{}
	droppedSums := map[string]bool{}
	for _, name := range f.names {
		n := f.nodes[name]
		if !n.alive() {
			continue
		}
		prefix := n.st.cfg.Prefix + "/shards/"
		for _, p := range n.st.fs.List() {
			if !strings.HasPrefix(p, prefix) {
				continue
			}
			sum, _, ok := strings.Cut(strings.TrimPrefix(p, prefix), "/")
			if !ok {
				continue
			}
			if referenced[sum] {
				keptSums[sum] = true
				continue
			}
			sz, _ := n.st.fs.Size(p)
			if err := n.st.removeRetry(p); err != nil {
				return st, fmt.Errorf("store: gc: %w", err)
			}
			droppedSums[sum] = true
			st.BytesReclaimed += sz
		}
	}
	st.ChunksKept = len(keptSums)
	st.ChunksDropped = len(droppedSums)
	return st, nil
}
