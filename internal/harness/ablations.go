package harness

import (
	"fmt"
	"io"
	"strings"

	"checl/internal/apps"
	"checl/internal/core"
	"checl/internal/hw"
	"checl/internal/ipc"
	"checl/internal/ocl"
	"checl/internal/proc"
	"checl/internal/store"
	"checl/internal/vtime"
)

// Ablations of the design decisions listed in DESIGN.md §5, runnable from
// cmd/checl-bench ("ablations") and mirrored by the root benchmarks.

// AblationVariant is one measured arm of an ablation.
type AblationVariant struct {
	Name   string
	Metric string
	Value  vtime.Duration
}

// AblationResult is one complete ablation.
type AblationResult struct {
	Name     string
	Claim    string
	Variants []AblationVariant
}

// Ablations runs all eight ablations and returns their measurements.
func Ablations(scale float64) ([]AblationResult, error) {
	var out []AblationResult

	mode, err := ablationCheckpointMode()
	if err != nil {
		return nil, err
	}
	out = append(out, mode)

	destr, err := ablationDestructive(scale)
	if err != nil {
		return nil, err
	}
	out = append(out, destr)

	inc, err := ablationIncremental(scale)
	if err != nil {
		return nil, err
	}
	out = append(out, inc)

	storage, err := ablationStorage(scale)
	if err != nil {
		return nil, err
	}
	out = append(out, storage)

	cas, err := ablationStore(scale)
	if err != nil {
		return nil, err
	}
	out = append(out, cas)

	crash, err := ablationProxyCrash(scale)
	if err != nil {
		return nil, err
	}
	out = append(out, crash)

	disk, err := ablationDiskFaults(scale)
	if err != nil {
		return nil, err
	}
	out = append(out, disk)

	spec, err := ablationSpeculative(scale)
	if err != nil {
		return nil, err
	}
	out = append(out, spec)
	return out, nil
}

// runAppUnderCheCL attaches CheCL on a fresh NVIDIA node and runs appName.
func runAppUnderCheCL(appName string, scale float64, opts core.Options) (*proc.Node, *core.CheCL, error) {
	node := proc.NewNode("ablation", hw.TableISpec(), ocl.NVIDIA())
	p := node.Spawn(appName)
	c, err := core.Attach(p, opts)
	if err != nil {
		return nil, nil, err
	}
	app, ok := apps.ByName(appName)
	if !ok {
		c.Detach()
		return nil, nil, fmt.Errorf("harness: unknown app %q", appName)
	}
	env := &apps.Env{API: c, DeviceMask: ocl.DeviceTypeGPU, Scale: scale}
	if _, err := app.Run(env); err != nil {
		c.Detach()
		return nil, nil, err
	}
	return node, c, nil
}

// ablationCheckpointMode: immediate vs delayed with a 16 MB transfer in
// flight when the signal arrives (§III-C).
func ablationCheckpointMode() (AblationResult, error) {
	res := AblationResult{
		Name:  "checkpoint-mode",
		Claim: "delayed mode avoids the forced synchronisation of in-flight commands",
	}
	for _, mode := range []core.Mode{core.Immediate, core.Delayed} {
		node := proc.NewNode("ablation", hw.TableISpec(), ocl.NVIDIA())
		p := node.Spawn("async-writer")
		c, err := core.Attach(p, core.Options{
			Mode: mode, CkptFS: node.RAMDisk, CkptPath: "mode.ckpt",
		})
		if err != nil {
			return res, err
		}
		plats, _ := c.GetPlatformIDs()
		devs, _ := c.GetDeviceIDs(plats[0], ocl.DeviceTypeGPU)
		ctx, _ := c.CreateContext(devs)
		q, _ := c.CreateCommandQueue(ctx, devs[0], 0)
		m, err := c.CreateBuffer(ctx, ocl.MemReadWrite, 16<<20, nil)
		if err != nil {
			c.Detach()
			return res, err
		}
		if _, err := c.EnqueueWriteBuffer(q, m, false, 0, make([]byte, 16<<20), nil); err != nil {
			c.Detach()
			return res, err
		}
		p.Signal(proc.SIGUSR1)
		if _, err := c.GetDeviceInfo(devs[0]); err != nil {
			c.Detach()
			return res, err
		}
		if err := c.Finish(q); err != nil {
			c.Detach()
			return res, err
		}
		st := c.LastCheckpoint()
		if st == nil {
			c.Detach()
			return res, fmt.Errorf("harness: %s-mode checkpoint did not fire", mode)
		}
		res.Variants = append(res.Variants, AblationVariant{
			Name: mode.String(), Metric: "sync phase", Value: st.Phases.Sync,
		})
		c.Detach()
	}
	return res, nil
}

// ablationDestructive: API-proxy (keep objects) vs CheCUDA-style
// delete-and-recreate (§IV-B).
func ablationDestructive(scale float64) (AblationResult, error) {
	res := AblationResult{
		Name:  "destructive-checkpoint",
		Claim: "keeping OpenCL objects alive makes postprocessing negligible (vs CheCUDA)",
	}
	for _, destructive := range []bool{false, true} {
		name := "api-proxy"
		if destructive {
			name = "checuda-destructive"
		}
		node, c, err := runAppUnderCheCL("oclMatrixMul", scale, core.Options{Destructive: destructive})
		if err != nil {
			return res, err
		}
		st, err := c.Checkpoint(node.LocalDisk, "d.ckpt")
		if err != nil {
			c.Detach()
			return res, err
		}
		res.Variants = append(res.Variants, AblationVariant{
			Name: name, Metric: "postprocess phase", Value: st.Phases.Postprocess,
		})
		c.Detach()
	}
	return res, nil
}

// ablationIncremental: full vs incremental object checkpointing (the
// §III-D future-work feature).
func ablationIncremental(scale float64) (AblationResult, error) {
	res := AblationResult{
		Name:  "incremental-checkpoint",
		Claim: "a second checkpoint with no intervening kernel stages nothing",
	}
	for _, inc := range []bool{false, true} {
		name := "full"
		if inc {
			name = "incremental"
		}
		node, c, err := runAppUnderCheCL("oclVectorAdd", scale, core.Options{Incremental: inc})
		if err != nil {
			return res, err
		}
		if _, err := c.Checkpoint(node.LocalDisk, "i1.ckpt"); err != nil {
			c.Detach()
			return res, err
		}
		st, err := c.Checkpoint(node.LocalDisk, "i2.ckpt")
		if err != nil {
			c.Detach()
			return res, err
		}
		res.Variants = append(res.Variants, AblationVariant{
			Name: name, Metric: "2nd-checkpoint preprocess", Value: st.Phases.Preprocess,
		})
		c.Detach()
	}

	// Drain concurrency: the same all-dirty first checkpoint staged
	// serially vs over parallel device-to-host streams (ephemeral queues
	// inside one batched IPC frame).
	for _, workers := range []int{1, 8} {
		name := "serial-drain"
		if workers > 1 {
			name = fmt.Sprintf("parallel-drain-x%d", workers)
		}
		node, c, err := runAppUnderCheCL("oclVectorAdd", scale*4,
			core.Options{Incremental: true, DrainWorkers: workers})
		if err != nil {
			return res, err
		}
		st, err := c.Checkpoint(node.LocalDisk, "ip.ckpt")
		if err != nil {
			c.Detach()
			return res, err
		}
		res.Variants = append(res.Variants, AblationVariant{
			Name: name, Metric: "1st-checkpoint preprocess", Value: st.Phases.Preprocess,
		})
		c.Detach()
	}
	return res, nil
}

// ablationStorage: checkpoint target local disk vs NFS vs RAM disk
// (§IV-C: the RAM disk enables cheap runtime processor selection).
func ablationStorage(scale float64) (AblationResult, error) {
	res := AblationResult{
		Name:  "checkpoint-storage",
		Claim: "RAM-disk checkpoints are orders of magnitude cheaper than disk/NFS",
	}
	type target struct {
		name string
		fs   func(n *proc.Node) *proc.FS
	}
	targets := []target{
		{"local-disk", func(n *proc.Node) *proc.FS { return n.LocalDisk }},
		{"nfs", func(n *proc.Node) *proc.FS {
			if n.NFS == nil {
				n.NFS = proc.NewFS("nfs", n.Spec.NFS)
			}
			return n.NFS
		}},
		{"ramdisk", func(n *proc.Node) *proc.FS { return n.RAMDisk }},
	}
	for _, tgt := range targets {
		node, c, err := runAppUnderCheCL("oclFDTD3d", scale, core.Options{})
		if err != nil {
			return res, err
		}
		st, err := c.Checkpoint(tgt.fs(node), "s.ckpt")
		if err != nil {
			c.Detach()
			return res, err
		}
		res.Variants = append(res.Variants, AblationVariant{
			Name: tgt.name, Metric: "write phase", Value: st.Phases.Write,
		})
		c.Detach()
	}
	return res, nil
}

// ablationStore: flat NFS checkpoint files vs the content-addressed
// checkpoint store, on the phase the store changes — the 2nd checkpoint's
// write (dedup skips unchanged chunks) — plus restart read time from the
// NFS store vs a local-disk replica.
func ablationStore(scale float64) (AblationResult, error) {
	res := AblationResult{
		Name:  "checkpoint-store",
		Claim: "chunk dedup makes repeat checkpoints cheap; replicas make restarts local",
	}

	// Both arms run incremental so re-staging does not churn the object
	// database between otherwise-identical checkpoints; the store arm also
	// chunks finely so metadata edits dirty little data. The problem is
	// scaled up so image bandwidth dominates NFS's fixed per-op latency —
	// dedup saves bandwidth, not the manifest write's open/close cost.
	scale *= 8
	chunks := store.Config{MinChunk: 1 << 10, AvgChunk: 4 << 10, MaxChunk: 16 << 10}

	// Arm 1: flat files — the 2nd checkpoint rewrites the full image.
	node, c, err := runAppUnderCheCL("oclVectorAdd", scale, core.Options{Incremental: true})
	if err != nil {
		return res, err
	}
	nfs := proc.NewFS("nfs", node.Spec.NFS)
	if _, err := c.Checkpoint(nfs, "f1.ckpt"); err != nil {
		c.Detach()
		return res, err
	}
	st, err := c.Checkpoint(nfs, "f2.ckpt")
	if err != nil {
		c.Detach()
		return res, err
	}
	res.Variants = append(res.Variants, AblationVariant{
		Name: "flat-nfs", Metric: "2nd-checkpoint write", Value: st.Phases.Write,
	})
	c.Detach()

	// Arm 2: store — the 2nd checkpoint's chunks all deduplicate.
	node, c, err = runAppUnderCheCL("oclVectorAdd", scale, core.Options{Incremental: true})
	if err != nil {
		return res, err
	}
	defer c.Detach()
	nfsStore := store.New(proc.NewFS("nfs", node.Spec.NFS), chunks)
	if _, err := c.CheckpointToStore(nfsStore, "abl"); err != nil {
		return res, err
	}
	st, err = c.CheckpointToStore(nfsStore, "abl")
	if err != nil {
		return res, err
	}
	res.Variants = append(res.Variants, AblationVariant{
		Name: "store-nfs", Metric: "2nd-checkpoint write", Value: st.Phases.Write,
	})

	// Restart arms: read the checkpoint back from the NFS store vs from a
	// replica on the node's local disk.
	rc, rst, err := core.RestoreFromStore(node, nfsStore, "abl", core.Options{})
	if err != nil {
		return res, err
	}
	rc.Detach()
	res.Variants = append(res.Variants, AblationVariant{
		Name: "restore-nfs-store", Metric: "image read", Value: rst.ReadTime,
	})

	localStore := store.New(node.LocalDisk, chunks)
	if _, _, err := nfsStore.Replicate(node.Clock, "abl", localStore, node.Spec.Inter.NIC); err != nil {
		return res, err
	}
	rc, rst, err = core.RestoreFromStore(node, localStore, "abl", core.Options{})
	if err != nil {
		return res, err
	}
	rc.Detach()
	res.Variants = append(res.Variants, AblationVariant{
		Name: "restore-local-replica", Metric: "image read", Value: rst.ReadTime,
	})
	return res, nil
}

// ablationProxyCrash: the fault-tolerance arms. A fault-free run with no
// shadowing is the baseline; shadow-full shows the per-launch readback
// overhead that makes failover lossless; the crash arm runs the same app
// while a seeded plan crashes the proxy process every N calls, with
// AutoFailover absorbing each crash. The last variant isolates the pure
// recovery cost (respawn + rebind + re-upload) out of the crash arm.
func ablationProxyCrash(scale float64) (AblationResult, error) {
	res := AblationResult{
		Name:  "proxy-crash",
		Claim: "failover bounds a proxy crash to rebind + re-upload; shadow-full is the price of losing nothing",
	}
	run := func(opts core.Options) (vtime.Duration, core.FailoverStats, error) {
		node := proc.NewNode("ablation", hw.TableISpec(), ocl.NVIDIA())
		p := node.Spawn("oclMatrixMul")
		c, err := core.Attach(p, opts)
		if err != nil {
			return 0, core.FailoverStats{}, err
		}
		defer c.Detach()
		app, _ := apps.ByName("oclMatrixMul")
		sw := vtime.NewStopwatch(node.Clock)
		env := &apps.Env{API: c, DeviceMask: ocl.DeviceTypeGPU, Scale: scale}
		if _, err := app.Run(env); err != nil {
			return 0, core.FailoverStats{}, err
		}
		return sw.Elapsed(), c.FailoverStats(), nil
	}

	base, _, err := run(core.Options{})
	if err != nil {
		return res, err
	}
	res.Variants = append(res.Variants, AblationVariant{
		Name: "no-fault", Metric: "app runtime", Value: base,
	})

	shadowed, _, err := run(core.Options{Shadow: core.ShadowFull})
	if err != nil {
		return res, err
	}
	res.Variants = append(res.Variants, AblationVariant{
		Name: "shadow-full", Metric: "app runtime", Value: shadowed,
	})

	const everyN = 6
	inj := ipc.NewFaultInjector(ipc.FaultPlan{
		Seed:      2026,
		EveryN:    everyN,
		SkipFirst: 5,
		Kinds:     []ipc.FaultKind{ipc.FaultCrashServer},
	})
	crashed, fs, err := run(core.Options{
		AutoFailover: true,
		Shadow:       core.ShadowFull,
		Fault:        inj,
	})
	if err != nil {
		return res, err
	}
	if fs.Failovers == 0 {
		return res, fmt.Errorf("harness: proxy-crash arm absorbed no failovers")
	}
	res.Variants = append(res.Variants, AblationVariant{
		Name: fmt.Sprintf("crash-every-%d", everyN), Metric: "app runtime", Value: crashed,
	})
	res.Variants = append(res.Variants, AblationVariant{
		Name: fmt.Sprintf("recovery-x%d", fs.Failovers), Metric: "total rebind time", Value: fs.TotalRecovery,
	})
	return res, nil
}

// ablationDiskFaults: the checkpoint-durability arms. The baseline
// restores from a clean checkpoint disk; the faulty arm checkpoints and
// restores through a seeded every-5th-operation disk fault plan with a
// clean replica attached (the restore must come back undegraded — the
// difference is the price of retries and healing reads); the scrub arm
// rots a batch of chunks at rest and measures one repair pass.
func ablationDiskFaults(scale float64) (AblationResult, error) {
	res := AblationResult{
		Name:  "disk-faults",
		Claim: "verified writes + replica healing turn disk faults into latency, never data loss",
	}
	chunks := store.Config{MinChunk: 1 << 10, AvgChunk: 4 << 10, MaxChunk: 16 << 10}

	// Arm 1: clean disk baseline.
	node, c, err := runAppUnderCheCL("oclVectorAdd", scale, core.Options{})
	if err != nil {
		return res, err
	}
	cleanStore := store.New(proc.NewFS("ckpt-disk", hw.TableISpec().LocalDisk), chunks)
	if _, err := c.CheckpointToStore(cleanStore, "abl"); err != nil {
		c.Detach()
		return res, err
	}
	rc, rst, err := core.RestoreFromStore(node, cleanStore, "abl", core.Options{})
	if err != nil {
		c.Detach()
		return res, err
	}
	rc.Detach()
	c.Detach()
	res.Variants = append(res.Variants, AblationVariant{
		Name: "no-fault", Metric: "image read", Value: rst.ReadTime,
	})

	// Arm 2: the same flow through a disk faulting every 5th operation,
	// with one clean replica absorbing what retries cannot.
	node, c, err = runAppUnderCheCL("oclVectorAdd", scale, core.Options{})
	if err != nil {
		return res, err
	}
	defer c.Detach()
	inj := proc.NewFaultInjector(proc.DiskFaultPlan{Seed: 2026, EveryN: 5})
	st := store.New(proc.NewFS("ckpt-disk", hw.TableISpec().LocalDisk, proc.WithFault(inj)), chunks)
	replica := store.New(proc.NewFS("replica-disk", hw.TableISpec().LocalDisk), chunks)
	st.AttachReplica(replica, node.Spec.Inter.NIC)
	committed := false
	for attempt := 0; attempt < 5 && !committed; attempt++ {
		if _, err = c.CheckpointToStore(st, "abl"); err == nil {
			committed = true
			break
		}
		if _, rerr := st.Recover(); rerr != nil {
			return res, rerr
		}
	}
	if !committed {
		return res, fmt.Errorf("harness: disk-fault checkpoint failed every attempt: %w", err)
	}
	rc, rst, err = core.RestoreFromStore(node, st, "abl", core.Options{})
	if err != nil {
		return res, err
	}
	rc.Detach()
	if rst.Degraded != nil {
		return res, fmt.Errorf("harness: disk-fault restore degraded despite replica: %v", rst.Degraded)
	}
	res.Variants = append(res.Variants, AblationVariant{
		Name: "faults-healed", Metric: "image read", Value: rst.ReadTime,
	})

	// Arm 3: rot a batch of stored chunks and measure one scrub pass
	// repairing them from the replica.
	inj.Suspend()
	clock := vtime.NewClock()
	rotted := 0
	for _, p := range st.FS().List() {
		if !strings.Contains(p, "/chunks/") || rotted >= 16 {
			continue
		}
		data, err := st.FS().ReadFile(clock, p)
		if err != nil {
			return res, err
		}
		data[len(data)/2] ^= 0xFF
		if err := st.FS().WriteFile(clock, p, data); err != nil {
			return res, err
		}
		rotted++
	}
	sw := vtime.NewStopwatch(node.Clock)
	rep, err := st.Scrub(node.Clock)
	if err != nil {
		return res, err
	}
	if !rep.OK() || rep.Healed.ChunksHealed < rotted {
		return res, fmt.Errorf("harness: scrub healed %d of %d rotted chunks, findings %v",
			rep.Healed.ChunksHealed, rotted, rep.Findings)
	}
	res.Variants = append(res.Variants, AblationVariant{
		Name: fmt.Sprintf("scrub-heal-x%d", rep.Healed.ChunksHealed), Metric: "scrub pass", Value: sw.Elapsed(),
	})
	return res, nil
}

// ablationSpeculative: stop-drain vs speculative stop-free checkpointing
// (DESIGN.md §15). Both arms checkpoint the app's working set to a store
// with the write overlapped; the speculative arm begins the epoch first
// and lets the app keep running (a second pass of the same app) while
// the drain proceeds on speculation, so only the validation residue is
// application-visible.
func ablationSpeculative(scale float64) (AblationResult, error) {
	res := AblationResult{
		Name:  "speculative-checkpoint",
		Claim: "write-set speculation hides the drain behind continued execution",
	}
	for _, speculative := range []bool{false, true} {
		name := "stop-drain"
		if speculative {
			name = "speculative"
		}
		opts := core.Options{
			Mode: core.Delayed, Incremental: true, DrainWorkers: 8,
			OverlapStoreWrite: true, SpeculativeDrain: speculative,
		}
		node, c, err := runAppUnderCheCL("oclVectorAdd", scale, opts)
		if err != nil {
			return res, err
		}
		st := store.New(proc.NewFS("ckpt-disk", hw.TableISpec().LocalDisk), store.Config{})
		if speculative {
			if err := c.BeginCheckpointEpoch(); err != nil {
				c.Detach()
				return res, err
			}
		}
		// The application keeps computing while the epoch drains.
		app, _ := apps.ByName("oclVectorAdd")
		env := &apps.Env{API: c, DeviceMask: ocl.DeviceTypeGPU, Scale: scale}
		if _, err := app.Run(env); err != nil {
			c.Detach()
			return res, err
		}
		cst, err := c.CheckpointToStore(st, "abl")
		if err != nil {
			c.Detach()
			return res, err
		}
		if err := c.WaitBackgroundWrite(); err != nil {
			c.Detach()
			return res, err
		}
		res.Variants = append(res.Variants, AblationVariant{
			Name: name, Metric: "app-visible stall", Value: cst.StallTime,
		})
		_ = node
		c.Detach()
	}
	return res, nil
}

// RenderAblations prints the ablation table.
func RenderAblations(w io.Writer, results []AblationResult) {
	fmt.Fprintln(w, "Design-decision ablations (DESIGN.md §5)")
	for _, r := range results {
		fmt.Fprintf(w, "  %s — %s\n", r.Name, r.Claim)
		for _, v := range r.Variants {
			fmt.Fprintf(w, "    %-22s %-26s %12s\n", v.Name, v.Metric, v.Value)
		}
	}
}
