package harness

import (
	"bytes"
	"strings"
	"testing"
)

func TestAblations(t *testing.T) {
	results, err := Ablations(testScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 8 {
		t.Fatalf("ablations = %d, want 8", len(results))
	}
	byName := map[string]AblationResult{}
	for _, r := range results {
		byName[r.Name] = r
	}

	mode := byName["checkpoint-mode"]
	if len(mode.Variants) != 2 || !(mode.Variants[0].Value > 5*mode.Variants[1].Value) {
		t.Errorf("mode ablation: immediate sync should dwarf delayed: %+v", mode.Variants)
	}

	destr := byName["destructive-checkpoint"]
	if len(destr.Variants) != 2 || !(destr.Variants[1].Value > 100*maxDur(destr.Variants[0].Value, 1)) {
		t.Errorf("destructive ablation: %+v", destr.Variants)
	}

	inc := byName["incremental-checkpoint"]
	if len(inc.Variants) != 4 || !(inc.Variants[0].Value > inc.Variants[1].Value) {
		t.Errorf("incremental ablation: %+v", inc.Variants)
	}
	if len(inc.Variants) == 4 && !(inc.Variants[3].Value < inc.Variants[2].Value) {
		t.Errorf("incremental ablation: parallel drain %v not faster than serial %v",
			inc.Variants[3].Value, inc.Variants[2].Value)
	}

	storage := byName["checkpoint-storage"]
	if len(storage.Variants) != 3 {
		t.Fatalf("storage ablation: %+v", storage.Variants)
	}
	var disk, nfs, ram = storage.Variants[0].Value, storage.Variants[1].Value, storage.Variants[2].Value
	if !(ram < disk/10 && disk < nfs) {
		t.Errorf("storage ordering: disk=%v nfs=%v ram=%v", disk, nfs, ram)
	}

	cas := byName["checkpoint-store"]
	if len(cas.Variants) != 4 {
		t.Fatalf("store ablation: %+v", cas.Variants)
	}
	flat, dedup := cas.Variants[0].Value, cas.Variants[1].Value
	if !(dedup < flat/2) {
		t.Errorf("store ablation: deduped 2nd checkpoint write %v not under half of flat %v", dedup, flat)
	}
	nfsRead, localRead := cas.Variants[2].Value, cas.Variants[3].Value
	if !(localRead < nfsRead) {
		t.Errorf("store ablation: local-replica read %v not cheaper than NFS read %v", localRead, nfsRead)
	}

	crash := byName["proxy-crash"]
	if len(crash.Variants) != 4 {
		t.Fatalf("proxy-crash ablation: %+v", crash.Variants)
	}
	noFault, shadowed, crashed, recovery := crash.Variants[0].Value,
		crash.Variants[1].Value, crash.Variants[2].Value, crash.Variants[3].Value
	if !(noFault <= shadowed && shadowed <= crashed) {
		t.Errorf("proxy-crash ordering: no-fault=%v shadow-full=%v crashed=%v",
			noFault, shadowed, crashed)
	}
	if !(recovery > 0 && recovery <= crashed) {
		t.Errorf("proxy-crash recovery %v out of range (crashed run %v)", recovery, crashed)
	}
	if !strings.HasPrefix(crash.Variants[3].Name, "recovery-x") {
		t.Errorf("proxy-crash recovery variant name: %q", crash.Variants[3].Name)
	}

	dfa := byName["disk-faults"]
	if len(dfa.Variants) != 3 {
		t.Fatalf("disk-faults ablation: %+v", dfa.Variants)
	}
	clean, healed := dfa.Variants[0].Value, dfa.Variants[1].Value
	if !(clean > 0 && clean <= healed) {
		t.Errorf("disk-faults ordering: no-fault=%v faults-healed=%v", clean, healed)
	}
	if !strings.HasPrefix(dfa.Variants[2].Name, "scrub-heal-x") || dfa.Variants[2].Value <= 0 {
		t.Errorf("disk-faults scrub variant: %+v", dfa.Variants[2])
	}

	spec := byName["speculative-checkpoint"]
	if len(spec.Variants) != 2 {
		t.Fatalf("speculative ablation: %+v", spec.Variants)
	}
	stop, overlapped := spec.Variants[0].Value, spec.Variants[1].Value
	if !(overlapped > 0 && overlapped < stop) {
		t.Errorf("speculative ablation: speculative stall %v not below stop-drain %v", overlapped, stop)
	}

	var buf bytes.Buffer
	RenderAblations(&buf, results)
	if !strings.Contains(buf.String(), "checkpoint-storage") {
		t.Errorf("render missing sections:\n%s", buf.String())
	}
}

func maxDur[T ~int64](a T, b T) T {
	if a > b {
		return a
	}
	return b
}
