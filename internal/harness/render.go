package harness

import (
	"fmt"
	"io"
	"strings"

	"checl/internal/core"
	"checl/internal/hw"
)

// This file renders experiment results as the text equivalents of the
// paper's tables and figures.

// RenderTable1 prints the Table I system specification.
func RenderTable1(w io.Writer) {
	s := hw.TableISpec()
	fmt.Fprintln(w, "Table I — System Specifications")
	rows := [][2]string{
		{"CPU", fmt.Sprintf("%s (DDR3 %d GB)", s.CPU.Name, s.HostMem>>30)},
		{"NVIDIA GPU", fmt.Sprintf("%s (GDDR3 %d GB)", hw.TeslaC1060().Name, hw.TeslaC1060().GlobalMemory>>30)},
		{"AMD GPU", fmt.Sprintf("%s (GDDR5 %d GB)", hw.RadeonHD5870().Name, hw.RadeonHD5870().GlobalMemory>>30)},
		{"File Write Perf.", fmt.Sprintf("RAM disk: %s | Local: %s | NFS: %s", s.RAMDisk.Write, s.LocalDisk.Write, s.NFS.Write)},
		{"File Read Perf.", fmt.Sprintf("RAM disk: %s | Local: %s | NFS: %s", s.RAMDisk.Read, s.LocalDisk.Read, s.NFS.Read)},
		{"PCIe Perf.", fmt.Sprintf("HtoD: %s | DtoH: %s", s.Inter.PCIeHtoD, s.Inter.PCIeDtoH)},
		{"NIC", s.Inter.NIC.String()},
	}
	for _, r := range rows {
		fmt.Fprintf(w, "  %-18s %s\n", r[0], r[1])
	}
}

// RenderFig4 prints the runtime-overhead figure for one configuration.
func RenderFig4(w io.Writer, rows []Fig4Row, sum Fig4Summary) {
	fmt.Fprintf(w, "Fig. 4 — Timing overhead caused by the CheCL runtime system (%s)\n", sum.Config)
	fmt.Fprintf(w, "  %-26s %-8s %12s %12s %10s\n", "benchmark", "suite", "native", "CheCL", "normalized")
	for _, r := range rows {
		if !r.Portable {
			fmt.Fprintf(w, "  %-26s %-8s %12s %12s %10s\n", r.App, r.Suite, "-", "-", "non-portable")
			continue
		}
		fmt.Fprintf(w, "  %-26s %-8s %12s %12s %9.3fx\n", r.App, r.Suite, r.Native, r.CheCL, r.Ratio)
	}
	fmt.Fprintf(w, "  average runtime overhead: %.1f%% of total execution time (%d benchmarks)\n",
		sum.AverageOverhead, sum.Apps)
	fmt.Fprintf(w, "  one-time CheCL initialisation (proxy fork): %s per process\n", sum.InitOverhead)
}

// RenderFig5 prints the checkpoint-phase breakdown for one configuration.
func RenderFig5(w io.Writer, res Fig5Result) {
	fmt.Fprintf(w, "Fig. 5 — Timing overheads for sync/preprocess/write/postprocess (%s)\n", res.Config)
	fmt.Fprintf(w, "  %-26s %10s %10s %10s %10s %10s %10s\n",
		"benchmark", "sync", "preproc", "write", "postproc", "total", "file[MB]")
	for _, r := range res.Rows {
		fmt.Fprintf(w, "  %-26s %10s %10s %10s %10s %10s %10.2f\n",
			r.App, r.Sync, r.Preprocess, r.Write, r.Postprocess, r.Total(), float64(r.FileSize)/1e6)
	}
	fmt.Fprintf(w, "  corr(total checkpoint time, file size) = %.3f\n", res.SizeTimeCorrelation)
}

// RenderFig6 prints the MPI MD checkpoint sweep.
func RenderFig6(w io.Writer, rows []Fig6Row) {
	fmt.Fprintln(w, "Fig. 6 — Checkpoint time for the MPI MD application")
	fmt.Fprintf(w, "  %-14s %-6s %12s %14s\n", "problem scale", "nodes", "global[MB]", "ckpt time")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-14.2f %-6d %12.2f %14s\n",
			r.ProblemScale, r.Nodes, float64(r.GlobalSize)/1e6, r.CheckpointTime)
	}
}

// RenderFig7 prints the per-class restart breakdown.
func RenderFig7(w io.Writer, cfg Config, rows []Fig7Row) {
	fmt.Fprintf(w, "Fig. 7 — Timing results for recreating OpenCL objects (%s)\n", cfg.Name)
	fmt.Fprintf(w, "  %-26s", "benchmark")
	for _, cl := range core.RestoreOrder {
		fmt.Fprintf(w, " %9s", cl)
	}
	fmt.Fprintf(w, " %10s\n", "total")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-26s", r.App)
		for _, cl := range core.RestoreOrder {
			fmt.Fprintf(w, " %9s", r.PerClass[cl])
		}
		fmt.Fprintf(w, " %10s\n", r.Total)
	}
}

// RenderFig8 prints the migration-cost prediction figure.
func RenderFig8(w io.Writer, res Fig8Result) {
	fmt.Fprintf(w, "Fig. 8 — Migration cost prediction (%s)\n", res.Config)
	fmt.Fprintf(w, "  model: %s\n", res.Model)
	fmt.Fprintf(w, "  %-26s %10s %12s %12s %12s\n", "benchmark", "file[MB]", "recompile", "actual", "predicted")
	for _, r := range res.Rows {
		fmt.Fprintf(w, "  %-26s %10.2f %12s %12s %12s\n",
			r.App, float64(r.FileSize)/1e6, r.Recompile, r.Actual, r.Predicted)
	}
	fmt.Fprintf(w, "  mean absolute prediction error: %.1f%%\n", res.MAPE)
}

// Rule prints a section divider.
func Rule(w io.Writer, title string) {
	fmt.Fprintf(w, "\n%s\n%s\n", title, strings.Repeat("=", len(title)))
}
