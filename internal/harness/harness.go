// Package harness drives the paper's experiments end to end and returns
// typed rows for each table and figure of the evaluation section:
//
//	Table I — system specifications (hw.TableISpec)
//	Fig. 4  — CheCL runtime overhead vs native OpenCL, per benchmark
//	Fig. 5  — checkpoint-phase breakdown + checkpoint file size
//	Fig. 6  — MPI MD checkpoint time vs problem size and node count
//	Fig. 7  — restart-time breakdown by OpenCL object class
//	Fig. 8  — migration-cost prediction (Tm = α·M + Tr + β) vs measured
//
// cmd/checl-bench renders these rows as text tables; the root-level Go
// benchmarks wrap them with testing.B metrics.
package harness

import (
	"fmt"

	"checl/internal/apps"
	"checl/internal/core"
	"checl/internal/hw"
	"checl/internal/mpi"
	"checl/internal/ocl"
	"checl/internal/proc"
	"checl/internal/vtime"
)

// Config is one of the paper's three evaluation configurations.
type Config struct {
	Key        string // short id: nvidia-gpu, amd-gpu, amd-cpu
	Name       string // display name
	Vendor     func() *ocl.Vendor
	VendorName string
	Mask       ocl.DeviceTypeMask
	Prefer     hw.DeviceType
}

// Configs returns the three configurations of Figs. 4, 5, 7 and 8.
func Configs() []Config {
	return []Config{
		{
			Key: "nvidia-gpu", Name: "NVIDIA OpenCL / Tesla C1060",
			Vendor: ocl.NVIDIA, VendorName: "NVIDIA Corporation",
			Mask: ocl.DeviceTypeGPU, Prefer: hw.DeviceGPU,
		},
		{
			Key: "amd-gpu", Name: "AMD OpenCL / Radeon HD5870",
			Vendor: ocl.AMD, VendorName: "Advanced Micro Devices, Inc.",
			Mask: ocl.DeviceTypeGPU, Prefer: hw.DeviceGPU,
		},
		{
			Key: "amd-cpu", Name: "AMD OpenCL / Intel Core i7",
			Vendor: ocl.AMD, VendorName: "Advanced Micro Devices, Inc.",
			Mask: ocl.DeviceTypeCPU, Prefer: hw.DeviceCPU,
		},
	}
}

// ConfigByKey resolves a configuration by its short id.
func ConfigByKey(key string) (Config, bool) {
	for _, c := range Configs() {
		if c.Key == key {
			return c, true
		}
	}
	return Config{}, false
}

func (c Config) newNode(name string) *proc.Node {
	return proc.NewNode(name, hw.TableISpec(), c.Vendor())
}

// portableOn reports whether the app's widest work-group fits the
// configuration's first device.
func portableOn(cfg Config, app apps.App) bool {
	node := cfg.newNode("probe")
	rt := ocl.NewRuntime(node.Vendors[0], node.Spec, node.Clock)
	plats, _ := rt.GetPlatformIDs()
	devs, err := rt.GetDeviceIDs(plats[0], cfg.Mask)
	if err != nil || len(devs) == 0 {
		return false
	}
	info, err := rt.GetDeviceInfo(devs[0])
	if err != nil {
		return false
	}
	return app.WorkGroupX <= info.MaxWorkItemSizes[0]
}

// ---- Fig. 4: runtime overhead ----

// Fig4Row is one bar of Fig. 4.
type Fig4Row struct {
	App      string
	Suite    string
	Portable bool
	Native   vtime.Duration
	CheCL    vtime.Duration
	// Ratio is CheCL time normalised by native time (the figure's y-axis).
	Ratio float64
}

// Fig4Summary aggregates one configuration.
type Fig4Summary struct {
	Config          string
	AverageOverhead float64 // percent, over portable apps
	Apps            int
	// InitOverhead is the one-time proxy fork + library-load cost
	// (~0.08 s in the paper). The per-app ratios exclude it — our
	// simulated benchmark runs are shorter than the originals', so
	// folding a fixed 80 ms into every ratio would swamp the per-call
	// overheads Fig. 4 actually characterises; the paper itself notes
	// the init cost is "usually negligible in a practical long-running
	// application" (§IV-A).
	InitOverhead vtime.Duration
}

// Fig4 measures every benchmark's execution time with native OpenCL and
// with CheCL interposed (no checkpoint taken), on one configuration.
func Fig4(cfg Config, scale float64) ([]Fig4Row, Fig4Summary, error) {
	var rows []Fig4Row
	sum := Fig4Summary{Config: cfg.Name}
	var ratioSum float64
	for _, app := range apps.All() {
		row := Fig4Row{App: app.Name, Suite: app.Suite, Portable: portableOn(cfg, app)}
		if !row.Portable {
			rows = append(rows, row)
			continue
		}
		native, err := runNative(cfg, app, scale)
		if err != nil {
			return nil, sum, fmt.Errorf("fig4: %s native on %s: %w", app.Name, cfg.Key, err)
		}
		checl, init, err := runUnderCheCL(cfg, app, scale)
		if err != nil {
			return nil, sum, fmt.Errorf("fig4: %s under CheCL on %s: %w", app.Name, cfg.Key, err)
		}
		sum.InitOverhead = init
		row.Native = native
		row.CheCL = checl
		if native > 0 {
			row.Ratio = float64(checl) / float64(native)
		}
		ratioSum += row.Ratio
		sum.Apps++
		rows = append(rows, row)
	}
	if sum.Apps > 0 {
		sum.AverageOverhead = (ratioSum/float64(sum.Apps) - 1) * 100
	}
	return rows, sum, nil
}

func runNative(cfg Config, app apps.App, scale float64) (vtime.Duration, error) {
	node := cfg.newNode("native")
	p := node.Spawn(app.Name)
	rt := ocl.NewRuntime(node.Vendors[0], node.Spec, node.Clock)
	p.MapDevice() // the native app loads the vendor library itself
	env := &apps.Env{API: rt, DeviceMask: cfg.Mask, Scale: scale}
	sw := vtime.NewStopwatch(node.Clock)
	if _, err := app.Run(env); err != nil {
		return 0, err
	}
	return sw.Elapsed(), nil
}

func runUnderCheCL(cfg Config, app apps.App, scale float64) (run, init vtime.Duration, err error) {
	node := cfg.newNode("checl")
	p := node.Spawn(app.Name)
	initSW := vtime.NewStopwatch(node.Clock)
	// The Fig. 4 arm runs with the pipelined hot path on: enqueue
	// batching is CheCL's production configuration for the overhead
	// number the figure reports.
	c, err := core.Attach(p, core.Options{VendorName: cfg.VendorName, BatchEnqueues: true})
	if err != nil {
		return 0, 0, err
	}
	defer c.Detach()
	init = initSW.Elapsed()
	env := &apps.Env{API: c, DeviceMask: cfg.Mask, Scale: scale}
	sw := vtime.NewStopwatch(node.Clock)
	if _, err := app.Run(env); err != nil {
		return 0, 0, err
	}
	return sw.Elapsed(), init, nil
}

// ---- Fig. 5: checkpoint overheads ----

// Fig5Row is one benchmark's averaged checkpoint-phase breakdown.
type Fig5Row struct {
	App         string
	Checkpoints int
	Sync        vtime.Duration
	Preprocess  vtime.Duration
	Write       vtime.Duration
	Postprocess vtime.Duration
	FileSize    int64
}

// Total is the averaged whole-checkpoint time.
func (r Fig5Row) Total() vtime.Duration {
	return r.Sync + r.Preprocess + r.Write + r.Postprocess
}

// Fig5Result is the full figure for one configuration.
type Fig5Result struct {
	Config string
	Rows   []Fig5Row
	// SizeTimeCorrelation reproduces the paper's r ≈ 0.99 observation.
	SizeTimeCorrelation float64
}

// maxCheckpointsPerApp caps how many per-launch checkpoints Fig5 takes for
// call-heavy programs (the paper checkpoints after every kernel; with
// QueueDelay's hundreds of launches a cap keeps the sweep tractable, and
// the row reports the average so the cap does not bias it).
const maxCheckpointsPerApp = 6

// Fig5 runs every kernel-executing benchmark under CheCL, checkpointing
// after kernel launches (with at least one uncompleted command in the
// queue, as in §IV-B), and reports the averaged phase breakdown and file
// size.
func Fig5(cfg Config, scale float64) (Fig5Result, error) {
	out := Fig5Result{Config: cfg.Name}
	for _, app := range apps.All() {
		if !app.HasKernel {
			continue // oclBandwidthTest, BusSpeed*, KernelCompile (§IV-B)
		}
		if !portableOn(cfg, app) {
			continue
		}
		node := cfg.newNode("fig5")
		p := node.Spawn(app.Name)
		c, err := core.Attach(p, core.Options{VendorName: cfg.VendorName})
		if err != nil {
			return out, err
		}
		row := Fig5Row{App: app.Name}
		var totPhases core.PhaseTimes
		env := &apps.Env{API: c, DeviceMask: cfg.Mask, Scale: scale}
		env.AfterLaunch = func(q ocl.CommandQueue) error {
			if row.Checkpoints >= maxCheckpointsPerApp {
				return nil
			}
			st, err := c.Checkpoint(node.LocalDisk, fmt.Sprintf("%s.ckpt", app.Name))
			if err != nil {
				return err
			}
			row.Checkpoints++
			totPhases.Sync += st.Phases.Sync
			totPhases.Preprocess += st.Phases.Preprocess
			totPhases.Write += st.Phases.Write
			totPhases.Postprocess += st.Phases.Postprocess
			row.FileSize += st.FileSize
			return nil
		}
		if _, err := app.Run(env); err != nil {
			c.Detach()
			return out, fmt.Errorf("fig5: %s on %s: %w", app.Name, cfg.Key, err)
		}
		c.Detach()
		if row.Checkpoints == 0 {
			continue
		}
		n := vtime.Duration(row.Checkpoints)
		row.Sync = totPhases.Sync / n
		row.Preprocess = totPhases.Preprocess / n
		row.Write = totPhases.Write / n
		row.Postprocess = totPhases.Postprocess / n
		row.FileSize /= int64(row.Checkpoints)
		out.Rows = append(out.Rows, row)
	}
	// Correlation between total checkpoint time and file size.
	var sizes, times []float64
	for _, r := range out.Rows {
		sizes = append(sizes, float64(r.FileSize))
		times = append(times, r.Total().Seconds())
	}
	if len(sizes) >= 2 {
		if r, err := core.Correlation(sizes, times); err == nil {
			out.SizeTimeCorrelation = r
		}
	}
	return out, nil
}

// ---- Fig. 6: MPI MD checkpointing ----

// Fig6Row is one (problem size, node count) point.
type Fig6Row struct {
	ProblemScale   float64
	Nodes          int
	GlobalSize     int64
	CheckpointTime vtime.Duration
}

// Fig6 sweeps the MPI-version MD program over problem sizes and node
// counts, taking one coordinated global snapshot per run (§IV-B, Fig. 6).
func Fig6(scales []float64, nodeCounts []int) ([]Fig6Row, error) {
	md, ok := apps.ByName("MD")
	if !ok {
		return nil, fmt.Errorf("fig6: MD app not registered")
	}
	var rows []Fig6Row
	for _, scale := range scales {
		for _, nodes := range nodeCounts {
			cluster := proc.NewCluster("pc", nodes, hw.TableISpec(), func(int) []*ocl.Vendor {
				return []*ocl.Vendor{ocl.NVIDIA()}
			})
			world, err := mpi.NewWorld(cluster, nodes)
			if err != nil {
				return nil, err
			}
			var stats mpi.GlobalSnapshotStats
			err = world.Run(func(r *mpi.Rank) error {
				c, err := core.Attach(r.Process(), core.Options{})
				if err != nil {
					return err
				}
				defer c.Detach()
				env := &apps.Env{API: c, DeviceMask: ocl.DeviceTypeGPU, Scale: scale}
				if _, err := md.Run(env); err != nil {
					return err
				}
				st, err := r.CoordinatedCheckpoint(c, fmt.Sprintf("md-%v-%d.global", scale, nodes))
				if err != nil {
					return err
				}
				if r.Rank() == 0 {
					stats = st
				}
				return nil
			})
			if err != nil {
				return nil, fmt.Errorf("fig6 scale=%v nodes=%d: %w", scale, nodes, err)
			}
			rows = append(rows, Fig6Row{
				ProblemScale:   scale,
				Nodes:          nodes,
				GlobalSize:     stats.GlobalSize,
				CheckpointTime: stats.Total,
			})
		}
	}
	return rows, nil
}

// ---- Fig. 7: restart breakdown ----

// Fig7Row is one benchmark's object-recreation breakdown.
type Fig7Row struct {
	App      string
	PerClass map[string]vtime.Duration
	Total    vtime.Duration
}

// Fig7 checkpoints each kernel-executing benchmark after its run and
// restarts it on the same configuration, reporting the per-class object
// recreation time (§IV-C, Fig. 7).
func Fig7(cfg Config, scale float64) ([]Fig7Row, error) {
	var rows []Fig7Row
	for _, app := range apps.All() {
		if !app.HasKernel || !portableOn(cfg, app) {
			continue
		}
		node := cfg.newNode("fig7")
		p := node.Spawn(app.Name)
		c, err := core.Attach(p, core.Options{VendorName: cfg.VendorName})
		if err != nil {
			return nil, err
		}
		env := &apps.Env{API: c, DeviceMask: cfg.Mask, Scale: scale}
		if _, err := app.Run(env); err != nil {
			c.Detach()
			return nil, fmt.Errorf("fig7: %s on %s: %w", app.Name, cfg.Key, err)
		}
		if _, err := c.Checkpoint(node.LocalDisk, "fig7.ckpt"); err != nil {
			c.Detach()
			return nil, err
		}
		c.Proxy().Kill()
		c.App().Kill()
		rc, rst, err := core.Restore(node, node.LocalDisk, "fig7.ckpt",
			core.Options{VendorName: cfg.VendorName, PreferDeviceType: cfg.Prefer})
		if err != nil {
			return nil, fmt.Errorf("fig7: restoring %s on %s: %w", app.Name, cfg.Key, err)
		}
		rc.Detach()
		// The figure's bars stack object-recreation time only; the file
		// read and proxy fork are not part of the breakdown.
		var objTotal vtime.Duration
		for _, d := range rst.PerClass {
			objTotal += d
		}
		rows = append(rows, Fig7Row{App: app.Name, PerClass: rst.PerClass, Total: objTotal})
	}
	return rows, nil
}

// ---- Fig. 8: migration-cost prediction ----

// Fig8Row is one benchmark's measured and predicted migration time.
type Fig8Row struct {
	App       string
	FileSize  int64
	Recompile vtime.Duration
	Actual    vtime.Duration
	Predicted vtime.Duration
}

// Fig8Result carries the rows, the fitted model, and the prediction error.
type Fig8Result struct {
	Config string
	Rows   []Fig8Row
	Model  core.CostModel
	MAPE   float64
}

// Fig8 migrates each kernel-executing benchmark between two nodes of the
// same configuration, fits Tm = α·M + Tr + β over all benchmarks, and
// reports predicted vs actual migration time (§IV-C, Fig. 8).
func Fig8(cfg Config, scale float64) (Fig8Result, error) {
	out := Fig8Result{Config: cfg.Name}
	var samples []core.CostSample
	for _, app := range apps.All() {
		if !app.HasKernel || !portableOn(cfg, app) {
			continue
		}
		src := cfg.newNode("fig8-src")
		dst := cfg.newNode("fig8-dst")
		p := src.Spawn(app.Name)
		c, err := core.Attach(p, core.Options{VendorName: cfg.VendorName})
		if err != nil {
			return out, err
		}
		env := &apps.Env{API: c, DeviceMask: cfg.Mask, Scale: scale}
		if _, err := app.Run(env); err != nil {
			c.Detach()
			return out, fmt.Errorf("fig8: %s on %s: %w", app.Name, cfg.Key, err)
		}
		rc, ms, err := core.Migrate(c, src.LocalDisk, "fig8.ckpt", dst,
			core.Options{VendorName: cfg.VendorName, PreferDeviceType: cfg.Prefer})
		if err != nil {
			return out, fmt.Errorf("fig8: migrating %s on %s: %w", app.Name, cfg.Key, err)
		}
		rc.Detach()
		out.Rows = append(out.Rows, Fig8Row{
			App:       app.Name,
			FileSize:  ms.Checkpoint.FileSize,
			Recompile: ms.Restart.Recompile,
			Actual:    ms.Total,
		})
		samples = append(samples, core.CostSample{
			FileSize:  ms.Checkpoint.FileSize,
			Recompile: ms.Restart.Recompile,
			Measured:  ms.Total,
		})
	}
	model, err := core.FitCostModel(samples)
	if err != nil {
		return out, err
	}
	out.Model = model
	var preds, acts []vtime.Duration
	for i := range out.Rows {
		out.Rows[i].Predicted = model.Predict(out.Rows[i].FileSize, out.Rows[i].Recompile)
		preds = append(preds, out.Rows[i].Predicted)
		acts = append(acts, out.Rows[i].Actual)
	}
	if mape, err := core.MeanAbsolutePercentError(preds, acts); err == nil {
		out.MAPE = mape
	}
	return out, nil
}
