package harness

import (
	"bytes"
	"strings"
	"testing"
)

// Harness tests run the real experiment drivers at reduced scale; the full
// scale sweeps live in the root-level Go benchmarks and cmd/checl-bench.
const testScale = 0.2

func TestConfigs(t *testing.T) {
	cs := Configs()
	if len(cs) != 3 {
		t.Fatalf("configs = %d, want 3", len(cs))
	}
	if _, ok := ConfigByKey("amd-cpu"); !ok {
		t.Error("ConfigByKey(amd-cpu) missed")
	}
	if _, ok := ConfigByKey("nope"); ok {
		t.Error("ConfigByKey should miss unknown keys")
	}
}

func TestFig4NvidiaGPU(t *testing.T) {
	cfg, _ := ConfigByKey("nvidia-gpu")
	rows, sum, err := Fig4(cfg, testScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 34 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Every portable app must show overhead >= 1x (CheCL adds cost).
	for _, r := range rows {
		if !r.Portable {
			t.Errorf("%s should be portable on the Tesla", r.App)
			continue
		}
		if r.Ratio < 1 {
			t.Errorf("%s: CheCL faster than native (%.3fx)?", r.App, r.Ratio)
		}
	}
	if sum.AverageOverhead <= 0 || sum.AverageOverhead > 300 {
		t.Errorf("average overhead = %.1f%%, implausible", sum.AverageOverhead)
	}
}

func TestFig4AMDGPUNonPortable(t *testing.T) {
	cfg, _ := ConfigByKey("amd-gpu")
	rows, _, err := Fig4(cfg, testScale)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range rows {
		if r.App == "oclSortingNetworks" {
			found = true
			if r.Portable {
				t.Error("oclSortingNetworks must be non-portable on the AMD GPU (§IV-A)")
			}
		}
	}
	if !found {
		t.Error("oclSortingNetworks missing from Fig. 4 rows")
	}
}

func TestFig5(t *testing.T) {
	cfg, _ := ConfigByKey("nvidia-gpu")
	res, err := Fig5(cfg, testScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) < 25 {
		t.Fatalf("fig5 rows = %d", len(res.Rows))
	}
	// The strong size/time correlation of §IV-B.
	if res.SizeTimeCorrelation < 0.9 {
		t.Errorf("corr(time, size) = %.3f, want >= 0.9 (paper: 0.99)", res.SizeTimeCorrelation)
	}
	names := map[string]bool{}
	for _, r := range res.Rows {
		names[r.App] = true
		if r.Checkpoints == 0 || r.FileSize == 0 {
			t.Errorf("%s: no checkpoints recorded", r.App)
		}
		// Postprocess is negligible under the API-proxy design.
		if r.Postprocess > r.Total()/4 {
			t.Errorf("%s: postprocess %v not negligible vs total %v", r.App, r.Postprocess, r.Total())
		}
	}
	// Kernel-free programs are excluded, per the paper.
	for _, excluded := range []string{"oclBandwidthTest", "BusSpeedDownload", "BusSpeedReadback", "KernelCompile"} {
		if names[excluded] {
			t.Errorf("%s must be excluded from Fig. 5", excluded)
		}
	}
	// MaxFlops leaves several launches in flight: sync should be visible.
	for _, r := range res.Rows {
		if r.App == "MaxFlops" && r.Sync <= 0 {
			t.Error("MaxFlops sync phase should be non-zero (§IV-B)")
		}
	}
}

func TestFig6ScalesWithSizeAndNodes(t *testing.T) {
	rows, err := Fig6([]float64{0.25, 0.5}, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	get := func(scale float64, nodes int) Fig6Row {
		for _, r := range rows {
			if r.ProblemScale == scale && r.Nodes == nodes {
				return r
			}
		}
		t.Fatalf("missing row %v/%d", scale, nodes)
		return Fig6Row{}
	}
	// Checkpoint time grows with the problem size...
	if !(get(0.5, 1).CheckpointTime > get(0.25, 1).CheckpointTime) {
		t.Error("checkpoint time should grow with problem size")
	}
	// ...and with the number of nodes (global snapshot aggregation).
	if !(get(0.25, 2).CheckpointTime > get(0.25, 1).CheckpointTime) {
		t.Error("checkpoint time should grow with node count")
	}
	if !(get(0.25, 2).GlobalSize > get(0.25, 1).GlobalSize) {
		t.Error("global snapshot should grow with node count")
	}
}

func TestFig7BreakdownShape(t *testing.T) {
	cfg, _ := ConfigByKey("nvidia-gpu")
	rows, err := Fig7(cfg, testScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 25 {
		t.Fatalf("rows = %d", len(rows))
	}
	var s3d, vadd Fig7Row
	for _, r := range rows {
		if r.App == "S3D" {
			s3d = r
		}
		if r.App == "oclVectorAdd" {
			vadd = r
		}
		// mem + prog dominate the recreation time (§IV-C).
		domin := r.PerClass["mem"] + r.PerClass["prog"]
		if r.Total > 0 && float64(domin) < 0.5*float64(r.Total) {
			t.Errorf("%s: mem+prog = %v of total %v, expected dominant", r.App, domin, r.Total)
		}
	}
	// S3D's 27 programs make it the recompilation outlier.
	if !(s3d.PerClass["prog"] > 4*vadd.PerClass["prog"]) {
		t.Errorf("S3D prog recreation (%v) should dwarf oclVectorAdd's (%v)",
			s3d.PerClass["prog"], vadd.PerClass["prog"])
	}
}

func TestFig7AMDRecompilesSlower(t *testing.T) {
	nv, _ := ConfigByKey("nvidia-gpu")
	amd, _ := ConfigByKey("amd-cpu")
	nvRows, err := Fig7(nv, testScale)
	if err != nil {
		t.Fatal(err)
	}
	amdRows, err := Fig7(amd, testScale)
	if err != nil {
		t.Fatal(err)
	}
	progTime := func(rows []Fig7Row, app string) float64 {
		for _, r := range rows {
			if r.App == app {
				return r.PerClass["prog"].Seconds()
			}
		}
		t.Fatalf("app %s missing", app)
		return 0
	}
	if !(progTime(amdRows, "S3D") > progTime(nvRows, "S3D")) {
		t.Error("AMD OpenCL should recompile S3D slower than NVIDIA (Fig. 7)")
	}
}

func TestFig8PredictionQuality(t *testing.T) {
	cfg, _ := ConfigByKey("nvidia-gpu")
	res, err := Fig8(cfg, testScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) < 25 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.Model.Alpha <= 0 {
		t.Errorf("alpha = %v, want > 0", res.Model.Alpha)
	}
	if res.MAPE > 25 {
		t.Errorf("MAPE = %.1f%%, want <= 25%%", res.MAPE)
	}
	for _, r := range res.Rows {
		if r.Predicted <= 0 || r.Actual <= 0 {
			t.Errorf("%s: degenerate times %v / %v", r.App, r.Predicted, r.Actual)
		}
	}
}

func TestRenderers(t *testing.T) {
	var buf bytes.Buffer
	RenderTable1(&buf)
	if !strings.Contains(buf.String(), "Tesla C1060") || !strings.Contains(buf.String(), "5.35 GB/s") {
		t.Errorf("Table1 render missing fields:\n%s", buf.String())
	}
	buf.Reset()
	RenderFig4(&buf, []Fig4Row{{App: "x", Suite: "nvsdk", Portable: true, Ratio: 1.1}},
		Fig4Summary{Config: "c", AverageOverhead: 10, Apps: 1})
	if !strings.Contains(buf.String(), "1.100x") {
		t.Errorf("Fig4 render:\n%s", buf.String())
	}
	buf.Reset()
	RenderFig6(&buf, []Fig6Row{{ProblemScale: 1, Nodes: 2, GlobalSize: 1e6, CheckpointTime: 0}})
	if !strings.Contains(buf.String(), "MPI MD") {
		t.Errorf("Fig6 render:\n%s", buf.String())
	}
}
