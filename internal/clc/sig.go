package clc

import "fmt"

// ParamKind classifies a kernel parameter for the purpose CheCL cares
// about: deciding, at clSetKernelArg time, whether the (void*, size_t)
// argument carries an OpenCL handle that must be translated.
type ParamKind int

// Parameter classifications (see §III-B of the paper).
const (
	// ParamScalar is a by-value scalar; the argument bytes are passed
	// through untouched.
	ParamScalar ParamKind = iota
	// ParamMemHandle is a __global or __constant pointer; the argument is
	// a cl_mem handle that must be translated.
	ParamMemHandle
	// ParamLocalSize is a __local pointer; the argument is a size with a
	// NULL value (local memory is allocated per work-group, no handle).
	ParamLocalSize
	// ParamImageHandle is an image2d_t/image3d_t; the argument is a
	// cl_mem (image) handle.
	ParamImageHandle
	// ParamSamplerHandle is a sampler_t; the argument is a cl_sampler
	// handle.
	ParamSamplerHandle
)

func (k ParamKind) String() string {
	switch k {
	case ParamScalar:
		return "scalar"
	case ParamMemHandle:
		return "mem-handle"
	case ParamLocalSize:
		return "local-size"
	case ParamImageHandle:
		return "image-handle"
	case ParamSamplerHandle:
		return "sampler-handle"
	default:
		return fmt.Sprintf("ParamKind(%d)", int(k))
	}
}

// IsHandle reports whether arguments of this kind carry an OpenCL object
// handle that CheCL must translate between CheCL and real handle spaces.
func (k ParamKind) IsHandle() bool {
	return k == ParamMemHandle || k == ParamImageHandle || k == ParamSamplerHandle
}

// ParamSig describes one kernel parameter.
type ParamSig struct {
	Name string
	Type string // OpenCL C rendering, for diagnostics
	Kind ParamKind
}

// KernelSig is the parsed signature of one kernel function.
type KernelSig struct {
	Name   string
	Params []ParamSig
}

// ClassifyParam maps a parsed parameter type to its ParamKind using the
// paper's rule: address-space qualifiers __global/__local/__constant and
// the special types image2d_t/image3d_t/sampler_t identify handle-bearing
// arguments.
func ClassifyParam(t *Type) ParamKind {
	switch t.Kind {
	case TImage2D, TImage3D:
		return ParamImageHandle
	case TSampler:
		return ParamSamplerHandle
	case TPtr:
		switch t.Space {
		case ASGlobal, ASConstant:
			return ParamMemHandle
		case ASLocal:
			return ParamLocalSize
		default:
			// A __private pointer parameter is not addressable from the
			// host; treat as scalar bytes (cannot occur in valid kernels).
			return ParamScalar
		}
	default:
		return ParamScalar
	}
}

// ExtractSignatures parses OpenCL C source and returns the signature of
// every kernel function, in declaration order. This is the operation CheCL
// performs at clCreateProgramWithSource time (§III-B).
func ExtractSignatures(source string) ([]KernelSig, error) {
	unit, err := Parse(source)
	if err != nil {
		return nil, err
	}
	return SignaturesFromUnit(unit), nil
}

// SignaturesFromUnit extracts kernel signatures from an already-parsed
// unit.
func SignaturesFromUnit(unit *Unit) []KernelSig {
	var sigs []KernelSig
	for _, fn := range unit.Kernels() {
		sig := KernelSig{Name: fn.Name}
		for _, p := range fn.Params {
			sig.Params = append(sig.Params, ParamSig{
				Name: p.Name,
				Type: p.Type.String(),
				Kind: ClassifyParam(p.Type),
			})
		}
		sigs = append(sigs, sig)
	}
	return sigs
}

// Lookup returns the signature with the given kernel name from sigs, or
// false if absent.
func Lookup(sigs []KernelSig, name string) (KernelSig, bool) {
	for _, s := range sigs {
		if s.Name == name {
			return s, true
		}
	}
	return KernelSig{}, false
}
