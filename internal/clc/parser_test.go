package clc

import (
	"strings"
	"testing"
)

func mustParse(t *testing.T, src string) *Unit {
	t.Helper()
	u, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return u
}

func TestParseKernelSignature(t *testing.T) {
	u := mustParse(t, `
__kernel void vadd(__global const float* a,
                   __global const float* b,
                   __global float* c,
                   const unsigned int n)
{
    int i = get_global_id(0);
    if (i < n) c[i] = a[i] + b[i];
}`)
	ks := u.Kernels()
	if len(ks) != 1 {
		t.Fatalf("kernels = %d, want 1", len(ks))
	}
	k := ks[0]
	if k.Name != "vadd" || len(k.Params) != 4 {
		t.Fatalf("signature: %s", k.Signature())
	}
	if k.Params[0].Type.Kind != TPtr || k.Params[0].Type.Space != ASGlobal {
		t.Errorf("param a type = %v", k.Params[0].Type)
	}
	if k.Params[3].Type.Kind != TUInt {
		t.Errorf("param n type = %v, want uint", k.Params[3].Type)
	}
}

func TestParseNonKernelHelpers(t *testing.T) {
	u := mustParse(t, `
float square(float x) { return x * x; }
__kernel void k(__global float* out) { out[get_global_id(0)] = square(2.0f); }`)
	if len(u.Kernels()) != 1 {
		t.Fatalf("kernels = %d, want 1", len(u.Kernels()))
	}
	if u.Lookup("square") == nil || u.Lookup("square").IsKernel {
		t.Error("square should be a non-kernel helper")
	}
}

func TestParseAttributeSkipped(t *testing.T) {
	u := mustParse(t, `
__kernel __attribute__((reqd_work_group_size(64,1,1)))
void k(__global int* x) { x[0] = 1; }`)
	if len(u.Kernels()) != 1 {
		t.Error("kernel with attribute not parsed")
	}
}

func TestParseLocalParam(t *testing.T) {
	u := mustParse(t, `__kernel void k(__global float* g, __local float* scratch) {}`)
	p := u.Kernels()[0].Params[1]
	if p.Type.Kind != TPtr || p.Type.Space != ASLocal {
		t.Errorf("scratch type = %v, want __local float*", p.Type)
	}
}

func TestParseImageAndSamplerParams(t *testing.T) {
	u := mustParse(t, `__kernel void k(__read_only image2d_t img, sampler_t s, __global float* out) {}`)
	ps := u.Kernels()[0].Params
	if ps[0].Type.Kind != TImage2D {
		t.Errorf("img type = %v", ps[0].Type)
	}
	if ps[1].Type.Kind != TSampler {
		t.Errorf("s type = %v", ps[1].Type)
	}
}

func TestParseConstantGlobalTable(t *testing.T) {
	u := mustParse(t, `
__constant float weights[4] = { 0.25f, 0.25f, 0.25f, 0.25f };
__kernel void k(__global float* out) { out[0] = weights[1]; }`)
	if len(u.Globals) != 1 {
		t.Fatalf("globals = %d, want 1", len(u.Globals))
	}
	g := u.Globals[0]
	if g.Name != "weights" || g.Elems != 4 || len(g.Init) != 4 {
		t.Errorf("global = %+v", g)
	}
}

func TestParseControlFlow(t *testing.T) {
	u := mustParse(t, `
__kernel void k(__global int* x, int n) {
    int s = 0;
    for (int i = 0; i < n; i++) {
        if (i % 2 == 0) continue;
        s += i;
        if (s > 100) break;
    }
    int j = 0;
    while (j < 3) { j++; }
    do { j--; } while (j > 0);
    x[0] = s;
}`)
	body := u.Kernels()[0].Body
	if len(body.List) < 5 {
		t.Errorf("body statements = %d, want >= 5", len(body.List))
	}
}

func TestParseExpressionPrecedence(t *testing.T) {
	u := mustParse(t, `__kernel void k(__global int* x) { x[0] = 1 + 2 * 3; }`)
	st := u.Kernels()[0].Body.List[0].(*ExprStmt)
	asn := st.X.(*AssignExpr)
	add := asn.R.(*BinaryExpr)
	if add.Op != "+" {
		t.Fatalf("top op = %q, want +", add.Op)
	}
	mul := add.R.(*BinaryExpr)
	if mul.Op != "*" {
		t.Errorf("right op = %q, want *", mul.Op)
	}
}

func TestParseTernaryAndCast(t *testing.T) {
	u := mustParse(t, `__kernel void k(__global float* x, int n) {
        x[0] = (n > 0) ? (float)n : 0.0f;
    }`)
	st := u.Kernels()[0].Body.List[0].(*ExprStmt)
	asn := st.X.(*AssignExpr)
	if _, ok := asn.R.(*CondExpr); !ok {
		t.Errorf("rhs = %T, want CondExpr", asn.R)
	}
}

func TestParseSizeofFolded(t *testing.T) {
	u := mustParse(t, `__kernel void k(__global int* x) { x[0] = sizeof(float); }`)
	st := u.Kernels()[0].Body.List[0].(*ExprStmt)
	asn := st.X.(*AssignExpr)
	lit, ok := asn.R.(*IntLit)
	if !ok || lit.Val != 4 {
		t.Errorf("sizeof(float) = %#v, want IntLit 4", asn.R)
	}
}

func TestParsePrototypeOnly(t *testing.T) {
	u := mustParse(t, `float helper(float x);
float helper(float x) { return x; }
__kernel void k(__global float* o) { o[0] = helper(1.0f); }`)
	if len(u.Funcs) != 3 {
		t.Errorf("funcs = %d, want 3 (prototype + definition + kernel)", len(u.Funcs))
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		`__kernel void k(__global float* x) { x[0] = ; }`,
		`__kernel void k() { int a b; }`,
		`__kernel void k() { if (1 { } }`,
		`__kernel void k() {`,
		`__kernel void k(int a, float b, ) {}`,
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestParseMultipleDeclaratorsRejectedHelpfully(t *testing.T) {
	_, err := Parse(`__kernel void k() { int a, b; }`)
	if err == nil || !strings.Contains(err.Error(), "separate declarations") {
		t.Errorf("want helpful multi-declarator error, got %v", err)
	}
}

func TestParseUnsignedSpellings(t *testing.T) {
	u := mustParse(t, `__kernel void k(unsigned int a, unsigned b, uint c) {}`)
	for i, p := range u.Kernels()[0].Params {
		if p.Type.Kind != TUInt {
			t.Errorf("param %d type = %v, want uint", i, p.Type)
		}
	}
}

func TestParseArrayParamDecays(t *testing.T) {
	u := mustParse(t, `float sum(float vals[], int n) { return vals[0]; }`)
	p := u.Lookup("sum").Params[0]
	if p.Type.Kind != TPtr {
		t.Errorf("array parameter should decay to pointer, got %v", p.Type)
	}
}

func TestTypeStringRoundtrip(t *testing.T) {
	cases := map[string]*Type{
		"float":             TypeFloat,
		"__global float*":   PtrTo(TypeFloat, ASGlobal),
		"__local int*":      PtrTo(TypeInt, ASLocal),
		"__constant uchar*": PtrTo(TypeUChar, ASConstant),
		"image2d_t":         TypeImage2D,
		"sampler_t":         TypeSampler,
	}
	for want, typ := range cases {
		if got := typ.String(); got != want {
			t.Errorf("Type.String() = %q, want %q", got, want)
		}
	}
}

func TestTypeSizes(t *testing.T) {
	sizes := map[*Type]int{
		TypeChar: 1, TypeUChar: 1, TypeShort: 2, TypeUShort: 2,
		TypeInt: 4, TypeUInt: 4, TypeFloat: 4,
		TypeLong: 8, TypeULong: 8, TypeDouble: 8, TypeSizeT: 8,
	}
	for typ, want := range sizes {
		if got := typ.Size(); got != want {
			t.Errorf("%v.Size() = %d, want %d", typ, got, want)
		}
	}
	if PtrTo(TypeFloat, ASGlobal).Size() != 8 {
		t.Error("pointer size should be 8")
	}
}
