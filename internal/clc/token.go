// Package clc implements an OpenCL C front end: a lexer, a recursive-descent
// parser, kernel-signature extraction, a static write-set analysis, and a
// tree-walking interpreter able to execute a useful subset of OpenCL C over
// an NDRange.
//
// The paper uses Clang/LLVM 2.7 only to parse kernel parameter lists so that
// CheCL can tell which clSetKernelArg arguments carry OpenCL handles
// (parameters qualified __global/__local/__constant, or typed image2d_t /
// image3d_t / sampler_t). This package provides that exact capability
// (ExtractSignatures), and additionally interprets kernel bodies so that the
// simulated devices in internal/ocl compute real, verifiable results.
package clc

import "fmt"

// TokKind enumerates lexical token kinds.
type TokKind int

// Token kinds.
const (
	TokEOF TokKind = iota
	TokIdent
	TokKeyword
	TokIntLit
	TokFloatLit
	TokCharLit
	TokStringLit
	TokPunct
)

func (k TokKind) String() string {
	switch k {
	case TokEOF:
		return "EOF"
	case TokIdent:
		return "identifier"
	case TokKeyword:
		return "keyword"
	case TokIntLit:
		return "integer literal"
	case TokFloatLit:
		return "float literal"
	case TokCharLit:
		return "char literal"
	case TokStringLit:
		return "string literal"
	case TokPunct:
		return "punctuation"
	default:
		return fmt.Sprintf("TokKind(%d)", int(k))
	}
}

// Token is one lexical token with its source position.
type Token struct {
	Kind TokKind
	Text string
	Line int
	Col  int
}

func (t Token) String() string {
	if t.Kind == TokEOF {
		return "EOF"
	}
	return fmt.Sprintf("%q", t.Text)
}

// keywords is the set of reserved words the parser understands. It covers
// the OpenCL C subset used by the benchmark kernels plus the qualifiers the
// signature extractor must recognise.
var keywords = map[string]bool{
	// type specifiers
	"void": true, "bool": true, "char": true, "uchar": true,
	"short": true, "ushort": true, "int": true, "uint": true,
	"long": true, "ulong": true, "float": true, "double": true,
	"half": true, "size_t": true, "ptrdiff_t": true,
	"unsigned": true, "signed": true,
	"image2d_t": true, "image3d_t": true, "sampler_t": true,
	"event_t": true,
	// address-space and access qualifiers
	"__global": true, "global": true,
	"__local": true, "local": true,
	"__constant": true, "constant": true,
	"__private": true, "private": true,
	"__read_only": true, "read_only": true,
	"__write_only": true, "write_only": true,
	"__read_write": true, "read_write": true,
	// function qualifiers
	"__kernel": true, "kernel": true,
	"__attribute__": true, "inline": true, "static": true,
	"const": true, "volatile": true, "restrict": true,
	// statements
	"if": true, "else": true, "for": true, "while": true, "do": true,
	"return": true, "break": true, "continue": true, "switch": true,
	"case": true, "default": true, "goto": true,
	"typedef": true, "struct": true, "union": true, "enum": true,
	"sizeof": true,
}

// IsTypeStart reports whether the token can begin a type specifier.
func (t Token) IsTypeStart() bool {
	if t.Kind != TokKeyword {
		return false
	}
	switch t.Text {
	case "void", "bool", "char", "uchar", "short", "ushort", "int", "uint",
		"long", "ulong", "float", "double", "half", "size_t", "ptrdiff_t",
		"unsigned", "signed", "image2d_t", "image3d_t", "sampler_t",
		"const", "volatile", "restrict",
		"__global", "global", "__local", "local",
		"__constant", "constant", "__private", "private",
		"__read_only", "read_only", "__write_only", "write_only",
		"__read_write", "read_write":
		return true
	}
	return false
}

// Is reports whether the token is a punctuation or keyword with exactly
// the given text.
func (t Token) Is(text string) bool {
	return (t.Kind == TokPunct || t.Kind == TokKeyword) && t.Text == text
}
