package clc

import "testing"

func TestSwitchBasicDispatch(t *testing.T) {
	p := mustCompile(t, `
__kernel void f(__global int* out, uint n) {
    for (uint i = 0u; i < n; i++) {
        int r = 0;
        switch ((int)i % 4) {
        case 0:
            r = 100;
            break;
        case 1:
            r = 200;
            break;
        case 2:
            r = 300;
            break;
        default:
            r = -1;
            break;
        }
        out[i] = r;
    }
}`)
	n := 8
	out := make([]byte, 4*n)
	if _, err := p.Execute("f", NDRange{Dims: 1, Global: [3]int{1}, Local: [3]int{1}},
		[]KernelArg{{Mem: out}, {Scalar: scalarU32(uint32(n))}}, ExecOptions{}); err != nil {
		t.Fatal(err)
	}
	want := []int32{100, 200, 300, -1, 100, 200, 300, -1}
	for i, w := range want {
		if got := i32at(out, i); got != w {
			t.Errorf("out[%d] = %d, want %d", i, got, w)
		}
	}
}

func TestSwitchFallthroughAndSharedLabels(t *testing.T) {
	p := mustCompile(t, `
__kernel void f(__global int* out, int x) {
    int acc = 0;
    switch (x) {
    case 0:
    case 1:
        acc = acc + 1;   // 0 and 1 share this arm
    case 2:
        acc = acc + 10;  // falls through from 0/1; entry for 2
        break;
    case 3:
        acc = acc + 100;
        break;
    }
    out[0] = acc;
}`)
	cases := map[int32]int32{0: 11, 1: 11, 2: 10, 3: 100, 9: 0}
	for in, want := range cases {
		out := make([]byte, 4)
		ib := make([]byte, 4)
		putI32(ib, in)
		if _, err := p.Execute("f", NDRange{Dims: 1, Global: [3]int{1}, Local: [3]int{1}},
			[]KernelArg{{Mem: out}, {Scalar: ib}}, ExecOptions{}); err != nil {
			t.Fatal(err)
		}
		if got := i32at(out, 0); got != want {
			t.Errorf("switch(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestSwitchDefaultInMiddle(t *testing.T) {
	p := mustCompile(t, `
__kernel void f(__global int* out, int x) {
    switch (x) {
    case 1:
        out[0] = 10;
        break;
    default:
        out[0] = 99;
        break;
    case 2:
        out[0] = 20;
        break;
    }
}`)
	cases := map[int32]int32{1: 10, 2: 20, 7: 99}
	for in, want := range cases {
		out := make([]byte, 4)
		ib := make([]byte, 4)
		putI32(ib, in)
		if _, err := p.Execute("f", NDRange{Dims: 1, Global: [3]int{1}, Local: [3]int{1}},
			[]KernelArg{{Mem: out}, {Scalar: ib}}, ExecOptions{}); err != nil {
			t.Fatal(err)
		}
		if got := i32at(out, 0); got != want {
			t.Errorf("switch(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestSwitchInsideLoopControlFlow(t *testing.T) {
	// return/continue inside a switch must propagate to the function and
	// loop respectively; break must stop only the switch.
	p := mustCompile(t, `
int classify(int v) {
    switch (v) {
    case 0:
        return -5;
    case 1:
        break;
    }
    return v * 2;
}
__kernel void f(__global int* out) {
    int sum = 0;
    for (int i = 0; i < 6; i++) {
        switch (i % 3) {
        case 0:
            continue; // skip multiples of 3
        case 1:
            sum = sum + 1;
            break;
        default:
            sum = sum + 10;
        }
        sum = sum + 100; // reached for i%3 != 0
    }
    out[0] = sum;
    out[1] = classify(0);
    out[2] = classify(1);
    out[3] = classify(4);
}`)
	out := make([]byte, 16)
	if _, err := p.Execute("f", NDRange{Dims: 1, Global: [3]int{1}, Local: [3]int{1}},
		[]KernelArg{{Mem: out}}, ExecOptions{}); err != nil {
		t.Fatal(err)
	}
	// i=0,3 skipped; i=1,4 add 1+100 each; i=2,5 add 10+100 each => 422.
	if got := i32at(out, 0); got != 422 {
		t.Errorf("loop/switch sum = %d, want 422", got)
	}
	if got := i32at(out, 1); got != -5 {
		t.Errorf("classify(0) = %d, want -5", got)
	}
	if got := i32at(out, 2); got != 2 {
		t.Errorf("classify(1) = %d, want 2", got)
	}
	if got := i32at(out, 3); got != 8 {
		t.Errorf("classify(4) = %d, want 8", got)
	}
}

func TestSwitchWithBarrier(t *testing.T) {
	// barrier() inside a switch arm must still be detected and must
	// synchronise the group.
	p := mustCompile(t, `
__kernel void f(__global int* out, __local int* tile) {
    size_t lid = get_local_id(0);
    switch ((int)lid % 2) {
    case 0:
        tile[lid] = (int)lid;
        break;
    default:
        tile[lid] = -(int)lid;
    }
    barrier(CLK_LOCAL_MEM_FENCE);
    switch (1) {
    case 1:
        out[get_global_id(0)] = tile[(lid + 1u) % get_local_size(0)];
        barrier(CLK_LOCAL_MEM_FENCE);
        break;
    }
}`)
	if !p.barrierKernels["f"] {
		t.Fatal("barrier inside switch not detected")
	}
	out := make([]byte, 4*8)
	if _, err := p.Execute("f", NDRange{Dims: 1, Global: [3]int{8}, Local: [3]int{8}},
		[]KernelArg{{Mem: out}, {LocalSize: 4 * 8}}, ExecOptions{}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		peer := (i + 1) % 8
		want := int32(peer)
		if peer%2 == 1 {
			want = -want
		}
		if got := i32at(out, i); got != want {
			t.Errorf("out[%d] = %d, want %d", i, got, want)
		}
	}
}

func TestSwitchWriteSetAnalysis(t *testing.T) {
	p := mustCompile(t, `
__kernel void f(__global const float* in, __global float* a, __global float* b, int mode) {
    switch (mode) {
    case 0:
        a[0] = in[0];
        break;
    default:
        b[0] = in[0];
    }
}`)
	ws, ok := p.WriteSet("f")
	if !ok {
		t.Fatal("write set failed")
	}
	got := map[int]bool{}
	for _, i := range ws {
		got[i] = true
	}
	if got[0] || !got[1] || !got[2] {
		t.Errorf("write set = %v, want [1 2]", ws)
	}
}

func TestSwitchParseErrors(t *testing.T) {
	cases := []string{
		`__kernel void f(int x) { switch (x) { int y; case 1: break; } }`, // stmt before label
		`__kernel void f(int x) { switch (x) { default: break; default: break; } }`,
		`__kernel void f(int x) { switch (x) { case 1 break; } }`,
		`__kernel void f(int x) { switch (x) { case 1: break; }`,
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}
