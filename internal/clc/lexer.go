package clc

import (
	"fmt"
	"strings"
)

// Lexer converts OpenCL C source into a token stream. It strips comments,
// applies simple object-like #define macros, and discards all other
// preprocessor directives (the benchmark kernels only use #define and
// #pragma).
type Lexer struct {
	src    string
	pos    int
	line   int
	col    int
	macros map[string]string
	// expanding guards against recursive macro expansion.
	expanding map[string]bool
	pending   []Token
}

// LexError describes a lexical error with position information.
type LexError struct {
	Line, Col int
	Msg       string
}

func (e *LexError) Error() string {
	return fmt.Sprintf("clc: lex error at %d:%d: %s", e.Line, e.Col, e.Msg)
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1, macros: map[string]string{}, expanding: map[string]bool{}}
}

// Tokenize runs the lexer to completion and returns all tokens excluding
// the trailing EOF.
func Tokenize(src string) ([]Token, error) {
	lx := NewLexer(src)
	var toks []Token
	for {
		t, err := lx.Next()
		if err != nil {
			return nil, err
		}
		if t.Kind == TokEOF {
			return toks, nil
		}
		toks = append(toks, t)
	}
}

func (l *Lexer) errf(format string, args ...any) error {
	return &LexError{Line: l.line, Col: l.col, Msg: fmt.Sprintf(format, args...)}
}

func (l *Lexer) peekByte() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *Lexer) peekByteAt(off int) byte {
	if l.pos+off >= len(l.src) {
		return 0
	}
	return l.src[l.pos+off]
}

func (l *Lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentCont(c byte) bool { return isIdentStart(c) || isDigit(c) }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isHexDigit(c byte) bool {
	return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}

// Next returns the next token, expanding macros.
func (l *Lexer) Next() (Token, error) {
	if n := len(l.pending); n > 0 {
		t := l.pending[0]
		l.pending = l.pending[1:]
		return t, nil
	}
	t, err := l.lexRaw()
	if err != nil {
		return t, err
	}
	// Object-like macro expansion.
	if t.Kind == TokIdent {
		if body, ok := l.macros[t.Text]; ok && !l.expanding[t.Text] {
			l.expanding[t.Text] = true
			subLexer := &Lexer{src: body, line: 1, col: 1, macros: l.macros, expanding: l.expanding}
			var sub []Token
			var subErr error
			for {
				st, err := subLexer.Next()
				if err != nil {
					subErr = err
					break
				}
				if st.Kind == TokEOF {
					break
				}
				sub = append(sub, st)
			}
			l.expanding[t.Text] = false
			if subErr != nil {
				return Token{}, l.errf("in expansion of macro %s: %v", t.Text, subErr)
			}
			if len(sub) == 0 {
				return l.Next()
			}
			for i := range sub {
				sub[i].Line, sub[i].Col = t.Line, t.Col
			}
			l.pending = append(l.pending, sub[1:]...)
			return sub[0], nil
		}
	}
	return t, nil
}

func (l *Lexer) lexRaw() (Token, error) {
restart:
	// Skip whitespace and comments.
	for l.pos < len(l.src) {
		c := l.peekByte()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.peekByteAt(1) == '/':
			for l.pos < len(l.src) && l.peekByte() != '\n' {
				l.advance()
			}
		case c == '/' && l.peekByteAt(1) == '*':
			l.advance()
			l.advance()
			for {
				if l.pos >= len(l.src) {
					return Token{}, l.errf("unterminated block comment")
				}
				if l.peekByte() == '*' && l.peekByteAt(1) == '/' {
					l.advance()
					l.advance()
					break
				}
				l.advance()
			}
		default:
			goto scanned
		}
	}
scanned:
	if l.pos >= len(l.src) {
		return Token{Kind: TokEOF, Line: l.line, Col: l.col}, nil
	}

	startLine, startCol := l.line, l.col
	c := l.peekByte()

	// Preprocessor directive: consume the (possibly continued) line.
	if c == '#' && startCol == 1 || (c == '#' && l.atLineStart()) {
		var sb strings.Builder
		for l.pos < len(l.src) {
			ch := l.peekByte()
			if ch == '\n' {
				if strings.HasSuffix(strings.TrimRight(sb.String(), " \t"), "\\") {
					s := strings.TrimRight(sb.String(), " \t")
					sb.Reset()
					sb.WriteString(s[:len(s)-1])
					sb.WriteByte(' ')
					l.advance()
					continue
				}
				break
			}
			sb.WriteByte(ch)
			l.advance()
		}
		l.handleDirective(sb.String())
		goto restart
	}

	switch {
	case isIdentStart(c):
		start := l.pos
		for l.pos < len(l.src) && isIdentCont(l.peekByte()) {
			l.advance()
		}
		text := l.src[start:l.pos]
		kind := TokIdent
		if keywords[text] {
			kind = TokKeyword
		}
		return Token{Kind: kind, Text: text, Line: startLine, Col: startCol}, nil

	case isDigit(c) || (c == '.' && isDigit(l.peekByteAt(1))):
		return l.lexNumber(startLine, startCol)

	case c == '\'':
		l.advance()
		var text strings.Builder
		for {
			if l.pos >= len(l.src) {
				return Token{}, l.errf("unterminated char literal")
			}
			ch := l.advance()
			if ch == '\\' {
				text.WriteByte(ch)
				if l.pos < len(l.src) {
					text.WriteByte(l.advance())
				}
				continue
			}
			if ch == '\'' {
				break
			}
			text.WriteByte(ch)
		}
		return Token{Kind: TokCharLit, Text: text.String(), Line: startLine, Col: startCol}, nil

	case c == '"':
		l.advance()
		var text strings.Builder
		for {
			if l.pos >= len(l.src) {
				return Token{}, l.errf("unterminated string literal")
			}
			ch := l.advance()
			if ch == '\\' {
				text.WriteByte(ch)
				if l.pos < len(l.src) {
					text.WriteByte(l.advance())
				}
				continue
			}
			if ch == '"' {
				break
			}
			text.WriteByte(ch)
		}
		return Token{Kind: TokStringLit, Text: text.String(), Line: startLine, Col: startCol}, nil

	default:
		return l.lexPunct(startLine, startCol)
	}
}

// atLineStart reports whether only whitespace precedes l.pos on its line.
func (l *Lexer) atLineStart() bool {
	i := l.pos - 1
	for i >= 0 && l.src[i] != '\n' {
		if l.src[i] != ' ' && l.src[i] != '\t' {
			return false
		}
		i--
	}
	return true
}

// handleDirective interprets "#define NAME body" (object-like only);
// every other directive (e.g. #pragma, #ifdef) is ignored.
func (l *Lexer) handleDirective(line string) {
	line = strings.TrimPrefix(strings.TrimSpace(line), "#")
	line = strings.TrimSpace(line)
	if !strings.HasPrefix(line, "define") {
		return
	}
	rest := strings.TrimSpace(strings.TrimPrefix(line, "define"))
	if rest == "" {
		return
	}
	// Split the macro name from its body.
	i := 0
	for i < len(rest) && isIdentCont(rest[i]) {
		i++
	}
	name := rest[:i]
	if name == "" {
		return
	}
	// Function-like macros (NAME followed immediately by '(') are not
	// supported; skip them rather than mis-expanding.
	if i < len(rest) && rest[i] == '(' {
		return
	}
	l.macros[name] = strings.TrimSpace(rest[i:])
}

func (l *Lexer) lexNumber(line, col int) (Token, error) {
	start := l.pos
	isFloat := false
	if l.peekByte() == '0' && (l.peekByteAt(1) == 'x' || l.peekByteAt(1) == 'X') {
		l.advance()
		l.advance()
		for l.pos < len(l.src) && isHexDigit(l.peekByte()) {
			l.advance()
		}
	} else {
		for l.pos < len(l.src) && isDigit(l.peekByte()) {
			l.advance()
		}
		if l.peekByte() == '.' {
			isFloat = true
			l.advance()
			for l.pos < len(l.src) && isDigit(l.peekByte()) {
				l.advance()
			}
		}
		if c := l.peekByte(); c == 'e' || c == 'E' {
			next := l.peekByteAt(1)
			if isDigit(next) || ((next == '+' || next == '-') && isDigit(l.peekByteAt(2))) {
				isFloat = true
				l.advance()
				if c := l.peekByte(); c == '+' || c == '-' {
					l.advance()
				}
				for l.pos < len(l.src) && isDigit(l.peekByte()) {
					l.advance()
				}
			}
		}
	}
	// Suffixes: f F u U l L in any combination.
	for {
		c := l.peekByte()
		if c == 'f' || c == 'F' {
			isFloat = true
			l.advance()
			continue
		}
		if c == 'u' || c == 'U' || c == 'l' || c == 'L' {
			l.advance()
			continue
		}
		break
	}
	text := l.src[start:l.pos]
	kind := TokIntLit
	if isFloat {
		kind = TokFloatLit
	}
	return Token{Kind: kind, Text: text, Line: line, Col: col}, nil
}

// multi-character punctuation, longest first.
var puncts = []string{
	"<<=", ">>=", "...",
	"==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
	"+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--", "->",
	"+", "-", "*", "/", "%", "=", "<", ">", "!", "&", "|", "^", "~",
	"?", ":", ";", ",", ".", "(", ")", "[", "]", "{", "}",
}

func (l *Lexer) lexPunct(line, col int) (Token, error) {
	rest := l.src[l.pos:]
	for _, p := range puncts {
		if strings.HasPrefix(rest, p) {
			for range p {
				l.advance()
			}
			return Token{Kind: TokPunct, Text: p, Line: line, Col: col}, nil
		}
	}
	return Token{}, l.errf("unexpected character %q", l.peekByte())
}
