package clc

import (
	"strings"
	"testing"
)

func tokTexts(t *testing.T, src string) []string {
	t.Helper()
	toks, err := Tokenize(src)
	if err != nil {
		t.Fatalf("Tokenize(%q): %v", src, err)
	}
	out := make([]string, len(toks))
	for i, tk := range toks {
		out[i] = tk.Text
	}
	return out
}

func TestLexBasics(t *testing.T) {
	got := tokTexts(t, "int x = a + 42;")
	want := []string{"int", "x", "=", "a", "+", "42", ";"}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Errorf("tokens = %v, want %v", got, want)
	}
}

func TestLexComments(t *testing.T) {
	src := `
// a line comment
int a; /* block
comment */ float b;`
	got := tokTexts(t, src)
	want := []string{"int", "a", ";", "float", "b", ";"}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Errorf("tokens = %v, want %v", got, want)
	}
}

func TestLexUnterminatedComment(t *testing.T) {
	if _, err := Tokenize("int a; /* oops"); err == nil {
		t.Error("unterminated block comment should error")
	}
}

func TestLexNumbers(t *testing.T) {
	toks, err := Tokenize("1 42u 0x1F 3.14f 1e-3 2.5E+2 10UL .5f 07")
	if err != nil {
		t.Fatal(err)
	}
	kinds := []TokKind{TokIntLit, TokIntLit, TokIntLit, TokFloatLit, TokFloatLit, TokFloatLit, TokIntLit, TokFloatLit, TokIntLit}
	if len(toks) != len(kinds) {
		t.Fatalf("got %d tokens, want %d: %v", len(toks), len(kinds), toks)
	}
	for i, k := range kinds {
		if toks[i].Kind != k {
			t.Errorf("token %d (%q) kind = %v, want %v", i, toks[i].Text, toks[i].Kind, k)
		}
	}
}

func TestLexPunctuationMaximalMunch(t *testing.T) {
	got := tokTexts(t, "a<<=b>>c<=d&&e")
	want := []string{"a", "<<=", "b", ">>", "c", "<=", "d", "&&", "e"}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Errorf("tokens = %v, want %v", got, want)
	}
}

func TestLexKeywordsVsIdents(t *testing.T) {
	toks, err := Tokenize("__kernel void foo(__global float* x)")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != TokKeyword || toks[1].Kind != TokKeyword {
		t.Error("__kernel and void should be keywords")
	}
	if toks[2].Kind != TokIdent || toks[2].Text != "foo" {
		t.Errorf("foo should be an identifier, got %v %q", toks[2].Kind, toks[2].Text)
	}
}

func TestLexDefineMacro(t *testing.T) {
	src := `
#define BLOCK 16
#define TWO_BLOCKS (BLOCK * 2)
int a = BLOCK;
int b = TWO_BLOCKS;`
	got := tokTexts(t, src)
	want := []string{"int", "a", "=", "16", ";", "int", "b", "=", "(", "16", "*", "2", ")", ";"}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Errorf("tokens = %v, want %v", got, want)
	}
}

func TestLexDefineContinuation(t *testing.T) {
	src := "#define N 4 + \\\n 4\nint a = N;"
	got := tokTexts(t, src)
	want := []string{"int", "a", "=", "4", "+", "4", ";"}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Errorf("tokens = %v, want %v", got, want)
	}
}

func TestLexIgnoresOtherDirectives(t *testing.T) {
	src := `#pragma OPENCL EXTENSION cl_khr_fp64 : enable
#ifdef FOO
#endif
int x;`
	got := tokTexts(t, src)
	want := []string{"int", "x", ";"}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Errorf("tokens = %v, want %v", got, want)
	}
}

func TestLexFunctionLikeMacroSkipped(t *testing.T) {
	src := "#define SQR(x) ((x)*(x))\nint a = 3;"
	got := tokTexts(t, src)
	want := []string{"int", "a", "=", "3", ";"}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Errorf("tokens = %v, want %v", got, want)
	}
}

func TestLexCharAndStringLiterals(t *testing.T) {
	toks, err := Tokenize(`char c = 'A'; // and "str"`)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, tk := range toks {
		if tk.Kind == TokCharLit && tk.Text == "A" {
			found = true
		}
	}
	if !found {
		t.Errorf("char literal not lexed: %v", toks)
	}
}

func TestLexPositions(t *testing.T) {
	toks, err := Tokenize("int\n  x;")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Line != 1 || toks[1].Line != 2 || toks[1].Col != 3 {
		t.Errorf("positions wrong: %+v", toks)
	}
}

func TestLexErrorPosition(t *testing.T) {
	_, err := Tokenize("int a;\n  @")
	if err == nil {
		t.Fatal("expected error on '@'")
	}
	le, ok := err.(*LexError)
	if !ok {
		t.Fatalf("error type = %T", err)
	}
	if le.Line != 2 {
		t.Errorf("error line = %d, want 2", le.Line)
	}
}
