package clc

import "testing"

func TestExtractSignaturesHandleDetection(t *testing.T) {
	// Mirrors §III-B: qualified pointers and special types are handles.
	src := `
__kernel void mix(__global float* data,
                  __constant float* table,
                  __local float* scratch,
                  image2d_t img,
                  sampler_t smp,
                  float scale,
                  unsigned int n) {}
`
	sigs, err := ExtractSignatures(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(sigs) != 1 {
		t.Fatalf("got %d signatures", len(sigs))
	}
	want := []ParamKind{
		ParamMemHandle, ParamMemHandle, ParamLocalSize,
		ParamImageHandle, ParamSamplerHandle, ParamScalar, ParamScalar,
	}
	for i, k := range want {
		if got := sigs[0].Params[i].Kind; got != k {
			t.Errorf("param %d (%s) kind = %v, want %v", i, sigs[0].Params[i].Name, got, k)
		}
	}
}

func TestExtractSignaturesMultipleKernels(t *testing.T) {
	src := `
__kernel void a(__global int* x) {}
void helper(float y) {}
kernel void b(__global float* p, int n) {}
`
	sigs, err := ExtractSignatures(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(sigs) != 2 || sigs[0].Name != "a" || sigs[1].Name != "b" {
		t.Fatalf("sigs = %+v", sigs)
	}
	if _, ok := Lookup(sigs, "helper"); ok {
		t.Error("helper is not a kernel and must not be in the signature set")
	}
	if s, ok := Lookup(sigs, "b"); !ok || len(s.Params) != 2 {
		t.Errorf("Lookup(b) = %+v, %v", s, ok)
	}
}

func TestParamKindIsHandle(t *testing.T) {
	cases := map[ParamKind]bool{
		ParamScalar:        false,
		ParamMemHandle:     true,
		ParamLocalSize:     false,
		ParamImageHandle:   true,
		ParamSamplerHandle: true,
	}
	for k, want := range cases {
		if got := k.IsHandle(); got != want {
			t.Errorf("%v.IsHandle() = %v, want %v", k, got, want)
		}
	}
}

func TestClassifyParamPrivatePointer(t *testing.T) {
	if got := ClassifyParam(PtrTo(TypeFloat, ASPrivate)); got != ParamScalar {
		t.Errorf("private pointer classified %v, want scalar", got)
	}
}

func TestExtractSignaturesBadSource(t *testing.T) {
	if _, err := ExtractSignatures("__kernel void broken("); err == nil {
		t.Error("expected parse error")
	}
}
