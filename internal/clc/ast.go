package clc

import (
	"fmt"
	"strings"
)

// AddrSpace is an OpenCL address-space qualifier.
type AddrSpace int

// Address spaces. Private is the default for unqualified declarations.
const (
	ASPrivate AddrSpace = iota
	ASGlobal
	ASLocal
	ASConstant
)

func (a AddrSpace) String() string {
	switch a {
	case ASGlobal:
		return "__global"
	case ASLocal:
		return "__local"
	case ASConstant:
		return "__constant"
	default:
		return "__private"
	}
}

// TypeKind enumerates the scalar and opaque types of the supported subset.
type TypeKind int

// Type kinds.
const (
	TVoid TypeKind = iota
	TBool
	TChar
	TUChar
	TShort
	TUShort
	TInt
	TUInt
	TLong
	TULong
	TFloat
	TDouble
	TSizeT
	TImage2D
	TImage3D
	TSampler
	TPtr
)

// Type describes an OpenCL C type in the supported subset: scalars, the
// opaque image/sampler types, and (possibly qualified) pointers to them.
type Type struct {
	Kind  TypeKind
	Elem  *Type     // element type when Kind == TPtr
	Space AddrSpace // address space of the pointee for TPtr, of the object otherwise

	// ConstElem records a `const` qualifier on the pointee (e.g.
	// `const __global float*`): the kernel cannot store through this
	// parameter, so write-set analysis may drop it from the conservative
	// wildcard fallback. It is qualifier metadata, not part of structural
	// identity: Equal and String ignore it.
	ConstElem bool
}

// Primitive singleton types.
var (
	TypeVoid    = &Type{Kind: TVoid}
	TypeBool    = &Type{Kind: TBool}
	TypeChar    = &Type{Kind: TChar}
	TypeUChar   = &Type{Kind: TUChar}
	TypeShort   = &Type{Kind: TShort}
	TypeUShort  = &Type{Kind: TUShort}
	TypeInt     = &Type{Kind: TInt}
	TypeUInt    = &Type{Kind: TUInt}
	TypeLong    = &Type{Kind: TLong}
	TypeULong   = &Type{Kind: TULong}
	TypeFloat   = &Type{Kind: TFloat}
	TypeDouble  = &Type{Kind: TDouble}
	TypeSizeT   = &Type{Kind: TSizeT}
	TypeImage2D = &Type{Kind: TImage2D}
	TypeImage3D = &Type{Kind: TImage3D}
	TypeSampler = &Type{Kind: TSampler}
)

// PtrTo returns a pointer type to elem in the given address space.
func PtrTo(elem *Type, space AddrSpace) *Type {
	return &Type{Kind: TPtr, Elem: elem, Space: space}
}

// IsFloat reports whether the type is a floating-point scalar.
func (t *Type) IsFloat() bool { return t.Kind == TFloat || t.Kind == TDouble }

// IsInteger reports whether the type is an integer scalar (including bool).
func (t *Type) IsInteger() bool {
	switch t.Kind {
	case TBool, TChar, TUChar, TShort, TUShort, TInt, TUInt, TLong, TULong, TSizeT:
		return true
	}
	return false
}

// IsUnsigned reports whether the integer type is unsigned.
func (t *Type) IsUnsigned() bool {
	switch t.Kind {
	case TBool, TUChar, TUShort, TUInt, TULong, TSizeT:
		return true
	}
	return false
}

// Size reports the storage size of the type in bytes, matching the OpenCL
// device-side layout.
func (t *Type) Size() int {
	switch t.Kind {
	case TBool, TChar, TUChar:
		return 1
	case TShort, TUShort:
		return 2
	case TInt, TUInt, TFloat:
		return 4
	case TLong, TULong, TDouble, TSizeT, TPtr:
		return 8
	case TImage2D, TImage3D, TSampler:
		return 8 // opaque handles
	default:
		return 0
	}
}

// String renders the type in OpenCL C syntax.
func (t *Type) String() string {
	if t == nil {
		return "<nil>"
	}
	switch t.Kind {
	case TPtr:
		space := ""
		if t.Space != ASPrivate {
			space = t.Space.String() + " "
		}
		return space + t.Elem.String() + "*"
	case TVoid:
		return "void"
	case TBool:
		return "bool"
	case TChar:
		return "char"
	case TUChar:
		return "uchar"
	case TShort:
		return "short"
	case TUShort:
		return "ushort"
	case TInt:
		return "int"
	case TUInt:
		return "uint"
	case TLong:
		return "long"
	case TULong:
		return "ulong"
	case TFloat:
		return "float"
	case TDouble:
		return "double"
	case TSizeT:
		return "size_t"
	case TImage2D:
		return "image2d_t"
	case TImage3D:
		return "image3d_t"
	case TSampler:
		return "sampler_t"
	default:
		return fmt.Sprintf("Type(%d)", int(t.Kind))
	}
}

// Equal reports structural type equality.
func (t *Type) Equal(u *Type) bool {
	if t == nil || u == nil {
		return t == u
	}
	if t.Kind != u.Kind {
		return false
	}
	if t.Kind == TPtr {
		return t.Space == u.Space && t.Elem.Equal(u.Elem)
	}
	return true
}

// Param is one formal parameter of a kernel or helper function.
type Param struct {
	Name string
	Type *Type
}

// FuncDecl is a function definition (or prototype, when Body is nil).
type FuncDecl struct {
	Name     string
	IsKernel bool
	Return   *Type
	Params   []Param
	Body     *BlockStmt
	Line     int
}

// GlobalVar is a file-scope __constant (or const) variable with an
// optional initializer list.
type GlobalVar struct {
	Name  string
	Type  *Type
	Elems int // array length; 0 for scalar
	Init  []Expr
}

// Unit is a parsed translation unit.
type Unit struct {
	Funcs   []*FuncDecl
	Globals []*GlobalVar
}

// Lookup returns the function with the given name, or nil.
func (u *Unit) Lookup(name string) *FuncDecl {
	for _, f := range u.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// Kernels returns the kernel functions in declaration order.
func (u *Unit) Kernels() []*FuncDecl {
	var ks []*FuncDecl
	for _, f := range u.Funcs {
		if f.IsKernel {
			ks = append(ks, f)
		}
	}
	return ks
}

// ---- Statements ----

// Stmt is implemented by all statement nodes.
type Stmt interface{ stmtNode() }

// BlockStmt is a brace-enclosed statement list.
type BlockStmt struct{ List []Stmt }

// DeclStmt declares one local variable, optionally an array, optionally
// initialised.
type DeclStmt struct {
	Name  string
	Type  *Type
	Space AddrSpace // ASLocal for __local arrays inside kernels
	Elems Expr      // array length expression, nil for scalars
	Init  Expr
}

// ExprStmt evaluates an expression for its side effects.
type ExprStmt struct{ X Expr }

// IfStmt is if/else.
type IfStmt struct {
	Cond Expr
	Then Stmt
	Else Stmt // may be nil
}

// ForStmt is a C for loop; Init/Cond/Post may be nil. Init may be a
// DeclStmt or ExprStmt.
type ForStmt struct {
	Init Stmt
	Cond Expr
	Post Expr
	Body Stmt
}

// WhileStmt is a while loop.
type WhileStmt struct {
	Cond Expr
	Body Stmt
}

// DoWhileStmt is a do { } while loop.
type DoWhileStmt struct {
	Body Stmt
	Cond Expr
}

// SwitchStmt is a C switch with fallthrough semantics.
type SwitchStmt struct {
	Tag   Expr
	Cases []SwitchCase
}

// SwitchCase is one labelled arm; Vals is nil for default. Consecutive
// labels with no statements between them share one SwitchCase.
type SwitchCase struct {
	Vals []Expr
	Body []Stmt
}

// ReturnStmt returns from the current function; X may be nil.
type ReturnStmt struct{ X Expr }

// BreakStmt breaks the innermost loop.
type BreakStmt struct{}

// ContinueStmt continues the innermost loop.
type ContinueStmt struct{}

func (*BlockStmt) stmtNode()    {}
func (*DeclStmt) stmtNode()     {}
func (*ExprStmt) stmtNode()     {}
func (*IfStmt) stmtNode()       {}
func (*ForStmt) stmtNode()      {}
func (*WhileStmt) stmtNode()    {}
func (*DoWhileStmt) stmtNode()  {}
func (*SwitchStmt) stmtNode()   {}
func (*ReturnStmt) stmtNode()   {}
func (*BreakStmt) stmtNode()    {}
func (*ContinueStmt) stmtNode() {}

// ---- Expressions ----

// Expr is implemented by all expression nodes.
type Expr interface{ exprNode() }

// Ident references a variable or function by name.
type Ident struct{ Name string }

// IntLit is an integer literal (value already decoded).
type IntLit struct{ Val int64 }

// FloatLit is a floating-point literal.
type FloatLit struct{ Val float64 }

// BinaryExpr is a binary operation: + - * / % << >> < > <= >= == != & | ^ && ||.
type BinaryExpr struct {
	Op   string
	L, R Expr
}

// UnaryExpr is a prefix operation: - ! ~ * & ++ --.
type UnaryExpr struct {
	Op string
	X  Expr
}

// PostfixExpr is x++ or x--.
type PostfixExpr struct {
	Op string
	X  Expr
}

// AssignExpr is an assignment, possibly compound (Op is "=", "+=", ...).
type AssignExpr struct {
	Op   string
	L, R Expr
}

// IndexExpr is base[index].
type IndexExpr struct {
	Base  Expr
	Index Expr
}

// CallExpr calls a builtin or user helper function.
type CallExpr struct {
	Fun  string
	Args []Expr
}

// CondExpr is the ternary c ? a : b.
type CondExpr struct {
	Cond, Then, Else Expr
}

// CastExpr converts X to Type.
type CastExpr struct {
	Type *Type
	X    Expr
}

func (*Ident) exprNode()       {}
func (*IntLit) exprNode()      {}
func (*FloatLit) exprNode()    {}
func (*BinaryExpr) exprNode()  {}
func (*UnaryExpr) exprNode()   {}
func (*PostfixExpr) exprNode() {}
func (*AssignExpr) exprNode()  {}
func (*IndexExpr) exprNode()   {}
func (*CallExpr) exprNode()    {}
func (*CondExpr) exprNode()    {}
func (*CastExpr) exprNode()    {}

// Signature renders a function declaration header, used in diagnostics.
func (f *FuncDecl) Signature() string {
	var sb strings.Builder
	if f.IsKernel {
		sb.WriteString("__kernel ")
	}
	sb.WriteString(f.Return.String())
	sb.WriteByte(' ')
	sb.WriteString(f.Name)
	sb.WriteByte('(')
	for i, p := range f.Params {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(p.Type.String())
		sb.WriteByte(' ')
		sb.WriteString(p.Name)
	}
	sb.WriteByte(')')
	return sb.String()
}
