package clc

import (
	"testing"
	"testing/quick"
)

// Robustness: the front end must reject malformed input with errors, never
// panics — CheCL parses whatever source the application hands to
// clCreateProgramWithSource.

func TestLexerNeverPanicsOnRandomInput(t *testing.T) {
	f := func(src string) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("lexer panicked on %q: %v", src, r)
			}
		}()
		_, _ = Tokenize(src)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestParserNeverPanicsOnRandomInput(t *testing.T) {
	f := func(src string) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("parser panicked on %q: %v", src, r)
			}
		}()
		_, _ = Parse(src)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestParserNeverPanicsOnTokenSoup feeds syntactically plausible fragments
// (valid tokens, shuffled) — a harsher input class than raw random bytes.
func TestParserNeverPanicsOnTokenSoup(t *testing.T) {
	frags := []string{
		"__kernel", "void", "float", "*", "(", ")", "{", "}", "[", "]",
		"if", "for", "return", "x", "42", "3.14f", ";", ",", "=", "+",
		"__global", "__local", "barrier", "get_global_id", "?", ":",
	}
	f := func(picks []uint8) bool {
		src := ""
		for _, p := range picks {
			src += frags[int(p)%len(frags)] + " "
		}
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("parser panicked on %q: %v", src, r)
			}
		}()
		_, _ = Parse(src)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestNormalizeIntProperties: normalisation is idempotent and bounded by
// the type's range.
func TestNormalizeIntProperties(t *testing.T) {
	types := []*Type{TypeChar, TypeUChar, TypeShort, TypeUShort, TypeInt, TypeUInt, TypeLong, TypeULong}
	f := func(v int64, pick uint8) bool {
		typ := types[int(pick)%len(types)]
		once := normalizeInt(v, typ)
		twice := normalizeInt(once, typ)
		if once != twice {
			return false
		}
		switch typ.Kind {
		case TChar:
			return once >= -128 && once <= 127
		case TUChar:
			return once >= 0 && once <= 255
		case TShort:
			return once >= -32768 && once <= 32767
		case TUShort:
			return once >= 0 && once <= 65535
		case TInt:
			return once >= -(1<<31) && once <= (1<<31)-1
		case TUInt:
			return once >= 0 && once <= (1<<32)-1
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestPromoteProperties: promotion is symmetric and produces a type of
// rank >= both inputs.
func TestPromoteProperties(t *testing.T) {
	types := []*Type{TypeChar, TypeUChar, TypeShort, TypeUShort, TypeInt,
		TypeUInt, TypeLong, TypeULong, TypeFloat, TypeDouble, TypeSizeT}
	for _, a := range types {
		for _, b := range types {
			ab := promote(a, b)
			ba := promote(b, a)
			if !ab.Equal(ba) {
				t.Errorf("promote(%v,%v)=%v but promote(%v,%v)=%v", a, b, ab, b, a, ba)
			}
			if (a.IsFloat() || b.IsFloat()) && !ab.IsFloat() {
				t.Errorf("promote(%v,%v)=%v lost floatness", a, b, ab)
			}
		}
	}
}

// TestInterpreterIntegerMatchesGoProperty: the interpreted expression
// (a*b + (a>>3) - (b&255)) over int32 agrees with Go semantics for random
// inputs.
func TestInterpreterIntegerMatchesGoProperty(t *testing.T) {
	p := mustCompile(t, `
__kernel void f(__global int* out, int a, int b) {
    out[0] = a * b + (a >> 3) - (b & 255);
}`)
	f := func(a, b int32) bool {
		out := make([]byte, 4)
		ab := make([]byte, 4)
		bb := make([]byte, 4)
		putI32(ab, a)
		putI32(bb, b)
		_, err := p.Execute("f", NDRange{Dims: 1, Global: [3]int{1}, Local: [3]int{1}},
			[]KernelArg{{Mem: out}, {Scalar: ab}, {Scalar: bb}}, ExecOptions{})
		if err != nil {
			return false
		}
		want := a*b + (a >> 3) - (b & 255)
		return i32at(out, 0) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func putI32(b []byte, v int32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}

// TestInterpreterUnsignedMatchesGoProperty: unsigned wraparound and shifts
// agree with Go's uint32 semantics.
func TestInterpreterUnsignedMatchesGoProperty(t *testing.T) {
	p := mustCompile(t, `
__kernel void f(__global uint* out, uint a, uint b) {
    out[0] = (a - b) ^ (a << 5) ^ (b >> 7);
    out[1] = a > b ? 1u : 0u;
}`)
	f := func(a, b uint32) bool {
		out := make([]byte, 8)
		_, err := p.Execute("f", NDRange{Dims: 1, Global: [3]int{1}, Local: [3]int{1}},
			[]KernelArg{{Mem: out}, {Scalar: scalarU32(a)}, {Scalar: scalarU32(b)}}, ExecOptions{})
		if err != nil {
			return false
		}
		want0 := (a - b) ^ (a << 5) ^ (b >> 7)
		var want1 uint32
		if a > b {
			want1 = 1
		}
		got0 := uint32(i32at(out, 0))
		got1 := uint32(i32at(out, 1))
		return got0 == want0 && got1 == want1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
