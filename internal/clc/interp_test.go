package clc

import (
	"encoding/binary"
	"math"
	"testing"
	"testing/quick"
)

// --- test helpers ---

func f32buf(vals ...float32) []byte {
	b := make([]byte, 4*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint32(b[4*i:], math.Float32bits(v))
	}
	return b
}

func f32at(b []byte, i int) float32 {
	return math.Float32frombits(binary.LittleEndian.Uint32(b[4*i:]))
}

func i32buf(vals ...int32) []byte {
	b := make([]byte, 4*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint32(b[4*i:], uint32(v))
	}
	return b
}

func i32at(b []byte, i int) int32 {
	return int32(binary.LittleEndian.Uint32(b[4*i:]))
}

func scalarU32(v uint32) []byte {
	b := make([]byte, 4)
	binary.LittleEndian.PutUint32(b, v)
	return b
}

func scalarF32(v float32) []byte {
	b := make([]byte, 4)
	binary.LittleEndian.PutUint32(b, math.Float32bits(v))
	return b
}

func mustCompile(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Compile(src)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return p
}

// --- tests ---

func TestExecuteVectorAdd(t *testing.T) {
	p := mustCompile(t, `
__kernel void vadd(__global const float* a, __global const float* b,
                   __global float* c, uint n) {
    size_t i = get_global_id(0);
    if (i < n) c[i] = a[i] + b[i];
}`)
	n := 64
	a := make([]byte, 4*n)
	b := make([]byte, 4*n)
	c := make([]byte, 4*n)
	for i := 0; i < n; i++ {
		binary.LittleEndian.PutUint32(a[4*i:], math.Float32bits(float32(i)))
		binary.LittleEndian.PutUint32(b[4*i:], math.Float32bits(float32(2*i)))
	}
	prof, err := p.Execute("vadd",
		NDRange{Dims: 1, Global: [3]int{n}, Local: [3]int{16}},
		[]KernelArg{{Mem: a}, {Mem: b}, {Mem: c}, {Scalar: scalarU32(uint32(n))}},
		ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if got, want := f32at(c, i), float32(3*i); got != want {
			t.Fatalf("c[%d] = %v, want %v", i, got, want)
		}
	}
	if prof.WorkItems != int64(n) {
		t.Errorf("profile work-items = %d, want %d", prof.WorkItems, n)
	}
	if prof.Flops < float64(n) {
		t.Errorf("profile flops = %v, want >= %d", prof.Flops, n)
	}
	if prof.GlobalBytes < int64(12*n) {
		t.Errorf("profile bytes = %d, want >= %d", prof.GlobalBytes, 12*n)
	}
}

func TestExecuteBarrierReduction(t *testing.T) {
	// Classic two-stage reduction with __local scratch and barriers:
	// exercises the lock-step work-group execution path.
	p := mustCompile(t, `
__kernel void reduce(__global const float* in, __global float* partial,
                     __local float* scratch) {
    size_t lid = get_local_id(0);
    size_t gid = get_global_id(0);
    scratch[lid] = in[gid];
    barrier(CLK_LOCAL_MEM_FENCE);
    for (uint s = get_local_size(0) / 2; s > 0; s >>= 1) {
        if (lid < s) scratch[lid] += scratch[lid + s];
        barrier(CLK_LOCAL_MEM_FENCE);
    }
    if (lid == 0) partial[get_group_id(0)] = scratch[0];
}`)
	if !p.barrierKernels["reduce"] {
		t.Fatal("barrier usage not detected")
	}
	n, local := 128, 32
	groups := n / local
	in := make([]byte, 4*n)
	sum := float32(0)
	for i := 0; i < n; i++ {
		v := float32(i%7) + 0.5
		sum += v
		binary.LittleEndian.PutUint32(in[4*i:], math.Float32bits(v))
	}
	partial := make([]byte, 4*groups)
	_, err := p.Execute("reduce",
		NDRange{Dims: 1, Global: [3]int{n}, Local: [3]int{local}},
		[]KernelArg{{Mem: in}, {Mem: partial}, {LocalSize: 4 * local}},
		ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var got float32
	for g := 0; g < groups; g++ {
		got += f32at(partial, g)
	}
	if math.Abs(float64(got-sum)) > 1e-3 {
		t.Errorf("reduction = %v, want %v", got, sum)
	}
}

func TestExecuteLocalArrayDecl(t *testing.T) {
	// __local arrays declared in the body must be shared per work-group.
	p := mustCompile(t, `
__kernel void share(__global int* out) {
    __local int tile[64];
    size_t lid = get_local_id(0);
    tile[lid] = (int)lid * 2;
    barrier(CLK_LOCAL_MEM_FENCE);
    size_t peer = (lid + 1) % get_local_size(0);
    out[get_global_id(0)] = tile[peer];
}`)
	n, local := 64, 16
	out := make([]byte, 4*n)
	if _, err := p.Execute("share",
		NDRange{Dims: 1, Global: [3]int{n}, Local: [3]int{local}},
		[]KernelArg{{Mem: out}}, ExecOptions{}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		peer := (i%local + 1) % local
		if got, want := i32at(out, i), int32(2*peer); got != want {
			t.Fatalf("out[%d] = %d, want %d", i, got, want)
		}
	}
}

func TestExecute2DTranspose(t *testing.T) {
	p := mustCompile(t, `
__kernel void transpose(__global const float* in, __global float* out,
                        uint w, uint h) {
    size_t x = get_global_id(0);
    size_t y = get_global_id(1);
    if (x < w && y < h) out[x * h + y] = in[y * w + x];
}`)
	w, h := 8, 4
	in := make([]byte, 4*w*h)
	out := make([]byte, 4*w*h)
	for i := 0; i < w*h; i++ {
		binary.LittleEndian.PutUint32(in[4*i:], math.Float32bits(float32(i)))
	}
	if _, err := p.Execute("transpose",
		NDRange{Dims: 2, Global: [3]int{w, h}, Local: [3]int{4, 2}},
		[]KernelArg{{Mem: in}, {Mem: out}, {Scalar: scalarU32(uint32(w))}, {Scalar: scalarU32(uint32(h))}},
		ExecOptions{}); err != nil {
		t.Fatal(err)
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if got, want := f32at(out, x*h+y), f32at(in, y*w+x); got != want {
				t.Fatalf("transpose[%d,%d] = %v, want %v", x, y, got, want)
			}
		}
	}
}

func TestExecuteHelperFunctions(t *testing.T) {
	p := mustCompile(t, `
float poly(float x, float a, float b) { return mad(x, a, b); }
int twice(int v) { return v * 2; }
__kernel void k(__global float* out) {
    size_t i = get_global_id(0);
    out[i] = poly((float)i, 2.0f, 1.0f) + (float)twice(3);
}`)
	out := make([]byte, 4*8)
	if _, err := p.Execute("k", NDRange{Dims: 1, Global: [3]int{8}, Local: [3]int{4}},
		[]KernelArg{{Mem: out}}, ExecOptions{}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		want := float32(i)*2 + 1 + 6
		if got := f32at(out, i); got != want {
			t.Fatalf("out[%d] = %v, want %v", i, got, want)
		}
	}
}

func TestExecuteAtomics(t *testing.T) {
	p := mustCompile(t, `
__kernel void count(__global int* counter, __global const int* vals, int threshold) {
    int v = vals[get_global_id(0)];
    if (v > threshold) atomic_inc(&counter[0]);
    atomic_add(&counter[1], v);
}`)
	n := 256
	vals := make([]byte, 4*n)
	wantCount, wantSum := int32(0), int32(0)
	for i := 0; i < n; i++ {
		v := int32(i % 10)
		if v > 4 {
			wantCount++
		}
		wantSum += v
		binary.LittleEndian.PutUint32(vals[4*i:], uint32(v))
	}
	counter := make([]byte, 8)
	if _, err := p.Execute("count", NDRange{Dims: 1, Global: [3]int{n}, Local: [3]int{32}},
		[]KernelArg{{Mem: counter}, {Mem: vals}, {Scalar: scalarU32(4)}}, ExecOptions{Workers: 4}); err != nil {
		t.Fatal(err)
	}
	if got := i32at(counter, 0); got != wantCount {
		t.Errorf("count = %d, want %d", got, wantCount)
	}
	if got := i32at(counter, 1); got != wantSum {
		t.Errorf("sum = %d, want %d", got, wantSum)
	}
}

func TestExecuteConstantTable(t *testing.T) {
	p := mustCompile(t, `
__constant float coef[3] = { 1.0f, 2.0f, 4.0f };
__kernel void k(__global float* out) {
    size_t i = get_global_id(0);
    out[i] = coef[i % 3];
}`)
	out := make([]byte, 4*6)
	if _, err := p.Execute("k", NDRange{Dims: 1, Global: [3]int{6}, Local: [3]int{2}},
		[]KernelArg{{Mem: out}}, ExecOptions{}); err != nil {
		t.Fatal(err)
	}
	want := []float32{1, 2, 4, 1, 2, 4}
	for i, w := range want {
		if got := f32at(out, i); got != w {
			t.Fatalf("out[%d] = %v, want %v", i, got, w)
		}
	}
}

func TestExecuteMathBuiltins(t *testing.T) {
	p := mustCompile(t, `
__kernel void k(__global float* out, float x) {
    out[0] = sqrt(x);
    out[1] = exp(x);
    out[2] = log(x);
    out[3] = sin(x);
    out[4] = cos(x);
    out[5] = pow(x, 2.0f);
    out[6] = fabs(-x);
    out[7] = fmax(x, 3.0f);
    out[8] = native_sqrt(x);
    out[9] = rsqrt(x);
}`)
	out := make([]byte, 4*10)
	x := float32(2.25)
	if _, err := p.Execute("k", NDRange{Dims: 1, Global: [3]int{1}, Local: [3]int{1}},
		[]KernelArg{{Mem: out}, {Scalar: scalarF32(x)}}, ExecOptions{}); err != nil {
		t.Fatal(err)
	}
	want := []float64{
		1.5, math.Exp(2.25), math.Log(2.25), math.Sin(2.25), math.Cos(2.25),
		5.0625, 2.25, 3.0, 1.5, 1 / 1.5,
	}
	for i, wv := range want {
		if got := float64(f32at(out, i)); math.Abs(got-wv) > 1e-5*math.Max(1, math.Abs(wv)) {
			t.Errorf("out[%d] = %v, want %v", i, got, wv)
		}
	}
}

func TestExecuteUnsignedSemantics(t *testing.T) {
	p := mustCompile(t, `
__kernel void k(__global uint* out, uint a, uint b) {
    out[0] = a - b;          // wraps
    out[1] = (a - b) / 2u;   // unsigned division
    out[2] = (uint)(-1) > 0u ? 1u : 0u; // unsigned comparison
    out[3] = a >> 1;         // logical shift
}`)
	out := make([]byte, 16)
	if _, err := p.Execute("k", NDRange{Dims: 1, Global: [3]int{1}, Local: [3]int{1}},
		[]KernelArg{{Mem: out}, {Scalar: scalarU32(2)}, {Scalar: scalarU32(3)}}, ExecOptions{}); err != nil {
		t.Fatal(err)
	}
	if got := binary.LittleEndian.Uint32(out[0:]); got != 0xFFFFFFFF {
		t.Errorf("2u-3u = %#x, want 0xffffffff", got)
	}
	if got := binary.LittleEndian.Uint32(out[4:]); got != 0x7FFFFFFF {
		t.Errorf("(2u-3u)/2 = %#x, want 0x7fffffff", got)
	}
	if got := binary.LittleEndian.Uint32(out[8:]); got != 1 {
		t.Errorf("unsigned comparison failed")
	}
	if got := binary.LittleEndian.Uint32(out[12:]); got != 1 {
		t.Errorf("2u>>1 = %d, want 1", got)
	}
}

func TestExecuteAsTypeReinterpret(t *testing.T) {
	p := mustCompile(t, `
__kernel void k(__global uint* out, float x) {
    out[0] = as_uint(x);
    out[1] = as_uint(as_float(as_uint(x)));
}`)
	out := make([]byte, 8)
	if _, err := p.Execute("k", NDRange{Dims: 1, Global: [3]int{1}, Local: [3]int{1}},
		[]KernelArg{{Mem: out}, {Scalar: scalarF32(1.5)}}, ExecOptions{}); err != nil {
		t.Fatal(err)
	}
	want := math.Float32bits(1.5)
	if got := binary.LittleEndian.Uint32(out[0:]); got != want {
		t.Errorf("as_uint(1.5f) = %#x, want %#x", got, want)
	}
	if got := binary.LittleEndian.Uint32(out[4:]); got != want {
		t.Errorf("roundtrip = %#x, want %#x", got, want)
	}
}

func TestExecuteOutOfBoundsDetected(t *testing.T) {
	p := mustCompile(t, `
__kernel void oob(__global float* x) { x[get_global_id(0) + 100] = 1.0f; }`)
	buf := make([]byte, 4*4)
	_, err := p.Execute("oob", NDRange{Dims: 1, Global: [3]int{4}, Local: [3]int{4}},
		[]KernelArg{{Mem: buf}}, ExecOptions{})
	if err == nil {
		t.Fatal("out-of-bounds store must be detected")
	}
}

func TestExecuteOutOfBoundsWithBarrierNoDeadlock(t *testing.T) {
	// A faulting work-item must not deadlock group-mates at the barrier.
	p := mustCompile(t, `
__kernel void oob(__global float* x) {
    if (get_local_id(0) == 0) x[1000000] = 1.0f;
    barrier(CLK_LOCAL_MEM_FENCE);
    x[get_global_id(0)] = 2.0f;
}`)
	buf := make([]byte, 4*16)
	_, err := p.Execute("oob", NDRange{Dims: 1, Global: [3]int{16}, Local: [3]int{16}},
		[]KernelArg{{Mem: buf}}, ExecOptions{})
	if err == nil {
		t.Fatal("expected error")
	}
}

func TestExecuteDivisionByZero(t *testing.T) {
	p := mustCompile(t, `__kernel void k(__global int* x, int d) { x[0] = 10 / d; }`)
	buf := make([]byte, 4)
	_, err := p.Execute("k", NDRange{Dims: 1, Global: [3]int{1}, Local: [3]int{1}},
		[]KernelArg{{Mem: buf}, {Scalar: scalarU32(0)}}, ExecOptions{})
	if err == nil {
		t.Fatal("integer division by zero must be detected")
	}
}

func TestExecuteBadLaunches(t *testing.T) {
	p := mustCompile(t, `__kernel void k(__global int* x) { x[0] = 1; }`)
	buf := make([]byte, 4)
	if _, err := p.Execute("nope", NDRange{Dims: 1, Global: [3]int{1}, Local: [3]int{1}},
		[]KernelArg{{Mem: buf}}, ExecOptions{}); err == nil {
		t.Error("unknown kernel must fail")
	}
	if _, err := p.Execute("k", NDRange{Dims: 1, Global: [3]int{10}, Local: [3]int{3}},
		[]KernelArg{{Mem: buf}}, ExecOptions{}); err == nil {
		t.Error("non-divisible local size must fail")
	}
	if _, err := p.Execute("k", NDRange{Dims: 1, Global: [3]int{1}, Local: [3]int{1}},
		nil, ExecOptions{}); err == nil {
		t.Error("missing args must fail")
	}
	if _, err := p.Execute("k", NDRange{Dims: 0}, []KernelArg{{Mem: buf}}, ExecOptions{}); err == nil {
		t.Error("invalid dims must fail")
	}
}

func TestExecuteMissingBufferArg(t *testing.T) {
	p := mustCompile(t, `__kernel void k(__global int* x) { x[0] = 1; }`)
	_, err := p.Execute("k", NDRange{Dims: 1, Global: [3]int{1}, Local: [3]int{1}},
		[]KernelArg{{}}, ExecOptions{})
	if err == nil {
		t.Fatal("unset buffer argument must fail")
	}
}

// Property: the interpreter's vadd agrees with a Go reference for random
// inputs (float32 arithmetic is exact for identical operand order).
func TestVectorAddMatchesGoReferenceProperty(t *testing.T) {
	p := mustCompile(t, `
__kernel void vadd(__global const float* a, __global const float* b,
                   __global float* c, uint n) {
    size_t i = get_global_id(0);
    if (i < n) c[i] = a[i] + b[i];
}`)
	f := func(xs []float32) bool {
		n := len(xs)
		if n == 0 {
			return true
		}
		a := make([]byte, 4*n)
		b := make([]byte, 4*n)
		c := make([]byte, 4*n)
		for i, v := range xs {
			binary.LittleEndian.PutUint32(a[4*i:], math.Float32bits(v))
			binary.LittleEndian.PutUint32(b[4*i:], math.Float32bits(v*0.5))
		}
		// Round the global size up to a multiple of 4 with a guard in the
		// kernel, matching how real launches pad.
		global := (n + 3) / 4 * 4
		_, err := p.Execute("vadd", NDRange{Dims: 1, Global: [3]int{global}, Local: [3]int{4}},
			[]KernelArg{{Mem: a}, {Mem: b}, {Mem: c}, {Scalar: scalarU32(uint32(n))}}, ExecOptions{})
		if err != nil {
			return false
		}
		for i, v := range xs {
			want := v + v*0.5
			got := f32at(c, i)
			if got != want && !(math.IsNaN(float64(got)) && math.IsNaN(float64(want))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestProfileScalesWithWork(t *testing.T) {
	p := mustCompile(t, `
__kernel void k(__global float* x) {
    size_t i = get_global_id(0);
    x[i] = x[i] * 2.0f + 1.0f;
}`)
	run := func(n int) Profile {
		buf := make([]byte, 4*n)
		prof, err := p.Execute("k", NDRange{Dims: 1, Global: [3]int{n}, Local: [3]int{8}},
			[]KernelArg{{Mem: buf}}, ExecOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return prof
	}
	p1, p2 := run(64), run(128)
	if p2.Flops != 2*p1.Flops {
		t.Errorf("flops %v then %v: not proportional", p1.Flops, p2.Flops)
	}
	if p2.GlobalBytes != 2*p1.GlobalBytes {
		t.Errorf("bytes %d then %d: not proportional", p1.GlobalBytes, p2.GlobalBytes)
	}
}

func TestWriteSetAnalysis(t *testing.T) {
	p := mustCompile(t, `
void bump(__global float* p, int i) { p[i] += 1.0f; }
__kernel void k(__global const float* in, __global float* out,
                __global float* log, __global int* stats, float s) {
    size_t i = get_global_id(0);
    out[i] = in[i] * s;
    bump(log, (int)i);
    atomic_inc(&stats[0]);
}`)
	ws, ok := p.WriteSet("k")
	if !ok {
		t.Fatal("WriteSet failed")
	}
	want := map[int]bool{1: true, 2: true, 3: true}
	got := map[int]bool{}
	for _, i := range ws {
		got[i] = true
	}
	if got[0] {
		t.Error("read-only parameter 'in' must not be in the write set")
	}
	for i := range want {
		if !got[i] {
			t.Errorf("parameter %d missing from write set %v", i, ws)
		}
	}
}

func TestWriteSetAliasTracking(t *testing.T) {
	p := mustCompile(t, `
__kernel void k(__global float* a, __global const float* b) {
    __global float* p = a;
    p[get_global_id(0)] = b[0];
}`)
	ws, _ := p.WriteSet("k")
	if len(ws) != 1 || ws[0] != 0 {
		t.Errorf("write set = %v, want [0]", ws)
	}
}

func TestWriteSetUnknownKernel(t *testing.T) {
	p := mustCompile(t, `__kernel void k(__global float* a) { a[0] = 1.0f; }`)
	if _, ok := p.WriteSet("missing"); ok {
		t.Error("unknown kernel should report !ok")
	}
}

func TestExecuteWorkItemFunctions(t *testing.T) {
	p := mustCompile(t, `
__kernel void ids(__global int* out) {
    size_t i = get_global_id(0) + get_global_id(1) * get_global_size(0);
    out[i * 4 + 0] = (int)get_local_id(0);
    out[i * 4 + 1] = (int)get_group_id(0);
    out[i * 4 + 2] = (int)get_num_groups(0);
    out[i * 4 + 3] = (int)get_work_dim();
}`)
	gx, gy, lx, ly := 8, 2, 4, 1
	out := make([]byte, 4*4*gx*gy)
	if _, err := p.Execute("ids", NDRange{Dims: 2, Global: [3]int{gx, gy}, Local: [3]int{lx, ly}},
		[]KernelArg{{Mem: out}}, ExecOptions{}); err != nil {
		t.Fatal(err)
	}
	for y := 0; y < gy; y++ {
		for x := 0; x < gx; x++ {
			i := x + y*gx
			if got := i32at(out, i*4+0); got != int32(x%lx) {
				t.Fatalf("local id at %d = %d, want %d", i, got, x%lx)
			}
			if got := i32at(out, i*4+1); got != int32(x/lx) {
				t.Fatalf("group id at %d = %d, want %d", i, got, x/lx)
			}
			if got := i32at(out, i*4+2); got != int32(gx/lx) {
				t.Fatalf("num groups at %d = %d, want %d", i, got, gx/lx)
			}
			if got := i32at(out, i*4+3); got != 2 {
				t.Fatalf("work dim = %d, want 2", got)
			}
		}
	}
}

func TestGlobalOffset(t *testing.T) {
	p := mustCompile(t, `
__kernel void k(__global int* out) {
    out[get_global_id(0) - get_global_offset(0)] = (int)get_global_id(0);
}`)
	out := make([]byte, 4*4)
	if _, err := p.Execute("k",
		NDRange{Dims: 1, Offset: [3]int{10}, Global: [3]int{4}, Local: [3]int{2}},
		[]KernelArg{{Mem: out}}, ExecOptions{}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if got := i32at(out, i); got != int32(10+i) {
			t.Fatalf("out[%d] = %d, want %d", i, got, 10+i)
		}
	}
}

func TestCompileCollectsSignatures(t *testing.T) {
	p := mustCompile(t, `
__kernel void a(__global float* x) {}
__kernel void b(__global float* x, sampler_t s) {}`)
	if len(p.Sigs) != 2 {
		t.Fatalf("sigs = %d, want 2", len(p.Sigs))
	}
	if s, ok := Lookup(p.Sigs, "b"); !ok || s.Params[1].Kind != ParamSamplerHandle {
		t.Errorf("signature b = %+v", s)
	}
}
