package clc

import (
	"fmt"
	"strconv"
	"strings"
)

// Parser is a recursive-descent parser for the supported OpenCL C subset.
type Parser struct {
	toks []Token
	pos  int
}

// ParseError describes a syntax error with position information.
type ParseError struct {
	Line, Col int
	Msg       string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("clc: parse error at %d:%d: %s", e.Line, e.Col, e.Msg)
}

// Parse lexes and parses a full translation unit.
func Parse(src string) (*Unit, error) {
	toks, err := Tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	return p.parseUnit()
}

func (p *Parser) cur() Token {
	if p.pos >= len(p.toks) {
		return Token{Kind: TokEOF}
	}
	return p.toks[p.pos]
}

func (p *Parser) peek(off int) Token {
	if p.pos+off >= len(p.toks) {
		return Token{Kind: TokEOF}
	}
	return p.toks[p.pos+off]
}

func (p *Parser) next() Token {
	t := p.cur()
	p.pos++
	return t
}

func (p *Parser) errf(format string, args ...any) error {
	t := p.cur()
	return &ParseError{Line: t.Line, Col: t.Col, Msg: fmt.Sprintf(format, args...)}
}

func (p *Parser) accept(text string) bool {
	if p.cur().Is(text) {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) expect(text string) error {
	if !p.accept(text) {
		return p.errf("expected %q, found %s", text, p.cur())
	}
	return nil
}

// parseUnit parses the whole file: kernel/helper functions and file-scope
// constant declarations.
func (p *Parser) parseUnit() (*Unit, error) {
	u := &Unit{}
	for p.cur().Kind != TokEOF {
		// Stray semicolons.
		if p.accept(";") {
			continue
		}
		isKernel := false
		for {
			t := p.cur()
			if t.Is("__kernel") || t.Is("kernel") {
				isKernel = true
				p.pos++
				continue
			}
			if t.Is("__attribute__") {
				p.pos++
				if err := p.skipParens(); err != nil {
					return nil, err
				}
				continue
			}
			if t.Is("inline") || t.Is("static") {
				p.pos++
				continue
			}
			break
		}
		typ, space, err := p.parseType()
		if err != nil {
			return nil, err
		}
		nameTok := p.cur()
		if nameTok.Kind != TokIdent {
			return nil, p.errf("expected declarator name, found %s", nameTok)
		}
		p.pos++
		if p.cur().Is("(") {
			fn, err := p.parseFuncRest(nameTok.Text, typ, isKernel)
			if err != nil {
				return nil, err
			}
			u.Funcs = append(u.Funcs, fn)
			continue
		}
		// File-scope variable: only meaningful for __constant/const tables.
		gv := &GlobalVar{Name: nameTok.Text, Type: typ}
		_ = space
		if p.accept("[") {
			if !p.cur().Is("]") {
				n, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				lit, ok := constFold(n)
				if !ok {
					return nil, p.errf("global array length must be constant")
				}
				gv.Elems = int(lit)
			}
			if err := p.expect("]"); err != nil {
				return nil, err
			}
		}
		if p.accept("=") {
			if p.accept("{") {
				for !p.cur().Is("}") {
					e, err := p.parseAssign()
					if err != nil {
						return nil, err
					}
					gv.Init = append(gv.Init, e)
					if !p.accept(",") {
						break
					}
				}
				if err := p.expect("}"); err != nil {
					return nil, err
				}
				if gv.Elems == 0 {
					gv.Elems = len(gv.Init)
				}
			} else {
				e, err := p.parseAssign()
				if err != nil {
					return nil, err
				}
				gv.Init = []Expr{e}
			}
		}
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		u.Globals = append(u.Globals, gv)
	}
	return u, nil
}

// skipParens consumes a balanced ( ... ) group starting at the current
// token, which must be "(".
func (p *Parser) skipParens() error {
	if err := p.expect("("); err != nil {
		return err
	}
	depth := 1
	for depth > 0 {
		t := p.next()
		switch {
		case t.Kind == TokEOF:
			return p.errf("unbalanced parentheses")
		case t.Is("("):
			depth++
		case t.Is(")"):
			depth--
		}
	}
	return nil
}

// parseType parses a type specifier: qualifiers, base type, and pointer
// declarators. It returns the type and the address space that qualified it
// (relevant for __local declarations of arrays inside kernels).
func (p *Parser) parseType() (*Type, AddrSpace, error) {
	space := ASPrivate
	unsigned := false
	sawConst := false
	var base *Type
	sawBase := false
	for {
		t := p.cur()
		switch {
		case t.Is("__global") || t.Is("global"):
			space = ASGlobal
			p.pos++
		case t.Is("__local") || t.Is("local"):
			space = ASLocal
			p.pos++
		case t.Is("__constant") || t.Is("constant"):
			space = ASConstant
			p.pos++
		case t.Is("__private") || t.Is("private"):
			space = ASPrivate
			p.pos++
		case t.Is("const") || t.Is("volatile") || t.Is("restrict"):
			if t.Is("const") {
				sawConst = true
			}
			p.pos++
		case t.Is("__read_only") || t.Is("read_only") || t.Is("__write_only") ||
			t.Is("write_only") || t.Is("__read_write") || t.Is("read_write"):
			p.pos++
		case t.Is("unsigned"):
			unsigned = true
			p.pos++
		case t.Is("signed"):
			p.pos++
		case t.Kind == TokKeyword && !sawBase:
			var bt *Type
			switch t.Text {
			case "void":
				bt = TypeVoid
			case "bool":
				bt = TypeBool
			case "char":
				bt = TypeChar
			case "uchar":
				bt = TypeUChar
			case "short":
				bt = TypeShort
			case "ushort":
				bt = TypeUShort
			case "int":
				bt = TypeInt
			case "uint":
				bt = TypeUInt
			case "long":
				bt = TypeLong
			case "ulong":
				bt = TypeULong
			case "float":
				bt = TypeFloat
			case "double", "half":
				bt = TypeDouble
			case "size_t", "ptrdiff_t":
				bt = TypeSizeT
			case "image2d_t":
				bt = TypeImage2D
			case "image3d_t":
				bt = TypeImage3D
			case "sampler_t":
				bt = TypeSampler
			}
			if bt == nil {
				goto done
			}
			base = bt
			sawBase = true
			p.pos++
		default:
			goto done
		}
	}
done:
	if base == nil {
		if unsigned {
			base = TypeUInt
		} else {
			return nil, space, p.errf("expected type, found %s", p.cur())
		}
	} else if unsigned {
		switch base.Kind {
		case TChar:
			base = TypeUChar
		case TShort:
			base = TypeUShort
		case TInt:
			base = TypeUInt
		case TLong:
			base = TypeULong
		}
	}
	typ := base
	firstPtr := true
	for p.cur().Is("*") {
		p.pos++
		typ = PtrTo(typ, space)
		// A `const` before the first '*' qualifies the pointee: the kernel
		// cannot store through this pointer.
		if firstPtr && sawConst {
			typ.ConstElem = true
		}
		firstPtr = false
		// const/restrict after '*' qualify the pointer variable itself.
		for p.cur().Is("const") || p.cur().Is("restrict") || p.cur().Is("volatile") {
			p.pos++
		}
	}
	return typ, space, nil
}

// parseFuncRest parses "( params ) { body }" after the name.
func (p *Parser) parseFuncRest(name string, ret *Type, isKernel bool) (*FuncDecl, error) {
	fn := &FuncDecl{Name: name, Return: ret, IsKernel: isKernel, Line: p.cur().Line}
	if err := p.expect("("); err != nil {
		return nil, err
	}
	if !p.cur().Is(")") && !p.cur().Is("void") || (p.cur().Is("void") && !p.peek(1).Is(")")) {
		for {
			typ, _, err := p.parseType()
			if err != nil {
				return nil, err
			}
			pname := ""
			if p.cur().Kind == TokIdent {
				pname = p.next().Text
			}
			// Array parameter declarator decays to a pointer.
			if p.accept("[") {
				for !p.cur().Is("]") && p.cur().Kind != TokEOF {
					p.pos++
				}
				if err := p.expect("]"); err != nil {
					return nil, err
				}
				typ = PtrTo(typ, ASPrivate)
			}
			fn.Params = append(fn.Params, Param{Name: pname, Type: typ})
			if !p.accept(",") {
				break
			}
		}
	} else if p.cur().Is("void") {
		p.pos++ // f(void)
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	if p.accept(";") {
		return fn, nil // prototype
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	fn.Body = body
	return fn, nil
}

func (p *Parser) parseBlock() (*BlockStmt, error) {
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	b := &BlockStmt{}
	for !p.cur().Is("}") {
		if p.cur().Kind == TokEOF {
			return nil, p.errf("unterminated block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		if s != nil {
			b.List = append(b.List, s)
		}
	}
	p.pos++ // consume '}'
	return b, nil
}

func (p *Parser) parseStmt() (Stmt, error) {
	t := p.cur()
	switch {
	case t.Is(";"):
		p.pos++
		return nil, nil
	case t.Is("{"):
		return p.parseBlock()
	case t.Is("if"):
		p.pos++
		if err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		then, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		var els Stmt
		if p.accept("else") {
			els, err = p.parseStmt()
			if err != nil {
				return nil, err
			}
		}
		return &IfStmt{Cond: cond, Then: then, Else: els}, nil
	case t.Is("for"):
		p.pos++
		if err := p.expect("("); err != nil {
			return nil, err
		}
		var initStmt Stmt
		if !p.cur().Is(";") {
			if p.cur().IsTypeStart() {
				ds, err := p.parseDecl()
				if err != nil {
					return nil, err
				}
				initStmt = ds
			} else {
				e, err := p.parseExprList()
				if err != nil {
					return nil, err
				}
				initStmt = &ExprStmt{X: e}
				if err := p.expect(";"); err != nil {
					return nil, err
				}
			}
		} else {
			p.pos++
		}
		var cond Expr
		if !p.cur().Is(";") {
			var err error
			cond, err = p.parseExpr()
			if err != nil {
				return nil, err
			}
		}
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		var post Expr
		if !p.cur().Is(")") {
			var err error
			post, err = p.parseExprList()
			if err != nil {
				return nil, err
			}
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		return &ForStmt{Init: initStmt, Cond: cond, Post: post, Body: body}, nil
	case t.Is("while"):
		p.pos++
		if err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		return &WhileStmt{Cond: cond, Body: body}, nil
	case t.Is("do"):
		p.pos++
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		if err := p.expect("while"); err != nil {
			return nil, err
		}
		if err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		return &DoWhileStmt{Body: body, Cond: cond}, nil
	case t.Is("switch"):
		return p.parseSwitch()
	case t.Is("return"):
		p.pos++
		var x Expr
		if !p.cur().Is(";") {
			var err error
			x, err = p.parseExpr()
			if err != nil {
				return nil, err
			}
		}
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		return &ReturnStmt{X: x}, nil
	case t.Is("break"):
		p.pos++
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		return &BreakStmt{}, nil
	case t.Is("continue"):
		p.pos++
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		return &ContinueStmt{}, nil
	case t.IsTypeStart():
		return p.parseDecl()
	default:
		e, err := p.parseExprList()
		if err != nil {
			return nil, err
		}
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		return &ExprStmt{X: e}, nil
	}
}

// parseSwitch parses a C switch statement. Consecutive labels with no
// intervening statements are collapsed into one SwitchCase with several
// Vals; execution falls through cases until a break.
func (p *Parser) parseSwitch() (Stmt, error) {
	p.pos++ // consume 'switch'
	if err := p.expect("("); err != nil {
		return nil, err
	}
	tag, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	sw := &SwitchStmt{Tag: tag}
	var cur *SwitchCase
	sawDefault := false
	for !p.cur().Is("}") {
		switch {
		case p.cur().Is("case"):
			p.pos++
			v, err := p.parseCond()
			if err != nil {
				return nil, err
			}
			if err := p.expect(":"); err != nil {
				return nil, err
			}
			if cur == nil || len(cur.Body) > 0 || cur.Vals == nil {
				sw.Cases = append(sw.Cases, SwitchCase{})
				cur = &sw.Cases[len(sw.Cases)-1]
			}
			cur.Vals = append(cur.Vals, v)
		case p.cur().Is("default"):
			if sawDefault {
				return nil, p.errf("duplicate default label")
			}
			sawDefault = true
			p.pos++
			if err := p.expect(":"); err != nil {
				return nil, err
			}
			sw.Cases = append(sw.Cases, SwitchCase{})
			cur = &sw.Cases[len(sw.Cases)-1]
		case p.cur().Kind == TokEOF:
			return nil, p.errf("unterminated switch")
		default:
			if cur == nil {
				return nil, p.errf("statement before the first case label")
			}
			st, err := p.parseStmt()
			if err != nil {
				return nil, err
			}
			if st != nil {
				cur.Body = append(cur.Body, st)
			}
		}
	}
	p.pos++ // consume '}'
	return sw, nil
}

// parseDecl parses one local declaration statement (possibly multiple
// declarators are not supported; the kernels in this repo declare one name
// per statement, and the parser reports an informative error otherwise).
func (p *Parser) parseDecl() (Stmt, error) {
	typ, space, err := p.parseType()
	if err != nil {
		return nil, err
	}
	nameTok := p.cur()
	if nameTok.Kind != TokIdent {
		return nil, p.errf("expected declarator name, found %s", nameTok)
	}
	p.pos++
	d := &DeclStmt{Name: nameTok.Text, Type: typ, Space: space}
	if p.accept("[") {
		n, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		d.Elems = n
		if err := p.expect("]"); err != nil {
			return nil, err
		}
	}
	if p.accept("=") {
		init, err := p.parseAssign()
		if err != nil {
			return nil, err
		}
		d.Init = init
	}
	if p.cur().Is(",") {
		return nil, p.errf("multiple declarators in one statement are not supported; split %q into separate declarations", nameTok.Text)
	}
	if err := p.expect(";"); err != nil {
		return nil, err
	}
	return d, nil
}

// parseExprList parses comma-separated expressions (the C comma operator),
// returning the last one but evaluating all — modelled as nested binary ','.
func (p *Parser) parseExprList() (Expr, error) {
	e, err := p.parseAssign()
	if err != nil {
		return nil, err
	}
	for p.accept(",") {
		r, err := p.parseAssign()
		if err != nil {
			return nil, err
		}
		e = &BinaryExpr{Op: ",", L: e, R: r}
	}
	return e, nil
}

// parseExpr parses a full expression without top-level commas.
func (p *Parser) parseExpr() (Expr, error) { return p.parseAssign() }

var assignOps = map[string]bool{
	"=": true, "+=": true, "-=": true, "*=": true, "/=": true, "%=": true,
	"&=": true, "|=": true, "^=": true, "<<=": true, ">>=": true,
}

func (p *Parser) parseAssign() (Expr, error) {
	l, err := p.parseCond()
	if err != nil {
		return nil, err
	}
	if op := p.cur(); op.Kind == TokPunct && assignOps[op.Text] {
		p.pos++
		r, err := p.parseAssign()
		if err != nil {
			return nil, err
		}
		return &AssignExpr{Op: op.Text, L: l, R: r}, nil
	}
	return l, nil
}

func (p *Parser) parseCond() (Expr, error) {
	c, err := p.parseBinary(0)
	if err != nil {
		return nil, err
	}
	if p.accept("?") {
		then, err := p.parseAssign()
		if err != nil {
			return nil, err
		}
		if err := p.expect(":"); err != nil {
			return nil, err
		}
		els, err := p.parseCond()
		if err != nil {
			return nil, err
		}
		return &CondExpr{Cond: c, Then: then, Else: els}, nil
	}
	return c, nil
}

// binary operator precedence (C-like).
var binPrec = map[string]int{
	"||": 1,
	"&&": 2,
	"|":  3,
	"^":  4,
	"&":  5,
	"==": 6, "!=": 6,
	"<": 7, ">": 7, "<=": 7, ">=": 7,
	"<<": 8, ">>": 8,
	"+": 9, "-": 9,
	"*": 10, "/": 10, "%": 10,
}

func (p *Parser) parseBinary(minPrec int) (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		op := p.cur()
		prec, ok := binPrec[op.Text]
		if op.Kind != TokPunct || !ok || prec < minPrec {
			return l, nil
		}
		p.pos++
		r, err := p.parseBinary(prec + 1)
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: op.Text, L: l, R: r}
	}
}

func (p *Parser) parseUnary() (Expr, error) {
	t := p.cur()
	switch {
	case t.Is("-") || t.Is("!") || t.Is("~") || t.Is("*") || t.Is("&") || t.Is("+"):
		p.pos++
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		if t.Text == "+" {
			return x, nil
		}
		return &UnaryExpr{Op: t.Text, X: x}, nil
	case t.Is("++") || t.Is("--"):
		p.pos++
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: t.Text, X: x}, nil
	case t.Is("sizeof"):
		p.pos++
		if err := p.expect("("); err != nil {
			return nil, err
		}
		typ, _, err := p.parseType()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return &IntLit{Val: int64(typ.Size())}, nil
	case t.Is("("):
		// Disambiguate cast from parenthesised expression.
		if p.peek(1).IsTypeStart() {
			p.pos++
			typ, _, err := p.parseType()
			if err != nil {
				return nil, err
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			x, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			return &CastExpr{Type: typ, X: x}, nil
		}
		p.pos++
		e, err := p.parseExprList()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return p.parsePostfix(e)
	default:
		return p.parsePrimary()
	}
}

func (p *Parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case TokIntLit:
		p.pos++
		v, err := parseIntLit(t.Text)
		if err != nil {
			return nil, p.errf("bad integer literal %q: %v", t.Text, err)
		}
		return p.parsePostfix(&IntLit{Val: v})
	case TokFloatLit:
		p.pos++
		v, err := parseFloatLit(t.Text)
		if err != nil {
			return nil, p.errf("bad float literal %q: %v", t.Text, err)
		}
		return p.parsePostfix(&FloatLit{Val: v})
	case TokCharLit:
		p.pos++
		return p.parsePostfix(&IntLit{Val: charValue(t.Text)})
	case TokIdent:
		p.pos++
		if p.cur().Is("(") {
			p.pos++
			call := &CallExpr{Fun: t.Text}
			for !p.cur().Is(")") {
				a, err := p.parseAssign()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, a)
				if !p.accept(",") {
					break
				}
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			return p.parsePostfix(call)
		}
		return p.parsePostfix(&Ident{Name: t.Text})
	default:
		return nil, p.errf("unexpected token %s", t)
	}
}

func (p *Parser) parsePostfix(e Expr) (Expr, error) {
	for {
		switch {
		case p.cur().Is("["):
			p.pos++
			idx, err := p.parseExprList()
			if err != nil {
				return nil, err
			}
			if err := p.expect("]"); err != nil {
				return nil, err
			}
			e = &IndexExpr{Base: e, Index: idx}
		case p.cur().Is("++"):
			p.pos++
			e = &PostfixExpr{Op: "++", X: e}
		case p.cur().Is("--"):
			p.pos++
			e = &PostfixExpr{Op: "--", X: e}
		default:
			return e, nil
		}
	}
}

func parseIntLit(text string) (int64, error) {
	s := strings.TrimRight(text, "uUlL")
	if strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X") {
		v, err := strconv.ParseUint(s[2:], 16, 64)
		return int64(v), err
	}
	if len(s) > 1 && s[0] == '0' {
		v, err := strconv.ParseUint(s[1:], 8, 64)
		return int64(v), err
	}
	v, err := strconv.ParseUint(s, 10, 64)
	return int64(v), err
}

func parseFloatLit(text string) (float64, error) {
	s := strings.TrimRight(text, "fF")
	return strconv.ParseFloat(s, 64)
}

func charValue(text string) int64 {
	if len(text) == 0 {
		return 0
	}
	if text[0] == '\\' && len(text) >= 2 {
		switch text[1] {
		case 'n':
			return '\n'
		case 't':
			return '\t'
		case 'r':
			return '\r'
		case '0':
			return 0
		case '\\':
			return '\\'
		case '\'':
			return '\''
		}
	}
	return int64(text[0])
}

// constFold evaluates a compile-time constant integer expression; the
// second result reports whether folding succeeded.
func constFold(e Expr) (int64, bool) {
	switch v := e.(type) {
	case *IntLit:
		return v.Val, true
	case *UnaryExpr:
		x, ok := constFold(v.X)
		if !ok {
			return 0, false
		}
		switch v.Op {
		case "-":
			return -x, true
		case "~":
			return ^x, true
		case "!":
			if x == 0 {
				return 1, true
			}
			return 0, true
		}
	case *BinaryExpr:
		l, lok := constFold(v.L)
		r, rok := constFold(v.R)
		if !lok || !rok {
			return 0, false
		}
		switch v.Op {
		case "+":
			return l + r, true
		case "-":
			return l - r, true
		case "*":
			return l * r, true
		case "/":
			if r != 0 {
				return l / r, true
			}
		case "%":
			if r != 0 {
				return l % r, true
			}
		case "<<":
			return l << uint(r&63), true
		case ">>":
			return l >> uint(r&63), true
		case "&":
			return l & r, true
		case "|":
			return l | r, true
		case "^":
			return l ^ r, true
		}
	}
	return 0, false
}
