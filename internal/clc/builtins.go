package clc

import (
	"fmt"
	"math"
)

// predefined holds identifiers that OpenCL C exposes without declaration.
var predefined = map[string]value{
	"CLK_LOCAL_MEM_FENCE":  {typ: TypeUInt, i: 1},
	"CLK_GLOBAL_MEM_FENCE": {typ: TypeUInt, i: 2},
	"M_PI":                 {typ: TypeDouble, f: math.Pi},
	"M_PI_F":               {typ: TypeFloat, f: float64(float32(math.Pi))},
	"M_E":                  {typ: TypeDouble, f: math.E},
	"FLT_MAX":              {typ: TypeFloat, f: float64(math.MaxFloat32)},
	"FLT_MIN":              {typ: TypeFloat, f: float64(math.SmallestNonzeroFloat32)},
	"FLT_EPSILON":          {typ: TypeFloat, f: float64(float32(1.1920929e-7))},
	"MAXFLOAT":             {typ: TypeFloat, f: float64(math.MaxFloat32)},
	"INFINITY":             {typ: TypeFloat, f: math.Inf(1)},
	"NAN":                  {typ: TypeFloat, f: math.NaN()},
	"INT_MAX":              {typ: TypeInt, i: math.MaxInt32},
	"INT_MIN":              {typ: TypeInt, i: math.MinInt32},
	"UINT_MAX":             {typ: TypeUInt, i: int64(math.MaxUint32)},
	"CHAR_BIT":             {typ: TypeInt, i: 8},
	"NULL":                 {typ: PtrTo(TypeVoid, ASPrivate)},
	"true":                 {typ: TypeBool, i: 1},
	"false":                {typ: TypeBool, i: 0},
}

// flop weights for transcendental builtins: rough operation equivalents
// used by the roofline cost model.
var mathFlopWeight = map[string]float64{
	"sqrt": 4, "rsqrt": 4, "cbrt": 8,
	"exp": 8, "exp2": 8, "exp10": 8, "expm1": 8,
	"log": 8, "log2": 8, "log10": 8, "log1p": 8,
	"sin": 8, "cos": 8, "tan": 10, "sincos": 12,
	"asin": 10, "acos": 10, "atan": 10, "atan2": 12,
	"sinh": 10, "cosh": 10, "tanh": 10,
	"pow": 12, "powr": 12, "hypot": 8,
	"fabs": 1, "floor": 1, "ceil": 1, "round": 1, "trunc": 1, "rint": 1,
	"fmin": 1, "fmax": 1, "fmod": 4, "copysign": 1, "sign": 1,
	"mad": 2, "fma": 2, "mix": 3, "step": 1, "smoothstep": 6, "clamp": 2,
	"degrees": 1, "radians": 1, "recip": 4, "divide": 4,
}

// callBuiltin dispatches c if it names a builtin; the second result is
// false when c is not a builtin and should be resolved as a user function.
func (w *witem) callBuiltin(c *CallExpr) (value, bool, error) {
	name := c.Fun
	// native_* and half_* variants share their exact counterparts.
	base := name
	for _, prefix := range []string{"native_", "half_"} {
		if len(base) > len(prefix) && base[:len(prefix)] == prefix {
			base = base[len(prefix):]
		}
	}

	evalArgs := func(n int) ([]value, error) {
		if len(c.Args) != n {
			return nil, fmt.Errorf("builtin %s expects %d arguments, got %d", name, n, len(c.Args))
		}
		out := make([]value, n)
		for i, a := range c.Args {
			v, err := w.evalExpr(a)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}

	switch base {
	// ---- work-item functions ----
	case "get_global_id", "get_local_id", "get_group_id", "get_global_size",
		"get_local_size", "get_num_groups", "get_global_offset":
		args, err := evalArgs(1)
		if err != nil {
			return value{}, true, err
		}
		d := int(asInt(args[0]))
		if d < 0 || d > 2 {
			return value{typ: TypeSizeT, i: 0}, true, nil
		}
		var n int
		switch base {
		case "get_global_id":
			n = w.global[d]
		case "get_local_id":
			n = w.local[d]
		case "get_group_id":
			n = w.g.groupID[d]
		case "get_global_size":
			n = w.in.nd.Global[d]
		case "get_local_size":
			n = w.in.nd.Local[d]
		case "get_num_groups":
			n = w.in.numGroups[d]
		case "get_global_offset":
			n = w.in.nd.Offset[d]
		}
		return value{typ: TypeSizeT, i: int64(n)}, true, nil
	case "get_work_dim":
		if _, err := evalArgs(0); err != nil {
			return value{}, true, err
		}
		return value{typ: TypeUInt, i: int64(w.in.nd.Dims)}, true, nil

	// ---- synchronisation ----
	case "barrier", "work_group_barrier":
		for _, a := range c.Args {
			if _, err := w.evalExpr(a); err != nil {
				return value{}, true, err
			}
		}
		if w.g != nil && w.g.barrier != nil {
			if err := w.g.barrier.await(); err != nil {
				return value{}, true, err
			}
		}
		return value{typ: TypeVoid}, true, nil
	case "mem_fence", "read_mem_fence", "write_mem_fence":
		for _, a := range c.Args {
			if _, err := w.evalExpr(a); err != nil {
				return value{}, true, err
			}
		}
		return value{typ: TypeVoid}, true, nil

	// ---- atomics ----
	case "atomic_add", "atom_add", "atomic_sub", "atom_sub", "atomic_inc",
		"atom_inc", "atomic_dec", "atom_dec", "atomic_xchg", "atom_xchg",
		"atomic_min", "atom_min", "atomic_max", "atom_max",
		"atomic_cmpxchg", "atom_cmpxchg", "atomic_or", "atomic_and",
		"atomic_xor":
		return w.callAtomic(base, c)

	// ---- bit reinterpretation ----
	case "as_float":
		args, err := evalArgs(1)
		if err != nil {
			return value{}, true, err
		}
		bits := uint32(asInt(args[0]))
		return value{typ: TypeFloat, f: float64(math.Float32frombits(bits))}, true, nil
	case "as_int", "as_uint":
		args, err := evalArgs(1)
		if err != nil {
			return value{}, true, err
		}
		var bits uint32
		if args[0].typ.IsFloat() {
			bits = math.Float32bits(float32(args[0].f))
		} else {
			bits = uint32(args[0].i)
		}
		t := TypeInt
		if base == "as_uint" {
			t = TypeUInt
		}
		return value{typ: t, i: normalizeInt(int64(bits), t)}, true, nil

	// ---- integer builtins ----
	case "abs":
		args, err := evalArgs(1)
		if err != nil {
			return value{}, true, err
		}
		if args[0].typ.IsFloat() {
			w.prof.Flops++
			return value{typ: args[0].typ, f: math.Abs(args[0].f)}, true, nil
		}
		n := asInt(args[0])
		if n < 0 {
			n = -n
		}
		return value{typ: TypeUInt, i: normalizeInt(n, TypeUInt)}, true, nil
	case "min", "max":
		args, err := evalArgs(2)
		if err != nil {
			return value{}, true, err
		}
		return w.minmax(base, args[0], args[1])
	case "mul24":
		args, err := evalArgs(2)
		if err != nil {
			return value{}, true, err
		}
		return value{typ: TypeInt, i: normalizeInt(asInt(args[0])*asInt(args[1]), TypeInt)}, true, nil
	case "mad24":
		args, err := evalArgs(3)
		if err != nil {
			return value{}, true, err
		}
		return value{typ: TypeInt, i: normalizeInt(asInt(args[0])*asInt(args[1])+asInt(args[2]), TypeInt)}, true, nil
	case "rotate":
		args, err := evalArgs(2)
		if err != nil {
			return value{}, true, err
		}
		v := uint32(asInt(args[0]))
		s := uint(asInt(args[1])) % 32
		out := v<<s | v>>(32-s)
		return value{typ: args[0].typ, i: normalizeInt(int64(out), args[0].typ)}, true, nil
	case "popcount":
		args, err := evalArgs(1)
		if err != nil {
			return value{}, true, err
		}
		n := uint64(asInt(args[0]))
		count := int64(0)
		for n != 0 {
			count += int64(n & 1)
			n >>= 1
		}
		return value{typ: args[0].typ, i: count}, true, nil

	// ---- type conversions (convert_T / convert_T_sat) ----
	case "convert_int", "convert_int_sat":
		return w.convert1(c, TypeInt)
	case "convert_uint", "convert_uint_sat":
		return w.convert1(c, TypeUInt)
	case "convert_long":
		return w.convert1(c, TypeLong)
	case "convert_ulong":
		return w.convert1(c, TypeULong)
	case "convert_float":
		return w.convert1(c, TypeFloat)
	case "convert_double":
		return w.convert1(c, TypeDouble)
	case "convert_uchar", "convert_uchar_sat":
		return w.convert1(c, TypeUChar)
	case "convert_char":
		return w.convert1(c, TypeChar)
	case "convert_short":
		return w.convert1(c, TypeShort)
	case "convert_ushort":
		return w.convert1(c, TypeUShort)
	}

	// ---- float math with a table-driven flop weight ----
	if weight, ok := mathFlopWeight[base]; ok {
		v, err := w.callMath(base, c, weight)
		return v, true, err
	}
	return value{}, false, nil
}

func (w *witem) convert1(c *CallExpr, t *Type) (value, bool, error) {
	if len(c.Args) != 1 {
		return value{}, true, fmt.Errorf("%s expects one argument", c.Fun)
	}
	v, err := w.evalExpr(c.Args[0])
	if err != nil {
		return value{}, true, err
	}
	return convertTo(v, t), true, nil
}

func (w *witem) minmax(op string, a, b value) (value, bool, error) {
	t := promote(a.typ, b.typ)
	if t.IsFloat() {
		w.prof.Flops++
		af, bf := asFloat(a), asFloat(b)
		if (op == "min") == (af < bf) {
			return value{typ: t, f: roundF(af, t)}, true, nil
		}
		return value{typ: t, f: roundF(bf, t)}, true, nil
	}
	ai := normalizeInt(asInt(a), t)
	bi := normalizeInt(asInt(b), t)
	less := ai < bi
	if t.IsUnsigned() {
		less = uint64(ai) < uint64(bi)
	}
	if (op == "min") == less {
		return value{typ: t, i: ai}, true, nil
	}
	return value{typ: t, i: bi}, true, nil
}

func (w *witem) callAtomic(base string, c *CallExpr) (value, bool, error) {
	nargs := 2
	switch base {
	case "atomic_inc", "atom_inc", "atomic_dec", "atom_dec":
		nargs = 1
	case "atomic_cmpxchg", "atom_cmpxchg":
		nargs = 3
	}
	if len(c.Args) != nargs {
		return value{}, true, fmt.Errorf("%s expects %d arguments, got %d", base, nargs, len(c.Args))
	}
	args := make([]value, len(c.Args))
	for i, a := range c.Args {
		v, err := w.evalExpr(a)
		if err != nil {
			return value{}, true, err
		}
		args[i] = v
	}
	ptr := args[0]
	if ptr.typ == nil || ptr.typ.Kind != TPtr || ptr.p.mem == nil {
		return value{}, true, fmt.Errorf("%s: first argument must be a non-null pointer", base)
	}
	elem := ptr.p.elem

	globalAtomicMu.Lock()
	defer globalAtomicMu.Unlock()
	old, err := loadScalar(ptr.p.mem, ptr.p.off, elem, &w.prof)
	if err != nil {
		return value{}, true, err
	}
	var nv int64
	ov := asInt(old)
	switch base {
	case "atomic_add", "atom_add":
		nv = ov + asInt(args[1])
	case "atomic_sub", "atom_sub":
		nv = ov - asInt(args[1])
	case "atomic_inc", "atom_inc":
		nv = ov + 1
	case "atomic_dec", "atom_dec":
		nv = ov - 1
	case "atomic_xchg", "atom_xchg":
		nv = asInt(args[1])
	case "atomic_min", "atom_min":
		nv = ov
		if x := asInt(args[1]); x < nv {
			nv = x
		}
	case "atomic_max", "atom_max":
		nv = ov
		if x := asInt(args[1]); x > nv {
			nv = x
		}
	case "atomic_and":
		nv = ov & asInt(args[1])
	case "atomic_or":
		nv = ov | asInt(args[1])
	case "atomic_xor":
		nv = ov ^ asInt(args[1])
	case "atomic_cmpxchg", "atom_cmpxchg":
		if ov == asInt(args[1]) {
			nv = asInt(args[2])
		} else {
			nv = ov
		}
	}
	if err := storeScalar(ptr.p.mem, ptr.p.off, elem, value{typ: elem, i: normalizeInt(nv, elem)}, &w.prof); err != nil {
		return value{}, true, err
	}
	return old, true, nil
}

func (w *witem) callMath(base string, c *CallExpr, weight float64) (value, error) {
	args := make([]value, len(c.Args))
	for i, a := range c.Args {
		v, err := w.evalExpr(a)
		if err != nil {
			return value{}, err
		}
		args[i] = v
	}
	w.prof.Flops += weight
	f := make([]float64, len(args))
	t := TypeFloat
	for i, a := range args {
		f[i] = asFloat(a)
		if a.typ != nil && a.typ.Kind == TDouble {
			t = TypeDouble
		}
	}
	need := func(n int) error {
		if len(f) != n {
			return fmt.Errorf("builtin %s expects %d arguments, got %d", base, n, len(f))
		}
		return nil
	}
	var out float64
	switch base {
	case "sqrt":
		if err := need(1); err != nil {
			return value{}, err
		}
		out = math.Sqrt(f[0])
	case "rsqrt":
		if err := need(1); err != nil {
			return value{}, err
		}
		out = 1 / math.Sqrt(f[0])
	case "cbrt":
		if err := need(1); err != nil {
			return value{}, err
		}
		out = math.Cbrt(f[0])
	case "exp":
		if err := need(1); err != nil {
			return value{}, err
		}
		out = math.Exp(f[0])
	case "exp2":
		if err := need(1); err != nil {
			return value{}, err
		}
		out = math.Exp2(f[0])
	case "exp10":
		if err := need(1); err != nil {
			return value{}, err
		}
		out = math.Pow(10, f[0])
	case "expm1":
		if err := need(1); err != nil {
			return value{}, err
		}
		out = math.Expm1(f[0])
	case "log":
		if err := need(1); err != nil {
			return value{}, err
		}
		out = math.Log(f[0])
	case "log2":
		if err := need(1); err != nil {
			return value{}, err
		}
		out = math.Log2(f[0])
	case "log10":
		if err := need(1); err != nil {
			return value{}, err
		}
		out = math.Log10(f[0])
	case "log1p":
		if err := need(1); err != nil {
			return value{}, err
		}
		out = math.Log1p(f[0])
	case "sin":
		if err := need(1); err != nil {
			return value{}, err
		}
		out = math.Sin(f[0])
	case "cos":
		if err := need(1); err != nil {
			return value{}, err
		}
		out = math.Cos(f[0])
	case "tan":
		if err := need(1); err != nil {
			return value{}, err
		}
		out = math.Tan(f[0])
	case "asin":
		if err := need(1); err != nil {
			return value{}, err
		}
		out = math.Asin(f[0])
	case "acos":
		if err := need(1); err != nil {
			return value{}, err
		}
		out = math.Acos(f[0])
	case "atan":
		if err := need(1); err != nil {
			return value{}, err
		}
		out = math.Atan(f[0])
	case "atan2":
		if err := need(2); err != nil {
			return value{}, err
		}
		out = math.Atan2(f[0], f[1])
	case "sinh":
		if err := need(1); err != nil {
			return value{}, err
		}
		out = math.Sinh(f[0])
	case "cosh":
		if err := need(1); err != nil {
			return value{}, err
		}
		out = math.Cosh(f[0])
	case "tanh":
		if err := need(1); err != nil {
			return value{}, err
		}
		out = math.Tanh(f[0])
	case "pow", "powr":
		if err := need(2); err != nil {
			return value{}, err
		}
		out = math.Pow(f[0], f[1])
	case "hypot":
		if err := need(2); err != nil {
			return value{}, err
		}
		out = math.Hypot(f[0], f[1])
	case "fabs":
		if err := need(1); err != nil {
			return value{}, err
		}
		out = math.Abs(f[0])
	case "floor":
		if err := need(1); err != nil {
			return value{}, err
		}
		out = math.Floor(f[0])
	case "ceil":
		if err := need(1); err != nil {
			return value{}, err
		}
		out = math.Ceil(f[0])
	case "round":
		if err := need(1); err != nil {
			return value{}, err
		}
		out = math.Round(f[0])
	case "trunc", "rint":
		if err := need(1); err != nil {
			return value{}, err
		}
		out = math.Trunc(f[0])
	case "fmin":
		if err := need(2); err != nil {
			return value{}, err
		}
		out = math.Min(f[0], f[1])
	case "fmax":
		if err := need(2); err != nil {
			return value{}, err
		}
		out = math.Max(f[0], f[1])
	case "fmod":
		if err := need(2); err != nil {
			return value{}, err
		}
		out = math.Mod(f[0], f[1])
	case "copysign":
		if err := need(2); err != nil {
			return value{}, err
		}
		out = math.Copysign(f[0], f[1])
	case "sign":
		if err := need(1); err != nil {
			return value{}, err
		}
		switch {
		case f[0] > 0:
			out = 1
		case f[0] < 0:
			out = -1
		default:
			out = 0
		}
	case "mad", "fma":
		if err := need(3); err != nil {
			return value{}, err
		}
		out = f[0]*f[1] + f[2]
	case "mix":
		if err := need(3); err != nil {
			return value{}, err
		}
		out = f[0] + (f[1]-f[0])*f[2]
	case "step":
		if err := need(2); err != nil {
			return value{}, err
		}
		if f[1] < f[0] {
			out = 0
		} else {
			out = 1
		}
	case "smoothstep":
		if err := need(3); err != nil {
			return value{}, err
		}
		tt := (f[2] - f[0]) / (f[1] - f[0])
		if tt < 0 {
			tt = 0
		}
		if tt > 1 {
			tt = 1
		}
		out = tt * tt * (3 - 2*tt)
	case "clamp":
		if err := need(3); err != nil {
			return value{}, err
		}
		out = math.Max(f[1], math.Min(f[0], f[2]))
	case "degrees":
		if err := need(1); err != nil {
			return value{}, err
		}
		out = f[0] * 180 / math.Pi
	case "radians":
		if err := need(1); err != nil {
			return value{}, err
		}
		out = f[0] * math.Pi / 180
	case "recip":
		if err := need(1); err != nil {
			return value{}, err
		}
		out = 1 / f[0]
	case "divide":
		if err := need(2); err != nil {
			return value{}, err
		}
		out = f[0] / f[1]
	default:
		return value{}, fmt.Errorf("math builtin %q not implemented", base)
	}
	return value{typ: t, f: roundF(out, t)}, nil
}
