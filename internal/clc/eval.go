package clc

import (
	"fmt"
)

// lvalue is an assignable location: either a named variable slot or a
// memory-backed element.
type lvalue struct {
	varRef *value  // non-nil for plain variables
	mem    *memory // non-nil for memory-backed targets
	off    int64
	typ    *Type
}

func (w *witem) lval(e Expr) (lvalue, error) {
	switch v := e.(type) {
	case *Ident:
		slot := w.lookup(v.Name)
		if slot == nil {
			return lvalue{}, fmt.Errorf("undefined variable %q", v.Name)
		}
		return lvalue{varRef: slot, typ: slot.typ}, nil
	case *IndexExpr:
		base, err := w.evalExpr(v.Base)
		if err != nil {
			return lvalue{}, err
		}
		if base.typ == nil || base.typ.Kind != TPtr {
			return lvalue{}, fmt.Errorf("indexing non-pointer value")
		}
		if base.p.mem == nil {
			return lvalue{}, fmt.Errorf("indexing null pointer")
		}
		idx, err := w.evalExpr(v.Index)
		if err != nil {
			return lvalue{}, err
		}
		elem := base.p.elem
		off := base.p.off + asInt(idx)*int64(elem.Size())
		return lvalue{mem: base.p.mem, off: off, typ: elem}, nil
	case *UnaryExpr:
		if v.Op == "*" {
			ptr, err := w.evalExpr(v.X)
			if err != nil {
				return lvalue{}, err
			}
			if ptr.typ == nil || ptr.typ.Kind != TPtr || ptr.p.mem == nil {
				return lvalue{}, fmt.Errorf("dereferencing non-pointer or null pointer")
			}
			return lvalue{mem: ptr.p.mem, off: ptr.p.off, typ: ptr.p.elem}, nil
		}
		return lvalue{}, fmt.Errorf("expression is not assignable")
	default:
		return lvalue{}, fmt.Errorf("expression is not assignable")
	}
}

func (w *witem) loadLV(lv lvalue) (value, error) {
	if lv.varRef != nil {
		return *lv.varRef, nil
	}
	return loadScalar(lv.mem, lv.off, lv.typ, &w.prof)
}

func (w *witem) storeLV(lv lvalue, v value) error {
	if lv.varRef != nil {
		*lv.varRef = convertTo(v, lv.typ)
		return nil
	}
	return storeScalar(lv.mem, lv.off, lv.typ, convertTo(v, lv.typ), &w.prof)
}

func (w *witem) evalExpr(e Expr) (value, error) {
	switch v := e.(type) {
	case *IntLit:
		t := TypeInt
		if v.Val > (1<<31)-1 || v.Val < -(1<<31) {
			t = TypeLong
		}
		return value{typ: t, i: v.Val}, nil
	case *FloatLit:
		return value{typ: TypeFloat, f: float64(float32(v.Val))}, nil
	case *Ident:
		if slot := w.lookup(v.Name); slot != nil {
			return *slot, nil
		}
		if c, ok := predefined[v.Name]; ok {
			return c, nil
		}
		return value{}, fmt.Errorf("undefined identifier %q", v.Name)
	case *CastExpr:
		x, err := w.evalExpr(v.X)
		if err != nil {
			return value{}, err
		}
		return convertTo(x, v.Type), nil
	case *CondExpr:
		c, err := w.evalExpr(v.Cond)
		if err != nil {
			return value{}, err
		}
		if truthy(c) {
			return w.evalExpr(v.Then)
		}
		return w.evalExpr(v.Else)
	case *AssignExpr:
		return w.evalAssign(v)
	case *UnaryExpr:
		return w.evalUnary(v)
	case *PostfixExpr:
		lv, err := w.lval(v.X)
		if err != nil {
			return value{}, err
		}
		old, err := w.loadLV(lv)
		if err != nil {
			return value{}, err
		}
		delta := int64(1)
		if v.Op == "--" {
			delta = -1
		}
		var nv value
		if old.typ.Kind == TPtr {
			nv = old
			nv.p.off += delta * int64(old.p.elem.Size())
		} else if old.typ.IsFloat() {
			nv = value{typ: old.typ, f: old.f + float64(delta)}
		} else {
			nv = value{typ: old.typ, i: normalizeInt(old.i+delta, old.typ)}
		}
		if err := w.storeLV(lv, nv); err != nil {
			return value{}, err
		}
		return old, nil
	case *IndexExpr:
		lv, err := w.lval(v)
		if err != nil {
			return value{}, err
		}
		return w.loadLV(lv)
	case *BinaryExpr:
		return w.evalBinary(v)
	case *CallExpr:
		return w.evalCall(v)
	default:
		return value{}, fmt.Errorf("unsupported expression %T", e)
	}
}

func (w *witem) evalAssign(a *AssignExpr) (value, error) {
	lv, err := w.lval(a.L)
	if err != nil {
		return value{}, err
	}
	rhs, err := w.evalExpr(a.R)
	if err != nil {
		return value{}, err
	}
	if a.Op != "=" {
		cur, err := w.loadLV(lv)
		if err != nil {
			return value{}, err
		}
		op := a.Op[:len(a.Op)-1] // "+=" -> "+"
		rhs, err = w.applyBinary(op, cur, rhs)
		if err != nil {
			return value{}, err
		}
	}
	out := convertTo(rhs, lv.typ)
	if err := w.storeLV(lv, out); err != nil {
		return value{}, err
	}
	return out, nil
}

func (w *witem) evalUnary(u *UnaryExpr) (value, error) {
	switch u.Op {
	case "*":
		lv, err := w.lval(u)
		if err != nil {
			return value{}, err
		}
		return w.loadLV(lv)
	case "&":
		lv, err := w.lval(u.X)
		if err != nil {
			return value{}, err
		}
		if lv.mem == nil {
			return value{}, fmt.Errorf("cannot take the address of a register variable")
		}
		return value{typ: PtrTo(lv.typ, ASPrivate), p: ptrVal{mem: lv.mem, off: lv.off, elem: lv.typ}}, nil
	case "++", "--":
		lv, err := w.lval(u.X)
		if err != nil {
			return value{}, err
		}
		old, err := w.loadLV(lv)
		if err != nil {
			return value{}, err
		}
		delta := int64(1)
		if u.Op == "--" {
			delta = -1
		}
		var nv value
		if old.typ.Kind == TPtr {
			nv = old
			nv.p.off += delta * int64(old.p.elem.Size())
		} else if old.typ.IsFloat() {
			nv = value{typ: old.typ, f: old.f + float64(delta)}
		} else {
			nv = value{typ: old.typ, i: normalizeInt(old.i+delta, old.typ)}
		}
		if err := w.storeLV(lv, nv); err != nil {
			return value{}, err
		}
		return nv, nil
	}
	x, err := w.evalExpr(u.X)
	if err != nil {
		return value{}, err
	}
	switch u.Op {
	case "-":
		if x.typ.IsFloat() {
			w.prof.Flops++
			return value{typ: x.typ, f: roundF(-x.f, x.typ)}, nil
		}
		return value{typ: x.typ, i: normalizeInt(-x.i, x.typ)}, nil
	case "!":
		if truthy(x) {
			return value{typ: TypeInt, i: 0}, nil
		}
		return value{typ: TypeInt, i: 1}, nil
	case "~":
		return value{typ: x.typ, i: normalizeInt(^x.i, x.typ)}, nil
	default:
		return value{}, fmt.Errorf("unsupported unary operator %q", u.Op)
	}
}

func (w *witem) evalBinary(b *BinaryExpr) (value, error) {
	switch b.Op {
	case "&&":
		l, err := w.evalExpr(b.L)
		if err != nil {
			return value{}, err
		}
		if !truthy(l) {
			return value{typ: TypeInt, i: 0}, nil
		}
		r, err := w.evalExpr(b.R)
		if err != nil {
			return value{}, err
		}
		return value{typ: TypeInt, i: boolInt(truthy(r))}, nil
	case "||":
		l, err := w.evalExpr(b.L)
		if err != nil {
			return value{}, err
		}
		if truthy(l) {
			return value{typ: TypeInt, i: 1}, nil
		}
		r, err := w.evalExpr(b.R)
		if err != nil {
			return value{}, err
		}
		return value{typ: TypeInt, i: boolInt(truthy(r))}, nil
	case ",":
		if _, err := w.evalExpr(b.L); err != nil {
			return value{}, err
		}
		return w.evalExpr(b.R)
	}
	l, err := w.evalExpr(b.L)
	if err != nil {
		return value{}, err
	}
	r, err := w.evalExpr(b.R)
	if err != nil {
		return value{}, err
	}
	return w.applyBinary(b.Op, l, r)
}

func boolInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// roundF applies single-precision rounding when the result type is float.
func roundF(f float64, t *Type) float64 {
	if t.Kind == TFloat {
		return float64(float32(f))
	}
	return f
}

// promote implements the usual arithmetic conversions for the supported
// scalar set.
func promote(a, b *Type) *Type {
	rank := func(t *Type) int {
		switch t.Kind {
		case TDouble:
			return 10
		case TFloat:
			return 9
		case TULong, TSizeT:
			return 8
		case TLong:
			return 7
		case TUInt:
			return 6
		default:
			return 5 // int and all narrower types promote to int
		}
	}
	ra, rb := rank(a), rank(b)
	hi := a
	if rb > ra {
		hi = b
	}
	// size_t and ulong share a rank; a mixed pair canonicalises to ulong
	// so promotion stays symmetric.
	if ra == rb && a.Kind != b.Kind && hi.Kind == TSizeT {
		hi = TypeULong
	}
	switch hi.Kind {
	case TDouble, TFloat, TULong, TSizeT, TLong, TUInt:
		return hi
	default:
		// Mixed int/uint at the same rank: unsigned wins.
		if (a.Kind == TUInt && ra == rb) || (b.Kind == TUInt && ra == rb) {
			return TypeUInt
		}
		return TypeInt
	}
}

func (w *witem) applyBinary(op string, l, r value) (value, error) {
	// Pointer arithmetic and comparison.
	if l.typ != nil && l.typ.Kind == TPtr || r.typ != nil && r.typ.Kind == TPtr {
		return w.applyPtrBinary(op, l, r)
	}
	t := promote(l.typ, r.typ)
	if t.IsFloat() {
		lf, rf := asFloat(l), asFloat(r)
		w.prof.Flops++
		switch op {
		case "+":
			return value{typ: t, f: roundF(lf+rf, t)}, nil
		case "-":
			return value{typ: t, f: roundF(lf-rf, t)}, nil
		case "*":
			return value{typ: t, f: roundF(lf*rf, t)}, nil
		case "/":
			return value{typ: t, f: roundF(lf/rf, t)}, nil
		case "<":
			return value{typ: TypeInt, i: boolInt(lf < rf)}, nil
		case ">":
			return value{typ: TypeInt, i: boolInt(lf > rf)}, nil
		case "<=":
			return value{typ: TypeInt, i: boolInt(lf <= rf)}, nil
		case ">=":
			return value{typ: TypeInt, i: boolInt(lf >= rf)}, nil
		case "==":
			return value{typ: TypeInt, i: boolInt(lf == rf)}, nil
		case "!=":
			return value{typ: TypeInt, i: boolInt(lf != rf)}, nil
		default:
			return value{}, fmt.Errorf("operator %q not defined on floating-point operands", op)
		}
	}
	li := normalizeInt(asInt(l), t)
	ri := normalizeInt(asInt(r), t)
	unsigned := t.IsUnsigned()
	cmpLess := func() bool {
		if unsigned {
			return uint64(li) < uint64(ri)
		}
		return li < ri
	}
	switch op {
	case "+":
		return value{typ: t, i: normalizeInt(li+ri, t)}, nil
	case "-":
		return value{typ: t, i: normalizeInt(li-ri, t)}, nil
	case "*":
		return value{typ: t, i: normalizeInt(li*ri, t)}, nil
	case "/":
		if ri == 0 {
			return value{}, fmt.Errorf("integer division by zero")
		}
		if unsigned {
			return value{typ: t, i: normalizeInt(int64(uint64(li)/uint64(ri)), t)}, nil
		}
		return value{typ: t, i: normalizeInt(li/ri, t)}, nil
	case "%":
		if ri == 0 {
			return value{}, fmt.Errorf("integer modulo by zero")
		}
		if unsigned {
			return value{typ: t, i: normalizeInt(int64(uint64(li)%uint64(ri)), t)}, nil
		}
		return value{typ: t, i: normalizeInt(li%ri, t)}, nil
	case "&":
		return value{typ: t, i: normalizeInt(li&ri, t)}, nil
	case "|":
		return value{typ: t, i: normalizeInt(li|ri, t)}, nil
	case "^":
		return value{typ: t, i: normalizeInt(li^ri, t)}, nil
	case "<<":
		lt := l.typ
		if lt.Size() < 4 {
			lt = TypeInt
		}
		return value{typ: lt, i: normalizeInt(asInt(l)<<uint(ri&63), lt)}, nil
	case ">>":
		lt := l.typ
		if lt.Size() < 4 {
			lt = TypeInt
		}
		lv := normalizeInt(asInt(l), lt)
		if lt.IsUnsigned() {
			var shifted uint64
			switch lt.Size() {
			case 4:
				shifted = uint64(uint32(lv)) >> uint(ri&63)
			default:
				shifted = uint64(lv) >> uint(ri&63)
			}
			return value{typ: lt, i: normalizeInt(int64(shifted), lt)}, nil
		}
		return value{typ: lt, i: normalizeInt(lv>>uint(ri&63), lt)}, nil
	case "<":
		return value{typ: TypeInt, i: boolInt(cmpLess())}, nil
	case ">":
		return value{typ: TypeInt, i: boolInt(li != ri && !cmpLess())}, nil
	case "<=":
		return value{typ: TypeInt, i: boolInt(li == ri || cmpLess())}, nil
	case ">=":
		return value{typ: TypeInt, i: boolInt(!cmpLess())}, nil
	case "==":
		return value{typ: TypeInt, i: boolInt(li == ri)}, nil
	case "!=":
		return value{typ: TypeInt, i: boolInt(li != ri)}, nil
	default:
		return value{}, fmt.Errorf("unsupported binary operator %q", op)
	}
}

func (w *witem) applyPtrBinary(op string, l, r value) (value, error) {
	lp := l.typ != nil && l.typ.Kind == TPtr
	rp := r.typ != nil && r.typ.Kind == TPtr
	switch {
	case lp && !rp:
		n := asInt(r)
		switch op {
		case "+":
			out := l
			out.p.off += n * int64(l.p.elem.Size())
			return out, nil
		case "-":
			out := l
			out.p.off -= n * int64(l.p.elem.Size())
			return out, nil
		}
	case !lp && rp && op == "+":
		n := asInt(l)
		out := r
		out.p.off += n * int64(r.p.elem.Size())
		return out, nil
	case lp && rp:
		switch op {
		case "-":
			if l.p.mem != r.p.mem {
				return value{}, fmt.Errorf("subtraction of pointers into different objects")
			}
			return value{typ: TypeLong, i: (l.p.off - r.p.off) / int64(l.p.elem.Size())}, nil
		case "==":
			return value{typ: TypeInt, i: boolInt(l.p.mem == r.p.mem && l.p.off == r.p.off)}, nil
		case "!=":
			return value{typ: TypeInt, i: boolInt(!(l.p.mem == r.p.mem && l.p.off == r.p.off))}, nil
		case "<", ">", "<=", ">=":
			if l.p.mem != r.p.mem {
				return value{}, fmt.Errorf("comparison of pointers into different objects")
			}
			return w.applyBinary(op, value{typ: TypeLong, i: l.p.off}, value{typ: TypeLong, i: r.p.off})
		}
	}
	// Pointer vs. integer equality (NULL checks).
	if (lp || rp) && (op == "==" || op == "!=") {
		var isNull bool
		if lp {
			isNull = l.p.mem == nil && asInt(r) == 0
		} else {
			isNull = r.p.mem == nil && asInt(l) == 0
		}
		if op == "==" {
			return value{typ: TypeInt, i: boolInt(isNull)}, nil
		}
		return value{typ: TypeInt, i: boolInt(!isNull)}, nil
	}
	return value{}, fmt.Errorf("unsupported pointer operation %q", op)
}

func (w *witem) evalCall(c *CallExpr) (value, error) {
	// Builtins first: the OpenCL builtin namespace shadows nothing here
	// because user helpers with builtin names are rejected at call time.
	if v, ok, err := w.callBuiltin(c); ok {
		return v, err
	}
	fn := w.in.prog.Unit.Lookup(c.Fun)
	if fn == nil {
		return value{}, fmt.Errorf("call to undefined function %q", c.Fun)
	}
	if fn.Body == nil {
		return value{}, fmt.Errorf("call to function %q with no body", c.Fun)
	}
	if len(c.Args) != len(fn.Params) {
		return value{}, fmt.Errorf("function %q expects %d arguments, got %d", c.Fun, len(fn.Params), len(c.Args))
	}
	if w.depth > 64 {
		return value{}, fmt.Errorf("call depth limit exceeded calling %q", c.Fun)
	}
	args := make([]value, len(c.Args))
	for i, a := range c.Args {
		v, err := w.evalExpr(a)
		if err != nil {
			return value{}, err
		}
		args[i] = v
	}
	saved := w.scopes
	w.scopes = nil
	w.pushScope()
	for i, p := range fn.Params {
		if p.Type.Kind == TPtr {
			w.define(p.Name, args[i])
		} else {
			w.define(p.Name, convertTo(args[i], p.Type))
		}
	}
	w.depth++
	w.retVal = value{typ: fn.Return}
	_, err := w.execStmt(fn.Body)
	w.depth--
	ret := w.retVal
	w.scopes = saved
	if err != nil {
		return value{}, fmt.Errorf("in %s: %w", fn.Name, err)
	}
	return ret, nil
}
