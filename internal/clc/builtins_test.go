package clc

import (
	"encoding/binary"
	"math"
	"testing"
)

// TestAllMathBuiltinsAgainstGo sweeps the single-argument math builtins
// over a set of representative inputs and compares against the Go math
// package (the interpreter computes in float64 and rounds to float32, so
// agreement is within float32 resolution).
func TestAllMathBuiltinsAgainstGo(t *testing.T) {
	cases := []struct {
		name string
		ref  func(float64) float64
	}{
		{"sqrt", math.Sqrt},
		{"cbrt", math.Cbrt},
		{"exp", math.Exp},
		{"exp2", math.Exp2},
		{"exp10", func(x float64) float64 { return math.Pow(10, x) }},
		{"expm1", math.Expm1},
		{"log", math.Log},
		{"log2", math.Log2},
		{"log10", math.Log10},
		{"log1p", math.Log1p},
		{"sin", math.Sin},
		{"cos", math.Cos},
		{"tan", math.Tan},
		{"asin", func(x float64) float64 { return math.Asin(x / 4) }}, // keep in domain via input scaling below
		{"atan", math.Atan},
		{"sinh", math.Sinh},
		{"cosh", math.Cosh},
		{"tanh", math.Tanh},
		{"fabs", math.Abs},
		{"floor", math.Floor},
		{"ceil", math.Ceil},
		{"round", math.Round},
		{"trunc", math.Trunc},
		{"degrees", func(x float64) float64 { return x * 180 / math.Pi }},
		{"radians", func(x float64) float64 { return x * math.Pi / 180 }},
	}
	inputs := []float32{0.1, 0.5, 1.0, 2.25, 3.7}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			arg := "x"
			if c.name == "asin" {
				arg = "x / 4.0f" // stay inside [-1, 1]
			}
			src := "__kernel void f(__global float* out, float x) { out[0] = " + c.name + "(" + arg + "); }"
			p := mustCompile(t, src)
			for _, in := range inputs {
				out := make([]byte, 4)
				_, err := p.Execute("f", NDRange{Dims: 1, Global: [3]int{1}, Local: [3]int{1}},
					[]KernelArg{{Mem: out}, {Scalar: scalarF32(in)}}, ExecOptions{})
				if err != nil {
					t.Fatalf("%s(%v): %v", c.name, in, err)
				}
				got := float64(f32at(out, 0))
				want := c.ref(float64(in))
				if !closeEnough(got, want) {
					t.Errorf("%s(%v) = %v, want %v", c.name, in, got, want)
				}
			}
		})
	}
}

// TestTwoArgMathBuiltins covers the binary/ternary float builtins.
func TestTwoArgMathBuiltins(t *testing.T) {
	p := mustCompile(t, `
__kernel void f(__global float* out, float a, float b) {
    out[0] = pow(a, b);
    out[1] = hypot(a, b);
    out[2] = fmod(a, b);
    out[3] = atan2(a, b);
    out[4] = copysign(a, -b);
    out[5] = fmin(a, b);
    out[6] = fmax(a, b);
    out[7] = mix(a, b, 0.25f);
    out[8] = step(a, b);
    out[9] = clamp(b, 0.0f, a);
    out[10] = smoothstep(0.0f, a, b);
    out[11] = sign(a - b);
}`)
	a, b := float32(2.5), float32(1.75)
	out := make([]byte, 4*12)
	_, err := p.Execute("f", NDRange{Dims: 1, Global: [3]int{1}, Local: [3]int{1}},
		[]KernelArg{{Mem: out}, {Scalar: scalarF32(a)}, {Scalar: scalarF32(b)}}, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	af, bf := float64(a), float64(b)
	tt := bf / af
	want := []float64{
		math.Pow(af, bf), math.Hypot(af, bf), math.Mod(af, bf), math.Atan2(af, bf),
		-af, bf, af, af + (bf-af)*0.25, 0 /* b < a */, bf,
		tt * tt * (3 - 2*tt), 1,
	}
	for i, w := range want {
		if got := float64(f32at(out, i)); !closeEnough(got, w) {
			t.Errorf("out[%d] = %v, want %v", i, got, w)
		}
	}
}

// TestIntegerBuiltins covers abs/min/max/mul24/mad24/rotate/popcount.
func TestIntegerBuiltins(t *testing.T) {
	p := mustCompile(t, `
__kernel void f(__global int* out, int a, int b) {
    out[0] = (int)abs(a - b * 2);
    out[1] = min(a, b);
    out[2] = max(a, b);
    out[3] = mul24(a, b);
    out[4] = mad24(a, b, 7);
    out[5] = (int)rotate((uint)a, (uint)4);
    out[6] = (int)popcount((uint)a);
}`)
	a, b := int32(300), int32(200)
	out := make([]byte, 4*7)
	ab := make([]byte, 4)
	bb := make([]byte, 4)
	binary.LittleEndian.PutUint32(ab, uint32(a))
	binary.LittleEndian.PutUint32(bb, uint32(b))
	_, err := p.Execute("f", NDRange{Dims: 1, Global: [3]int{1}, Local: [3]int{1}},
		[]KernelArg{{Mem: out}, {Scalar: ab}, {Scalar: bb}}, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rot := uint32(a)<<4 | uint32(a)>>28
	pop := int32(0)
	for v := uint32(a); v != 0; v >>= 1 {
		pop += int32(v & 1)
	}
	want := []int32{100, 200, 300, 60000, 60007, int32(rot), pop}
	for i, w := range want {
		if got := i32at(out, i); got != w {
			t.Errorf("out[%d] = %d, want %d", i, got, w)
		}
	}
}

// TestAtomicVariants covers the remaining atomic builtins not exercised by
// the histogram-style tests.
func TestAtomicVariants(t *testing.T) {
	p := mustCompile(t, `
__kernel void f(__global int* v) {
    atomic_xchg(&v[0], 42);
    atomic_min(&v[1], 5);
    atomic_max(&v[2], 5);
    atomic_and(&v[3], 12);
    atomic_or(&v[4], 3);
    atomic_xor(&v[5], 255);
    atomic_cmpxchg(&v[6], 10, 99);
    atomic_cmpxchg(&v[7], 11, 99);
    atomic_sub(&v[8], 4);
    atomic_dec(&v[9]);
}`)
	vals := []int32{0, 10, 1, 10, 8, 170, 10, 10, 10, 10}
	buf := make([]byte, 4*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint32(buf[4*i:], uint32(v))
	}
	_, err := p.Execute("f", NDRange{Dims: 1, Global: [3]int{1}, Local: [3]int{1}},
		[]KernelArg{{Mem: buf}}, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := []int32{42, 5, 5, 8, 11, 170 ^ 255, 99, 10, 6, 9}
	for i, w := range want {
		if got := i32at(buf, i); got != w {
			t.Errorf("v[%d] = %d, want %d", i, got, w)
		}
	}
}

// TestConvertBuiltins covers the convert_T family.
func TestConvertBuiltins(t *testing.T) {
	p := mustCompile(t, `
__kernel void f(__global int* out, float x) {
    out[0] = convert_int(x);
    out[1] = (int)convert_uint(x);
    out[2] = (int)convert_uchar(300.0f + x - x);
    out[3] = (int)convert_short(70000.0f + x - x);
    out[4] = (int)convert_float(7);
}`)
	out := make([]byte, 4*5)
	_, err := p.Execute("f", NDRange{Dims: 1, Global: [3]int{1}, Local: [3]int{1}},
		[]KernelArg{{Mem: out}, {Scalar: scalarF32(3.9)}}, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	c300, s70000 := 300, 70000
	want := []int32{3, 3, int32(uint8(c300)), int32(int16(s70000)), 7}
	for i, w := range want {
		if got := i32at(out, i); got != w {
			t.Errorf("out[%d] = %d, want %d", i, got, w)
		}
	}
}

func closeEnough(got, want float64) bool {
	if math.IsNaN(got) && math.IsNaN(want) {
		return true
	}
	diff := math.Abs(got - want)
	scale := math.Max(1, math.Abs(want))
	return diff <= 1e-5*scale
}
