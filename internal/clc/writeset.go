package clc

// Write-set analysis: determine, statically and conservatively, which
// __global/__constant pointer parameters a kernel may store through. The
// paper lists this capability as future work (§III-D): with it, CheCL can
// perform *incremental* checkpointing of OpenCL objects, writing a memory
// object into the checkpoint file only if some kernel executed since the
// previous checkpoint may have modified it.

// WriteSet reports, for the kernel named name, the indices of parameters
// that the kernel (or any helper it calls) may write through. Parameters
// not in the set are read-only and their buffers cannot be dirtied by the
// kernel. The analysis is conservative: pointer values that flow through
// locals, helper calls or arithmetic are tracked by name; any store whose
// base cannot be traced marks every pointer parameter as written.
func (p *Program) WriteSet(name string) ([]int, bool) {
	fn := p.Unit.Lookup(name)
	if fn == nil || !fn.IsKernel || fn.Body == nil {
		return nil, false
	}
	a := &writeAnalysis{prog: p}
	written := a.analyzeFunc(fn, nil)
	var out []int
	for i, prm := range fn.Params {
		if ClassifyParam(prm.Type) != ParamMemHandle {
			continue
		}
		// The wildcard (an untraceable store) conservatively dirties every
		// pointer parameter — except ones the type system already proves
		// read-only: __constant pointers and const-element pointers cannot
		// be stored through, so even an untraceable store cannot hit them.
		if written[prm.Name] || (written[wildcard] && !readOnlyParam(prm.Type)) {
			out = append(out, i)
		}
	}
	return out, true
}

// readOnlyParam reports whether a pointer parameter is provably read-only:
// the kernel cannot legally store through a __constant pointer or a
// pointer to const.
func readOnlyParam(t *Type) bool {
	return t.Kind == TPtr && (t.Space == ASConstant || t.ConstElem)
}

// wildcard marks "some untraceable pointer was stored through".
const wildcard = "*"

type writeAnalysis struct {
	prog  *Program
	depth int
}

// analyzeFunc returns the set of parameter/alias names written through.
// aliasOf maps a formal parameter name to the caller-side name it aliases
// (nil for the kernel entry).
func (a *writeAnalysis) analyzeFunc(fn *FuncDecl, aliasOf map[string]string) map[string]bool {
	if a.depth > 32 {
		return map[string]bool{wildcard: true}
	}
	a.depth++
	defer func() { a.depth-- }()

	// aliases maps each local pointer variable to the root name it may
	// point into (a parameter name or wildcard).
	aliases := map[string]string{}
	for _, p := range fn.Params {
		if p.Type.Kind == TPtr {
			aliases[p.Name] = p.Name
		}
	}
	written := map[string]bool{}

	var root func(e Expr) string
	root = func(e Expr) string {
		switch v := e.(type) {
		case *Ident:
			if r, ok := aliases[v.Name]; ok {
				return r
			}
			return "" // local array or non-pointer
		case *IndexExpr:
			return root(v.Base)
		case *UnaryExpr:
			if v.Op == "*" || v.Op == "&" {
				return root(v.X)
			}
			return ""
		case *BinaryExpr:
			if r := root(v.L); r != "" {
				return r
			}
			return root(v.R)
		case *CastExpr:
			return root(v.X)
		case *CondExpr:
			if r := root(v.Then); r != "" {
				return r
			}
			return root(v.Else)
		case *AssignExpr:
			return root(v.L)
		default:
			return ""
		}
	}

	mark := func(name string) {
		if name == "" {
			return
		}
		written[name] = true
	}

	var walkExpr func(e Expr)
	var walkStmt func(s Stmt)
	walkExpr = func(e Expr) {
		switch v := e.(type) {
		case nil:
			return
		case *AssignExpr:
			// A store through an lvalue rooted at a pointer parameter.
			switch lhs := v.L.(type) {
			case *IndexExpr:
				mark(root(lhs.Base))
				walkExpr(lhs.Index)
			case *UnaryExpr:
				if lhs.Op == "*" {
					mark(root(lhs.X))
				}
			case *Ident:
				// Re-binding a local pointer: track the new alias.
				if _, isPtr := aliases[lhs.Name]; isPtr || rootIsPtr(v.R, aliases) {
					r := root(v.R)
					if r == "" {
						r = wildcard
					}
					aliases[lhs.Name] = r
				}
			}
			walkExpr(v.R)
		case *BinaryExpr:
			walkExpr(v.L)
			walkExpr(v.R)
		case *UnaryExpr:
			walkExpr(v.X)
		case *PostfixExpr:
			walkExpr(v.X)
		case *IndexExpr:
			walkExpr(v.Base)
			walkExpr(v.Index)
		case *CondExpr:
			walkExpr(v.Cond)
			walkExpr(v.Then)
			walkExpr(v.Else)
		case *CastExpr:
			walkExpr(v.X)
		case *CallExpr:
			for _, arg := range v.Args {
				walkExpr(arg)
			}
			// Atomics write through their first argument.
			if len(v.Args) > 0 && isAtomicName(v.Fun) {
				mark(root(v.Args[0]))
				return
			}
			if callee := a.prog.Unit.Lookup(v.Fun); callee != nil && callee.Body != nil {
				sub := a.analyzeFunc(callee, nil)
				for i, prm := range callee.Params {
					if i >= len(v.Args) {
						break
					}
					if prm.Type.Kind == TPtr && sub[prm.Name] {
						mark(root(v.Args[i]))
					}
				}
				if sub[wildcard] {
					mark(wildcard)
				}
			}
		}
	}
	walkStmt = func(s Stmt) {
		switch v := s.(type) {
		case nil:
			return
		case *BlockStmt:
			for _, c := range v.List {
				walkStmt(c)
			}
		case *DeclStmt:
			if v.Type.Kind == TPtr && v.Init != nil {
				r := root(v.Init)
				if r == "" {
					r = wildcard
				}
				aliases[v.Name] = r
			}
			walkExpr(v.Elems)
			walkExpr(v.Init)
		case *ExprStmt:
			walkExpr(v.X)
		case *IfStmt:
			walkExpr(v.Cond)
			walkStmt(v.Then)
			walkStmt(v.Else)
		case *ForStmt:
			walkStmt(v.Init)
			walkExpr(v.Cond)
			walkExpr(v.Post)
			walkStmt(v.Body)
		case *WhileStmt:
			walkExpr(v.Cond)
			walkStmt(v.Body)
		case *DoWhileStmt:
			walkStmt(v.Body)
			walkExpr(v.Cond)
		case *SwitchStmt:
			walkExpr(v.Tag)
			for _, cs := range v.Cases {
				for _, lv := range cs.Vals {
					walkExpr(lv)
				}
				for _, st := range cs.Body {
					walkStmt(st)
				}
			}
		case *ReturnStmt:
			walkExpr(v.X)
		}
	}
	walkStmt(fn.Body)
	_ = aliasOf
	return written
}

func rootIsPtr(e Expr, aliases map[string]string) bool {
	switch v := e.(type) {
	case *Ident:
		_, ok := aliases[v.Name]
		return ok
	case *BinaryExpr:
		return rootIsPtr(v.L, aliases) || rootIsPtr(v.R, aliases)
	case *CastExpr:
		return v.Type.Kind == TPtr
	case *UnaryExpr:
		return v.Op == "&"
	default:
		return false
	}
}

func isAtomicName(name string) bool {
	return len(name) > 5 && (name[:6] == "atomic" || (len(name) > 4 && name[:5] == "atom_"))
}
