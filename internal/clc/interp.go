package clc

import (
	"encoding/binary"
	"fmt"
	"math"
	"runtime"
	"sync"
)

// Program is a compiled OpenCL C translation unit ready for execution on a
// simulated device.
type Program struct {
	Source string
	Unit   *Unit
	Sigs   []KernelSig

	barrierKernels map[string]bool
}

// Compile parses and validates source, returning an executable Program.
func Compile(source string) (*Program, error) {
	unit, err := Parse(source)
	if err != nil {
		return nil, err
	}
	p := &Program{
		Source:         source,
		Unit:           unit,
		Sigs:           SignaturesFromUnit(unit),
		barrierKernels: map[string]bool{},
	}
	for _, k := range unit.Kernels() {
		p.barrierKernels[k.Name] = p.usesBarrier(k, map[string]bool{})
	}
	return p, nil
}

// usesBarrier reports whether fn (or any helper it calls) contains a
// barrier() call; such kernels need lock-step work-item execution.
func (p *Program) usesBarrier(fn *FuncDecl, visiting map[string]bool) bool {
	if fn == nil || fn.Body == nil || visiting[fn.Name] {
		return false
	}
	visiting[fn.Name] = true
	defer delete(visiting, fn.Name)
	found := false
	var walkExpr func(Expr)
	var walkStmt func(Stmt)
	walkExpr = func(e Expr) {
		if found || e == nil {
			return
		}
		switch v := e.(type) {
		case *CallExpr:
			if v.Fun == "barrier" || v.Fun == "work_group_barrier" {
				found = true
				return
			}
			if callee := p.Unit.Lookup(v.Fun); callee != nil {
				if p.usesBarrier(callee, visiting) {
					found = true
					return
				}
			}
			for _, a := range v.Args {
				walkExpr(a)
			}
		case *BinaryExpr:
			walkExpr(v.L)
			walkExpr(v.R)
		case *UnaryExpr:
			walkExpr(v.X)
		case *PostfixExpr:
			walkExpr(v.X)
		case *AssignExpr:
			walkExpr(v.L)
			walkExpr(v.R)
		case *IndexExpr:
			walkExpr(v.Base)
			walkExpr(v.Index)
		case *CondExpr:
			walkExpr(v.Cond)
			walkExpr(v.Then)
			walkExpr(v.Else)
		case *CastExpr:
			walkExpr(v.X)
		}
	}
	walkStmt = func(s Stmt) {
		if found || s == nil {
			return
		}
		switch v := s.(type) {
		case *BlockStmt:
			for _, c := range v.List {
				walkStmt(c)
			}
		case *DeclStmt:
			walkExpr(v.Elems)
			walkExpr(v.Init)
		case *ExprStmt:
			walkExpr(v.X)
		case *IfStmt:
			walkExpr(v.Cond)
			walkStmt(v.Then)
			walkStmt(v.Else)
		case *ForStmt:
			walkStmt(v.Init)
			walkExpr(v.Cond)
			walkExpr(v.Post)
			walkStmt(v.Body)
		case *WhileStmt:
			walkExpr(v.Cond)
			walkStmt(v.Body)
		case *DoWhileStmt:
			walkStmt(v.Body)
			walkExpr(v.Cond)
		case *SwitchStmt:
			walkExpr(v.Tag)
			for _, cs := range v.Cases {
				for _, lv := range cs.Vals {
					walkExpr(lv)
				}
				for _, st := range cs.Body {
					walkStmt(st)
				}
			}
		case *ReturnStmt:
			walkExpr(v.X)
		}
	}
	walkStmt(fn.Body)
	return found
}

// NDRange is a kernel launch geometry.
type NDRange struct {
	Dims   int
	Offset [3]int
	Global [3]int
	Local  [3]int
}

// Normalize fills unset dimensions with 1 and validates divisibility of
// global by local sizes.
func (n NDRange) Normalize() (NDRange, error) {
	if n.Dims < 1 || n.Dims > 3 {
		return n, fmt.Errorf("clc: invalid work dimension %d", n.Dims)
	}
	for i := 0; i < 3; i++ {
		if i >= n.Dims || n.Global[i] == 0 {
			n.Global[i] = 1
		}
		if i >= n.Dims || n.Local[i] == 0 {
			n.Local[i] = 1
		}
		if n.Global[i]%n.Local[i] != 0 {
			return n, fmt.Errorf("clc: global size %d not divisible by local size %d in dimension %d",
				n.Global[i], n.Local[i], i)
		}
	}
	return n, nil
}

// TotalWorkItems reports the product of global sizes.
func (n NDRange) TotalWorkItems() int64 {
	t := int64(1)
	for i := 0; i < 3; i++ {
		g := n.Global[i]
		if g == 0 {
			g = 1
		}
		t *= int64(g)
	}
	return t
}

// KernelArg is one bound kernel argument. Exactly one of the fields is
// meaningful: Mem for __global/__constant buffer parameters, Scalar for
// by-value parameters, LocalSize for __local pointer parameters.
type KernelArg struct {
	Mem       []byte
	Scalar    []byte
	LocalSize int
}

// Profile accumulates the dynamic operation counts of one kernel launch;
// internal/ocl converts these to virtual execution time via the device's
// roofline model.
type Profile struct {
	Flops       float64
	GlobalBytes int64
	WorkItems   int64
}

func (p *Profile) add(q Profile) {
	p.Flops += q.Flops
	p.GlobalBytes += q.GlobalBytes
	p.WorkItems += q.WorkItems
}

// ExecOptions tunes the interpreter.
type ExecOptions struct {
	// Workers bounds the number of work-groups executed concurrently;
	// 0 means GOMAXPROCS.
	Workers int
}

// memory is one addressable storage region (a global buffer, a __local
// allocation, a __constant table, or a private array).
type memory struct {
	data   []byte
	global bool // accesses are counted in the profile
}

// globalAtomicMu serialises atomic_* builtins across concurrently
// executing work-groups.
var globalAtomicMu sync.Mutex

// value is a runtime value: a scalar or a pointer.
type value struct {
	typ *Type
	i   int64
	f   float64
	p   ptrVal
}

type ptrVal struct {
	mem  *memory
	off  int64
	elem *Type
}

// instance is the shared state of one kernel launch.
type instance struct {
	prog      *Program
	fn        *FuncDecl
	nd        NDRange
	numGroups [3]int
	args      []KernelArg
	argMems   []*memory // cached wrappers for buffer args
	consts    map[string]*value
	constMems map[string]*memory
	barrier   bool
}

// Execute runs the named kernel over the NDRange with bound args and
// returns the dynamic operation profile.
func (p *Program) Execute(name string, nd NDRange, args []KernelArg, opt ExecOptions) (Profile, error) {
	fn := p.Unit.Lookup(name)
	if fn == nil || !fn.IsKernel {
		return Profile{}, fmt.Errorf("clc: kernel %q not found", name)
	}
	if fn.Body == nil {
		return Profile{}, fmt.Errorf("clc: kernel %q has no body", name)
	}
	nd, err := nd.Normalize()
	if err != nil {
		return Profile{}, err
	}
	if len(args) != len(fn.Params) {
		return Profile{}, fmt.Errorf("clc: kernel %q expects %d args, got %d", name, len(fn.Params), len(args))
	}
	in := &instance{
		prog:    p,
		fn:      fn,
		nd:      nd,
		args:    args,
		argMems: make([]*memory, len(args)),
		barrier: p.barrierKernels[name],
	}
	for i := 0; i < 3; i++ {
		in.numGroups[i] = nd.Global[i] / nd.Local[i]
	}
	for i, a := range args {
		if a.Mem != nil {
			in.argMems[i] = &memory{data: a.Mem, global: true}
		}
	}
	if err := in.evalGlobals(); err != nil {
		return Profile{}, err
	}

	totalGroups := in.numGroups[0] * in.numGroups[1] * in.numGroups[2]
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > totalGroups {
		workers = totalGroups
	}

	var (
		profMu sync.Mutex
		prof   Profile
		errMu  sync.Mutex
		first  error
	)
	gids := make(chan int, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for gi := range gids {
				gz := gi / (in.numGroups[0] * in.numGroups[1])
				rem := gi % (in.numGroups[0] * in.numGroups[1])
				gy := rem / in.numGroups[0]
				gx := rem % in.numGroups[0]
				gp, err := in.runGroup([3]int{gx, gy, gz})
				if err != nil {
					errMu.Lock()
					if first == nil {
						first = err
					}
					errMu.Unlock()
					continue
				}
				profMu.Lock()
				prof.add(gp)
				profMu.Unlock()
			}
		}()
	}
	for gi := 0; gi < totalGroups; gi++ {
		gids <- gi
	}
	close(gids)
	wg.Wait()
	if first != nil {
		return Profile{}, first
	}
	prof.WorkItems = nd.TotalWorkItems()
	return prof, nil
}

// evalGlobals materialises file-scope __constant tables.
func (in *instance) evalGlobals() error {
	in.consts = map[string]*value{}
	in.constMems = map[string]*memory{}
	for _, g := range in.prog.Unit.Globals {
		if g.Elems > 0 || len(g.Init) > 1 {
			// Array table: evaluate each element as a constant.
			elem := g.Type
			mem := &memory{data: make([]byte, g.Elems*elem.Size())}
			scratch := &witem{in: in}
			scratch.pushScope()
			for i, e := range g.Init {
				v, err := scratch.evalExpr(e)
				if err != nil {
					return fmt.Errorf("clc: initialising %s[%d]: %w", g.Name, i, err)
				}
				storeScalar(mem, int64(i*elem.Size()), elem, v, nil)
			}
			in.constMems[g.Name] = mem
			in.consts[g.Name] = &value{typ: PtrTo(elem, ASConstant), p: ptrVal{mem: mem, elem: elem}}
			continue
		}
		if len(g.Init) == 1 {
			scratch := &witem{in: in}
			scratch.pushScope()
			v, err := scratch.evalExpr(g.Init[0])
			if err != nil {
				return fmt.Errorf("clc: initialising %s: %w", g.Name, err)
			}
			v2 := convertTo(v, g.Type)
			in.consts[g.Name] = &v2
		}
	}
	return nil
}

// groupCtx is the shared state of one work-group.
type groupCtx struct {
	in      *instance
	groupID [3]int
	mu      sync.Mutex
	locals  map[*DeclStmt]*memory // __local arrays declared in kernel body
	lparams []*memory             // __local parameter allocations
	barrier *cyclicBarrier
}

func (in *instance) runGroup(gid [3]int) (Profile, error) {
	g := &groupCtx{in: in, groupID: gid, locals: map[*DeclStmt]*memory{}}
	g.lparams = make([]*memory, len(in.args))
	for i, p := range in.fn.Params {
		if ClassifyParam(p.Type) == ParamLocalSize {
			g.lparams[i] = &memory{data: make([]byte, in.args[i].LocalSize)}
		}
	}
	groupSize := in.nd.Local[0] * in.nd.Local[1] * in.nd.Local[2]

	if !in.barrier {
		// Sequential work-items: no barriers anywhere in the kernel.
		var prof Profile
		for lz := 0; lz < in.nd.Local[2]; lz++ {
			for ly := 0; ly < in.nd.Local[1]; ly++ {
				for lx := 0; lx < in.nd.Local[0]; lx++ {
					w := newWitem(g, [3]int{lx, ly, lz})
					if err := w.runKernel(); err != nil {
						return Profile{}, err
					}
					prof.add(w.prof)
				}
			}
		}
		return prof, nil
	}

	// Lock-step mode: one goroutine per work-item, synchronised at
	// barrier() calls by a cyclic barrier.
	g.barrier = newCyclicBarrier(groupSize)
	profs := make([]Profile, groupSize)
	errs := make([]error, groupSize)
	var wg sync.WaitGroup
	idx := 0
	for lz := 0; lz < in.nd.Local[2]; lz++ {
		for ly := 0; ly < in.nd.Local[1]; ly++ {
			for lx := 0; lx < in.nd.Local[0]; lx++ {
				wg.Add(1)
				go func(slot int, lid [3]int) {
					defer wg.Done()
					w := newWitem(g, lid)
					err := w.runKernel()
					if err != nil {
						// A failed work-item must not deadlock its
						// group-mates at the barrier.
						g.barrier.abort()
					}
					errs[slot] = err
					profs[slot] = w.prof
				}(idx, [3]int{lx, ly, lz})
				idx++
			}
		}
	}
	wg.Wait()
	var prof Profile
	for i := range profs {
		if errs[i] != nil {
			return Profile{}, errs[i]
		}
		prof.add(profs[i])
	}
	return prof, nil
}

// cyclicBarrier is a reusable synchronisation barrier for one work-group.
type cyclicBarrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	parties int
	waiting int
	gen     int
	broken  bool
}

func newCyclicBarrier(parties int) *cyclicBarrier {
	b := &cyclicBarrier{parties: parties}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// await blocks until all parties reach the barrier; it returns an error
// when the barrier was aborted by a failing work-item.
func (b *cyclicBarrier) await() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.broken {
		return fmt.Errorf("clc: work-group aborted at barrier")
	}
	gen := b.gen
	b.waiting++
	if b.waiting == b.parties {
		b.waiting = 0
		b.gen++
		b.cond.Broadcast()
		return nil
	}
	for gen == b.gen && !b.broken {
		b.cond.Wait()
	}
	if b.broken {
		return fmt.Errorf("clc: work-group aborted at barrier")
	}
	return nil
}

func (b *cyclicBarrier) abort() {
	b.mu.Lock()
	b.broken = true
	b.cond.Broadcast()
	b.mu.Unlock()
}

// witem executes one work-item.
type witem struct {
	in     *instance
	g      *groupCtx
	local  [3]int
	global [3]int
	scopes []map[string]*value
	prof   Profile
	retVal value
	depth  int
}

func newWitem(g *groupCtx, lid [3]int) *witem {
	in := g.in
	w := &witem{in: in, g: g, local: lid}
	for i := 0; i < 3; i++ {
		w.global[i] = in.nd.Offset[i] + g.groupID[i]*in.nd.Local[i] + lid[i]
	}
	return w
}

func (w *witem) pushScope() { w.scopes = append(w.scopes, map[string]*value{}) }
func (w *witem) popScope()  { w.scopes = w.scopes[:len(w.scopes)-1] }

func (w *witem) lookup(name string) *value {
	for i := len(w.scopes) - 1; i >= 0; i-- {
		if v, ok := w.scopes[i][name]; ok {
			return v
		}
	}
	if w.in != nil {
		if v, ok := w.in.consts[name]; ok {
			return v
		}
	}
	return nil
}

func (w *witem) define(name string, v value) {
	nv := v
	w.scopes[len(w.scopes)-1][name] = &nv
}

// runKernel binds the kernel parameters for this work-item and executes
// the body.
func (w *witem) runKernel() error {
	w.scopes = w.scopes[:0]
	w.pushScope()
	fn := w.in.fn
	for i, p := range fn.Params {
		a := w.in.args[i]
		switch ClassifyParam(p.Type) {
		case ParamMemHandle:
			if w.in.argMems[i] == nil {
				return fmt.Errorf("clc: kernel %s: buffer argument %d (%s) not set", fn.Name, i, p.Name)
			}
			w.define(p.Name, value{typ: p.Type, p: ptrVal{mem: w.in.argMems[i], elem: p.Type.Elem}})
		case ParamLocalSize:
			w.define(p.Name, value{typ: p.Type, p: ptrVal{mem: w.g.lparams[i], elem: p.Type.Elem}})
		case ParamImageHandle, ParamSamplerHandle:
			// Images/samplers are carried as opaque buffer references.
			if w.in.argMems[i] != nil {
				w.define(p.Name, value{typ: p.Type, p: ptrVal{mem: w.in.argMems[i], elem: TypeUChar}})
			} else {
				w.define(p.Name, value{typ: p.Type})
			}
		default:
			v, err := decodeScalar(a.Scalar, p.Type)
			if err != nil {
				return fmt.Errorf("clc: kernel %s argument %d (%s): %w", fn.Name, i, p.Name, err)
			}
			w.define(p.Name, v)
		}
	}
	_, err := w.execStmt(fn.Body)
	if err != nil {
		return fmt.Errorf("clc: kernel %s at work-item (%d,%d,%d): %w",
			fn.Name, w.global[0], w.global[1], w.global[2], err)
	}
	return nil
}

// ctrl encodes non-sequential statement outcomes.
type ctrl int

const (
	ctrlNone ctrl = iota
	ctrlBreak
	ctrlContinue
	ctrlReturn
)

const maxLoopIterations = 1 << 28 // runaway-kernel guard

func (w *witem) execStmt(s Stmt) (ctrl, error) {
	switch v := s.(type) {
	case nil:
		return ctrlNone, nil
	case *BlockStmt:
		w.pushScope()
		defer w.popScope()
		for _, c := range v.List {
			ct, err := w.execStmt(c)
			if err != nil || ct != ctrlNone {
				return ct, err
			}
		}
		return ctrlNone, nil
	case *DeclStmt:
		return w.execDecl(v)
	case *ExprStmt:
		_, err := w.evalExpr(v.X)
		return ctrlNone, err
	case *IfStmt:
		c, err := w.evalExpr(v.Cond)
		if err != nil {
			return ctrlNone, err
		}
		if truthy(c) {
			return w.execStmt(v.Then)
		}
		return w.execStmt(v.Else)
	case *ForStmt:
		w.pushScope()
		defer w.popScope()
		if v.Init != nil {
			if _, err := w.execStmt(v.Init); err != nil {
				return ctrlNone, err
			}
		}
		for iter := 0; ; iter++ {
			if iter > maxLoopIterations {
				return ctrlNone, fmt.Errorf("loop iteration limit exceeded")
			}
			if v.Cond != nil {
				c, err := w.evalExpr(v.Cond)
				if err != nil {
					return ctrlNone, err
				}
				if !truthy(c) {
					break
				}
			}
			ct, err := w.execStmt(v.Body)
			if err != nil {
				return ctrlNone, err
			}
			if ct == ctrlBreak {
				break
			}
			if ct == ctrlReturn {
				return ctrlReturn, nil
			}
			if v.Post != nil {
				if _, err := w.evalExpr(v.Post); err != nil {
					return ctrlNone, err
				}
			}
		}
		return ctrlNone, nil
	case *WhileStmt:
		for iter := 0; ; iter++ {
			if iter > maxLoopIterations {
				return ctrlNone, fmt.Errorf("loop iteration limit exceeded")
			}
			c, err := w.evalExpr(v.Cond)
			if err != nil {
				return ctrlNone, err
			}
			if !truthy(c) {
				break
			}
			ct, err := w.execStmt(v.Body)
			if err != nil {
				return ctrlNone, err
			}
			if ct == ctrlBreak {
				break
			}
			if ct == ctrlReturn {
				return ctrlReturn, nil
			}
		}
		return ctrlNone, nil
	case *DoWhileStmt:
		for iter := 0; ; iter++ {
			if iter > maxLoopIterations {
				return ctrlNone, fmt.Errorf("loop iteration limit exceeded")
			}
			ct, err := w.execStmt(v.Body)
			if err != nil {
				return ctrlNone, err
			}
			if ct == ctrlBreak {
				break
			}
			if ct == ctrlReturn {
				return ctrlReturn, nil
			}
			c, err := w.evalExpr(v.Cond)
			if err != nil {
				return ctrlNone, err
			}
			if !truthy(c) {
				break
			}
		}
		return ctrlNone, nil
	case *SwitchStmt:
		tag, err := w.evalExpr(v.Tag)
		if err != nil {
			return ctrlNone, err
		}
		tagVal := asInt(tag)
		match := -1
		defaultIdx := -1
		for i, cs := range v.Cases {
			if cs.Vals == nil {
				defaultIdx = i
				continue
			}
			for _, lv := range cs.Vals {
				cv, err := w.evalExpr(lv)
				if err != nil {
					return ctrlNone, err
				}
				if asInt(cv) == tagVal {
					match = i
					break
				}
			}
			if match >= 0 {
				break
			}
		}
		if match < 0 {
			match = defaultIdx
		}
		if match < 0 {
			return ctrlNone, nil
		}
		w.pushScope()
		defer w.popScope()
		// C fallthrough: execute from the matched arm onward until break.
		for i := match; i < len(v.Cases); i++ {
			for _, st := range v.Cases[i].Body {
				ct, err := w.execStmt(st)
				if err != nil {
					return ctrlNone, err
				}
				switch ct {
				case ctrlBreak:
					return ctrlNone, nil // break consumed by the switch
				case ctrlReturn, ctrlContinue:
					return ct, nil
				}
			}
		}
		return ctrlNone, nil
	case *ReturnStmt:
		if v.X != nil {
			rv, err := w.evalExpr(v.X)
			if err != nil {
				return ctrlNone, err
			}
			w.retVal = rv
		} else {
			w.retVal = value{typ: TypeVoid}
		}
		return ctrlReturn, nil
	case *BreakStmt:
		return ctrlBreak, nil
	case *ContinueStmt:
		return ctrlContinue, nil
	default:
		return ctrlNone, fmt.Errorf("unsupported statement %T", s)
	}
}

func (w *witem) execDecl(d *DeclStmt) (ctrl, error) {
	if d.Elems != nil {
		n, err := w.evalExpr(d.Elems)
		if err != nil {
			return ctrlNone, err
		}
		elems := asInt(n)
		if elems < 0 || elems > 1<<26 {
			return ctrlNone, fmt.Errorf("array %s has invalid length %d", d.Name, elems)
		}
		if d.Space == ASLocal {
			// __local arrays are one allocation per work-group, shared by
			// all its work-items.
			w.g.mu.Lock()
			mem, ok := w.g.locals[d]
			if !ok {
				mem = &memory{data: make([]byte, elems*int64(d.Type.Size()))}
				w.g.locals[d] = mem
			}
			w.g.mu.Unlock()
			w.define(d.Name, value{typ: PtrTo(d.Type, ASLocal), p: ptrVal{mem: mem, elem: d.Type}})
			return ctrlNone, nil
		}
		mem := &memory{data: make([]byte, elems*int64(d.Type.Size()))}
		w.define(d.Name, value{typ: PtrTo(d.Type, ASPrivate), p: ptrVal{mem: mem, elem: d.Type}})
		return ctrlNone, nil
	}
	var v value
	if d.Init != nil {
		iv, err := w.evalExpr(d.Init)
		if err != nil {
			return ctrlNone, err
		}
		v = convertTo(iv, d.Type)
	} else {
		v = value{typ: d.Type}
	}
	w.define(d.Name, v)
	return ctrlNone, nil
}

func truthy(v value) bool {
	if v.typ != nil && v.typ.IsFloat() {
		return v.f != 0
	}
	if v.typ != nil && v.typ.Kind == TPtr {
		return v.p.mem != nil
	}
	return v.i != 0
}

func asInt(v value) int64 {
	if v.typ != nil && v.typ.IsFloat() {
		return int64(v.f)
	}
	return v.i
}

func asFloat(v value) float64 {
	if v.typ != nil && v.typ.IsFloat() {
		return v.f
	}
	if v.typ != nil && v.typ.IsUnsigned() {
		return float64(uint64(v.i))
	}
	return float64(v.i)
}

// convertTo converts a value to a target type with C conversion semantics.
func convertTo(v value, t *Type) value {
	if t.Kind == TPtr {
		if v.typ != nil && v.typ.Kind == TPtr {
			return value{typ: t, p: ptrVal{mem: v.p.mem, off: v.p.off, elem: t.Elem}}
		}
		return value{typ: t} // null pointer from integer 0
	}
	if t.IsFloat() {
		f := asFloat(v)
		if t.Kind == TFloat {
			f = float64(float32(f))
		}
		return value{typ: t, f: f}
	}
	// integer target
	var i int64
	if v.typ != nil && v.typ.IsFloat() {
		i = int64(v.f)
	} else {
		i = v.i
	}
	return value{typ: t, i: normalizeInt(i, t)}
}

// normalizeInt wraps an int64 to the width/signedness of t.
func normalizeInt(i int64, t *Type) int64 {
	switch t.Kind {
	case TBool:
		if i != 0 {
			return 1
		}
		return 0
	case TChar:
		return int64(int8(i))
	case TUChar:
		return int64(uint8(i))
	case TShort:
		return int64(int16(i))
	case TUShort:
		return int64(uint16(i))
	case TInt:
		return int64(int32(i))
	case TUInt:
		return int64(uint32(i))
	default:
		return i
	}
}

// decodeScalar interprets raw argument bytes as a value of type t, as the
// device would when a scalar is passed via clSetKernelArg.
func decodeScalar(b []byte, t *Type) (value, error) {
	if len(b) < t.Size() {
		return value{}, fmt.Errorf("scalar argument has %d bytes, type %s needs %d", len(b), t, t.Size())
	}
	switch t.Kind {
	case TFloat:
		bits := binary.LittleEndian.Uint32(b)
		return value{typ: t, f: float64(math.Float32frombits(bits))}, nil
	case TDouble:
		bits := binary.LittleEndian.Uint64(b)
		return value{typ: t, f: math.Float64frombits(bits)}, nil
	default:
		var raw int64
		switch t.Size() {
		case 1:
			raw = int64(b[0])
		case 2:
			raw = int64(binary.LittleEndian.Uint16(b))
		case 4:
			raw = int64(binary.LittleEndian.Uint32(b))
		case 8:
			raw = int64(binary.LittleEndian.Uint64(b))
		default:
			return value{}, fmt.Errorf("unsupported scalar size %d", t.Size())
		}
		if !t.IsUnsigned() {
			raw = signExtend(raw, t.Size())
		}
		return value{typ: t, i: normalizeInt(raw, t)}, nil
	}
}

func signExtend(v int64, size int) int64 {
	switch size {
	case 1:
		return int64(int8(v))
	case 2:
		return int64(int16(v))
	case 4:
		return int64(int32(v))
	default:
		return v
	}
}

// loadScalar reads one element of type t at byte offset off from mem,
// charging the profile when the memory is global.
func loadScalar(mem *memory, off int64, t *Type, prof *Profile) (value, error) {
	size := int64(t.Size())
	if off < 0 || off+size > int64(len(mem.data)) {
		return value{}, fmt.Errorf("memory load out of bounds: offset %d size %d in %d-byte region", off, size, len(mem.data))
	}
	if mem.global && prof != nil {
		prof.GlobalBytes += size
	}
	v, err := decodeScalar(mem.data[off:off+size], t)
	return v, err
}

// storeScalar writes v as type t at byte offset off.
func storeScalar(mem *memory, off int64, t *Type, v value, prof *Profile) error {
	size := int64(t.Size())
	if off < 0 || off+size > int64(len(mem.data)) {
		return fmt.Errorf("memory store out of bounds: offset %d size %d in %d-byte region", off, size, len(mem.data))
	}
	if mem.global && prof != nil {
		prof.GlobalBytes += size
	}
	b := mem.data[off : off+size]
	switch t.Kind {
	case TFloat:
		binary.LittleEndian.PutUint32(b, math.Float32bits(float32(asFloat(v))))
	case TDouble:
		binary.LittleEndian.PutUint64(b, math.Float64bits(asFloat(v)))
	default:
		iv := asInt(v)
		if v.typ != nil && v.typ.IsFloat() {
			iv = int64(v.f)
		}
		switch size {
		case 1:
			b[0] = byte(iv)
		case 2:
			binary.LittleEndian.PutUint16(b, uint16(iv))
		case 4:
			binary.LittleEndian.PutUint32(b, uint32(iv))
		case 8:
			binary.LittleEndian.PutUint64(b, uint64(iv))
		}
	}
	return nil
}
