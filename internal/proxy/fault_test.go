package proxy

import (
	"errors"
	"sync"
	"testing"

	"checl/internal/hw"
	"checl/internal/ipc"
	"checl/internal/ocl"
	"checl/internal/proc"
)

func spawnFaulted(t *testing.T, plan ipc.FaultPlan) (*proc.Node, *Proxy, *ipc.FaultInjector) {
	t.Helper()
	node := proc.NewNode("pc0", hw.TableISpec(), ocl.NVIDIA())
	app := node.Spawn("app")
	inj := ipc.NewFaultInjector(plan)
	px, err := SpawnWithOptions(app, node.Vendors[0], SpawnOpts{Fault: inj})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(px.Kill)
	return node, px, inj
}

// TestFaultRetryTransparent: connection kills (the proxy process survives)
// are absorbed by the client's reconnect-and-retry loop — the API caller
// never sees an error, and the server's dedupe cache answers retries of
// mutating calls whose response was lost.
func TestFaultRetryTransparent(t *testing.T) {
	_, px, inj := spawnFaulted(t, ipc.FaultPlan{
		Seed:      7,
		EveryN:    4,
		SkipFirst: 2,
	})
	api := px.Client

	plats, err := api.GetPlatformIDs()
	if err != nil {
		t.Fatal(err)
	}
	devs, err := api.GetDeviceIDs(plats[0], ocl.DeviceTypeGPU)
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := api.CreateContext(devs)
	if err != nil {
		t.Fatal(err)
	}
	q, err := api.CreateCommandQueue(ctx, devs[0], 0)
	if err != nil {
		t.Fatal(err)
	}
	buf, err := api.CreateBuffer(ctx, 0, 4096, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]byte, 4096)
	for i := range want {
		want[i] = byte(i * 7)
	}
	// Plenty of faulted round trips.
	for i := 0; i < 30; i++ {
		if _, err := api.EnqueueWriteBuffer(q, buf, true, 0, want, nil); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	got, _, err := api.EnqueueReadBuffer(q, buf, true, 0, 4096, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("byte %d = %d, want %d (faults corrupted data)", i, got[i], want[i])
		}
	}

	st := api.Stats()
	if st.Reconnects < 1 || st.Retries < 1 {
		t.Errorf("stats = %+v, want at least one reconnect and retry", st)
	}
	if inj.Injected() < 1 {
		t.Fatal("plan injected nothing; test proves nothing")
	}
	// At least one fault should have killed the connection after the server
	// executed a mutating call, forcing a dedupe replay.
	killsAfterExec := 0
	for _, ev := range inj.Events() {
		switch ev.Kind {
		case ipc.FaultKillBeforeResponse, ipc.FaultKillBetween, ipc.FaultKillMidResponse:
			killsAfterExec++
		}
	}
	if killsAfterExec > 0 && px.Replayed() == 0 {
		t.Errorf("%d response-side kills but no replayed calls", killsAfterExec)
	}
}

// TestFaultCrashServerSurfaces: a proxy-process crash is not retryable —
// the error reaches the caller as ErrConnDown and the process is dead
// (core.CheCL's failover is the layer that handles this).
func TestFaultCrashServerSurfaces(t *testing.T) {
	_, px, _ := spawnFaulted(t, ipc.FaultPlan{
		EveryN:    3,
		SkipFirst: 2,
		Max:       1,
		Kinds:     []ipc.FaultKind{ipc.FaultCrashServer},
	})
	api := px.Client

	if _, err := api.GetPlatformIDs(); err != nil {
		t.Fatal(err)
	}
	if _, err := api.GetPlatformIDs(); err != nil {
		t.Fatal(err)
	}
	var lastErr error
	for i := 0; i < 5 && lastErr == nil; i++ {
		_, lastErr = api.GetPlatformIDs()
	}
	if !errors.Is(lastErr, ipc.ErrConnDown) {
		t.Fatalf("err = %v, want ErrConnDown after proxy crash", lastErr)
	}
	if px.Alive() {
		t.Error("proxy process should be dead after FaultCrashServer")
	}
}

// TestFaultKillDrainsHandlers: Kill while calls are in flight from many
// goroutines must not race the teardown (run under -race) and must leave
// every caller with either a success or a connection-down error.
func TestFaultKillDrainsHandlers(t *testing.T) {
	node := proc.NewNode("pc0", hw.TableISpec(), ocl.NVIDIA())
	app := node.Spawn("app")
	px, err := Spawn(app, node.Vendors[0])
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	start := make(chan struct{})
	errs := make([]error, 8)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			for j := 0; j < 50; j++ {
				if _, errs[i] = px.Client.GetPlatformIDs(); errs[i] != nil {
					return
				}
			}
		}(i)
	}
	close(start)
	px.Kill()
	wg.Wait()
	for i, err := range errs {
		if err != nil && !errors.Is(err, ipc.ErrConnDown) {
			t.Errorf("caller %d: unexpected error class: %v", i, err)
		}
	}
	// A second Kill must be a no-op, not a double close panic.
	px.Kill()
}

// TestFaultRedialAfterKillFails: once the proxy is killed, redial must
// refuse and calls must fail instead of hanging.
func TestFaultRedialAfterKillFails(t *testing.T) {
	node := proc.NewNode("pc0", hw.TableISpec(), ocl.NVIDIA())
	app := node.Spawn("app")
	px, err := Spawn(app, node.Vendors[0])
	if err != nil {
		t.Fatal(err)
	}
	px.Kill()
	if _, err := px.Client.GetPlatformIDs(); !errors.Is(err, ipc.ErrConnDown) {
		t.Fatalf("call after Kill = %v, want ErrConnDown", err)
	}
	if _, err := px.dial(); err == nil {
		t.Fatal("dial after Kill should fail")
	}
}
