package proxy

import (
	"testing"

	"checl/internal/hw"
	"checl/internal/ocl"
	"checl/internal/proc"
)

func TestTransportString(t *testing.T) {
	if TransportPipe.String() != "pipe" || TransportUnix.String() != "unix-socket" {
		t.Error("transport names wrong")
	}
}

// TestUnixSocketTransport runs the full API path over a real Unix domain
// socket — the transport an actual CheCL deployment would use between the
// application and its proxy process.
func TestUnixSocketTransport(t *testing.T) {
	node := proc.NewNode("pc0", hw.TableISpec(), ocl.NVIDIA())
	app := node.Spawn("app")
	px, err := SpawnWithTransport(app, node.Vendors[0], TransportUnix)
	if err != nil {
		t.Fatal(err)
	}
	defer px.Kill()

	api := px.Client
	plats, err := api.GetPlatformIDs()
	if err != nil {
		t.Fatal(err)
	}
	devs, err := api.GetDeviceIDs(plats[0], ocl.DeviceTypeGPU)
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := api.CreateContext(devs)
	if err != nil {
		t.Fatal(err)
	}
	q, err := api.CreateCommandQueue(ctx, devs[0], 0)
	if err != nil {
		t.Fatal(err)
	}
	m, err := api.CreateBuffer(ctx, ocl.MemReadWrite, 1<<16, nil)
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 1<<16)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	if _, err := api.EnqueueWriteBuffer(q, m, true, 0, payload, nil); err != nil {
		t.Fatal(err)
	}
	back, _, err := api.EnqueueReadBuffer(q, m, true, 0, 1<<16, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range back {
		if back[i] != payload[i] {
			t.Fatalf("byte %d corrupted over unix socket", i)
		}
	}
	// Error statuses survive this transport too.
	if _, err := api.CreateContext(nil); ocl.StatusOf(err) != ocl.InvalidValue {
		t.Errorf("error over unix socket: %v", err)
	}
}

// TestBothTransportsSameVirtualCost: the transport choice is an
// engineering detail; the modelled IPC cost is identical.
func TestBothTransportsSameVirtualCost(t *testing.T) {
	elapsed := func(tr Transport) int64 {
		node := proc.NewNode("pc0", hw.TableISpec(), ocl.NVIDIA())
		app := node.Spawn("app")
		px, err := SpawnWithTransport(app, node.Vendors[0], tr)
		if err != nil {
			t.Fatal(err)
		}
		defer px.Kill()
		for i := 0; i < 10; i++ {
			if _, err := px.Client.GetPlatformIDs(); err != nil {
				t.Fatal(err)
			}
		}
		return int64(node.Clock.Now())
	}
	if p, u := elapsed(TransportPipe), elapsed(TransportUnix); p != u {
		t.Errorf("virtual cost differs across transports: pipe %d vs unix %d", p, u)
	}
}
