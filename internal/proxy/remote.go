package proxy

import (
	"fmt"
	"net"

	"checl/internal/ipc"
	"checl/internal/ocl"
	"checl/internal/proc"
	"checl/internal/vtime"
)

// Remote API proxy — the §V extension: "allowing CheCL wrapper functions
// to communicate with a remote API proxy via TCP/IP sockets" (in the
// spirit of rCUDA and the Barak et al. many-GPU package). The proxy
// process runs on a *different* node than the application, so a node
// without any GPU can still run OpenCL applications against a GPU server.
//
// The transport is a real TCP socket (loopback in the simulation); the
// modelled per-call cost switches from host memcpy to the NIC bandwidth
// plus a network round-trip latency, which is what makes remote
// forwarding so much more expensive for data transfers.

// remoteCallLatency is the one-way network latency added to every
// forwarded call (a LAN round trip is ~100 µs in the paper's era).
const remoteCallLatency = 50 * vtime.Microsecond

// SpawnRemote starts an API proxy for vendor on the server node and
// connects the application process on its own node to it over TCP. The
// application's clock is used for all modelled costs (the RPC is
// synchronous, so the application experiences every delay).
func SpawnRemote(app *proc.Process, server *proc.Node, vendor *ocl.Vendor) (*Proxy, error) {
	if vendor == nil {
		return nil, fmt.Errorf("proxy: no vendor OpenCL implementation to load")
	}
	appNode := app.Node()
	if server == appNode {
		return Spawn(app, vendor)
	}

	child := server.Spawn("remote-api-proxy:" + vendor.PlatformVendor)
	appNode.Clock.Advance(appNode.Spec.ProxyForkCost)

	// The remote runtime charges blocking costs to the application's
	// clock: the RPC is synchronous, so the application waits them out.
	rt := ocl.NewRuntime(vendor, server.Spec, appNode.Clock)
	child.MapDevice()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("proxy: listening for remote transport: %w", err)
	}
	accepted := make(chan net.Conn, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			close(accepted)
			return
		}
		accepted <- conn
	}()
	clientConn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		ln.Close()
		return nil, fmt.Errorf("proxy: dialling remote proxy: %w", err)
	}
	serverConn, ok := <-accepted
	ln.Close()
	if !ok {
		clientConn.Close()
		return nil, fmt.Errorf("proxy: remote proxy did not accept")
	}

	p := &Proxy{
		Process: child,
		Runtime: rt,
		node:    appNode,
		server:  NewServer(rt),
	}
	p.conns = append(p.conns, clientConn, serverConn)
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		_ = p.server.ServeConn(serverConn)
	}()

	cost := CostModel{
		CallLatency: remoteCallLatency,
		CopyBW:      appNode.Spec.Inter.NIC, // payloads cross the network
	}
	// No redial: re-establishing a TCP session to a remote node would need
	// a persistent listener there; a dropped remote link surfaces as
	// ErrConnDown and the application falls back to a local failover.
	p.Client = NewClient(ipc.NewConn(clientConn), appNode.Clock, cost)
	return p, nil
}
