// Package proxy implements the API proxy of §III-A: a separate process
// that is the only one to touch the OpenCL implementation. The application
// process holds a Client (which implements ocl.API by forwarding every
// call over internal/ipc); the proxy process runs a Server wrapping a real
// ocl.Runtime.
//
// Because the proxy — not the application — loads the vendor
// implementation, only the proxy's address space acquires device mappings,
// and the application process stays checkpointable by internal/cpr.
package proxy

import "checl/internal/ocl"

// Request/response message pairs, one per forwarded API entry point. The
// wire format is gob; fields are exported for encoding.

type (
	// Empty is the request or response of calls with no payload.
	Empty struct{}

	GetPlatformIDsResp struct{ Platforms []ocl.PlatformID }

	GetPlatformInfoReq  struct{ Platform ocl.PlatformID }
	GetPlatformInfoResp struct{ Info ocl.PlatformInfo }

	GetDeviceIDsReq struct {
		Platform ocl.PlatformID
		Mask     ocl.DeviceTypeMask
	}
	GetDeviceIDsResp struct{ Devices []ocl.DeviceID }

	GetDeviceInfoReq  struct{ Device ocl.DeviceID }
	GetDeviceInfoResp struct{ Info ocl.DeviceInfo }

	CreateContextReq  struct{ Devices []ocl.DeviceID }
	CreateContextResp struct{ Context ocl.Context }

	ContextReq struct{ Context ocl.Context }

	CreateCommandQueueReq struct {
		Context ocl.Context
		Device  ocl.DeviceID
		Props   ocl.QueueProps
	}
	CreateCommandQueueResp struct{ Queue ocl.CommandQueue }

	QueueReq struct{ Queue ocl.CommandQueue }

	CreateBufferReq struct {
		Context  ocl.Context
		Flags    ocl.MemFlags
		Size     int64
		HostData []byte
	}
	CreateBufferResp struct{ Mem ocl.Mem }

	MemReq struct{ Mem ocl.Mem }

	CreateSamplerReq struct {
		Context    ocl.Context
		Normalized bool
		AMode      ocl.AddressingMode
		FMode      ocl.FilterMode
	}
	CreateSamplerResp struct{ Sampler ocl.Sampler }

	SamplerReq struct{ Sampler ocl.Sampler }

	CreateProgramWithSourceReq struct {
		Context ocl.Context
		Source  string
	}
	CreateProgramWithBinaryReq struct {
		Context ocl.Context
		Device  ocl.DeviceID
		Binary  []byte
	}
	CreateProgramResp struct{ Program ocl.Program }

	BuildProgramReq struct {
		Program ocl.Program
		Options string
	}

	ProgramReq struct{ Program ocl.Program }

	GetProgramBuildInfoReq struct {
		Program ocl.Program
		Device  ocl.DeviceID
	}
	GetProgramBuildInfoResp struct{ Info ocl.BuildInfo }

	GetProgramBinaryResp struct{ Binary []byte }

	CreateKernelReq struct {
		Program ocl.Program
		Name    string
	}
	CreateKernelResp struct{ Kernel ocl.Kernel }

	KernelReq struct{ Kernel ocl.Kernel }

	SetKernelArgReq struct {
		Kernel ocl.Kernel
		Index  int
		Size   int64
		Value  []byte
	}

	EnqueueWriteBufferReq struct {
		Queue    ocl.CommandQueue
		Mem      ocl.Mem
		Blocking bool
		Offset   int64
		Data     []byte
		Waits    []ocl.Event
	}
	EnqueueReadBufferReq struct {
		Queue    ocl.CommandQueue
		Mem      ocl.Mem
		Blocking bool
		Offset   int64
		Size     int64
		Waits    []ocl.Event
	}
	EnqueueReadBufferResp struct {
		Data  []byte
		Event ocl.Event
	}
	EnqueueCopyBufferReq struct {
		Queue  ocl.CommandQueue
		Src    ocl.Mem
		Dst    ocl.Mem
		SrcOff int64
		DstOff int64
		Size   int64
		Waits  []ocl.Event
	}
	EnqueueNDRangeKernelReq struct {
		Queue  ocl.CommandQueue
		Kernel ocl.Kernel
		Dims   int
		Offset [3]int
		Global [3]int
		Local  [3]int
		Waits  []ocl.Event
	}
	EventResp struct{ Event ocl.Event }

	WaitForEventsReq struct{ Events []ocl.Event }

	EventReq struct{ Event ocl.Event }

	GetEventProfileResp struct{ Profile ocl.EventProfile }

	GetMemObjectInfoResp      struct{ Info ocl.MemObjectInfo }
	GetKernelInfoResp         struct{ Info ocl.KernelInfo }
	GetContextInfoResp        struct{ Info ocl.ContextInfo }
	GetCommandQueueInfoResp   struct{ Info ocl.CommandQueueInfo }
	GetKernelWorkGroupInfoReq struct {
		Kernel ocl.Kernel
		Device ocl.DeviceID
	}
	GetKernelWorkGroupInfoResp struct{ Info ocl.KernelWorkGroupInfo }
)
