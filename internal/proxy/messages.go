// Package proxy implements the API proxy of §III-A: a separate process
// that is the only one to touch the OpenCL implementation. The application
// process holds a Client (which implements ocl.API by forwarding every
// call over internal/ipc); the proxy process runs a Server wrapping a real
// ocl.Runtime.
//
// Because the proxy — not the application — loads the vendor
// implementation, only the proxy's address space acquires device mappings,
// and the application process stays checkpointable by internal/cpr.
package proxy

import "checl/internal/ocl"

// Request/response message pairs, one per forwarded API entry point. The
// wire format is gob; fields are exported for encoding.

type (
	// Empty is the request or response of calls with no payload.
	Empty struct{}

	GetPlatformIDsResp struct{ Platforms []ocl.PlatformID }

	GetPlatformInfoReq  struct{ Platform ocl.PlatformID }
	GetPlatformInfoResp struct{ Info ocl.PlatformInfo }

	GetDeviceIDsReq struct {
		Platform ocl.PlatformID
		Mask     ocl.DeviceTypeMask
	}
	GetDeviceIDsResp struct{ Devices []ocl.DeviceID }

	GetDeviceInfoReq  struct{ Device ocl.DeviceID }
	GetDeviceInfoResp struct{ Info ocl.DeviceInfo }

	CreateContextReq  struct{ Devices []ocl.DeviceID }
	CreateContextResp struct{ Context ocl.Context }

	ContextReq struct{ Context ocl.Context }

	CreateCommandQueueReq struct {
		Context ocl.Context
		Device  ocl.DeviceID
		Props   ocl.QueueProps
	}
	CreateCommandQueueResp struct{ Queue ocl.CommandQueue }

	QueueReq struct{ Queue ocl.CommandQueue }

	CreateBufferReq struct {
		Context  ocl.Context
		Flags    ocl.MemFlags
		Size     int64
		HostData []byte
	}
	CreateBufferResp struct{ Mem ocl.Mem }

	MemReq struct{ Mem ocl.Mem }

	CreateSamplerReq struct {
		Context    ocl.Context
		Normalized bool
		AMode      ocl.AddressingMode
		FMode      ocl.FilterMode
	}
	CreateSamplerResp struct{ Sampler ocl.Sampler }

	SamplerReq struct{ Sampler ocl.Sampler }

	CreateProgramWithSourceReq struct {
		Context ocl.Context
		Source  string
	}
	CreateProgramWithBinaryReq struct {
		Context ocl.Context
		Device  ocl.DeviceID
		Binary  []byte
	}
	CreateProgramResp struct{ Program ocl.Program }

	BuildProgramReq struct {
		Program ocl.Program
		Options string
	}

	ProgramReq struct{ Program ocl.Program }

	GetProgramBuildInfoReq struct {
		Program ocl.Program
		Device  ocl.DeviceID
	}
	GetProgramBuildInfoResp struct{ Info ocl.BuildInfo }

	GetProgramBinaryResp struct{ Binary []byte }

	CreateKernelReq struct {
		Program ocl.Program
		Name    string
	}
	CreateKernelResp struct{ Kernel ocl.Kernel }

	KernelReq struct{ Kernel ocl.Kernel }

	SetKernelArgReq struct {
		Kernel ocl.Kernel
		Index  int
		Size   int64
		Value  []byte
	}

	// EnqueueWriteBufferReq carries no Data field: the payload travels as
	// the call's raw frame, skipping gob encoding (zero-copy on the wire).
	EnqueueWriteBufferReq struct {
		Queue    ocl.CommandQueue
		Mem      ocl.Mem
		Blocking bool
		Offset   int64
		Waits    []ocl.Event
	}
	EnqueueReadBufferReq struct {
		Queue    ocl.CommandQueue
		Mem      ocl.Mem
		Blocking bool
		Offset   int64
		Size     int64
		Waits    []ocl.Event
	}
	// EnqueueReadBufferResp carries no Data field: the payload comes back
	// as the response's raw frame.
	EnqueueReadBufferResp struct {
		Event ocl.Event
	}
	EnqueueCopyBufferReq struct {
		Queue  ocl.CommandQueue
		Src    ocl.Mem
		Dst    ocl.Mem
		SrcOff int64
		DstOff int64
		Size   int64
		Waits  []ocl.Event
	}
	EnqueueNDRangeKernelReq struct {
		Queue  ocl.CommandQueue
		Kernel ocl.Kernel
		Dims   int
		Offset [3]int
		Global [3]int
		Local  [3]int
		Waits  []ocl.Event
	}
	EventResp struct{ Event ocl.Event }

	WaitForEventsReq struct{ Events []ocl.Event }

	EventReq struct{ Event ocl.Event }

	GetEventProfileResp struct{ Profile ocl.EventProfile }

	GetMemObjectInfoResp      struct{ Info ocl.MemObjectInfo }
	GetKernelInfoResp         struct{ Info ocl.KernelInfo }
	GetContextInfoResp        struct{ Info ocl.ContextInfo }
	GetCommandQueueInfoResp   struct{ Info ocl.CommandQueueInfo }
	GetKernelWorkGroupInfoReq struct {
		Kernel ocl.Kernel
		Device ocl.DeviceID
	}
	GetKernelWorkGroupInfoResp struct{ Info ocl.KernelWorkGroupInfo }
)

// BatchOp identifies one deferred command inside a clEnqueueBatch frame.
// Fire-and-forget enqueues are coalesced client-side and shipped as one
// sequenced call; the server executes them in order.
type BatchOp int

const (
	BatchSetArg BatchOp = iota
	BatchWrite
	BatchRead
	BatchCopy
	BatchNDRange
	BatchMarker
	BatchBarrier
	BatchFlush
	BatchFinish
)

// Method names the OpenCL entry point a batched op stands for, so a
// deferred error can be attributed to the call the application made.
func (op BatchOp) Method() string {
	switch op {
	case BatchSetArg:
		return "clSetKernelArg"
	case BatchWrite:
		return "clEnqueueWriteBuffer"
	case BatchRead:
		return "clEnqueueReadBuffer"
	case BatchCopy:
		return "clEnqueueCopyBuffer"
	case BatchNDRange:
		return "clEnqueueNDRangeKernel"
	case BatchMarker:
		return "clEnqueueMarker"
	case BatchBarrier:
		return "clEnqueueBarrier"
	case BatchFlush:
		return "clFlush"
	case BatchFinish:
		return "clFinish"
	default:
		return "clEnqueueBatch"
	}
}

// BatchCmd is one deferred command. Write payloads are not carried here:
// they are concatenated into the batch's raw frame and referenced by
// [PayloadOff, PayloadOff+PayloadLen). Waits lists event handles that
// already exist server-side; WaitIdx references events minted by earlier
// commands of the same batch (by command index).
type BatchCmd struct {
	Op         BatchOp
	Queue      ocl.CommandQueue
	Kernel     ocl.Kernel
	Index      int    // SetArg: argument index
	ArgSize    int64  // SetArg: argument size
	Value      []byte // SetArg: argument bytes (small; stays in gob)
	Mem        ocl.Mem
	Src, Dst   ocl.Mem
	Blocking   bool
	Offset     int64
	SrcOff     int64
	DstOff     int64
	Size       int64
	PayloadOff int64
	PayloadLen int64
	Dims       int
	GOff       [3]int
	Global     [3]int
	Local      [3]int
	Waits      []ocl.Event
	WaitIdx    []int
	// Epoch tags commands issued by a speculative checkpoint epoch
	// (core's stop-free drain): non-zero identifies the epoch the command
	// belongs to, so transports and tooling can attribute the overlapped
	// traffic. Zero for ordinary batched commands.
	Epoch uint64
}

// EnqueueBatchReq ships a coalesced run of deferred commands.
type EnqueueBatchReq struct{ Cmds []BatchCmd }

// EnqueueBatchResp reports per-command results. Commands up to (and
// excluding) ErrIdx executed; their Events/ReadLens entries are valid and
// read data for them is concatenated in the response's raw frame. A
// failed command's error is carried in the Err* fields (resolved via
// ipc.ErrorCoder) so the client can surface it with correct attribution
// at the next sync point; commands after ErrIdx were not executed.
type EnqueueBatchResp struct {
	Events    []ocl.Event // per command; zero for ops that mint no event
	ReadLens  []int64     // per command; read-data length for BatchRead
	ErrIdx    int         // index of the failed command; -1 = all executed
	ErrOp     string
	ErrDetail string
	ErrStatus int32
}
