package proxy

import (
	"net"
	"sync"

	"checl/internal/ocl"
	"checl/internal/proc"
)

// Proxy is a running API proxy: a forked child process whose address space
// holds the vendor OpenCL implementation (and therefore device mappings),
// plus the connection the application uses to reach it.
type Proxy struct {
	Client  *Client
	Process *proc.Process
	Runtime *ocl.Runtime

	closeOnce sync.Once
	appEnd    net.Conn
	proxyEnd  net.Conn
	done      chan struct{}
}

// Spawn forks an API proxy child of app, loads the given vendor's OpenCL
// implementation into it, and returns the connected Proxy. The fork and
// library-load cost (the ~0.08 s initialisation the paper measures) is
// charged to the node clock. Loading the vendor library maps the GPU
// devices into the *proxy's* address space — the application process
// stays clean.
func Spawn(app *proc.Process, vendor *ocl.Vendor) (*Proxy, error) {
	return SpawnWithTransport(app, vendor, TransportPipe)
}

// Kill terminates the proxy process and closes the transport. It is what
// CheCL does to the old proxy before a DMTCP checkpoint and implicitly on
// restart (the old proxy died with the old incarnation).
func (p *Proxy) Kill() {
	p.closeOnce.Do(func() {
		_ = p.appEnd.Close()
		_ = p.proxyEnd.Close()
		p.Process.Kill()
		<-p.done
	})
}

// Alive reports whether the proxy process is still running.
func (p *Proxy) Alive() bool { return p.Process.Alive() }
