package proxy

import (
	"fmt"
	"io"
	"sync"

	"checl/internal/ipc"
	"checl/internal/ocl"
	"checl/internal/proc"
	"checl/internal/vtime"
)

// SpawnOpts configures a spawned proxy beyond the defaults.
type SpawnOpts struct {
	Transport   Transport
	Fault       *ipc.FaultInjector // wraps the app-side stream; nil = no injection
	CallTimeout vtime.Duration     // per-call virtual deadline; 0 = none
	Retry       RetryPolicy        // zero fields fall back to DefaultRetryPolicy
}

// Proxy is a running API proxy: a forked child process whose address space
// holds the vendor OpenCL implementation (and therefore device mappings),
// plus the connection the application uses to reach it. The proxy keeps
// its RPC server and spawn configuration so the client can redial a fresh
// connection (same process, same handle space, same dedupe cache) after a
// transport fault.
type Proxy struct {
	Client  *Client
	Process *proc.Process
	Runtime *ocl.Runtime

	node   *proc.Node
	server *ipc.Server
	opts   SpawnOpts

	mu     sync.Mutex
	killed bool
	conns  []io.Closer
	wg     sync.WaitGroup
}

// Spawn forks an API proxy child of app, loads the given vendor's OpenCL
// implementation into it, and returns the connected Proxy. The fork and
// library-load cost (the ~0.08 s initialisation the paper measures) is
// charged to the node clock. Loading the vendor library maps the GPU
// devices into the *proxy's* address space — the application process
// stays clean.
func Spawn(app *proc.Process, vendor *ocl.Vendor) (*Proxy, error) {
	return SpawnWithOptions(app, vendor, SpawnOpts{})
}

// dial opens a fresh transport generation to the live proxy process and
// starts serving it. It is both the initial connect and the Client's
// redial path after a transport fault.
func (p *Proxy) dial() (ipc.Transport, error) {
	if !p.Process.Alive() {
		return nil, fmt.Errorf("proxy: cannot dial: proxy process is dead")
	}
	if p.opts.Transport == TransportRing {
		return p.dialRing()
	}
	appEnd, proxyEnd, err := connect(p.opts.Transport)
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	if p.killed {
		p.mu.Unlock()
		appEnd.Close()
		proxyEnd.Close()
		return nil, fmt.Errorf("proxy: cannot dial: proxy was killed")
	}
	p.conns = append(p.conns, appEnd, proxyEnd)
	p.wg.Add(1)
	p.mu.Unlock()
	go func() {
		defer p.wg.Done()
		_ = p.server.ServeConn(proxyEnd)
	}()
	var rwc io.ReadWriteCloser = appEnd
	if p.opts.Fault != nil {
		rwc = p.opts.Fault.Wrap(appEnd)
	}
	conn := ipc.NewConn(rwc)
	if p.opts.CallTimeout > 0 {
		conn.SetDeadline(p.node.Clock, p.opts.CallTimeout)
	}
	return conn, nil
}

// dialRing maps a fresh shared-memory ring generation to the live proxy
// and starts its service loop. Rings tear down (and are redialled) on
// injected faults exactly like framed connections; the server — and with
// it the replay-dedupe cache — persists across generations.
func (p *Proxy) dialRing() (ipc.Transport, error) {
	ring := ipc.NewRing(p.server, ipc.RingConfig{Fault: p.opts.Fault})
	p.mu.Lock()
	if p.killed {
		p.mu.Unlock()
		_ = ring.Close()
		return nil, fmt.Errorf("proxy: cannot dial: proxy was killed")
	}
	p.conns = append(p.conns, ring)
	p.wg.Add(1)
	p.mu.Unlock()
	go func() {
		defer p.wg.Done()
		ring.Serve()
	}()
	if p.opts.CallTimeout > 0 {
		ring.SetDeadline(p.node.Clock, p.opts.CallTimeout)
	}
	return ring, nil
}

// Kill terminates the proxy process, closes every transport generation,
// and drains the serve goroutines so no handler races the teardown. It is
// what CheCL does to the old proxy before a DMTCP checkpoint and
// implicitly on restart (the old proxy died with the old incarnation).
func (p *Proxy) Kill() {
	conns := p.shutdown()
	for _, c := range conns {
		_ = c.Close()
	}
	p.Process.Kill()
	p.wg.Wait()
}

// crash is the fault injector's CrashServer hook: it kills the process
// and closes the transports but cannot wait for the serve goroutines,
// because it runs on the application's own call path.
func (p *Proxy) crash() {
	conns := p.shutdown()
	for _, c := range conns {
		_ = c.Close()
	}
	p.Process.Kill()
}

// shutdown latches the proxy dead and hands back the connections to close.
func (p *Proxy) shutdown() []io.Closer {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.killed = true
	conns := p.conns
	p.conns = nil
	return conns
}

// Replayed reports how many mutating calls the proxy answered from its
// request-dedupe cache (retries whose first execution lost only the
// response).
func (p *Proxy) Replayed() int64 { return p.server.ReplayedCalls() }

// Alive reports whether the proxy process is still running.
func (p *Proxy) Alive() bool { return p.Process.Alive() }
