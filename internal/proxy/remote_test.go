package proxy

import (
	"testing"

	"checl/internal/hw"
	"checl/internal/ocl"
	"checl/internal/proc"
	"checl/internal/vtime"
)

func TestRemoteProxyEndToEnd(t *testing.T) {
	// An application on a GPU-less node uses the GPU of a remote server
	// through a TCP API proxy (§V extension).
	appNode := proc.NewNode("thin-client", hw.TableISpec())
	gpuNode := proc.NewNode("gpu-server", hw.TableISpec(), ocl.NVIDIA())
	app := appNode.Spawn("app")

	px, err := SpawnRemote(app, gpuNode, gpuNode.Vendors[0])
	if err != nil {
		t.Fatal(err)
	}
	defer px.Kill()

	// The proxy process lives on the server node; the app stays clean.
	if px.Process.Node() != gpuNode {
		t.Error("remote proxy should run on the GPU server")
	}
	if app.DeviceMapped() {
		t.Error("application must not acquire device mappings")
	}
	if !px.Process.DeviceMapped() {
		t.Error("remote proxy must hold the device mappings")
	}

	api := px.Client
	plats, err := api.GetPlatformIDs()
	if err != nil {
		t.Fatal(err)
	}
	devs, err := api.GetDeviceIDs(plats[0], ocl.DeviceTypeGPU)
	if err != nil {
		t.Fatal(err)
	}
	info, err := api.GetDeviceInfo(devs[0])
	if err != nil || info.Name != "Tesla C1060" {
		t.Fatalf("remote device info = %+v, %v", info, err)
	}
	ctx, err := api.CreateContext(devs)
	if err != nil {
		t.Fatal(err)
	}
	q, err := api.CreateCommandQueue(ctx, devs[0], 0)
	if err != nil {
		t.Fatal(err)
	}
	m, err := api.CreateBuffer(ctx, ocl.MemReadWrite, 1<<20, nil)
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 1<<20)
	payload[0], payload[1<<20-1] = 7, 9
	if _, err := api.EnqueueWriteBuffer(q, m, true, 0, payload, nil); err != nil {
		t.Fatal(err)
	}
	back, _, err := api.EnqueueReadBuffer(q, m, true, 0, 1<<20, nil)
	if err != nil {
		t.Fatal(err)
	}
	if back[0] != 7 || back[1<<20-1] != 9 {
		t.Error("data corrupted over the remote transport")
	}
}

func TestRemoteProxyCostsExceedLocal(t *testing.T) {
	transferTime := func(spawn func(app *proc.Process) (*Proxy, error)) vtime.Duration {
		appNode := proc.NewNode("client", hw.TableISpec(), ocl.NVIDIA())
		app := appNode.Spawn("app")
		px, err := spawn(app)
		if err != nil {
			t.Fatal(err)
		}
		defer px.Kill()
		api := px.Client
		plats, _ := api.GetPlatformIDs()
		devs, _ := api.GetDeviceIDs(plats[0], ocl.DeviceTypeGPU)
		ctx, _ := api.CreateContext(devs)
		q, _ := api.CreateCommandQueue(ctx, devs[0], 0)
		m, _ := api.CreateBuffer(ctx, ocl.MemReadWrite, 8<<20, nil)
		sw := vtime.NewStopwatch(appNode.Clock)
		if _, err := api.EnqueueWriteBuffer(q, m, true, 0, make([]byte, 8<<20), nil); err != nil {
			t.Fatal(err)
		}
		return sw.Elapsed()
	}

	local := transferTime(func(app *proc.Process) (*Proxy, error) {
		return Spawn(app, app.Node().Vendors[0])
	})
	remote := transferTime(func(app *proc.Process) (*Proxy, error) {
		server := proc.NewNode("server", hw.TableISpec(), ocl.NVIDIA())
		return SpawnRemote(app, server, server.Vendors[0])
	})
	// 8 MB over the 125 MB/s NIC is ~64 ms; over host memcpy it is ~1.3 ms.
	if !(remote > 10*local) {
		t.Errorf("remote transfer (%v) should dwarf local proxy transfer (%v)", remote, local)
	}
}

func TestSpawnRemoteSameNodeFallsBack(t *testing.T) {
	node := proc.NewNode("pc", hw.TableISpec(), ocl.NVIDIA())
	app := node.Spawn("app")
	px, err := SpawnRemote(app, node, node.Vendors[0])
	if err != nil {
		t.Fatal(err)
	}
	defer px.Kill()
	if px.Process.Node() != node {
		t.Error("same-node remote spawn should behave like a local proxy")
	}
}
