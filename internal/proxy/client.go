package proxy

import (
	"errors"
	"strings"
	"sync"
	"sync/atomic"

	"checl/internal/hw"
	"checl/internal/ipc"
	"checl/internal/ocl"
	"checl/internal/vtime"
)

// CostModel prices one forwarded API call: a fixed round-trip latency plus
// a copy of the payload at the given bandwidth. For a same-node proxy the
// bandwidth is host memcpy; for a remote proxy (the §V extension) it is
// the NIC. When Ring is set the call instead rides the shared-memory ring
// and is priced from its slot/poll/arena model.
type CostModel struct {
	CallLatency vtime.Duration // one-way; charged twice per round trip
	CopyBW      hw.Bandwidth
	Ring        *hw.RingModel // non-nil: price calls as ring traffic
}

// roundTrip prices one synchronous call moving n bytes.
func (m CostModel) roundTrip(n int64) vtime.Duration {
	if m.Ring != nil {
		return m.Ring.RoundTrip(n)
	}
	return 2*m.CallLatency + m.CopyBW.Transfer(n)
}

// postCost prices one fire-and-forget submission: a single slot publish
// plus the arena share of its payload — no completion wait.
func (m CostModel) postCost(n int64) vtime.Duration {
	if m.Ring != nil {
		return m.Ring.SlotPublish + m.Ring.ArenaBW.Transfer(n)
	}
	return 2*m.CallLatency + m.CopyBW.Transfer(n)
}

// reapCost prices the completion-queue poll a sync point pays to settle
// the posted backlog.
func (m CostModel) reapCost() vtime.Duration {
	if m.Ring != nil {
		return m.Ring.Poll
	}
	return 0
}

// RetryPolicy bounds the client's transparent reconnect-and-retry loop.
// Backoff between attempts is exponential up to MaxBackoff and is charged
// to the virtual clock like any other modelled wait.
type RetryPolicy struct {
	Attempts   int            // total tries per call, including the first
	Backoff    vtime.Duration // wait before the first retry
	MaxBackoff vtime.Duration // cap on the exponential backoff
}

// DefaultRetryPolicy is used when a zero policy is supplied.
var DefaultRetryPolicy = RetryPolicy{
	Attempts:   3,
	Backoff:    100 * vtime.Microsecond,
	MaxBackoff: 10 * vtime.Millisecond,
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	d := DefaultRetryPolicy
	if p.Attempts > 0 {
		d.Attempts = p.Attempts
	}
	if p.Backoff > 0 {
		d.Backoff = p.Backoff
	}
	if p.MaxBackoff > 0 {
		d.MaxBackoff = p.MaxBackoff
	}
	return d
}

// Stats counts the traffic a client has forwarded and the transport
// failures it has absorbed.
type Stats struct {
	Calls      int64 // calls sent on the wire (retries included)
	Bytes      int64
	Batched    int64 // commands coalesced into clEnqueueBatch calls
	Speculated int64 // commands shipped by overlapped (epoch-tagged) batches
	Posted     int64 // calls submitted fire-and-forget (zero round trips)
	Retries    int64 // calls re-sent after a transport fault
	Reconnects int64 // fresh connections dialled to the same proxy
}

// Client implements ocl.API by forwarding every call to an API proxy over
// an ipc.Conn, charging the forwarding overhead to the application's
// clock. This is the client half of §III-A.
//
// When a redial function is installed (Spawn wires it to the proxy), a
// call that fails with ipc.ErrConnDown is transparently retried over a
// fresh connection to the same live proxy process. Mutating calls carry a
// sequence number, so a retry whose original execution succeeded (only
// the response was lost) is answered from the server's dedupe cache
// instead of re-executed. Only when the proxy process itself is gone does
// the error reach the caller, where core.CheCL's failover takes over.
type Client struct {
	clock *vtime.Clock
	cost  CostModel
	retry RetryPolicy

	mu     sync.Mutex
	conn   ipc.Transport
	redial func() (ipc.Transport, error)
	closed bool

	// postMu guards the posted-but-unsettled call list (and the deferred
	// error captured while replaying it). Lock order: postMu before mu,
	// never the reverse.
	postMu       sync.Mutex
	pendingPosts []postedCall
	deferred     error

	seq        atomic.Uint64
	calls      atomic.Int64
	bytes      atomic.Int64
	batched    atomic.Int64
	speculated atomic.Int64
	posted     atomic.Int64
	retries    atomic.Int64
	reconnects atomic.Int64
}

// postedCall remembers one fire-and-forget submission so it can be
// re-sent synchronously — same method, same seq — if the transport dies
// before its completion is observed.
type postedCall struct {
	method string
	seq    uint64
	req    any
}

var _ ocl.API = (*Client)(nil)

// NewClient wraps an RPC transport as an API client.
func NewClient(conn ipc.Transport, clock *vtime.Clock, cost CostModel) *Client {
	return &Client{conn: conn, clock: clock, cost: cost, retry: DefaultRetryPolicy}
}

// SetRedial installs the function that dials a replacement connection to
// the same proxy after a transport fault.
func (c *Client) SetRedial(fn func() (ipc.Transport, error)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.redial = fn
}

// SetRetryPolicy overrides the retry policy (zero fields keep defaults).
func (c *Client) SetRetryPolicy(p RetryPolicy) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.retry = p.withDefaults()
}

// Stats reports the calls and bytes forwarded so far.
func (c *Client) Stats() Stats {
	return Stats{
		Calls:      c.calls.Load(),
		Bytes:      c.bytes.Load(),
		Batched:    c.batched.Load(),
		Speculated: c.speculated.Load(),
		Posted:     c.posted.Load(),
		Retries:    c.retries.Load(),
		Reconnects: c.reconnects.Load(),
	}
}

// Close tears down the connection to the proxy and stops any further
// reconnect attempts.
func (c *Client) Close() error {
	c.mu.Lock()
	c.closed = true
	conn := c.conn
	c.mu.Unlock()
	return conn.Close()
}

// idempotent reports whether method can be blindly re-sent: queries and
// reads change no proxy state worth deduping, so they go out with seq 0.
func idempotent(method string) bool {
	if strings.HasPrefix(method, "clGet") {
		return true
	}
	switch method {
	case "clFinish", "clFlush", "clWaitForEvents", "clEnqueueReadBuffer", "clEnqueueBarrier":
		return true
	}
	return false
}

// call forwards one API call, charging its modelled cost, retrying over a
// fresh connection when the transport dies under it.
func (c *Client) call(method string, req, resp any) error {
	_, err := c.exchange(method, req, nil, false, resp, nil)
	return err
}

// callRaw is call with a raw payload attached to the request; it returns
// the raw payload the server attached to its response, if any.
func (c *Client) callRaw(method string, req any, rawReq []byte, resp any) ([]byte, error) {
	return c.exchange(method, req, rawReq, true, resp, nil)
}

// exchange forwards one API call, charging its modelled cost, retrying
// over a fresh connection when the transport dies under it. A retried
// request re-sends the same raw payload under the same sequence number,
// so the server's dedupe cache treats the whole frame set as one call.
// into, when non-nil and large enough, receives the response's raw
// payload in place of a fresh allocation.
func (c *Client) exchange(method string, req any, rawReq []byte, sendRaw bool, resp any, into []byte) ([]byte, error) {
	var seq uint64
	if !idempotent(method) {
		seq = c.seq.Add(1)
	}
	return c.exchangeSeq(method, seq, req, rawReq, sendRaw, resp, into)
}

// exchangeSeq is exchange with the dedupe sequence number already
// assigned (the posted-call fallback path re-uses the seq it drew).
func (c *Client) exchangeSeq(method string, seq uint64, req any, rawReq []byte, sendRaw bool, resp any, into []byte) ([]byte, error) {
	return c.exchangeSeqPriced(method, seq, req, rawReq, sendRaw, resp, into, nil)
}

// exchangeSeqPriced is exchangeSeq with a pluggable price for the
// successful wire exchange: price(n) returns the duration charged to the
// application clock for a frame of n bytes. nil keeps the default
// synchronous round-trip price. Retry backoff and re-sends are always
// charged in full — only the final successful exchange is re-priced.
func (c *Client) exchangeSeqPriced(method string, seq uint64, req any, rawReq []byte, sendRaw bool, resp any, into []byte, price func(n int64) vtime.Duration) ([]byte, error) {
	c.mu.Lock()
	policy := c.retry
	c.mu.Unlock()
	backoff := policy.Backoff
	var lastErr error
	for attempt := 1; ; attempt++ {
		c.mu.Lock()
		conn := c.conn
		c.mu.Unlock()
		var (
			raw []byte
			n   int64
			err error
		)
		if sendRaw {
			raw, n, err = conn.CallRawSeq(method, seq, req, rawReq, resp)
		} else {
			raw, n, err = conn.CallRecvRawInto(method, seq, req, resp, into)
		}
		c.calls.Add(1)
		c.bytes.Add(n)
		if price != nil {
			c.clock.Advance(price(n))
		} else {
			c.clock.Advance(c.cost.roundTrip(n))
		}
		if err == nil {
			// A synchronous completion drains every earlier posted
			// completion first (FIFO), so settled posts can be pruned and
			// any deferred error they carried surfaces here.
			c.prunePosted(conn)
			if derr := c.takeDeferred(conn); derr != nil {
				return raw, derr
			}
			return raw, nil
		}
		var re *ipc.RemoteError
		if errors.As(err, &re) {
			return nil, &ocl.Error{Status: ocl.Status(re.Status), Op: re.Op, Detail: re.Detail}
		}
		if !errors.Is(err, ipc.ErrConnDown) {
			return nil, err
		}
		lastErr = err
		if attempt >= policy.Attempts {
			return nil, lastErr
		}
		c.clock.Advance(backoff)
		if backoff *= 2; backoff > policy.MaxBackoff {
			backoff = policy.MaxBackoff
		}
		if !c.reconnect(conn) {
			return nil, lastErr
		}
		c.retries.Add(1)
	}
}

// reconnect swaps in a fresh connection if the failed one is still
// current, then re-sends any posted calls the dead transport swallowed.
// It reports whether a retry is worth attempting.
func (c *Client) reconnect(failed ipc.Transport) bool {
	c.mu.Lock()
	if c.closed || c.redial == nil {
		c.mu.Unlock()
		return false
	}
	if c.conn != failed {
		c.mu.Unlock()
		return true // another caller already redialled (and replayed)
	}
	conn, err := c.redial()
	if err != nil {
		c.mu.Unlock()
		return false
	}
	old := c.conn
	c.conn = conn
	c.reconnects.Add(1)
	c.mu.Unlock()
	_ = old.Close()
	return c.replayPosted(conn)
}

// replayPosted re-sends every posted-but-unsettled call synchronously on
// the fresh connection with its original sequence number: a call whose
// first execution survived is answered from the server's dedupe cache,
// the rest execute now — exactly-once either way (the seq-0 posts, Flush
// and Barrier, re-execute harmlessly). It reports whether the connection
// survived the replay; on a fresh death the unsent tail stays pending
// for the next reconnect.
func (c *Client) replayPosted(conn ipc.Transport) bool {
	if c.posted.Load() == 0 {
		return true
	}
	c.postMu.Lock()
	defer c.postMu.Unlock()
	for len(c.pendingPosts) > 0 {
		pc := c.pendingPosts[0]
		var r Empty
		n, err := conn.CallSeq(pc.method, pc.seq, pc.req, &r)
		c.calls.Add(1)
		c.bytes.Add(n)
		c.retries.Add(1)
		c.clock.Advance(c.cost.roundTrip(n))
		if err != nil {
			var re *ipc.RemoteError
			if !errors.As(err, &re) {
				return false
			}
			// A remote error from a fire-and-forget call stays deferred,
			// exactly as if its completion had carried it.
			if c.deferred == nil {
				c.deferred = &ipc.DeferredError{Method: pc.method, Err: err}
			}
		}
		c.pendingPosts = c.pendingPosts[1:]
	}
	return true
}

// prunePosted drops the completed prefix of the posted-call list.
// Completions arrive in FIFO posting order, so the transport's
// outstanding count alone identifies how many leading entries settled.
func (c *Client) prunePosted(conn ipc.Transport) {
	if c.posted.Load() == 0 {
		return // never posted anything: the framed fast path stays lock-free
	}
	c.postMu.Lock()
	if done := len(c.pendingPosts) - conn.PostedPending(); done > 0 {
		c.pendingPosts = c.pendingPosts[done:]
	}
	c.postMu.Unlock()
}

// takeDeferred surfaces the first deferred remote error, whether it came
// back on a drained completion or during a posted-call replay.
func (c *Client) takeDeferred(conn ipc.Transport) error {
	if err := conn.TakeDeferred(); err != nil {
		return err
	}
	if c.posted.Load() == 0 {
		return nil
	}
	c.postMu.Lock()
	err := c.deferred
	c.deferred = nil
	c.postMu.Unlock()
	return err
}

// postWindow bounds the posted-but-unsettled backlog. It must stay well
// under the ring's queue depth or an unreaped burst could fill the
// completion queue and wedge both sides.
const postWindow = 64

// post forwards an Empty-response call fire-and-forget when the transport
// supports it, deferring its completion to the next synchronous call or
// sync point — zero round trips until then. On a synchronous transport it
// degrades to a plain call with the same sequence number.
func (c *Client) post(method string, req any) error {
	var seq uint64
	if !idempotent(method) {
		seq = c.seq.Add(1)
	}
	c.mu.Lock()
	conn := c.conn
	c.mu.Unlock()
	n, ok, err := conn.Post(method, seq, req)
	if !ok {
		var r Empty
		_, err := c.exchangeSeq(method, seq, req, nil, false, &r, nil)
		return err
	}
	c.calls.Add(1)
	c.posted.Add(1)
	c.bytes.Add(n)
	c.clock.Advance(c.cost.postCost(n))
	c.postMu.Lock()
	c.pendingPosts = append(c.pendingPosts, postedCall{method: method, seq: seq, req: req})
	pend := len(c.pendingPosts)
	c.postMu.Unlock()
	if err != nil {
		// The transport died on the publish. The call is in the pending
		// list, so a successful reconnect replays it synchronously.
		if errors.Is(err, ipc.ErrConnDown) && c.reconnect(conn) {
			return nil
		}
		return err
	}
	if pend >= postWindow {
		return c.SettlePosted()
	}
	return nil
}

// SettlePosted is the sync-point barrier for posted calls: it blocks
// until every fire-and-forget submission has completed — reconnecting
// and replaying the backlog synchronously if the transport died with
// some in flight — and surfaces the first deferred remote error.
func (c *Client) SettlePosted() error {
	if c.posted.Load() == 0 {
		return nil
	}
	c.mu.Lock()
	policy := c.retry
	c.mu.Unlock()
	backoff := policy.Backoff
	for attempt := 1; ; attempt++ {
		c.mu.Lock()
		conn := c.conn
		c.mu.Unlock()
		err := conn.Reap()
		if err == nil {
			c.clock.Advance(c.cost.reapCost())
			c.prunePosted(conn)
			return c.takeDeferred(conn)
		}
		if !errors.Is(err, ipc.ErrConnDown) || attempt >= policy.Attempts {
			return err
		}
		c.clock.Advance(backoff)
		if backoff *= 2; backoff > policy.MaxBackoff {
			backoff = policy.MaxBackoff
		}
		if !c.reconnect(conn) {
			return err
		}
	}
}

// --- forwarded API surface (one method per OpenCL entry point) ---

func (c *Client) GetPlatformIDs() ([]ocl.PlatformID, error) {
	var r GetPlatformIDsResp
	err := c.call("clGetPlatformIDs", Empty{}, &r)
	return r.Platforms, err
}

func (c *Client) GetPlatformInfo(p ocl.PlatformID) (ocl.PlatformInfo, error) {
	var r GetPlatformInfoResp
	err := c.call("clGetPlatformInfo", GetPlatformInfoReq{Platform: p}, &r)
	return r.Info, err
}

func (c *Client) GetDeviceIDs(p ocl.PlatformID, mask ocl.DeviceTypeMask) ([]ocl.DeviceID, error) {
	var r GetDeviceIDsResp
	err := c.call("clGetDeviceIDs", GetDeviceIDsReq{Platform: p, Mask: mask}, &r)
	return r.Devices, err
}

func (c *Client) GetDeviceInfo(d ocl.DeviceID) (ocl.DeviceInfo, error) {
	var r GetDeviceInfoResp
	err := c.call("clGetDeviceInfo", GetDeviceInfoReq{Device: d}, &r)
	return r.Info, err
}

func (c *Client) CreateContext(devices []ocl.DeviceID) (ocl.Context, error) {
	var r CreateContextResp
	err := c.call("clCreateContext", CreateContextReq{Devices: devices}, &r)
	return r.Context, err
}

func (c *Client) RetainContext(ctx ocl.Context) error {
	var r Empty
	return c.call("clRetainContext", ContextReq{Context: ctx}, &r)
}

func (c *Client) ReleaseContext(ctx ocl.Context) error {
	var r Empty
	return c.call("clReleaseContext", ContextReq{Context: ctx}, &r)
}

func (c *Client) CreateCommandQueue(ctx ocl.Context, d ocl.DeviceID, props ocl.QueueProps) (ocl.CommandQueue, error) {
	var r CreateCommandQueueResp
	err := c.call("clCreateCommandQueue", CreateCommandQueueReq{Context: ctx, Device: d, Props: props}, &r)
	return r.Queue, err
}

func (c *Client) RetainCommandQueue(q ocl.CommandQueue) error {
	var r Empty
	return c.call("clRetainCommandQueue", QueueReq{Queue: q}, &r)
}

func (c *Client) ReleaseCommandQueue(q ocl.CommandQueue) error {
	var r Empty
	return c.call("clReleaseCommandQueue", QueueReq{Queue: q}, &r)
}

func (c *Client) CreateBuffer(ctx ocl.Context, flags ocl.MemFlags, size int64, hostData []byte) (ocl.Mem, error) {
	var r CreateBufferResp
	err := c.call("clCreateBuffer", CreateBufferReq{Context: ctx, Flags: flags, Size: size, HostData: hostData}, &r)
	return r.Mem, err
}

func (c *Client) RetainMemObject(m ocl.Mem) error {
	var r Empty
	return c.call("clRetainMemObject", MemReq{Mem: m}, &r)
}

func (c *Client) ReleaseMemObject(m ocl.Mem) error {
	var r Empty
	return c.call("clReleaseMemObject", MemReq{Mem: m}, &r)
}

func (c *Client) CreateSampler(ctx ocl.Context, normalized bool, am ocl.AddressingMode, fm ocl.FilterMode) (ocl.Sampler, error) {
	var r CreateSamplerResp
	err := c.call("clCreateSampler", CreateSamplerReq{Context: ctx, Normalized: normalized, AMode: am, FMode: fm}, &r)
	return r.Sampler, err
}

func (c *Client) RetainSampler(s ocl.Sampler) error {
	var r Empty
	return c.call("clRetainSampler", SamplerReq{Sampler: s}, &r)
}

func (c *Client) ReleaseSampler(s ocl.Sampler) error {
	var r Empty
	return c.call("clReleaseSampler", SamplerReq{Sampler: s}, &r)
}

func (c *Client) CreateProgramWithSource(ctx ocl.Context, source string) (ocl.Program, error) {
	var r CreateProgramResp
	err := c.call("clCreateProgramWithSource", CreateProgramWithSourceReq{Context: ctx, Source: source}, &r)
	return r.Program, err
}

func (c *Client) CreateProgramWithBinary(ctx ocl.Context, d ocl.DeviceID, binary []byte) (ocl.Program, error) {
	var r CreateProgramResp
	err := c.call("clCreateProgramWithBinary", CreateProgramWithBinaryReq{Context: ctx, Device: d, Binary: binary}, &r)
	return r.Program, err
}

func (c *Client) BuildProgram(p ocl.Program, options string) error {
	var r Empty
	return c.call("clBuildProgram", BuildProgramReq{Program: p, Options: options}, &r)
}

func (c *Client) GetProgramBuildInfo(p ocl.Program, d ocl.DeviceID) (ocl.BuildInfo, error) {
	var r GetProgramBuildInfoResp
	err := c.call("clGetProgramBuildInfo", GetProgramBuildInfoReq{Program: p, Device: d}, &r)
	return r.Info, err
}

func (c *Client) GetProgramBinary(p ocl.Program) ([]byte, error) {
	var r GetProgramBinaryResp
	err := c.call("clGetProgramBinary", ProgramReq{Program: p}, &r)
	return r.Binary, err
}

func (c *Client) RetainProgram(p ocl.Program) error {
	var r Empty
	return c.call("clRetainProgram", ProgramReq{Program: p}, &r)
}

func (c *Client) ReleaseProgram(p ocl.Program) error {
	var r Empty
	return c.call("clReleaseProgram", ProgramReq{Program: p}, &r)
}

func (c *Client) CreateKernel(p ocl.Program, name string) (ocl.Kernel, error) {
	var r CreateKernelResp
	err := c.call("clCreateKernel", CreateKernelReq{Program: p, Name: name}, &r)
	return r.Kernel, err
}

func (c *Client) RetainKernel(k ocl.Kernel) error {
	var r Empty
	return c.call("clRetainKernel", KernelReq{Kernel: k}, &r)
}

func (c *Client) ReleaseKernel(k ocl.Kernel) error {
	var r Empty
	return c.call("clReleaseKernel", KernelReq{Kernel: k}, &r)
}

func (c *Client) SetKernelArg(k ocl.Kernel, index int, size int64, value []byte) error {
	// Enqueue-class fire-and-forget: on the ring this completes with zero
	// round trips until the next sync point.
	return c.post("clSetKernelArg", SetKernelArgReq{Kernel: k, Index: index, Size: size, Value: value})
}

func (c *Client) EnqueueWriteBuffer(q ocl.CommandQueue, m ocl.Mem, blocking bool, offset int64, data []byte, waits []ocl.Event) (ocl.Event, error) {
	var r EventResp
	// The payload rides the raw frame: no gob encode, no intermediate copy.
	_, err := c.callRaw("clEnqueueWriteBuffer", EnqueueWriteBufferReq{
		Queue: q, Mem: m, Blocking: blocking, Offset: offset, Waits: waits,
	}, data, &r)
	return r.Event, err
}

func (c *Client) EnqueueReadBuffer(q ocl.CommandQueue, m ocl.Mem, blocking bool, offset, size int64, waits []ocl.Event) ([]byte, ocl.Event, error) {
	return c.EnqueueReadBufferInto(q, m, blocking, offset, size, waits, nil)
}

// EnqueueReadBufferInto is EnqueueReadBuffer with a caller-supplied
// destination: when buf's capacity covers the read, the data lands in it
// and the returned slice aliases buf (no allocation); otherwise a fresh
// buffer is returned. Callers that drain the same buffer every
// checkpoint reach a steady state where reads allocate nothing.
func (c *Client) EnqueueReadBufferInto(q ocl.CommandQueue, m ocl.Mem, blocking bool, offset, size int64, waits []ocl.Event, buf []byte) ([]byte, ocl.Event, error) {
	var r EnqueueReadBufferResp
	// The data comes back as the response's raw frame.
	data, err := c.exchange("clEnqueueReadBuffer", EnqueueReadBufferReq{
		Queue: q, Mem: m, Blocking: blocking, Offset: offset, Size: size, Waits: waits,
	}, nil, false, &r, buf)
	return data, r.Event, err
}

// EnqueueBatch ships a coalesced run of deferred commands as one
// sequenced call. payload is the concatenation of every BatchWrite's
// data, referenced by the commands' PayloadOff/PayloadLen; the returned
// raw slice is the concatenation of every executed BatchRead's data, in
// command order, sliced by resp.ReadLens.
func (c *Client) EnqueueBatch(cmds []BatchCmd, payload []byte) (EnqueueBatchResp, []byte, error) {
	var r EnqueueBatchResp
	raw, err := c.callRaw("clEnqueueBatch", EnqueueBatchReq{Cmds: cmds}, payload, &r)
	if err == nil {
		c.batched.Add(int64(len(cmds)))
	}
	return r, raw, err
}

// EnqueueBatchOverlapped ships a batch whose bulk data transfer is
// overlapped with continued application progress (the speculative
// checkpoint drain): the application clock is charged only the
// control-frame submission — an empty round trip — and the full modelled
// transfer cost of the actual frame is returned, so the caller can model
// the copy's completion horizon and charge whatever remainder its own
// progress did not hide. Every command is tagged with the epoch id for
// server/transport attribution. The returned data is complete and
// consistent at the moment of the exchange; only its cost is deferred.
func (c *Client) EnqueueBatchOverlapped(cmds []BatchCmd, payload []byte, epoch uint64) (EnqueueBatchResp, []byte, vtime.Duration, error) {
	for i := range cmds {
		cmds[i].Epoch = epoch
	}
	var (
		r     EnqueueBatchResp
		frame vtime.Duration
	)
	seq := c.seq.Add(1)
	raw, err := c.exchangeSeqPriced("clEnqueueBatch", seq, EnqueueBatchReq{Cmds: cmds}, payload, true, &r, nil,
		func(n int64) vtime.Duration {
			frame = c.cost.roundTrip(n)
			return c.cost.roundTrip(0)
		})
	if err == nil {
		c.batched.Add(int64(len(cmds)))
		c.speculated.Add(int64(len(cmds)))
	}
	return r, raw, frame, err
}

func (c *Client) EnqueueCopyBuffer(q ocl.CommandQueue, src, dst ocl.Mem, srcOff, dstOff, size int64, waits []ocl.Event) (ocl.Event, error) {
	var r EventResp
	err := c.call("clEnqueueCopyBuffer", EnqueueCopyBufferReq{
		Queue: q, Src: src, Dst: dst, SrcOff: srcOff, DstOff: dstOff, Size: size, Waits: waits,
	}, &r)
	return r.Event, err
}

func (c *Client) EnqueueNDRangeKernel(q ocl.CommandQueue, k ocl.Kernel, dims int, offset, global, local [3]int, waits []ocl.Event) (ocl.Event, error) {
	var r EventResp
	err := c.call("clEnqueueNDRangeKernel", EnqueueNDRangeKernelReq{
		Queue: q, Kernel: k, Dims: dims, Offset: offset, Global: global, Local: local, Waits: waits,
	}, &r)
	return r.Event, err
}

func (c *Client) EnqueueMarker(q ocl.CommandQueue) (ocl.Event, error) {
	var r EventResp
	err := c.call("clEnqueueMarker", QueueReq{Queue: q}, &r)
	return r.Event, err
}

func (c *Client) EnqueueBarrier(q ocl.CommandQueue) error {
	return c.post("clEnqueueBarrier", QueueReq{Queue: q})
}

func (c *Client) Flush(q ocl.CommandQueue) error {
	return c.post("clFlush", QueueReq{Queue: q})
}

func (c *Client) Finish(q ocl.CommandQueue) error {
	var r Empty
	return c.call("clFinish", QueueReq{Queue: q}, &r)
}

func (c *Client) WaitForEvents(events []ocl.Event) error {
	var r Empty
	return c.call("clWaitForEvents", WaitForEventsReq{Events: events}, &r)
}

func (c *Client) GetMemObjectInfo(m ocl.Mem) (ocl.MemObjectInfo, error) {
	var r GetMemObjectInfoResp
	err := c.call("clGetMemObjectInfo", MemReq{Mem: m}, &r)
	return r.Info, err
}

func (c *Client) GetKernelInfo(k ocl.Kernel) (ocl.KernelInfo, error) {
	var r GetKernelInfoResp
	err := c.call("clGetKernelInfo", KernelReq{Kernel: k}, &r)
	return r.Info, err
}

func (c *Client) GetContextInfo(ctx ocl.Context) (ocl.ContextInfo, error) {
	var r GetContextInfoResp
	err := c.call("clGetContextInfo", ContextReq{Context: ctx}, &r)
	return r.Info, err
}

func (c *Client) GetCommandQueueInfo(q ocl.CommandQueue) (ocl.CommandQueueInfo, error) {
	var r GetCommandQueueInfoResp
	err := c.call("clGetCommandQueueInfo", QueueReq{Queue: q}, &r)
	return r.Info, err
}

func (c *Client) GetKernelWorkGroupInfo(k ocl.Kernel, d ocl.DeviceID) (ocl.KernelWorkGroupInfo, error) {
	var r GetKernelWorkGroupInfoResp
	err := c.call("clGetKernelWorkGroupInfo", GetKernelWorkGroupInfoReq{Kernel: k, Device: d}, &r)
	return r.Info, err
}

func (c *Client) GetEventProfile(e ocl.Event) (ocl.EventProfile, error) {
	var r GetEventProfileResp
	err := c.call("clGetEventProfilingInfo", EventReq{Event: e}, &r)
	return r.Profile, err
}

func (c *Client) RetainEvent(e ocl.Event) error {
	var r Empty
	return c.call("clRetainEvent", EventReq{Event: e}, &r)
}

func (c *Client) ReleaseEvent(e ocl.Event) error {
	var r Empty
	return c.call("clReleaseEvent", EventReq{Event: e}, &r)
}
