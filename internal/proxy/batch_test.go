package proxy

import (
	"bytes"
	"encoding/binary"
	"math"
	"sync"
	"testing"

	"checl/internal/ipc"
	"checl/internal/ocl"
)

// batchFixture holds the plain-client objects the batch tests drive.
type batchFixture struct {
	api     *Client
	q       ocl.CommandQueue
	k       ocl.Kernel
	a, b, c ocl.Mem
	n       int
}

func setupBatchFixture(t *testing.T, px *Proxy, n int) *batchFixture {
	t.Helper()
	api := px.Client
	plats, err := api.GetPlatformIDs()
	if err != nil {
		t.Fatal(err)
	}
	devs, err := api.GetDeviceIDs(plats[0], ocl.DeviceTypeAll)
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := api.CreateContext(devs)
	if err != nil {
		t.Fatal(err)
	}
	q, err := api.CreateCommandQueue(ctx, devs[0], 0)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := api.CreateProgramWithSource(ctx, vaddSrc)
	if err != nil {
		t.Fatal(err)
	}
	if err := api.BuildProgram(prog, ""); err != nil {
		t.Fatal(err)
	}
	k, err := api.CreateKernel(prog, "vadd")
	if err != nil {
		t.Fatal(err)
	}
	f := &batchFixture{api: api, q: q, k: k, n: n}
	for _, m := range []*ocl.Mem{&f.a, &f.b, &f.c} {
		if *m, err = api.CreateBuffer(ctx, ocl.MemReadWrite, int64(4*n), nil); err != nil {
			t.Fatal(err)
		}
	}
	return f
}

func (f *batchFixture) hostVec() []byte {
	host := make([]byte, 4*f.n)
	for i := 0; i < f.n; i++ {
		binary.LittleEndian.PutUint32(host[4*i:], math.Float32bits(float32(i)))
	}
	return host
}

// vaddBatch builds the full vadd pipeline as ONE batch: four SetArgs,
// two writes (payloads in the raw frame), the launch waiting on the
// writes by in-batch index, a read of the result waiting on the launch,
// and the closing finish.
func (f *batchFixture) vaddBatch() ([]BatchCmd, []byte) {
	host := f.hostVec()
	payload := append(append([]byte(nil), host...), host...)
	size := int64(4 * f.n)
	cmds := []BatchCmd{
		{Op: BatchSetArg, Kernel: f.k, Index: 0, ArgSize: 8, Value: handleBytes(f.a)},
		{Op: BatchSetArg, Kernel: f.k, Index: 1, ArgSize: 8, Value: handleBytes(f.b)},
		{Op: BatchSetArg, Kernel: f.k, Index: 2, ArgSize: 8, Value: handleBytes(f.c)},
		{Op: BatchSetArg, Kernel: f.k, Index: 3, ArgSize: 4, Value: u32bytes(uint32(f.n))},
		{Op: BatchWrite, Queue: f.q, Mem: f.a, PayloadOff: 0, PayloadLen: size},
		{Op: BatchWrite, Queue: f.q, Mem: f.b, PayloadOff: size, PayloadLen: size},
		{Op: BatchNDRange, Queue: f.q, Kernel: f.k, Dims: 1, Global: [3]int{f.n}, Local: [3]int{64}, WaitIdx: []int{4, 5}},
		{Op: BatchRead, Queue: f.q, Mem: f.c, Size: size, WaitIdx: []int{6}},
		{Op: BatchFinish, Queue: f.q},
	}
	return cmds, payload
}

// TestBatchRoundTrip: one clEnqueueBatch frame carries the entire vadd
// pipeline — args, write payloads in the raw request frame, an in-batch
// wait chain, and read data back in the raw response frame.
func TestBatchRoundTrip(t *testing.T) {
	_, _, px := spawnNV(t)
	f := setupBatchFixture(t, px, 128)
	cmds, payload := f.vaddBatch()

	callsBefore := f.api.Stats().Calls
	resp, out, err := f.api.EnqueueBatch(cmds, payload)
	if err != nil {
		t.Fatal(err)
	}
	if got := f.api.Stats().Calls - callsBefore; got != 1 {
		t.Errorf("batch cost %d wire calls, want 1", got)
	}
	if resp.ErrIdx != -1 {
		t.Fatalf("batch failed at %d: %s %s", resp.ErrIdx, resp.ErrOp, resp.ErrDetail)
	}
	if len(resp.Events) != len(cmds) || len(resp.ReadLens) != len(cmds) {
		t.Fatalf("per-command result lengths: events=%d readlens=%d want %d",
			len(resp.Events), len(resp.ReadLens), len(cmds))
	}
	if resp.Events[6] == 0 {
		t.Error("NDRange command minted no event")
	}
	if resp.ReadLens[7] != int64(4*f.n) || int64(len(out)) != int64(4*f.n) {
		t.Fatalf("read data: lens[7]=%d raw=%d want %d", resp.ReadLens[7], len(out), 4*f.n)
	}
	for i := 0; i < f.n; i++ {
		got := math.Float32frombits(binary.LittleEndian.Uint32(out[4*i:]))
		if got != 2*float32(i) {
			t.Fatalf("c[%d] = %v, want %v", i, got, 2*float32(i))
		}
	}
	if f.api.Stats().Batched < int64(len(cmds)) {
		t.Errorf("batched counter = %d, want >= %d", f.api.Stats().Batched, len(cmds))
	}
}

// TestBatchPartialFailure: the first failing command stops the batch;
// earlier commands keep their results, the error fields attribute the
// failure, and later commands never execute.
func TestBatchPartialFailure(t *testing.T) {
	_, _, px := spawnNV(t)
	f := setupBatchFixture(t, px, 64)
	size := int64(4 * f.n)
	good := bytes.Repeat([]byte{0xAA}, int(size))
	bad := bytes.Repeat([]byte{0xBB}, int(size))
	payload := append(append(append([]byte(nil), good...), 1, 2, 3, 4), bad...)

	cmds := []BatchCmd{
		{Op: BatchWrite, Queue: f.q, Mem: f.c, PayloadOff: 0, PayloadLen: size},
		// Offset beyond the buffer: the runtime rejects with CL_INVALID_VALUE.
		{Op: BatchWrite, Queue: f.q, Mem: f.c, Offset: size, PayloadOff: size, PayloadLen: 4},
		{Op: BatchWrite, Queue: f.q, Mem: f.c, PayloadOff: size + 4, PayloadLen: size},
	}
	resp, _, err := f.api.EnqueueBatch(cmds, payload)
	if err != nil {
		t.Fatalf("command failure must be in-band, not a transport error: %v", err)
	}
	if resp.ErrIdx != 1 {
		t.Fatalf("ErrIdx = %d, want 1", resp.ErrIdx)
	}
	if resp.ErrOp != "clEnqueueWriteBuffer" || resp.ErrStatus != int32(ocl.InvalidValue) {
		t.Errorf("error attribution = %s/%d, want clEnqueueWriteBuffer/%d",
			resp.ErrOp, resp.ErrStatus, int32(ocl.InvalidValue))
	}
	if resp.Events[0] == 0 {
		t.Error("pre-failure command lost its event")
	}

	out, _, err := f.api.EnqueueReadBuffer(f.q, f.c, true, 0, size, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, good) {
		t.Error("buffer should hold the pre-failure write only")
	}
}

// TestBatchPayloadBoundsChecked: a command whose payload window lies
// outside the raw frame must be rejected, not read out of bounds.
func TestBatchPayloadBoundsChecked(t *testing.T) {
	_, _, px := spawnNV(t)
	f := setupBatchFixture(t, px, 64)
	cmds := []BatchCmd{
		{Op: BatchWrite, Queue: f.q, Mem: f.c, PayloadOff: 0, PayloadLen: 64},
	}
	resp, _, err := f.api.EnqueueBatch(cmds, []byte{1, 2, 3}) // frame shorter than the window
	if err != nil {
		t.Fatalf("bounds violation must be in-band: %v", err)
	}
	if resp.ErrIdx != 0 {
		t.Errorf("ErrIdx = %d, want 0", resp.ErrIdx)
	}
}

// TestBatchReplayUnderFault: clEnqueueBatch is a sequenced call — under
// the connection-kill plan a lost response is answered from the dedupe
// cache, the batch executes exactly once, and the data stays correct.
func TestBatchReplayUnderFault(t *testing.T) {
	_, px, inj := spawnFaulted(t, ipc.FaultPlan{
		Seed:      11,
		EveryN:    3,
		SkipFirst: 2,
	})
	f := setupBatchFixture(t, px, 128)

	for i := 0; i < 8; i++ {
		cmds, payload := f.vaddBatch()
		resp, out, err := f.api.EnqueueBatch(cmds, payload)
		if err != nil {
			t.Fatalf("batch %d under faults: %v", i, err)
		}
		if resp.ErrIdx != -1 {
			t.Fatalf("batch %d failed at %d: %s", i, resp.ErrIdx, resp.ErrDetail)
		}
		for j := 0; j < f.n; j++ {
			got := math.Float32frombits(binary.LittleEndian.Uint32(out[4*j:]))
			if got != 2*float32(j) {
				t.Fatalf("batch %d: c[%d] = %v (faults corrupted a replayed batch)", i, j, got)
			}
		}
	}
	if inj.Injected() == 0 {
		t.Fatal("plan injected nothing; test proves nothing")
	}
	if f.api.Stats().Retries == 0 {
		t.Error("no batch was ever retried; test proves nothing about replay")
	}
}

// TestClientStatsRace: Stats() is read concurrently with traffic from
// many goroutines; the counters must be race-free (run under -race).
func TestClientStatsRace(t *testing.T) {
	_, _, px := spawnNV(t)
	api := px.Client

	var readers, callers sync.WaitGroup
	stop := make(chan struct{})
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = api.Stats()
			}
		}
	}()
	for i := 0; i < 8; i++ {
		callers.Add(1)
		go func() {
			defer callers.Done()
			for j := 0; j < 100; j++ {
				if _, err := api.GetPlatformIDs(); err != nil {
					return
				}
			}
		}()
	}
	callers.Wait()
	close(stop)
	readers.Wait()

	st := api.Stats()
	if st.Calls < 800 {
		t.Errorf("calls = %d, want >= 800", st.Calls)
	}
}
