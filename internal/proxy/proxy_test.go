package proxy

import (
	"encoding/binary"
	"math"
	"testing"

	"checl/internal/cpr"
	"checl/internal/hw"
	"checl/internal/ocl"
	"checl/internal/proc"
	"checl/internal/vtime"
)

const vaddSrc = `
__kernel void vadd(__global const float* a, __global const float* b,
                   __global float* c, uint n) {
    size_t i = get_global_id(0);
    if (i < n) c[i] = a[i] + b[i];
}`

func spawnNV(t *testing.T) (*proc.Node, *proc.Process, *Proxy) {
	t.Helper()
	node := proc.NewNode("pc0", hw.TableISpec(), ocl.NVIDIA())
	app := node.Spawn("app")
	px, err := Spawn(app, node.Vendor("NVIDIA Corporation"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(px.Kill)
	return node, app, px
}

func handleBytes[T ~uint64](h T) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, uint64(h))
	return b
}

func u32bytes(v uint32) []byte {
	b := make([]byte, 4)
	binary.LittleEndian.PutUint32(b, v)
	return b
}

func TestSpawnProcessTopology(t *testing.T) {
	node, app, px := spawnNV(t)
	// Two processes: the application and its API proxy child (§III-A).
	if len(node.Processes()) != 2 {
		t.Errorf("processes = %d, want 2", len(node.Processes()))
	}
	if app.DeviceMapped() {
		t.Error("application process must not acquire device mappings")
	}
	if !px.Process.DeviceMapped() {
		t.Error("proxy process must hold the device mappings")
	}
	// Fork cost (~0.08s) charged.
	if node.Clock.Now() < vtime.Time(70*vtime.Millisecond) {
		t.Errorf("proxy fork cost not charged: clock at %v", node.Clock.Now())
	}
	// The application is checkpointable; the proxy is not.
	if _, err := (cpr.BLCR{}).Checkpoint(app, node.LocalDisk, "app.ckpt"); err != nil {
		t.Errorf("BLCR on application process: %v", err)
	}
	if _, err := (cpr.BLCR{}).Checkpoint(px.Process, node.LocalDisk, "px.ckpt"); err == nil {
		t.Error("BLCR on proxy process should fail")
	}
}

func TestEndToEndKernelThroughProxy(t *testing.T) {
	_, _, px := spawnNV(t)
	api := px.Client

	plats, err := api.GetPlatformIDs()
	if err != nil {
		t.Fatal(err)
	}
	devs, err := api.GetDeviceIDs(plats[0], ocl.DeviceTypeAll)
	if err != nil {
		t.Fatal(err)
	}
	info, err := api.GetDeviceInfo(devs[0])
	if err != nil || info.Name != "Tesla C1060" {
		t.Fatalf("device info = %+v, %v", info, err)
	}
	ctx, err := api.CreateContext(devs)
	if err != nil {
		t.Fatal(err)
	}
	q, err := api.CreateCommandQueue(ctx, devs[0], 0)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := api.CreateProgramWithSource(ctx, vaddSrc)
	if err != nil {
		t.Fatal(err)
	}
	if err := api.BuildProgram(prog, ""); err != nil {
		t.Fatal(err)
	}
	k, err := api.CreateKernel(prog, "vadd")
	if err != nil {
		t.Fatal(err)
	}

	n := 128
	host := make([]byte, 4*n)
	for i := 0; i < n; i++ {
		binary.LittleEndian.PutUint32(host[4*i:], math.Float32bits(float32(i)))
	}
	a, err := api.CreateBuffer(ctx, ocl.MemReadOnly|ocl.MemCopyHostPtr, int64(4*n), host)
	if err != nil {
		t.Fatal(err)
	}
	b, err := api.CreateBuffer(ctx, ocl.MemReadOnly, int64(4*n), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := api.EnqueueWriteBuffer(q, b, true, 0, host, nil); err != nil {
		t.Fatal(err)
	}
	cbuf, err := api.CreateBuffer(ctx, ocl.MemWriteOnly, int64(4*n), nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, h := range []ocl.Mem{a, b, cbuf} {
		if err := api.SetKernelArg(k, i, 8, handleBytes(h)); err != nil {
			t.Fatal(err)
		}
	}
	if err := api.SetKernelArg(k, 3, 4, u32bytes(uint32(n))); err != nil {
		t.Fatal(err)
	}
	ev, err := api.EnqueueNDRangeKernel(q, k, 1, [3]int{}, [3]int{n}, [3]int{64}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := api.WaitForEvents([]ocl.Event{ev}); err != nil {
		t.Fatal(err)
	}
	out, _, err := api.EnqueueReadBuffer(q, cbuf, true, 0, int64(4*n), nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		got := math.Float32frombits(binary.LittleEndian.Uint32(out[4*i:]))
		if got != 2*float32(i) {
			t.Fatalf("c[%d] = %v, want %v", i, got, 2*float32(i))
		}
	}

	st := api.Stats()
	if st.Calls < 10 {
		t.Errorf("forwarded calls = %d, want >= 10", st.Calls)
	}
	if st.Bytes < int64(8*n) {
		t.Errorf("forwarded bytes = %d, want at least two buffer payloads", st.Bytes)
	}
}

func TestErrorStatusSurvivesWire(t *testing.T) {
	_, _, px := spawnNV(t)
	_, err := px.Client.CreateContext(nil)
	if got := ocl.StatusOf(err); got != ocl.InvalidValue {
		t.Errorf("status across wire = %v (err %v), want CL_INVALID_VALUE", got, err)
	}
	err = px.Client.BuildProgram(ocl.Program(0xbad), "")
	if got := ocl.StatusOf(err); got != ocl.InvalidProgram {
		t.Errorf("status across wire = %v, want CL_INVALID_PROGRAM", got)
	}
}

func TestForwardingOverheadCharged(t *testing.T) {
	// The proxy makes data transfer strictly slower than direct use of the
	// runtime: extra per-call latency plus a host-to-host copy (§IV-A).
	spec := hw.TableISpec()

	direct := func() vtime.Duration {
		node := proc.NewNode("d", spec, ocl.NVIDIA())
		rt := ocl.NewRuntime(ocl.NVIDIA(), spec, node.Clock)
		plats, _ := rt.GetPlatformIDs()
		devs, _ := rt.GetDeviceIDs(plats[0], ocl.DeviceTypeAll)
		ctx, _ := rt.CreateContext(devs)
		q, _ := rt.CreateCommandQueue(ctx, devs[0], 0)
		m, _ := rt.CreateBuffer(ctx, ocl.MemReadWrite, 32<<20, nil)
		sw := vtime.NewStopwatch(node.Clock)
		if _, err := rt.EnqueueWriteBuffer(q, m, true, 0, make([]byte, 32<<20), nil); err != nil {
			t.Fatal(err)
		}
		return sw.Elapsed()
	}()

	proxied := func() vtime.Duration {
		node := proc.NewNode("p", spec, ocl.NVIDIA())
		app := node.Spawn("app")
		px, err := Spawn(app, node.Vendor("NVIDIA Corporation"))
		if err != nil {
			t.Fatal(err)
		}
		defer px.Kill()
		api := px.Client
		plats, _ := api.GetPlatformIDs()
		devs, _ := api.GetDeviceIDs(plats[0], ocl.DeviceTypeAll)
		ctx, _ := api.CreateContext(devs)
		q, _ := api.CreateCommandQueue(ctx, devs[0], 0)
		m, _ := api.CreateBuffer(ctx, ocl.MemReadWrite, 32<<20, nil)
		sw := vtime.NewStopwatch(node.Clock)
		if _, err := api.EnqueueWriteBuffer(q, m, true, 0, make([]byte, 32<<20), nil); err != nil {
			t.Fatal(err)
		}
		return sw.Elapsed()
	}()

	if !(proxied > direct) {
		t.Errorf("proxied transfer (%v) should exceed direct transfer (%v)", proxied, direct)
	}
	// The overhead should be on the order of the extra memcpy (32MB at
	// 6 GB/s is about 5.3 ms), not a 10x blowup.
	if proxied > 3*direct {
		t.Errorf("proxied transfer (%v) unreasonably slower than direct (%v)", proxied, direct)
	}
}

func TestKillStopsProxy(t *testing.T) {
	node, _, px := spawnNV(t)
	px.Kill()
	if px.Alive() {
		t.Error("proxy still alive after Kill")
	}
	if len(node.Processes()) != 1 {
		t.Errorf("processes after kill = %d, want 1 (the app)", len(node.Processes()))
	}
	// Calls after kill fail cleanly.
	if _, err := px.Client.GetPlatformIDs(); err == nil {
		t.Error("call after kill should fail")
	}
	px.Kill() // idempotent
}

func TestSpawnRequiresVendor(t *testing.T) {
	node := proc.NewNode("pc0", hw.TableISpec())
	app := node.Spawn("app")
	if _, err := Spawn(app, nil); err == nil {
		t.Error("Spawn with nil vendor should fail")
	}
}
