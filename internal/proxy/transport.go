package proxy

import (
	"fmt"
	"net"
	"os"
	"path/filepath"

	"checl/internal/ocl"
	"checl/internal/proc"
)

// Transport selects the byte stream carrying the app<->proxy RPC.
type Transport int

// Transports. The modelled virtual cost is identical (same-node IPC);
// the choice matters for engineering fidelity — a real CheCL uses Unix
// domain sockets between processes — and lets the benchmark suite
// measure the wall-clock (host) cost difference of the two transports.
const (
	// TransportPipe uses an in-memory synchronous pipe (net.Pipe).
	TransportPipe Transport = iota
	// TransportUnix uses a real Unix domain socket pair.
	TransportUnix
	// TransportRing uses the shared-memory ring (ipc.Ring): lock-free
	// SPSC submission/completion queues polled doorbell-free, typed
	// values crossing by reference, bulk reads landing zero-copy in the
	// caller's buffer, and fire-and-forget posting for enqueue-class
	// calls. Its modelled cost comes from hw.RingModel instead of the
	// framed IPCCallLatency/Memcpy pair.
	TransportRing
)

func (t Transport) String() string {
	switch t {
	case TransportUnix:
		return "unix-socket"
	case TransportRing:
		return "ring"
	}
	return "pipe"
}

// SpawnWithTransport is Spawn with an explicit transport choice.
func SpawnWithTransport(app *proc.Process, vendor *ocl.Vendor, transport Transport) (*Proxy, error) {
	return SpawnWithOptions(app, vendor, SpawnOpts{Transport: transport})
}

// SpawnWithOptions is Spawn with full control over transport, fault
// injection, per-call deadlines, and the retry policy.
func SpawnWithOptions(app *proc.Process, vendor *ocl.Vendor, opts SpawnOpts) (*Proxy, error) {
	if vendor == nil {
		return nil, fmt.Errorf("proxy: no vendor OpenCL implementation to load")
	}
	node := app.Node()
	child := app.Fork("api-proxy:" + vendor.PlatformVendor)
	node.Clock.Advance(node.Spec.ProxyForkCost)

	rt := ocl.NewRuntime(vendor, node.Spec, node.Clock)
	child.MapDevice()

	p := &Proxy{
		Process: child,
		Runtime: rt,
		node:    node,
		server:  NewServer(rt),
		opts:    opts,
	}
	if opts.Fault != nil {
		opts.Fault.SetClock(node.Clock)
		opts.Fault.SetCrashServer(p.crash)
	}
	conn, err := p.dial()
	if err != nil {
		child.Kill()
		return nil, err
	}
	cost := CostModel{
		CallLatency: node.Spec.IPCCallLatency,
		CopyBW:      node.Spec.Inter.Memcpy,
	}
	if opts.Transport == TransportRing {
		ring := node.Spec.Ring
		cost.Ring = &ring
	}
	p.Client = NewClient(conn, node.Clock, cost)
	p.Client.SetRetryPolicy(opts.Retry)
	p.Client.SetRedial(p.dial)
	return p, nil
}

// connect builds both endpoints of the chosen transport.
func connect(transport Transport) (appEnd, proxyEnd net.Conn, err error) {
	switch transport {
	case TransportUnix:
		dir, err := os.MkdirTemp("", "checl-proxy-")
		if err != nil {
			return nil, nil, fmt.Errorf("proxy: socket dir: %w", err)
		}
		path := filepath.Join(dir, "api.sock")
		ln, err := net.Listen("unix", path)
		if err != nil {
			os.RemoveAll(dir)
			return nil, nil, fmt.Errorf("proxy: unix listen: %w", err)
		}
		accepted := make(chan net.Conn, 1)
		go func() {
			conn, err := ln.Accept()
			if err != nil {
				close(accepted)
				return
			}
			accepted <- conn
		}()
		client, err := net.Dial("unix", path)
		if err != nil {
			ln.Close()
			os.RemoveAll(dir)
			return nil, nil, fmt.Errorf("proxy: unix dial: %w", err)
		}
		server, ok := <-accepted
		ln.Close()
		os.RemoveAll(dir) // the socket stays connected after unlinking
		if !ok {
			client.Close()
			return nil, nil, fmt.Errorf("proxy: unix accept failed")
		}
		return client, server, nil
	default:
		a, b := net.Pipe()
		return a, b, nil
	}
}
