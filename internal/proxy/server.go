package proxy

import (
	"errors"
	"fmt"
	"io"

	"checl/internal/ipc"
	"checl/internal/ocl"
)

// readBufferInto reads through the API's caller-owned-destination variant
// when the implementation has one (the in-process Runtime does); otherwise
// it falls back to the allocating call and copies into buf when its
// capacity suffices. Either way the result lands in buf whenever
// cap(buf) >= size, which is what the pooled response paths rely on.
func readBufferInto(api ocl.API, q ocl.CommandQueue, m ocl.Mem, blocking bool, offset, size int64, waits []ocl.Event, buf []byte) ([]byte, ocl.Event, error) {
	type intoAPI interface {
		EnqueueReadBufferInto(q ocl.CommandQueue, m ocl.Mem, blocking bool, offset, size int64, waits []ocl.Event, buf []byte) ([]byte, ocl.Event, error)
	}
	if ri, ok := api.(intoAPI); ok {
		return ri.EnqueueReadBufferInto(q, m, blocking, offset, size, waits, buf)
	}
	data, ev, err := api.EnqueueReadBuffer(q, m, blocking, offset, size, waits)
	if err == nil && cap(buf) >= len(data) {
		buf = buf[:len(data)]
		copy(buf, data)
		return buf, ev, nil
	}
	return data, ev, err
}

// NewServer builds an RPC server that forwards every API method to api
// (normally an *ocl.Runtime living in the proxy process).
func NewServer(api ocl.API) *ipc.Server {
	s := ipc.NewServer()

	ipc.Register(s, "clGetPlatformIDs", func(Empty) (GetPlatformIDsResp, error) {
		ps, err := api.GetPlatformIDs()
		return GetPlatformIDsResp{Platforms: ps}, err
	})
	ipc.Register(s, "clGetPlatformInfo", func(r GetPlatformInfoReq) (GetPlatformInfoResp, error) {
		info, err := api.GetPlatformInfo(r.Platform)
		return GetPlatformInfoResp{Info: info}, err
	})
	ipc.Register(s, "clGetDeviceIDs", func(r GetDeviceIDsReq) (GetDeviceIDsResp, error) {
		ds, err := api.GetDeviceIDs(r.Platform, r.Mask)
		return GetDeviceIDsResp{Devices: ds}, err
	})
	ipc.Register(s, "clGetDeviceInfo", func(r GetDeviceInfoReq) (GetDeviceInfoResp, error) {
		info, err := api.GetDeviceInfo(r.Device)
		return GetDeviceInfoResp{Info: info}, err
	})

	ipc.Register(s, "clCreateContext", func(r CreateContextReq) (CreateContextResp, error) {
		c, err := api.CreateContext(r.Devices)
		return CreateContextResp{Context: c}, err
	})
	ipc.Register(s, "clRetainContext", func(r ContextReq) (Empty, error) {
		return Empty{}, api.RetainContext(r.Context)
	})
	ipc.Register(s, "clReleaseContext", func(r ContextReq) (Empty, error) {
		return Empty{}, api.ReleaseContext(r.Context)
	})

	ipc.Register(s, "clCreateCommandQueue", func(r CreateCommandQueueReq) (CreateCommandQueueResp, error) {
		q, err := api.CreateCommandQueue(r.Context, r.Device, r.Props)
		return CreateCommandQueueResp{Queue: q}, err
	})
	ipc.Register(s, "clRetainCommandQueue", func(r QueueReq) (Empty, error) {
		return Empty{}, api.RetainCommandQueue(r.Queue)
	})
	ipc.Register(s, "clReleaseCommandQueue", func(r QueueReq) (Empty, error) {
		return Empty{}, api.ReleaseCommandQueue(r.Queue)
	})

	ipc.Register(s, "clCreateBuffer", func(r CreateBufferReq) (CreateBufferResp, error) {
		m, err := api.CreateBuffer(r.Context, r.Flags, r.Size, r.HostData)
		return CreateBufferResp{Mem: m}, err
	})
	ipc.Register(s, "clRetainMemObject", func(r MemReq) (Empty, error) {
		return Empty{}, api.RetainMemObject(r.Mem)
	})
	ipc.Register(s, "clReleaseMemObject", func(r MemReq) (Empty, error) {
		return Empty{}, api.ReleaseMemObject(r.Mem)
	})

	ipc.Register(s, "clCreateSampler", func(r CreateSamplerReq) (CreateSamplerResp, error) {
		sm, err := api.CreateSampler(r.Context, r.Normalized, r.AMode, r.FMode)
		return CreateSamplerResp{Sampler: sm}, err
	})
	ipc.Register(s, "clRetainSampler", func(r SamplerReq) (Empty, error) {
		return Empty{}, api.RetainSampler(r.Sampler)
	})
	ipc.Register(s, "clReleaseSampler", func(r SamplerReq) (Empty, error) {
		return Empty{}, api.ReleaseSampler(r.Sampler)
	})

	ipc.Register(s, "clCreateProgramWithSource", func(r CreateProgramWithSourceReq) (CreateProgramResp, error) {
		p, err := api.CreateProgramWithSource(r.Context, r.Source)
		return CreateProgramResp{Program: p}, err
	})
	ipc.Register(s, "clCreateProgramWithBinary", func(r CreateProgramWithBinaryReq) (CreateProgramResp, error) {
		p, err := api.CreateProgramWithBinary(r.Context, r.Device, r.Binary)
		return CreateProgramResp{Program: p}, err
	})
	ipc.Register(s, "clBuildProgram", func(r BuildProgramReq) (Empty, error) {
		return Empty{}, api.BuildProgram(r.Program, r.Options)
	})
	ipc.Register(s, "clGetProgramBuildInfo", func(r GetProgramBuildInfoReq) (GetProgramBuildInfoResp, error) {
		info, err := api.GetProgramBuildInfo(r.Program, r.Device)
		return GetProgramBuildInfoResp{Info: info}, err
	})
	ipc.Register(s, "clGetProgramBinary", func(r ProgramReq) (GetProgramBinaryResp, error) {
		bin, err := api.GetProgramBinary(r.Program)
		return GetProgramBinaryResp{Binary: bin}, err
	})
	ipc.Register(s, "clRetainProgram", func(r ProgramReq) (Empty, error) {
		return Empty{}, api.RetainProgram(r.Program)
	})
	ipc.Register(s, "clReleaseProgram", func(r ProgramReq) (Empty, error) {
		return Empty{}, api.ReleaseProgram(r.Program)
	})

	ipc.Register(s, "clCreateKernel", func(r CreateKernelReq) (CreateKernelResp, error) {
		k, err := api.CreateKernel(r.Program, r.Name)
		return CreateKernelResp{Kernel: k}, err
	})
	ipc.Register(s, "clRetainKernel", func(r KernelReq) (Empty, error) {
		return Empty{}, api.RetainKernel(r.Kernel)
	})
	ipc.Register(s, "clReleaseKernel", func(r KernelReq) (Empty, error) {
		return Empty{}, api.ReleaseKernel(r.Kernel)
	})
	ipc.Register(s, "clSetKernelArg", func(r SetKernelArgReq) (Empty, error) {
		return Empty{}, api.SetKernelArg(r.Kernel, r.Index, r.Size, r.Value)
	})

	// Buffer transfers use raw payload frames: the write's data arrives as
	// a pooled slice (the runtime copies what it keeps) and the read's data
	// leaves as the response's raw frame, skipping gob both ways.
	ipc.RegisterRaw(s, "clEnqueueWriteBuffer", func(r EnqueueWriteBufferReq, payload []byte) (EventResp, []byte, error) {
		ev, err := api.EnqueueWriteBuffer(r.Queue, r.Mem, r.Blocking, r.Offset, payload, r.Waits)
		return EventResp{Event: ev}, nil, err
	})
	// The read-response payload scratch is safe to reuse across calls:
	// the client keeps one call in flight at a time, the frame is fully
	// on the wire before the handler returns, and read responses are
	// never replay-cached (reads are idempotent, so they carry seq 0).
	var readScratch []byte
	ipc.RegisterRaw(s, "clEnqueueReadBuffer", func(r EnqueueReadBufferReq, _ []byte) (EnqueueReadBufferResp, []byte, error) {
		if int64(cap(readScratch)) < r.Size && r.Size >= 0 {
			readScratch = make([]byte, r.Size)
		}
		data, ev, err := readBufferInto(api, r.Queue, r.Mem, r.Blocking, r.Offset, r.Size, r.Waits, readScratch[:0])
		return EnqueueReadBufferResp{Event: ev}, data, err
	})
	// Ring dispatch overrides the derived read handler for two reasons:
	// the framed handler's reusable scratch must never escape onto the
	// completion queue (the client may retain a read result), and when the
	// client supplied a destination buffer the data should land in it
	// directly — the zero-copy arm of the ring transport.
	s.RegisterRing("clEnqueueReadBuffer", func(req any, _ []byte, into []byte) (any, []byte, error) {
		r, ok := req.(EnqueueReadBufferReq)
		if !ok {
			return nil, nil, fmt.Errorf("ipc: clEnqueueReadBuffer: request is %T, want %T", req, r)
		}
		buf := into[:0]
		if r.Size >= 0 && int64(cap(into)) < r.Size {
			buf = make([]byte, 0, r.Size)
		}
		data, ev, err := readBufferInto(api, r.Queue, r.Mem, r.Blocking, r.Offset, r.Size, r.Waits, buf)
		return EnqueueReadBufferResp{Event: ev}, data, err
	})
	ipc.RegisterRaw(s, "clEnqueueBatch", func(r EnqueueBatchReq, payload []byte) (EnqueueBatchResp, []byte, error) {
		return runBatch(api, r, payload)
	})
	ipc.Register(s, "clEnqueueCopyBuffer", func(r EnqueueCopyBufferReq) (EventResp, error) {
		ev, err := api.EnqueueCopyBuffer(r.Queue, r.Src, r.Dst, r.SrcOff, r.DstOff, r.Size, r.Waits)
		return EventResp{Event: ev}, err
	})
	ipc.Register(s, "clEnqueueNDRangeKernel", func(r EnqueueNDRangeKernelReq) (EventResp, error) {
		ev, err := api.EnqueueNDRangeKernel(r.Queue, r.Kernel, r.Dims, r.Offset, r.Global, r.Local, r.Waits)
		return EventResp{Event: ev}, err
	})
	ipc.Register(s, "clEnqueueMarker", func(r QueueReq) (EventResp, error) {
		ev, err := api.EnqueueMarker(r.Queue)
		return EventResp{Event: ev}, err
	})
	ipc.Register(s, "clEnqueueBarrier", func(r QueueReq) (Empty, error) {
		return Empty{}, api.EnqueueBarrier(r.Queue)
	})

	ipc.Register(s, "clFlush", func(r QueueReq) (Empty, error) {
		return Empty{}, api.Flush(r.Queue)
	})
	ipc.Register(s, "clFinish", func(r QueueReq) (Empty, error) {
		return Empty{}, api.Finish(r.Queue)
	})
	ipc.Register(s, "clWaitForEvents", func(r WaitForEventsReq) (Empty, error) {
		return Empty{}, api.WaitForEvents(r.Events)
	})
	ipc.Register(s, "clGetMemObjectInfo", func(r MemReq) (GetMemObjectInfoResp, error) {
		info, err := api.GetMemObjectInfo(r.Mem)
		return GetMemObjectInfoResp{Info: info}, err
	})
	ipc.Register(s, "clGetKernelInfo", func(r KernelReq) (GetKernelInfoResp, error) {
		info, err := api.GetKernelInfo(r.Kernel)
		return GetKernelInfoResp{Info: info}, err
	})
	ipc.Register(s, "clGetContextInfo", func(r ContextReq) (GetContextInfoResp, error) {
		info, err := api.GetContextInfo(r.Context)
		return GetContextInfoResp{Info: info}, err
	})
	ipc.Register(s, "clGetCommandQueueInfo", func(r QueueReq) (GetCommandQueueInfoResp, error) {
		info, err := api.GetCommandQueueInfo(r.Queue)
		return GetCommandQueueInfoResp{Info: info}, err
	})
	ipc.Register(s, "clGetKernelWorkGroupInfo", func(r GetKernelWorkGroupInfoReq) (GetKernelWorkGroupInfoResp, error) {
		info, err := api.GetKernelWorkGroupInfo(r.Kernel, r.Device)
		return GetKernelWorkGroupInfoResp{Info: info}, err
	})

	ipc.Register(s, "clGetEventProfilingInfo", func(r EventReq) (GetEventProfileResp, error) {
		p, err := api.GetEventProfile(r.Event)
		return GetEventProfileResp{Profile: p}, err
	})
	ipc.Register(s, "clRetainEvent", func(r EventReq) (Empty, error) {
		return Empty{}, api.RetainEvent(r.Event)
	})
	ipc.Register(s, "clReleaseEvent", func(r EventReq) (Empty, error) {
		return Empty{}, api.ReleaseEvent(r.Event)
	})

	return s
}

// runBatch executes a coalesced command run in order. The first failing
// command stops the batch: its error is recorded in the response (index,
// attributed method, status) instead of failing the whole call, because
// the commands before it did execute and the client needs their events
// and read data. In-batch event dependencies (WaitIdx) are resolved
// against the events minted by earlier commands of the same run.
func runBatch(api ocl.API, r EnqueueBatchReq, payload []byte) (EnqueueBatchResp, []byte, error) {
	resp := EnqueueBatchResp{
		Events:   make([]ocl.Event, len(r.Cmds)),
		ReadLens: make([]int64, len(r.Cmds)),
		ErrIdx:   -1,
	}
	var out []byte
	for i, cmd := range r.Cmds {
		waits := cmd.Waits
		if len(cmd.WaitIdx) > 0 {
			waits = append([]ocl.Event(nil), cmd.Waits...)
			for _, j := range cmd.WaitIdx {
				if j >= 0 && j < i && resp.Events[j] != 0 {
					waits = append(waits, resp.Events[j])
				}
			}
		}
		var ev ocl.Event
		var err error
		switch cmd.Op {
		case BatchSetArg:
			err = api.SetKernelArg(cmd.Kernel, cmd.Index, cmd.ArgSize, cmd.Value)
		case BatchWrite:
			if cmd.PayloadOff < 0 || cmd.PayloadLen < 0 || cmd.PayloadOff+cmd.PayloadLen > int64(len(payload)) {
				err = fmt.Errorf("batch write payload [%d:+%d] outside the %d-byte frame",
					cmd.PayloadOff, cmd.PayloadLen, len(payload))
				break
			}
			ev, err = api.EnqueueWriteBuffer(cmd.Queue, cmd.Mem, cmd.Blocking, cmd.Offset,
				payload[cmd.PayloadOff:cmd.PayloadOff+cmd.PayloadLen], waits)
		case BatchRead:
			// Read straight into the response frame's spare capacity —
			// no intermediate per-command buffer.
			off := len(out)
			if need := off + int(cmd.Size); cmd.Size >= 0 && cap(out) < need {
				grown := make([]byte, off, need)
				copy(grown, out)
				out = grown
			}
			var data []byte
			data, ev, err = readBufferInto(api, cmd.Queue, cmd.Mem, cmd.Blocking, cmd.Offset, cmd.Size, waits, out[off:off])
			if err == nil {
				resp.ReadLens[i] = int64(len(data))
				out = out[:off+len(data)]
			}
		case BatchCopy:
			ev, err = api.EnqueueCopyBuffer(cmd.Queue, cmd.Src, cmd.Dst, cmd.SrcOff, cmd.DstOff, cmd.Size, waits)
		case BatchNDRange:
			ev, err = api.EnqueueNDRangeKernel(cmd.Queue, cmd.Kernel, cmd.Dims, cmd.GOff, cmd.Global, cmd.Local, waits)
		case BatchMarker:
			ev, err = api.EnqueueMarker(cmd.Queue)
		case BatchBarrier:
			err = api.EnqueueBarrier(cmd.Queue)
		case BatchFlush:
			err = api.Flush(cmd.Queue)
		case BatchFinish:
			err = api.Finish(cmd.Queue)
		default:
			err = fmt.Errorf("unknown batch op %d", cmd.Op)
		}
		if err != nil {
			resp.ErrIdx = i
			var ec ipc.ErrorCoder
			if errors.As(err, &ec) {
				resp.ErrOp, resp.ErrStatus, resp.ErrDetail = ec.ErrorCode()
			} else {
				resp.ErrOp = cmd.Op.Method()
				resp.ErrStatus = -9999
				resp.ErrDetail = err.Error()
			}
			break
		}
		resp.Events[i] = ev
	}
	return resp, out, nil
}

// Serve runs the server loop on rwc until the peer closes the connection.
// It is intended to run in the proxy process's goroutine.
func Serve(api ocl.API, rwc io.ReadWriteCloser) error {
	return NewServer(api).ServeConn(rwc)
}
