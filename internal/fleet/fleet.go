// Package fleet is the multi-node job manager the paper positions CheCL
// as infrastructure for, grown to fleet scale: hundreds to thousands of
// concurrent OpenCL jobs arriving in bursts at a heterogeneous cluster of
// nodes whose device inventories come from the Table I models
// (internal/hw), all on the virtual timeline (internal/vtime).
//
// The manager treats checkpoint/restart as a routine scheduling action,
// not a disaster path:
//
//   - Admission: arriving jobs enter a priority queue and are placed on
//     the free compatible device with the shortest predicted runtime.
//     Under burst pressure that is often a slow CPU device — placement is
//     cheap to revise, because migration exists.
//   - Rebalancing: every RebalanceEvery tick an extended sched.Planner
//     re-plans the running set against the free devices. The queue-vs-
//     migrate rule is Eq. 1 applied to live state: move a job when the
//     predicted migration cost Tm plus its remaining time on the target
//     beats its remaining time where it sits (its effective queue wait).
//     The cost model's M is the job's *live incremental dirty set*
//     (CheckpointStats.DirtyBytes), not its static working set, so
//     long-running jobs that checkpoint regularly are cheap to move.
//   - Preemption: under device pressure a queued job may checkpoint-evict
//     a strictly-lower-priority running job. The victim's state is parked
//     in the checkpoint store and the victim rejoins the queue; it
//     restores (paying the read-back + recompile bill) when a slot frees.
//   - Honesty sampling: every SampleEvery-th job carries a real CheCL
//     application (internal/core) whose evictions and restores go through
//     the actual CheckpointToStore/RestoreFromStore path against a real
//     content-addressed store (internal/store), and whose buffer contents
//     must come back bit-identical.
//
// Everything runs single-threaded on one virtual clock, so a fleet run is
// deterministic for a given traffic seed and configuration.
package fleet

import (
	"fmt"
	"sort"

	"checl/internal/core"
	"checl/internal/hw"
	"checl/internal/proc"
	"checl/internal/sched"
	"checl/internal/vtime"
)

// Priority orders jobs in the admission queue and bounds preemption: a
// job may only evict strictly-lower-priority jobs.
type Priority int

// Priority bands, lowest first.
const (
	Low Priority = iota
	Normal
	High
)

// String names the priority band.
func (p Priority) String() string {
	switch p {
	case Low:
		return "low"
	case Normal:
		return "normal"
	case High:
		return "high"
	default:
		return fmt.Sprintf("Priority(%d)", int(p))
	}
}

// JobSpec describes one job submitted to the fleet.
type JobSpec struct {
	Name    string
	Arrival vtime.Time
	// Flops is the job's total computation.
	Flops float64
	// MemBytes is the job's device working set: it bounds placement and
	// is the full-checkpoint size M of the cost model.
	MemBytes int64
	// Recompile is the job's program build time (the Tr of Eq. 1).
	Recompile vtime.Duration
	Priority  Priority
	// DirtyBytesPerSec is how fast the job dirties its working set after
	// a committed checkpoint (capped at MemBytes). Zero means the fleet
	// has no dirty-tracking information for the job and conservatively
	// prices every checkpoint at the full working set.
	DirtyBytesPerSec float64
}

// NodeSpec is one fleet node's device inventory.
type NodeSpec struct {
	Name    string
	Devices []hw.DeviceModel
}

// Config parameterises a fleet run.
type Config struct {
	// Model is the fitted Eq. 1 instance used for every migration,
	// eviction and restore cost prediction.
	Model core.CostModel
	// RebalanceEvery is the planner tick. Default 500ms.
	RebalanceEvery vtime.Duration
	// MinGain suppresses migration churn (sched.Planner.MinGain).
	// Default 250ms.
	MinGain vtime.Duration
	// Migration enables the rebalancing rounds. Off, the fleet is the
	// no-migration baseline: a job finishes where admission put it.
	Migration bool
	// Preemption enables checkpoint-evict-restore of lower-priority jobs
	// under device pressure.
	Preemption bool
	// SampleEvery routes every Nth job through a real CheCL application
	// whose evict/restore round-trips use the actual core+store
	// checkpoint path and are verified bit-identical. Zero disables
	// sampling.
	SampleEvery int
	// StoreNodes switches the sampled jobs' checkpoint destination from
	// the single NFS store to an erasure-coded store.Fleet of that many
	// nodes (4+2 Reed-Solomon; minimum 6, smaller positive values are
	// rounded up). Zero keeps the single-store rig.
	StoreNodes int
	// StoreFaults, when non-nil, seeds a node-fault injector over the
	// erasure fleet's store nodes: sampled evict/restore traffic then
	// runs through crashes, slow nodes, shard rot and torn writes, and
	// the bit-identical verification still has to hold. Ignored unless
	// StoreNodes selects a fleet. MaxDown is clamped to the parity count.
	StoreFaults *proc.NodeFaultPlan
	// SpeculativeDrain models the jobs checkpointing with the stop-free
	// speculative drain (core.Options.SpeculativeDrain): the planner's Tm
	// then charges the job only the validation/commit stall residue
	// instead of the full stop-drain copy — the drain itself still
	// occupies the source device's DMA engines. Sampled real jobs run
	// with the option enabled.
	SpeculativeDrain bool
	// SpecViolationRate is the modelled fraction of a speculatively
	// drained checkpoint that is violated and re-copied synchronously
	// (0..1). Default 0.1 when SpeculativeDrain is on.
	SpecViolationRate float64
}

func (c Config) withDefaults() Config {
	if c.RebalanceEvery <= 0 {
		c.RebalanceEvery = 500 * vtime.Millisecond
	}
	if c.MinGain <= 0 {
		c.MinGain = 250 * vtime.Millisecond
	}
	if c.SpeculativeDrain && c.SpecViolationRate <= 0 {
		c.SpecViolationRate = 0.1
	}
	if c.SpecViolationRate > 1 {
		c.SpecViolationRate = 1
	}
	return c
}

// DefaultCostModel is a fitted Eq. 1 instance in the ballpark the Fig. 8
// calibration produces for checkpoints over the Table I NFS: ~28.6 MB/s
// effective checkpoint bandwidth and a 100 ms constant.
func DefaultCostModel() core.CostModel {
	return core.CostModel{Alpha: 3.5e-8, Beta: 0.1}
}

// DefaultNodes is a small heterogeneous inventory built from the Table I
// device models: gpuNodes nodes carrying one Tesla C1060 (every third one
// a Radeon HD5870 instead) plus the host CPU device, and cpuNodes
// CPU-only nodes.
func DefaultNodes(gpuNodes, cpuNodes int) []NodeSpec {
	var nodes []NodeSpec
	for i := 0; i < gpuNodes; i++ {
		gpu := hw.TeslaC1060()
		if i%3 == 2 {
			gpu = hw.RadeonHD5870()
		}
		nodes = append(nodes, NodeSpec{
			Name:    fmt.Sprintf("gpu-%d", i),
			Devices: []hw.DeviceModel{gpu, hw.CoreI7920()},
		})
	}
	for i := 0; i < cpuNodes; i++ {
		nodes = append(nodes, NodeSpec{
			Name:    fmt.Sprintf("cpu-%d", i),
			Devices: []hw.DeviceModel{hw.CoreI7920()},
		})
	}
	return nodes
}

// imageOverhead mirrors the planner's fixed host-image overhead beyond
// the staged buffers.
const imageOverhead = 1 << 20

type phase int

const (
	phaseQueued phase = iota
	phaseRunning
	phaseDone
	phaseRejected
)

// job is the manager's mutable view of one JobSpec.
type job struct {
	spec      JobSpec
	phase     phase
	remaining float64 // flops
	// dirty is the live incremental dirty set accumulated since the last
	// committed checkpoint generation.
	dirty   int64
	hasCkpt bool

	dev          *device
	computeStart vtime.Time // compute begins after restore/migration delay
	finishAt     vtime.Time
	lastProgress vtime.Time

	queuedAt   vtime.Time
	waited     vtime.Duration
	migrations int
	evictions  int
	doneAt     vtime.Time

	real *realJob
}

// ckptBytes is the checkpoint payload M the cost model sees for the job's
// next checkpoint: the live dirty set when a generation is committed and
// the job reports dirty tracking, else the full working set.
func (j *job) ckptBytes() int64 {
	if j.hasCkpt && j.spec.DirtyBytesPerSec > 0 {
		return j.dirty
	}
	return j.spec.MemBytes
}

type device struct {
	key   string
	node  *fleetNode
	model hw.DeviceModel

	job       *job
	busyUntil vtime.Time // checkpoint-drain tail after the job left
	occStart  vtime.Time
	busy      vtime.Duration
	jobsRun   int
}

func (d *device) free(now vtime.Time) bool {
	return d.job == nil && d.busyUntil <= now
}

func (d *device) release(now vtime.Time) {
	d.busy += now.Sub(d.occStart)
	d.job = nil
}

type fleetNode struct {
	name    string
	devices []*device
}

// Fleet is the job manager. Construct with New, drive with Run.
type Fleet struct {
	cfg     Config
	clock   *vtime.Clock
	nodes   []*fleetNode
	devices []*device
	byKey   map[string]*device
	planner *sched.Planner
	rig     *realRig

	ran      bool
	jobs     []*job
	arrivals []*job // jobs sorted by (Arrival, Name); ai indexes the next
	ai       int
	queue    []*job
	byName   map[string]*job
	metrics  metrics
}

// New builds a fleet over the node inventories. The configuration is
// validated lazily by Run.
func New(nodes []NodeSpec, cfg Config) *Fleet {
	f := &Fleet{
		cfg:    cfg.withDefaults(),
		clock:  vtime.NewClock(),
		byKey:  map[string]*device{},
		byName: map[string]*job{},
	}
	f.planner = &sched.Planner{Model: f.cfg.Model, MinGain: f.cfg.MinGain}
	for _, ns := range nodes {
		fn := &fleetNode{name: ns.Name}
		for i, dm := range ns.Devices {
			d := &device{
				key:   fmt.Sprintf("%s/dev%d", ns.Name, i),
				node:  fn,
				model: dm,
			}
			fn.devices = append(fn.devices, d)
			f.devices = append(f.devices, d)
			f.byKey[d.key] = d
		}
		f.nodes = append(f.nodes, fn)
	}
	return f
}

// Run drives the fleet through the traffic until every job has completed
// or been rejected, and reports the aggregate outcome. A Fleet runs once.
func (f *Fleet) Run(specs []JobSpec) (Report, error) {
	if f.ran {
		return Report{}, fmt.Errorf("fleet: Run called twice")
	}
	f.ran = true
	if len(f.devices) == 0 {
		return Report{}, fmt.Errorf("fleet: no devices in the inventory")
	}
	for i, s := range specs {
		if s.Name == "" {
			return Report{}, fmt.Errorf("fleet: job %d has no name", i)
		}
		if _, dup := f.byName[s.Name]; dup {
			return Report{}, fmt.Errorf("fleet: duplicate job name %q", s.Name)
		}
		j := &job{spec: s, remaining: s.Flops}
		f.jobs = append(f.jobs, j)
		f.byName[s.Name] = j
	}
	f.arrivals = append([]*job(nil), f.jobs...)
	sort.Slice(f.arrivals, func(i, k int) bool {
		if f.arrivals[i].spec.Arrival != f.arrivals[k].spec.Arrival {
			return f.arrivals[i].spec.Arrival < f.arrivals[k].spec.Arrival
		}
		return f.arrivals[i].spec.Name < f.arrivals[k].spec.Name
	})
	if f.cfg.SampleEvery > 0 && len(f.arrivals) > 0 {
		var err error
		if f.rig, err = newRealRig(f.cfg); err != nil {
			return Report{}, err
		}
		for i := f.cfg.SampleEvery - 1; i < len(f.arrivals); i += f.cfg.SampleEvery {
			f.arrivals[i].real = &realJob{}
		}
	}

	settled := 0 // done + rejected
	var nextReb vtime.Time
	if len(f.arrivals) > 0 {
		nextReb = f.arrivals[0].spec.Arrival.Add(f.cfg.RebalanceEvery)
	}
	for settled < len(f.jobs) {
		now, ok := f.nextEvent(nextReb)
		if !ok {
			return Report{}, fmt.Errorf("fleet: stalled at %s with %d jobs unsettled",
				f.clock.Now(), len(f.jobs)-settled)
		}
		f.clock.AdvanceTo(now)

		// Arrivals.
		for f.ai < len(f.arrivals) && f.arrivals[f.ai].spec.Arrival <= now {
			j := f.arrivals[f.ai]
			f.ai++
			if !f.placeable(j) {
				j.phase = phaseRejected
				f.metrics.rejected = append(f.metrics.rejected, j.spec.Name)
				settled++
				continue
			}
			j.phase = phaseQueued
			j.queuedAt = now
			f.queue = append(f.queue, j)
		}

		// Completions.
		for _, d := range f.devices {
			if d.job != nil && d.job.finishAt <= now {
				f.complete(d.job, now)
				settled++
			}
		}

		if err := f.admit(now); err != nil {
			return Report{}, err
		}

		if now >= nextReb {
			if f.cfg.Migration {
				f.rebalance(now)
			}
			if f.cfg.Preemption {
				if err := f.preempt(now); err != nil {
					return Report{}, err
				}
			}
			if err := f.admit(now); err != nil {
				return Report{}, err
			}
			depth, parked := f.queueDepth()
			f.metrics.sampleQueue(now, depth, parked)
			nextReb = now.Add(f.cfg.RebalanceEvery)
		}
	}
	return f.report(), nil
}

// nextEvent picks the earliest pending instant: the next arrival, the
// earliest running-job completion, the earliest device drain-tail expiry,
// or — whenever any work is outstanding — the next rebalance tick.
func (f *Fleet) nextEvent(nextReb vtime.Time) (vtime.Time, bool) {
	now := f.clock.Now()
	var best vtime.Time
	found := false
	consider := func(t vtime.Time) {
		if t < now {
			t = now
		}
		if !found || t < best {
			best, found = t, true
		}
	}
	outstanding := len(f.queue) > 0 || f.ai < len(f.arrivals)
	if f.ai < len(f.arrivals) {
		consider(f.arrivals[f.ai].spec.Arrival)
	}
	for _, d := range f.devices {
		if d.job != nil {
			outstanding = true
			consider(d.job.finishAt)
		} else if d.busyUntil > now {
			consider(d.busyUntil)
		}
	}
	if outstanding {
		consider(nextReb)
	}
	return best, found
}

// placeable reports whether any device in the fleet can ever run the job:
// finite runtime and sufficient global memory. Jobs that fit nowhere are
// rejected at submission — the typed-rejection counterpart of
// vtime.Infinity.
func (f *Fleet) placeable(j *job) bool {
	for _, d := range f.devices {
		if f.fits(j, d) {
			return true
		}
	}
	return false
}

func (f *Fleet) fits(j *job, d *device) bool {
	s := sched.Slot{NodeName: d.node.name, Device: d.model, Key: d.key}
	return s.Fits(f.jobState(j, nil))
}

func (f *Fleet) jobState(j *job, on *device) sched.JobState {
	js := sched.JobState{
		Name:           j.spec.Name,
		RemainingFlops: j.remaining,
		MemBytes:       j.spec.MemBytes,
		HasCheckpoint:  j.hasCkpt && j.spec.DirtyBytesPerSec > 0,
		DirtyBytes:     j.dirty,
		RecompileTime:  j.spec.Recompile,
	}
	if f.cfg.SpeculativeDrain {
		js.CkptStall = f.specStall(j)
	}
	if on != nil {
		js.Device = on.model
		js.NodeName = on.node.name
	}
	return js
}

// specStall models the application-visible stall of a speculatively
// drained checkpoint: the configured violation fraction of the copy term
// is re-copied synchronously (the validated remainder is hidden behind
// the job's own execution). Always positive so the planner takes the
// speculative branch of MigrationCost.
func (f *Fleet) specStall(j *job) vtime.Duration {
	copyTerm := f.cfg.Model.Predict(j.ckptBytes()+imageOverhead, 0) - f.cfg.Model.Predict(imageOverhead, 0)
	st := vtime.Duration(float64(copyTerm) * f.cfg.SpecViolationRate)
	if st < 1 {
		st = 1
	}
	return st
}

// progress advances a running job's remaining work and live dirty set to
// the given instant.
func (f *Fleet) progress(j *job, now vtime.Time) {
	if j.phase != phaseRunning || now <= j.lastProgress {
		return
	}
	dt := now.Sub(j.lastProgress).Seconds()
	j.remaining -= dt * j.dev.model.SustainedRate()
	if j.remaining < 0 {
		j.remaining = 0
	}
	if j.spec.DirtyBytesPerSec > 0 {
		j.dirty += int64(dt * j.spec.DirtyBytesPerSec)
		if j.dirty > j.spec.MemBytes {
			j.dirty = j.spec.MemBytes
		}
	}
	j.lastProgress = now
}

// admit places queued jobs (priority first, then arrival order) onto the
// free compatible devices with the shortest predicted runtime.
func (f *Fleet) admit(now vtime.Time) error {
	if len(f.queue) == 0 {
		return nil
	}
	sortQueue(f.queue)
	var still []*job
	for _, j := range f.queue {
		d := f.bestFree(j, now)
		if d == nil {
			still = append(still, j)
			continue
		}
		if err := f.place(j, d, now, now); err != nil {
			return err
		}
	}
	f.queue = still
	if len(f.queue) > f.metrics.queuePeak {
		f.metrics.queuePeak = len(f.queue)
	}
	return nil
}

func sortQueue(q []*job) {
	sort.Slice(q, func(i, k int) bool {
		if q[i].spec.Priority != q[k].spec.Priority {
			return q[i].spec.Priority > q[k].spec.Priority
		}
		if q[i].spec.Arrival != q[k].spec.Arrival {
			return q[i].spec.Arrival < q[k].spec.Arrival
		}
		return q[i].spec.Name < q[k].spec.Name
	})
}

// bestFree returns the free device with the shortest predicted runtime
// for the job (ties on device key), or nil.
func (f *Fleet) bestFree(j *job, now vtime.Time) *device {
	var best *device
	var bestEst vtime.Duration
	for _, d := range f.devices {
		if !d.free(now) || !f.fits(j, d) {
			continue
		}
		est := sched.EstimateRuntime(j.remaining, d.model)
		if best == nil || est < bestEst || (est == bestEst && d.key < best.key) {
			best, bestEst = d, est
		}
	}
	return best
}

// place starts (or resumes) a job on a device. Compute begins at
// notBefore plus the restore bill for a parked job. For sampled jobs a
// parked restore goes through the real core+store path.
func (f *Fleet) place(j *job, d *device, now, notBefore vtime.Time) error {
	delay := vtime.Duration(0)
	if j.hasCkpt {
		// Resuming from the parked checkpoint reads the full image back
		// and recompiles — Eq. 1 with M = the full working set.
		delay = f.cfg.Model.Predict(j.spec.MemBytes+imageOverhead, j.spec.Recompile)
		f.metrics.restores++
		if j.real != nil && j.real.parked {
			mismatch, err := f.rig.restore(j.real, j.spec.Name)
			if err != nil {
				return fmt.Errorf("fleet: real restore of %s: %w", j.spec.Name, err)
			}
			f.metrics.realRoundTrips++
			if mismatch {
				f.metrics.realMismatches++
			}
		}
	} else if j.real != nil && j.real.c == nil {
		if err := f.rig.start(j.real, j.spec.Name); err != nil {
			return fmt.Errorf("fleet: real start of %s: %w", j.spec.Name, err)
		}
		f.metrics.realJobs++
	}
	j.phase = phaseRunning
	j.dev = d
	j.waited += now.Sub(j.queuedAt)
	start := vtime.Max(now, notBefore).Add(delay)
	j.computeStart = start
	j.lastProgress = start
	j.finishAt = start.Add(sched.EstimateRuntime(j.remaining, d.model))
	d.job = j
	d.occStart = now
	d.jobsRun++
	return nil
}

// complete retires a finished job and frees its device.
func (f *Fleet) complete(j *job, now vtime.Time) {
	j.remaining = 0
	j.phase = phaseDone
	j.doneAt = now
	j.dev.release(now)
	j.dev.busyUntil = now
	j.dev = nil
	f.metrics.done(j, now)
	if j.real != nil && j.real.c != nil {
		f.rig.finish(j.real)
	}
}

// rebalance runs one planner round: running jobs against free devices,
// with the cost model fed each job's live dirty set. Planned moves are
// executed immediately.
func (f *Fleet) rebalance(now vtime.Time) {
	var states []sched.JobState
	for _, j := range f.jobs {
		if j.phase != phaseRunning || j.computeStart > now {
			continue // queued, done, or still in a restore/migration delay
		}
		f.progress(j, now)
		if j.remaining == 0 {
			continue // completes this instant; don't move it
		}
		states = append(states, f.jobState(j, j.dev))
	}
	var slots []sched.Slot
	for _, d := range f.devices {
		if d.free(now) {
			slots = append(slots, sched.Slot{NodeName: d.node.name, Device: d.model, Key: d.key})
		}
	}
	if len(states) == 0 || len(slots) == 0 {
		return
	}
	for _, mv := range f.planner.Plan(states, slots) {
		f.migrate(f.byName[mv.Job], f.byKey[mv.ToSlot], mv.MigrationCost, now)
	}
}

// migrate moves a running job: the source device stays busy for the
// checkpoint drain, the job pays the full predicted Tm before computing
// on the target, and the committed generation resets its dirty set.
func (f *Fleet) migrate(j *job, target *device, tm vtime.Duration, now vtime.Time) {
	f.progress(j, now)
	src := j.dev
	drain := f.cfg.Model.Predict(j.ckptBytes()+imageOverhead, 0)
	src.release(now)
	src.busyUntil = now.Add(drain)

	f.metrics.migrations++
	f.metrics.migratedBytes += j.ckptBytes()
	j.migrations++
	j.hasCkpt = true
	j.dirty = 0
	j.dev = target
	start := now.Add(tm)
	j.computeStart = start
	j.lastProgress = start
	j.finishAt = start.Add(sched.EstimateRuntime(j.remaining, target.model))
	target.job = j
	target.occStart = now
	target.jobsRun++
}

// preempt lets queued jobs evict strictly-lower-priority running jobs
// under device pressure: the victim checkpoints to the store (parking its
// state), rejoins the queue, and the preemptor starts once the drain
// clears.
func (f *Fleet) preempt(now vtime.Time) error {
	if len(f.queue) == 0 {
		return nil
	}
	sortQueue(f.queue)
	waiting := f.queue
	f.queue = nil
	for _, q := range waiting {
		if q.spec.Priority == Low {
			f.queue = append(f.queue, q)
			continue
		}
		victim := f.pickVictim(q, now)
		if victim == nil {
			f.queue = append(f.queue, q)
			continue
		}
		d := victim.dev
		if err := f.evict(victim, now); err != nil {
			return err
		}
		if err := f.place(q, d, now, d.busyUntil); err != nil {
			return err
		}
	}
	return nil
}

// pickVictim chooses the cheapest strictly-lower-priority running job
// whose device fits the preemptor: lowest priority first, then smallest
// checkpoint payload, then name. Jobs still inside a restore/migration
// delay, or close enough to done that eviction costs more than waiting,
// are spared.
func (f *Fleet) pickVictim(q *job, now vtime.Time) *job {
	var best *job
	better := func(a, b *job) bool {
		if a.spec.Priority != b.spec.Priority {
			return a.spec.Priority < b.spec.Priority
		}
		if a.ckptBytes() != b.ckptBytes() {
			return a.ckptBytes() < b.ckptBytes()
		}
		return a.spec.Name < b.spec.Name
	}
	for _, j := range f.jobs {
		if j.phase != phaseRunning || j.spec.Priority >= q.spec.Priority || j.computeStart > now {
			continue
		}
		if !f.fits(q, j.dev) {
			continue
		}
		f.progress(j, now)
		evictCost := f.cfg.Model.Predict(j.ckptBytes()+imageOverhead, 0)
		if j.finishAt.Sub(now) <= evictCost {
			continue // finishing sooner than we could drain it
		}
		if best == nil || better(j, best) {
			best = j
		}
	}
	return best
}

// evict checkpoints a running job off its device and parks it: the device
// drains for the checkpoint write, the job's generation commits (dirty
// set resets), and the job rejoins the queue. Sampled jobs really
// checkpoint into the store and their process is killed.
func (f *Fleet) evict(j *job, now vtime.Time) error {
	f.progress(j, now)
	payload := j.ckptBytes()
	cost := f.cfg.Model.Predict(payload+imageOverhead, 0)
	d := j.dev
	d.release(now)
	d.busyUntil = now.Add(cost)

	j.phase = phaseQueued
	j.dev = nil
	j.queuedAt = now
	j.hasCkpt = true
	j.dirty = 0
	j.evictions++
	f.metrics.evictions++
	f.metrics.evictedBytes += payload
	f.queue = append(f.queue, j)

	if j.real != nil && j.real.c != nil {
		if err := f.rig.evict(j.real, j.spec.Name); err != nil {
			return fmt.Errorf("fleet: real evict of %s: %w", j.spec.Name, err)
		}
	}
	return nil
}

func (f *Fleet) queueDepth() (depth, parked int) {
	for _, j := range f.queue {
		depth++
		if j.hasCkpt {
			parked++
		}
	}
	return depth, parked
}
