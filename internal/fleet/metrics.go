package fleet

import (
	"sort"

	"checl/internal/vtime"
)

// metrics accumulates run statistics inside the event loop.
type metrics struct {
	rejected       []string
	completed      int
	queuePeak      int
	migrations     int
	migratedBytes  int64
	evictions      int
	evictedBytes   int64
	restores       int
	realJobs       int
	realRoundTrips int
	realMismatches int

	latencies []vtime.Duration
	waits     []vtime.Duration
	samples   []QueueSample
	lastDone  vtime.Time
}

func (m *metrics) done(j *job, now vtime.Time) {
	m.completed++
	m.latencies = append(m.latencies, now.Sub(j.spec.Arrival))
	m.waits = append(m.waits, j.waited)
	if now > m.lastDone {
		m.lastDone = now
	}
}

func (m *metrics) sampleQueue(now vtime.Time, depth, parked int) {
	m.samples = append(m.samples, QueueSample{At: now, Depth: depth, Parked: parked})
}

// QueueSample is the admission-queue depth observed at one rebalance tick.
type QueueSample struct {
	At vtime.Time
	// Depth is the number of waiting jobs; Parked of those hold a
	// committed checkpoint (they were evicted and await a slot).
	Depth  int
	Parked int
}

// DeviceReport is one device's utilization over the run.
type DeviceReport struct {
	Key     string
	Device  string
	JobsRun int
	Busy    vtime.Duration
	// Utilization is Busy over the run's makespan.
	Utilization float64
}

// Report is the aggregate outcome of one fleet run.
type Report struct {
	Jobs      int
	Completed int
	Rejected  []string

	Start    vtime.Time
	End      vtime.Time
	Makespan vtime.Duration
	// ThroughputJobsPerSec is completed jobs over the makespan.
	ThroughputJobsPerSec float64

	// Latency is completion time minus arrival time, per completed job.
	MeanLatency vtime.Duration
	P50Latency  vtime.Duration
	P90Latency  vtime.Duration
	P99Latency  vtime.Duration
	MaxLatency  vtime.Duration
	MeanWait    vtime.Duration
	Latencies   []vtime.Duration

	Migrations    int
	MigratedBytes int64
	Evictions     int
	EvictedBytes  int64
	Restores      int
	QueuePeak     int
	Samples       []QueueSample

	// Honesty sampling: jobs that carried a real CheCL application, how
	// many of their evict/restore round-trips went through the real
	// core+store checkpoint path, and how many came back corrupted
	// (must be zero).
	RealJobs       int
	RealRoundTrips int
	RealMismatches int

	Devices []DeviceReport
}

func (f *Fleet) report() Report {
	m := &f.metrics
	r := Report{
		Jobs:           len(f.jobs),
		Completed:      m.completed,
		Rejected:       m.rejected,
		Migrations:     m.migrations,
		MigratedBytes:  m.migratedBytes,
		Evictions:      m.evictions,
		EvictedBytes:   m.evictedBytes,
		Restores:       m.restores,
		QueuePeak:      m.queuePeak,
		Samples:        m.samples,
		RealJobs:       m.realJobs,
		RealRoundTrips: m.realRoundTrips,
		RealMismatches: m.realMismatches,
		Latencies:      m.latencies,
	}
	if len(f.arrivals) > 0 {
		r.Start = f.arrivals[0].spec.Arrival
	}
	r.End = m.lastDone
	if r.End > r.Start {
		r.Makespan = r.End.Sub(r.Start)
	}
	if r.Makespan > 0 {
		r.ThroughputJobsPerSec = float64(r.Completed) / r.Makespan.Seconds()
	}
	if len(m.latencies) > 0 {
		sorted := append([]vtime.Duration(nil), m.latencies...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		r.MeanLatency = meanDuration(m.latencies)
		r.P50Latency = percentile(sorted, 0.50)
		r.P90Latency = percentile(sorted, 0.90)
		r.P99Latency = percentile(sorted, 0.99)
		r.MaxLatency = sorted[len(sorted)-1]
	}
	if len(m.waits) > 0 {
		r.MeanWait = meanDuration(m.waits)
	}
	for _, d := range f.devices {
		dr := DeviceReport{
			Key:     d.key,
			Device:  d.model.Name,
			JobsRun: d.jobsRun,
			Busy:    d.busy,
		}
		if r.Makespan > 0 {
			dr.Utilization = d.busy.Seconds() / r.Makespan.Seconds()
			if dr.Utilization > 1 {
				dr.Utilization = 1
			}
		}
		r.Devices = append(r.Devices, dr)
	}
	return r
}

func meanDuration(ds []vtime.Duration) vtime.Duration {
	var sum vtime.Duration
	for _, d := range ds {
		sum += d
	}
	return sum / vtime.Duration(len(ds))
}

// percentile reads the q-th quantile from an ascending-sorted slice using
// the nearest-rank method.
func percentile(sorted []vtime.Duration, q float64) vtime.Duration {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(q*float64(len(sorted))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// Histogram buckets the completed-job latencies into n logarithmically
// spaced buckets between the minimum and maximum, for rendering.
type HistogramBucket struct {
	UpTo  vtime.Duration
	Count int
}

// LatencyHistogram summarises the latency distribution into at most n
// buckets with doubling bounds starting at the smallest latency.
func (r Report) LatencyHistogram(n int) []HistogramBucket {
	if len(r.Latencies) == 0 || n <= 0 {
		return nil
	}
	sorted := append([]vtime.Duration(nil), r.Latencies...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	lo, hi := sorted[0], sorted[len(sorted)-1]
	if lo <= 0 {
		lo = 1
	}
	var bounds []vtime.Duration
	for b := lo; b < hi && len(bounds) < n-1; b *= 2 {
		bounds = append(bounds, b)
	}
	bounds = append(bounds, hi)
	out := make([]HistogramBucket, len(bounds))
	for i, b := range bounds {
		out[i].UpTo = b
	}
	bi := 0
	for _, l := range sorted {
		for bi < len(bounds)-1 && l > bounds[bi] {
			bi++
		}
		out[bi].Count++
	}
	return out
}
