package fleet

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math"

	"checl/internal/core"
	"checl/internal/hw"
	"checl/internal/ocl"
	"checl/internal/proc"
	"checl/internal/store"
)

// realRig backs the fleet's honesty sampling: a small real cluster
// (internal/proc) with an NFS-shared content-addressed checkpoint store
// (internal/store). Sampled jobs run an actual OpenCL application under
// CheCL (internal/core); their evictions checkpoint through the real
// CheckpointToStore path and kill the source incarnation, and their
// restores come back through RestoreFromStore — on the *other* node —
// with every buffer verified bit-identical against a digest taken at
// eviction time.
type realRig struct {
	cluster *proc.Cluster
	st      store.Backend
	ckfleet *store.Fleet // non-nil when Config.StoreNodes selected a fleet
	inj     *proc.NodeFaultInjector
	seq     int
	spec    bool // sampled jobs checkpoint with SpeculativeDrain
}

func newRealRig(cfg Config) (*realRig, error) {
	cluster := proc.NewCluster("fleet", 2, hw.TableISpec(), func(int) []*ocl.Vendor {
		return []*ocl.Vendor{ocl.NVIDIA()}
	})
	r := &realRig{cluster: cluster, spec: cfg.SpeculativeDrain}
	if cfg.StoreNodes <= 0 {
		r.st = store.New(cluster.NFS, store.Config{})
		return r, nil
	}
	fcfg := store.FleetConfig{} // 4+2 Reed-Solomon defaults
	n := cfg.StoreNodes
	if n < 6 { // need at least k+m homes
		n = 6
	}
	nodes := make([]store.FleetNode, n)
	for i := range nodes {
		name := fmt.Sprintf("ckpt-%02d", i)
		nodes[i] = store.FleetNode{Name: name, FS: proc.NewFS(name, hw.TableISpec().LocalDisk)}
	}
	fl, err := store.NewFleet(nodes, fcfg)
	if err != nil {
		return nil, fmt.Errorf("fleet: checkpoint store fleet: %w", err)
	}
	if cfg.StoreFaults != nil {
		plan := *cfg.StoreFaults
		if plan.MaxDown <= 0 || plan.MaxDown > fl.Config().ParityShards {
			plan.MaxDown = fl.Config().ParityShards
		}
		r.inj = proc.NewNodeFaultInjector(plan)
		fl.AttachFaults(r.inj)
	}
	r.st, r.ckfleet = fl, fl
	return r, nil
}

// realJob is the live state of one sampled job. The CheCL handles (queue
// and buffers) are stable across checkpoint/restore, so they keep working
// against the restored incarnation.
type realJob struct {
	c      *core.CheCL
	parked bool
	q      ocl.CommandQueue
	bufs   [3]ocl.Mem
	size   int64
	digest [sha256.Size]byte
}

const realN = 1 << 10 // floats per buffer: 4 KiB each, cheap but real

// realSrc is the sampled jobs' OpenCL program.
const realSrc = `
__kernel void vadd(__global const float* a, __global const float* b,
                   __global float* c, uint n) {
    size_t i = get_global_id(0);
    if (i < n) c[i] = a[i] + b[i];
}`

// start spawns a process on one of the rig's nodes, attaches CheCL, and
// runs the vadd program so every buffer holds meaningful device state.
func (r *realRig) start(rj *realJob, name string) error {
	node := r.cluster.Nodes[r.seq%len(r.cluster.Nodes)]
	r.seq++
	app := node.Spawn(name)
	c, err := core.Attach(app, core.Options{Incremental: true, SpeculativeDrain: r.spec})
	if err != nil {
		return err
	}
	rj.c = c
	rj.size = 4 * realN

	plats, err := c.GetPlatformIDs()
	if err != nil {
		return err
	}
	devs, err := c.GetDeviceIDs(plats[0], ocl.DeviceTypeAll)
	if err != nil {
		return err
	}
	ctx, err := c.CreateContext(devs[:1])
	if err != nil {
		return err
	}
	if rj.q, err = c.CreateCommandQueue(ctx, devs[0], 0); err != nil {
		return err
	}
	prog, err := c.CreateProgramWithSource(ctx, realSrc)
	if err != nil {
		return err
	}
	if err := c.BuildProgram(prog, ""); err != nil {
		return err
	}
	k, err := c.CreateKernel(prog, "vadd")
	if err != nil {
		return err
	}
	// Distinct per-job contents so digests actually discriminate.
	host := make([]byte, rj.size)
	salt := uint32(len(name)*2654435761 + r.seq)
	for i := 0; i < realN; i++ {
		binary.LittleEndian.PutUint32(host[4*i:], math.Float32bits(float32(i)+float32(salt%97)))
	}
	if rj.bufs[0], err = c.CreateBuffer(ctx, ocl.MemReadOnly|ocl.MemCopyHostPtr, rj.size, host); err != nil {
		return err
	}
	if rj.bufs[1], err = c.CreateBuffer(ctx, ocl.MemReadOnly|ocl.MemCopyHostPtr, rj.size, host); err != nil {
		return err
	}
	if rj.bufs[2], err = c.CreateBuffer(ctx, ocl.MemWriteOnly, rj.size, nil); err != nil {
		return err
	}
	for i, h := range rj.bufs {
		hb := make([]byte, 8)
		binary.LittleEndian.PutUint64(hb, uint64(h))
		if err := c.SetKernelArg(k, i, 8, hb); err != nil {
			return err
		}
	}
	nb := make([]byte, 4)
	binary.LittleEndian.PutUint32(nb, realN)
	if err := c.SetKernelArg(k, 3, 4, nb); err != nil {
		return err
	}
	if _, err := c.EnqueueNDRangeKernel(rj.q, k, 1, [3]int{}, [3]int{realN}, [3]int{64}, nil); err != nil {
		return err
	}
	return c.Finish(rj.q)
}

// readDigest hashes every buffer's device contents.
func (rj *realJob) readDigest() ([sha256.Size]byte, error) {
	h := sha256.New()
	for _, m := range rj.bufs {
		data, _, err := rj.c.EnqueueReadBuffer(rj.q, m, true, 0, rj.size, nil)
		if err != nil {
			return [sha256.Size]byte{}, err
		}
		h.Write(data)
	}
	var sum [sha256.Size]byte
	copy(sum[:], h.Sum(nil))
	return sum, nil
}

// evict checkpoints the job into the store and terminates the source
// incarnation — the real counterpart of parking a job in the queue.
func (r *realRig) evict(rj *realJob, name string) error {
	digest, err := rj.readDigest()
	if err != nil {
		return err
	}
	rj.digest = digest
	if _, err := rj.c.CheckpointToStore(r.st, name); err != nil {
		return err
	}
	rj.c.App().Kill()
	rj.c.Detach()
	rj.c = nil
	rj.parked = true
	return nil
}

// restore restarts the parked job from its latest store generation on the
// rig's next node and reports whether any buffer came back different.
func (r *realRig) restore(rj *realJob, name string) (mismatch bool, err error) {
	if !rj.parked {
		return false, fmt.Errorf("restore of %s: not parked", name)
	}
	node := r.cluster.Nodes[r.seq%len(r.cluster.Nodes)]
	r.seq++
	c, _, err := core.RestoreFromStore(node, r.st, name, core.Options{Incremental: true, SpeculativeDrain: r.spec})
	if err != nil {
		return false, err
	}
	rj.c = c
	rj.parked = false
	digest, err := rj.readDigest()
	if err != nil {
		return false, err
	}
	return digest != rj.digest, nil
}

// finish tears the sampled job down when its simulated counterpart
// completes.
func (r *realRig) finish(rj *realJob) {
	if rj.c == nil {
		return
	}
	rj.c.App().Kill()
	rj.c.Detach()
	rj.c = nil
}
