package fleet

import (
	"reflect"
	"testing"

	"checl/internal/hw"
	"checl/internal/proc"
	"checl/internal/vtime"
)

func testConfig() Config {
	return Config{
		Model:      DefaultCostModel(),
		Migration:  true,
		Preemption: true,
	}
}

func TestBurstyDeterministic(t *testing.T) {
	a := Bursty(TrafficConfig{Seed: 7, Jobs: 200})
	b := Bursty(TrafficConfig{Seed: 7, Jobs: 200})
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different traffic")
	}
	c := Bursty(TrafficConfig{Seed: 8, Jobs: 200})
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical traffic")
	}
	if len(a) != 200 {
		t.Fatalf("generated %d jobs, want 200", len(a))
	}
	prios := map[Priority]int{}
	for i, s := range a {
		if s.Flops <= 0 || s.MemBytes <= 0 || s.Recompile <= 0 {
			t.Fatalf("job %d has degenerate size: %+v", i, s)
		}
		prios[s.Priority]++
	}
	for _, p := range []Priority{Low, Normal, High} {
		if prios[p] == 0 {
			t.Errorf("no %s-priority jobs in 200", p)
		}
	}
}

func TestFleetDrainsAllJobs(t *testing.T) {
	specs := Bursty(TrafficConfig{Seed: 1, Jobs: 120})
	f := New(DefaultNodes(4, 2), testConfig())
	r, err := f.Run(specs)
	if err != nil {
		t.Fatal(err)
	}
	if r.Completed+len(r.Rejected) != r.Jobs || r.Jobs != 120 {
		t.Fatalf("completed %d + rejected %d != jobs %d", r.Completed, len(r.Rejected), r.Jobs)
	}
	if len(r.Rejected) != 0 {
		t.Errorf("default traffic fits Table I devices; rejected %v", r.Rejected)
	}
	if r.Makespan <= 0 || r.ThroughputJobsPerSec <= 0 {
		t.Errorf("degenerate makespan/throughput: %v / %v", r.Makespan, r.ThroughputJobsPerSec)
	}
	if r.P99Latency < r.P50Latency || r.MaxLatency < r.P99Latency {
		t.Errorf("percentiles out of order: p50 %v p99 %v max %v", r.P50Latency, r.P99Latency, r.MaxLatency)
	}
	if len(r.Devices) != 4*2+2 {
		t.Errorf("device reports = %d, want 10", len(r.Devices))
	}
}

func TestFleetDeterminism(t *testing.T) {
	specs := Bursty(TrafficConfig{Seed: 3, Jobs: 150})
	cfg := testConfig()
	a, err := New(DefaultNodes(3, 1), cfg).Run(specs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(DefaultNodes(3, 1), cfg).Run(specs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("two runs of identical traffic diverged:\n%+v\nvs\n%+v", a, b)
	}
}

// TestFleetMigrationBeatsBaseline is the PR's acceptance experiment in
// miniature: with rebalancing on, burst overflow that admission parked on
// slow CPU devices is rescued onto GPUs as they free up, which must
// improve BOTH throughput and tail latency.
func TestFleetMigrationBeatsBaseline(t *testing.T) {
	specs := Bursty(TrafficConfig{Seed: 42, Jobs: 300})
	base := testConfig()
	base.Migration = false
	mig := testConfig()

	rb, err := New(DefaultNodes(4, 2), base).Run(specs)
	if err != nil {
		t.Fatal(err)
	}
	rm, err := New(DefaultNodes(4, 2), mig).Run(specs)
	if err != nil {
		t.Fatal(err)
	}
	if rm.Migrations == 0 {
		t.Fatal("migration arm performed no migrations")
	}
	if rb.Migrations != 0 {
		t.Fatalf("baseline arm migrated %d times", rb.Migrations)
	}
	if rm.ThroughputJobsPerSec <= rb.ThroughputJobsPerSec {
		t.Errorf("migration throughput %.3f <= baseline %.3f jobs/s",
			rm.ThroughputJobsPerSec, rb.ThroughputJobsPerSec)
	}
	if rm.P99Latency >= rb.P99Latency {
		t.Errorf("migration p99 %v >= baseline %v", rm.P99Latency, rb.P99Latency)
	}
}

// TestFleetPreemptionEvictsLowPriority pins the checkpoint-evict-restore
// path on a single-device fleet: a long low-priority job must be parked
// for an arriving high-priority job and finish afterwards.
func TestFleetPreemptionEvictsLowPriority(t *testing.T) {
	nodes := []NodeSpec{{Name: "n0", Devices: []hw.DeviceModel{hw.TeslaC1060()}}}
	specs := []JobSpec{
		{Name: "bg", Arrival: 0, Flops: 5e12, MemBytes: 32 << 20, Recompile: 100 * vtime.Millisecond, Priority: Low},
		{Name: "vip", Arrival: vtime.Time(vtime.Second), Flops: 1e11, MemBytes: 16 << 20, Recompile: 50 * vtime.Millisecond, Priority: High},
	}
	f := New(nodes, testConfig())
	r, err := f.Run(specs)
	if err != nil {
		t.Fatal(err)
	}
	if r.Completed != 2 {
		t.Fatalf("completed %d of 2", r.Completed)
	}
	if r.Evictions != 1 || r.Restores != 1 {
		t.Fatalf("evictions %d restores %d, want 1/1", r.Evictions, r.Restores)
	}
	bg, vip := f.byName["bg"], f.byName["vip"]
	if bg.evictions != 1 {
		t.Errorf("bg evicted %d times, want 1", bg.evictions)
	}
	if vip.doneAt >= bg.doneAt {
		t.Errorf("vip finished at %v, after bg at %v", vip.doneAt, bg.doneAt)
	}
	// Without preemption the vip job waits out the full bg run instead.
	noPre := testConfig()
	noPre.Preemption = false
	r2, err := New(nodes, noPre).Run(specs)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Evictions != 0 {
		t.Fatalf("preemption disabled but %d evictions", r2.Evictions)
	}
	if r.P99Latency <= 0 || r2.MaxLatency <= 0 {
		t.Fatal("degenerate latency stats")
	}
}

// TestFleetRealEvictionBitIdentical samples every job through a real
// CheCL application: the eviction must go through the actual core+store
// checkpoint path (killing the source incarnation) and the restore must
// bring every buffer back bit-identical.
func TestFleetRealEvictionBitIdentical(t *testing.T) {
	nodes := []NodeSpec{{Name: "n0", Devices: []hw.DeviceModel{hw.TeslaC1060()}}}
	specs := []JobSpec{
		{Name: "bg", Arrival: 0, Flops: 5e12, MemBytes: 32 << 20, Recompile: 100 * vtime.Millisecond, Priority: Low},
		{Name: "vip", Arrival: vtime.Time(vtime.Second), Flops: 1e11, MemBytes: 16 << 20, Recompile: 50 * vtime.Millisecond, Priority: High},
	}
	cfg := testConfig()
	cfg.SampleEvery = 1
	f := New(nodes, cfg)
	r, err := f.Run(specs)
	if err != nil {
		t.Fatal(err)
	}
	if r.RealJobs != 2 {
		t.Fatalf("real jobs = %d, want 2", r.RealJobs)
	}
	if r.RealRoundTrips == 0 {
		t.Fatal("no real evict/restore round-trips despite an eviction")
	}
	if r.RealMismatches != 0 {
		t.Fatalf("%d real restores were not bit-identical", r.RealMismatches)
	}
	if r.Evictions == 0 || r.Restores == 0 {
		t.Fatalf("evictions %d restores %d", r.Evictions, r.Restores)
	}
}

// TestFleetSampledSoak drives a bursty run with sampling under load; the
// check.sh gate runs it with -race.
func TestFleetSampledSoak(t *testing.T) {
	specs := Bursty(TrafficConfig{Seed: 11, Jobs: 500})
	cfg := testConfig()
	cfg.SampleEvery = 50
	f := New(DefaultNodes(4, 2), cfg)
	r, err := f.Run(specs)
	if err != nil {
		t.Fatal(err)
	}
	if r.Completed+len(r.Rejected) != 500 {
		t.Fatalf("settled %d of 500", r.Completed+len(r.Rejected))
	}
	if r.RealJobs != 10 {
		t.Errorf("real jobs = %d, want 10", r.RealJobs)
	}
	if r.RealMismatches != 0 {
		t.Fatalf("%d corrupted real restores", r.RealMismatches)
	}
	if r.Migrations == 0 {
		t.Error("soak run performed no migrations")
	}
}

// TestFleetSpeculativeDrain: with SpeculativeDrain on, the rebalancer
// prices migrations with the speculative stall residue instead of the
// full α·M stop-drain term, so it migrates at least as eagerly and the
// fleet performs no worse — and the sampled real jobs, which attach real
// CheCL instances with the speculative drain enabled, still restore
// bit-identical through their evictions.
func TestFleetSpeculativeDrain(t *testing.T) {
	specs := Bursty(TrafficConfig{Seed: 42, Jobs: 300})
	base := testConfig()
	spec := testConfig()
	spec.SpeculativeDrain = true
	spec.SampleEvery = 50

	rb, err := New(DefaultNodes(4, 2), base).Run(specs)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := New(DefaultNodes(4, 2), spec).Run(specs)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Completed+len(rs.Rejected) != 300 {
		t.Fatalf("settled %d of 300", rs.Completed+len(rs.Rejected))
	}
	if rs.Migrations < rb.Migrations {
		t.Errorf("cheaper Tm migrated less: speculative %d < stop-drain %d",
			rs.Migrations, rb.Migrations)
	}
	if rs.ThroughputJobsPerSec < rb.ThroughputJobsPerSec*0.99 {
		t.Errorf("speculative throughput %.3f well below stop-drain %.3f jobs/s",
			rs.ThroughputJobsPerSec, rb.ThroughputJobsPerSec)
	}
	if rs.RealJobs == 0 {
		t.Fatal("no sampled real jobs ran under SpeculativeDrain")
	}
	if rs.RealMismatches != 0 {
		t.Fatalf("%d corrupted real restores with speculative drains", rs.RealMismatches)
	}
}

// TestFleetErasureStoreSoak parks sampled jobs in an erasure-coded
// checkpoint fleet whose store nodes crash, slow down, rot shards and
// tear writes mid-run; every restore must still come back bit-identical.
// The check.sh node-loss gate runs this with -race.
func TestFleetErasureStoreSoak(t *testing.T) {
	specs := Bursty(TrafficConfig{Seed: 23, Jobs: 300})
	cfg := testConfig()
	cfg.SampleEvery = 25
	cfg.StoreNodes = 6
	cfg.StoreFaults = &proc.NodeFaultPlan{Seed: 42, EveryN: 7, ReviveAfter: 40}
	f := New(DefaultNodes(4, 2), cfg)
	r, err := f.Run(specs)
	if err != nil {
		t.Fatal(err)
	}
	if r.Completed+len(r.Rejected) != 300 {
		t.Fatalf("settled %d of 300", r.Completed+len(r.Rejected))
	}
	if r.RealJobs != 12 {
		t.Errorf("real jobs = %d, want 12", r.RealJobs)
	}
	if r.RealMismatches != 0 {
		t.Fatalf("%d corrupted real restores through the erasure fleet", r.RealMismatches)
	}
	if f.rig == nil || f.rig.ckfleet == nil {
		t.Fatal("sampling rig did not build an erasure fleet")
	}
	if f.rig.inj == nil || f.rig.inj.Injected() == 0 {
		t.Error("node-fault injector never fired — soak exercised nothing")
	}
}

func TestFleetRejectsUnplaceable(t *testing.T) {
	nodes := []NodeSpec{{Name: "n0", Devices: []hw.DeviceModel{hw.TeslaC1060()}}}
	specs := []JobSpec{
		{Name: "fits", Arrival: 0, Flops: 1e10, MemBytes: 1 << 30},
		{Name: "huge", Arrival: 0, Flops: 1e10, MemBytes: 64 << 30}, // > 4 GB Tesla
	}
	r, err := New(nodes, testConfig()).Run(specs)
	if err != nil {
		t.Fatal(err)
	}
	if r.Completed != 1 {
		t.Fatalf("completed %d, want 1", r.Completed)
	}
	if len(r.Rejected) != 1 || r.Rejected[0] != "huge" {
		t.Fatalf("rejected %v, want [huge]", r.Rejected)
	}
}

func TestFleetValidation(t *testing.T) {
	nodes := DefaultNodes(1, 0)
	if _, err := New(nodes, testConfig()).Run([]JobSpec{{Name: "a"}, {Name: "a"}}); err == nil {
		t.Error("duplicate job names accepted")
	}
	if _, err := New(nodes, testConfig()).Run([]JobSpec{{}}); err == nil {
		t.Error("unnamed job accepted")
	}
	if _, err := New(nil, testConfig()).Run(nil); err == nil {
		t.Error("empty inventory accepted")
	}
	f := New(nodes, testConfig())
	if _, err := f.Run(nil); err != nil {
		t.Errorf("empty traffic should drain immediately: %v", err)
	}
	if _, err := f.Run(nil); err == nil {
		t.Error("second Run on the same fleet accepted")
	}
}

func TestReportHistogram(t *testing.T) {
	r := Report{Latencies: []vtime.Duration{
		vtime.Second, 2 * vtime.Second, 3 * vtime.Second, 10 * vtime.Second,
	}}
	h := r.LatencyHistogram(8)
	if len(h) == 0 {
		t.Fatal("no buckets")
	}
	total := 0
	for _, b := range h {
		total += b.Count
	}
	if total != 4 {
		t.Fatalf("histogram counted %d of 4 latencies", total)
	}
}
