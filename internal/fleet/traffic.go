package fleet

import (
	"fmt"
	"math"
	"math/rand"

	"checl/internal/vtime"
)

// TrafficConfig parameterises the bursty synthetic workload. Zero values
// take the defaults noted on each field; the same seed always produces
// the same traffic.
type TrafficConfig struct {
	Seed int64
	Jobs int // total jobs; default 100

	// Bursts: jobs arrive in groups of MinBurst..MaxBurst (uniform;
	// defaults 8..48) spread over BurstSpread (default 200ms), with
	// exponentially distributed gaps of mean BurstGap (default 5s)
	// between group starts.
	MinBurst    int
	MaxBurst    int
	BurstSpread vtime.Duration
	BurstGap    vtime.Duration

	// Job sizes: Flops log-uniform in MinFlops..MaxFlops (defaults
	// 2e10..2e12 — roughly 40ms..4s on a Tesla C1060, 1s..85s on the
	// CPU device), MemBytes log-uniform in MinMem..MaxMem (defaults
	// 4MiB..256MiB).
	MinFlops float64
	MaxFlops float64
	MinMem   int64
	MaxMem   int64

	// Recompile time uniform in MinRecompile..MaxRecompile (defaults
	// 50ms..400ms).
	MinRecompile vtime.Duration
	MaxRecompile vtime.Duration

	// Priority mix: HighFrac of jobs are High, LowFrac are Low, the rest
	// Normal. Defaults 0.15 and 0.30.
	HighFrac float64
	LowFrac  float64

	// DirtyFrac is the fraction of a job's working set it dirties per
	// second after a committed checkpoint (JobSpec.DirtyBytesPerSec =
	// DirtyFrac * MemBytes). Default 0.1; negative disables dirty
	// tracking (jobs checkpoint at full working-set price).
	DirtyFrac float64
}

func (c TrafficConfig) withDefaults() TrafficConfig {
	if c.Jobs <= 0 {
		c.Jobs = 100
	}
	if c.MinBurst <= 0 {
		c.MinBurst = 8
	}
	if c.MaxBurst < c.MinBurst {
		c.MaxBurst = c.MinBurst + 40
	}
	if c.BurstSpread <= 0 {
		c.BurstSpread = 200 * vtime.Millisecond
	}
	if c.BurstGap <= 0 {
		c.BurstGap = 5 * vtime.Second
	}
	if c.MinFlops <= 0 {
		c.MinFlops = 2e10
	}
	if c.MaxFlops < c.MinFlops {
		c.MaxFlops = 2e12
	}
	if c.MinMem <= 0 {
		c.MinMem = 4 << 20
	}
	if c.MaxMem < c.MinMem {
		c.MaxMem = 256 << 20
	}
	if c.MinRecompile <= 0 {
		c.MinRecompile = 50 * vtime.Millisecond
	}
	if c.MaxRecompile < c.MinRecompile {
		c.MaxRecompile = 400 * vtime.Millisecond
	}
	if c.HighFrac <= 0 {
		c.HighFrac = 0.15
	}
	if c.LowFrac <= 0 {
		c.LowFrac = 0.30
	}
	if c.DirtyFrac == 0 {
		c.DirtyFrac = 0.1
	}
	return c
}

// Bursty generates the synthetic workload described by the config:
// deterministic for a given seed, jobs named job-0000.. in arrival order.
func Bursty(cfg TrafficConfig) []JobSpec {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	logUniform := func(lo, hi float64) float64 {
		return math.Exp(math.Log(lo) + rng.Float64()*(math.Log(hi)-math.Log(lo)))
	}

	specs := make([]JobSpec, 0, cfg.Jobs)
	burstAt := vtime.Time(0)
	for len(specs) < cfg.Jobs {
		n := cfg.MinBurst + rng.Intn(cfg.MaxBurst-cfg.MinBurst+1)
		for k := 0; k < n && len(specs) < cfg.Jobs; k++ {
			prio := Normal
			switch u := rng.Float64(); {
			case u < cfg.HighFrac:
				prio = High
			case u < cfg.HighFrac+cfg.LowFrac:
				prio = Low
			}
			mem := int64(logUniform(float64(cfg.MinMem), float64(cfg.MaxMem)))
			dirty := 0.0
			if cfg.DirtyFrac > 0 {
				dirty = cfg.DirtyFrac * float64(mem)
			}
			recRange := cfg.MaxRecompile - cfg.MinRecompile
			specs = append(specs, JobSpec{
				Name:             fmt.Sprintf("job-%04d", len(specs)),
				Arrival:          burstAt.Add(vtime.Duration(rng.Int63n(int64(cfg.BurstSpread) + 1))),
				Flops:            logUniform(cfg.MinFlops, cfg.MaxFlops),
				MemBytes:         mem,
				Recompile:        cfg.MinRecompile + vtime.Duration(rng.Int63n(int64(recRange)+1)),
				Priority:         prio,
				DirtyBytesPerSec: dirty,
			})
		}
		burstAt = burstAt.Add(vtime.FromSeconds(rng.ExpFloat64() * cfg.BurstGap.Seconds()))
	}
	return specs
}
