// Package ipc provides the framed gob RPC transport that connects an
// application process to its API proxy. The transport runs over any
// io.ReadWriteCloser: an in-memory net.Pipe for the common same-node case
// or a Unix-domain/TCP socket for out-of-process and remote proxies.
//
// The transport counts bytes on the wire so callers can charge the
// modelled cost of the extra process-to-process copy (the dominant CheCL
// overhead for transfer-bound programs, §IV-A).
package ipc

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"sync"
)

// reqEnvelope precedes every request body on the wire.
type reqEnvelope struct {
	Method string
}

// respEnvelope precedes every response body. A non-empty ErrOp signals a
// remote error; the body is then omitted.
type respEnvelope struct {
	ErrOp     string
	ErrDetail string
	ErrStatus int32
}

// RemoteError is an error propagated from the server side of a call.
type RemoteError struct {
	Op     string
	Detail string
	Status int32
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("remote %s failed (status %d): %s", e.Op, e.Status, e.Detail)
}

// ErrorCoder lets server handlers attach a numeric status that survives
// the wire (ocl.Error implements the shape via a shim in internal/proxy).
type ErrorCoder interface {
	error
	ErrorCode() (op string, status int32, detail string)
}

// countingRWC counts the bytes crossing an io.ReadWriteCloser.
type countingRWC struct {
	rwc io.ReadWriteCloser
	mu  sync.Mutex
	n   int64
}

func (c *countingRWC) Read(p []byte) (int, error) {
	n, err := c.rwc.Read(p)
	c.mu.Lock()
	c.n += int64(n)
	c.mu.Unlock()
	return n, err
}

func (c *countingRWC) Write(p []byte) (int, error) {
	n, err := c.rwc.Write(p)
	c.mu.Lock()
	c.n += int64(n)
	c.mu.Unlock()
	return n, err
}

func (c *countingRWC) Close() error { return c.rwc.Close() }

func (c *countingRWC) bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// Conn is the client side of an RPC connection. One call is outstanding
// at a time; Conn is safe for concurrent use.
type Conn struct {
	mu    sync.Mutex
	count *countingRWC
	enc   *gob.Encoder
	dec   *gob.Decoder
}

// NewConn wraps a byte stream as an RPC client connection.
func NewConn(rwc io.ReadWriteCloser) *Conn {
	c := &countingRWC{rwc: rwc}
	return &Conn{count: c, enc: gob.NewEncoder(c), dec: gob.NewDecoder(c)}
}

// Call invokes method remotely: req is sent, the reply is decoded into
// resp (which must be a pointer). It returns the number of bytes the call
// moved across the transport.
func (c *Conn) Call(method string, req, resp any) (int64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	before := c.count.bytes()
	if err := c.enc.Encode(reqEnvelope{Method: method}); err != nil {
		return 0, fmt.Errorf("ipc: sending %s envelope: %w", method, err)
	}
	if err := c.enc.Encode(req); err != nil {
		return 0, fmt.Errorf("ipc: sending %s request: %w", method, err)
	}
	var env respEnvelope
	if err := c.dec.Decode(&env); err != nil {
		return 0, fmt.Errorf("ipc: receiving %s response envelope: %w", method, err)
	}
	if env.ErrOp != "" {
		return c.count.bytes() - before, &RemoteError{Op: env.ErrOp, Detail: env.ErrDetail, Status: env.ErrStatus}
	}
	if err := c.dec.Decode(resp); err != nil {
		return 0, fmt.Errorf("ipc: receiving %s response: %w", method, err)
	}
	return c.count.bytes() - before, nil
}

// Close tears down the transport.
func (c *Conn) Close() error { return c.count.Close() }

// Server dispatches RPCs to registered handlers.
type Server struct {
	mu       sync.Mutex
	handlers map[string]func(dec *gob.Decoder, enc *gob.Encoder) error
}

// NewServer returns an empty server.
func NewServer() *Server {
	return &Server{handlers: map[string]func(*gob.Decoder, *gob.Encoder) error{}}
}

// Register installs a typed handler for method.
func Register[Req, Resp any](s *Server, method string, fn func(Req) (Resp, error)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.handlers[method] = func(dec *gob.Decoder, enc *gob.Encoder) error {
		var req Req
		if err := dec.Decode(&req); err != nil {
			return fmt.Errorf("ipc: decoding %s request: %w", method, err)
		}
		resp, err := fn(req)
		var env respEnvelope
		if err != nil {
			var ec ErrorCoder
			if errors.As(err, &ec) {
				env.ErrOp, env.ErrStatus, env.ErrDetail = ec.ErrorCode()
			} else {
				env.ErrOp = method
				env.ErrDetail = err.Error()
				env.ErrStatus = -9999
			}
		}
		if err := enc.Encode(env); err != nil {
			return fmt.Errorf("ipc: encoding %s response envelope: %w", method, err)
		}
		if env.ErrOp != "" {
			return nil
		}
		if err := enc.Encode(resp); err != nil {
			return fmt.Errorf("ipc: encoding %s response: %w", method, err)
		}
		return nil
	}
}

// ServeConn processes calls on the stream until EOF or a transport error.
// A clean peer close returns nil.
func (s *Server) ServeConn(rwc io.ReadWriteCloser) error {
	dec := gob.NewDecoder(rwc)
	enc := gob.NewEncoder(rwc)
	for {
		var env reqEnvelope
		if err := dec.Decode(&env); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrClosedPipe) {
				return nil
			}
			return fmt.Errorf("ipc: reading request envelope: %w", err)
		}
		s.mu.Lock()
		h, ok := s.handlers[env.Method]
		s.mu.Unlock()
		if !ok {
			// Consume the request body so the (unbuffered) transport does
			// not deadlock: every request is a struct, and gob decodes any
			// struct into an empty one by ignoring its fields.
			var skel struct{}
			_ = dec.Decode(&skel)
			if err := enc.Encode(respEnvelope{ErrOp: env.Method, ErrDetail: "unknown method", ErrStatus: -9998}); err != nil {
				return err
			}
			continue
		}
		if err := h(dec, enc); err != nil {
			return err
		}
	}
}
