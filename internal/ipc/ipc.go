// Package ipc provides the framed gob RPC transport that connects an
// application process to its API proxy. The transport runs over any
// io.ReadWriteCloser: an in-memory net.Pipe for the common same-node case
// or a Unix-domain/TCP socket for out-of-process and remote proxies.
//
// Every gob message travels inside an explicit length-prefixed frame
// (4-byte big-endian length + payload). The framing hardens the wire
// format: oversized frames are rejected with ErrFrameTooLarge and a
// connection that dies mid-frame surfaces ErrTruncatedFrame instead of a
// hang or a raw io.ErrUnexpectedEOF. Once a connection has failed it is
// latched down and every further call fails fast with an error matching
// ErrConnDown, which is what proxy.Client keys its retry/failover on.
//
// Bulk payloads (buffer transfers, batched enqueue data) can bypass gob
// entirely: a call whose request envelope sets Raw is followed — after the
// gob-encoded request body — by one raw frame carrying the payload bytes
// verbatim, and a response envelope with Raw announces the same on the way
// back. Raw frames use the identical 4-byte-length framing, so the fault
// injector's frame tracker and the byte counter see them like any other
// frame, but they skip the gob reflection/copy cost that dominates the
// hot path.
//
// The transport counts bytes on the wire so callers can charge the
// modelled cost of the extra process-to-process copy (the dominant CheCL
// overhead for transfer-bound programs, §IV-A).
package ipc

import (
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"checl/internal/vtime"
)

// DefaultMaxFrame bounds a single frame (gob body or raw payload).
// The largest legitimate payloads are buffer transfers, well under this.
const DefaultMaxFrame = 256 << 20

// replayWindow bounds the server's request-dedupe cache: responses to the
// most recent replayWindow sequenced (mutating) calls are kept so a client
// that lost a response can safely re-send after reconnecting.
const replayWindow = 512

// replayMaxBytes additionally bounds the raw payload bytes the dedupe
// cache may pin (batched readbacks can be large); the oldest entries are
// evicted first, like the count bound.
const replayMaxBytes = 64 << 20

// Typed transport failures. ErrConnDown is the umbrella the retry layer
// matches with errors.Is; the frame errors describe why the stream is
// unusable.
var (
	// ErrConnDown marks a connection that can no longer carry calls.
	ErrConnDown = errors.New("ipc: connection down")
	// ErrFrameTooLarge rejects a frame above the configured maximum.
	ErrFrameTooLarge = errors.New("ipc: frame exceeds maximum size")
	// ErrTruncatedFrame reports a stream that ended inside a frame.
	ErrTruncatedFrame = errors.New("ipc: truncated frame")
)

// DownError wraps the transport failure that took a connection down.
// errors.Is(err, ErrConnDown) is true for every DownError.
type DownError struct {
	Method string // the call in flight when the connection failed
	Err    error  // the underlying transport error
}

func (e *DownError) Error() string {
	return fmt.Sprintf("ipc: %s: connection down: %v", e.Method, e.Err)
}

func (e *DownError) Unwrap() error { return e.Err }

// Is reports ErrConnDown so callers can match the class, not the cause.
func (e *DownError) Is(target error) bool { return target == ErrConnDown }

// reqEnvelope precedes every request body on the wire. Seq is non-zero
// for mutating calls: the server remembers the response so a retry after
// a lost response is answered from cache instead of re-executed. Raw
// announces that one raw payload frame follows the gob request body.
type reqEnvelope struct {
	Method string
	Seq    uint64
	Raw    bool
}

// respEnvelope precedes every response body. A non-empty ErrOp signals a
// remote error; the body (and any raw frame) is then omitted. Raw
// announces that one raw payload frame follows the gob response body.
type respEnvelope struct {
	ErrOp     string
	ErrDetail string
	ErrStatus int32
	Raw       bool
}

// RemoteError is an error propagated from the server side of a call.
type RemoteError struct {
	Op     string
	Detail string
	Status int32
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("remote %s failed (status %d): %s", e.Op, e.Status, e.Detail)
}

// ErrorCoder lets server handlers attach a numeric status that survives
// the wire (ocl.Error implements the shape directly).
type ErrorCoder interface {
	error
	ErrorCode() (op string, status int32, detail string)
}

// CallFaulter is implemented by fault-injecting transports (see fault.go).
// Conn invokes it at the top of every call so the injector can arm one
// fault per call and align kills with frame boundaries.
type CallFaulter interface {
	CallStarting() error
}

// countingRWC feeds the bytes crossing an io.ReadWriteCloser into the
// shared TransportStats layer (reads as received, writes as sent).
type countingRWC struct {
	rwc   io.ReadWriteCloser
	stats TransportStats
}

func (c *countingRWC) Read(p []byte) (int, error) {
	n, err := c.rwc.Read(p)
	c.stats.AddRecv(int64(n))
	return n, err
}

func (c *countingRWC) Write(p []byte) (int, error) {
	n, err := c.rwc.Write(p)
	c.stats.AddSent(int64(n))
	return n, err
}

func (c *countingRWC) Close() error { return c.rwc.Close() }

func (c *countingRWC) bytes() int64 { return c.stats.Total() }

// frameWriter buffers one gob message and emits it as a single
// length-prefixed frame on flush.
type frameWriter struct {
	w   io.Writer
	max int
	buf []byte
}

func (f *frameWriter) Write(p []byte) (int, error) {
	f.buf = append(f.buf, p...)
	return len(p), nil
}

func (f *frameWriter) flush() error {
	n := len(f.buf)
	f.buf = f.buf[:0]
	if n == 0 {
		return nil
	}
	if n > f.max {
		return fmt.Errorf("%d-byte frame: %w (max %d)", n, ErrFrameTooLarge, f.max)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(n))
	if _, err := f.w.Write(hdr[:]); err != nil {
		return err
	}
	// The payload was reset above, so re-slice the backing array the
	// append grew; buf[:0] keeps the bytes alive until the next Write.
	_, err := f.w.Write(f.buf[:n])
	return err
}

// writeRaw emits p verbatim as one length-prefixed frame, bypassing the
// gob buffer. Unlike flush it always writes a header, even for an empty
// payload, because the peer was promised exactly one frame.
func (f *frameWriter) writeRaw(p []byte) error {
	if len(p) > f.max {
		return fmt.Errorf("%d-byte raw frame: %w (max %d)", len(p), ErrFrameTooLarge, f.max)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(p)))
	if _, err := f.w.Write(hdr[:]); err != nil {
		return err
	}
	if len(p) == 0 {
		return nil
	}
	_, err := f.w.Write(p)
	return err
}

// frameReader presents the payloads of consecutive frames as one byte
// stream, validating each frame header as it goes. A clean peer close at
// a frame boundary is io.EOF; anywhere else it is ErrTruncatedFrame.
type frameReader struct {
	r         io.Reader
	max       int
	remaining int
}

func (f *frameReader) Read(p []byte) (int, error) {
	for f.remaining == 0 {
		var hdr [4]byte
		n, err := io.ReadFull(f.r, hdr[:])
		if err != nil {
			if err == io.ErrUnexpectedEOF || (err == io.EOF && n > 0) {
				return 0, fmt.Errorf("frame header cut short: %w", ErrTruncatedFrame)
			}
			return 0, err
		}
		size := int(binary.BigEndian.Uint32(hdr[:]))
		if size > f.max {
			return 0, fmt.Errorf("%d-byte frame: %w (max %d)", size, ErrFrameTooLarge, f.max)
		}
		f.remaining = size
	}
	if len(p) > f.remaining {
		p = p[:f.remaining]
	}
	n, err := f.r.Read(p)
	f.remaining -= n
	if f.remaining > 0 && (err == io.EOF || err == io.ErrUnexpectedEOF) {
		err = fmt.Errorf("frame body short by %d bytes: %w", f.remaining, ErrTruncatedFrame)
	}
	if n > 0 && err == io.EOF {
		err = nil
	}
	return n, err
}

// ReadByte satisfies io.ByteReader so gob.NewDecoder uses the frameReader
// directly instead of wrapping it in a bufio.Reader. This matters for raw
// frames: a buffered decoder would read ahead past the gob body and
// swallow the raw frame that follows it.
func (f *frameReader) ReadByte() (byte, error) {
	var b [1]byte
	for {
		n, err := f.Read(b[:])
		if n == 1 {
			return b[0], nil
		}
		if err != nil {
			return 0, err
		}
	}
}

// rawHeader reads the 4-byte header of a raw frame. The stream must sit
// exactly on a frame boundary — a gob body only partially consumed would
// mean the protocol got out of step.
func (f *frameReader) rawHeader() (int, error) {
	if f.remaining != 0 {
		return 0, fmt.Errorf("ipc: raw frame read with %d bytes of the previous frame pending", f.remaining)
	}
	var hdr [4]byte
	n, err := io.ReadFull(f.r, hdr[:])
	if err != nil {
		if err == io.ErrUnexpectedEOF || (err == io.EOF && n > 0) {
			return 0, fmt.Errorf("raw frame header cut short: %w", ErrTruncatedFrame)
		}
		return 0, err
	}
	size := int(binary.BigEndian.Uint32(hdr[:]))
	if size > f.max {
		return 0, fmt.Errorf("%d-byte raw frame: %w (max %d)", size, ErrFrameTooLarge, f.max)
	}
	return size, nil
}

// rawBody fills buf with the raw frame's payload; len(buf) must be the
// size rawHeader returned.
func (f *frameReader) rawBody(buf []byte) error {
	if _, err := io.ReadFull(f.r, buf); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return fmt.Errorf("raw frame body cut short: %w", ErrTruncatedFrame)
		}
		return err
	}
	return nil
}

// readRaw reads one raw frame into a fresh buffer.
func (f *frameReader) readRaw() ([]byte, error) {
	return f.readRawInto(nil)
}

// readRawInto reads one raw frame into buf when its capacity suffices,
// allocating a fresh buffer only when it does not. This is the client
// half of the zero-copy read path: a caller that drains the same buffer
// repeatedly (checkpoint staging) reaches a steady state with no
// per-read allocation.
func (f *frameReader) readRawInto(buf []byte) ([]byte, error) {
	size, err := f.rawHeader()
	if err != nil {
		return nil, err
	}
	if cap(buf) >= size {
		buf = buf[:size]
	} else {
		buf = make([]byte, size)
	}
	if err := f.rawBody(buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// Conn is the client side of an RPC connection. One call is outstanding
// at a time; Conn is safe for concurrent use.
type Conn struct {
	mu      sync.Mutex
	count   *countingRWC
	fw      *frameWriter
	fr      *frameReader
	enc     *gob.Encoder
	dec     *gob.Decoder
	faulter CallFaulter
	clock   *vtime.Clock
	timeout vtime.Duration
	downErr error // first fatal transport error; latched
}

// NewConn wraps a byte stream as an RPC client connection. If rwc also
// implements CallFaulter (a fault-injecting transport), the hook runs at
// the top of every call.
func NewConn(rwc io.ReadWriteCloser) *Conn {
	count := &countingRWC{rwc: rwc}
	fw := &frameWriter{w: count, max: DefaultMaxFrame}
	fr := &frameReader{r: count, max: DefaultMaxFrame}
	c := &Conn{
		count: count,
		fw:    fw,
		fr:    fr,
		enc:   gob.NewEncoder(fw),
		dec:   gob.NewDecoder(fr),
	}
	if f, ok := rwc.(CallFaulter); ok {
		c.faulter = f
	}
	return c
}

// SetMaxFrame overrides the outbound frame-size limit (tests use small
// limits to exercise ErrFrameTooLarge cheaply).
func (c *Conn) SetMaxFrame(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.fw.max = n
}

// SetDeadline arms a per-call deadline measured on the virtual clock: a
// call that comes back after more than timeout of virtual time (injected
// delays included) marks the connection down, modelling a proxy that has
// stopped responding in useful time.
func (c *Conn) SetDeadline(clock *vtime.Clock, timeout vtime.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.clock = clock
	c.timeout = timeout
}

// Call invokes method remotely: req is sent, the reply is decoded into
// resp (which must be a pointer). It returns the number of bytes the call
// moved across the transport.
func (c *Conn) Call(method string, req, resp any) (int64, error) {
	_, n, err := c.exchange(method, 0, req, nil, false, resp, nil)
	return n, err
}

// CallSeq is Call with an explicit dedupe sequence number. Seq 0 means
// "idempotent, never deduped"; a non-zero seq must be unique per logical
// call so that re-sending it after a reconnect replays the cached
// response instead of re-executing the handler.
func (c *Conn) CallSeq(method string, seq uint64, req, resp any) (int64, error) {
	_, n, err := c.exchange(method, seq, req, nil, false, resp, nil)
	return n, err
}

// CallRecvRaw is CallSeq that additionally returns the raw payload frame
// the server attached to its response (nil when the response carried
// none).
func (c *Conn) CallRecvRaw(method string, seq uint64, req, resp any) ([]byte, int64, error) {
	return c.exchange(method, seq, req, nil, false, resp, nil)
}

// CallRecvRawInto is CallRecvRaw that receives the response's raw
// payload into buf when its capacity suffices (the returned slice then
// aliases buf); a short or nil buf falls back to a fresh allocation.
func (c *Conn) CallRecvRawInto(method string, seq uint64, req, resp any, buf []byte) ([]byte, int64, error) {
	return c.exchange(method, seq, req, nil, false, resp, buf)
}

// CallRawSeq is CallSeq with a raw payload attached to the request: rawReq
// travels as one verbatim frame after the gob body, skipping gob encoding
// entirely. If the server's handler attached a raw payload to its
// response, it is returned as rawResp (nil when the response carried
// none).
func (c *Conn) CallRawSeq(method string, seq uint64, req any, rawReq []byte, resp any) (rawResp []byte, n int64, err error) {
	return c.exchange(method, seq, req, rawReq, true, resp, nil)
}

// exchange runs one request/response cycle under the connection lock.
// into, when non-nil and large enough, receives the response's raw
// payload in place of a fresh allocation.
func (c *Conn) exchange(method string, seq uint64, req any, rawReq []byte, hasRaw bool, resp any, into []byte) ([]byte, int64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.downErr != nil {
		return nil, 0, &DownError{Method: method, Err: c.downErr}
	}
	var start vtime.Time
	if c.clock != nil {
		start = c.clock.Now()
	}
	if c.faulter != nil {
		if err := c.faulter.CallStarting(); err != nil {
			return nil, 0, c.fail(method, err)
		}
	}
	before := c.count.bytes()
	if err := c.encodeFrame(reqEnvelope{Method: method, Seq: seq, Raw: hasRaw}); err != nil {
		return nil, c.count.bytes() - before, c.fail(method, fmt.Errorf("sending %s envelope: %w", method, err))
	}
	if err := c.encodeFrame(req); err != nil {
		return nil, c.count.bytes() - before, c.fail(method, fmt.Errorf("sending %s request: %w", method, err))
	}
	if hasRaw {
		if err := c.fw.writeRaw(rawReq); err != nil {
			return nil, c.count.bytes() - before, c.fail(method, fmt.Errorf("sending %s payload: %w", method, err))
		}
	}
	var env respEnvelope
	if err := c.dec.Decode(&env); err != nil {
		return nil, c.count.bytes() - before, c.fail(method, fmt.Errorf("receiving %s response envelope: %w", method, err))
	}
	var callErr error
	var rawResp []byte
	if env.ErrOp != "" {
		callErr = &RemoteError{Op: env.ErrOp, Detail: env.ErrDetail, Status: env.ErrStatus}
	} else {
		if err := c.dec.Decode(resp); err != nil {
			return nil, c.count.bytes() - before, c.fail(method, fmt.Errorf("receiving %s response: %w", method, err))
		}
		if env.Raw {
			var err error
			if rawResp, err = c.fr.readRawInto(into); err != nil {
				return nil, c.count.bytes() - before, c.fail(method, fmt.Errorf("receiving %s payload: %w", method, err))
			}
		}
	}
	if c.clock != nil && c.timeout > 0 {
		if elapsed := c.clock.Now().Sub(start); elapsed > c.timeout {
			return nil, c.count.bytes() - before,
				c.fail(method, fmt.Errorf("%s exceeded the %s call deadline (took %s)", method, c.timeout, elapsed))
		}
	}
	return rawResp, c.count.bytes() - before, callErr
}

// encodeFrame writes one gob message as one frame.
func (c *Conn) encodeFrame(v any) error {
	if err := c.enc.Encode(v); err != nil {
		return err
	}
	return c.fw.flush()
}

// fail latches the connection down, closes the transport so any peer
// blocked on it wakes up, and wraps err as a DownError.
func (c *Conn) fail(method string, err error) error {
	if c.downErr == nil {
		c.downErr = err
		_ = c.count.Close()
	}
	return &DownError{Method: method, Err: err}
}

// Stats exposes the connection's byte accounting.
func (c *Conn) Stats() *TransportStats { return &c.count.stats }

// Post on the framed transport reports ok=false: the stream is strictly
// request/response, so callers fall back to a synchronous CallSeq with
// the sequence number they had already assigned.
func (c *Conn) Post(method string, seq uint64, req any) (int64, bool, error) {
	return 0, false, nil
}

// Reap is a no-op on the framed transport: nothing is ever outstanding.
func (c *Conn) Reap() error { return nil }

// PostedPending is always zero on the framed transport.
func (c *Conn) PostedPending() int { return 0 }

// TakeDeferred is always nil on the framed transport: errors surface on
// the call that caused them.
func (c *Conn) TakeDeferred() error { return nil }

// Down reports whether the connection has been latched down.
func (c *Conn) Down() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.downErr != nil
}

// Close tears down the transport. Further calls fail with ErrConnDown.
func (c *Conn) Close() error {
	err := c.count.Close()
	c.mu.Lock()
	if c.downErr == nil {
		c.downErr = errors.New("connection closed")
	}
	c.mu.Unlock()
	return err
}

// cachedResp is one remembered response in the server's dedupe cache.
type cachedResp struct {
	env  respEnvelope
	resp any
	raw  []byte
}

// handlerCtx bundles the per-connection streams a handler works with and
// the request-envelope fields it was dispatched on.
type handlerCtx struct {
	seq    uint64
	rawReq bool // the request envelope announced a raw payload frame
	dec    *gob.Decoder
	enc    *gob.Encoder
	fr     *frameReader
	fw     *frameWriter
}

// Server dispatches RPCs to registered handlers. One Server may serve
// several connections over its lifetime (the proxy keeps its Server when
// the application redials after a transport fault), so the request-dedupe
// cache lives here rather than per connection.
type Server struct {
	mu       sync.Mutex
	handlers map[string]func(*handlerCtx) error
	ring     map[string]RingHandler
	maxFrame int

	seen      map[uint64]cachedResp
	seenFIFO  []uint64
	seenBytes int64
	replayed  int64
	inflight  map[uint64]chan struct{}
}

// NewServer returns an empty server.
func NewServer() *Server {
	return &Server{
		handlers: map[string]func(*handlerCtx) error{},
		ring:     map[string]RingHandler{},
		maxFrame: DefaultMaxFrame,
		seen:     map[uint64]cachedResp{},
		inflight: map[uint64]chan struct{}{},
	}
}

// RingHandler is the ring-dispatch form of a handler: the request arrives
// as the typed value the client submitted (no gob), payload is the
// request's raw payload (nil when none), and into — when non-nil — is the
// client's destination buffer for the response payload, letting a handler
// serve a bulk read zero-copy. The returned raw slice must stay valid
// after the handler returns (it rides the completion queue); it may alias
// into, never reused scratch.
type RingHandler func(req any, payload []byte, into []byte) (resp any, raw []byte, err error)

// RegisterRing installs (or overrides) the ring-dispatch handler for
// method. RegisterRaw already derives a ring handler from the framed one,
// so only handlers that want the zero-copy into path register here.
func (s *Server) RegisterRing(method string, fn RingHandler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ring[method] = fn
}

// ringHandler looks up the ring-dispatch handler for method.
func (s *Server) ringHandler(method string) (RingHandler, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	h, ok := s.ring[method]
	return h, ok
}

// SetMaxFrame overrides the inbound frame-size limit.
func (s *Server) SetMaxFrame(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.maxFrame = n
}

// ReplayedCalls reports how many sequenced requests were answered from
// the dedupe cache instead of re-executed (i.e. retries of calls whose
// response was lost in a transport fault).
func (s *Server) ReplayedCalls() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.replayed
}

// claimSeq resolves how a sequenced request should be served. A completed
// seq replays from the cache (served=true). A seq that is still executing —
// its connection generation died mid-call and the client re-sent it on a
// fresh one — blocks until the original handler finishes, then replays its
// response: a sequenced handler never runs twice, and in particular never
// overlapped with its own stale execution (the runtime behind the handlers
// is not safe for concurrent mutation). A fresh seq is claimed: the caller
// owns the execution and must invoke done with the final response, which
// caches it and wakes any replays waiting on the claim.
func (s *Server) claimSeq(seq uint64) (r cachedResp, served bool, done func(cachedResp)) {
	for {
		s.mu.Lock()
		if r, ok := s.seen[seq]; ok {
			s.replayed++
			s.mu.Unlock()
			return r, true, nil
		}
		ch, busy := s.inflight[seq]
		if !busy {
			ch = make(chan struct{})
			s.inflight[seq] = ch
			s.mu.Unlock()
			return cachedResp{}, false, func(out cachedResp) {
				s.mu.Lock()
				s.storeReplayLocked(seq, out)
				delete(s.inflight, seq)
				s.mu.Unlock()
				close(ch)
			}
		}
		s.mu.Unlock()
		<-ch
	}
}

// storeReplayLocked remembers the response to seq, evicting the oldest
// entries once the window is full by count or by pinned raw-payload bytes.
// Callers hold s.mu.
func (s *Server) storeReplayLocked(seq uint64, r cachedResp) {
	if _, ok := s.seen[seq]; ok {
		return
	}
	s.seen[seq] = r
	s.seenFIFO = append(s.seenFIFO, seq)
	s.seenBytes += int64(len(r.raw))
	for len(s.seenFIFO) > replayWindow || (s.seenBytes > replayMaxBytes && len(s.seenFIFO) > 1) {
		old := s.seenFIFO[0]
		s.seenBytes -= int64(len(s.seen[old].raw))
		delete(s.seen, old)
		s.seenFIFO = s.seenFIFO[1:]
	}
}

// envFor builds the response envelope carrying a handler's error, if any.
func envFor(method string, err error) respEnvelope {
	var env respEnvelope
	if err == nil {
		return env
	}
	var ec ErrorCoder
	if errors.As(err, &ec) {
		env.ErrOp, env.ErrStatus, env.ErrDetail = ec.ErrorCode()
	} else {
		env.ErrOp = method
		env.ErrDetail = err.Error()
		env.ErrStatus = -9999
	}
	return env
}

// Register installs a typed handler for method. If a request arrives with
// a raw payload frame the frame is consumed and discarded.
func Register[Req, Resp any](s *Server, method string, fn func(Req) (Resp, error)) {
	RegisterRaw(s, method, func(req Req, _ []byte) (Resp, []byte, error) {
		resp, err := fn(req)
		return resp, nil, err
	})
}

// RegisterRaw installs a typed handler that additionally receives the
// request's raw payload frame (nil when the request carried none) and may
// attach a raw payload to its response by returning a non-nil rawResp.
// The payload slice is pooled: it is valid only until fn returns, so fn
// must copy anything it keeps.
func RegisterRaw[Req, Resp any](s *Server, method string, fn func(req Req, payload []byte) (Resp, []byte, error)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	// The same registration also serves the ring transport: the request
	// arrives as the typed value itself, so dispatch is a type assertion
	// instead of a gob decode. Handlers that want the zero-copy into path
	// override this via RegisterRing.
	s.ring[method] = func(req any, payload []byte, _ []byte) (any, []byte, error) {
		typed, ok := req.(Req)
		if !ok {
			return nil, nil, fmt.Errorf("ipc: %s: request is %T, want %T", method, req, typed)
		}
		resp, raw, err := fn(typed, payload)
		return resp, raw, err
	}
	s.handlers[method] = func(ctx *handlerCtx) error {
		var req Req
		if err := ctx.dec.Decode(&req); err != nil {
			return fmt.Errorf("ipc: decoding %s request: %w", method, err)
		}
		var payload []byte
		var pooled *[]byte
		if ctx.rawReq {
			size, err := ctx.fr.rawHeader()
			if err != nil {
				return fmt.Errorf("ipc: reading %s payload header: %w", method, err)
			}
			pooled = getRawBuf(size)
			if err := ctx.fr.rawBody(*pooled); err != nil {
				putRawBuf(pooled)
				return fmt.Errorf("ipc: reading %s payload: %w", method, err)
			}
			payload = *pooled
		}
		// The replay claim happens only after the raw frame is consumed,
		// so a replayed request leaves the stream at a frame boundary.
		var done func(cachedResp)
		if ctx.seq != 0 {
			cached, served, claim := s.claimSeq(ctx.seq)
			if served {
				if pooled != nil {
					putRawBuf(pooled)
				}
				return writeResp(method, cached, ctx.enc, ctx.fw)
			}
			done = claim
		}
		resp, rawResp, err := fn(req, payload)
		if pooled != nil {
			putRawBuf(pooled)
		}
		env := envFor(method, err)
		if err != nil {
			rawResp = nil
		}
		env.Raw = rawResp != nil
		out := cachedResp{env: env, resp: resp, raw: rawResp}
		if done != nil {
			done(out)
		}
		return writeResp(method, out, ctx.enc, ctx.fw)
	}
}

// writeResp emits the response envelope and, on success, the body — each
// as its own frame — followed by the raw payload frame if one is attached.
func writeResp(method string, r cachedResp, enc *gob.Encoder, fw *frameWriter) error {
	if err := enc.Encode(r.env); err != nil {
		return fmt.Errorf("ipc: encoding %s response envelope: %w", method, err)
	}
	if err := fw.flush(); err != nil {
		return fmt.Errorf("ipc: flushing %s response envelope: %w", method, err)
	}
	if r.env.ErrOp != "" {
		return nil
	}
	if err := enc.Encode(r.resp); err != nil {
		return fmt.Errorf("ipc: encoding %s response: %w", method, err)
	}
	if err := fw.flush(); err != nil {
		return fmt.Errorf("ipc: flushing %s response: %w", method, err)
	}
	if r.env.Raw {
		if err := fw.writeRaw(r.raw); err != nil {
			return fmt.Errorf("ipc: writing %s payload: %w", method, err)
		}
	}
	return nil
}

// ServeConn processes calls on the stream until EOF or a transport error.
// A clean peer close returns nil. On a transport error (truncated frame,
// oversized frame, mid-call disconnect) the stream is closed before
// returning, so a peer blocked on the synchronous transport wakes up
// instead of hanging.
func (s *Server) ServeConn(rwc io.ReadWriteCloser) error {
	err := s.serveConn(rwc)
	if err != nil {
		_ = rwc.Close()
	}
	return err
}

func (s *Server) serveConn(rwc io.ReadWriteCloser) error {
	s.mu.Lock()
	max := s.maxFrame
	s.mu.Unlock()
	fw := &frameWriter{w: rwc, max: max}
	fr := &frameReader{r: rwc, max: max}
	dec := gob.NewDecoder(fr)
	enc := gob.NewEncoder(fw)
	for {
		var env reqEnvelope
		if err := dec.Decode(&env); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrClosedPipe) || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return fmt.Errorf("ipc: reading request envelope: %w", err)
		}
		s.mu.Lock()
		h, ok := s.handlers[env.Method]
		s.mu.Unlock()
		if !ok {
			// Consume the request body so the (unbuffered) transport does
			// not deadlock: every request is a struct, and gob decodes any
			// struct into an empty one by ignoring its fields.
			var skel struct{}
			_ = dec.Decode(&skel)
			if env.Raw {
				_, _ = fr.readRaw()
			}
			if err := enc.Encode(respEnvelope{ErrOp: env.Method, ErrDetail: "unknown method", ErrStatus: -9998}); err != nil {
				return err
			}
			if err := fw.flush(); err != nil {
				return err
			}
			continue
		}
		if err := h(&handlerCtx{seq: env.Seq, rawReq: env.Raw, dec: dec, enc: enc, fr: fr, fw: fw}); err != nil {
			return err
		}
	}
}
