package ipc

import (
	"bytes"
	"errors"
	"sync/atomic"
	"testing"
)

type rawReqHdr struct{ N int }
type rawRespHdr struct{ N int }

// TestRawRequestRoundTrip: a request payload travels as a verbatim frame
// after the gob body and arrives intact; the response payload comes back
// the same way.
func TestRawRequestRoundTrip(t *testing.T) {
	s := NewServer()
	RegisterRaw(s, "xor", func(r rawReqHdr, payload []byte) (rawRespHdr, []byte, error) {
		if len(payload) != r.N {
			t.Errorf("handler payload = %d bytes, header says %d", len(payload), r.N)
		}
		// The inbound payload is pooled — copy before transforming.
		out := make([]byte, len(payload))
		for i, b := range payload {
			out[i] = b ^ 0xFF
		}
		return rawRespHdr{N: len(out)}, out, nil
	})
	conn := pair(t, s)

	payload := bytes.Repeat([]byte{0x5A}, 1<<20)
	var resp rawRespHdr
	rawResp, n, err := conn.CallRawSeq("xor", 0, rawReqHdr{N: len(payload)}, payload, &resp)
	if err != nil {
		t.Fatal(err)
	}
	if resp.N != len(payload) || len(rawResp) != len(payload) {
		t.Fatalf("sizes: resp.N=%d rawResp=%d", resp.N, len(rawResp))
	}
	for i, b := range rawResp {
		if b != 0x5A^0xFF {
			t.Fatalf("rawResp[%d] = %#x", i, b)
		}
	}
	if n < int64(2*len(payload)) {
		t.Errorf("wire bytes = %d, want at least both payloads (%d)", n, 2*len(payload))
	}
}

// TestRawResponseOnly: a handler may attach a raw response to a plain
// gob request, received via CallRecvRaw.
func TestRawResponseOnly(t *testing.T) {
	s := NewServer()
	RegisterRaw(s, "fill", func(r rawReqHdr, payload []byte) (rawRespHdr, []byte, error) {
		if payload != nil {
			t.Error("gob-only request delivered a payload")
		}
		return rawRespHdr{N: r.N}, bytes.Repeat([]byte{7}, r.N), nil
	})
	conn := pair(t, s)
	var resp rawRespHdr
	raw, _, err := conn.CallRecvRaw("fill", 0, rawReqHdr{N: 4096}, &resp)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) != 4096 || raw[0] != 7 || raw[4095] != 7 {
		t.Fatalf("raw response corrupted: len=%d", len(raw))
	}
}

// TestRawFramingSurvivesErrorsAndMixing: error responses carry no raw
// frame; after an error — and after raw traffic in general — the framed
// stream stays aligned and plain gob calls keep working.
func TestRawFramingSurvivesErrorsAndMixing(t *testing.T) {
	s := NewServer()
	RegisterRaw(s, "reject", func(r rawReqHdr, payload []byte) (rawRespHdr, []byte, error) {
		return rawRespHdr{}, nil, errors.New("no thanks")
	})
	RegisterRaw(s, "echo", func(r rawReqHdr, payload []byte) (rawRespHdr, []byte, error) {
		return rawRespHdr{N: len(payload)}, append([]byte(nil), payload...), nil
	})
	Register(s, "add", func(r addReq) (addResp, error) { return addResp{Sum: r.A + r.B}, nil })
	conn := pair(t, s)

	// A raw-carrying request whose handler fails: the error comes back,
	// no stray raw frame is left in the stream.
	var rh rawRespHdr
	if _, _, err := conn.CallRawSeq("reject", 0, rawReqHdr{N: 3}, []byte{1, 2, 3}, &rh); err == nil {
		t.Fatal("rejected raw call returned nil error")
	}
	// Gob-only call right after the error.
	var ar addResp
	if _, err := conn.Call("add", addReq{A: 20, B: 22}, &ar); err != nil || ar.Sum != 42 {
		t.Fatalf("gob call after raw error: %v, sum=%d", err, ar.Sum)
	}
	// Raw call after gob call.
	raw, _, err := conn.CallRawSeq("echo", 0, rawReqHdr{N: 5}, []byte{9, 8, 7, 6, 5}, &rh)
	if err != nil || !bytes.Equal(raw, []byte{9, 8, 7, 6, 5}) {
		t.Fatalf("raw call after gob call: %v, raw=%v", err, raw)
	}
}

// TestRawReplayDedupe: a sequenced raw call re-sent with the same seq is
// answered from the dedupe cache — the handler does not run twice and
// the cached raw response is returned verbatim (the PR-2 crash-retry
// contract extended to raw frames).
func TestRawReplayDedupe(t *testing.T) {
	var runs atomic.Int64
	s := NewServer()
	RegisterRaw(s, "once", func(r rawReqHdr, payload []byte) (rawRespHdr, []byte, error) {
		runs.Add(1)
		return rawRespHdr{N: len(payload)}, append([]byte(nil), payload...), nil
	})
	conn := pair(t, s)

	payload := []byte("exactly-once")
	var resp rawRespHdr
	first, _, err := conn.CallRawSeq("once", 41, rawReqHdr{N: len(payload)}, payload, &resp)
	if err != nil {
		t.Fatal(err)
	}
	second, _, err := conn.CallRawSeq("once", 41, rawReqHdr{N: len(payload)}, payload, &resp)
	if err != nil {
		t.Fatal(err)
	}
	if runs.Load() != 1 {
		t.Errorf("handler ran %d times for one seq, want 1", runs.Load())
	}
	if !bytes.Equal(first, second) || !bytes.Equal(second, payload) {
		t.Errorf("replayed raw response diverged: %q vs %q", first, second)
	}
}
