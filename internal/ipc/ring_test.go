package ipc

import (
	"bytes"
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"checl/internal/vtime"
)

// ringPair builds a served Ring on s, torn down with the test.
func ringPair(t *testing.T, s *Server, cfg RingConfig) *Ring {
	t.Helper()
	r := NewRing(s, cfg)
	done := make(chan struct{})
	go func() { defer close(done); r.Serve() }()
	t.Cleanup(func() {
		r.Close()
		<-done
	})
	return r
}

func TestSPSCOrderedUnderConcurrency(t *testing.T) {
	q := newSPSC[int](8) // tiny: force wraparound and full-queue parking
	const total = 50_000
	errs := make(chan error, 1)
	go func() {
		for i := 0; i < total; i++ {
			if err := q.push(i); err != nil {
				errs <- err
				return
			}
		}
		errs <- nil
	}()
	for i := 0; i < total; i++ {
		v, err := q.pop(ringServerSpin)
		if err != nil {
			t.Fatalf("pop %d: %v", i, err)
		}
		if v != i {
			t.Fatalf("pop %d = %d, want %d (FIFO violated)", i, v, i)
		}
	}
	if err := <-errs; err != nil {
		t.Fatalf("push: %v", err)
	}
	q.close()
	if _, err := q.pop(1); !errors.Is(err, errRingClosed) {
		t.Fatalf("pop after close = %v, want errRingClosed", err)
	}
	if err := q.push(1); !errors.Is(err, errRingClosed) {
		t.Fatalf("push after close = %v, want errRingClosed", err)
	}
}

func TestRingCallRoundtrip(t *testing.T) {
	s := NewServer()
	Register(s, "add", func(r addReq) (addResp, error) {
		return addResp{Sum: r.A + r.B}, nil
	})
	ring := ringPair(t, s, RingConfig{})
	var resp addResp
	n, err := ring.Call("add", addReq{A: 2, B: 40}, &resp)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Sum != 42 {
		t.Errorf("sum = %d", resp.Sum)
	}
	if n != 2*ringSlotBytes {
		t.Errorf("modelled bytes = %d, want %d (two slots)", n, 2*ringSlotBytes)
	}
	if got := ring.Stats().Total(); got != n {
		t.Errorf("stats total = %d, want %d", got, n)
	}
}

func TestRingErrorPropagation(t *testing.T) {
	s := NewServer()
	Register(s, "fail", func(r addReq) (addResp, error) {
		return addResp{}, &codedError{op: "clFail", detail: "nope"}
	})
	ring := ringPair(t, s, RingConfig{})
	var resp addResp
	_, err := ring.Call("fail", addReq{}, &resp)
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want RemoteError", err)
	}
	if re.Op != "clFail" || re.Status != -42 || re.Detail != "nope" {
		t.Errorf("remote error = %+v", re)
	}
	// The ring survives handler errors, like the framed stream.
	Register(s, "ok", func(r addReq) (addResp, error) { return addResp{Sum: 1}, nil })
	if _, err := ring.Call("ok", addReq{}, &resp); err != nil || resp.Sum != 1 {
		t.Errorf("post-error call: %v, %d", err, resp.Sum)
	}
	if _, err := ring.Call("nosuch", addReq{}, &resp); err == nil {
		t.Error("unknown method should error")
	}
}

func TestRingRawPayloadAndInto(t *testing.T) {
	s := NewServer()
	RegisterRaw(s, "double", func(r addReq, payload []byte) (addResp, []byte, error) {
		out := make([]byte, len(payload))
		for i, b := range payload {
			out[i] = b * 2
		}
		return addResp{Sum: len(payload)}, out, nil
	})
	// A ring-aware handler writes into the caller's buffer: zero copy.
	s.RegisterRing("fill", func(req any, _ []byte, into []byte) (any, []byte, error) {
		r := req.(addReq)
		buf := into
		if cap(buf) < r.A {
			buf = make([]byte, r.A)
		}
		buf = buf[:r.A]
		for i := range buf {
			buf[i] = byte(r.B)
		}
		return addResp{Sum: r.A}, buf, nil
	})
	ring := ringPair(t, s, RingConfig{})

	var resp addResp
	payload := []byte{1, 2, 3, 4}
	raw, n, err := ring.CallRawSeq("double", 7, addReq{}, payload, &resp)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, []byte{2, 4, 6, 8}) || resp.Sum != 4 {
		t.Errorf("raw = %v sum = %d", raw, resp.Sum)
	}
	if n != 2*ringSlotBytes+int64(len(payload))+int64(len(raw)) {
		t.Errorf("modelled bytes = %d", n)
	}

	dst := make([]byte, 0, 1024)
	raw, _, err = ring.CallRecvRawInto("fill", 0, addReq{A: 512, B: 9}, &resp, dst)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) != 512 || raw[0] != 9 || raw[511] != 9 {
		t.Fatalf("into result wrong: len=%d", len(raw))
	}
	if &raw[0] != &dst[:1][0] {
		t.Error("into path did not land zero-copy in the caller's buffer")
	}
}

func TestRingPostedFIFOAndDeferredError(t *testing.T) {
	s := NewServer()
	var order []int
	var mu sync.Mutex
	Register(s, "mark", func(r addReq) (addResp, error) {
		mu.Lock()
		order = append(order, r.A)
		mu.Unlock()
		if r.B != 0 {
			return addResp{}, &codedError{op: "clMark", detail: "deferred boom"}
		}
		return addResp{}, nil
	})
	ring := ringPair(t, s, RingConfig{})

	for i := 1; i <= 3; i++ {
		if _, ok, err := ring.Post("mark", uint64(i), addReq{A: i}); !ok || err != nil {
			t.Fatalf("post %d: ok=%v err=%v", i, ok, err)
		}
	}
	// The next synchronous call drains the three posted completions first.
	var resp addResp
	if _, err := ring.Call("mark", addReq{A: 4}, &resp); err != nil {
		t.Fatal(err)
	}
	if ring.PostedPending() != 0 {
		t.Errorf("PostedPending = %d after sync call", ring.PostedPending())
	}
	mu.Lock()
	got := append([]int(nil), order...)
	mu.Unlock()
	for i, want := range []int{1, 2, 3, 4} {
		if got[i] != want {
			t.Fatalf("execution order %v, want FIFO", got)
		}
	}

	// A posted call's remote error is deferred, not lost.
	if _, ok, err := ring.Post("mark", 9, addReq{A: 5, B: 1}); !ok || err != nil {
		t.Fatalf("post: ok=%v err=%v", ok, err)
	}
	if err := ring.Reap(); err != nil {
		t.Fatalf("reap: %v", err)
	}
	var de *DeferredError
	if err := ring.TakeDeferred(); !errors.As(err, &de) || de.Method != "mark" {
		t.Fatalf("TakeDeferred = %v, want DeferredError{mark}", err)
	}
	if err := ring.TakeDeferred(); err != nil {
		t.Errorf("second TakeDeferred = %v, want nil", err)
	}
}

func TestRingReplayDedupe(t *testing.T) {
	s := NewServer()
	var execs atomic.Int64
	Register(s, "bump", func(r addReq) (addResp, error) {
		execs.Add(1)
		return addResp{Sum: r.A}, nil
	})
	ring := ringPair(t, s, RingConfig{})
	var resp addResp
	if _, err := ring.CallSeq("bump", 41, addReq{A: 7}, &resp); err != nil {
		t.Fatal(err)
	}
	// A second ring generation on the same server (the redial-after-fault
	// shape) re-sends the same sequence number: answered from cache.
	ring2 := ringPair(t, s, RingConfig{})
	resp = addResp{}
	if _, err := ring2.CallSeq("bump", 41, addReq{A: 7}, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Sum != 7 {
		t.Errorf("replayed resp = %+v", resp)
	}
	if got := execs.Load(); got != 1 {
		t.Errorf("handler executed %d times, want 1 (dedupe)", got)
	}
	if s.ReplayedCalls() != 1 {
		t.Errorf("ReplayedCalls = %d", s.ReplayedCalls())
	}
}

// TestRingFaultMatrix drives every fault kind through the ring and checks
// the protocol position it models: whether the handler executed, and that
// the ring latches down with an ErrConnDown-class error.
func TestRingFaultMatrix(t *testing.T) {
	cases := []struct {
		kind     FaultKind
		executed bool
	}{
		{FaultKillBeforeRequest, false},
		{FaultKillMidRequest, false},
		{FaultTornSlotPublish, false},
		{FaultStalledConsumer, false},
		{FaultKillBeforeResponse, true},
		{FaultKillBetween, true},
		{FaultKillMidResponse, true},
		{FaultArenaPoison, true},
		{FaultCrashServer, false},
	}
	for _, tc := range cases {
		t.Run(tc.kind.String(), func(t *testing.T) {
			s := NewServer()
			var execs atomic.Int64
			Register(s, "op", func(r addReq) (addResp, error) {
				execs.Add(1)
				return addResp{}, nil
			})
			inj := NewFaultInjector(FaultPlan{Seed: 1, EveryN: 1, Kinds: []FaultKind{tc.kind}})
			var crashed atomic.Bool
			inj.SetCrashServer(func() { crashed.Store(true) })
			ring := ringPair(t, s, RingConfig{Fault: inj})
			var resp addResp
			_, err := ring.CallSeq("op", 1, addReq{}, &resp)
			if !errors.Is(err, ErrConnDown) {
				t.Fatalf("err = %v, want ErrConnDown class", err)
			}
			if !ring.Down() {
				t.Error("ring not latched down")
			}
			if got := execs.Load() == 1; got != tc.executed {
				t.Errorf("executed = %v, want %v", got, tc.executed)
			}
			if tc.kind == FaultCrashServer && !crashed.Load() {
				t.Error("crash hook did not fire")
			}
			// Every further call fails fast.
			if _, err := ring.Call("op", addReq{}, &resp); !errors.Is(err, ErrConnDown) {
				t.Errorf("call on downed ring = %v", err)
			}
		})
	}
}

func TestRingFaultKindsInertOnFramed(t *testing.T) {
	// A plan mixing ring-only kinds must leave framed calls unfaulted.
	s := NewServer()
	Register(s, "ok", func(r addReq) (addResp, error) { return addResp{Sum: 1}, nil })
	inj := NewFaultInjector(FaultPlan{Seed: 3, EveryN: 1, Kinds: RingFaultKinds})
	conn := faultPair(t, s, inj)
	var resp addResp
	for i := 0; i < 4; i++ {
		if _, err := conn.Call("ok", addReq{}, &resp); err != nil || resp.Sum != 1 {
			t.Fatalf("call %d under ring-only kinds: %v", i, err)
		}
	}
	if inj.Injected() == 0 {
		t.Error("injector should still count the (inert) faults")
	}
}

func TestRingDeadlineExceeded(t *testing.T) {
	s := NewServer()
	clock := vtime.NewClock()
	Register(s, "slow", func(r addReq) (addResp, error) {
		clock.Advance(10 * vtime.Millisecond)
		return addResp{}, nil
	})
	ring := ringPair(t, s, RingConfig{})
	ring.SetDeadline(clock, vtime.Millisecond)
	var resp addResp
	if _, err := ring.Call("slow", addReq{}, &resp); !errors.Is(err, ErrConnDown) {
		t.Fatalf("deadline err = %v, want ErrConnDown class", err)
	}
}

func TestRingMaxFrame(t *testing.T) {
	s := NewServer()
	RegisterRaw(s, "echo", func(r addReq, payload []byte) (addResp, []byte, error) {
		return addResp{}, append([]byte(nil), payload...), nil
	})
	ring := ringPair(t, s, RingConfig{})
	ring.SetMaxFrame(64)
	var resp addResp
	_, _, err := ring.CallRawSeq("echo", 1, addReq{}, make([]byte, 1024), &resp)
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized payload err = %v, want ErrFrameTooLarge", err)
	}
	if !ring.Down() {
		t.Error("frame violation must latch the ring down, like the framed stream")
	}
}

// TestRingConcurrentSubmitComplete is the -race gate: many goroutines
// hammering synchronous calls and posts through one ring.
func TestRingConcurrentSubmitComplete(t *testing.T) {
	s := NewServer()
	var sum atomic.Int64
	Register(s, "acc", func(r addReq) (addResp, error) {
		sum.Add(int64(r.A))
		return addResp{Sum: r.A}, nil
	})
	ring := ringPair(t, s, RingConfig{})
	var wg sync.WaitGroup
	const workers, per = 8, 200
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if i%4 == 0 {
					if _, ok, err := ring.Post("acc", 0, addReq{A: 1}); !ok || err != nil {
						errs[w] = err
						return
					}
					continue
				}
				var resp addResp
				if _, err := ring.Call("acc", addReq{A: 1}, &resp); err != nil {
					errs[w] = err
					return
				}
			}
			errs[w] = ring.Reap()
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
	if err := ring.Reap(); err != nil {
		t.Fatal(err)
	}
	if got := sum.Load(); got != workers*per {
		t.Errorf("executed sum = %d, want %d", got, workers*per)
	}
}
