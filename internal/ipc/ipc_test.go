package ipc

import (
	"errors"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

type addReq struct{ A, B int }
type addResp struct{ Sum int }

type codedError struct{ op, detail string }

func (e *codedError) Error() string { return e.op + ": " + e.detail }
func (e *codedError) ErrorCode() (string, int32, string) {
	return e.op, -42, e.detail
}

func pair(t *testing.T, s *Server) *Conn {
	t.Helper()
	a, b := net.Pipe()
	go s.ServeConn(b)
	conn := NewConn(a)
	t.Cleanup(func() { conn.Close() })
	return conn
}

func TestCallRoundtrip(t *testing.T) {
	s := NewServer()
	Register(s, "add", func(r addReq) (addResp, error) {
		return addResp{Sum: r.A + r.B}, nil
	})
	conn := pair(t, s)
	var resp addResp
	n, err := conn.Call("add", addReq{A: 2, B: 40}, &resp)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Sum != 42 {
		t.Errorf("sum = %d", resp.Sum)
	}
	if n <= 0 {
		t.Error("wire bytes not counted")
	}
}

func TestErrorPropagation(t *testing.T) {
	s := NewServer()
	Register(s, "fail", func(r addReq) (addResp, error) {
		return addResp{}, &codedError{op: "clFail", detail: "nope"}
	})
	Register(s, "plain", func(r addReq) (addResp, error) {
		return addResp{}, errors.New("vanilla")
	})
	conn := pair(t, s)

	var resp addResp
	_, err := conn.Call("fail", addReq{}, &resp)
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want RemoteError", err)
	}
	if re.Op != "clFail" || re.Status != -42 || re.Detail != "nope" {
		t.Errorf("remote error = %+v", re)
	}

	_, err = conn.Call("plain", addReq{}, &resp)
	if !errors.As(err, &re) || !strings.Contains(re.Detail, "vanilla") {
		t.Errorf("plain error = %v", err)
	}
	// The connection survives errors: a normal call still works.
	Register(s, "ok", func(r addReq) (addResp, error) { return addResp{Sum: 1}, nil })
	if _, err := conn.Call("ok", addReq{}, &resp); err != nil || resp.Sum != 1 {
		t.Errorf("post-error call: %v, %d", err, resp.Sum)
	}
}

func TestUnknownMethodTerminates(t *testing.T) {
	s := NewServer()
	conn := pair(t, s)
	var resp addResp
	_, err := conn.Call("nosuch", addReq{}, &resp)
	if err == nil {
		t.Fatal("unknown method should error")
	}
}

func TestConcurrentCalls(t *testing.T) {
	s := NewServer()
	Register(s, "echo", func(r addReq) (addResp, error) {
		return addResp{Sum: r.A}, nil
	})
	conn := pair(t, s)
	var wg sync.WaitGroup
	errs := make([]error, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var resp addResp
			_, err := conn.Call("echo", addReq{A: i}, &resp)
			if err == nil && resp.Sum != i {
				err = errors.New("wrong echo")
			}
			errs[i] = err
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("call %d: %v", i, err)
		}
	}
}

func TestCleanCloseEndsServe(t *testing.T) {
	s := NewServer()
	a, b := net.Pipe()
	done := make(chan error, 1)
	go func() { done <- s.ServeConn(b) }()
	conn := NewConn(a)
	conn.Close()
	if err := <-done; err != nil {
		t.Errorf("ServeConn after clean close = %v, want nil", err)
	}
}

func TestBytesScaleWithPayload(t *testing.T) {
	type blobReq struct{ Data []byte }
	type blobResp struct{ N int }
	s := NewServer()
	Register(s, "blob", func(r blobReq) (blobResp, error) { return blobResp{N: len(r.Data)}, nil })
	conn := pair(t, s)
	var r blobResp
	small, err := conn.Call("blob", blobReq{Data: make([]byte, 100)}, &r)
	if err != nil {
		t.Fatal(err)
	}
	big, err := conn.Call("blob", blobReq{Data: make([]byte, 100_000)}, &r)
	if err != nil {
		t.Fatal(err)
	}
	if big < small+99_000 {
		t.Errorf("payload not reflected in wire bytes: small=%d big=%d", small, big)
	}
}

// TestReplayWaitsForInflightCall pins the dedupe contract for the window a
// transport fault opens: the original connection dies while its handler is
// still executing, the client re-sends the same seq on a fresh connection,
// and the replay must wait for the stale execution and serve its cached
// response — never run the handler a second time (the runtime behind real
// handlers is not safe for concurrent mutation).
func TestReplayWaitsForInflightCall(t *testing.T) {
	s := NewServer()
	var calls int32
	gate := make(chan struct{})
	entered := make(chan struct{}, 2)
	Register(s, "slow", func(r addReq) (addResp, error) {
		atomic.AddInt32(&calls, 1)
		entered <- struct{}{}
		<-gate
		return addResp{Sum: r.A + r.B}, nil
	})

	// Original call on conn1; its handler parks inside the server.
	conn1 := pair(t, s)
	origErr := make(chan error, 1)
	go func() {
		var resp addResp
		_, err := conn1.CallSeq("slow", 7, addReq{A: 2, B: 40}, &resp)
		origErr <- err
	}()
	<-entered

	// The transport fault: the first connection dies mid-call while the
	// handler is still running. The client replays seq 7 on a fresh
	// connection generation, like Conn redial does.
	conn2 := pair(t, s)
	replayed := make(chan addResp, 1)
	go func() {
		var resp addResp
		if _, err := conn2.CallSeq("slow", 7, addReq{A: 2, B: 40}, &resp); err != nil {
			t.Errorf("replayed call: %v", err)
		}
		replayed <- resp
	}()

	// The replay must block on the in-flight claim, not re-enter the
	// handler.
	select {
	case <-entered:
		t.Fatal("replayed seq re-entered the handler while the original was in flight")
	case <-time.After(50 * time.Millisecond):
	}

	close(gate) // stale execution completes; the replay serves its response
	resp := <-replayed
	if resp.Sum != 42 {
		t.Errorf("replayed sum = %d, want 42", resp.Sum)
	}
	if got := atomic.LoadInt32(&calls); got != 1 {
		t.Errorf("handler ran %d times, want 1", got)
	}
	if got := s.ReplayedCalls(); got != 1 {
		t.Errorf("ReplayedCalls = %d, want 1", got)
	}
	conn1.Close()
	<-origErr
}
