package ipc

import (
	"fmt"

	"checl/internal/vtime"
)

// Transport is the call surface proxy.Client drives, extracted from Conn
// so the framed stream and the shared-memory ring are interchangeable
// backends. Both latch down on a transport fault (every later call fails
// fast with an error matching ErrConnDown), both honour sequence-number
// replay dedupe against the same Server cache, and both report their byte
// traffic through the shared TransportStats layer.
//
// The Post/Reap/PostedPending/TakeDeferred quartet is the asynchronous
// surface: Post submits a fire-and-forget call whose completion is
// consumed later (by the next synchronous call in FIFO order, or by an
// explicit Reap at a sync point). A strictly synchronous backend reports
// ok=false from Post and the caller falls back to a blocking call.
type Transport interface {
	// Call invokes method with resp decoded/copied into resp (a pointer),
	// returning the bytes the call moved across the transport.
	Call(method string, req, resp any) (int64, error)
	// CallSeq is Call with an explicit dedupe sequence number (0 = never
	// deduped; non-zero must be unique per logical call).
	CallSeq(method string, seq uint64, req, resp any) (int64, error)
	// CallRecvRaw additionally returns the raw payload the server attached
	// to its response (nil when none).
	CallRecvRaw(method string, seq uint64, req, resp any) ([]byte, int64, error)
	// CallRecvRawInto receives the response payload into buf when its
	// capacity suffices (the returned slice then aliases buf).
	CallRecvRawInto(method string, seq uint64, req, resp any, buf []byte) ([]byte, int64, error)
	// CallRawSeq attaches rawReq verbatim to the request, skipping any
	// encoding, and returns the response's raw payload, if any.
	CallRawSeq(method string, seq uint64, req any, rawReq []byte, resp any) ([]byte, int64, error)

	// Post submits method fire-and-forget: it returns as soon as the
	// request is published, without waiting for the server. ok=false means
	// the backend is synchronous and the caller must issue a blocking call
	// with the same seq instead. The returned n is the bytes published.
	Post(method string, seq uint64, req any) (n int64, ok bool, err error)
	// Reap blocks until every posted call has completed (or the transport
	// is down). Remote errors from posted calls are recorded, not
	// returned — collect them with TakeDeferred.
	Reap() error
	// PostedPending reports how many posted calls have not yet completed.
	// Completions arrive in FIFO posting order, so a caller tracking its
	// posted calls can prune the completed prefix from this count alone.
	PostedPending() int
	// TakeDeferred returns (and clears) the first remote error a posted
	// call came back with, wrapped as a *DeferredError.
	TakeDeferred() error

	// SetDeadline arms a per-call deadline on the virtual clock.
	SetDeadline(clock *vtime.Clock, timeout vtime.Duration)
	// SetMaxFrame bounds a single payload (request or response).
	SetMaxFrame(n int)
	// Stats exposes the transport's byte accounting.
	Stats() *TransportStats
	// Down reports whether the transport has been latched down.
	Down() bool
	// Close tears the transport down; further calls fail with ErrConnDown.
	Close() error
}

var (
	_ Transport = (*Conn)(nil)
	_ Transport = (*Ring)(nil)
)

// DeferredError carries the remote failure of a posted (fire-and-forget)
// call to the synchronisation point where it is finally observed.
type DeferredError struct {
	Method string // the posted call that failed
	Err    error  // the remote error it came back with
}

func (e *DeferredError) Error() string {
	return fmt.Sprintf("ipc: posted %s failed: %v", e.Method, e.Err)
}

func (e *DeferredError) Unwrap() error { return e.Err }
