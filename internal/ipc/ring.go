// Shared-memory ring transport. Where the framed transport serialises
// every call through gob and a byte stream, the ring models the
// io_uring/NVMe-style pair of single-producer/single-consumer queues an
// application and its proxy would share in mapped memory: the client
// publishes fixed-size submission slots, the proxy's service loop polls
// them doorbell-free, and completions come back on a second ring. Typed
// request/response values cross by reference (same address space in this
// model), so the gob encode/decode and copy-in/copy-out that dominate the
// framed hot path disappear; bulk reads land zero-copy in the caller's
// buffer via the handler `into` path. Fire-and-forget submission (Post)
// completes enqueue-class calls with zero round trips until the next sync
// point, whose synchronous call drains the earlier completions in FIFO
// order.
//
// Fault injection is cooperative rather than byte-level: the client picks
// the call's fault from the same seeded FaultInjector stream the framed
// transport uses, and the kind rides inside the submission slot so the
// service loop can tear down at the matching protocol position (see the
// fault matrix in serveOne). Replay dedupe runs against the same Server
// cache, so a reconnect-and-retry after a kill behaves identically on
// both backends.
package ipc

import (
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"

	"checl/internal/vtime"
)

// ringSlotBytes is the modelled size of one submission or completion slot
// (a cacheline for the descriptor plus an inline header). The ring's byte
// accounting charges one slot per publish or completion plus the raw
// payload it points at; gob envelopes do not exist here.
const ringSlotBytes = 64

// DefaultRingDepth is the default slot count per queue. It must exceed
// the largest burst of posted (unreaped) submissions a client is allowed
// to build up — proxy.Client settles well before this fills.
const DefaultRingDepth = 256

// Spin budgets before a waiter parks. The client burns longer (it is the
// latency-sensitive side); the service loop yields sooner so an idle
// proxy does not monopolise a CPU.
const (
	ringClientSpin = 512
	ringServerSpin = 256
)

// errRingClosed wakes waiters on a torn-down queue.
var errRingClosed = errors.New("ipc: ring closed")

// spsc is a lock-free single-producer/single-consumer bounded queue.
// head/tail are free-running uint64 counters (masked into the power-of-2
// buffer), so full/empty never alias. Waiters spin first, then park on a
// condvar; the publishing side only touches the mutex when someone is
// actually asleep.
type spsc[T any] struct {
	buf  []T
	mask uint64
	head atomic.Uint64 // next slot the consumer pops
	tail atomic.Uint64 // next slot the producer fills

	mu       sync.Mutex
	cond     *sync.Cond
	sleepers int
	down     atomic.Bool
}

func newSPSC[T any](depth int) *spsc[T] {
	if depth < 2 {
		depth = 2
	}
	// Round up to a power of two so masking replaces modulo.
	n := 1
	for n < depth {
		n <<= 1
	}
	q := &spsc[T]{buf: make([]T, n), mask: uint64(n - 1)}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// push publishes v, blocking while the queue is full. A closed queue
// fails immediately — in-flight slots die with the ring, like bytes in a
// killed stream.
func (q *spsc[T]) push(v T) error {
	spins := 0
	for {
		if q.down.Load() {
			return errRingClosed
		}
		tail := q.tail.Load()
		if tail-q.head.Load() < uint64(len(q.buf)) {
			q.buf[tail&q.mask] = v
			q.tail.Store(tail + 1)
			q.wake()
			return nil
		}
		if spins++; spins < ringClientSpin {
			runtime.Gosched()
			continue
		}
		q.sleep(func() bool {
			return q.down.Load() || q.tail.Load()-q.head.Load() < uint64(len(q.buf))
		})
		spins = 0
	}
}

// pop consumes the next slot, blocking while the queue is empty.
func (q *spsc[T]) pop(spinBudget int) (T, error) {
	var zero T
	spins := 0
	for {
		if q.down.Load() {
			return zero, errRingClosed
		}
		head := q.head.Load()
		if head != q.tail.Load() {
			v := q.buf[head&q.mask]
			q.buf[head&q.mask] = zero // release references for GC
			q.head.Store(head + 1)
			q.wake()
			return v, nil
		}
		if spins++; spins < spinBudget {
			runtime.Gosched()
			continue
		}
		q.sleep(func() bool {
			return q.down.Load() || q.head.Load() != q.tail.Load()
		})
		spins = 0
	}
}

// sleep parks until ready reports true. The condition reads only atomics,
// and wakers broadcast under the same mutex, so no wakeup is lost.
func (q *spsc[T]) sleep(ready func() bool) {
	q.mu.Lock()
	for !ready() {
		q.sleepers++
		q.cond.Wait()
		q.sleepers--
	}
	q.mu.Unlock()
}

// wake rouses parked waiters, touching the mutex only when there are any.
func (q *spsc[T]) wake() {
	q.mu.Lock()
	if q.sleepers > 0 {
		q.cond.Broadcast()
	}
	q.mu.Unlock()
}

// close tears the queue down and wakes every waiter.
func (q *spsc[T]) close() {
	q.down.Store(true)
	q.mu.Lock()
	q.cond.Broadcast()
	q.mu.Unlock()
}

// ringMsg is one submission slot.
type ringMsg struct {
	idx     uint64 // submission index; completions echo it back
	method  string
	seq     uint64 // replay-dedupe sequence; 0 = idempotent
	req     any    // the typed request value, by reference
	payload []byte // raw request payload (valid until the handler returns)
	into    []byte // caller's destination for the response payload, if any
	posted  bool   // fire-and-forget: the client will not wait on this
	fault   FaultKind
}

// ringCpl is one completion slot.
type ringCpl struct {
	idx    uint64
	method string
	env    respEnvelope
	resp   any
	raw    []byte
	fault  FaultKind // non-None: the completion arrived poisoned
}

// RingConfig configures a Ring.
type RingConfig struct {
	// Fault, when non-nil, drives the ring's cooperative fault injection
	// from the same seeded plan state the framed transport uses.
	Fault *FaultInjector
	// Depth is the slot count per queue (rounded up to a power of two);
	// 0 means DefaultRingDepth.
	Depth int
}

// Ring is the client handle of a shared-memory ring transport bound to a
// Server. Run the server half with Serve (usually on its own goroutine).
// Like Conn, one synchronous call is outstanding at a time and the type
// is safe for concurrent use.
type Ring struct {
	srv   *Server
	inj   *FaultInjector
	stats TransportStats

	sq *spsc[ringMsg]
	cq *spsc[ringCpl]

	// mu is the producer lock: it serialises submissions and completion
	// draining. The service loop never takes it — a client blocked on its
	// completion holds mu the whole time.
	mu       sync.Mutex
	nextIdx  uint64
	clock    *vtime.Clock
	timeout  vtime.Duration
	maxFrame int

	outstanding atomic.Int64 // posted submissions not yet completed

	// stateMu guards the down latch and the deferred-error slot; both
	// sides touch them, so they stay off mu.
	stateMu  sync.Mutex
	downErr  error
	deferred error
}

// NewRing builds a ring transport served by srv. The caller starts the
// service loop with go ring.Serve().
func NewRing(srv *Server, cfg RingConfig) *Ring {
	depth := cfg.Depth
	if depth <= 0 {
		depth = DefaultRingDepth
	}
	return &Ring{
		srv:      srv,
		inj:      cfg.Fault,
		sq:       newSPSC[ringMsg](depth),
		cq:       newSPSC[ringCpl](depth),
		maxFrame: DefaultMaxFrame,
	}
}

// SetMaxFrame bounds a single raw payload, mirroring the framed limit.
func (r *Ring) SetMaxFrame(n int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.maxFrame = n
}

// SetDeadline arms a per-call deadline on the virtual clock, identical in
// meaning to Conn.SetDeadline.
func (r *Ring) SetDeadline(clock *vtime.Clock, timeout vtime.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.clock = clock
	r.timeout = timeout
}

// Stats exposes the ring's modelled byte accounting.
func (r *Ring) Stats() *TransportStats { return &r.stats }

// Down reports whether the ring has been latched down.
func (r *Ring) Down() bool {
	r.stateMu.Lock()
	defer r.stateMu.Unlock()
	return r.downErr != nil
}

// Close tears the ring down; both sides wake with ErrConnDown-class
// failures and the service loop exits.
func (r *Ring) Close() error {
	r.latch(errors.New("connection closed"))
	return nil
}

// latch records the first cause of death and closes both queues.
func (r *Ring) latch(err error) {
	r.stateMu.Lock()
	if r.downErr == nil {
		r.downErr = err
	}
	r.stateMu.Unlock()
	r.sq.close()
	r.cq.close()
}

// fail latches the ring down and wraps the (first) cause as a DownError.
func (r *Ring) fail(method string, err error) error {
	r.stateMu.Lock()
	if r.downErr == nil {
		r.downErr = err
	}
	cause := r.downErr
	r.stateMu.Unlock()
	r.sq.close()
	r.cq.close()
	return &DownError{Method: method, Err: cause}
}

// downError returns the latched cause, if any.
func (r *Ring) downError() error {
	r.stateMu.Lock()
	defer r.stateMu.Unlock()
	return r.downErr
}

// Call invokes method synchronously over the ring.
func (r *Ring) Call(method string, req, resp any) (int64, error) {
	_, n, err := r.exchange(method, 0, req, nil, resp, nil)
	return n, err
}

// CallSeq is Call with an explicit dedupe sequence number.
func (r *Ring) CallSeq(method string, seq uint64, req, resp any) (int64, error) {
	_, n, err := r.exchange(method, seq, req, nil, resp, nil)
	return n, err
}

// CallRecvRaw additionally returns the response's raw payload, if any.
func (r *Ring) CallRecvRaw(method string, seq uint64, req, resp any) ([]byte, int64, error) {
	return r.exchange(method, seq, req, nil, resp, nil)
}

// CallRecvRawInto passes buf to the server as the response payload's
// destination: a ring-aware handler writes straight into it (zero-copy),
// and a derived handler's payload is copied into it on completion.
func (r *Ring) CallRecvRawInto(method string, seq uint64, req, resp any, buf []byte) ([]byte, int64, error) {
	return r.exchange(method, seq, req, nil, resp, buf)
}

// CallRawSeq attaches rawReq to the request. The slice crosses by
// reference and the handler contract (valid until the handler returns)
// holds because the call is synchronous.
func (r *Ring) CallRawSeq(method string, seq uint64, req any, rawReq []byte, resp any) ([]byte, int64, error) {
	return r.exchange(method, seq, req, rawReq, resp, nil)
}

// Post publishes method fire-and-forget and returns as soon as the slot
// is in the submission queue. The completion is drained by the next
// synchronous call or Reap; a remote error it carries parks in the
// deferred slot (TakeDeferred).
func (r *Ring) Post(method string, seq uint64, req any) (int64, bool, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.downError(); err != nil {
		return 0, true, &DownError{Method: method, Err: err}
	}
	kind, err := r.submitFault(method)
	if err != nil {
		return 0, true, err
	}
	idx := r.nextIdx
	r.nextIdx++
	n := int64(ringSlotBytes)
	r.stats.AddSent(n)
	msg := ringMsg{idx: idx, method: method, seq: seq, req: req, posted: true, fault: kind}
	if err := r.sq.push(msg); err != nil {
		return n, true, r.fail(method, err)
	}
	r.outstanding.Add(1)
	return n, true, nil
}

// Reap blocks until every posted submission has completed (or the ring is
// down). Remote errors land in the deferred slot, not the return value.
func (r *Ring) Reap() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	for r.outstanding.Load() > 0 {
		cpl, err := r.cq.pop(ringClientSpin)
		if err != nil {
			return r.fail("reap", err)
		}
		if err := r.consumePosted(cpl); err != nil {
			return err
		}
	}
	return nil
}

// PostedPending reports the posted submissions not yet completed.
func (r *Ring) PostedPending() int { return int(r.outstanding.Load()) }

// TakeDeferred returns (and clears) the first remote error a posted call
// came back with.
func (r *Ring) TakeDeferred() error {
	r.stateMu.Lock()
	defer r.stateMu.Unlock()
	err := r.deferred
	r.deferred = nil
	return err
}

// submitFault draws the call's fault from the injector and fires the
// submission-side kinds. The returned kind (if any) rides in the slot for
// the service loop to act on.
func (r *Ring) submitFault(method string) (FaultKind, error) {
	if r.inj == nil {
		return FaultNone, nil
	}
	kind := r.inj.nextKind()
	switch kind {
	case FaultKillBeforeRequest:
		// Nothing reaches the submission queue — the ring analogue of a
		// stream killed before the first request byte.
		return FaultNone, r.fail(method, fmt.Errorf("%w before the request", errKilled))
	case FaultCrashServer:
		// The proxy process dies before consuming the slot. The crash hook
		// runs on this side so the service loop (which the hook's teardown
		// waits on) is never the one triggering its own demise.
		err := r.fail(method, fmt.Errorf("fault injected: proxy crashed before consuming the slot"))
		r.inj.fireCrash()
		return FaultNone, err
	case FaultDelay:
		r.inj.delay()
		return FaultNone, nil
	}
	return kind, nil
}

// consumePosted accounts one posted completion: stats, poison detection,
// deferred-error capture.
func (r *Ring) consumePosted(cpl ringCpl) error {
	r.stats.AddRecv(int64(ringSlotBytes + len(cpl.raw)))
	r.outstanding.Add(-1)
	if cpl.fault != FaultNone {
		return r.fail(cpl.method, fmt.Errorf("fault injected: %s completion poisoned (%s)", cpl.method, cpl.fault))
	}
	if cpl.env.ErrOp != "" {
		r.stateMu.Lock()
		if r.deferred == nil {
			r.deferred = &DeferredError{
				Method: cpl.method,
				Err:    &RemoteError{Op: cpl.env.ErrOp, Detail: cpl.env.ErrDetail, Status: cpl.env.ErrStatus},
			}
		}
		r.stateMu.Unlock()
	}
	return nil
}

// exchange runs one synchronous submission/completion cycle under the
// producer lock, draining any earlier posted completions on the way (the
// SPSC queues guarantee FIFO, so everything posted before this call
// completes before it).
func (r *Ring) exchange(method string, seq uint64, req any, rawReq []byte, resp any, into []byte) ([]byte, int64, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.downError(); err != nil {
		return nil, 0, &DownError{Method: method, Err: err}
	}
	var start vtime.Time
	if r.clock != nil {
		start = r.clock.Now()
	}
	kind, err := r.submitFault(method)
	if err != nil {
		return nil, 0, err
	}
	if len(rawReq) > r.maxFrame {
		return nil, 0, r.fail(method, fmt.Errorf("%d-byte payload: %w (max %d)", len(rawReq), ErrFrameTooLarge, r.maxFrame))
	}
	idx := r.nextIdx
	r.nextIdx++
	n := int64(ringSlotBytes + len(rawReq))
	r.stats.AddSent(n)
	msg := ringMsg{idx: idx, method: method, seq: seq, req: req, payload: rawReq, into: into, fault: kind}
	if err := r.sq.push(msg); err != nil {
		return nil, n, r.fail(method, err)
	}
	for {
		cpl, err := r.cq.pop(ringClientSpin)
		if err != nil {
			return nil, n, r.fail(method, err)
		}
		if cpl.idx != idx {
			if err := r.consumePosted(cpl); err != nil {
				return nil, n, err
			}
			continue
		}
		recv := int64(ringSlotBytes + len(cpl.raw))
		r.stats.AddRecv(recv)
		n += recv
		if cpl.fault != FaultNone {
			return nil, n, r.fail(method, fmt.Errorf("fault injected: %s completion poisoned (%s)", method, cpl.fault))
		}
		if len(cpl.raw) > r.maxFrame {
			return nil, n, r.fail(method, fmt.Errorf("%d-byte payload: %w (max %d)", len(cpl.raw), ErrFrameTooLarge, r.maxFrame))
		}
		var callErr error
		var rawResp []byte
		if cpl.env.ErrOp != "" {
			callErr = &RemoteError{Op: cpl.env.ErrOp, Detail: cpl.env.ErrDetail, Status: cpl.env.ErrStatus}
		} else {
			if resp != nil && cpl.resp != nil {
				dst := reflect.ValueOf(resp).Elem()
				src := reflect.ValueOf(cpl.resp)
				if !src.Type().AssignableTo(dst.Type()) {
					return nil, n, r.fail(method, fmt.Errorf("ipc: %s: response is %s, want %s", method, src.Type(), dst.Type()))
				}
				dst.Set(src)
			}
			rawResp = cpl.raw
		}
		if r.clock != nil && r.timeout > 0 {
			if elapsed := r.clock.Now().Sub(start); elapsed > r.timeout {
				return nil, n, r.fail(method,
					fmt.Errorf("%s exceeded the %s call deadline (took %s)", method, r.timeout, elapsed))
			}
		}
		return rawResp, n, callErr
	}
}

// Serve is the proxy-side service loop: it polls the submission queue,
// dispatches ring handlers, and publishes completions until the ring goes
// down. Run it on its own goroutine.
func (r *Ring) Serve() {
	for {
		msg, err := r.sq.pop(ringServerSpin)
		if err != nil {
			return
		}
		if !r.serveOne(msg) {
			return
		}
	}
}

// serveOne handles one submission. It returns false when a fault latched
// the ring down and the service loop should exit.
//
// The server-side fault matrix (the kind rides in msg.fault):
//
//	FaultKillMidRequest, FaultTornSlotPublish — the consumer observes a
//	  torn slot: down, request NOT executed.
//	FaultStalledConsumer — the service loop wedges for the plan's Delay,
//	  then dies: down, request NOT executed.
//	FaultKillBeforeResponse, FaultKillBetween — the handler EXECUTES (and
//	  a sequenced response enters the replay cache), then the completion
//	  is lost: down. This is the case replay dedupe exists for.
//	FaultKillMidResponse, FaultArenaPoison — the handler executes and the
//	  completion is delivered poisoned; the client latches down on it.
func (r *Ring) serveOne(msg ringMsg) bool {
	switch msg.fault {
	case FaultKillMidRequest, FaultTornSlotPublish:
		r.latch(fmt.Errorf("fault injected: torn %s submission slot", msg.method))
		return false
	case FaultStalledConsumer:
		if r.inj != nil {
			r.inj.delay()
		}
		r.latch(fmt.Errorf("fault injected: ring consumer stalled on %s", msg.method))
		return false
	}

	var cpl ringCpl
	cpl.idx, cpl.method = msg.idx, msg.method

	var done func(cachedResp)
	if msg.seq != 0 {
		cached, served, claim := r.srv.claimSeq(msg.seq)
		if served {
			cpl.env, cpl.resp = cached.env, cached.resp
			if cached.raw != nil {
				// The cache keeps its pinned copy; the client gets its own
				// (into its destination buffer when it offered one).
				if cap(msg.into) >= len(cached.raw) {
					cpl.raw = msg.into[:len(cached.raw)]
				} else {
					cpl.raw = make([]byte, len(cached.raw))
				}
				copy(cpl.raw, cached.raw)
			}
			return r.complete(msg, cpl)
		}
		done = claim
	}

	h, ok := r.srv.ringHandler(msg.method)
	if !ok {
		cpl.env = respEnvelope{ErrOp: msg.method, ErrDetail: "unknown method", ErrStatus: -9998}
		if done != nil {
			done(cachedResp{env: cpl.env})
		}
		return r.complete(msg, cpl)
	}
	resp, raw, err := h(msg.req, msg.payload, msg.into)
	env := envFor(msg.method, err)
	if err != nil {
		raw = nil
	}
	env.Raw = raw != nil
	cpl.env, cpl.resp, cpl.raw = env, resp, raw
	if done != nil {
		cacheRaw := raw
		if raw != nil {
			// The delivered payload may alias the client's buffer (the
			// zero-copy into path); the replay cache pins its own copy so a
			// later replay is immune to client mutation.
			cacheRaw = append([]byte(nil), raw...)
		}
		done(cachedResp{env: env, resp: resp, raw: cacheRaw})
	}
	return r.complete(msg, cpl)
}

// complete publishes a completion, applying the response-side faults.
func (r *Ring) complete(msg ringMsg, cpl ringCpl) bool {
	switch msg.fault {
	case FaultKillBeforeResponse, FaultKillBetween:
		// Executed, completion lost.
		r.latch(fmt.Errorf("fault injected: %s completion lost", msg.method))
		return false
	case FaultKillMidResponse, FaultArenaPoison:
		cpl.fault = msg.fault
	}
	if err := r.cq.push(cpl); err != nil {
		return false
	}
	// A poisoned completion takes the ring down as soon as it is seen;
	// the service loop stops here rather than racing the latch.
	if cpl.fault != FaultNone {
		return false
	}
	return true
}
