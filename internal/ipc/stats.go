package ipc

import (
	"sync"
	"sync/atomic"
)

// TransportStats is the byte accounting shared by every transport
// backend. The framed stream feeds it from the countingRWC wrapper (real
// bytes on the wire, gob envelopes included); the ring feeds it modelled
// bytes (one slot per publish or completion plus the payload carried).
// Either way BytesSent/BytesRecv are what proxy.Client charges the copy
// cost of and what checl-inspect reports, through this one code path.
type TransportStats struct {
	sent atomic.Int64
	recv atomic.Int64
}

// AddSent records n bytes travelling toward the server.
func (s *TransportStats) AddSent(n int64) { s.sent.Add(n) }

// AddRecv records n bytes travelling back from the server.
func (s *TransportStats) AddRecv(n int64) { s.recv.Add(n) }

// BytesSent reports the bytes sent so far.
func (s *TransportStats) BytesSent() int64 { return s.sent.Load() }

// BytesRecv reports the bytes received so far.
func (s *TransportStats) BytesRecv() int64 { return s.recv.Load() }

// Total is the traffic in both directions — the number historical callers
// of the per-connection byte counter expect.
func (s *TransportStats) Total() int64 { return s.sent.Load() + s.recv.Load() }

// rawBufPool recycles inbound raw-payload buffers across both transports.
// The handler contract — the payload slice is valid only until the handler
// returns — is what makes reuse safe; ocl.Runtime copies what it keeps.
var rawBufPool sync.Pool

func getRawBuf(n int) *[]byte {
	if v := rawBufPool.Get(); v != nil {
		bp := v.(*[]byte)
		if cap(*bp) >= n {
			*bp = (*bp)[:n]
			return bp
		}
	}
	b := make([]byte, n)
	return &b
}

func putRawBuf(bp *[]byte) { rawBufPool.Put(bp) }
