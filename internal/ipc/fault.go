package ipc

// Fault injection for the app<->proxy transport. A FaultInjector wraps the
// client end of a connection and, driven by a deterministic seeded plan,
// kills the stream at precise protocol positions (before the request, mid
// request frame, before the response, between the response envelope and
// its body, mid response body), crashes the proxy process mid-handler, or
// delays a call past its virtual deadline. Because the injector parses the
// frame headers flowing through it, every fault lands on an exact frame
// boundary, which makes the failure modes reproducible enough for
// table-driven tests and seeded soak runs.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"

	"checl/internal/vtime"
)

// FaultKind selects where in a call's lifecycle the connection fails.
type FaultKind int

const (
	// FaultNone leaves the call alone.
	FaultNone FaultKind = iota
	// FaultKillBeforeRequest kills the connection before any request byte.
	FaultKillBeforeRequest
	// FaultKillMidRequest kills the connection inside the request body
	// frame, so the server sees a truncated frame.
	FaultKillMidRequest
	// FaultKillBeforeResponse delivers the full request (the server
	// executes it) and kills the connection before any response byte —
	// the case sequence-number dedupe exists for.
	FaultKillBeforeResponse
	// FaultKillBetween delivers the response envelope frame and kills the
	// connection before the response body frame.
	FaultKillBetween
	// FaultKillMidResponse kills the connection inside the response body
	// frame, after its header has been read.
	FaultKillMidResponse
	// FaultCrashServer crashes the proxy process mid-handler: the request
	// is delivered, then the injector fires the CrashServer hook, so the
	// handler's reply hits a closed connection and the process is gone.
	FaultCrashServer
	// FaultDelay advances the virtual clock by Plan.Delay before the
	// request, exercising per-call deadlines.
	FaultDelay
	// FaultTornSlotPublish (ring only) tears a submission-slot publish: the
	// consumer observes a half-written slot and the ring latches down with
	// the request unexecuted — the ring analogue of FaultKillMidRequest.
	// Inert on the framed transport.
	FaultTornSlotPublish
	// FaultStalledConsumer (ring only) models the service loop wedging: the
	// plan's Delay elapses with the slot unconsumed, then the ring latches
	// down without executing the request. Inert on the framed transport.
	FaultStalledConsumer
	// FaultArenaPoison (ring only) corrupts the shared arena under a
	// completed call: the request executes, but its completion arrives
	// poisoned and the client latches the ring down — the ring analogue of
	// FaultKillMidResponse. Inert on the framed transport.
	FaultArenaPoison
)

func (k FaultKind) String() string {
	switch k {
	case FaultNone:
		return "none"
	case FaultKillBeforeRequest:
		return "kill-before-request"
	case FaultKillMidRequest:
		return "kill-mid-request"
	case FaultKillBeforeResponse:
		return "kill-before-response"
	case FaultKillBetween:
		return "kill-between-envelope-and-body"
	case FaultKillMidResponse:
		return "kill-mid-response"
	case FaultCrashServer:
		return "crash-server"
	case FaultDelay:
		return "delay"
	case FaultTornSlotPublish:
		return "torn-slot-publish"
	case FaultStalledConsumer:
		return "stalled-consumer"
	case FaultArenaPoison:
		return "arena-poison"
	default:
		return fmt.Sprintf("fault(%d)", int(k))
	}
}

// killKinds is the default fault mix: every way a connection can die
// without losing the proxy process.
var killKinds = []FaultKind{
	FaultKillBeforeRequest,
	FaultKillMidRequest,
	FaultKillBeforeResponse,
	FaultKillBetween,
	FaultKillMidResponse,
}

// RingFaultKinds are the fault points specific to the shared-memory ring
// transport. They slot into FaultPlan.Kinds like any other kind; on the
// framed transport they are inert (the call runs unfaulted), so a plan
// mixing them stays valid on both backends.
var RingFaultKinds = []FaultKind{
	FaultTornSlotPublish,
	FaultStalledConsumer,
	FaultArenaPoison,
}

// FaultPlan is a deterministic schedule of injected faults.
type FaultPlan struct {
	Seed      uint64         // drives the kind choice; same seed, same faults
	EveryN    int            // inject on every Nth call; <= 0 disables the plan
	SkipFirst int            // leave the first SkipFirst calls alone (bootstrap)
	Max       int            // stop injecting after Max faults; 0 = unlimited
	Kinds     []FaultKind    // candidate kinds; nil means every kill kind
	Delay     vtime.Duration // the extra latency FaultDelay injects
}

// FaultEvent records one injected fault for reporting.
type FaultEvent struct {
	Call int // 1-based index of the faulted call
	Kind FaultKind
}

// FaultInjector owns a plan's mutable state. One injector may wrap many
// connections in turn (each reconnect after a kill wraps a fresh stream)
// while the call count and seeded RNG run on across them.
type FaultInjector struct {
	mu        sync.Mutex
	plan      FaultPlan
	rng       uint64
	calls     int
	injected  int
	suspended int
	clock     *vtime.Clock
	crash     func()
	events    []FaultEvent
}

// NewFaultInjector builds an injector for plan.
func NewFaultInjector(plan FaultPlan) *FaultInjector {
	return &FaultInjector{plan: plan, rng: plan.Seed*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d}
}

// SetClock provides the virtual clock FaultDelay charges.
func (f *FaultInjector) SetClock(c *vtime.Clock) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.clock = c
}

// SetCrashServer installs the hook FaultCrashServer fires (proxy.Spawn
// points it at the proxy process's kill path).
func (f *FaultInjector) SetCrashServer(fn func()) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.crash = fn
}

// Suspend pauses injection (nestable). The failover path suspends the
// injector while it rebinds so recovery itself cannot be re-faulted into
// a livelock.
func (f *FaultInjector) Suspend() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.suspended++
}

// Resume undoes one Suspend.
func (f *FaultInjector) Resume() {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.suspended > 0 {
		f.suspended--
	}
}

// Calls reports how many calls the injector has seen.
func (f *FaultInjector) Calls() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls
}

// Injected reports how many faults have fired.
func (f *FaultInjector) Injected() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.injected
}

// Events returns the injected faults in order.
func (f *FaultInjector) Events() []FaultEvent {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]FaultEvent, len(f.events))
	copy(out, f.events)
	return out
}

// nextKind counts one call and decides its fault, if any.
func (f *FaultInjector) nextKind() FaultKind {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.calls++
	switch {
	case f.plan.EveryN <= 0,
		f.suspended > 0,
		f.calls <= f.plan.SkipFirst,
		f.plan.Max > 0 && f.injected >= f.plan.Max,
		f.calls%f.plan.EveryN != 0:
		return FaultNone
	}
	kinds := f.plan.Kinds
	if len(kinds) == 0 {
		kinds = killKinds
	}
	// splitmix64 keeps the kind sequence deterministic per seed.
	f.rng += 0x9e3779b97f4a7c15
	z := f.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	k := kinds[z%uint64(len(kinds))]
	f.injected++
	f.events = append(f.events, FaultEvent{Call: f.calls, Kind: k})
	return k
}

// fireCrash runs the CrashServer hook outside the injector lock.
func (f *FaultInjector) fireCrash() {
	f.mu.Lock()
	crash := f.crash
	f.mu.Unlock()
	if crash != nil {
		crash()
	}
}

// delay charges the plan's injected latency to the virtual clock.
func (f *FaultInjector) delay() {
	f.mu.Lock()
	clock, d := f.clock, f.plan.Delay
	f.mu.Unlock()
	if clock != nil && d > 0 {
		clock.Advance(d)
	}
}

// Wrap returns rwc with the injector's faults applied. The result
// implements CallFaulter, which ipc.Conn invokes per call.
func (f *FaultInjector) Wrap(rwc io.ReadWriteCloser) io.ReadWriteCloser {
	return &faultConn{inj: f, rwc: rwc}
}

// errKilled is what reads and writes return once a fault killed the
// stream; Conn wraps it into a DownError.
var errKilled = errors.New("fault injected: connection killed")

// frameTracker follows the 4-byte-header framing through a byte stream so
// faults can target exact frame positions.
type frameTracker struct {
	hdr       [4]byte
	hdrN      int
	remaining int
	frames    int // completed frames since the last reset
}

func (t *frameTracker) feed(b []byte) {
	for len(b) > 0 {
		if t.remaining == 0 {
			take := 4 - t.hdrN
			if take > len(b) {
				take = len(b)
			}
			copy(t.hdr[t.hdrN:], b[:take])
			t.hdrN += take
			b = b[take:]
			if t.hdrN == 4 {
				t.remaining = int(binary.BigEndian.Uint32(t.hdr[:]))
				t.hdrN = 0
				if t.remaining == 0 {
					t.frames++
				}
			}
			continue
		}
		take := t.remaining
		if take > len(b) {
			take = len(b)
		}
		t.remaining -= take
		b = b[take:]
		if t.remaining == 0 {
			t.frames++
		}
	}
}

// atBoundary reports whether the stream sits exactly between frames.
func (t *frameTracker) atBoundary() bool { return t.remaining == 0 && t.hdrN == 0 }

// inBody reports whether a frame header has been consumed but its payload
// has not finished.
func (t *frameTracker) inBody() bool { return t.remaining > 0 }

// faultConn is the fault-injecting transport wrapper.
type faultConn struct {
	inj *FaultInjector
	rwc io.ReadWriteCloser

	mu      sync.Mutex
	pending FaultKind
	killed  bool
	rt, wt  frameTracker
}

// CallStarting arms (at most) one fault for the call about to run and
// fires the faults that land before the first request byte.
func (fc *faultConn) CallStarting() error {
	k := fc.inj.nextKind()
	fc.mu.Lock()
	fc.pending = k
	fc.rt.frames, fc.wt.frames = 0, 0
	fc.mu.Unlock()
	switch k {
	case FaultKillBeforeRequest:
		fc.kill()
		return fmt.Errorf("%w before the request", errKilled)
	case FaultDelay:
		fc.inj.delay()
		fc.setPending(FaultNone)
	}
	return nil
}

func (fc *faultConn) setPending(k FaultKind) {
	fc.mu.Lock()
	fc.pending = k
	fc.mu.Unlock()
}

// kill closes the underlying stream and latches the wrapper dead.
func (fc *faultConn) kill() {
	fc.mu.Lock()
	already := fc.killed
	fc.killed = true
	fc.mu.Unlock()
	if !already {
		_ = fc.rwc.Close()
	}
}

func (fc *faultConn) Write(p []byte) (int, error) {
	fc.mu.Lock()
	if fc.killed {
		fc.mu.Unlock()
		return 0, errKilled
	}
	pending := fc.pending
	midRequest := pending == FaultKillMidRequest && fc.wt.frames >= 1
	fc.mu.Unlock()

	if midRequest {
		// Let half of this chunk of the body frame escape, then die: the
		// server sees a frame cut off mid-flight.
		half := len(p) / 2
		if half > 0 {
			_, _ = fc.rwc.Write(p[:half])
		}
		fc.kill()
		return half, fmt.Errorf("%w mid-request", errKilled)
	}

	n, err := fc.rwc.Write(p)

	fc.mu.Lock()
	fc.wt.feed(p[:n])
	crash := fc.pending == FaultCrashServer && fc.wt.frames >= 2
	if crash {
		fc.pending = FaultNone
	}
	fc.mu.Unlock()
	if crash {
		// The full request is on the wire; crash the proxy before it can
		// reply, so the handler dies with its response unsent.
		fc.inj.fireCrash()
	}
	return n, err
}

func (fc *faultConn) Read(p []byte) (int, error) {
	fc.mu.Lock()
	if fc.killed {
		fc.mu.Unlock()
		return 0, errKilled
	}
	var (
		kill  bool
		cause string
	)
	switch fc.pending {
	case FaultKillBeforeResponse:
		kill, cause = true, "before the response"
	case FaultKillBetween:
		// The response envelope frame is through; die on the boundary
		// before the body frame's header.
		if fc.rt.frames >= 1 && fc.rt.atBoundary() {
			kill, cause = true, "between response envelope and body"
		}
	case FaultKillMidResponse:
		// Let the body frame's header through, then die inside the body.
		if fc.rt.frames >= 1 && fc.rt.inBody() {
			kill, cause = true, "mid-response"
		}
	}
	fc.mu.Unlock()

	if kill {
		fc.kill()
		return 0, fmt.Errorf("%w %s", errKilled, cause)
	}

	n, err := fc.rwc.Read(p)
	fc.mu.Lock()
	fc.rt.feed(p[:n])
	fc.mu.Unlock()
	return n, err
}

func (fc *faultConn) Close() error { return fc.rwc.Close() }
