package ipc

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"reflect"
	"sync/atomic"
	"testing"

	"checl/internal/vtime"
)

// faultPair is pair with a fault injector wrapped around the client end.
func faultPair(t *testing.T, s *Server, inj *FaultInjector) *Conn {
	t.Helper()
	a, b := net.Pipe()
	go s.ServeConn(b)
	conn := NewConn(inj.Wrap(a))
	t.Cleanup(func() { conn.Close() })
	return conn
}

// TestFaultKillKinds drives every connection-kill position through a real
// client/server pair: the faulted call must surface ErrConnDown, the
// connection must latch down, and later calls must fail fast.
func TestFaultKillKinds(t *testing.T) {
	kinds := []FaultKind{
		FaultKillBeforeRequest,
		FaultKillMidRequest,
		FaultKillBeforeResponse,
		FaultKillBetween,
		FaultKillMidResponse,
	}
	for _, k := range kinds {
		t.Run(k.String(), func(t *testing.T) {
			s := NewServer()
			Register(s, "add", func(r addReq) (addResp, error) {
				return addResp{Sum: r.A + r.B}, nil
			})
			inj := NewFaultInjector(FaultPlan{Seed: 1, EveryN: 2, Kinds: []FaultKind{k}})
			conn := faultPair(t, s, inj)

			var resp addResp
			if _, err := conn.Call("add", addReq{A: 1, B: 2}, &resp); err != nil || resp.Sum != 3 {
				t.Fatalf("pre-fault call: err=%v sum=%d", err, resp.Sum)
			}
			if _, err := conn.Call("add", addReq{A: 2, B: 2}, &resp); !errors.Is(err, ErrConnDown) {
				t.Fatalf("faulted call err = %v, want ErrConnDown", err)
			}
			if !conn.Down() {
				t.Error("connection should be latched down after the fault")
			}
			if _, err := conn.Call("add", addReq{A: 1, B: 1}, &resp); !errors.Is(err, ErrConnDown) {
				t.Errorf("post-fault call err = %v, want fast ErrConnDown", err)
			}
			if inj.Injected() != 1 {
				t.Errorf("injected = %d, want 1", inj.Injected())
			}
			if ev := inj.Events(); len(ev) != 1 || ev[0].Kind != k || ev[0].Call != 2 {
				t.Errorf("events = %+v", ev)
			}
		})
	}
}

// TestFaultFrameTooLargeOutbound rejects an oversized request frame on the
// client side before it touches the wire.
func TestFaultFrameTooLargeOutbound(t *testing.T) {
	type fatReq struct{ Data []byte }
	s := NewServer()
	Register(s, "fat", func(r fatReq) (addResp, error) { return addResp{Sum: len(r.Data)}, nil })
	conn := pair(t, s)
	conn.SetMaxFrame(64)
	var resp addResp
	_, err := conn.Call("fat", fatReq{Data: make([]byte, 4096)}, &resp)
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
	if !errors.Is(err, ErrConnDown) || !conn.Down() {
		t.Error("an oversized frame must take the connection down")
	}
}

// TestFaultFrameTooLargeInbound rejects an oversized request frame on the
// server side: the serve loop returns ErrFrameTooLarge and closes the
// stream so the client does not hang on the synchronous transport.
func TestFaultFrameTooLargeInbound(t *testing.T) {
	type fatReq struct{ Data []byte }
	s := NewServer()
	Register(s, "fat", func(r fatReq) (addResp, error) { return addResp{Sum: len(r.Data)}, nil })
	s.SetMaxFrame(64)
	a, b := net.Pipe()
	served := make(chan error, 1)
	go func() { served <- s.ServeConn(b) }()
	conn := NewConn(a)
	defer conn.Close()

	var resp addResp
	if _, err := conn.Call("fat", fatReq{Data: make([]byte, 4096)}, &resp); !errors.Is(err, ErrConnDown) {
		t.Fatalf("client err = %v, want ErrConnDown", err)
	}
	if err := <-served; !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("ServeConn = %v, want ErrFrameTooLarge", err)
	}
}

// TestFaultTruncatedFrames feeds the frame reader raw cut-off streams.
func TestFaultTruncatedFrames(t *testing.T) {
	frame := func(payload []byte) []byte {
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
		return append(hdr[:], payload...)
	}
	cases := []struct {
		name string
		raw  []byte
		want error
	}{
		{"clean-eof", nil, io.EOF},
		{"clean-eof-after-frame", frame(make([]byte, 8)), io.EOF},
		{"header-cut-short", []byte{0, 0}, ErrTruncatedFrame},
		{"body-cut-short", frame(make([]byte, 100))[:20], ErrTruncatedFrame},
		{"oversized", frame(make([]byte, 200)), ErrFrameTooLarge},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fr := &frameReader{r: bytes.NewReader(tc.raw), max: 128}
			_, err := io.ReadAll(fr)
			if tc.want == io.EOF {
				if err != nil {
					t.Fatalf("err = %v, want clean EOF", err)
				}
				return
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("err = %v, want %v", err, tc.want)
			}
		})
	}
}

// TestFaultSeqReplay checks the server's request-dedupe cache: re-sending a
// sequenced call replays the cached response instead of re-executing the
// handler, while seq-0 calls always execute.
func TestFaultSeqReplay(t *testing.T) {
	var execs atomic.Int32
	s := NewServer()
	Register(s, "bump", func(r addReq) (addResp, error) {
		return addResp{Sum: int(execs.Add(1))}, nil
	})
	conn := pair(t, s)

	var r1, r2 addResp
	if _, err := conn.CallSeq("bump", 7, addReq{}, &r1); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.CallSeq("bump", 7, addReq{}, &r2); err != nil {
		t.Fatal(err)
	}
	if got := execs.Load(); got != 1 {
		t.Errorf("handler executed %d times, want 1 (second send must replay)", got)
	}
	if r1.Sum != r2.Sum {
		t.Errorf("replayed response %d differs from original %d", r2.Sum, r1.Sum)
	}
	if s.ReplayedCalls() != 1 {
		t.Errorf("ReplayedCalls = %d, want 1", s.ReplayedCalls())
	}

	var r3, r4 addResp
	if _, err := conn.CallSeq("bump", 0, addReq{}, &r3); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.CallSeq("bump", 0, addReq{}, &r4); err != nil {
		t.Fatal(err)
	}
	if r3.Sum == r4.Sum {
		t.Error("seq-0 calls must re-execute, not replay")
	}
}

// TestFaultReplayWindowEviction fills the dedupe cache past its window and
// checks that evicted sequence numbers re-execute.
func TestFaultReplayWindowEviction(t *testing.T) {
	var execs atomic.Int32
	s := NewServer()
	Register(s, "bump", func(r addReq) (addResp, error) {
		return addResp{Sum: int(execs.Add(1))}, nil
	})
	conn := pair(t, s)
	var resp addResp
	for seq := uint64(1); seq <= replayWindow+1; seq++ {
		if _, err := conn.CallSeq("bump", seq, addReq{}, &resp); err != nil {
			t.Fatal(err)
		}
	}
	// Seq 1 was evicted by seq replayWindow+1: it executes again.
	before := execs.Load()
	if _, err := conn.CallSeq("bump", 1, addReq{}, &resp); err != nil {
		t.Fatal(err)
	}
	if execs.Load() != before+1 {
		t.Error("evicted seq should re-execute")
	}
	// Seq 3 is still cached (re-storing seq 1 evicted seq 2): replayed.
	if _, err := conn.CallSeq("bump", 3, addReq{}, &resp); err != nil {
		t.Fatal(err)
	}
	if execs.Load() != before+1 {
		t.Error("cached seq should replay, not re-execute")
	}
}

// TestFaultDeadlineExceeded arms a virtual per-call deadline and injects a
// delay past it: the call must fail and take the connection down.
func TestFaultDeadlineExceeded(t *testing.T) {
	s := NewServer()
	Register(s, "add", func(r addReq) (addResp, error) {
		return addResp{Sum: r.A + r.B}, nil
	})
	clock := vtime.NewClock()
	inj := NewFaultInjector(FaultPlan{
		EveryN: 2,
		Kinds:  []FaultKind{FaultDelay},
		Delay:  10 * vtime.Millisecond,
	})
	inj.SetClock(clock)
	conn := faultPair(t, s, inj)
	conn.SetDeadline(clock, vtime.Millisecond)

	var resp addResp
	if _, err := conn.Call("add", addReq{A: 1, B: 1}, &resp); err != nil {
		t.Fatalf("fast call should beat the deadline: %v", err)
	}
	if _, err := conn.Call("add", addReq{A: 1, B: 1}, &resp); !errors.Is(err, ErrConnDown) {
		t.Fatalf("delayed call err = %v, want ErrConnDown", err)
	}
}

// TestFaultPlanDeterminism: the same seed yields the same fault schedule;
// a different seed yields a different one.
func TestFaultPlanDeterminism(t *testing.T) {
	drive := func(seed uint64, calls int) []FaultEvent {
		inj := NewFaultInjector(FaultPlan{Seed: seed, EveryN: 3})
		for i := 0; i < calls; i++ {
			inj.nextKind()
		}
		return inj.Events()
	}
	a, b := drive(42, 150), drive(42, 150)
	if len(a) != 50 {
		t.Fatalf("injected %d faults, want 50", len(a))
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("same seed must produce the same fault schedule")
	}
	if c := drive(43, 150); reflect.DeepEqual(a, c) {
		t.Error("different seeds should produce different schedules")
	}
}

// TestFaultSuspendResume: a suspended injector must not fire (the failover
// path relies on this while it rebinds), and injection resumes after.
func TestFaultSuspendResume(t *testing.T) {
	inj := NewFaultInjector(FaultPlan{EveryN: 1})
	inj.Suspend()
	inj.Suspend() // nestable
	for i := 0; i < 5; i++ {
		if k := inj.nextKind(); k != FaultNone {
			t.Fatalf("suspended injector fired %v", k)
		}
	}
	inj.Resume()
	if k := inj.nextKind(); k != FaultNone {
		t.Fatal("injector fired while still one Suspend deep")
	}
	inj.Resume()
	if k := inj.nextKind(); k == FaultNone {
		t.Fatal("resumed injector should fire")
	}
}

// TestFaultPlanLimits exercises SkipFirst and Max.
func TestFaultPlanLimits(t *testing.T) {
	inj := NewFaultInjector(FaultPlan{EveryN: 1, SkipFirst: 3, Max: 2})
	var fired int
	for i := 0; i < 10; i++ {
		if inj.nextKind() != FaultNone {
			fired++
		}
	}
	if fired != 2 {
		t.Errorf("fired %d faults, want 2 (SkipFirst=3, Max=2)", fired)
	}
	ev := inj.Events()
	if len(ev) != 2 || ev[0].Call != 4 || ev[1].Call != 5 {
		t.Errorf("events = %+v, want calls 4 and 5", ev)
	}
}
