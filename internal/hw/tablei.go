package hw

import "checl/internal/vtime"

// Device models for the three compute devices of the paper's evaluation
// systems (Table I). Peak rates are the published figures for each part:
// Tesla C1060 (933 GFLOPS SP, 102 GB/s GDDR3, 4 GB), Radeon HD5870
// (2720 GFLOPS SP, 154 GB/s GDDR5, 1 GB) and Core i7 920 used as an
// OpenCL CPU device (~42.6 GFLOPS SP, ~25.6 GB/s DDR3, 12 GB host RAM).
// Work-group limits reproduce the portability constraint the paper calls
// out: 256 work-items in the x-dimension on the AMD GPU, 1024 on the CPU.

// TeslaC1060 models the NVIDIA Tesla C1060 GPU.
func TeslaC1060() DeviceModel {
	return DeviceModel{
		Name:             "Tesla C1060",
		Vendor:           "NVIDIA Corporation",
		Type:             DeviceGPU,
		GFLOPS:           933,
		MemBandwidth:     102 * GBps,
		GlobalMemory:     4 << 30,
		ComputeUnits:     30,
		MaxWorkGroupSize: 512,
		MaxWorkItemSizes: [3]int{512, 512, 64},
		LaunchOverhead:   8 * vtime.Microsecond,
	}
}

// RadeonHD5870 models the AMD Radeon HD5870 GPU.
func RadeonHD5870() DeviceModel {
	return DeviceModel{
		Name:             "Radeon HD5870",
		Vendor:           "Advanced Micro Devices, Inc.",
		Type:             DeviceGPU,
		GFLOPS:           2720,
		MemBandwidth:     154 * GBps,
		GlobalMemory:     1 << 30,
		ComputeUnits:     20,
		MaxWorkGroupSize: 256,
		MaxWorkItemSizes: [3]int{256, 256, 256},
		LaunchOverhead:   12 * vtime.Microsecond,
	}
}

// CoreI7920 models the Intel Core i7 920 used as an OpenCL CPU device by
// the AMD OpenCL implementation.
func CoreI7920() DeviceModel {
	return DeviceModel{
		Name:             "Intel Core i7 920",
		Vendor:           "GenuineIntel",
		Type:             DeviceCPU,
		GFLOPS:           42.6,
		MemBandwidth:     25.6 * GBps,
		GlobalMemory:     12 << 30,
		ComputeUnits:     8, // 4 cores x 2 SMT
		MaxWorkGroupSize: 1024,
		MaxWorkItemSizes: [3]int{1024, 1024, 1024},
		LaunchOverhead:   3 * vtime.Microsecond,
	}
}

// NVIDIACompiler models the NVIDIA OpenCL compiler: fast builds, but with
// visible platform/context creation cost (Fig. 7 shows non-negligible
// platform and context recreation time on NVIDIA OpenCL).
func NVIDIACompiler() CompileModel {
	return CompileModel{
		Base:      18 * vtime.Millisecond,
		PerByte:   1500 * vtime.Nanosecond,
		PerKernel: 4 * vtime.Millisecond,
	}
}

// AMDCompiler models the AMD OpenCL compiler, which the paper observes to
// recompile programs considerably more slowly than NVIDIA's (S3D with its
// 27 program objects takes ~5 s to rebuild on AMD OpenCL).
func AMDCompiler() CompileModel {
	return CompileModel{
		Base:      45 * vtime.Millisecond,
		PerByte:   5200 * vtime.Nanosecond,
		PerKernel: 11 * vtime.Millisecond,
	}
}

// TableISpec reproduces the evaluation machine of Table I:
// Core i7 920 host (12 GB DDR3), Intel X58/ICH10R, gigabit Ethernet,
// measured file and PCIe bandwidths as printed in the table.
func TableISpec() SystemSpec {
	return SystemSpec{
		Name:    "TableI-PC",
		CPU:     CoreI7920(),
		HostMem: 12 << 30,
		Inter: InterconnectModel{
			PCIeHtoD: 5.35 * GBps,
			PCIeDtoH: 4.87 * GBps,
			Memcpy:   6.0 * GBps,
			NIC:      125 * MBps, // 1000BASE-T
		},
		LocalDisk: StorageModel{
			Name:    "local",
			Write:   110 * MBps,
			Read:    106 * MBps,
			Latency: 5 * vtime.Millisecond,
		},
		NFS: StorageModel{
			Name:    "nfs",
			Write:   72.5 * MBps,
			Read:    21.2 * MBps,
			Latency: 12 * vtime.Millisecond,
		},
		RAMDisk: StorageModel{
			Name:    "ramdisk",
			Write:   2881 * MBps,
			Read:    4800 * MBps,
			Latency: 50 * vtime.Microsecond,
		},
		IPCCallLatency: 9 * vtime.Microsecond,
		ProxyForkCost:  80 * vtime.Millisecond,
		Ring: RingModel{
			SlotPublish: 150 * vtime.Nanosecond,
			Poll:        60 * vtime.Nanosecond,
			ArenaBW:     12.8 * GBps, // one-copy shared arena ~ DDR3 stream rate
		},
	}
}
