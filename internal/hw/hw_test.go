package hw

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"checl/internal/vtime"
)

func TestBandwidthTransfer(t *testing.T) {
	b := 100 * MBps
	if got := b.Transfer(100e6); got != vtime.Second {
		t.Errorf("100MB at 100MB/s = %v, want 1s", got)
	}
	if got := b.Transfer(0); got != 0 {
		t.Errorf("zero bytes = %v, want 0", got)
	}
	if got := Bandwidth(0).Transfer(1 << 20); got != 0 {
		t.Errorf("zero bandwidth = %v, want 0", got)
	}
}

func TestBandwidthTransferMonotoneProperty(t *testing.T) {
	b := TableISpec().Inter.PCIeHtoD
	f := func(a, c uint32) bool {
		lo, hi := int64(a), int64(c)
		if lo > hi {
			lo, hi = hi, lo
		}
		return b.Transfer(lo) <= b.Transfer(hi)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBandwidthString(t *testing.T) {
	if got := (5.35 * GBps).String(); got != "5.35 GB/s" {
		t.Errorf("String = %q", got)
	}
	if got := (72.5 * MBps).String(); got != "72.5 MB/s" {
		t.Errorf("String = %q", got)
	}
	if got := (500 * KBps).String(); got != "500.0 KB/s" {
		t.Errorf("String = %q", got)
	}
}

func TestDeviceTypeString(t *testing.T) {
	if DeviceCPU.String() != "CL_DEVICE_TYPE_CPU" || DeviceGPU.String() != "CL_DEVICE_TYPE_GPU" {
		t.Error("device type names wrong")
	}
	if !strings.Contains(DeviceType(99).String(), "99") {
		t.Error("unknown device type should embed its value")
	}
}

func TestKernelTimeRoofline(t *testing.T) {
	d := TeslaC1060()
	// A pure-compute kernel should scale with flops.
	t1 := d.KernelTime(1e9, 0)
	t2 := d.KernelTime(2e9, 0)
	if !(t2 > t1) {
		t.Errorf("compute-bound kernel time not increasing: %v then %v", t1, t2)
	}
	// A memory-bound kernel: enormous traffic, trivial flops.
	mem := d.KernelTime(1, 1<<30)
	cmp := d.KernelTime(1, 0)
	if !(mem > cmp) {
		t.Errorf("memory traffic not reflected: %v vs %v", mem, cmp)
	}
	// Launch overhead floors the time.
	if got := d.KernelTime(0, 0); got != d.LaunchOverhead {
		t.Errorf("empty kernel = %v, want launch overhead %v", got, d.LaunchOverhead)
	}
}

func TestKernelTimeDeviceOrdering(t *testing.T) {
	// The same compute-heavy kernel must be faster on the HD5870 (2.7 TFLOPS)
	// than on the CPU device (42.6 GFLOPS).
	gpu := RadeonHD5870().KernelTime(1e10, 0)
	cpu := CoreI7920().KernelTime(1e10, 0)
	if !(gpu < cpu) {
		t.Errorf("GPU (%v) should beat CPU (%v) on compute-bound kernel", gpu, cpu)
	}
}

func TestFitsWorkGroup(t *testing.T) {
	amd := RadeonHD5870()
	cpu := CoreI7920()
	// The oclSortingNetworks geometry: 512 work-items in x.
	geom := [3]int{512, 1, 1}
	if err := amd.FitsWorkGroup(geom); err == nil {
		t.Error("512-wide group should not fit the AMD GPU (x-limit 256)")
	}
	if err := cpu.FitsWorkGroup(geom); err != nil {
		t.Errorf("512-wide group should fit the CPU device: %v", err)
	}
	if err := amd.FitsWorkGroup([3]int{256, 1, 1}); err != nil {
		t.Errorf("256-wide group should fit the AMD GPU: %v", err)
	}
	// Total-size limit.
	if err := amd.FitsWorkGroup([3]int{256, 2, 1}); err == nil {
		t.Error("512 total work-items should exceed AMD max work-group size 256")
	}
}

func TestStorageModelTimes(t *testing.T) {
	s := StorageModel{Name: "x", Write: 100 * MBps, Read: 200 * MBps, Latency: vtime.Millisecond}
	if got := s.WriteTime(100e6); got != vtime.Second+vtime.Millisecond {
		t.Errorf("WriteTime = %v", got)
	}
	if got := s.ReadTime(200e6); got != vtime.Second+vtime.Millisecond {
		t.Errorf("ReadTime = %v", got)
	}
}

func TestCompileModelAMDSlower(t *testing.T) {
	src := 20_000
	nv := NVIDIACompiler().BuildTime(src, 3)
	amd := AMDCompiler().BuildTime(src, 3)
	if !(amd > nv) {
		t.Errorf("AMD compile (%v) should exceed NVIDIA compile (%v)", amd, nv)
	}
}

func TestTableISpecValues(t *testing.T) {
	s := TableISpec()
	checks := []struct {
		name string
		got  Bandwidth
		want float64 // MB/s
	}{
		{"PCIe HtoD", s.Inter.PCIeHtoD, 5350},
		{"PCIe DtoH", s.Inter.PCIeDtoH, 4870},
		{"local write", s.LocalDisk.Write, 110},
		{"local read", s.LocalDisk.Read, 106},
		{"nfs write", s.NFS.Write, 72.5},
		{"nfs read", s.NFS.Read, 21.2},
		{"ramdisk write", s.RAMDisk.Write, 2881},
		{"ramdisk read", s.RAMDisk.Read, 4800},
	}
	for _, c := range checks {
		if math.Abs(float64(c.got)/1e6-c.want) > 1e-6 {
			t.Errorf("%s = %v, want %.1f MB/s", c.name, c.got, c.want)
		}
	}
	if s.HostMem != 12<<30 {
		t.Errorf("host memory = %d, want 12 GiB", s.HostMem)
	}
	// The paper's measured bandwidth ordering: RAM disk >> PCIe ordering is
	// not required, but disk << PCIe is load-bearing for Fig. 5's analysis.
	if !(s.LocalDisk.Write < s.Inter.PCIeDtoH/10) {
		t.Error("disk write should be far slower than PCIe readback (Fig. 5 premise)")
	}
}

func TestDeviceMemoryOrdering(t *testing.T) {
	// HD5870 has the smallest device memory; the paper notes oclFDTD3d and
	// oclMatVecMul auto-shrink their problems on it.
	if !(RadeonHD5870().GlobalMemory < TeslaC1060().GlobalMemory) {
		t.Error("HD5870 memory should be smaller than C1060")
	}
}
