// Package hw defines the hardware models that parameterise the simulation:
// compute devices (GPUs and CPUs used as OpenCL devices), storage systems,
// interconnects, and whole-system specifications mirroring Table I of the
// CheCL paper.
//
// Every timing model in the repository derives its costs from these
// structures, so reproducing the paper's evaluation on a different
// "machine" is a matter of constructing a different SystemSpec.
package hw

import (
	"fmt"

	"checl/internal/vtime"
)

// Bandwidth is a data rate in bytes per second.
type Bandwidth float64

// Convenience units for constructing Bandwidth values.
const (
	KBps Bandwidth = 1e3
	MBps Bandwidth = 1e6
	GBps Bandwidth = 1e9
)

// GigE is the payload rate of a gigabit-Ethernet link (125 MB/s wire
// rate). It is the single source of truth for the modelled store-to-store
// link: the default replica/heal bandwidth in store tests and the default
// per-shard link rate of the erasure-coded store fleet.
const GigE = 125 * MBps

// Transfer reports the virtual time needed to move n bytes at this rate.
// A zero or negative bandwidth reports zero time (infinitely fast), which
// is used by tests that want to isolate other costs.
func (b Bandwidth) Transfer(n int64) vtime.Duration {
	if b <= 0 || n <= 0 {
		return 0
	}
	return vtime.FromSeconds(float64(n) / float64(b))
}

// DrainMakespan models the completion horizon of a set of concurrent
// device-to-host copy chains: stream i moves streamBytes[i] at bw, the
// chains overlap on the device's DMA engines, and the drain ends when the
// longest chain does. This is the overlapped-copy duration a speculative
// checkpoint epoch hides behind continued kernel execution.
func DrainMakespan(bw Bandwidth, streamBytes []int64) vtime.Duration {
	var makespan vtime.Duration
	for _, n := range streamBytes {
		if d := bw.Transfer(n); d > makespan {
			makespan = d
		}
	}
	return makespan
}

// String formats the bandwidth in the customary MB/s or GB/s.
func (b Bandwidth) String() string {
	switch {
	case b >= GBps:
		return fmt.Sprintf("%.2f GB/s", float64(b)/float64(GBps))
	case b >= MBps:
		return fmt.Sprintf("%.1f MB/s", float64(b)/float64(MBps))
	default:
		return fmt.Sprintf("%.1f KB/s", float64(b)/float64(KBps))
	}
}

// DeviceType distinguishes the two OpenCL device kinds the paper uses.
type DeviceType int

// Device kinds.
const (
	DeviceCPU DeviceType = iota + 1
	DeviceGPU
)

// String names the device type with the OpenCL constant it mirrors.
func (t DeviceType) String() string {
	switch t {
	case DeviceCPU:
		return "CL_DEVICE_TYPE_CPU"
	case DeviceGPU:
		return "CL_DEVICE_TYPE_GPU"
	default:
		return fmt.Sprintf("DeviceType(%d)", int(t))
	}
}

// DeviceModel describes one compute device: its headline rates (used by the
// kernel-execution cost model) and the capability limits that determine
// portability of work-group geometries across devices.
type DeviceModel struct {
	Name         string
	Vendor       string
	Type         DeviceType
	GFLOPS       float64   // peak single-precision rate, GFLOP/s
	MemBandwidth Bandwidth // device (global) memory bandwidth
	GlobalMemory int64     // device memory capacity, bytes

	ComputeUnits     int
	MaxWorkGroupSize int    // total work-items per group
	MaxWorkItemSizes [3]int // per-dimension limits; x-limit differs per device

	// LaunchOverhead is the fixed cost of dispatching one kernel
	// (driver + command-processor latency).
	LaunchOverhead vtime.Duration
}

// SustainedEfficiency is the sustained fraction of peak rates the roofline
// assumes, uniform across devices. It is the single source of truth for
// every consumer that converts peak GFLOPS into achieved GFLOPS — the
// kernel-execution model here and the scheduler's runtime estimator
// (sched.EstimateRuntime) — so the planner and the hardware model cannot
// drift apart.
const SustainedEfficiency = 0.55

// SustainedRate reports the achieved compute rate of the device in
// FLOP/s: the peak derated by SustainedEfficiency. Zero for degenerate
// (zero-GFLOPS) devices.
func (d DeviceModel) SustainedRate() float64 {
	if d.GFLOPS <= 0 {
		return 0
	}
	return d.GFLOPS * 1e9 * SustainedEfficiency
}

// KernelTime models the execution time of a kernel instance that performs
// flops floating-point operations and moves memBytes to/from global
// memory. The device is modelled as a roofline: the kernel is bound by
// whichever of compute or memory traffic takes longer, plus launch
// overhead. SustainedEfficiency derates the peak rates to sustained ones.
func (d DeviceModel) KernelTime(flops float64, memBytes int64) vtime.Duration {
	var compute, memory float64
	if d.GFLOPS > 0 {
		compute = flops / d.SustainedRate()
	}
	if d.MemBandwidth > 0 {
		memory = float64(memBytes) / (float64(d.MemBandwidth) * SustainedEfficiency)
	}
	t := compute
	if memory > t {
		t = memory
	}
	return d.LaunchOverhead + vtime.FromSeconds(t)
}

// FitsWorkGroup reports whether a work-group geometry is legal on this
// device. This is the capability check that makes oclSortingNetworks
// non-portable to the AMD GPU in the paper (x-dimension limit 256 there
// versus 1024 on the CPU device).
func (d DeviceModel) FitsWorkGroup(local [3]int) error {
	total := 1
	for i, n := range local {
		if n <= 0 {
			continue
		}
		if d.MaxWorkItemSizes[i] > 0 && n > d.MaxWorkItemSizes[i] {
			return fmt.Errorf("work-group dimension %d size %d exceeds device limit %d on %s",
				i, n, d.MaxWorkItemSizes[i], d.Name)
		}
		total *= n
	}
	if d.MaxWorkGroupSize > 0 && total > d.MaxWorkGroupSize {
		return fmt.Errorf("work-group size %d exceeds device limit %d on %s",
			total, d.MaxWorkGroupSize, d.Name)
	}
	return nil
}

// StorageModel describes one file-system target for checkpoint files.
type StorageModel struct {
	Name    string
	Write   Bandwidth
	Read    Bandwidth
	Latency vtime.Duration // per-operation fixed cost (open/close/metadata)
}

// WriteTime reports the virtual time to persist n bytes.
func (s StorageModel) WriteTime(n int64) vtime.Duration {
	return s.Latency + s.Write.Transfer(n)
}

// ReadTime reports the virtual time to load n bytes.
func (s StorageModel) ReadTime(n int64) vtime.Duration {
	return s.Latency + s.Read.Transfer(n)
}

// CompileModel parameterises how long a vendor's OpenCL compiler takes to
// build a program from source. The paper observes that AMD's compiler is
// markedly slower than NVIDIA's (Fig. 7), and that S3D's 27 program
// objects make recompilation the dominant restart cost.
type CompileModel struct {
	// Base is charged once per clBuildProgram call.
	Base vtime.Duration
	// PerByte is charged for every byte of program source.
	PerByte vtime.Duration
	// PerKernel is charged for each kernel function in the program.
	PerKernel vtime.Duration
}

// BuildTime reports the modelled compilation time of a program with the
// given source length and kernel count.
func (c CompileModel) BuildTime(sourceBytes int, kernels int) vtime.Duration {
	return c.Base + vtime.Duration(sourceBytes)*c.PerByte + vtime.Duration(kernels)*c.PerKernel
}

// InterconnectModel describes host<->device and host<->host data paths.
type InterconnectModel struct {
	PCIeHtoD Bandwidth // host to device
	PCIeDtoH Bandwidth // device to host
	Memcpy   Bandwidth // host-memory copy rate (process-to-process IPC copies)
	NIC      Bandwidth // node-to-node network
}

// RingModel parameterises the shared-memory ring transport between the
// application and its API proxy: the cost of publishing one fixed-size
// slot, the cacheline-granular polling cost the consumer pays to observe
// it (doorbell-free — no syscall, no wakeup IPI), and the bandwidth of
// the shared arena bulk payloads travel through. One control round trip
// is two publishes plus two polls, so the per-call floor sits far below a
// socket's syscall-bound IPCCallLatency, and large transfers run at
// arena (memory) bandwidth instead of the stream's copy-in/copy-out rate.
type RingModel struct {
	SlotPublish vtime.Duration // write + publish one submission/completion slot
	Poll        vtime.Duration // consumer-side cacheline poll that observes it
	ArenaBW     Bandwidth      // shared-arena bandwidth for bulk payloads
}

// RoundTrip reports the modelled time of one synchronous call moving n
// payload bytes: submit publish + consumer poll, arena transfer, then
// completion publish + producer poll.
func (r RingModel) RoundTrip(n int64) vtime.Duration {
	return 2*r.SlotPublish + 2*r.Poll + r.ArenaBW.Transfer(n)
}

// SystemSpec is a whole evaluation machine: Table I of the paper.
type SystemSpec struct {
	Name      string
	CPU       DeviceModel
	HostMem   int64
	Inter     InterconnectModel
	LocalDisk StorageModel
	NFS       StorageModel
	RAMDisk   StorageModel

	// Ring models the optional shared-memory ring transport to the API
	// proxy (the fast path; the framed stream costs stay in
	// IPCCallLatency/Inter.Memcpy).
	Ring RingModel

	// IPCCallLatency is the fixed one-way cost of forwarding one API call
	// from the application process to its API proxy. Two are charged per
	// round trip. The paper measures ~0.08 s of one-time proxy fork cost
	// and per-call forwarding overheads that dominate call-heavy programs.
	IPCCallLatency vtime.Duration
	// ProxyForkCost is the one-time cost of forking the API proxy when
	// the CheCL shared object is loaded.
	ProxyForkCost vtime.Duration
}
