package hw

import "checl/internal/vtime"

// CodingModel parameterises the CPU cost of the store fleet's systematic
// Reed-Solomon erasure coding. The codec itself is real (GF(256)
// arithmetic over the modelled byte arrays, so shards genuinely
// reconstruct); this model charges its virtual time, exactly like the
// compression stage: rates are expressed as multiply-accumulate bytes
// per second, the unit real SIMD GF(256) kernels are benchmarked in.
type CodingModel struct {
	// Encode is the parity-generation rate. Producing m parity shards
	// over k data shards performs one MAC per data byte per parity
	// shard, so encoding a chunk of dataBytes costs m*dataBytes MACs.
	Encode Bandwidth
	// Reconstruct is the decode-side rate for rebuilding lost shards
	// from any k survivors: one inverted-matrix MAC per surviving byte
	// per rebuilt shard, i.e. lost*dataBytes MACs per chunk.
	Reconstruct Bandwidth
}

// DefaultCoding is in the ballpark of a single core running a
// table-driven GF(256) kernel (no SIMD): a few GB/s of MACs.
func DefaultCoding() CodingModel {
	return CodingModel{
		Encode:      4 * GBps,
		Reconstruct: 2500 * MBps,
	}
}

// EncodeTime reports the modelled time to generate m parity shards for a
// chunk of dataBytes split across k data shards.
func (c CodingModel) EncodeTime(dataBytes int64, k, m int) vtime.Duration {
	if k <= 0 || m <= 0 {
		return 0
	}
	return c.Encode.Transfer(dataBytes * int64(m))
}

// ReconstructTime reports the modelled time to rebuild lost shards of a
// chunk of dataBytes from k survivors.
func (c CodingModel) ReconstructTime(dataBytes int64, k, lost int) vtime.Duration {
	if k <= 0 || lost <= 0 {
		return 0
	}
	return c.Reconstruct.Transfer(dataBytes * int64(lost))
}
