package core

import (
	"checl/internal/ocl"
	"checl/internal/proxy"
)

// Info-query wrappers. These perform the *reverse* of the usual handle
// translation: a query like clGetKernelInfo(CL_KERNEL_PROGRAM) returns a
// handle, and the application must receive the CheCL handle — not the
// real one — or it would hold a value CheCL cannot rebind after restart.
// CheCL answers the handle-valued fields from its own object database and
// forwards the rest.

// GetMemObjectInfo wraps clGetMemObjectInfo.
func (c *CheCL) GetMemObjectInfo(h ocl.Mem) (ocl.MemObjectInfo, error) {
	c.enterCall()
	rec, err := c.db.mem(Handle(h))
	if err != nil {
		return ocl.MemObjectInfo{}, err
	}
	var info ocl.MemObjectInfo
	err = c.forward("clGetMemObjectInfo", func(api *proxy.Client) error {
		var e error
		info, e = api.GetMemObjectInfo(rec.real)
		return e
	})
	if err != nil {
		return ocl.MemObjectInfo{}, err
	}
	info.Context = ocl.Context(rec.Ctx)
	info.RefCount = rec.Refs
	// Flags are reported as the application requested them, including
	// CL_MEM_USE_HOST_PTR, which CheCL strips before forwarding.
	info.Flags = rec.Flags
	return info, nil
}

// GetKernelInfo wraps clGetKernelInfo.
func (c *CheCL) GetKernelInfo(h ocl.Kernel) (ocl.KernelInfo, error) {
	c.enterCall()
	rec, err := c.db.kernel(Handle(h))
	if err != nil {
		return ocl.KernelInfo{}, err
	}
	var info ocl.KernelInfo
	err = c.forward("clGetKernelInfo", func(api *proxy.Client) error {
		var e error
		info, e = api.GetKernelInfo(rec.real)
		return e
	})
	if err != nil {
		return ocl.KernelInfo{}, err
	}
	info.Program = ocl.Program(rec.Prog)
	info.RefCount = rec.Refs
	if prec, perr := c.db.program(rec.Prog); perr == nil {
		info.Context = ocl.Context(prec.Ctx)
	}
	return info, nil
}

// GetContextInfo wraps clGetContextInfo.
func (c *CheCL) GetContextInfo(h ocl.Context) (ocl.ContextInfo, error) {
	c.enterCall()
	rec, err := c.db.context(Handle(h))
	if err != nil {
		return ocl.ContextInfo{}, err
	}
	var info ocl.ContextInfo
	err = c.forward("clGetContextInfo", func(api *proxy.Client) error {
		var e error
		info, e = api.GetContextInfo(rec.real)
		return e
	})
	if err != nil {
		return ocl.ContextInfo{}, err
	}
	devs := make([]ocl.DeviceID, len(rec.Devices))
	for i, dh := range rec.Devices {
		devs[i] = ocl.DeviceID(dh)
	}
	info.Devices = devs
	info.RefCount = rec.Refs
	return info, nil
}

// GetCommandQueueInfo wraps clGetCommandQueueInfo.
func (c *CheCL) GetCommandQueueInfo(h ocl.CommandQueue) (ocl.CommandQueueInfo, error) {
	c.enterCall()
	rec, err := c.db.queue(Handle(h))
	if err != nil {
		return ocl.CommandQueueInfo{}, err
	}
	var info ocl.CommandQueueInfo
	err = c.forward("clGetCommandQueueInfo", func(api *proxy.Client) error {
		var e error
		info, e = api.GetCommandQueueInfo(rec.real)
		return e
	})
	if err != nil {
		return ocl.CommandQueueInfo{}, err
	}
	info.Context = ocl.Context(rec.Ctx)
	info.Device = ocl.DeviceID(rec.Device)
	info.RefCount = rec.Refs
	return info, nil
}

// GetKernelWorkGroupInfo wraps clGetKernelWorkGroupInfo. The answer
// depends only on the (kernel, device) pair for the life of the current
// binding, so it is cached; a rebind invalidates the cache because the
// kernel may land on different hardware.
func (c *CheCL) GetKernelWorkGroupInfo(h ocl.Kernel, d ocl.DeviceID) (ocl.KernelWorkGroupInfo, error) {
	c.enterCall()
	krec, err := c.db.kernel(Handle(h))
	if err != nil {
		return ocl.KernelWorkGroupInfo{}, err
	}
	drec, err := c.db.device(Handle(d))
	if err != nil {
		return ocl.KernelWorkGroupInfo{}, err
	}
	key := wgInfoKey{kernel: krec.H, dev: drec.H}
	if info, ok := c.db.wgInfo[key]; ok {
		c.db.cacheHits++
		return info, nil
	}
	var info ocl.KernelWorkGroupInfo
	err = c.forward("clGetKernelWorkGroupInfo", func(api *proxy.Client) error {
		var e error
		info, e = api.GetKernelWorkGroupInfo(krec.real, drec.real)
		return e
	})
	if err == nil {
		if c.db.wgInfo == nil {
			c.db.wgInfo = map[wgInfoKey]ocl.KernelWorkGroupInfo{}
		}
		c.db.wgInfo[key] = info
	}
	return info, err
}
