package core

import "checl/internal/ocl"

// Info-query wrappers. These perform the *reverse* of the usual handle
// translation: a query like clGetKernelInfo(CL_KERNEL_PROGRAM) returns a
// handle, and the application must receive the CheCL handle — not the
// real one — or it would hold a value CheCL cannot rebind after restart.
// CheCL answers the handle-valued fields from its own object database and
// forwards the rest.

// GetMemObjectInfo wraps clGetMemObjectInfo.
func (c *CheCL) GetMemObjectInfo(h ocl.Mem) (ocl.MemObjectInfo, error) {
	c.enterCall()
	rec, err := c.db.mem(Handle(h))
	if err != nil {
		return ocl.MemObjectInfo{}, err
	}
	info, err := c.px.Client.GetMemObjectInfo(rec.real)
	if err != nil {
		return ocl.MemObjectInfo{}, err
	}
	info.Context = ocl.Context(rec.Ctx)
	info.RefCount = rec.Refs
	// Flags are reported as the application requested them, including
	// CL_MEM_USE_HOST_PTR, which CheCL strips before forwarding.
	info.Flags = rec.Flags
	return info, nil
}

// GetKernelInfo wraps clGetKernelInfo.
func (c *CheCL) GetKernelInfo(h ocl.Kernel) (ocl.KernelInfo, error) {
	c.enterCall()
	rec, err := c.db.kernel(Handle(h))
	if err != nil {
		return ocl.KernelInfo{}, err
	}
	info, err := c.px.Client.GetKernelInfo(rec.real)
	if err != nil {
		return ocl.KernelInfo{}, err
	}
	info.Program = ocl.Program(rec.Prog)
	info.RefCount = rec.Refs
	if prec, perr := c.db.program(rec.Prog); perr == nil {
		info.Context = ocl.Context(prec.Ctx)
	}
	return info, nil
}

// GetContextInfo wraps clGetContextInfo.
func (c *CheCL) GetContextInfo(h ocl.Context) (ocl.ContextInfo, error) {
	c.enterCall()
	rec, err := c.db.context(Handle(h))
	if err != nil {
		return ocl.ContextInfo{}, err
	}
	info, err := c.px.Client.GetContextInfo(rec.real)
	if err != nil {
		return ocl.ContextInfo{}, err
	}
	devs := make([]ocl.DeviceID, len(rec.Devices))
	for i, dh := range rec.Devices {
		devs[i] = ocl.DeviceID(dh)
	}
	info.Devices = devs
	info.RefCount = rec.Refs
	return info, nil
}

// GetCommandQueueInfo wraps clGetCommandQueueInfo.
func (c *CheCL) GetCommandQueueInfo(h ocl.CommandQueue) (ocl.CommandQueueInfo, error) {
	c.enterCall()
	rec, err := c.db.queue(Handle(h))
	if err != nil {
		return ocl.CommandQueueInfo{}, err
	}
	info, err := c.px.Client.GetCommandQueueInfo(rec.real)
	if err != nil {
		return ocl.CommandQueueInfo{}, err
	}
	info.Context = ocl.Context(rec.Ctx)
	info.Device = ocl.DeviceID(rec.Device)
	info.RefCount = rec.Refs
	return info, nil
}

// GetKernelWorkGroupInfo wraps clGetKernelWorkGroupInfo.
func (c *CheCL) GetKernelWorkGroupInfo(h ocl.Kernel, d ocl.DeviceID) (ocl.KernelWorkGroupInfo, error) {
	c.enterCall()
	krec, err := c.db.kernel(Handle(h))
	if err != nil {
		return ocl.KernelWorkGroupInfo{}, err
	}
	drec, err := c.db.device(Handle(d))
	if err != nil {
		return ocl.KernelWorkGroupInfo{}, err
	}
	return c.px.Client.GetKernelWorkGroupInfo(krec.real, drec.real)
}
