package core

import (
	"encoding/binary"
	"fmt"

	"checl/internal/clc"
	"checl/internal/cpr"
	"checl/internal/hw"
	"checl/internal/ipc"
	"checl/internal/ocl"
	"checl/internal/proc"
	"checl/internal/proxy"
	"checl/internal/vtime"
)

// Mode selects when a signalled checkpoint is taken (§III-C).
type Mode int

// Checkpoint trigger modes.
const (
	// Immediate: the checkpoint (including a forced synchronisation) runs
	// at the next intercepted API call after the signal.
	Immediate Mode = iota
	// Delayed: the checkpoint is postponed to the next natural
	// synchronisation point (clFinish, clWaitForEvents, a blocking
	// transfer), avoiding the extra synchronisation overhead.
	Delayed
)

func (m Mode) String() string {
	if m == Delayed {
		return "delayed"
	}
	return "immediate"
}

// Options configures a CheCL attachment.
type Options struct {
	// VendorName selects the installed OpenCL implementation by platform
	// vendor string; empty selects the node's first installed vendor.
	VendorName string
	// PreferDeviceType biases device selection at restore time (runtime
	// processor selection, §IV-C); zero keeps the original device types.
	PreferDeviceType hw.DeviceType
	// Mode is the checkpoint trigger mode.
	Mode Mode
	// Backend is the underlying conventional CPR system (default BLCR).
	Backend cpr.Backend
	// Incremental enables the future-work incremental object
	// checkpointing (§III-D): only buffers possibly written since the
	// previous checkpoint are re-staged and re-written.
	Incremental bool
	// CkptFS/CkptPath are the destination of signal-triggered checkpoints.
	CkptFS   *proc.FS
	CkptPath string
	// Destructive enables the CheCUDA-style ablation: all OpenCL objects
	// are deleted before the dump and recreated after it, instead of
	// being kept alive in the proxy.
	Destructive bool
	// Shadow selects the shadow-buffer policy that bounds what a proxy
	// crash loses (see ShadowPolicy).
	Shadow ShadowPolicy
	// AutoFailover makes an unrecoverable proxy connection error spawn a
	// fresh proxy, rebind every object, and re-issue the interrupted call
	// instead of surfacing the error.
	AutoFailover bool
	// Fault injects transport faults on the app<->proxy connection
	// (testing and the proxy-crash ablation).
	Fault *ipc.FaultInjector
	// CallTimeout is the per-call virtual deadline on proxy calls; a call
	// exceeding it counts as a down connection. 0 disables.
	CallTimeout vtime.Duration
	// Retry bounds the proxy client's reconnect-and-retry loop; zero
	// fields fall back to proxy.DefaultRetryPolicy.
	Retry proxy.RetryPolicy
	// Transport selects the app<->proxy transport. The default (pipe) and
	// unix-socket variants carry framed gob RPC; proxy.TransportRing is
	// the shared-memory ring: SPSC submission/completion queues, posted
	// (zero-round-trip) enqueue-class calls settled at sync points, and
	// zero-copy bulk reads. Fault plans behave identically on either.
	Transport proxy.Transport
	// BatchEnqueues pipelines the hot path: clSetKernelArg and the
	// fire-and-forget clEnqueue* calls are coalesced into one IPC frame,
	// flushed at the next synchronisation point (clFinish, any read,
	// clWaitForEvents, a blocking write, an object release, a checkpoint
	// drain). A batched command's error is delivered at the flush as a
	// *BatchError attributing the originating call.
	BatchEnqueues bool
	// DrainWorkers bounds the checkpoint preprocess parallelism: dirty
	// buffers are drained over that many concurrent device-to-host
	// streams per context (ephemeral queues inside one batched IPC
	// frame). Values <= 1 keep the serial per-buffer drain.
	DrainWorkers int
	// OverlapStoreWrite releases the application after the copy phase of
	// a delayed-mode store checkpoint: the chunk/compress/write pipeline
	// runs in the background while the application continues, and the
	// next checkpoint (or WaitBackgroundWrite) barriers on it. A failed
	// background write is surfaced as CheckpointStats.BackgroundErr on
	// the next checkpoint and forces that checkpoint to re-stage every
	// buffer. Only effective with Mode == Delayed and a non-destructive
	// store checkpoint.
	OverlapStoreWrite bool
	// SpeculativeDrain overlaps the checkpoint preprocess with continued
	// execution (stop-free checkpointing): a checkpoint signal opens an
	// epoch that starts copying the dirty set on the DrainWorkers streams
	// without quiescing the queues; kernels launched during the epoch run
	// normally and their clc write-sets validate the in-flight copies.
	// At commit (the delayed checkpoint's sync point) violated buffers
	// are re-copied — bounded retries, then a short stop-drain for the
	// residue — so the image stays bit-identical to a stop-drain's.
	// Most effective with Mode == Delayed; a fault mid-epoch aborts the
	// epoch deterministically and the checkpoint falls back to the
	// ordinary stop-drain.
	SpeculativeDrain bool
}

// CheCL is one attached instance of the tool: it implements ocl.API for
// the application while maintaining the CheCL object database.
type CheCL struct {
	app     *proc.Process
	opts    Options
	px      *proxy.Proxy
	db      *database
	pending bool // a signalled checkpoint is waiting (delayed mode)

	inFailover bool // a failover rebind is running; don't recurse
	fstats     FailoverStats
	lastCkpt   *CheckpointStats
	bg         *bgWrite // in-flight overlapped store write, nil when none

	// Deferred commands awaiting the next synchronisation-point flush
	// (Options.BatchEnqueues).
	batch      []*pendingCmd
	batchBytes int64

	// Speculative checkpoint epoch (Options.SpeculativeDrain): the
	// in-flight overlapped drain, its sequence counter, the reason the
	// last epoch aborted (surfaced on the next checkpoint's stats), and
	// the cumulative checkpoint-stall accounting.
	epoch        *specEpoch
	epochSeq     uint64
	epochAborted string
	stall        vtime.StallTracker

	// specReviolate is a test seam: after retry-ladder pass n the
	// returned handles are re-flagged violated, modelling a producer that
	// keeps touching buffers between validation passes.
	specReviolate func(pass int) []Handle
}

var _ ocl.API = (*CheCL)(nil)

// Attach interposes CheCL on an application process: it forks the API
// proxy for the selected vendor and returns the API the application should
// use. This is what dynamically loading the CheCL libOpenCL.so does in the
// paper.
func Attach(app *proc.Process, opts Options) (*CheCL, error) {
	if opts.Backend == nil {
		opts.Backend = cpr.BLCR{}
	}
	vendor, err := selectVendor(app.Node(), opts.VendorName)
	if err != nil {
		return nil, err
	}
	c := &CheCL{app: app, opts: opts, db: newDatabase()}
	px, err := proxy.SpawnWithOptions(app, vendor, c.spawnOpts())
	if err != nil {
		return nil, err
	}
	c.px = px
	return c, nil
}

func selectVendor(node *proc.Node, name string) (*ocl.Vendor, error) {
	if name == "" {
		if len(node.Vendors) == 0 {
			return nil, fmt.Errorf("checl: node %s has no OpenCL implementation installed", node.Name)
		}
		return node.Vendors[0], nil
	}
	v := node.Vendor(name)
	if v == nil {
		return nil, fmt.Errorf("checl: node %s has no OpenCL implementation by %q", node.Name, name)
	}
	return v, nil
}

// Proxy exposes the running API proxy (tests and tooling).
func (c *CheCL) Proxy() *proxy.Proxy { return c.px }

// App returns the application process CheCL is attached to.
func (c *CheCL) App() *proc.Process { return c.app }

// Options returns the attachment options.
func (c *CheCL) Options() Options { return c.opts }

// LastCheckpoint returns statistics of the most recent checkpoint, or nil.
func (c *CheCL) LastCheckpoint() *CheckpointStats { return c.lastCkpt }

// ObjectCounts reports live CheCL objects per class.
func (c *CheCL) ObjectCounts() map[string]int { return c.db.Counts() }

// CacheStats describes the immutable-info caches: how many round trips
// they have absorbed and how many times they have been invalidated by a
// rebind (restart, failover, destructive checkpoint, processor
// re-selection).
type CacheStats struct {
	Gen  uint64 // invalidation generation
	Hits uint64 // round trips served from the object database
}

// CacheStats reports the info-cache counters.
func (c *CheCL) CacheStats() CacheStats {
	return CacheStats{Gen: c.db.cacheGen, Hits: c.db.cacheHits}
}

// Detach kills the API proxy. The application process survives.
func (c *CheCL) Detach() {
	// Best-effort settle of posted transport submissions: their handlers
	// run before the proxy dies, keeping teardown deterministic.
	_ = c.px.Client.SettlePosted()
	c.px.Kill()
}

// handleToBytes encodes a handle the way it crosses clSetKernelArg.
func handleToBytes(h uint64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, h)
	return b
}

// enterCall runs at every intercepted API call: it polls for checkpoint
// signals and, in immediate mode, takes the checkpoint before the call
// proceeds.
func (c *CheCL) enterCall() {
	for {
		sig, ok := c.app.PollSignal()
		if !ok {
			break
		}
		if sig == proc.SIGUSR1 {
			c.pending = true
		}
	}
	if c.pending && c.opts.Mode == Delayed && c.opts.SpeculativeDrain && c.epoch == nil {
		// Stop-free checkpointing: the epoch opens at signal receipt and
		// the overlapped drain runs while the application keeps going
		// until the delayed checkpoint fires at the next sync point. A
		// failed begin is not fatal — the checkpoint stop-drains instead.
		if err := c.BeginCheckpointEpoch(); err != nil {
			c.epochAborted = fmt.Sprintf("epoch begin: %v", err)
		}
	}
	if c.pending && c.opts.Mode == Immediate {
		c.triggerCheckpoint()
	}
}

// atSyncPoint runs after synchronisation calls; in delayed mode this is
// where a pending checkpoint fires (§III-C).
func (c *CheCL) atSyncPoint() {
	if c.pending && c.opts.Mode == Delayed {
		c.triggerCheckpoint()
	}
}

func (c *CheCL) triggerCheckpoint() {
	c.pending = false
	if c.opts.CkptFS == nil || c.opts.CkptPath == "" {
		return // nowhere configured to write; drop the request
	}
	st, err := c.Checkpoint(c.opts.CkptFS, c.opts.CkptPath)
	if err == nil {
		c.lastCkpt = &st
	}
}

// ---- platform & device wrappers ----

// GetPlatformIDs wraps clGetPlatformIDs, returning CheCL platform handles.
// The platform list is immutable for the life of a binding, so repeat
// calls are answered from the object database without a round trip; a
// restart or failover rebind invalidates the cache.
func (c *CheCL) GetPlatformIDs() ([]ocl.PlatformID, error) {
	c.enterCall()
	if c.db.platformList != nil {
		c.db.cacheHits++
		return append([]ocl.PlatformID(nil), c.db.platformList...), nil
	}
	var out []ocl.PlatformID
	err := c.forward("clGetPlatformIDs", func(api *proxy.Client) error {
		real, err := api.GetPlatformIDs()
		if err != nil {
			return err
		}
		out = make([]ocl.PlatformID, len(real))
		for i, rp := range real {
			rec := c.findPlatformByReal(rp)
			if rec == nil {
				info, err := api.GetPlatformInfo(rp)
				if err != nil {
					return err
				}
				rec = &platformRec{H: c.db.newHandle(hPlatform), Seq: c.db.seq, real: rp, Info: info}
				c.db.platforms[rec.H] = rec
			}
			out[i] = ocl.PlatformID(rec.H)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	c.db.platformList = append([]ocl.PlatformID(nil), out...)
	return out, nil
}

func (c *CheCL) findPlatformByReal(rp ocl.PlatformID) *platformRec {
	for _, r := range c.db.platforms {
		if r.real == rp {
			return r
		}
	}
	return nil
}

// GetPlatformInfo wraps clGetPlatformInfo. The info was captured when
// the platform was discovered and is refreshed by every rebind, so it
// is served from the object database without a round trip.
func (c *CheCL) GetPlatformInfo(p ocl.PlatformID) (ocl.PlatformInfo, error) {
	c.enterCall()
	rec, err := c.db.platform(Handle(p))
	if err != nil {
		return ocl.PlatformInfo{}, err
	}
	c.db.cacheHits++
	return rec.Info, nil
}

// GetDeviceIDs wraps clGetDeviceIDs, returning CheCL device handles.
// The per-(platform, mask) result is cached: the node's device set is
// immutable for the life of a binding, and a restart or failover rebind
// — which may land on different hardware — invalidates the cache.
func (c *CheCL) GetDeviceIDs(p ocl.PlatformID, mask ocl.DeviceTypeMask) ([]ocl.DeviceID, error) {
	c.enterCall()
	prec, err := c.db.platform(Handle(p))
	if err != nil {
		return nil, err
	}
	key := deviceListKey{platform: prec.H, mask: mask}
	if cached, ok := c.db.deviceLists[key]; ok {
		c.db.cacheHits++
		return append([]ocl.DeviceID(nil), cached...), nil
	}
	var out []ocl.DeviceID
	err = c.forward("clGetDeviceIDs", func(api *proxy.Client) error {
		real, err := api.GetDeviceIDs(prec.real, mask)
		if err != nil {
			return err
		}
		out = make([]ocl.DeviceID, len(real))
		for i, rd := range real {
			rec := c.findDeviceByReal(rd)
			if rec == nil {
				info, err := api.GetDeviceInfo(rd)
				if err != nil {
					return err
				}
				rec = &deviceRec{H: c.db.newHandle(hDevice), Seq: c.db.seq, Platform: prec.H, real: rd, Info: info}
				c.db.devices[rec.H] = rec
			}
			out[i] = ocl.DeviceID(rec.H)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if c.db.deviceLists == nil {
		c.db.deviceLists = map[deviceListKey][]ocl.DeviceID{}
	}
	c.db.deviceLists[key] = append([]ocl.DeviceID(nil), out...)
	return out, nil
}

func (c *CheCL) findDeviceByReal(rd ocl.DeviceID) *deviceRec {
	for _, r := range c.db.devices {
		if r.real == rd {
			return r
		}
	}
	return nil
}

// GetDeviceInfo wraps clGetDeviceInfo. Like platform info, the device
// info was captured at discovery and is refreshed by every rebind, so
// it is served from the object database without a round trip.
func (c *CheCL) GetDeviceInfo(d ocl.DeviceID) (ocl.DeviceInfo, error) {
	c.enterCall()
	rec, err := c.db.device(Handle(d))
	if err != nil {
		return ocl.DeviceInfo{}, err
	}
	c.db.cacheHits++
	return rec.Info, nil
}

// ---- context wrappers ----

// CreateContext wraps clCreateContext: the devices are CheCL handles and
// are translated before forwarding; the returned handle is a CheCL handle.
func (c *CheCL) CreateContext(devices []ocl.DeviceID) (ocl.Context, error) {
	c.enterCall()
	drecs := make([]*deviceRec, len(devices))
	hs := make([]Handle, len(devices))
	for i, d := range devices {
		rec, err := c.db.device(Handle(d))
		if err != nil {
			return 0, err
		}
		drecs[i] = rec
		hs[i] = rec.H
	}
	var real ocl.Context
	err := c.forward("clCreateContext", func(api *proxy.Client) error {
		realDevs := make([]ocl.DeviceID, len(drecs))
		for i, rec := range drecs {
			realDevs[i] = rec.real
		}
		var e error
		real, e = api.CreateContext(realDevs)
		return e
	})
	if err != nil {
		return 0, err
	}
	rec := &contextRec{H: c.db.newHandle(hContext), Seq: c.db.seq, Devices: hs, Refs: 1, real: real}
	c.db.contexts[rec.H] = rec
	return ocl.Context(rec.H), nil
}

// RetainContext wraps clRetainContext.
func (c *CheCL) RetainContext(h ocl.Context) error {
	c.enterCall()
	rec, err := c.db.context(Handle(h))
	if err != nil {
		return err
	}
	if err := c.forward("clRetainContext", func(api *proxy.Client) error {
		return api.RetainContext(rec.real)
	}); err != nil {
		return err
	}
	rec.Refs++
	return nil
}

// ReleaseContext wraps clReleaseContext. Releases drain the batch
// first: a deferred command may reference the object being released.
func (c *CheCL) ReleaseContext(h ocl.Context) error {
	c.enterCall()
	if err := c.flushBatch(); err != nil {
		return err
	}
	rec, err := c.db.context(Handle(h))
	if err != nil {
		return err
	}
	if err := c.forward("clReleaseContext", func(api *proxy.Client) error {
		return api.ReleaseContext(rec.real)
	}); err != nil {
		return err
	}
	rec.Refs--
	if rec.Refs <= 0 {
		delete(c.db.contexts, rec.H)
	}
	return nil
}

// ---- queue wrappers ----

// CreateCommandQueue wraps clCreateCommandQueue.
func (c *CheCL) CreateCommandQueue(ctx ocl.Context, d ocl.DeviceID, props ocl.QueueProps) (ocl.CommandQueue, error) {
	c.enterCall()
	crec, err := c.db.context(Handle(ctx))
	if err != nil {
		return 0, err
	}
	drec, err := c.db.device(Handle(d))
	if err != nil {
		return 0, err
	}
	var real ocl.CommandQueue
	err = c.forward("clCreateCommandQueue", func(api *proxy.Client) error {
		var e error
		real, e = api.CreateCommandQueue(crec.real, drec.real, props)
		return e
	})
	if err != nil {
		return 0, err
	}
	rec := &queueRec{H: c.db.newHandle(hQueue), Seq: c.db.seq, Ctx: crec.H, Device: drec.H, Props: props, Refs: 1, real: real}
	c.db.queues[rec.H] = rec
	return ocl.CommandQueue(rec.H), nil
}

// RetainCommandQueue wraps clRetainCommandQueue.
func (c *CheCL) RetainCommandQueue(h ocl.CommandQueue) error {
	c.enterCall()
	rec, err := c.db.queue(Handle(h))
	if err != nil {
		return err
	}
	if err := c.forward("clRetainCommandQueue", func(api *proxy.Client) error {
		return api.RetainCommandQueue(rec.real)
	}); err != nil {
		return err
	}
	rec.Refs++
	return nil
}

// ReleaseCommandQueue wraps clReleaseCommandQueue.
func (c *CheCL) ReleaseCommandQueue(h ocl.CommandQueue) error {
	c.enterCall()
	if err := c.flushBatch(); err != nil {
		return err
	}
	rec, err := c.db.queue(Handle(h))
	if err != nil {
		return err
	}
	if err := c.forward("clReleaseCommandQueue", func(api *proxy.Client) error {
		return api.ReleaseCommandQueue(rec.real)
	}); err != nil {
		return err
	}
	rec.Refs--
	if rec.Refs <= 0 {
		delete(c.db.queues, rec.H)
	}
	return nil
}

// ---- buffer wrappers ----

// CreateBuffer wraps clCreateBuffer. For CL_MEM_USE_HOST_PTR the host
// slice is remembered so kernel launches can emulate the caching protocol
// (§III-D) across the proxy boundary.
func (c *CheCL) CreateBuffer(ctx ocl.Context, flags ocl.MemFlags, size int64, hostData []byte) (ocl.Mem, error) {
	c.enterCall()
	crec, err := c.db.context(Handle(ctx))
	if err != nil {
		return 0, err
	}
	// CL_MEM_USE_HOST_PTR cannot alias across the proxy process boundary:
	// CheCL validates the host region itself, forwards the buffer with
	// copy semantics, and emulates the caching protocol around every
	// kernel launch (§III-D).
	useHost := flags&ocl.MemUseHostPtr != 0
	fwdFlags := flags
	if useHost {
		if hostData == nil || int64(len(hostData)) < size {
			return 0, ocl.Errf("clCreateBuffer", ocl.InvalidValue,
				"CL_MEM_USE_HOST_PTR requires a host region of at least %d bytes", size)
		}
		fwdFlags = (flags &^ ocl.MemUseHostPtr) | ocl.MemCopyHostPtr
	}
	var real ocl.Mem
	err = c.forward("clCreateBuffer", func(api *proxy.Client) error {
		var e error
		real, e = api.CreateBuffer(crec.real, fwdFlags, size, hostData)
		return e
	})
	if err != nil {
		return 0, err
	}
	rec := &memRec{
		H: c.db.newHandle(hMem), Seq: c.db.seq, Ctx: crec.H,
		Flags: flags, Size: size, Refs: 1, Dirty: true,
		UseHostPtr: useHost,
		real:       real,
	}
	if useHost {
		rec.hostPtr = hostData[:size]
	}
	c.shadowSeed(rec, hostData)
	c.db.mems[rec.H] = rec
	return ocl.Mem(rec.H), nil
}

// RetainMemObject wraps clRetainMemObject.
func (c *CheCL) RetainMemObject(h ocl.Mem) error {
	c.enterCall()
	rec, err := c.db.mem(Handle(h))
	if err != nil {
		return err
	}
	if err := c.forward("clRetainMemObject", func(api *proxy.Client) error {
		return api.RetainMemObject(rec.real)
	}); err != nil {
		return err
	}
	rec.Refs++
	return nil
}

// ReleaseMemObject wraps clReleaseMemObject.
func (c *CheCL) ReleaseMemObject(h ocl.Mem) error {
	c.enterCall()
	if err := c.flushBatch(); err != nil {
		return err
	}
	rec, err := c.db.mem(Handle(h))
	if err != nil {
		return err
	}
	if err := c.forward("clReleaseMemObject", func(api *proxy.Client) error {
		return api.ReleaseMemObject(rec.real)
	}); err != nil {
		return err
	}
	rec.Refs--
	if rec.Refs <= 0 {
		// An in-flight speculative copy of a released buffer must never
		// commit: the record either dies or becomes a dead placeholder.
		c.epochDrop(rec.H)
		if c.memReferenced(rec.H) {
			// A live kernel still binds this buffer: the record must stay
			// so clSetKernelArg replay works after a restore. It becomes a
			// dead record — its contents are gone with the release, so the
			// checkpoint preprocess must never stage it again.
			rec.Released = true
			rec.Data = nil
			rec.Dirty = false
			rec.UseHostPtr = false
			rec.hostPtr = nil
		} else {
			delete(c.db.mems, rec.H)
		}
	}
	return nil
}

// memReferenced reports whether any live kernel's recorded argument still
// carries the mem handle h.
func (c *CheCL) memReferenced(h Handle) bool {
	for _, k := range c.db.kernels {
		for _, a := range k.Args {
			if a.Set && !a.Local && len(a.Raw) == 8 &&
				Handle(binary.LittleEndian.Uint64(a.Raw)) == h {
				return true
			}
		}
	}
	return false
}

// ---- sampler wrappers ----

// CreateSampler wraps clCreateSampler.
func (c *CheCL) CreateSampler(ctx ocl.Context, normalized bool, am ocl.AddressingMode, fm ocl.FilterMode) (ocl.Sampler, error) {
	c.enterCall()
	crec, err := c.db.context(Handle(ctx))
	if err != nil {
		return 0, err
	}
	var real ocl.Sampler
	err = c.forward("clCreateSampler", func(api *proxy.Client) error {
		var e error
		real, e = api.CreateSampler(crec.real, normalized, am, fm)
		return e
	})
	if err != nil {
		return 0, err
	}
	rec := &samplerRec{
		H: c.db.newHandle(hSampler), Seq: c.db.seq, Ctx: crec.H,
		Normalized: normalized, AMode: am, FMode: fm, Refs: 1, real: real,
	}
	c.db.samplers[rec.H] = rec
	return ocl.Sampler(rec.H), nil
}

// RetainSampler wraps clRetainSampler.
func (c *CheCL) RetainSampler(h ocl.Sampler) error {
	c.enterCall()
	rec, err := c.db.sampler(Handle(h))
	if err != nil {
		return err
	}
	if err := c.forward("clRetainSampler", func(api *proxy.Client) error {
		return api.RetainSampler(rec.real)
	}); err != nil {
		return err
	}
	rec.Refs++
	return nil
}

// ReleaseSampler wraps clReleaseSampler.
func (c *CheCL) ReleaseSampler(h ocl.Sampler) error {
	c.enterCall()
	if err := c.flushBatch(); err != nil {
		return err
	}
	rec, err := c.db.sampler(Handle(h))
	if err != nil {
		return err
	}
	if err := c.forward("clReleaseSampler", func(api *proxy.Client) error {
		return api.ReleaseSampler(rec.real)
	}); err != nil {
		return err
	}
	rec.Refs--
	if rec.Refs <= 0 {
		delete(c.db.samplers, rec.H)
	}
	return nil
}

// ---- program wrappers ----

// CreateProgramWithSource wraps clCreateProgramWithSource. CheCL parses
// the kernel parameter lists here (the paper does it with Clang) so that
// clSetKernelArg can later distinguish handles from scalars.
func (c *CheCL) CreateProgramWithSource(ctx ocl.Context, source string) (ocl.Program, error) {
	c.enterCall()
	crec, err := c.db.context(Handle(ctx))
	if err != nil {
		return 0, err
	}
	var real ocl.Program
	err = c.forward("clCreateProgramWithSource", func(api *proxy.Client) error {
		var e error
		real, e = api.CreateProgramWithSource(crec.real, source)
		return e
	})
	if err != nil {
		return 0, err
	}
	rec := &programRec{
		H: c.db.newHandle(hProgram), Seq: c.db.seq, Ctx: crec.H,
		Source: source, Refs: 1, real: real,
	}
	if compiled, cerr := clc.Compile(source); cerr == nil {
		rec.Sigs = compiled.Sigs
		rec.WriteSets = writeSets{}
		for _, sig := range compiled.Sigs {
			if ws, ok := compiled.WriteSet(sig.Name); ok {
				rec.WriteSets[sig.Name] = ws
			}
		}
	}
	c.db.programs[rec.H] = rec
	return ocl.Program(rec.H), nil
}

// CreateProgramWithBinary wraps clCreateProgramWithBinary. Its use is
// deprecated under CheCL (§III-D): without source there are no parsed
// signatures, so clSetKernelArg falls back to the address-based heuristic,
// and the recorded binary may be invalid on the restart node.
func (c *CheCL) CreateProgramWithBinary(ctx ocl.Context, d ocl.DeviceID, binaryBlob []byte) (ocl.Program, error) {
	c.enterCall()
	crec, err := c.db.context(Handle(ctx))
	if err != nil {
		return 0, err
	}
	drec, err := c.db.device(Handle(d))
	if err != nil {
		return 0, err
	}
	var real ocl.Program
	err = c.forward("clCreateProgramWithBinary", func(api *proxy.Client) error {
		var e error
		real, e = api.CreateProgramWithBinary(crec.real, drec.real, binaryBlob)
		return e
	})
	if err != nil {
		return 0, err
	}
	rec := &programRec{
		H: c.db.newHandle(hProgram), Seq: c.db.seq, Ctx: crec.H,
		Binary: append([]byte(nil), binaryBlob...), FromBinary: true, Refs: 1, real: real,
	}
	c.db.programs[rec.H] = rec
	return ocl.Program(rec.H), nil
}

// BuildProgram wraps clBuildProgram and records the measured build time —
// the Tr input of the migration-cost model.
func (c *CheCL) BuildProgram(h ocl.Program, options string) error {
	c.enterCall()
	if err := c.flushBatch(); err != nil {
		return err
	}
	rec, err := c.db.program(Handle(h))
	if err != nil {
		return err
	}
	sw := vtime.NewStopwatch(c.app.Clock())
	if err := c.forward("clBuildProgram", func(api *proxy.Client) error {
		return api.BuildProgram(rec.real, options)
	}); err != nil {
		return err
	}
	rec.Built = true
	rec.Options = options
	rec.BuildCost = sw.Elapsed()
	// A rebuild can change the build log: drop this program's cached
	// build-info entries.
	for k := range c.db.buildInfo {
		if k.prog == rec.H {
			delete(c.db.buildInfo, k)
		}
	}
	return nil
}

// GetProgramBuildInfo wraps clGetProgramBuildInfo. The result is cached
// per (program, device): it only changes on a rebuild (which drops the
// entry) or a rebind (which invalidates every cache).
func (c *CheCL) GetProgramBuildInfo(h ocl.Program, d ocl.DeviceID) (ocl.BuildInfo, error) {
	c.enterCall()
	rec, err := c.db.program(Handle(h))
	if err != nil {
		return ocl.BuildInfo{}, err
	}
	drec, err := c.db.device(Handle(d))
	if err != nil {
		return ocl.BuildInfo{}, err
	}
	key := buildInfoKey{prog: rec.H, dev: drec.H}
	if info, ok := c.db.buildInfo[key]; ok {
		c.db.cacheHits++
		return info, nil
	}
	var info ocl.BuildInfo
	err = c.forward("clGetProgramBuildInfo", func(api *proxy.Client) error {
		var e error
		info, e = api.GetProgramBuildInfo(rec.real, drec.real)
		return e
	})
	if err == nil {
		if c.db.buildInfo == nil {
			c.db.buildInfo = map[buildInfoKey]ocl.BuildInfo{}
		}
		c.db.buildInfo[key] = info
	}
	return info, err
}

// GetProgramBinary wraps clGetProgramInfo(CL_PROGRAM_BINARIES).
func (c *CheCL) GetProgramBinary(h ocl.Program) ([]byte, error) {
	c.enterCall()
	rec, err := c.db.program(Handle(h))
	if err != nil {
		return nil, err
	}
	var bin []byte
	err = c.forward("clGetProgramBinary", func(api *proxy.Client) error {
		var e error
		bin, e = api.GetProgramBinary(rec.real)
		return e
	})
	return bin, err
}

// RetainProgram wraps clRetainProgram.
func (c *CheCL) RetainProgram(h ocl.Program) error {
	c.enterCall()
	rec, err := c.db.program(Handle(h))
	if err != nil {
		return err
	}
	if err := c.forward("clRetainProgram", func(api *proxy.Client) error {
		return api.RetainProgram(rec.real)
	}); err != nil {
		return err
	}
	rec.Refs++
	return nil
}

// ReleaseProgram wraps clReleaseProgram.
func (c *CheCL) ReleaseProgram(h ocl.Program) error {
	c.enterCall()
	if err := c.flushBatch(); err != nil {
		return err
	}
	rec, err := c.db.program(Handle(h))
	if err != nil {
		return err
	}
	if err := c.forward("clReleaseProgram", func(api *proxy.Client) error {
		return api.ReleaseProgram(rec.real)
	}); err != nil {
		return err
	}
	rec.Refs--
	if rec.Refs <= 0 {
		delete(c.db.programs, rec.H)
	}
	return nil
}

// ---- kernel wrappers ----

// CreateKernel wraps clCreateKernel.
func (c *CheCL) CreateKernel(p ocl.Program, name string) (ocl.Kernel, error) {
	c.enterCall()
	prec, err := c.db.program(Handle(p))
	if err != nil {
		return 0, err
	}
	var real ocl.Kernel
	err = c.forward("clCreateKernel", func(api *proxy.Client) error {
		var e error
		real, e = api.CreateKernel(prec.real, name)
		return e
	})
	if err != nil {
		return 0, err
	}
	nargs := 0
	if sig, ok := clc.Lookup(prec.Sigs, name); ok {
		nargs = len(sig.Params)
	} else {
		// Program created from binary: the argument count is unknown to
		// CheCL; grow the slot list on demand.
		nargs = 0
	}
	rec := &kernelRec{
		H: c.db.newHandle(hKernel), Seq: c.db.seq, Prog: prec.H,
		Name: name, Args: make([]argRec, nargs), Refs: 1, real: real,
	}
	c.db.kernels[rec.H] = rec
	return ocl.Kernel(rec.H), nil
}

// RetainKernel wraps clRetainKernel.
func (c *CheCL) RetainKernel(h ocl.Kernel) error {
	c.enterCall()
	rec, err := c.db.kernel(Handle(h))
	if err != nil {
		return err
	}
	if err := c.forward("clRetainKernel", func(api *proxy.Client) error {
		return api.RetainKernel(rec.real)
	}); err != nil {
		return err
	}
	rec.Refs++
	return nil
}

// ReleaseKernel wraps clReleaseKernel.
func (c *CheCL) ReleaseKernel(h ocl.Kernel) error {
	c.enterCall()
	if err := c.flushBatch(); err != nil {
		return err
	}
	rec, err := c.db.kernel(Handle(h))
	if err != nil {
		return err
	}
	if err := c.forward("clReleaseKernel", func(api *proxy.Client) error {
		return api.ReleaseKernel(rec.real)
	}); err != nil {
		return err
	}
	rec.Refs--
	if rec.Refs <= 0 {
		delete(c.db.kernels, rec.H)
	}
	return nil
}

// SetKernelArg wraps clSetKernelArg — the call whose (void*, size_t)
// contract required the signature machinery of §III-B. The raw bytes the
// application passed are recorded for restart replay; handle-bearing
// arguments are translated from CheCL to real handle space before
// forwarding.
func (c *CheCL) SetKernelArg(h ocl.Kernel, index int, size int64, value []byte) error {
	c.enterCall()
	rec, err := c.db.kernel(Handle(h))
	if err != nil {
		return err
	}
	prec, err := c.db.program(rec.Prog)
	if err != nil {
		return err
	}
	_, local, err := c.translateArg(prec, rec.Name, index, size, value)
	if err != nil {
		return err
	}
	if c.batching() {
		// The arg set must keep its order relative to deferred launches,
		// so it rides the batch. It was validated above; a runtime-side
		// failure surfaces at the flush.
		raw := append([]byte(nil), value...)
		if err := c.deferCmd(&pendingCmd{
			op: proxy.BatchSetArg, method: "clSetKernelArg",
			k: rec, prog: prec, argIndex: index, argSize: size, argRaw: raw,
		}); err != nil {
			return err
		}
		for index >= len(rec.Args) {
			rec.Args = append(rec.Args, argRec{})
		}
		rec.Args[index] = argRec{Set: true, Size: size, Raw: raw, Local: local}
		return nil
	}
	// translateArg runs inside the closure so a retry after failover picks
	// up the rebound real handles of any mem/sampler argument.
	if err := c.forward("clSetKernelArg", func(api *proxy.Client) error {
		fwd, _, e := c.translateArg(prec, rec.Name, index, size, value)
		if e != nil {
			return e
		}
		return api.SetKernelArg(rec.real, index, size, fwd)
	}); err != nil {
		return err
	}
	for index >= len(rec.Args) {
		rec.Args = append(rec.Args, argRec{})
	}
	rec.Args[index] = argRec{Set: true, Size: size, Raw: append([]byte(nil), value...), Local: local}
	return nil
}

// translateArg converts one clSetKernelArg value from CheCL handle space
// to real handle space. It returns the bytes to forward and whether the
// parameter is a __local size-only argument.
func (c *CheCL) translateArg(prec *programRec, kernel string, index int, size int64, value []byte) ([]byte, bool, error) {
	if sig, ok := clc.Lookup(prec.Sigs, kernel); ok && index < len(sig.Params) {
		switch sig.Params[index].Kind {
		case clc.ParamLocalSize:
			return nil, true, nil
		case clc.ParamMemHandle, clc.ParamImageHandle:
			if size != 8 || len(value) != 8 {
				return nil, false, ocl.Errf("clSetKernelArg", ocl.InvalidArgSize,
					"kernel %s argument %d (%s) is a mem handle and must be 8 bytes",
					kernel, index, sig.Params[index].Name)
			}
			mh := Handle(binary.LittleEndian.Uint64(value))
			mrec, err := c.db.memAny(mh)
			if err != nil {
				return nil, false, err
			}
			return handleToBytes(uint64(mrec.real)), false, nil
		case clc.ParamSamplerHandle:
			if size != 8 || len(value) != 8 {
				return nil, false, ocl.Errf("clSetKernelArg", ocl.InvalidArgSize,
					"kernel %s argument %d is a sampler handle and must be 8 bytes", kernel, index)
			}
			sh := Handle(binary.LittleEndian.Uint64(value))
			srec, err := c.db.sampler(sh)
			if err != nil {
				return nil, false, err
			}
			return handleToBytes(uint64(srec.real)), false, nil
		default:
			return value, false, nil
		}
	}
	// No parsed signature (program from binary): fall back to the
	// address-based heuristic of §III-D — an 8-byte value that matches a
	// live CheCL handle is assumed to BE one. A scalar that happens to
	// collide with a handle value is mis-translated; this is the
	// documented false-positive risk.
	if value == nil {
		return nil, true, nil
	}
	if size == 8 && len(value) == 8 {
		maybe := Handle(binary.LittleEndian.Uint64(value))
		if mrec, ok := c.db.mems[maybe]; ok {
			return handleToBytes(uint64(mrec.real)), false, nil
		}
		if srec, ok := c.db.samplers[maybe]; ok {
			return handleToBytes(uint64(srec.real)), false, nil
		}
	}
	return value, false, nil
}

// ---- enqueue wrappers ----

// translateWaits converts a CheCL event wait list to real events. An
// event with no real handle — a batched command that never executed
// because its batch failed earlier — is skipped: its deferred error was
// already delivered and there is nothing to wait on.
func (c *CheCL) translateWaits(waits []ocl.Event) ([]ocl.Event, error) {
	if len(waits) == 0 {
		return nil, nil
	}
	out := make([]ocl.Event, 0, len(waits))
	for _, w := range waits {
		rec, err := c.db.event(Handle(w))
		if err != nil {
			return nil, err
		}
		if rec.real == 0 {
			continue
		}
		out = append(out, rec.real)
	}
	if len(out) == 0 {
		return nil, nil
	}
	return out, nil
}

// wrapEvent registers a real event and returns its CheCL handle.
func (c *CheCL) wrapEvent(q Handle, kind string, real ocl.Event) ocl.Event {
	rec := &eventRec{H: c.db.newHandle(hEvent), Seq: c.db.seq, Queue: q, Kind: kind, Refs: 1, real: real}
	c.db.events[rec.H] = rec
	return ocl.Event(rec.H)
}

// EnqueueWriteBuffer wraps clEnqueueWriteBuffer.
func (c *CheCL) EnqueueWriteBuffer(q ocl.CommandQueue, m ocl.Mem, blocking bool, offset int64, data []byte, waits []ocl.Event) (ocl.Event, error) {
	c.enterCall()
	qrec, err := c.db.queue(Handle(q))
	if err != nil {
		return 0, err
	}
	mrec, err := c.db.mem(Handle(m))
	if err != nil {
		return 0, err
	}
	if c.batching() {
		ws, err := c.waitHandles(waits)
		if err != nil {
			return 0, err
		}
		mrec.Dirty = true
		c.epochTouch(mrec)
		c.shadowWrite(mrec, offset, data)
		ev := c.pendingEvent(qrec.H, "write")
		if err := c.deferCmd(&pendingCmd{
			op: proxy.BatchWrite, method: "clEnqueueWriteBuffer",
			q: qrec, mem: mrec, blocking: blocking, offset: offset,
			data: append([]byte(nil), data...), waits: ws, ev: ev,
		}); err != nil {
			return 0, err
		}
		if blocking {
			if err := c.flushBatch(); err != nil {
				return 0, err
			}
			c.atSyncPoint()
		}
		return ocl.Event(ev.H), nil
	}
	// The wait list translates inside the closure: after a failover the
	// rebound events are fresh dummy markers, not the stale real handles.
	var real ocl.Event
	err = c.forward("clEnqueueWriteBuffer", func(api *proxy.Client) error {
		rw, e := c.translateWaits(waits)
		if e != nil {
			return e
		}
		real, e = api.EnqueueWriteBuffer(qrec.real, mrec.real, blocking, offset, data, rw)
		return e
	})
	if err != nil {
		return 0, err
	}
	mrec.Dirty = true
	c.epochTouch(mrec)
	c.shadowWrite(mrec, offset, data)
	ev := c.wrapEvent(qrec.H, "write", real)
	if blocking {
		c.atSyncPoint()
	}
	return ev, nil
}

// EnqueueReadBuffer wraps clEnqueueReadBuffer.
func (c *CheCL) EnqueueReadBuffer(q ocl.CommandQueue, m ocl.Mem, blocking bool, offset, size int64, waits []ocl.Event) ([]byte, ocl.Event, error) {
	c.enterCall()
	qrec, err := c.db.queue(Handle(q))
	if err != nil {
		return nil, 0, err
	}
	mrec, err := c.db.mem(Handle(m))
	if err != nil {
		return nil, 0, err
	}
	if c.batching() {
		// Every read is a flush point — its data must come back now — so
		// the read rides the batch as its terminal command and the whole
		// run ships as one frame.
		ws, err := c.waitHandles(waits)
		if err != nil {
			return nil, 0, err
		}
		ev := c.pendingEvent(qrec.H, "read")
		if err := c.deferCmd(&pendingCmd{
			op: proxy.BatchRead, method: "clEnqueueReadBuffer",
			q: qrec, mem: mrec, offset: offset, size: size,
			waits: ws, ev: ev, termRead: true,
		}); err != nil {
			return nil, 0, err
		}
		data, err := c.flushBatchData()
		if err != nil {
			return nil, 0, err
		}
		c.shadowWrite(mrec, offset, data)
		if blocking {
			c.atSyncPoint()
		}
		return data, ocl.Event(ev.H), nil
	}
	var (
		data []byte
		real ocl.Event
	)
	err = c.forward("clEnqueueReadBuffer", func(api *proxy.Client) error {
		rw, e := c.translateWaits(waits)
		if e != nil {
			return e
		}
		data, real, e = api.EnqueueReadBuffer(qrec.real, mrec.real, blocking, offset, size, rw)
		return e
	})
	if err != nil {
		return nil, 0, err
	}
	// A read refreshes our knowledge of the region — fold it into the shadow.
	c.shadowWrite(mrec, offset, data)
	ev := c.wrapEvent(qrec.H, "read", real)
	if blocking {
		c.atSyncPoint()
	}
	return data, ev, nil
}

// EnqueueReadBufferInto is EnqueueReadBuffer with a caller-owned
// destination: when buf has capacity for size bytes the read lands in it
// and the steady state allocates nothing on the client side (the
// returned slice then aliases buf). Batched-enqueue sessions fall back
// to the allocating path — the read data arrives inside the batch frame
// and must be copied out regardless.
func (c *CheCL) EnqueueReadBufferInto(q ocl.CommandQueue, m ocl.Mem, blocking bool, offset, size int64, waits []ocl.Event, buf []byte) ([]byte, ocl.Event, error) {
	if c.batching() {
		data, ev, err := c.EnqueueReadBuffer(q, m, blocking, offset, size, waits)
		if err != nil {
			return nil, 0, err
		}
		if int64(cap(buf)) >= int64(len(data)) {
			buf = buf[:len(data)]
			copy(buf, data)
			return buf, ev, nil
		}
		return data, ev, nil
	}
	c.enterCall()
	qrec, err := c.db.queue(Handle(q))
	if err != nil {
		return nil, 0, err
	}
	mrec, err := c.db.mem(Handle(m))
	if err != nil {
		return nil, 0, err
	}
	var (
		data []byte
		real ocl.Event
	)
	err = c.forward("clEnqueueReadBuffer", func(api *proxy.Client) error {
		rw, e := c.translateWaits(waits)
		if e != nil {
			return e
		}
		data, real, e = api.EnqueueReadBufferInto(qrec.real, mrec.real, blocking, offset, size, rw, buf)
		return e
	})
	if err != nil {
		return nil, 0, err
	}
	c.shadowWrite(mrec, offset, data)
	ev := c.wrapEvent(qrec.H, "read", real)
	if blocking {
		c.atSyncPoint()
	}
	return data, ev, nil
}

// EnqueueCopyBuffer wraps clEnqueueCopyBuffer.
func (c *CheCL) EnqueueCopyBuffer(q ocl.CommandQueue, src, dst ocl.Mem, srcOff, dstOff, size int64, waits []ocl.Event) (ocl.Event, error) {
	c.enterCall()
	qrec, err := c.db.queue(Handle(q))
	if err != nil {
		return 0, err
	}
	srec, err := c.db.mem(Handle(src))
	if err != nil {
		return 0, err
	}
	drec, err := c.db.mem(Handle(dst))
	if err != nil {
		return 0, err
	}
	if c.batching() {
		ws, err := c.waitHandles(waits)
		if err != nil {
			return 0, err
		}
		drec.Dirty = true
		c.epochTouch(drec)
		c.shadowCopy(srec, drec, srcOff, dstOff, size)
		ev := c.pendingEvent(qrec.H, "copy")
		if err := c.deferCmd(&pendingCmd{
			op: proxy.BatchCopy, method: "clEnqueueCopyBuffer",
			q: qrec, src: srec, dst: drec, srcOff: srcOff, dstOff: dstOff, size: size,
			waits: ws, ev: ev,
		}); err != nil {
			return 0, err
		}
		return ocl.Event(ev.H), nil
	}
	var real ocl.Event
	err = c.forward("clEnqueueCopyBuffer", func(api *proxy.Client) error {
		rw, e := c.translateWaits(waits)
		if e != nil {
			return e
		}
		real, e = api.EnqueueCopyBuffer(qrec.real, srec.real, drec.real, srcOff, dstOff, size, rw)
		return e
	})
	if err != nil {
		return 0, err
	}
	drec.Dirty = true
	c.epochTouch(drec)
	c.shadowCopy(srec, drec, srcOff, dstOff, size)
	return c.wrapEvent(qrec.H, "copy", real), nil
}

// EnqueueNDRangeKernel wraps clEnqueueNDRangeKernel. Buffers the kernel
// may write (per the parsed write set, or all bound buffers without one)
// are marked dirty for incremental checkpointing. USE_HOST_PTR buffers get
// the §III-D cache protocol: host copy sent before the launch and written
// back after it.
func (c *CheCL) EnqueueNDRangeKernel(q ocl.CommandQueue, k ocl.Kernel, dims int, offset, global, local [3]int, waits []ocl.Event) (ocl.Event, error) {
	c.enterCall()
	qrec, err := c.db.queue(Handle(q))
	if err != nil {
		return 0, err
	}
	krec, err := c.db.kernel(Handle(k))
	if err != nil {
		return 0, err
	}
	prec, err := c.db.program(krec.Prog)
	if err != nil {
		return 0, err
	}
	boundMems := c.boundMems(prec, krec)
	written := c.writtenMems(prec, krec, boundMems)

	if c.batching() {
		usesHostPtr := false
		for _, mrec := range boundMems {
			if mrec.UseHostPtr && mrec.hostPtr != nil {
				usesHostPtr = true
				break
			}
		}
		if !usesHostPtr {
			ws, err := c.waitHandles(waits)
			if err != nil {
				return 0, err
			}
			ev := c.pendingEvent(qrec.H, "ndrange:"+krec.Name)
			if err := c.deferCmd(&pendingCmd{
				op: proxy.BatchNDRange, method: "clEnqueueNDRangeKernel",
				q: qrec, k: krec, prog: prec,
				dims: dims, goff: offset, global: global, local: local,
				waits: ws, ev: ev,
			}); err != nil {
				return 0, err
			}
			if c.opts.Shadow == ShadowFull {
				// The per-launch readbacks ride the same batch; their data
				// is copied into the shadows at the flush.
				for _, m := range written {
					if err := c.deferCmd(&pendingCmd{
						op: proxy.BatchRead, method: "clEnqueueReadBuffer",
						q: qrec, mem: m, size: m.Size, shadowInto: m,
					}); err != nil {
						return 0, err
					}
				}
			}
			for _, mrec := range written {
				mrec.Dirty = true
				c.epochTouch(mrec)
			}
			return ocl.Event(ev.H), nil
		}
		// USE_HOST_PTR launches need the synchronous §III-D cache
		// protocol; the batch must land first to preserve queue order.
		if err := c.flushBatch(); err != nil {
			return 0, err
		}
	}

	// The whole launch interaction — wait-list translation, USE_HOST_PTR
	// push, the launch itself, the ShadowFull readback, and the
	// USE_HOST_PTR pull — is one atomic retry unit: a proxy crash anywhere
	// inside re-runs it end to end against the rebound handles, so the
	// shadow/host copies always reflect a completed launch.
	var real ocl.Event
	err = c.forward("clEnqueueNDRangeKernel", func(api *proxy.Client) error {
		rw, e := c.translateWaits(waits)
		if e != nil {
			return e
		}
		// USE_HOST_PTR cache protocol: push host copies before launch.
		for _, mrec := range boundMems {
			if mrec.UseHostPtr && mrec.hostPtr != nil {
				if _, e := api.EnqueueWriteBuffer(qrec.real, mrec.real, true, 0, mrec.hostPtr, nil); e != nil {
					return e
				}
			}
		}
		real, e = api.EnqueueNDRangeKernel(qrec.real, krec.real, dims, offset, global, local, rw)
		if e != nil {
			return e
		}
		if e := c.shadowReadback(api, qrec, written); e != nil {
			return e
		}
		// USE_HOST_PTR cache protocol: pull results back after the launch.
		for _, mrec := range boundMems {
			if mrec.UseHostPtr && mrec.hostPtr != nil {
				data, _, e := api.EnqueueReadBuffer(qrec.real, mrec.real, true, 0, mrec.Size, nil)
				if e != nil {
					return e
				}
				copy(mrec.hostPtr, data)
			}
		}
		return nil
	})
	if err != nil {
		return 0, err
	}

	// Dirty marking for incremental checkpointing. A USE_HOST_PTR buffer
	// is dirtied by the cache protocol itself: the pre-launch push makes
	// the device copy track the application-owned host region, which can
	// change without any OpenCL call — so it can never be assumed clean.
	for _, mrec := range written {
		mrec.Dirty = true
		c.epochTouch(mrec)
	}
	for _, mrec := range boundMems {
		if mrec.UseHostPtr {
			mrec.Dirty = true
			c.epochTouch(mrec)
		}
	}
	return c.wrapEvent(qrec.H, "ndrange:"+krec.Name, real), nil
}

// writtenMems resolves the buffers a kernel launch may write: the parsed
// write set when the program source was analysed, else every bound buffer.
func (c *CheCL) writtenMems(prec *programRec, krec *kernelRec, bound []*memRec) []*memRec {
	ws, ok := prec.WriteSets[krec.Name]
	if !ok {
		return bound
	}
	sig, _ := clc.Lookup(prec.Sigs, krec.Name)
	var out []*memRec
	for _, idx := range ws {
		if idx < len(krec.Args) && krec.Args[idx].Set && idx < len(sig.Params) {
			mh := Handle(binary.LittleEndian.Uint64(krec.Args[idx].Raw))
			if mrec, ok := c.db.mems[mh]; ok {
				out = append(out, mrec)
			}
		}
	}
	return out
}

// boundMems resolves the mem records currently bound to handle-bearing
// arguments of the kernel.
func (c *CheCL) boundMems(prec *programRec, krec *kernelRec) []*memRec {
	var out []*memRec
	sig, hasSig := clc.Lookup(prec.Sigs, krec.Name)
	for i, a := range krec.Args {
		if !a.Set || a.Local || len(a.Raw) != 8 {
			continue
		}
		if hasSig && i < len(sig.Params) && !sig.Params[i].Kind.IsHandle() {
			continue
		}
		mh := Handle(binary.LittleEndian.Uint64(a.Raw))
		if mrec, ok := c.db.mems[mh]; ok {
			out = append(out, mrec)
		}
	}
	return out
}

// EnqueueMarker wraps clEnqueueMarker.
func (c *CheCL) EnqueueMarker(q ocl.CommandQueue) (ocl.Event, error) {
	c.enterCall()
	qrec, err := c.db.queue(Handle(q))
	if err != nil {
		return 0, err
	}
	if c.batching() {
		ev := c.pendingEvent(qrec.H, "marker")
		if err := c.deferCmd(&pendingCmd{op: proxy.BatchMarker, method: "clEnqueueMarker", q: qrec, ev: ev}); err != nil {
			return 0, err
		}
		return ocl.Event(ev.H), nil
	}
	var real ocl.Event
	err = c.forward("clEnqueueMarker", func(api *proxy.Client) error {
		var e error
		real, e = api.EnqueueMarker(qrec.real)
		return e
	})
	if err != nil {
		return 0, err
	}
	return c.wrapEvent(qrec.H, "marker", real), nil
}

// EnqueueBarrier wraps clEnqueueBarrier.
func (c *CheCL) EnqueueBarrier(q ocl.CommandQueue) error {
	c.enterCall()
	qrec, err := c.db.queue(Handle(q))
	if err != nil {
		return err
	}
	if c.batching() {
		return c.deferCmd(&pendingCmd{op: proxy.BatchBarrier, method: "clEnqueueBarrier", q: qrec})
	}
	return c.forward("clEnqueueBarrier", func(api *proxy.Client) error {
		return api.EnqueueBarrier(qrec.real)
	})
}

// Flush wraps clFlush.
func (c *CheCL) Flush(q ocl.CommandQueue) error {
	c.enterCall()
	qrec, err := c.db.queue(Handle(q))
	if err != nil {
		return err
	}
	if c.batching() {
		// clFlush promises the queued commands will run: the deferred
		// commands (this flush included) ship now, as one frame.
		if err := c.deferCmd(&pendingCmd{op: proxy.BatchFlush, method: "clFlush", q: qrec}); err != nil {
			return err
		}
		return c.flushBatch()
	}
	return c.forward("clFlush", func(api *proxy.Client) error {
		return api.Flush(qrec.real)
	})
}

// Finish wraps clFinish; it is a synchronisation point for delayed
// checkpointing.
func (c *CheCL) Finish(q ocl.CommandQueue) error {
	c.enterCall()
	qrec, err := c.db.queue(Handle(q))
	if err != nil {
		return err
	}
	if c.batching() {
		// The finish itself rides the batch, so a quiet Finish after a
		// run of deferred enqueues costs exactly one round trip.
		if err := c.deferCmd(&pendingCmd{op: proxy.BatchFinish, method: "clFinish", q: qrec}); err != nil {
			return err
		}
		if err := c.flushBatch(); err != nil {
			return err
		}
		c.atSyncPoint()
		return nil
	}
	if err := c.forward("clFinish", func(api *proxy.Client) error {
		return api.Finish(qrec.real)
	}); err != nil {
		return err
	}
	c.atSyncPoint()
	return nil
}

// WaitForEvents wraps clWaitForEvents; it is a synchronisation point for
// delayed checkpointing.
func (c *CheCL) WaitForEvents(events []ocl.Event) error {
	c.enterCall()
	// An event wait is a synchronisation point: deferred commands (which
	// may include the waited-on ones) must reach the proxy first.
	if err := c.flushBatch(); err != nil {
		return err
	}
	if err := c.forward("clWaitForEvents", func(api *proxy.Client) error {
		rw, e := c.translateWaits(events)
		if e != nil {
			return e
		}
		return api.WaitForEvents(rw)
	}); err != nil {
		return err
	}
	c.atSyncPoint()
	return nil
}

// GetEventProfile wraps clGetEventProfilingInfo.
func (c *CheCL) GetEventProfile(e ocl.Event) (ocl.EventProfile, error) {
	c.enterCall()
	// The event may still be pending in the batch; land it first.
	if err := c.flushBatch(); err != nil {
		return ocl.EventProfile{}, err
	}
	rec, err := c.db.event(Handle(e))
	if err != nil {
		return ocl.EventProfile{}, err
	}
	var prof ocl.EventProfile
	err = c.forward("clGetEventProfilingInfo", func(api *proxy.Client) error {
		var e error
		prof, e = api.GetEventProfile(rec.real)
		return e
	})
	return prof, err
}

// RetainEvent wraps clRetainEvent.
func (c *CheCL) RetainEvent(e ocl.Event) error {
	c.enterCall()
	if err := c.flushBatch(); err != nil {
		return err
	}
	rec, err := c.db.event(Handle(e))
	if err != nil {
		return err
	}
	if err := c.forward("clRetainEvent", func(api *proxy.Client) error {
		return api.RetainEvent(rec.real)
	}); err != nil {
		return err
	}
	rec.Refs++
	return nil
}

// ReleaseEvent wraps clReleaseEvent.
func (c *CheCL) ReleaseEvent(e ocl.Event) error {
	c.enterCall()
	if err := c.flushBatch(); err != nil {
		return err
	}
	rec, err := c.db.event(Handle(e))
	if err != nil {
		return err
	}
	if err := c.forward("clReleaseEvent", func(api *proxy.Client) error {
		return api.ReleaseEvent(rec.real)
	}); err != nil {
		return err
	}
	rec.Refs--
	if rec.Refs <= 0 {
		delete(c.db.events, rec.H)
	}
	return nil
}
