package core

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"testing"

	"checl/internal/apps"
	"checl/internal/ipc"
	"checl/internal/ocl"
)

// faultKillPlan is the seeded "kill the proxy every K calls" mix: every
// connection-kill position plus full proxy crashes.
func faultKillPlan(seed uint64, everyN int) ipc.FaultPlan {
	return ipc.FaultPlan{
		Seed:      seed,
		EveryN:    everyN,
		SkipFirst: 4,
		Kinds: []ipc.FaultKind{
			ipc.FaultKillBeforeRequest,
			ipc.FaultKillMidRequest,
			ipc.FaultKillBeforeResponse,
			ipc.FaultKillBetween,
			ipc.FaultKillMidResponse,
			ipc.FaultCrashServer,
		},
	}
}

// TestFailoverTransparentVadd crashes the proxy process repeatedly under a
// small application: with AutoFailover and ShadowFull the application runs
// to a correct result and never sees an error.
func TestFailoverTransparentVadd(t *testing.T) {
	node := newNodeNV("pc0")
	inj := ipc.NewFaultInjector(ipc.FaultPlan{
		EveryN:    6,
		SkipFirst: 2,
		Max:       4,
		Kinds:     []ipc.FaultKind{ipc.FaultCrashServer},
	})
	_, c := attach(t, node, Options{AutoFailover: true, Shadow: ShadowFull, Fault: inj})
	app := setupVaddApp(t, c, 256)
	app.launch(t)
	app.verify(t)

	fs := c.FailoverStats()
	if fs.Failovers < 1 {
		t.Fatalf("no failover happened (injected %d faults); test proves nothing", inj.Injected())
	}
	if fs.ReplayedCalls <= 0 {
		t.Error("failover recorded no rebind replay calls")
	}
	if fs.LastRecovery <= 0 || fs.TotalRecovery < fs.LastRecovery {
		t.Errorf("recovery times inconsistent: last=%v total=%v", fs.LastRecovery, fs.TotalRecovery)
	}
}

// TestFailoverShadowPolicies documents the shadow-policy contract: after a
// proxy crash between a kernel launch and the read of its result,
// ShadowFull restores the computed data while ShadowNone restores zeros
// (the data died with the proxy's device memory).
func TestFailoverShadowPolicies(t *testing.T) {
	run := func(policy ShadowPolicy) []byte {
		node := newNodeNV("pc0")
		_, c := attach(t, node, Options{AutoFailover: true, Shadow: policy})
		app := setupVaddApp(t, c, 64)
		app.launch(t)
		if err := c.Finish(app.q); err != nil {
			t.Fatal(err)
		}
		// Simulate a proxy crash after the launch completed.
		c.Proxy().Kill()
		out, _, err := c.EnqueueReadBuffer(app.q, app.c, true, 0, int64(4*app.n), nil)
		if err != nil {
			t.Fatalf("%v read after crash: %v", policy, err)
		}
		if c.FailoverStats().Failovers != 1 {
			t.Fatalf("%v: failovers = %d, want 1", policy, c.FailoverStats().Failovers)
		}
		return out
	}

	full := run(ShadowFull)
	for i := 0; i < len(full)/4; i++ {
		got := binary.LittleEndian.Uint32(full[4*i:])
		want := f32bytes(2 * float32(i))
		if got != binary.LittleEndian.Uint32(want) {
			t.Fatalf("ShadowFull lost data: word %d = %#x", i, got)
		}
	}

	none := run(ShadowNone)
	for i, b := range none {
		if b != 0 {
			t.Fatalf("ShadowNone byte %d = %d; expected the documented zero-fill loss", i, b)
		}
	}
}

// TestFailoverEventWaitLists: events created before a crash are rebound as
// dummy markers; an enqueue retried after failover must wait on the
// rebound events without error.
func TestFailoverEventWaitLists(t *testing.T) {
	node := newNodeNV("pc0")
	_, c := attach(t, node, Options{AutoFailover: true, Shadow: ShadowFull})
	app := setupVaddApp(t, c, 64)
	ev := app.launch(t)
	if err := c.Finish(app.q); err != nil {
		t.Fatal(err)
	}
	c.Proxy().Kill()
	// This read waits on a pre-crash event: the forward closure must
	// translate it to the rebound dummy marker, not the stale real handle.
	if _, _, err := c.EnqueueReadBuffer(app.q, app.c, true, 0, int64(4*app.n), []ocl.Event{ev}); err != nil {
		t.Fatalf("read waiting on pre-crash event: %v", err)
	}
	if c.FailoverStats().Failovers != 1 {
		t.Fatalf("failovers = %d, want 1", c.FailoverStats().Failovers)
	}
}

// TestFailoverCheckpointAfterCrash: a checkpoint taken right after a
// failover must still capture correct buffer contents.
func TestFailoverCheckpointAfterCrash(t *testing.T) {
	node := newNodeNV("pc0")
	_, c := attach(t, node, Options{AutoFailover: true, Shadow: ShadowFull})
	app := setupVaddApp(t, c, 64)
	app.launch(t)
	if err := c.Finish(app.q); err != nil {
		t.Fatal(err)
	}
	c.Proxy().Kill()
	if _, err := c.Checkpoint(node.LocalDisk, "postcrash.ckpt"); err != nil {
		t.Fatal(err)
	}
	nc, _, err := Restore(node, node.LocalDisk, "postcrash.ckpt", Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Detach()
	out, _, err := nc.EnqueueReadBuffer(app.q, app.c, true, 0, int64(4*app.n), nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < app.n; i++ {
		want := binary.LittleEndian.Uint32(f32bytes(2 * float32(i)))
		if got := binary.LittleEndian.Uint32(out[4*i:]); got != want {
			t.Fatalf("restored c[%d] = %#x, want %#x", i, got, want)
		}
	}
}

// memDigests reads back every live buffer (injection suspended) and hashes
// its contents, keyed by the stable CheCL handle.
func memDigests(t *testing.T, c *CheCL) map[Handle]string {
	t.Helper()
	// The reads below go straight to the proxy client, bypassing the batch
	// queue — flush any deferred enqueues first so they are visible.
	if err := c.Drain(); err != nil {
		t.Fatalf("draining batch before digest: %v", err)
	}
	if c.opts.Fault != nil {
		c.opts.Fault.Suspend()
		defer c.opts.Fault.Resume()
	}
	out := map[Handle]string{}
	for _, m := range c.db.orderedMems() {
		q := c.anyQueueFor(m.Ctx)
		if q == nil {
			out[m.H] = fmt.Sprintf("unreadable:%d", m.Size)
			continue
		}
		data, _, err := c.px.Client.EnqueueReadBuffer(q.real, m.real, true, 0, m.Size, nil)
		if err != nil {
			t.Fatalf("reading back %v: %v", m.H, err)
		}
		sum := sha256.Sum256(data)
		out[m.H] = hex.EncodeToString(sum[:8])
	}
	return out
}

// runAppDigest runs one benchmark app under CheCL (optionally fault
// injected) and returns the digest of every live buffer.
func runAppDigest(t *testing.T, a apps.App, scale float64, inj *ipc.FaultInjector, batch bool) map[Handle]string {
	t.Helper()
	node := newNodeNV("pc0")
	app := node.Spawn(a.Name)
	opts := Options{AutoFailover: true, Shadow: ShadowFull, Fault: inj, BatchEnqueues: batch}
	c, err := Attach(app, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Detach()
	env := &apps.Env{API: c, DeviceMask: ocl.DeviceTypeGPU, Scale: scale}
	if _, err := a.Run(env); err != nil {
		t.Fatalf("%s under faults: %v", a.Name, err)
	}
	return memDigests(t, c)
}

// TestFaultAppsBitIdentical is the acceptance soak: every benchmark app
// runs to completion under the seeded kill-every-K plan, and its final
// buffer contents are bit-identical to a fault-free run. Both the
// classic one-call-per-enqueue path and the batched hot path must hold
// the bit-identical guarantee.
func TestFaultAppsBitIdentical(t *testing.T) {
	scale := 0.2
	everyN := 40
	if testing.Short() {
		everyN = 80
	}
	for _, batch := range []bool{false, true} {
		batch := batch
		name := "unbatched"
		if batch {
			name = "batched"
		}
		t.Run(name, func(t *testing.T) {
			for _, a := range apps.All() {
				a := a
				t.Run(a.Name, func(t *testing.T) {
					clean := runAppDigest(t, a, scale, nil, batch)
					inj := ipc.NewFaultInjector(faultKillPlan(2026, everyN))
					faulted := runAppDigest(t, a, scale, inj, batch)
					if len(clean) != len(faulted) {
						t.Fatalf("object count diverged: clean=%d faulted=%d", len(clean), len(faulted))
					}
					for h, want := range clean {
						if got, ok := faulted[h]; !ok {
							t.Errorf("buffer %v missing from faulted run", h)
						} else if got != want {
							t.Errorf("buffer %v contents diverged: %s vs %s", h, got, want)
						}
					}
					if inj.Injected() == 0 {
						t.Logf("note: %s made too few calls to trigger the plan", a.Name)
					}
				})
			}
		})
	}
}
