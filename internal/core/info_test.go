package core

import (
	"testing"

	"checl/internal/ocl"
)

// TestInfoQueriesReturnCheCLHandles: handle-valued info fields must come
// back in CheCL handle space — and remain valid across a restart.
func TestInfoQueriesReturnCheCLHandles(t *testing.T) {
	node := newNodeNV("pc0")
	_, c := attach(t, node, Options{})
	app := setupVaddApp(t, c, 64)

	mi, err := c.GetMemObjectInfo(app.a)
	if err != nil {
		t.Fatal(err)
	}
	if mi.Context != app.ctx {
		t.Errorf("mem info context = %#x, want the CheCL handle %#x", uint64(mi.Context), uint64(app.ctx))
	}
	if mi.Size != 4*64 {
		t.Errorf("mem info size = %d", mi.Size)
	}

	ki, err := c.GetKernelInfo(app.k)
	if err != nil {
		t.Fatal(err)
	}
	if ki.Program != app.prog {
		t.Errorf("kernel info program = %#x, want CheCL handle %#x", uint64(ki.Program), uint64(app.prog))
	}
	if ki.Context != app.ctx || ki.FunctionName != "vadd" || ki.NumArgs != 4 {
		t.Errorf("kernel info = %+v", ki)
	}

	ci, err := c.GetContextInfo(app.ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(ci.Devices) != 1 || ci.Devices[0] != app.dev {
		t.Errorf("context info devices = %v, want [%#x]", ci.Devices, uint64(app.dev))
	}

	qi, err := c.GetCommandQueueInfo(app.q)
	if err != nil {
		t.Fatal(err)
	}
	if qi.Context != app.ctx || qi.Device != app.dev {
		t.Errorf("queue info = %+v", qi)
	}

	wgi, err := c.GetKernelWorkGroupInfo(app.k, app.dev)
	if err != nil {
		t.Fatal(err)
	}
	if wgi.WorkGroupSize != 512 { // Tesla C1060 limit
		t.Errorf("work-group size = %d, want 512", wgi.WorkGroupSize)
	}

	// The chain "query program from kernel, then query its build info"
	// must work purely in CheCL handle space.
	bi, err := c.GetProgramBuildInfo(ki.Program, ci.Devices[0])
	if err != nil || !bi.Success {
		t.Errorf("build info through queried handles: %+v, %v", bi, err)
	}

	// After a restart, the same queries still answer with the SAME CheCL
	// handles (the real ones changed underneath).
	if _, err := c.Checkpoint(node.LocalDisk, "info.ckpt"); err != nil {
		t.Fatal(err)
	}
	c.Proxy().Kill()
	c.App().Kill()
	rc, _, err := Restore(node, node.LocalDisk, "info.ckpt", Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Detach()
	ki2, err := rc.GetKernelInfo(app.k)
	if err != nil {
		t.Fatal(err)
	}
	if ki2.Program != app.prog || ki2.FunctionName != "vadd" {
		t.Errorf("kernel info after restart = %+v", ki2)
	}
	mi2, err := rc.GetMemObjectInfo(app.a)
	if err != nil || mi2.Context != app.ctx {
		t.Errorf("mem info after restart = %+v, %v", mi2, err)
	}
}

// TestInfoQueriesReportAppFlags: USE_HOST_PTR is visible to the app even
// though CheCL forwards the buffer with copy semantics.
func TestInfoQueriesReportAppFlags(t *testing.T) {
	node := newNodeNV("pc0")
	_, c := attach(t, node, Options{})
	app := setupVaddApp(t, c, 64)
	host := make([]byte, 256)
	m, err := c.CreateBuffer(app.ctx, ocl.MemReadWrite|ocl.MemUseHostPtr, 256, host)
	if err != nil {
		t.Fatal(err)
	}
	mi, err := c.GetMemObjectInfo(m)
	if err != nil {
		t.Fatal(err)
	}
	if mi.Flags&ocl.MemUseHostPtr == 0 {
		t.Error("CL_MEM_USE_HOST_PTR not reported back to the application")
	}
}

// TestInfoQueriesForeignHandles: all five queries reject non-CheCL handles.
func TestInfoQueriesForeignHandles(t *testing.T) {
	node := newNodeNV("pc0")
	_, c := attach(t, node, Options{})
	if _, err := c.GetMemObjectInfo(ocl.Mem(1)); ocl.StatusOf(err) != ocl.InvalidMemObject {
		t.Errorf("mem: %v", err)
	}
	if _, err := c.GetKernelInfo(ocl.Kernel(1)); ocl.StatusOf(err) != ocl.InvalidKernel {
		t.Errorf("kernel: %v", err)
	}
	if _, err := c.GetContextInfo(ocl.Context(1)); ocl.StatusOf(err) != ocl.InvalidContext {
		t.Errorf("context: %v", err)
	}
	if _, err := c.GetCommandQueueInfo(ocl.CommandQueue(1)); ocl.StatusOf(err) != ocl.InvalidCommandQueue {
		t.Errorf("queue: %v", err)
	}
	if _, err := c.GetKernelWorkGroupInfo(ocl.Kernel(1), ocl.DeviceID(1)); ocl.StatusOf(err) != ocl.InvalidKernel {
		t.Errorf("wg info: %v", err)
	}
}
