package core

import (
	"fmt"
	"sort"

	"checl/internal/hw"
	"checl/internal/ocl"
	"checl/internal/proxy"
	"checl/internal/vtime"
)

// EpochState is the phase of the speculative checkpoint epoch state
// machine: Idle → Speculating → Validating → Committing → Idle. The
// transitions are driven by BeginCheckpointEpoch (Idle → Speculating) and
// the checkpoint commit inside runCheckpoint (Speculating → Validating →
// Committing → Idle); abortEpoch collapses any state back to Idle.
type EpochState int

// Epoch states.
const (
	EpochIdle EpochState = iota
	EpochSpeculating
	EpochValidating
	EpochCommitting
)

// String names the state for diagnostics.
func (s EpochState) String() string {
	switch s {
	case EpochIdle:
		return "Idle"
	case EpochSpeculating:
		return "Speculating"
	case EpochValidating:
		return "Validating"
	case EpochCommitting:
		return "Committing"
	default:
		return fmt.Sprintf("EpochState(%d)", int(s))
	}
}

// maxSpecRetries bounds the commit-time re-copy ladder: a violated buffer
// is re-drained at most this many validated passes before the residue is
// taken by an unconditional final pass. The queues are quiesced by the
// time the ladder runs, so the final pass cannot itself be violated —
// the ladder terminates by construction, never by luck.
const maxSpecRetries = 3

// specEntry is one buffer's in-flight speculative copy.
type specEntry struct {
	m        *memRec
	data     []byte // bytes captured by the overlapped drain
	violated bool   // a write-set touched the buffer after the copy began
}

// specEpoch is one speculative checkpoint epoch (§III-C overlapped with
// continued execution): the set of buffers being copied while the
// application keeps enqueuing, plus the modelled completion horizon of
// those copies.
type specEpoch struct {
	id      uint64
	state   EpochState
	began   vtime.Time     // application clock at epoch begin
	copyEnd vtime.Time     // modelled completion of the overlapped drain
	copyDur vtime.Duration // total modelled drain duration
	submit  vtime.Duration // app-visible cost of launching the epoch
	entries map[Handle]*specEntry
}

// EpochState reports the state of the speculative checkpoint epoch.
func (c *CheCL) EpochState() EpochState {
	if c.epoch == nil {
		return EpochIdle
	}
	return c.epoch.state
}

// Stall exposes the cumulative checkpoint-induced stall accounting:
// labelled virtual time the application spent parked on checkpoint work
// (sync, drain, write, postprocess) rather than its own progress. With
// SpeculativeDrain most of the former drain stall moves into the hidden
// overlap and only the residue appears here.
func (c *CheCL) Stall() *vtime.StallTracker { return &c.stall }

// BeginCheckpointEpoch opens a speculative checkpoint epoch: the current
// dirty set starts draining to the host on the DrainWorkers streams
// *without* quiescing the command queues, and the application keeps
// running. Kernel launches during the epoch intersect their clc write-set
// with the in-flight speculation set; touched buffers are re-copied at
// commit. The epoch commits inside the next Checkpoint/CheckpointToStore
// call. No-op unless Options.SpeculativeDrain is set or when an epoch is
// already open.
func (c *CheCL) BeginCheckpointEpoch() error {
	if !c.opts.SpeculativeDrain || c.epoch != nil {
		return nil
	}
	clock := c.app.Clock()
	sw := vtime.NewStopwatch(clock)

	// The speculative copy is a consistent cut of the device state at
	// epoch begin: deferred batched commands and posted transport
	// submissions must land first, so everything enqueued *before* this
	// point is captured and everything after is caught by validation.
	if err := c.flushBatch(); err != nil {
		return fmt.Errorf("checl: epoch begin: %w", err)
	}
	if err := c.forward("SettlePosted", func(api *proxy.Client) error {
		return api.SettlePosted()
	}); err != nil {
		return fmt.Errorf("checl: epoch begin: %w", err)
	}

	ep := &specEpoch{
		id:      c.epochSeq + 1,
		state:   EpochSpeculating,
		began:   clock.Now(),
		entries: map[Handle]*specEntry{},
	}

	// Candidate set: exactly the buffers the commit would have to drain.
	// CL_MEM_USE_HOST_PTR buffers are excluded — the application writes
	// through the aliased host region without any API call CheCL could
	// validate against. Clean incremental buffers keep their previous
	// staged copy; queue-less contexts are zero-filled at commit.
	byCtx := map[Handle][]*memRec{}
	var ctxOrder []Handle
	for _, m := range c.db.orderedMems() {
		if m.Released || m.UseHostPtr {
			continue
		}
		if c.opts.Incremental && !m.Dirty && m.Data != nil {
			continue
		}
		if c.anyQueueFor(m.Ctx) == nil {
			continue
		}
		if _, ok := byCtx[m.Ctx]; !ok {
			ctxOrder = append(ctxOrder, m.Ctx)
		}
		byCtx[m.Ctx] = append(byCtx[m.Ctx], m)
	}

	workers := c.opts.DrainWorkers
	if workers < 1 {
		workers = 1
	}
	ep.copyEnd = ep.began
	for _, ctxH := range ctxOrder {
		if err := c.speculateCtx(ep, ctxH, byCtx[ctxH], workers); err != nil {
			return fmt.Errorf("checl: epoch begin: %w", err)
		}
	}
	c.epochSeq++
	ep.submit = sw.Elapsed()
	c.epoch = ep
	c.stall.Add("spec-begin", ep.submit)
	return nil
}

// speculateCtx issues the overlapped drain of one context's candidate
// buffers: the same LPT stream assignment as the stop-drain, but the
// batch carries no BatchFinish and its frame cost is deferred — only the
// submission round trip is charged now; the copy chains' completion
// horizon is modelled into ep.copyEnd and charged (minus whatever the
// application hid) at commit.
func (c *CheCL) speculateCtx(ep *specEpoch, ctxH Handle, items []*memRec, workers int) error {
	ctx, err := c.db.context(ctxH)
	if err != nil {
		return err
	}
	if len(ctx.Devices) == 0 {
		return ocl.Errf("CheCL", ocl.InvalidContext, "context %#x has no devices", uint64(ctxH))
	}
	dev, err := c.db.device(ctx.Devices[0])
	if err != nil {
		return err
	}
	w := workers
	if w > len(items) {
		w = len(items)
	}

	// LPT greedy, like the stop-drain: biggest buffers first onto the
	// least-loaded stream.
	order := make([]*memRec, len(items))
	copy(order, items)
	sort.Slice(order, func(i, j int) bool {
		if order[i].Size != order[j].Size {
			return order[i].Size > order[j].Size
		}
		return order[i].Seq < order[j].Seq
	})
	assign := make([]int, len(order))
	load := make([]int64, w)
	for i := range order {
		best := 0
		for q := 1; q < w; q++ {
			if load[q] < load[best] {
				best = q
			}
		}
		assign[i] = best
		load[best] += order[i].Size
	}

	clock := c.app.Clock()
	return c.forward("speculative drain", func(api *proxy.Client) error {
		queues := make([]ocl.CommandQueue, w)
		for i := range queues {
			q, err := api.CreateCommandQueue(ctx.real, dev.real, 0)
			if err != nil {
				return err
			}
			queues[i] = q
		}
		defer func() {
			for _, q := range queues {
				api.ReleaseCommandQueue(q) //nolint:errcheck // best-effort teardown
			}
		}()
		cmds := make([]proxy.BatchCmd, 0, len(order))
		for i, m := range order {
			cmds = append(cmds, proxy.BatchCmd{
				Op:    proxy.BatchRead,
				Queue: queues[assign[i]],
				Mem:   m.real,
				Size:  m.Size,
			})
		}
		resp, raw, frame, err := api.EnqueueBatchOverlapped(cmds, nil, ep.id)
		if err != nil {
			return err
		}
		if resp.ErrIdx >= 0 {
			return ocl.Errf(resp.ErrOp, ocl.Status(resp.ErrStatus), "%s", resp.ErrDetail)
		}
		// Completion horizon of this context's drain: the longest
		// per-stream DtoH chain overlapped on the DMA engines, plus the
		// deferred response frame.
		bw := c.app.Node().Spec.Inter.PCIeDtoH
		if dev.Info.Type == hw.DeviceCPU {
			bw = c.app.Node().Spec.Inter.Memcpy
		}
		end := clock.Now().Add(hw.DrainMakespan(bw, load) + frame)
		if end.Sub(ep.copyEnd) > 0 {
			ep.copyEnd = end
		}
		// The captured bytes are the buffer state at epoch begin (the
		// runtime applies effects eagerly; only the *cost* is deferred).
		// They live in fresh slices — m.Data stays untouched until the
		// entry is adopted at commit, so an abort loses nothing.
		off := int64(0)
		for i, m := range order {
			n := resp.ReadLens[i]
			ep.entries[m.H] = &specEntry{m: m, data: append([]byte(nil), raw[off:off+n]...)}
			off += n
		}
		return nil
	})
}

// epochTouch marks a buffer's in-flight speculative copy violated: a
// command that (per its clc write-set, or conservatively) may write the
// buffer ran after the copy began. Called from every site that sets
// m.Dirty. Cheap no-op outside an epoch.
func (c *CheCL) epochTouch(m *memRec) {
	ep := c.epoch
	if ep == nil || ep.state != EpochSpeculating {
		return
	}
	if ent, ok := ep.entries[m.H]; ok {
		ent.violated = true
	}
}

// epochDrop removes a buffer from the speculation set (release during the
// epoch): its copy will never be committed.
func (c *CheCL) epochDrop(h Handle) {
	if c.epoch != nil {
		delete(c.epoch.entries, h)
	}
}

// abortEpoch deterministically tears down an in-flight epoch: the
// speculative copies are dropped and the next checkpoint falls back to
// the ordinary stop-drain. Buffers keep their Dirty flags, so no state is
// lost — only the overlap. The reason surfaces as EpochAborted on the
// next checkpoint's stats.
func (c *CheCL) abortEpoch(why string) {
	if c.epoch == nil {
		return
	}
	c.epoch = nil
	c.epochAborted = why
}

// commitEpoch closes the epoch inside a checkpoint: it charges the
// non-hidden remainder of the overlapped drain, validates the speculation
// set, re-copies violated buffers through the bounded retry ladder, and
// returns the adopted entries keyed by handle. The caller (runCheckpoint)
// runs after the phase-1 quiesce, so re-copies read settled device state.
// Returns nil outside an epoch.
func (c *CheCL) commitEpoch(stats *CheckpointStats) (map[Handle]*specEntry, error) {
	ep := c.epoch
	if ep == nil {
		return nil, nil
	}
	c.epoch = nil
	clock := c.app.Clock()
	sw := vtime.NewStopwatch(clock)
	stats.Speculative = true
	stats.StallTime = ep.submit

	// Barrier on the overlapped drain: the same hidden/charge pattern as
	// WaitBackgroundWrite. If the application ran past the copies'
	// completion horizon the whole drain was hidden and nothing is
	// charged.
	ep.state = EpochValidating
	if d := ep.copyEnd.Sub(ep.began); d > 0 {
		ep.copyDur = d
	}
	var residual vtime.Duration
	if r := ep.copyEnd.Sub(clock.Now()); r > 0 {
		residual = r
	}
	clock.AdvanceTo(ep.copyEnd)
	c.stall.Add("spec-wait", residual)
	stats.Overlap += ep.copyDur - residual

	// Validation: deterministic (Seq) order, stale entries flagged by the
	// launch-path write-set hooks.
	entries := make([]*specEntry, 0, len(ep.entries))
	for _, ent := range ep.entries {
		entries = append(entries, ent)
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].m.Seq < entries[j].m.Seq })
	var violated []*specEntry
	for _, ent := range entries {
		stats.SpeculatedBuffers++
		stats.SpeculatedBytes += ent.m.Size
		if ent.violated {
			violated = append(violated, ent)
		}
	}
	stats.ViolatedBuffers = len(violated)

	// Commit: re-copy the violated residue. Each pass re-drains every
	// currently-violated buffer; a pass can in principle be invalidated
	// again (the specReviolate seam models a concurrent producer), so
	// after maxSpecRetries passes the ladder ends with the pass it just
	// ran — the queues are quiesced, making that pass a short stop-drain
	// that is final by construction. Never unbounded.
	ep.state = EpochCommitting
	for pass := 1; len(violated) > 0; pass++ {
		for _, ent := range violated {
			ent.violated = false
		}
		if err := c.specRecopy(violated); err != nil {
			return nil, err
		}
		for _, ent := range violated {
			stats.RecopiedBytes += ent.m.Size
			ent.data = ent.m.Data
		}
		if pass >= maxSpecRetries {
			break
		}
		if c.specReviolate != nil {
			for _, h := range c.specReviolate(pass) {
				if ent, ok := ep.entries[h]; ok {
					ent.violated = true
				}
			}
		}
		violated = violated[:0]
		for _, ent := range entries {
			if ent.violated {
				violated = append(violated, ent)
			}
		}
	}
	ep.state = EpochIdle
	c.stall.Add("spec-commit", sw.Elapsed())
	return ep.entries, nil
}

// specRecopy re-drains violated buffers through the ordinary blocking
// machinery (the queues are already quiesced — this is the "short
// stop-drain" of the fallback ladder).
func (c *CheCL) specRecopy(ents []*specEntry) error {
	mems := make([]*memRec, 0, len(ents))
	for _, ent := range ents {
		if c.anyQueueFor(ent.m.Ctx) == nil {
			// The last queue of the context went away mid-epoch: stage
			// zeros, exactly as the stop-drain partition would.
			ent.m.Data = make([]byte, ent.m.Size)
			continue
		}
		mems = append(mems, ent.m)
	}
	if len(mems) == 0 {
		return nil
	}
	if c.opts.DrainWorkers > 1 && len(mems) > 1 {
		return c.drainParallel(mems, c.opts.DrainWorkers)
	}
	for _, m := range mems {
		qrec := c.anyQueueFor(m.Ctx)
		mrec := m
		var data []byte
		if err := c.forward("clEnqueueReadBuffer", func(api *proxy.Client) error {
			var e error
			data, _, e = api.EnqueueReadBufferInto(qrec.real, mrec.real, true, 0, mrec.Size, nil, mrec.Data)
			return e
		}); err != nil {
			return err
		}
		m.Data = data
	}
	return nil
}
