package core

import (
	"encoding/binary"
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"checl/internal/ocl"
	"checl/internal/vtime"
)

const samplerKernelSrc = `
__kernel void lut(__global const float* table, sampler_t smp,
                  __global float* out, uint n) {
    size_t i = get_global_id(0);
    if (i < n) out[i] = table[i % 8u];
}`

// TestSamplerSurvivesRestart exercises the cl_sampler restore path (step
// 6 of the §III-C order) including sampler-handle translation in
// clSetKernelArg replay.
func TestSamplerSurvivesRestart(t *testing.T) {
	node := newNodeNV("pc0")
	_, c := attach(t, node, Options{})

	plats, _ := c.GetPlatformIDs()
	devs, _ := c.GetDeviceIDs(plats[0], ocl.DeviceTypeAll)
	ctx, _ := c.CreateContext(devs)
	q, _ := c.CreateCommandQueue(ctx, devs[0], 0)
	prog, _ := c.CreateProgramWithSource(ctx, samplerKernelSrc)
	if err := c.BuildProgram(prog, ""); err != nil {
		t.Fatal(err)
	}
	smp, err := c.CreateSampler(ctx, true, ocl.AddressClamp, ocl.FilterLinear)
	if err != nil {
		t.Fatal(err)
	}
	table := make([]byte, 4*8)
	for i := 0; i < 8; i++ {
		binary.LittleEndian.PutUint32(table[4*i:], math.Float32bits(float32(10+i)))
	}
	tbuf, _ := c.CreateBuffer(ctx, ocl.MemReadOnly|ocl.MemCopyHostPtr, 32, table)
	out, _ := c.CreateBuffer(ctx, ocl.MemWriteOnly, 4*16, nil)
	k, _ := c.CreateKernel(prog, "lut")
	if err := c.SetKernelArg(k, 0, 8, handleBytes(tbuf)); err != nil {
		t.Fatal(err)
	}
	// The sampler argument: CheCL must recognise the sampler_t parameter
	// and translate the CheCL sampler handle.
	if err := c.SetKernelArg(k, 1, 8, handleBytes(smp)); err != nil {
		t.Fatal(err)
	}
	if err := c.SetKernelArg(k, 2, 8, handleBytes(out)); err != nil {
		t.Fatal(err)
	}
	if err := c.SetKernelArg(k, 3, 4, u32bytes(16)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.EnqueueNDRangeKernel(q, k, 1, [3]int{}, [3]int{16}, [3]int{16}, nil); err != nil {
		t.Fatal(err)
	}
	if c.ObjectCounts()["sampler"] != 1 {
		t.Fatal("sampler not in the database")
	}

	if _, err := c.Checkpoint(node.LocalDisk, "smp.ckpt"); err != nil {
		t.Fatal(err)
	}
	c.Proxy().Kill()
	c.App().Kill()
	rc, _, err := Restore(node, node.LocalDisk, "smp.ckpt", Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Detach()
	if rc.ObjectCounts()["sampler"] != 1 {
		t.Error("sampler not restored")
	}
	// The kernel (with its replayed sampler arg) launches immediately.
	if _, err := rc.EnqueueNDRangeKernel(q, k, 1, [3]int{}, [3]int{16}, [3]int{16}, nil); err != nil {
		t.Fatalf("launch after restore: %v", err)
	}
	data, _, err := rc.EnqueueReadBuffer(q, out, true, 0, 4*16, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		got := math.Float32frombits(binary.LittleEndian.Uint32(data[4*i:]))
		if got != float32(10+i%8) {
			t.Fatalf("out[%d] = %v, want %v", i, got, float32(10+i%8))
		}
	}
	// Release path for restored samplers.
	if err := rc.ReleaseSampler(smp); err != nil {
		t.Fatal(err)
	}
	if rc.ObjectCounts()["sampler"] != 0 {
		t.Error("sampler release did not drop the record")
	}
}

// TestRepeatedCheckpointRestartCycles runs three full crash/restore
// cycles: a restart of a restart must keep all state and handles intact.
func TestRepeatedCheckpointRestartCycles(t *testing.T) {
	node := newNodeNV("pc0")
	_, c := attach(t, node, Options{})
	app := setupVaddApp(t, c, 256)
	app.launch(t)
	c.Finish(app.q)

	for cycle := 0; cycle < 3; cycle++ {
		path := fmt.Sprintf("cycle%d.ckpt", cycle)
		if _, err := c.Checkpoint(node.LocalDisk, path); err != nil {
			t.Fatalf("cycle %d checkpoint: %v", cycle, err)
		}
		c.Proxy().Kill()
		c.App().Kill()
		rc, _, err := Restore(node, node.LocalDisk, path, Options{})
		if err != nil {
			t.Fatalf("cycle %d restore: %v", cycle, err)
		}
		c = rc
		app.api = c
		// Launch again each cycle to keep mutating state across cycles.
		app.launch(t)
		app.verify(t)
	}
	c.Detach()
}

// TestDatabaseSnapshotRoundtripProperty: encoding and decoding the object
// database preserves every record, for randomised object populations.
func TestDatabaseSnapshotRoundtripProperty(t *testing.T) {
	f := func(nCtx, nMem, nProg uint8, payload []byte) bool {
		db := newDatabase()
		nc := int(nCtx%4) + 1
		var ctxs []Handle
		for i := 0; i < nc; i++ {
			h := db.newHandle(hContext)
			db.contexts[h] = &contextRec{H: h, Seq: db.seq, Refs: 1}
			ctxs = append(ctxs, h)
		}
		for i := 0; i < int(nMem%8); i++ {
			h := db.newHandle(hMem)
			db.mems[h] = &memRec{
				H: h, Seq: db.seq, Ctx: ctxs[i%nc],
				Size: int64(len(payload)), Data: append([]byte(nil), payload...),
				Refs: 1, Dirty: i%2 == 0,
			}
		}
		for i := 0; i < int(nProg%4); i++ {
			h := db.newHandle(hProgram)
			db.programs[h] = &programRec{
				H: h, Seq: db.seq, Ctx: ctxs[i%nc],
				Source: string(payload), Built: true,
				Options: "-cl-fast", BuildCost: vtime.Duration(i) * vtime.Millisecond,
				Refs: 1,
			}
		}
		blob, err := db.encode()
		if err != nil {
			return false
		}
		back, err := decodeDatabase(blob)
		if err != nil {
			return false
		}
		if back.seq != db.seq {
			return false
		}
		bc, dc := back.Counts(), db.Counts()
		for k := range dc {
			if bc[k] != dc[k] {
				return false
			}
		}
		for h, m := range db.mems {
			bm, ok := back.mems[h]
			if !ok || bm.Size != m.Size || bm.Dirty != m.Dirty || len(bm.Data) != len(m.Data) {
				return false
			}
		}
		for h, p := range db.programs {
			bp, ok := back.programs[h]
			if !ok || bp.Source != p.Source || bp.BuildCost != p.BuildCost || !bp.Built {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestHandleClassNames checks the class tagging used by diagnostics and
// the address heuristic.
func TestHandleClassNames(t *testing.T) {
	db := newDatabase()
	cases := map[int]string{
		hPlatform: "platform", hDevice: "device", hContext: "context",
		hQueue: "cmd_que", hMem: "mem", hSampler: "sampler",
		hProgram: "prog", hKernel: "kernel", hEvent: "event",
	}
	for tag, want := range cases {
		h := db.newHandle(tag)
		if h.Class() != want {
			t.Errorf("tag %d class = %q, want %q", tag, h.Class(), want)
		}
	}
}

// TestCheckpointToMissingQueueContext: a buffer in a context that never
// had a command queue is staged as zeroes rather than failing.
func TestCheckpointBufferWithoutQueue(t *testing.T) {
	node := newNodeNV("pc0")
	_, c := attach(t, node, Options{})
	plats, _ := c.GetPlatformIDs()
	devs, _ := c.GetDeviceIDs(plats[0], ocl.DeviceTypeAll)
	ctx, _ := c.CreateContext(devs)
	if _, err := c.CreateBuffer(ctx, ocl.MemReadWrite, 4096, nil); err != nil {
		t.Fatal(err)
	}
	st, err := c.Checkpoint(node.LocalDisk, "noq.ckpt")
	if err != nil {
		t.Fatalf("checkpoint without a queue: %v", err)
	}
	if st.StagedBuffers != 1 {
		t.Errorf("staged = %d", st.StagedBuffers)
	}
}

// TestCostModelPredictProperty: predictions are monotone in both file
// size and recompile time.
func TestCostModelPredictProperty(t *testing.T) {
	m := CostModel{Alpha: 2e-8, Beta: 0.1}
	f := func(a, b uint32, r1, r2 uint16) bool {
		s1, s2 := int64(a), int64(b)
		if s1 > s2 {
			s1, s2 = s2, s1
		}
		t1 := vtime.Duration(r1) * vtime.Millisecond
		t2 := vtime.Duration(r2) * vtime.Millisecond
		if t1 > t2 {
			t1, t2 = t2, t1
		}
		return m.Predict(s1, t1) <= m.Predict(s2, t2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
