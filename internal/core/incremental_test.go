package core

import (
	"bytes"
	"errors"
	"testing"

	"checl/internal/apps"
	"checl/internal/hw"
	"checl/internal/ipc"
	"checl/internal/ocl"
	"checl/internal/proc"
	"checl/internal/store"
	"checl/internal/vtime"
)

// TestIncrementalCheckpointDelta: the second generation of an incremental
// store checkpoint re-stages only the buffers written since the first,
// reuses the parent's chunk refs for the clean ones, and still restores
// bit-identical.
func TestIncrementalCheckpointDelta(t *testing.T) {
	node := newNodeNV("pc0")
	st := store.New(proc.NewFS("ckpt-disk", hw.TableISpec().LocalDisk), fineChunks)
	_, c := attach(t, node, Options{Incremental: true})
	app := setupVaddApp(t, c, 1<<14) // 64 KiB per buffer
	app.launch(t)
	c.Finish(app.q)

	st1, err := c.CheckpointToStore(st, "vadd")
	if err != nil {
		t.Fatal(err)
	}
	if st1.DirtyBuffers != 3 || st1.CleanBuffers != 0 {
		t.Fatalf("gen1 dirty/clean = %d/%d, want 3/0", st1.DirtyBuffers, st1.CleanBuffers)
	}

	// Rewrite only the output buffer; a and b stay clean.
	junk := make([]byte, 4*app.n)
	for i := range junk {
		junk[i] = byte(i*7 + 3)
	}
	if _, err := c.EnqueueWriteBuffer(app.q, app.c, true, 0, junk, nil); err != nil {
		t.Fatal(err)
	}

	st2, err := c.CheckpointToStore(st, "vadd")
	if err != nil {
		t.Fatal(err)
	}
	if st2.DirtyBuffers != 1 || st2.CleanBuffers != 2 {
		t.Fatalf("gen2 dirty/clean = %d/%d, want 1/2", st2.DirtyBuffers, st2.CleanBuffers)
	}
	if st2.DirtyBytes >= st1.DirtyBytes {
		t.Errorf("gen2 copied %d bytes, gen1 copied %d; expected a reduction", st2.DirtyBytes, st1.DirtyBytes)
	}
	if st2.StorePut == nil || st2.StorePut.ReusedBytes == 0 {
		t.Errorf("gen2 reused no parent chunks: %+v", st2.StorePut)
	}

	m1, err := st.Resolve("vadd@1")
	if err != nil {
		t.Fatal(err)
	}
	m2, err := st.Resolve("vadd@2")
	if err != nil {
		t.Fatal(err)
	}
	if delta := m2.DeltaSize(&m1); delta >= m2.Size/2 {
		t.Errorf("gen2 delta = %d of %d payload bytes; expected a minority", delta, m2.Size)
	}

	want := readBuffers(t, c, app)
	rc, rst, err := RestoreFromStore(node, st, "vadd", Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { rc.Detach(); rc.App().Kill() }()
	if rst.Degraded != nil {
		t.Fatalf("restore degraded: %v", rst.Degraded)
	}
	for m, w := range want {
		got, _, err := rc.EnqueueReadBuffer(app.q, m, true, 0, int64(len(w)), nil)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, w) {
			t.Fatalf("buffer %v not bit-identical after incremental restore", m)
		}
	}
}

// TestParallelDrainMatchesSerial: draining the preprocess phase over
// concurrent device-to-host streams must produce the same restored bytes
// as the serial drain and take strictly less virtual preprocess time.
func TestParallelDrainMatchesSerial(t *testing.T) {
	run := func(workers int) (CheckpointStats, map[ocl.Mem][]byte) {
		node := newNodeNV("pc0")
		st := store.New(proc.NewFS("ckpt-disk", hw.TableISpec().LocalDisk), fineChunks)
		_, c := attach(t, node, Options{DrainWorkers: workers})
		app := setupVaddApp(t, c, 1<<16) // 256 KiB per buffer
		app.launch(t)
		c.Finish(app.q)
		stats, err := c.CheckpointToStore(st, "vadd")
		if err != nil {
			t.Fatal(err)
		}
		rc, _, err := RestoreFromStore(node, st, "vadd", Options{})
		if err != nil {
			t.Fatal(err)
		}
		defer func() { rc.Detach(); rc.App().Kill() }()
		out := map[ocl.Mem][]byte{}
		for m, data := range readBuffers(t, rc, app) {
			out[m] = data
		}
		return stats, out
	}

	serial, serialBufs := run(1)
	par, parBufs := run(4)
	if par.DrainWorkers <= 1 {
		t.Fatalf("parallel run reports DrainWorkers = %d", par.DrainWorkers)
	}
	for m, w := range serialBufs {
		if !bytes.Equal(parBufs[m], w) {
			t.Fatalf("buffer %v diverged between serial and parallel drain", m)
		}
	}
	if par.Phases.Preprocess >= serial.Phases.Preprocess {
		t.Errorf("parallel preprocess %v not faster than serial %v",
			par.Phases.Preprocess, serial.Phases.Preprocess)
	}
	if par.StagedBytes != serial.StagedBytes {
		t.Errorf("staged bytes diverged: %d vs %d", par.StagedBytes, serial.StagedBytes)
	}
}

// TestOverlappedStoreWrite: in delayed mode with OverlapStoreWrite the
// checkpoint returns after the copy phase, the store write completes in
// the background while the application progresses, and the barrier
// retro-fills the manifest and reports the hidden portion.
func TestOverlappedStoreWrite(t *testing.T) {
	node := newNodeNV("pc0")
	st := store.New(proc.NewFS("ckpt-disk", hw.TableISpec().LocalDisk), fineChunks)
	_, c := attach(t, node, Options{Mode: Delayed, Incremental: true, OverlapStoreWrite: true})
	app := setupVaddApp(t, c, 1<<14)
	app.launch(t)
	c.Finish(app.q)

	stats, err := c.CheckpointToStore(st, "vadd")
	if err != nil {
		t.Fatal(err)
	}
	if !stats.BackgroundWrite {
		t.Fatal("checkpoint did not release to a background write")
	}
	if stats.Manifest != "" {
		t.Fatalf("manifest %q filled before the barrier", stats.Manifest)
	}

	// Application progress hides the write entirely.
	node.Clock.Advance(vtime.Second)
	before := node.Clock.Now()
	if err := c.WaitBackgroundWrite(); err != nil {
		t.Fatal(err)
	}
	if got := node.Clock.Now(); got != before {
		t.Errorf("fully hidden write still charged %v", got.Sub(before))
	}
	lc := c.LastCheckpoint()
	if lc == nil || lc.Manifest == "" || lc.StorePut == nil {
		t.Fatalf("barrier did not retro-fill the checkpoint stats: %+v", lc)
	}
	if lc.Overlap <= 0 {
		t.Errorf("overlap = %v, want > 0", lc.Overlap)
	}

	want := readBuffers(t, c, app)
	rc, _, err := RestoreFromStore(node, st, lc.Manifest, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { rc.Detach(); rc.App().Kill() }()
	for m, w := range want {
		got, _, err := rc.EnqueueReadBuffer(app.q, m, true, 0, int64(len(w)), nil)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, w) {
			t.Fatalf("buffer %v not bit-identical after overlapped checkpoint", m)
		}
	}
}

// TestBackgroundWriteFailureSurfaced: a failed overlapped write is
// reported as a typed *BackgroundWriteError at the next checkpoint, which
// must also distrust every clean flag of the uncommitted generation and
// re-stage everything.
func TestBackgroundWriteFailureSurfaced(t *testing.T) {
	node := newNodeNV("pc0")
	tiny := proc.NewFS("tiny", hw.TableISpec().LocalDisk, proc.WithCapacity(16<<10))
	bad := store.New(tiny, store.Config{})
	good := store.New(proc.NewFS("ckpt-disk", hw.TableISpec().LocalDisk), fineChunks)

	_, c := attach(t, node, Options{Mode: Delayed, Incremental: true, OverlapStoreWrite: true})
	app := setupVaddApp(t, c, 1<<14)
	app.launch(t)
	c.Finish(app.q)

	st1, err := c.CheckpointToStore(bad, "vadd")
	if err != nil {
		t.Fatal(err) // the failure is in the background, not here
	}
	if !st1.BackgroundWrite {
		t.Fatal("checkpoint did not release to a background write")
	}

	st2, err := c.CheckpointToStore(good, "vadd")
	if err != nil {
		t.Fatal(err)
	}
	if st2.BackgroundErr == nil {
		t.Fatal("previous generation's write failure was not surfaced")
	}
	var nospace *proc.ErrNoSpace
	if !errors.As(st2.BackgroundErr, &nospace) {
		t.Errorf("BackgroundErr = %v, want to unwrap *proc.ErrNoSpace", st2.BackgroundErr)
	}
	if st2.CleanBuffers != 0 {
		t.Errorf("%d buffers kept clean flags from an uncommitted generation", st2.CleanBuffers)
	}
	if err := c.WaitBackgroundWrite(); err != nil {
		t.Fatalf("second write should have landed: %v", err)
	}
	if lc := c.LastCheckpoint(); lc == nil || lc.Manifest == "" {
		t.Fatalf("good store's manifest missing after barrier: %+v", lc)
	}
}

// TestReleasedBufferSkippedInCheckpoint: a buffer whose refcount hit zero
// while a kernel argument still names it becomes a dead record — the
// checkpoint must not stage it, and after a restore the handle resolves
// for kernel-arg replay but stays dead to the application.
func TestReleasedBufferSkippedInCheckpoint(t *testing.T) {
	node := newNodeNV("pc0")
	_, c := attach(t, node, Options{})
	app := setupVaddApp(t, c, 256)
	app.launch(t)
	c.Finish(app.q)

	if err := c.ReleaseMemObject(app.b); err != nil {
		t.Fatal(err)
	}
	if n := c.ObjectCounts()["mem"]; n != 2 {
		t.Fatalf("live mems = %d, want 2", n)
	}

	stats, err := c.Checkpoint(node.LocalDisk, "released.ckpt")
	if err != nil {
		t.Fatal(err)
	}
	if stats.SkippedReleased != 1 {
		t.Errorf("SkippedReleased = %d, want 1", stats.SkippedReleased)
	}
	if stats.StagedBuffers != 2 {
		t.Errorf("StagedBuffers = %d, want 2", stats.StagedBuffers)
	}

	rc, _, err := Restore(node, node.LocalDisk, "released.ckpt", Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { rc.Detach(); rc.App().Kill() }()
	if n := rc.ObjectCounts()["mem"]; n != 2 {
		t.Errorf("restored live mems = %d, want 2", n)
	}
	if _, _, err := rc.EnqueueReadBuffer(app.q, app.a, true, 0, int64(4*app.n), nil); err != nil {
		t.Errorf("live buffer unreadable after restore: %v", err)
	}
	if _, _, err := rc.EnqueueReadBuffer(app.q, app.b, true, 0, int64(4*app.n), nil); ocl.StatusOf(err) != ocl.InvalidMemObject {
		t.Errorf("dead handle readable after restore: %v", err)
	}
}

// runIncrementalRestoreDigest runs one benchmark app, mutates its first
// buffer deterministically, checkpoints into a store and returns the
// buffer digests of a restore from the newest generation. In incremental
// mode two generations are written (the second sees the mutation as the
// only dirty data) and the checkpoint disk injects seeded faults healed
// by a clean replica; the full-reference mode writes one clean full
// checkpoint of the same final state.
func runIncrementalRestoreDigest(t *testing.T, a apps.App, scale float64, inj *ipc.FaultInjector, incremental, speculative bool) map[Handle]string {
	t.Helper()
	node := newNodeNV("pc0")
	appProc := node.Spawn(a.Name)
	opts := Options{AutoFailover: true, Shadow: ShadowFull, Fault: inj}
	if incremental {
		opts.Incremental = true
		opts.DrainWorkers = 4
	}
	if speculative {
		opts.SpeculativeDrain = true
	}
	c, err := Attach(appProc, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Detach()
	env := &apps.Env{API: c, DeviceMask: ocl.DeviceTypeGPU, Scale: scale}
	if _, err := a.Run(env); err != nil {
		t.Fatalf("%s: %v", a.Name, err)
	}

	var ckptFS *proc.FS
	var st *store.Store
	if incremental {
		diskInj := proc.NewFaultInjector(proc.DiskFaultPlan{Seed: 2027, EveryN: 8})
		ckptFS = proc.NewFS("ckpt-disk", hw.TableISpec().LocalDisk, proc.WithFault(diskInj))
		st = store.New(ckptFS, fineChunks)
		replica := store.New(proc.NewFS("replica-disk", hw.TableISpec().LocalDisk), fineChunks)
		st.AttachReplica(replica, node.Spec.Inter.NIC)
	} else {
		ckptFS = proc.NewFS("ckpt-disk", hw.TableISpec().LocalDisk)
		st = store.New(ckptFS, fineChunks)
	}

	ckpt := func() CheckpointStats {
		var stats CheckpointStats
		var ckErr error
		for attempt := 0; attempt < 5; attempt++ {
			if stats, ckErr = c.CheckpointToStore(st, a.Name); ckErr == nil {
				return stats
			}
			if _, rerr := st.Recover(); rerr != nil {
				t.Fatalf("recover between attempts: %v", rerr)
			}
		}
		t.Fatalf("checkpoint failed 5 attempts: %v", ckErr)
		return stats
	}

	mutate := func() {
		if err := c.Drain(); err != nil {
			t.Fatal(err)
		}
		mems := c.db.orderedMems()
		if len(mems) == 0 {
			return
		}
		m := mems[0]
		q := c.anyQueueFor(m.Ctx)
		if q == nil {
			return
		}
		junk := make([]byte, m.Size)
		for i := range junk {
			junk[i] = byte(i*11 + 5)
		}
		if _, err := c.EnqueueWriteBuffer(ocl.CommandQueue(q.H), ocl.Mem(m.H), true, 0, junk, nil); err != nil {
			t.Fatal(err)
		}
	}

	if incremental {
		ckpt() // gen1: everything dirty
		if speculative {
			// Begin the epoch before the mutation: the junk write lands
			// mid-epoch and must violate the in-flight speculative copy.
			// Under seeded proxy kills the begin itself may fail; the
			// checkpoint then stop-drains, which is the abort contract.
			if err := c.BeginCheckpointEpoch(); err != nil {
				t.Logf("%s: epoch begin aborted under faults: %v", a.Name, err)
			}
		}
		mutate()
		gen2 := ckpt() // gen2: only the mutated buffer re-staged
		if len(c.db.orderedMems()) > 1 && gen2.CleanBuffers == 0 {
			t.Errorf("%s gen2 re-staged everything; incremental tracking proved nothing", a.Name)
		}
	} else {
		mutate()
		ckpt()
	}

	rc, rst, err := RestoreFromStore(node, st, a.Name, Options{})
	if err != nil {
		t.Fatalf("%s restore: %v", a.Name, err)
	}
	defer func() { rc.Detach(); rc.App().Kill() }()
	if rst.Degraded != nil {
		t.Fatalf("%s restore degraded with a replica attached: %v", a.Name, rst.Degraded)
	}
	return memDigests(t, rc)
}

// TestFaultAppsIncrementalBitIdentical is the PR's acceptance soak: for
// every benchmark app, an incremental + parallel-drain checkpoint taken
// under seeded proxy kills and checkpoint-disk faults restores
// bit-identical to a clean full checkpoint of the same state — and so
// does a speculative-drain checkpoint whose epoch saw the mutation land
// mid-flight under the same fault mix.
func TestFaultAppsIncrementalBitIdentical(t *testing.T) {
	scale := 0.2
	everyN := 40
	if testing.Short() {
		everyN = 80
	}
	for _, a := range apps.All() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			full := runIncrementalRestoreDigest(t, a, scale, nil, false, false)
			inj := ipc.NewFaultInjector(faultKillPlan(2027, everyN))
			inc := runIncrementalRestoreDigest(t, a, scale, inj, true, false)
			specInj := ipc.NewFaultInjector(faultKillPlan(2029, everyN))
			spec := runIncrementalRestoreDigest(t, a, scale, specInj, true, true)
			for label, got := range map[string]map[Handle]string{"incremental": inc, "speculative": spec} {
				if len(full) != len(got) {
					t.Fatalf("object count diverged: full=%d %s=%d", len(full), label, len(got))
				}
				for h, want := range full {
					if g, ok := got[h]; !ok {
						t.Errorf("buffer %v missing from %s restore", h, label)
					} else if g != want {
						t.Errorf("buffer %v diverged in %s arm: %s vs %s", h, label, g, want)
					}
				}
			}
		})
	}
}
