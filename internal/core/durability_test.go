package core

import (
	"bytes"
	"errors"
	"testing"

	"checl/internal/hw"
	"checl/internal/ocl"
	"checl/internal/proc"
	"checl/internal/store"
	"checl/internal/vtime"
)

// fineChunks keeps checkpoint payloads multi-chunk so chunk-level damage
// and healing are exercised even on small test apps.
var fineChunks = store.Config{MinChunk: 1 << 10, AvgChunk: 4 << 10, MaxChunk: 16 << 10}

// readBuffers snapshots every vadd buffer through api.
func readBuffers(t *testing.T, api ocl.API, app *vaddApp) map[ocl.Mem][]byte {
	t.Helper()
	out := map[ocl.Mem][]byte{}
	for _, m := range []ocl.Mem{app.a, app.b, app.c} {
		data, _, err := api.EnqueueReadBuffer(app.q, m, true, 0, int64(4*app.n), nil)
		if err != nil {
			t.Fatal(err)
		}
		out[m] = data
	}
	return out
}

// TestDurableCheckpointScrubRestoreSoak runs checkpoint/scrub/restore
// cycles of a live OpenCL app against a checkpoint disk that injects a
// fault on every 6th operation, with one clean replica attached. Every
// cycle must restore bit-identical with no degradation: verified writes,
// retries and replica healing absorb the whole fault plan.
func TestDurableCheckpointScrubRestoreSoak(t *testing.T) {
	node := newNodeNV("pc0")
	inj := proc.NewFaultInjector(proc.DiskFaultPlan{Seed: 2026, EveryN: 6})
	ckptFS := proc.NewFS("ckpt-disk", hw.TableISpec().LocalDisk, proc.WithFault(inj))
	st := store.New(ckptFS, fineChunks)
	replica := store.New(proc.NewFS("replica-disk", hw.TableISpec().LocalDisk), fineChunks)
	st.AttachReplica(replica, node.Spec.Inter.NIC)

	_, c := attach(t, node, Options{Incremental: true})
	app := setupVaddApp(t, c, 1<<14)
	app.launch(t)
	c.Finish(app.q)

	scale, err := c.CreateKernel(app.prog, "scale")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SetKernelArg(scale, 0, 8, handleBytes(app.c)); err != nil {
		t.Fatal(err)
	}

	for cycle := 0; cycle < 4; cycle++ {
		// Dirty the output buffer so each generation has fresh chunks.
		if err := c.SetKernelArg(scale, 1, 4, f32bytes(float32(cycle)+2)); err != nil {
			t.Fatal(err)
		}
		if _, err := c.EnqueueNDRangeKernel(app.q, scale, 1, [3]int{}, [3]int{app.n}, [3]int{64}, nil); err != nil {
			t.Fatal(err)
		}
		c.Finish(app.q)

		var ckErr error
		committed := false
		for attempt := 0; attempt < 5 && !committed; attempt++ {
			if _, ckErr = c.CheckpointToStore(st, "vadd"); ckErr == nil {
				committed = true
				break
			}
			if _, rerr := st.Recover(); rerr != nil {
				t.Fatalf("cycle %d: recover between attempts: %v", cycle, rerr)
			}
		}
		if !committed {
			t.Fatalf("cycle %d: checkpoint failed 5 attempts: %v", cycle, ckErr)
		}

		if cycle == 1 {
			rep, err := st.Scrub(node.Clock)
			if err != nil {
				t.Fatalf("cycle %d: scrub: %v", cycle, err)
			}
			if !rep.OK() {
				t.Fatalf("cycle %d: scrub findings with a replica attached: %v", cycle, rep.Findings)
			}
		}

		want := readBuffers(t, c, app)
		rc, rst, err := RestoreFromStore(node, st, "vadd", Options{})
		if err != nil {
			t.Fatalf("cycle %d: restore: %v", cycle, err)
		}
		if rst.Degraded != nil {
			t.Fatalf("cycle %d: restore degraded with a replica attached: %v", cycle, rst.Degraded)
		}
		for m, w := range want {
			got, _, err := rc.EnqueueReadBuffer(app.q, m, true, 0, int64(len(w)), nil)
			if err != nil {
				t.Fatalf("cycle %d: read after restore: %v", cycle, err)
			}
			if !bytes.Equal(got, w) {
				t.Fatalf("cycle %d: buffer %v not bit-identical after restore", cycle, m)
			}
		}
		rc.Detach()
		rc.App().Kill()
	}
	if inj.Injected() == 0 {
		t.Fatal("the soak injected no faults")
	}
}

// TestRestoreFromStoreDegraded is the zero-replica contract: when the
// newest generation is damaged past healing, the restore falls back to
// the previous one and says so — and when nothing restores, the error is
// the typed *store.DegradedRestore, never a silently wrong payload.
func TestRestoreFromStoreDegraded(t *testing.T) {
	node := newNodeNV("pc0")
	st := store.New(proc.NewFS("ckpt-disk", hw.TableISpec().LocalDisk), fineChunks)

	_, c := attach(t, node, Options{})
	app := setupVaddApp(t, c, 1<<14)
	app.launch(t)
	c.Finish(app.q)

	if _, err := c.CheckpointToStore(st, "vadd"); err != nil {
		t.Fatal(err)
	}
	want1 := readBuffers(t, c, app)

	scale, err := c.CreateKernel(app.prog, "scale")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SetKernelArg(scale, 0, 8, handleBytes(app.c)); err != nil {
		t.Fatal(err)
	}
	if err := c.SetKernelArg(scale, 1, 4, f32bytes(3)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.EnqueueNDRangeKernel(app.q, scale, 1, [3]int{}, [3]int{app.n}, [3]int{64}, nil); err != nil {
		t.Fatal(err)
	}
	c.Finish(app.q)
	if _, err := c.CheckpointToStore(st, "vadd"); err != nil {
		t.Fatal(err)
	}

	// Corrupt a chunk only the newest generation references.
	m1, err := st.Resolve("vadd@1")
	if err != nil {
		t.Fatal(err)
	}
	m2, err := st.Resolve("vadd@2")
	if err != nil {
		t.Fatal(err)
	}
	old := map[string]bool{}
	for _, ch := range m1.Chunks {
		old[ch.Sum] = true
	}
	unique := ""
	for _, ch := range m2.Chunks {
		if !old[ch.Sum] {
			unique = ch.Sum
			break
		}
	}
	if unique == "" {
		t.Fatal("second generation shares every chunk with the first")
	}
	clock := vtime.NewClock()
	path := "ckptstore/chunks/" + unique
	data, err := st.FS().ReadFile(clock, path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := st.FS().WriteFile(clock, path, data); err != nil {
		t.Fatal(err)
	}

	rc, rst, err := RestoreFromStore(node, st, "vadd", Options{})
	if err != nil {
		t.Fatalf("degraded restore: %v", err)
	}
	if rst.Degraded == nil || rst.Degraded.Restored != "vadd@1" ||
		len(rst.Degraded.Skipped) != 1 || rst.Degraded.Skipped[0].ID != "vadd@2" {
		t.Fatalf("degradation report = %+v", rst.Degraded)
	}
	// The payload is the older generation's, bit for bit — in particular
	// the output buffer holds its pre-scale content.
	for m, w := range want1 {
		got, _, err := rc.EnqueueReadBuffer(app.q, m, true, 0, int64(len(w)), nil)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, w) {
			t.Errorf("buffer %v differs from generation 1 after degraded restore", m)
		}
	}
	rc.Detach()
	rc.App().Kill()

	// Damage every remaining generation: the restore must fail with the
	// typed report, never return garbage.
	for _, p := range []string{"ckptstore/manifests/vadd/00000001", "ckptstore/manifests/vadd/00000002"} {
		frame, err := st.FS().ReadFile(clock, p)
		if err != nil {
			t.Fatal(err)
		}
		frame[len(frame)/2] ^= 0xFF
		if err := st.FS().WriteFile(clock, p, frame); err != nil {
			t.Fatal(err)
		}
	}
	_, _, err = RestoreFromStore(node, st, "vadd", Options{})
	if err == nil {
		t.Fatal("restore with no restorable generation must fail")
	}
	var dr *store.DegradedRestore
	if !errors.As(err, &dr) || dr.Restored != "" {
		t.Fatalf("err = %v (%T), want wrapped *store.DegradedRestore", err, err)
	}
}
