package core

import (
	"fmt"

	"checl/internal/vtime"
)

// This file implements the migration-cost prediction model of §IV-C:
//
//	Tm = α·M + Tr + β                                   (Eq. 1)
//
// where M is the checkpoint file size, α is a system parameter dominated
// by the checkpoint-file write (and read-back) bandwidth, Tr is the
// program recompilation time, and β is a system-specific constant (proxy
// fork, object recreation overheads, filesystem latency).

// CostSample is one observed migration used for calibration.
type CostSample struct {
	FileSize  int64          // M
	Recompile vtime.Duration // Tr
	Measured  vtime.Duration // Tm
}

// CostModel is a fitted instance of Eq. 1.
type CostModel struct {
	Alpha float64 // seconds per byte
	Beta  float64 // seconds
}

// Predict evaluates Tm = α·M + Tr + β.
func (m CostModel) Predict(fileSize int64, recompile vtime.Duration) vtime.Duration {
	sec := m.Alpha*float64(fileSize) + recompile.Seconds() + m.Beta
	return vtime.FromSeconds(sec)
}

// String renders the fitted parameters.
func (m CostModel) String() string {
	return fmt.Sprintf("Tm = %.4g s/MB * M + Tr + %.3f s", m.Alpha*1e6, m.Beta)
}

// FitCostModel computes α and β by least squares over the samples,
// regressing (Tm − Tr) against M. At least two samples with distinct file
// sizes are required.
func FitCostModel(samples []CostSample) (CostModel, error) {
	if len(samples) < 2 {
		return CostModel{}, fmt.Errorf("checl: cost model needs at least 2 samples, got %d", len(samples))
	}
	var sx, sy, sxx, sxy float64
	n := float64(len(samples))
	for _, s := range samples {
		x := float64(s.FileSize)
		y := (s.Measured - s.Recompile).Seconds()
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return CostModel{}, fmt.Errorf("checl: cost model needs samples with distinct file sizes")
	}
	alpha := (n*sxy - sx*sy) / den
	beta := (sy - alpha*sx) / n
	return CostModel{Alpha: alpha, Beta: beta}, nil
}

// Correlation computes the Pearson correlation coefficient between two
// equally long series — used to reproduce the paper's observation that
// total checkpoint time and checkpoint file size correlate at r ≈ 0.99
// (§IV-B).
func Correlation(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0, fmt.Errorf("checl: correlation needs two series of equal length >= 2")
	}
	n := float64(len(xs))
	var sx, sy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/n, sy/n
	var cov, vx, vy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		cov += dx * dy
		vx += dx * dx
		vy += dy * dy
	}
	if vx == 0 || vy == 0 {
		return 0, fmt.Errorf("checl: correlation undefined for a constant series")
	}
	return cov / sqrt(vx*vy), nil
}

func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	// Newton iteration; avoids importing math for one call and keeps the
	// function total for negative inputs.
	z := x
	for i := 0; i < 40; i++ {
		z = (z + x/z) / 2
	}
	return z
}

// MeanAbsolutePercentError reports the MAPE of predictions vs measurements
// (used by the Fig. 8 harness to quantify prediction quality).
func MeanAbsolutePercentError(predicted, actual []vtime.Duration) (float64, error) {
	if len(predicted) != len(actual) || len(predicted) == 0 {
		return 0, fmt.Errorf("checl: MAPE needs two equal non-empty series")
	}
	var sum float64
	n := 0
	for i := range predicted {
		a := actual[i].Seconds()
		if a == 0 {
			continue
		}
		d := predicted[i].Seconds() - a
		if d < 0 {
			d = -d
		}
		sum += d / a
		n++
	}
	if n == 0 {
		return 0, fmt.Errorf("checl: MAPE undefined for all-zero actuals")
	}
	return 100 * sum / float64(n), nil
}
