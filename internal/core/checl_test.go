package core

import (
	"encoding/binary"
	"math"
	"testing"

	"checl/internal/cpr"
	"checl/internal/hw"
	"checl/internal/ocl"
	"checl/internal/proc"
)

const vaddSrc = `
__kernel void vadd(__global const float* a, __global const float* b,
                   __global float* c, uint n) {
    size_t i = get_global_id(0);
    if (i < n) c[i] = a[i] + b[i];
}
__kernel void scale(__global float* x, float s) {
    x[get_global_id(0)] = x[get_global_id(0)] * s;
}`

func handleBytes[T ~uint64](h T) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, uint64(h))
	return b
}

func u32bytes(v uint32) []byte {
	b := make([]byte, 4)
	binary.LittleEndian.PutUint32(b, v)
	return b
}

func f32bytes(v float32) []byte {
	b := make([]byte, 4)
	binary.LittleEndian.PutUint32(b, math.Float32bits(v))
	return b
}

func newNodeNV(name string) *proc.Node {
	return proc.NewNode(name, hw.TableISpec(), ocl.NVIDIA())
}

func newNodeAMD(name string) *proc.Node {
	return proc.NewNode(name, hw.TableISpec(), ocl.AMD())
}

// vaddApp is a minimal OpenCL application driver that works against any
// ocl.API implementation — the vendor runtime or CheCL.
type vaddApp struct {
	api  ocl.API
	n    int
	ctx  ocl.Context
	q    ocl.CommandQueue
	prog ocl.Program
	k    ocl.Kernel
	a, b ocl.Mem
	c    ocl.Mem
	dev  ocl.DeviceID
}

func setupVaddApp(t *testing.T, api ocl.API, n int) *vaddApp {
	t.Helper()
	app := &vaddApp{api: api, n: n}
	plats, err := api.GetPlatformIDs()
	if err != nil {
		t.Fatal(err)
	}
	devs, err := api.GetDeviceIDs(plats[0], ocl.DeviceTypeAll)
	if err != nil {
		t.Fatal(err)
	}
	app.dev = devs[0]
	if app.ctx, err = api.CreateContext(devs[:1]); err != nil {
		t.Fatal(err)
	}
	if app.q, err = api.CreateCommandQueue(app.ctx, devs[0], ocl.QueueProfilingEnable); err != nil {
		t.Fatal(err)
	}
	if app.prog, err = api.CreateProgramWithSource(app.ctx, vaddSrc); err != nil {
		t.Fatal(err)
	}
	if err := api.BuildProgram(app.prog, ""); err != nil {
		t.Fatal(err)
	}
	if app.k, err = api.CreateKernel(app.prog, "vadd"); err != nil {
		t.Fatal(err)
	}
	host := make([]byte, 4*n)
	for i := 0; i < n; i++ {
		binary.LittleEndian.PutUint32(host[4*i:], math.Float32bits(float32(i)))
	}
	if app.a, err = api.CreateBuffer(app.ctx, ocl.MemReadOnly|ocl.MemCopyHostPtr, int64(4*n), host); err != nil {
		t.Fatal(err)
	}
	if app.b, err = api.CreateBuffer(app.ctx, ocl.MemReadOnly|ocl.MemCopyHostPtr, int64(4*n), host); err != nil {
		t.Fatal(err)
	}
	if app.c, err = api.CreateBuffer(app.ctx, ocl.MemWriteOnly, int64(4*n), nil); err != nil {
		t.Fatal(err)
	}
	for i, h := range []ocl.Mem{app.a, app.b, app.c} {
		if err := api.SetKernelArg(app.k, i, 8, handleBytes(h)); err != nil {
			t.Fatal(err)
		}
	}
	if err := api.SetKernelArg(app.k, 3, 4, u32bytes(uint32(n))); err != nil {
		t.Fatal(err)
	}
	return app
}

func (a *vaddApp) launch(t *testing.T) ocl.Event {
	t.Helper()
	ev, err := a.api.EnqueueNDRangeKernel(a.q, a.k, 1, [3]int{}, [3]int{a.n}, [3]int{64}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return ev
}

func (a *vaddApp) verify(t *testing.T) {
	t.Helper()
	if err := a.api.Finish(a.q); err != nil {
		t.Fatal(err)
	}
	out, _, err := a.api.EnqueueReadBuffer(a.q, a.c, true, 0, int64(4*a.n), nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < a.n; i++ {
		got := math.Float32frombits(binary.LittleEndian.Uint32(out[4*i:]))
		if got != 2*float32(i) {
			t.Fatalf("c[%d] = %v, want %v", i, got, 2*float32(i))
		}
	}
}

func attach(t *testing.T, node *proc.Node, opts Options) (*proc.Process, *CheCL) {
	t.Helper()
	app := node.Spawn("app")
	c, err := Attach(app, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Detach)
	return app, c
}

func TestTransparentExecution(t *testing.T) {
	node := newNodeNV("pc0")
	appProc, c := attach(t, node, Options{})
	app := setupVaddApp(t, c, 256)
	app.launch(t)
	app.verify(t)
	// The application never acquired device mappings: it is
	// checkpointable by BLCR while the OpenCL objects live in the proxy.
	if appProc.DeviceMapped() {
		t.Error("application process acquired device mappings under CheCL")
	}
	// Handles visible to the app are CheCL handles, not real ones.
	if Handle(app.ctx).Class() != "context" {
		t.Errorf("context handle class = %q", Handle(app.ctx).Class())
	}
	if Handle(app.a).Class() != "mem" {
		t.Errorf("mem handle class = %q", Handle(app.a).Class())
	}
	counts := c.ObjectCounts()
	if counts["mem"] != 3 || counts["kernel"] != 1 || counts["prog"] != 1 || counts["cmd_que"] != 1 {
		t.Errorf("object counts = %v", counts)
	}
}

func TestNativeOpenCLProcessIsNotCheckpointable(t *testing.T) {
	// The §II failure CheCL exists to fix: without CheCL, the application
	// process itself loads the vendor library and cannot be checkpointed.
	node := newNodeNV("pc0")
	app := node.Spawn("native-app")
	rt := ocl.NewRuntime(node.Vendors[0], node.Spec, node.Clock)
	app.MapDevice() // loading libOpenCL.so maps the devices
	a := setupVaddApp(t, rt, 64)
	a.launch(t)
	a.verify(t)
	if _, err := (cpr.BLCR{}).Checkpoint(app, node.LocalDisk, "native.ckpt"); err == nil {
		t.Fatal("BLCR should fail on a native OpenCL process")
	}
}

func TestCheckpointPhases(t *testing.T) {
	node := newNodeNV("pc0")
	_, c := attach(t, node, Options{})
	app := setupVaddApp(t, c, 1<<16) // 256 KiB per buffer
	app.launch(t)                    // leave an uncompleted kernel in the queue

	st, err := c.Checkpoint(node.LocalDisk, "app.ckpt")
	if err != nil {
		t.Fatal(err)
	}
	// At least one enqueued command was incomplete: sync must cost time.
	if st.Phases.Sync <= 0 {
		t.Error("sync phase should be non-zero with an in-flight kernel")
	}
	if st.StagedBuffers != 3 || st.StagedBytes != 3*4<<16 {
		t.Errorf("staged = %d buffers / %d bytes", st.StagedBuffers, st.StagedBytes)
	}
	if st.Phases.Preprocess <= 0 {
		t.Error("preprocess (DtoH staging) should cost time")
	}
	if st.FileSize < st.StagedBytes {
		t.Errorf("file size %d should include the %d staged bytes", st.FileSize, st.StagedBytes)
	}
	if st.Phases.Write <= 0 {
		t.Error("write phase should cost time")
	}
	// The API-proxy advantage over CheCUDA: postprocess is negligible.
	if st.Phases.Postprocess*20 > st.Phases.Write {
		t.Errorf("postprocess (%v) should be negligible vs write (%v)", st.Phases.Postprocess, st.Phases.Write)
	}
	// The application continues running after the checkpoint.
	app.verify(t)
}

func TestRestartPreservesStateAndHandles(t *testing.T) {
	src := newNodeNV("pc0")
	_, c := attach(t, src, Options{})
	app := setupVaddApp(t, c, 512)
	app.launch(t)
	c.Finish(app.q)
	preEvent := app.launch(t) // an event that must survive as a dummy
	c.Finish(app.q)

	if _, err := c.Checkpoint(src.LocalDisk, "app.ckpt"); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash: everything on the source dies.
	c.Proxy().Kill()
	c.App().Kill()

	dst := newNodeNV("pc1")
	// Move the file to the destination's disk (no shared FS here).
	data, err := src.LocalDisk.ReadFile(src.Clock, "app.ckpt")
	if err != nil {
		t.Fatal(err)
	}
	dst.LocalDisk.WriteFile(dst.Clock, "app.ckpt", data)

	rc, rst, err := Restore(dst, dst.LocalDisk, "app.ckpt", Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Detach()

	// The application resumes with its OLD CheCL handles: the vaddApp
	// struct fields are still valid — only the API implementation changed.
	app.api = rc
	// Buffer contents survived the round trip.
	out, _, err := rc.EnqueueReadBuffer(app.q, app.c, true, 0, int64(4*app.n), nil)
	if err != nil {
		t.Fatalf("read with pre-checkpoint handles: %v", err)
	}
	for i := 0; i < app.n; i++ {
		got := math.Float32frombits(binary.LittleEndian.Uint32(out[4*i:]))
		if got != 2*float32(i) {
			t.Fatalf("restored c[%d] = %v, want %v", i, got, 2*float32(i))
		}
	}
	// The pre-checkpoint event is now a dummy that never blocks.
	if err := rc.WaitForEvents([]ocl.Event{preEvent}); err != nil {
		t.Errorf("wait on pre-checkpoint event after restore: %v", err)
	}
	// Kernels are usable immediately (args were replayed).
	app.launch(t)
	app.verify(t)

	// Fig. 7 structure: mem and prog recreation dominate.
	if rst.PerClass["mem"] <= 0 || rst.PerClass["prog"] <= 0 {
		t.Errorf("per-class restore times = %v", rst.PerClass)
	}
	if rst.Recompile <= 0 {
		t.Error("recompilation time should be non-zero")
	}
	for _, class := range RestoreOrder {
		if _, ok := rst.PerClass[class]; !ok {
			t.Errorf("restore breakdown missing class %q", class)
		}
	}
}

func TestSignalTriggeredImmediateMode(t *testing.T) {
	node := newNodeNV("pc0")
	appProc, c := attach(t, node, Options{
		Mode:     Immediate,
		CkptFS:   node.LocalDisk,
		CkptPath: "sig.ckpt",
	})
	app := setupVaddApp(t, c, 128)
	appProc.Signal(proc.SIGUSR1)
	// Any API call triggers the checkpoint in immediate mode.
	app.launch(t)
	if c.LastCheckpoint() == nil {
		t.Fatal("immediate-mode checkpoint did not fire")
	}
	if !node.LocalDisk.Exists("sig.ckpt") {
		t.Fatal("checkpoint file not written")
	}
	app.verify(t)
}

func TestSignalTriggeredDelayedMode(t *testing.T) {
	node := newNodeNV("pc0")
	appProc, c := attach(t, node, Options{
		Mode:     Delayed,
		CkptFS:   node.LocalDisk,
		CkptPath: "sig.ckpt",
	})
	app := setupVaddApp(t, c, 128)
	appProc.Signal(proc.SIGUSR1)
	// Non-synchronising calls must NOT trigger the checkpoint.
	app.launch(t)
	if c.LastCheckpoint() != nil {
		t.Fatal("delayed-mode checkpoint fired before a sync point")
	}
	// The next synchronisation point takes it.
	if err := c.Finish(app.q); err != nil {
		t.Fatal(err)
	}
	if c.LastCheckpoint() == nil {
		t.Fatal("delayed-mode checkpoint did not fire at clFinish")
	}
	app.verify(t)
}

func TestIncrementalCheckpointing(t *testing.T) {
	node := newNodeNV("pc0")
	_, c := attach(t, node, Options{Incremental: true})
	app := setupVaddApp(t, c, 1<<12)
	app.launch(t)
	c.Finish(app.q)

	st1, err := c.Checkpoint(node.LocalDisk, "inc1.ckpt")
	if err != nil {
		t.Fatal(err)
	}
	if st1.StagedBuffers != 3 {
		t.Fatalf("first checkpoint staged %d buffers, want 3", st1.StagedBuffers)
	}
	// No kernel ran since: nothing is dirty, nothing is re-staged.
	st2, err := c.Checkpoint(node.LocalDisk, "inc2.ckpt")
	if err != nil {
		t.Fatal(err)
	}
	if st2.StagedBuffers != 0 {
		t.Errorf("second checkpoint staged %d buffers, want 0", st2.StagedBuffers)
	}
	if !(st2.Phases.Preprocess < st1.Phases.Preprocess) {
		t.Errorf("incremental preprocess (%v) should beat full (%v)", st2.Phases.Preprocess, st1.Phases.Preprocess)
	}
	// The vadd kernel writes only c (per the write-set analysis): after a
	// launch exactly one buffer is dirty.
	app.launch(t)
	c.Finish(app.q)
	st3, err := c.Checkpoint(node.LocalDisk, "inc3.ckpt")
	if err != nil {
		t.Fatal(err)
	}
	if st3.StagedBuffers != 1 {
		t.Errorf("third checkpoint staged %d buffers, want 1 (only the written one)", st3.StagedBuffers)
	}
	// Restore from the incremental checkpoint still yields correct data.
	c.Proxy().Kill()
	c.App().Kill()
	rc, _, err := Restore(node, node.LocalDisk, "inc3.ckpt", Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Detach()
	app.api = rc
	app.verify(t)
}

func TestDestructiveModeAblation(t *testing.T) {
	// CheCUDA-style delete-everything checkpointing pays object
	// recreation in postprocess; the API proxy approach does not (§IV-B).
	run := func(destructive bool) PhaseTimes {
		node := newNodeNV("pc0")
		_, c := attach(t, node, Options{Destructive: destructive})
		app := setupVaddApp(t, c, 4096)
		app.launch(t)
		st, err := c.Checkpoint(node.LocalDisk, "d.ckpt")
		if err != nil {
			t.Fatal(err)
		}
		app.verify(t) // both modes must leave the app runnable
		return st.Phases
	}
	keep := run(false)
	destroy := run(true)
	if !(destroy.Postprocess > 10*keep.Postprocess) {
		t.Errorf("destructive postprocess (%v) should dwarf proxy-mode postprocess (%v)",
			destroy.Postprocess, keep.Postprocess)
	}
}

func TestBinaryProgramHeuristic(t *testing.T) {
	node := newNodeNV("pc0")
	_, c := attach(t, node, Options{})

	// Build once from source to obtain a vendor binary.
	app := setupVaddApp(t, c, 64)
	bin, err := c.GetProgramBinary(app.prog)
	if err != nil {
		t.Fatal(err)
	}
	// Create a second program from the binary: CheCL has no source to
	// parse, so clSetKernelArg falls back to the address heuristic.
	prog2, err := c.CreateProgramWithBinary(app.ctx, app.dev, bin)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.BuildProgram(prog2, ""); err != nil {
		t.Fatal(err)
	}
	k2, err := c.CreateKernel(prog2, "vadd")
	if err != nil {
		t.Fatal(err)
	}
	for i, h := range []ocl.Mem{app.a, app.b, app.c} {
		if err := c.SetKernelArg(k2, i, 8, handleBytes(h)); err != nil {
			t.Fatalf("heuristic arg %d: %v", i, err)
		}
	}
	if err := c.SetKernelArg(k2, 3, 4, u32bytes(64)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.EnqueueNDRangeKernel(app.q, k2, 1, [3]int{}, [3]int{64}, [3]int{64}, nil); err != nil {
		t.Fatalf("launch via heuristic-translated args: %v", err)
	}
	app.verify(t)
}

func TestBinaryProgramHeuristicFalsePositive(t *testing.T) {
	// §III-D: an 8-byte scalar whose value collides with a live CheCL
	// handle is mis-identified as a handle. Document-by-test.
	node := newNodeNV("pc0")
	_, c := attach(t, node, Options{})
	app := setupVaddApp(t, c, 64)
	bin, err := c.GetProgramBinary(app.prog)
	if err != nil {
		t.Fatal(err)
	}
	prog2, err := c.CreateProgramWithBinary(app.ctx, app.dev, bin)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.BuildProgram(prog2, ""); err != nil {
		t.Fatal(err)
	}
	k2, err := c.CreateKernel(prog2, "scale")
	if err != nil {
		t.Fatal(err)
	}
	// "scale" takes (__global float* x, float s): pass an 8-byte scalar
	// that equals the CheCL handle of buffer a. Without a parsed
	// signature CheCL translates it as if it were a handle.
	collision := handleBytes(app.a)
	if err := c.SetKernelArg(k2, 0, 8, collision); err != nil {
		t.Fatal(err)
	}
	prec, perr := c.db.program(Handle(prog2))
	if perr != nil {
		t.Fatal(perr)
	}
	forwarded, _, err := c.translateArg(prec, "scale", 1, 8, collision)
	if err != nil {
		t.Fatal(err)
	}
	// The false positive: the forwarded bytes differ from what the app
	// passed, because CheCL "translated" an innocent scalar.
	same := true
	for i := range forwarded {
		if forwarded[i] != collision[i] {
			same = false
		}
	}
	if same {
		t.Error("expected the address heuristic to mis-translate a colliding scalar (documented §III-D false positive)")
	}
	// With a parsed signature (source program) the same bytes pass
	// through untouched.
	srcRec, perr := c.db.program(Handle(app.prog))
	if perr != nil {
		t.Fatal(perr)
	}
	forwarded2, _, err := c.translateArg(srcRec, "scale", 1, 8, collision)
	if err != nil {
		t.Fatal(err)
	}
	for i := range forwarded2 {
		if forwarded2[i] != collision[i] {
			t.Fatal("signature-guided translation must not touch scalar bytes")
		}
	}
}

func TestUseHostPtrThroughCheCL(t *testing.T) {
	node := newNodeNV("pc0")
	_, c := attach(t, node, Options{})
	app := setupVaddApp(t, c, 64)

	host := make([]byte, 4*64)
	for i := 0; i < 64; i++ {
		binary.LittleEndian.PutUint32(host[4*i:], math.Float32bits(2))
	}
	m, err := c.CreateBuffer(app.ctx, ocl.MemReadWrite|ocl.MemUseHostPtr, int64(len(host)), host)
	if err != nil {
		t.Fatal(err)
	}
	k, err := c.CreateKernel(app.prog, "scale")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SetKernelArg(k, 0, 8, handleBytes(m)); err != nil {
		t.Fatal(err)
	}
	if err := c.SetKernelArg(k, 1, 4, f32bytes(3)); err != nil {
		t.Fatal(err)
	}
	// Mutate the host region directly; the kernel must observe it, and
	// the result must be written back into the host region (§III-D cache
	// protocol, with its redundant transfers).
	binary.LittleEndian.PutUint32(host[0:], math.Float32bits(10))
	if _, err := c.EnqueueNDRangeKernel(app.q, k, 1, [3]int{}, [3]int{64}, [3]int{64}, nil); err != nil {
		t.Fatal(err)
	}
	if err := c.Finish(app.q); err != nil {
		t.Fatal(err)
	}
	got0 := math.Float32frombits(binary.LittleEndian.Uint32(host[0:]))
	got1 := math.Float32frombits(binary.LittleEndian.Uint32(host[4:]))
	if got0 != 30 || got1 != 6 {
		t.Errorf("host region after kernel = %v, %v; want 30, 6", got0, got1)
	}
}

func TestRefcountReleaseRemovesFromDatabase(t *testing.T) {
	node := newNodeNV("pc0")
	_, c := attach(t, node, Options{})
	app := setupVaddApp(t, c, 64)
	if err := c.RetainMemObject(app.a); err != nil {
		t.Fatal(err)
	}
	if err := c.ReleaseMemObject(app.a); err != nil {
		t.Fatal(err)
	}
	if c.ObjectCounts()["mem"] != 3 {
		t.Error("retained object dropped too early")
	}
	if err := c.ReleaseMemObject(app.a); err != nil {
		t.Fatal(err)
	}
	if c.ObjectCounts()["mem"] != 2 {
		t.Error("released object still in database")
	}
	if err := c.ReleaseMemObject(app.a); err == nil {
		t.Error("releasing a dead CheCL handle must fail")
	}
}

func TestCheCLErrorsOnForeignHandles(t *testing.T) {
	node := newNodeNV("pc0")
	_, c := attach(t, node, Options{})
	if _, err := c.CreateCommandQueue(ocl.Context(12345), 0, 0); ocl.StatusOf(err) != ocl.InvalidContext {
		t.Errorf("foreign context: %v", err)
	}
	if err := c.Finish(ocl.CommandQueue(999)); ocl.StatusOf(err) != ocl.InvalidCommandQueue {
		t.Errorf("foreign queue: %v", err)
	}
	if err := c.ReleaseEvent(ocl.Event(7)); ocl.StatusOf(err) != ocl.InvalidEvent {
		t.Errorf("foreign event: %v", err)
	}
}
