package core

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"

	"checl/internal/clc"
	"checl/internal/ocl"
)

// Tests documenting the §III-D limitations of CheCL. These are not bugs
// to fix but behaviours the paper explicitly scopes out; the tests pin
// them down so a change in behaviour is noticed.

// TestStructEmbeddedHandleOverlooked: "if a user-defined structure
// including CheCL handles is given to clSetKernelArg as an argument,
// CheCL overlooks the handles in the structure, even though they must be
// converted to OpenCL handles."
//
// The kernel parameter is a by-value scalar blob (a struct); a CheCL mem
// handle embedded inside it is forwarded untranslated.
func TestStructEmbeddedHandleOverlooked(t *testing.T) {
	node := newNodeNV("pc0")
	_, c := attach(t, node, Options{})
	app := setupVaddApp(t, c, 64)

	// A 16-byte "struct" whose first 8 bytes are a live CheCL mem handle
	// and whose last 8 bytes are plain data.
	blob := make([]byte, 16)
	binary.LittleEndian.PutUint64(blob[0:], uint64(app.a))
	binary.LittleEndian.PutUint64(blob[8:], 0x1122334455667788)

	prec, err := c.db.program(Handle(app.prog))
	if err != nil {
		t.Fatal(err)
	}
	// The vadd kernel's 4th parameter is a scalar; hand it the struct.
	forwarded, local, err := c.translateArg(prec, "vadd", 3, 16, blob)
	if err != nil {
		t.Fatal(err)
	}
	if local {
		t.Fatal("scalar blob misclassified as __local")
	}
	// The embedded handle is NOT translated: bytes pass through verbatim,
	// still containing the (meaningless to the device) CheCL handle.
	if !bytes.Equal(forwarded, blob) {
		t.Error("struct-embedded CheCL handle was translated; §III-D documents that it must be overlooked")
	}
}

// TestLocalArgRecordedAndReplayed: __local arguments carry only a size
// (NULL value); the recorded argRec must preserve that through restart.
func TestLocalArgRecordedAndReplayed(t *testing.T) {
	node := newNodeNV("pc0")
	_, c := attach(t, node, Options{})

	plats, _ := c.GetPlatformIDs()
	devs, _ := c.GetDeviceIDs(plats[0], ocl.DeviceTypeAll)
	ctx, _ := c.CreateContext(devs)
	q, _ := c.CreateCommandQueue(ctx, devs[0], 0)
	prog, _ := c.CreateProgramWithSource(ctx, `
__kernel void red(__global float* out, __local float* scratch) {
    size_t lid = get_local_id(0);
    scratch[lid] = (float)lid;
    barrier(CLK_LOCAL_MEM_FENCE);
    if (lid == 0u) {
        float s = 0.0f;
        for (uint i = 0u; i < get_local_size(0); i++) s = s + scratch[i];
        out[get_group_id(0)] = s;
    }
}`)
	if err := c.BuildProgram(prog, ""); err != nil {
		t.Fatal(err)
	}
	k, _ := c.CreateKernel(prog, "red")
	out, _ := c.CreateBuffer(ctx, ocl.MemReadWrite, 4*4, nil)
	if err := c.SetKernelArg(k, 0, 8, handleBytes(out)); err != nil {
		t.Fatal(err)
	}
	if err := c.SetKernelArg(k, 1, 4*16, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := c.EnqueueNDRangeKernel(q, k, 1, [3]int{}, [3]int{64}, [3]int{16}, nil); err != nil {
		t.Fatal(err)
	}
	verify := func(api ocl.API) {
		data, _, err := api.EnqueueReadBuffer(q, out, true, 0, 16, nil)
		if err != nil {
			t.Fatal(err)
		}
		// Sum of 0..15 = 120 per group.
		for g := 0; g < 4; g++ {
			got := f32FromBytes(data[4*g:])
			if got != 120 {
				t.Fatalf("group %d sum = %v, want 120", g, got)
			}
		}
	}
	verify(c)

	// Restart and run again: the replayed __local arg must still be a
	// NULL-valued size-only argument.
	if _, err := c.Checkpoint(node.LocalDisk, "local.ckpt"); err != nil {
		t.Fatal(err)
	}
	c.Proxy().Kill()
	c.App().Kill()
	rc, _, err := Restore(node, node.LocalDisk, "local.ckpt", Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Detach()
	if _, err := rc.EnqueueNDRangeKernel(q, k, 1, [3]int{}, [3]int{64}, [3]int{16}, nil); err != nil {
		t.Fatalf("launch with replayed __local arg: %v", err)
	}
	verify(rc)
}

// TestWriteSetRecordedInDatabase: CheCL's program records carry the
// write-set analysis that drives incremental checkpointing.
func TestWriteSetRecordedInDatabase(t *testing.T) {
	node := newNodeNV("pc0")
	_, c := attach(t, node, Options{})
	app := setupVaddApp(t, c, 64)
	prec, err := c.db.program(Handle(app.prog))
	if err != nil {
		t.Fatal(err)
	}
	ws, ok := prec.WriteSets["vadd"]
	if !ok {
		t.Fatal("vadd write set missing")
	}
	if len(ws) != 1 || ws[0] != 2 {
		t.Errorf("vadd write set = %v, want [2] (only the output buffer)", ws)
	}
	if _, ok := clc.Lookup(prec.Sigs, "scale"); !ok {
		t.Error("scale signature missing from program record")
	}
}

func f32FromBytes(b []byte) float32 {
	return math.Float32frombits(binary.LittleEndian.Uint32(b))
}
