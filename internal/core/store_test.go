package core

import (
	"bytes"
	"errors"
	"testing"

	"checl/internal/hw"
	"checl/internal/ocl"
	"checl/internal/proc"
	"checl/internal/store"
)

// TestStoreCheckpointIncrementalDedup is the tentpole end-to-end path:
// two successive store checkpoints of a running OpenCL app where only the
// output buffer changed. The second Put must re-upload far fewer new
// bytes than the first, and restoring from it must reproduce the buffers
// bit-for-bit.
func TestStoreCheckpointIncrementalDedup(t *testing.T) {
	node := newNodeNV("pc0")
	// Finer chunking keeps small metadata churn (object database headers,
	// event records) from dirtying large chunks around it.
	st := store.New(node.LocalDisk, store.Config{MinChunk: 1 << 10, AvgChunk: 4 << 10, MaxChunk: 16 << 10})
	_, c := attach(t, node, Options{Incremental: true})
	app := setupVaddApp(t, c, 1<<16) // 256 KiB per buffer

	// setupVaddApp fills a and b with identical data, which the store
	// would deduplicate within one checkpoint; give b distinct content so
	// each buffer's chunks are unique and dedup numbers are legible.
	bdata := make([]byte, 4*app.n)
	for i := range bdata {
		bdata[i] = byte(i*7 + i>>9)
	}
	if _, err := c.EnqueueWriteBuffer(app.q, app.b, true, 0, bdata, nil); err != nil {
		t.Fatal(err)
	}
	app.launch(t)
	c.Finish(app.q)

	st1, err := c.CheckpointToStore(st, "vadd")
	if err != nil {
		t.Fatal(err)
	}
	if st1.Manifest != "vadd@1" || st1.StorePut == nil {
		t.Fatalf("first store checkpoint stats = %+v", st1)
	}
	if st1.StorePut.NewBytes == 0 {
		t.Fatal("first checkpoint deduplicated against an empty store")
	}

	// Acceptance bar: a second checkpoint of the unmodified app writes
	// >= 50% fewer new bytes. (It actually deduplicates completely.)
	st2, err := c.CheckpointToStore(st, "vadd")
	if err != nil {
		t.Fatal(err)
	}
	if st2.Manifest != "vadd@2" {
		t.Fatalf("second manifest = %s", st2.Manifest)
	}
	if st2.StorePut.NewBytes > st1.StorePut.NewBytes/2 {
		t.Errorf("unmodified 2nd checkpoint uploaded %d new bytes, 1st uploaded %d — dedup below 50%%",
			st2.StorePut.NewBytes, st1.StorePut.NewBytes)
	}
	if st2.StagedBuffers != 0 {
		t.Errorf("unmodified checkpoint restaged %d buffers", st2.StagedBuffers)
	}

	// Run `scale` over the output buffer: exactly one buffer is dirty, so
	// the third checkpoint re-uploads only the chunks it touched.
	k, err := c.CreateKernel(app.prog, "scale")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SetKernelArg(k, 0, 8, handleBytes(app.c)); err != nil {
		t.Fatal(err)
	}
	if err := c.SetKernelArg(k, 1, 4, f32bytes(3)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.EnqueueNDRangeKernel(app.q, k, 1, [3]int{}, [3]int{app.n}, [3]int{64}, nil); err != nil {
		t.Fatal(err)
	}
	c.Finish(app.q)

	st3, err := c.CheckpointToStore(st, "vadd")
	if err != nil {
		t.Fatal(err)
	}
	if st3.StorePut.NewBytes == 0 {
		t.Error("dirtying a buffer produced no new chunks")
	}
	if st3.StorePut.NewBytes > st1.StorePut.NewBytes/2 {
		t.Errorf("one-dirty-buffer checkpoint uploaded %d of %d new bytes — not limited to dirty chunks",
			st3.StorePut.NewBytes, st1.StorePut.NewBytes)
	}
	// Only the dirty buffer was re-staged under incremental mode.
	if st3.StagedBuffers != 1 {
		t.Errorf("restaged %d buffers, want 1 (only the scaled output)", st3.StagedBuffers)
	}

	// Restore from the second checkpoint and compare every buffer
	// bit-for-bit against the live incarnation's staged state.
	want := map[ocl.Mem][]byte{}
	for _, m := range []ocl.Mem{app.a, app.b, app.c} {
		data, _, err := c.EnqueueReadBuffer(app.q, m, true, 0, int64(4*app.n), nil)
		if err != nil {
			t.Fatal(err)
		}
		want[m] = data
	}

	rc, rst, err := RestoreFromStore(node, st, "vadd", Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Detach()
	if rst.ReadTime <= 0 || rst.Total <= 0 {
		t.Errorf("restore stats = %+v", rst)
	}
	for m, w := range want {
		got, _, err := rc.EnqueueReadBuffer(app.q, m, true, 0, int64(len(w)), nil)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, w) {
			t.Errorf("buffer %v differs after restore from store", m)
		}
	}
}

// TestStoreReplicationSurvivesSourceLoss is the migration-resilience
// acceptance path: replicate a checkpoint to a second node's store, wipe
// the source filesystem, and restart on the second node.
func TestStoreReplicationSurvivesSourceLoss(t *testing.T) {
	cluster := proc.NewCluster("pc", 2, hw.TableISpec(), func(i int) []*ocl.Vendor {
		return []*ocl.Vendor{ocl.NVIDIA()}
	})
	src, dst := cluster.Nodes[0], cluster.Nodes[1]
	srcStore := store.New(src.LocalDisk, store.Config{})
	dstStore := store.New(dst.LocalDisk, store.Config{})

	_, c := attach(t, src, Options{})
	app := setupVaddApp(t, c, 1<<12)
	app.launch(t)
	c.Finish(app.q)

	ck, err := c.CheckpointToStore(srcStore, "vadd")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := srcStore.Replicate(dst.Clock, ck.Manifest, dstStore, src.Spec.Inter.NIC); err != nil {
		t.Fatal(err)
	}

	// The source node dies: every file on its local disk is lost.
	c.Detach()
	for _, p := range src.LocalDisk.List() {
		if err := src.LocalDisk.Remove(p); err != nil {
			t.Fatal(err)
		}
	}

	rc, _, err := RestoreFromStore(dst, dstStore, ck.Manifest, Options{})
	if err != nil {
		t.Fatalf("restore from replica after source loss: %v", err)
	}
	defer rc.Detach()
	if rc.App().Node() != dst {
		t.Error("restored app on wrong node")
	}
	app.api = rc
	app.verify(t)
}

func TestMigrateViaStore(t *testing.T) {
	cluster := proc.NewCluster("pc", 2, hw.TableISpec(), func(i int) []*ocl.Vendor {
		return []*ocl.Vendor{ocl.NVIDIA()}
	})
	src, dst := cluster.Nodes[0], cluster.Nodes[1]
	chunks := store.Config{MinChunk: 1 << 10, AvgChunk: 4 << 10, MaxChunk: 16 << 10}
	srcStore := store.New(src.LocalDisk, chunks)
	dstStore := store.New(dst.LocalDisk, chunks)

	_, c := attach(t, src, Options{})
	app := setupVaddApp(t, c, 1<<15) // 128 KiB per buffer
	app.launch(t)
	c.Finish(app.q)

	rc, ms, err := MigrateViaStore(c, srcStore, "vadd", dst, dstStore, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Detach()
	if ms.Transfer <= 0 {
		t.Error("cross-store migration must pay a NIC transfer")
	}
	if ms.Checkpoint.Manifest != "vadd@1" {
		t.Errorf("manifest = %s", ms.Checkpoint.Manifest)
	}
	if len(src.Processes()) != 0 {
		t.Errorf("source node still has %d processes", len(src.Processes()))
	}
	app.api = rc
	app.verify(t)

	// A second migration of the (mostly unchanged) job back the other way
	// moves only the delta: most chunks already sit in srcStore.
	rc2, ms2, err := MigrateViaStore(rc, dstStore, "vadd", src, srcStore, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer rc2.Detach()
	if ms2.Checkpoint.StorePut.NewBytes > ms.Checkpoint.StorePut.NewBytes/2 {
		t.Errorf("return migration uploaded %d new bytes vs %d on first — no cross-store dedup",
			ms2.Checkpoint.StorePut.NewBytes, ms.Checkpoint.StorePut.NewBytes)
	}
	app.api = rc2
	app.verify(t)
}

func TestMigrateViaSharedStoreSkipsReplication(t *testing.T) {
	cluster := proc.NewCluster("pc", 2, hw.TableISpec(), func(i int) []*ocl.Vendor {
		return []*ocl.Vendor{ocl.NVIDIA()}
	})
	src, dst := cluster.Nodes[0], cluster.Nodes[1]
	nfsStore := store.New(cluster.NFS, store.Config{})

	_, c := attach(t, src, Options{})
	app := setupVaddApp(t, c, 1<<12)
	app.launch(t)
	c.Finish(app.q)

	rc, ms, err := MigrateViaStore(c, nfsStore, "vadd", dst, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Detach()
	if ms.Transfer != 0 {
		t.Errorf("shared-store migration should not pay a transfer: %v", ms.Transfer)
	}
	app.api = rc
	app.verify(t)
}

func TestStoreCheckpointSurfacesNoSpace(t *testing.T) {
	node := newNodeNV("pc0")
	tiny := proc.NewFS("tiny", hw.TableISpec().LocalDisk, proc.WithCapacity(16<<10))
	st := store.New(tiny, store.Config{})
	_, c := attach(t, node, Options{})
	app := setupVaddApp(t, c, 1<<14)
	app.launch(t)
	c.Finish(app.q)

	_, err := c.CheckpointToStore(st, "vadd")
	var nospace *proc.ErrNoSpace
	if !errors.As(err, &nospace) {
		t.Fatalf("err = %v, want *proc.ErrNoSpace", err)
	}
}
